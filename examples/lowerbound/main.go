// Lower-bound example: the Figure 1 construction behind Theorem 6.1. Two
// parallel lines of Δ nodes each, separated by exactly the strong radius
// R_{1-ε}, so that every sender v_i has exactly one cross-line neighbour
// u_i and the SINR constraint allows only one cross-line link to be served
// per slot. The example verifies this with the channel model and then runs
// an optimal scheduler, demonstrating that no absMAC implementation can
// achieve f_prog < Δ.
//
// Run with:
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"os"

	"sinrmac/internal/core"
	"sinrmac/internal/topology"
)

const delta = 12

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lowerbound: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	deployment, err := topology.ParallelLines(delta, 0.1)
	if err != nil {
		return err
	}
	strong := deployment.StrongGraph()
	fmt.Printf("Figure 1 construction with Δ = %d: %d nodes, every node has degree %d\n",
		delta, deployment.NumNodes(), strong.MaxDegree())

	channel, err := deployment.Channel()
	if err != nil {
		return err
	}
	senders := topology.ParallelLinesSenders(delta)
	receivers := topology.ParallelLinesReceivers(delta)

	// Any single cross link works in isolation...
	if !channel.Decodes(receivers[0], senders[0], []int{senders[0]}) {
		return fmt.Errorf("construction broken: lone cross link does not decode")
	}
	// ...but no two cross links can be served concurrently.
	concurrent := 0
	for i := 0; i < delta; i++ {
		for j := i + 1; j < delta; j++ {
			tx := []int{senders[i], senders[j]}
			if channel.Decodes(receivers[i], senders[i], tx) && channel.Decodes(receivers[j], senders[j], tx) {
				concurrent++
			}
		}
	}
	fmt.Printf("pairs of cross links that can be served in the same slot: %d (out of %d pairs)\n",
		concurrent, delta*(delta-1)/2)

	// Optimal schedule: one receiver per slot, so Δ slots are necessary.
	slots := 0
	for i := range senders {
		if channel.Decodes(receivers[i], senders[i], []int{senders[i]}) {
			slots++
		}
	}
	fmt.Printf("an optimal centralized scheduler needs %d slots before every receiver has made progress\n", slots)
	fmt.Printf("Theorem 6.1: f_prog >= Δ_{G_{1-ε}} = %.0f — this is why the paper introduces approximate progress\n",
		core.TheoreticalFprogLowerBound(delta))
	return nil
}
