// Quickstart: build a random SINR deployment, run the paper's combined
// abstract MAC layer (Algorithm 11.1) underneath the BSMB global broadcast
// protocol, and verify the absMAC guarantees with the spec checker.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"sinrmac/internal/bcastproto"
	"sinrmac/internal/core"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A deployment: 40 nodes placed uniformly at random (unit minimum
	// spacing) with transmission range 12, redrawn until G_{1-ε} is
	// connected.
	params := sinr.DefaultParams(12)
	deployment, err := topology.ConnectedUniform(40, 28, params, rng.New(7), 100)
	if err != nil {
		return err
	}
	strong := deployment.StrongGraph()
	fmt.Printf("deployment: %d nodes, max degree %d, diameter %d, lambda %.1f\n",
		deployment.NumNodes(), strong.MaxDegree(), strong.Diameter(), deployment.Lambda())

	// 2. One combined MAC node (Algorithm 11.1) per deployment node, with a
	// BSMB layer on top. Node 0 is the broadcast source.
	recorder := core.NewRecorder()
	macCfg := mac.DefaultConfig(deployment.Lambda(), params.Alpha, core.DefaultParams())
	// Simulation-scale constants (see EXPERIMENTS.md for the rationale).
	macCfg.Ack.StepFactor = 1
	macCfg.Ack.HaltFactor = 4
	macCfg.Prog.QScale = 0.25
	macCfg.Prog.TFactor = 3
	macCfg.Prog.DataFactor = 2

	message := core.Message{ID: 1, Origin: 0, Payload: "hello, SINR world"}
	layers := make([]*bcastproto.BMMB, deployment.NumNodes())
	nodes := make([]sim.Node, deployment.NumNodes())
	for i := range nodes {
		if i == message.Origin {
			layers[i] = bcastproto.NewBSMB(message)
		} else {
			layers[i] = bcastproto.NewBSMB()
		}
		node := mac.New(macCfg, recorder)
		node.SetLayer(layers[i])
		nodes[i] = node
	}

	// 3. Run the slotted SINR simulation until every node has delivered the
	// message.
	channel, err := deployment.Channel()
	if err != nil {
		return err
	}
	engine, err := sim.NewEngine(channel, nodes, sim.Config{Seed: 7})
	if err != nil {
		return err
	}
	ids := []core.MessageID{message.ID}
	deadline := int64(strong.Diameter()+5) * macCfg.AckDeadline()
	// Run until every node has delivered the message and at least the
	// source's acknowledged local broadcast has completed, so the ack
	// report below has something to show.
	engine.Run(deadline, func() bool {
		return bcastproto.AllDelivered(layers, ids) && len(recorder.EventsOfKind(core.EventAck)) > 0
	})

	slot, done := bcastproto.CompletionSlot(layers, ids)
	if !done {
		return fmt.Errorf("broadcast did not complete within %d slots", deadline)
	}
	fmt.Printf("global single-message broadcast completed at slot %d\n", slot)

	// 4. Check the absMAC guarantees on the recorded trace.
	events := recorder.Events()
	ackReport := core.CheckAcks(events, strong)
	progress := core.MeasureProgress(events, strong, deployment.ApproxGraph(), engine.Slot())
	fmt.Printf("acknowledgments: %d acked, %d violations, mean f_ack %.0f slots\n",
		ackReport.Acked, ackReport.Violations, ackReport.MeanLatency)
	fmt.Printf("approximate progress: %.0f%% of windows satisfied, mean latency %.0f slots\n",
		100*progress.SatisfactionRate(), progress.MeanLatency)
	return nil
}
