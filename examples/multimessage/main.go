// Multi-message broadcast example: the workload the paper's introduction
// motivates — several nodes inject messages concurrently and every message
// must reach every node. The BMMB protocol of [37] runs unchanged over the
// paper's combined absMAC implementation; the example prints per-message
// completion times and compares the total against the Theorem 12.7 bound.
//
// Run with:
//
//	go run ./examples/multimessage
package main

import (
	"fmt"
	"os"

	"sinrmac/internal/bcastproto"
	"sinrmac/internal/core"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

const numMessages = 4

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "multimessage: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	params := sinr.DefaultParams(20)
	deployment, err := topology.Clusters(3, 8, params, rng.New(11))
	if err != nil {
		return err
	}
	strong := deployment.StrongGraph()
	fmt.Printf("deployment: %d nodes in 3 clusters, max degree %d, diameter %d\n",
		deployment.NumNodes(), strong.MaxDegree(), strong.Diameter())

	// k messages starting at spread-out origins.
	src := rng.New(42)
	messages := make([]core.Message, numMessages)
	for i := range messages {
		messages[i] = core.Message{
			ID:      core.MessageID(100 + i),
			Origin:  src.Intn(deployment.NumNodes()),
			Payload: fmt.Sprintf("payload-%d", i),
		}
	}

	macCfg := mac.DefaultConfig(deployment.Lambda(), params.Alpha, core.DefaultParams())
	macCfg.Ack.StepFactor = 1
	macCfg.Ack.HaltFactor = 4
	macCfg.Prog.QScale = 0.25
	macCfg.Prog.TFactor = 3
	macCfg.Prog.DataFactor = 2

	layers := make([]*bcastproto.BMMB, deployment.NumNodes())
	nodes := make([]sim.Node, deployment.NumNodes())
	for i := range nodes {
		var initial []core.Message
		for _, m := range messages {
			if m.Origin == i {
				initial = append(initial, m)
			}
		}
		layers[i] = bcastproto.NewBMMB(initial...)
		node := mac.New(macCfg, nil)
		node.SetLayer(layers[i])
		nodes[i] = node
	}

	channel, err := deployment.Channel()
	if err != nil {
		return err
	}
	engine, err := sim.NewEngine(channel, nodes, sim.Config{Seed: 11})
	if err != nil {
		return err
	}
	ids := bcastproto.MessageIDs(messages)
	deadline := int64(strong.Diameter()+4*numMessages) * macCfg.AckDeadline()
	engine.Run(deadline, func() bool { return bcastproto.AllDelivered(layers, ids) })

	if !bcastproto.AllDelivered(layers, ids) {
		return fmt.Errorf("multi-message broadcast did not complete within %d slots", deadline)
	}
	for _, m := range messages {
		slot, _ := bcastproto.CompletionSlot(layers, []core.MessageID{m.ID})
		fmt.Printf("message %d (origin %2d) delivered everywhere by slot %d\n", m.ID, m.Origin, slot)
	}
	total, _ := bcastproto.CompletionSlot(layers, ids)
	theory := core.TheoreticalMMB(deployment.ApproxGraph().Diameter(), strong.MaxDegree(),
		deployment.NumNodes(), numMessages, deployment.Lambda(), params.Alpha, 0.1)
	fmt.Printf("all %d messages delivered by slot %d (Theorem 12.7 bound shape: %.0f)\n", numMessages, total, theory)
	return nil
}
