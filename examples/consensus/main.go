// Consensus example: network-wide binary consensus over the abstract MAC
// layer, reproducing the Corollary 5.5 construction — the consensus layer
// only relies on the acknowledgment bound f_ack, so it runs over the
// acknowledgment-only MAC of Theorem 5.1.
//
// Run with:
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"os"

	"sinrmac/internal/consensus"
	"sinrmac/internal/core"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "consensus: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A line network maximises the diameter, the parameter that dominates
	// the consensus running time D·f_ack.
	params := sinr.DefaultParams(12)
	deployment, err := topology.Line(12, 4, params)
	if err != nil {
		return err
	}
	strong := deployment.StrongGraph()
	diameter := strong.Diameter()
	fmt.Printf("deployment: %d nodes on a line, diameter %d, max degree %d\n",
		deployment.NumNodes(), diameter, strong.MaxDegree())

	macCfg := hmbcast.DefaultConfig(deployment.Lambda(), 0.05)
	macCfg.StepFactor = 1
	macCfg.HaltFactor = 4

	// Mixed initial values.
	src := rng.New(3)
	initials := make([]consensus.Value, deployment.NumNodes())
	for i := range initials {
		initials[i] = consensus.Value(uint8(src.Intn(2)))
	}

	layers := make([]*consensus.Node, deployment.NumNodes())
	nodes := make([]sim.Node, deployment.NumNodes())
	for i := range nodes {
		layer, err := consensus.New(consensus.Config{Rounds: diameter + 2}, initials[i])
		if err != nil {
			return err
		}
		layers[i] = layer
		node := hmbcast.New(macCfg, nil)
		node.SetLayer(layer)
		nodes[i] = node
	}

	channel, err := deployment.Channel()
	if err != nil {
		return err
	}
	engine, err := sim.NewEngine(channel, nodes, sim.Config{Seed: 3})
	if err != nil {
		return err
	}
	deadline := int64(diameter+4) * macCfg.MaxSlots()
	engine.Run(deadline, func() bool {
		_, done := consensus.DecisionSlot(layers)
		return done
	})

	if err := consensus.CheckAgreement(layers, initials); err != nil {
		return err
	}
	slot, _ := consensus.DecisionSlot(layers)
	_, value, _ := layers[0].Decided()
	theory := core.TheoreticalCons(diameter, strong.MaxDegree(), deployment.NumNodes(), deployment.Lambda(), 0.1)
	fmt.Printf("inputs: %v\n", initials)
	fmt.Printf("all nodes decided %d by slot %d (agreement, validity and termination verified)\n", value, slot)
	fmt.Printf("Corollary 5.5 bound shape D·(Δ+logΛ)·log(nΛ/ε) = %.0f\n", theory)
	return nil
}
