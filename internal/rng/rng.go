// Package rng provides small, deterministic, splittable pseudo-random number
// sources used throughout the simulator.
//
// The simulator never uses the global math/rand state: every node automaton
// and every experiment receives its own Source derived from an explicit
// seed, which keeps simulations reproducible and allows tests to replay
// exact executions.
//
// The generator is a 64-bit SplitMix64/xorshift-star hybrid. It is not
// cryptographically secure; it only needs good statistical behaviour and
// cheap splitting.
package rng

import "math"

// Source is a deterministic pseudo-random number source. A Source is not
// safe for concurrent use; derive independent sources with Split for
// concurrent consumers.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	s := &Source{state: seed}
	// Warm up so that small seeds (0, 1, 2, ...) diverge quickly.
	s.Uint64()
	s.Uint64()
	return s
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return splitmix64(&s.state)
}

// Split derives a new independent Source from s. The derived source's
// stream is a deterministic function of s's current state, and calling
// Split advances s, so successive Splits yield distinct sources.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa02bdbf7bb3c0a7)
}

// SplitLabeled derives a new Source from s and a label. Unlike Split it
// does not advance s, so the derived source depends only on s's current
// state and the label. This is used to hand every node a stable per-node
// stream derived from a single experiment seed.
func (s *Source) SplitLabeled(label uint64) *Source {
	st := s.state ^ (label+1)*0x9e3779b97f4a7c15
	return New(splitmix64(&st))
}

// SplitLabels chains SplitLabeled over the given labels, deriving a Source
// that depends only on s's current state and the full label path. The
// experiment scheduler uses it to give every (experiment, point, trial) job
// an independent stream that is a pure function of its coordinates, never of
// execution order.
func (s *Source) SplitLabels(labels ...uint64) *Source {
	cur := s
	for _, l := range labels {
		cur = cur.SplitLabeled(l)
	}
	if cur == s {
		// Zero labels: return a copy so that drawing from the result never
		// advances s — the uniform contract of every split. The copy yields
		// s's future stream; callers that need an independent stream must
		// supply at least one label.
		return &Source{state: s.state}
	}
	return cur
}

// Label hashes an arbitrary string into a SplitLabeled label (FNV-1a
// finished with a splitmix64 avalanche, so short strings that share a
// prefix still land far apart). It lets named entities — experiment ids,
// protocol variants — anchor a labelled split without hand-picked constants.
func Label(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return splitmix64(&h)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63n returns a uniformly distributed value in [0, n) as int64. It
// panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with non-positive n")
	}
	return int64(s.Intn(int(n)))
}

// Bernoulli returns true with probability p. Values of p <= 0 always return
// false and values >= 1 always return true.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1 using the Box-Muller transform.
func (s *Source) NormFloat64() float64 {
	// Avoid log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Source) ExpFloat64() float64 {
	u := 1 - s.Float64()
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap, following the
// Fisher-Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
