package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	New(1).Int63n(-1)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(13)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split sources produced %d identical outputs", same)
	}
}

func TestSplitLabeledStable(t *testing.T) {
	parent := New(33)
	a := parent.SplitLabeled(5)
	b := parent.SplitLabeled(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitLabeled with the same label produced different streams")
		}
	}
	c := parent.SplitLabeled(6)
	d := parent.SplitLabeled(7)
	if c.Uint64() == d.Uint64() {
		t.Fatal("SplitLabeled with different labels produced identical first values")
	}
}

func TestSplitLabelsPath(t *testing.T) {
	parent := New(33)
	a := parent.SplitLabels(1, 2, 3)
	b := parent.SplitLabels(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitLabels with the same path produced different streams")
		}
	}
	// The path matters as a sequence, not as a set.
	c := parent.SplitLabels(1, 2, 3)
	d := parent.SplitLabels(3, 2, 1)
	if c.Uint64() == d.Uint64() {
		t.Fatal("SplitLabels ignored label order")
	}
	// Chaining must not advance the parent.
	before := parent.state
	parent.SplitLabels(9, 9)
	if parent.state != before {
		t.Fatal("SplitLabels advanced the parent source")
	}
	// Zero labels returns a copy: drawing from it must not advance the
	// parent.
	empty := parent.SplitLabels()
	if empty == parent {
		t.Fatal("SplitLabels with no labels aliased the receiver")
	}
	before = parent.state
	empty.Uint64()
	if parent.state != before {
		t.Fatal("drawing from an empty-path split advanced the parent")
	}
}

func TestLabelStableAndDistinct(t *testing.T) {
	if Label("E1-ack") != Label("E1-ack") {
		t.Fatal("Label is not deterministic")
	}
	names := []string{"", "E1-ack", "E2-proglb", "E3-approg", "E4-decay", "E5-smb", "E6-mmb", "E7-cons"}
	seen := make(map[uint64]string)
	for _, n := range names {
		l := Label(n)
		if prev, ok := seen[l]; ok {
			t.Fatalf("Label collision: %q and %q both hash to %d", prev, n, l)
		}
		seen[l] = n
	}
	// Labels must behave as SplitLabeled inputs: same label, same stream.
	parent := New(1)
	a := parent.SplitLabeled(Label("x"))
	b := parent.SplitLabeled(Label("x"))
	if a.Uint64() != b.Uint64() {
		t.Fatal("Label-derived splits diverged")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(19)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(29)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

// Property: Intn output is always within range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical float streams.
func TestQuickDeterministicFloats(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}
