package fault

import (
	"errors"
	"runtime"
	"strings"
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
)

var testKind = sim.RegisterFrameKind("fault.test")

// chattyNode transmits with a fixed probability per slot and counts its
// traffic, distinguishing noise (spam) deliveries from protocol ones.
type chattyNode struct {
	id       int
	src      *rng.Source
	p        float64
	sent     int
	received int
	noise    int
}

func (c *chattyNode) Init(id int, src *rng.Source) { c.id, c.src = id, src }

func (c *chattyNode) Tick(slot int64, f *sim.Frame) bool {
	if c.src.Bernoulli(c.p) {
		c.sent++
		f.Kind = testKind
		f.Msg = core.Message{ID: core.MessageID(uint64(c.id+1)<<32 | uint64(slot+1)), Origin: c.id}
		return true
	}
	return false
}

func (c *chattyNode) Receive(slot int64, f *sim.Frame) {
	c.received++
	if f.Kind == NoiseFrameKind {
		c.noise++
	}
}

// panicNode panics in Tick at a fixed slot or on its first Receive.
type panicNode struct {
	chattyNode
	panicTickSlot int64 // panic in Tick at this slot; < 0 disables
	panicOnRecv   bool
}

func (p *panicNode) Tick(slot int64, f *sim.Frame) bool {
	if p.panicTickSlot >= 0 && slot == p.panicTickSlot {
		panic("injected tick panic")
	}
	return p.chattyNode.Tick(slot, f)
}

func (p *panicNode) Receive(slot int64, f *sim.Frame) {
	if p.panicOnRecv {
		panic("injected receive panic")
	}
	p.chattyNode.Receive(slot, f)
}

// counters is the comparable per-node traffic snapshot.
type counters struct{ sent, received, noise int }

// scenario builds an n-node random deployment under the given plan (nil =
// no fault hook) and returns the underlying chatty automata (unwrapped),
// the engine and the injector.
func scenario(t *testing.T, n int, topoSeed uint64, plan *Plan, fast bool, cfg sim.Config, mutate func(i int) sim.Node) ([]sim.Node, *sim.Engine, *Injector) {
	t.Helper()
	src := rng.New(topoSeed)
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
	}
	ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	if fast {
		cfg.Evaluator = sinr.NewFastChannel(ch)
	}
	raw := make([]sim.Node, n)
	for i := range raw {
		if mutate != nil {
			raw[i] = mutate(i)
		} else {
			raw[i] = &chattyNode{p: 0.2}
		}
	}
	inner := append([]sim.Node(nil), raw...)
	var inj *Injector
	if plan != nil {
		inj, err = NewInjector(*plan, n)
		if err != nil {
			t.Fatal(err)
		}
		raw = inj.WrapNodes(raw)
		cfg.Faults = inj
	}
	eng, err := sim.NewEngine(ch, raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inner, eng, inj
}

// snapshot extracts the per-node counters through the possible panicNode
// embedding.
func snapshot(t *testing.T, nodes []sim.Node) []counters {
	t.Helper()
	out := make([]counters, len(nodes))
	for i, n := range nodes {
		switch v := n.(type) {
		case *chattyNode:
			out[i] = counters{v.sent, v.received, v.noise}
		case *panicNode:
			out[i] = counters{v.sent, v.received, v.noise}
		default:
			t.Fatalf("node %d has unexpected type %T", i, n)
		}
	}
	return out
}

// richPlan exercises every fault kind at once.
func richPlan() Plan {
	return Plan{
		Seed:              42,
		CrashRate:         0.2,
		CrashWindow:       150,
		RecoverRate:       0.5,
		RecoverDelay:      40,
		JamRate:           0.3,
		JamPower:          3,
		DropRate:          0.05,
		CorruptRate:       0.1,
		ByzantineFraction: 0.2,
		SpamRate:          0.3,
		MutateRate:        0.5,
		Mutate: func(slot int64, node int, f *sim.Frame, src *rng.Source) {
			f.Msg.ID ^= 0xdead
		},
	}
}

// TestFaultDifferentialDrivers is the acceptance criterion: one fault plan
// must produce bit-identical executions across worker counts and across the
// serial, pinned-parallel and adaptive drivers, on both evaluator paths.
func TestFaultDifferentialDrivers(t *testing.T) {
	const n, topoSeed, slots = 60, 5, 300
	plan := richPlan()
	type variant struct {
		name string
		fast bool
		cfg  sim.Config
	}
	variants := []variant{
		{"serial/naive", false, sim.Config{Seed: 9, Workers: 1}},
		{"serial/fast", true, sim.Config{Seed: 9, Workers: 1}},
		{"parallel-pinned/w2", true, sim.Config{Seed: 9, Parallel: true, PinDriver: true, Workers: 2}},
		{"parallel-pinned/w4", true, sim.Config{Seed: 9, Parallel: true, PinDriver: true, Workers: 4}},
		{"adaptive/w4", true, sim.Config{Seed: 9, Parallel: true, Workers: 4}},
		{"adaptive/gomaxprocs", true, sim.Config{Seed: 9, Parallel: true, Workers: runtime.GOMAXPROCS(0)}},
	}
	var refStats sim.Stats
	var refNodes []counters
	var refFaults Stats
	for i, v := range variants {
		inner, eng, inj := scenario(t, n, topoSeed, &plan, v.fast, v.cfg, nil)
		eng.Run(slots, nil)
		got := snapshot(t, inner)
		if i == 0 {
			refStats, refNodes, refFaults = eng.Stats(), got, inj.Stats()
			if refFaults.Crashed == 0 || refFaults.JammedSlots == 0 ||
				refFaults.Dropped == 0 || refFaults.Corrupted == 0 ||
				refFaults.ByzantineNodes == 0 || refFaults.SpamFrames == 0 {
				t.Fatalf("plan did not exercise every fault kind: %+v", refFaults)
			}
			continue
		}
		if eng.Stats() != refStats {
			t.Fatalf("%s: stats diverged: %+v vs %+v", v.name, eng.Stats(), refStats)
		}
		if inj.Stats() != refFaults {
			t.Fatalf("%s: fault stats diverged: %+v vs %+v", v.name, inj.Stats(), refFaults)
		}
		for j := range got {
			if got[j] != refNodes[j] {
				t.Fatalf("%s: node %d diverged: %+v vs %+v", v.name, j, got[j], refNodes[j])
			}
		}
	}
}

// TestZeroFaultPlanBitIdentical is the overhead contract: an installed hook
// whose plan injects nothing must leave the execution bit-identical to
// running with no hook at all (the zero-rate plan consumes no randomness).
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	const n, topoSeed, slots = 50, 11, 250
	for _, parallel := range []bool{false, true} {
		cfg := sim.Config{Seed: 7, Workers: 4, Parallel: parallel, PinDriver: parallel}
		bareNodes, bareEng, _ := scenario(t, n, topoSeed, nil, true, cfg, nil)
		zero := Plan{Seed: 99}
		hookNodes, hookEng, inj := scenario(t, n, topoSeed, &zero, true, cfg, nil)
		bareEng.Run(slots, nil)
		hookEng.Run(slots, nil)
		if bareEng.Stats() != hookEng.Stats() {
			t.Fatalf("parallel=%v: stats diverged: %+v vs %+v", parallel, bareEng.Stats(), hookEng.Stats())
		}
		a, b := snapshot(t, bareNodes), snapshot(t, hookNodes)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("parallel=%v: node %d diverged: %+v vs %+v", parallel, i, a[i], b[i])
			}
		}
		if inj.Stats() != (Stats{}) {
			t.Fatalf("zero plan recorded faults: %+v", inj.Stats())
		}
	}
}

// TestTickPanicCrashesOnlyThatNode: an injected Tick panic is recovered,
// converted into a crash-stop fault for that node alone, and the run
// completes — on both drivers, with identical executions.
func TestTickPanicCrashesOnlyThatNode(t *testing.T) {
	const n, topoSeed, slots, victim = 16, 3, 120, 5
	mk := func(i int) sim.Node {
		if i == victim {
			return &panicNode{chattyNode: chattyNode{p: 0.3}, panicTickSlot: 20}
		}
		return &chattyNode{p: 0.3}
	}
	var refStats sim.Stats
	var refNodes []counters
	for i, cfg := range []sim.Config{
		{Seed: 4, Workers: 1},
		{Seed: 4, Parallel: true, PinDriver: true, Workers: 4},
	} {
		plan := Plan{Seed: 8}
		inner, eng, inj := scenario(t, n, topoSeed, &plan, true, cfg, mk)
		eng.Run(slots, nil)
		if got := eng.Stats().Slots; got != slots {
			t.Fatalf("run did not complete: %d slots", got)
		}
		st := inj.Stats()
		if st.PanicCrashes != 1 {
			t.Fatalf("PanicCrashes = %d, want 1", st.PanicCrashes)
		}
		if !inj.Inert(victim) {
			t.Fatal("panicked node not crash-stopped")
		}
		recs := inj.Panics()
		if len(recs) != 1 || recs[0].Node != victim || recs[0].Phase != "tick" ||
			recs[0].Slot != 20 || len(recs[0].Stack) == 0 {
			t.Fatalf("panic record = %+v", recs)
		}
		got := snapshot(t, inner)
		alive := 0
		for j, c := range got {
			if j != victim && c.sent > 10 {
				alive++
			}
		}
		if alive != n-1 {
			t.Fatalf("only %d/%d survivors kept transmitting", alive, n-1)
		}
		if i == 0 {
			refStats, refNodes = eng.Stats(), got
			continue
		}
		if eng.Stats() != refStats {
			t.Fatalf("panic executions diverged across drivers: %+v vs %+v", eng.Stats(), refStats)
		}
		for j := range got {
			if got[j] != refNodes[j] {
				t.Fatalf("node %d diverged across drivers: %+v vs %+v", j, got[j], refNodes[j])
			}
		}
	}
}

// TestReceivePanicConvertsToCrash covers the receive-phase recovery path.
func TestReceivePanicConvertsToCrash(t *testing.T) {
	const n, topoSeed, slots, victim = 12, 3, 200, 4
	plan := Plan{Seed: 8}
	mk := func(i int) sim.Node {
		if i == victim {
			// Never transmits, so its first event is a reception.
			return &panicNode{chattyNode: chattyNode{p: 0}, panicTickSlot: -1, panicOnRecv: true}
		}
		return &chattyNode{p: 0.3}
	}
	_, eng, inj := scenario(t, n, topoSeed, &plan, true, sim.Config{Seed: 4, Workers: 1}, mk)
	eng.Run(slots, nil)
	if eng.Stats().Slots != slots {
		t.Fatalf("run did not complete: %d slots", eng.Stats().Slots)
	}
	st := inj.Stats()
	if st.PanicCrashes != 1 || !inj.Inert(victim) {
		t.Fatalf("receive panic not converted to crash: %+v inert=%v", st, inj.Inert(victim))
	}
	if recs := inj.Panics(); len(recs) != 1 || recs[0].Phase != "receive" {
		t.Fatalf("panic record = %+v", recs)
	}
}

// TestCrashRecoverSchedule pins the crash-recover semantics: a certain
// crash with certain recovery takes every node down exactly once and brings
// it back with its automaton state (sent counter) intact.
func TestCrashRecoverSchedule(t *testing.T) {
	const n, topoSeed, slots = 10, 7, 600
	plan := Plan{Seed: 13, CrashRate: 1, CrashWindow: 100, RecoverRate: 1, RecoverDelay: 50}
	inner, eng, inj := scenario(t, n, topoSeed, &plan, true, sim.Config{Seed: 2, Workers: 1}, nil)
	eng.Run(slots, nil)
	st := inj.Stats()
	if st.Crashed != n || st.Recovered != n {
		t.Fatalf("crash/recover counts = %d/%d, want %d/%d", st.Crashed, st.Recovered, n, n)
	}
	for i, nd := range inner {
		if inj.Inert(i) {
			t.Fatalf("node %d still inert after its recovery window", i)
		}
		if nd.(*chattyNode).sent == 0 {
			t.Fatalf("node %d never transmitted", i)
		}
	}
}

// TestCrashStopSilencesNode: with no recovery, a crashed node stops
// transmitting and receiving for good, and survivors keep running.
func TestCrashStopSilencesNode(t *testing.T) {
	const n, topoSeed = 8, 7
	plan := Plan{Seed: 5, CrashRate: 0.5, CrashWindow: 50}
	inner, eng, inj := scenario(t, n, topoSeed, &plan, true, sim.Config{Seed: 2, Workers: 1}, nil)
	eng.Run(60, nil) // past the crash window
	crashed := make([]int, 0, n)
	for i := range inner {
		if inj.Inert(i) {
			crashed = append(crashed, i)
		}
	}
	if len(crashed) == 0 {
		t.Fatal("no node crashed under CrashRate 0.5")
	}
	before := snapshot(t, inner)
	eng.Run(200, nil)
	after := snapshot(t, inner)
	for _, i := range crashed {
		if after[i] != before[i] {
			t.Fatalf("crashed node %d kept participating: %+v -> %+v", i, before[i], after[i])
		}
	}
	if st := inj.Stats(); st.Recovered != 0 {
		t.Fatalf("crash-stop plan recorded %d recoveries", st.Recovered)
	}
}

// TestByzantineSpam: a fully Byzantine deployment with certain spam fills
// idle slots with noise frames that reach correct receivers as NoiseFrameKind.
func TestByzantineSpam(t *testing.T) {
	const n, topoSeed, slots = 12, 9, 200
	// Not everyone spams every slot: with all nodes transmitting the
	// half-duplex constraint would leave no listeners at all.
	plan := Plan{Seed: 3, ByzantineFraction: 0.5, SpamRate: 0.4}
	inner, eng, inj := scenario(t, n, topoSeed, &plan, true, sim.Config{Seed: 6, Workers: 1}, nil)
	eng.Run(slots, nil)
	st := inj.Stats()
	if st.ByzantineNodes == 0 || st.ByzantineNodes == n {
		t.Fatalf("ByzantineNodes = %d, want a strict subset of %d", st.ByzantineNodes, n)
	}
	if st.SpamFrames == 0 {
		t.Fatal("certain spam produced no frames")
	}
	totalNoise := 0
	for _, nd := range inner {
		totalNoise += nd.(*chattyNode).noise
	}
	if totalNoise == 0 {
		t.Fatal("no noise frame was ever delivered")
	}
	// Spam is injected at the engine level: the wrappers transmitted more
	// than the inner automata decided to.
	totalSent := 0
	for _, nd := range inner {
		totalSent += nd.(*chattyNode).sent
	}
	if eng.Stats().Transmissions <= int64(totalSent) {
		t.Fatalf("transmissions %d not above inner sends %d", eng.Stats().Transmissions, totalSent)
	}
}

// TestByzantineMutateAndFromProtection: equivocation rewrites message
// contents but can never forge the link-layer sender, because the engine
// overwrites Frame.From after Tick.
func TestByzantineMutateAndFromProtection(t *testing.T) {
	const n, slots = 2, 40
	// Two nodes in range: node 0 Byzantine and always transmitting, node 1
	// listening and recording the observed From.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), pos)
	if err != nil {
		t.Fatal(err)
	}
	mutations := 0
	plan := Plan{Seed: 21, ByzantineFraction: 1, MutateRate: 1,
		Mutate: func(slot int64, node int, f *sim.Frame, src *rng.Source) {
			mutations++
			f.From = 999 // must be overwritten by the engine
			f.Msg.Origin = 999
		}}
	inj, err := NewInjector(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	sender := &chattyNode{p: 1}
	var froms []int
	var origins []int
	listener := &recordingNode{onRecv: func(f *sim.Frame) {
		froms = append(froms, f.From)
		origins = append(origins, f.Msg.Origin)
	}}
	nodes := inj.WrapNodes([]sim.Node{sender, listener})
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(slots, nil)
	if mutations == 0 || len(froms) == 0 {
		t.Fatalf("mutations=%d deliveries=%d", mutations, len(froms))
	}
	for i, from := range froms {
		if from != 0 {
			t.Fatalf("Byzantine node forged link-layer From=%d", from)
		}
		if origins[i] != 999 {
			t.Fatalf("equivocated Origin not delivered (got %d)", origins[i])
		}
	}
	if st := inj.Stats(); st.MutatedFrames != mutations {
		t.Fatalf("MutatedFrames = %d, want %d", st.MutatedFrames, mutations)
	}
}

// recordingNode never transmits and hands every delivery to a callback.
type recordingNode struct {
	onRecv func(f *sim.Frame)
}

func (r *recordingNode) Init(id int, src *rng.Source)    {}
func (r *recordingNode) Tick(s int64, f *sim.Frame) bool { return false }
func (r *recordingNode) Receive(s int64, f *sim.Frame)   { r.onRecv(f) }

// TestDropAndCorrupt: drop suppresses deliveries, corruption delivers a
// per-receiver mangled copy (id xored, payloads nil'd, kind preserved)
// without touching the sender's pooled frame.
func TestDropAndCorrupt(t *testing.T) {
	const slots = 400
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), pos)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Seed: 77, DropRate: 0.25, CorruptRate: 0.5}
	inj, err := NewInjector(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	sender := &chattyNode{p: 1}
	clean, corrupt := 0, 0
	listener := &recordingNode{onRecv: func(f *sim.Frame) {
		if f.Kind != testKind {
			t.Fatalf("corruption changed the frame kind to %v", f.Kind)
		}
		// Protocol ids stay below 2^33; the corrupt mask sets the top bit.
		if f.Msg.ID&(1<<63) != 0 {
			if f.Msg.Payload != nil || f.Payload != nil {
				t.Fatal("corruption left a payload attached")
			}
			corrupt++
		} else {
			clean++
		}
	}}
	eng, err := sim.NewEngine(ch, []sim.Node{sender, listener}, sim.Config{Seed: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(slots, nil)
	st := inj.Stats()
	if st.Dropped == 0 || st.Corrupted == 0 {
		t.Fatalf("drop/corrupt never fired: %+v", st)
	}
	if int64(st.Dropped) != int64(slots)-eng.Stats().Receptions {
		t.Fatalf("dropped %d but receptions %d/%d", st.Dropped, eng.Stats().Receptions, slots)
	}
	if corrupt != st.Corrupted || clean+corrupt != int(eng.Stats().Receptions) {
		t.Fatalf("observed %d corrupt + %d clean, stats %+v, receptions %d",
			corrupt, clean, st, eng.Stats().Receptions)
	}
}

// TestJamScrubsDecodes: a certain-jam plan on a two-node link injects no
// jammer (both nodes busy or only idle node is the receiver... the receiver
// itself may be co-opted) — use a 3-node line instead and check jam decodes
// never surface as protocol frames.
func TestJamScrubsDecodes(t *testing.T) {
	const slots = 300
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), pos)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Seed: 31, JamRate: 0.5, JamPower: 1}
	inj, err := NewInjector(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	sender := &chattyNode{p: 0.5}
	mid := &chattyNode{p: 0}
	far := &chattyNode{p: 0}
	eng, err := sim.NewEngine(ch, []sim.Node{sender, mid, far}, sim.Config{Seed: 3, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(slots, nil)
	st := inj.Stats()
	if st.JammedSlots == 0 || st.JamTransmissions == 0 {
		t.Fatalf("jamming never fired: %+v", st)
	}
	// Jammer transmissions are excluded from the engine's transmission count.
	if eng.Stats().Transmissions != int64(sender.sent) {
		t.Fatalf("transmissions %d != real sends %d (jammers must not count)",
			eng.Stats().Transmissions, sender.sent)
	}
}

// TestInjectorEpochRelabel: fault state follows churn relabels — a crashed
// node relabeled into a lower slot stays inert there, and the engine keeps
// running after the epoch.
func TestInjectorEpochRelabel(t *testing.T) {
	const n = 8
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: 2 * float64(i), Y: 0}
	}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), pos)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Seed: 8}
	inj, err := NewInjector(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]sim.Node, n)
	for i := range nodes {
		if i == n-1 {
			nodes[i] = &panicNode{chattyNode: chattyNode{p: 0.3}, panicTickSlot: 2}
		} else {
			nodes[i] = &chattyNode{p: 0.3}
		}
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 5, Workers: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10, nil)
	if !inj.Inert(n - 1) {
		t.Fatal("victim did not crash")
	}
	// Remove node 2; the crashed last node is relabeled into its slot.
	p := append([]geom.Point(nil), pos...)
	p[2] = p[n-1]
	p = p[:n-1]
	delta := &sinr.EpochDelta{
		OldN: n, NewN: n - 1, Dirty: []int{2},
		Relabels:  []sinr.Relabel{{From: n - 1, To: 2}},
		Removed:   1,
		Positions: p,
	}
	if err := eng.ApplyEpoch(delta, nil); err != nil {
		t.Fatal(err)
	}
	if !inj.Inert(2) {
		t.Fatal("crashed node lost its inert state across the relabel")
	}
	if inj.NumNodes() != n-1 {
		t.Fatalf("injector size %d after epoch, want %d", inj.NumNodes(), n-1)
	}
	sentBefore := eng.Node(2).(*panicNode).sent
	eng.Run(50, nil)
	if got := eng.Node(2).(*panicNode).sent; got != sentBefore {
		t.Fatal("relabeled crashed node resumed transmitting")
	}
	if eng.Stats().Slots != 60 {
		t.Fatalf("engine stalled after churn epoch: %d slots", eng.Stats().Slots)
	}
}

// TestInjectorResetReplays: Engine.Reset rewinds the injector too, so a
// faulty execution replays bit-identically on a reused engine.
func TestInjectorResetReplays(t *testing.T) {
	const n, topoSeed, slots = 30, 13, 200
	plan := richPlan()
	freshNodes, freshEng, freshInj := scenario(t, n, topoSeed, &plan, true, sim.Config{Seed: 9, Workers: 1}, nil)
	freshEng.Run(slots, nil)

	reNodes, reEng, reInj := scenario(t, n, topoSeed, &plan, true, sim.Config{Seed: 1234, Workers: 1}, nil)
	reEng.Run(77, nil) // unrelated execution first
	replay := make([]sim.Node, n)
	inner := make([]sim.Node, n)
	for i := range replay {
		inner[i] = &chattyNode{p: 0.2}
	}
	copy(replay, reInj.WrapNodes(inner))
	_ = reNodes
	if err := reEng.Reset(replay, 9); err != nil {
		t.Fatal(err)
	}
	reEng.Run(slots, nil)
	if freshEng.Stats() != reEng.Stats() {
		t.Fatalf("stats diverged after Reset: %+v vs %+v", freshEng.Stats(), reEng.Stats())
	}
	a, b := snapshot(t, freshNodes), snapshot(t, inner)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged after Reset: %+v vs %+v", i, a[i], b[i])
		}
	}
	if freshInj.Stats() != reInj.Stats() {
		t.Fatalf("fault stats diverged after Reset: %+v vs %+v", freshInj.Stats(), reInj.Stats())
	}
}

// TestPlanValidate covers the plan's error paths.
func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{CrashRate: -0.1},
		{CrashRate: 1.1},
		{JamRate: 2},
		{DropRate: -1},
		{ByzantineFraction: 3},
		{JamPower: -1},
		{CrashWindow: -5},
		{RecoverDelay: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
		if _, err := NewInjector(p, 4); err == nil {
			t.Fatalf("bad plan %d compiled", i)
		}
	}
	if _, err := NewInjector(Plan{}, 0); err == nil {
		t.Fatal("zero-node injector accepted")
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan rejected: %v", err)
	}
}

// failInitNode records an Init failure and reports it via sim.NodeInitError.
type failInitNode struct{ err error }

func (f *failInitNode) Init(id int, src *rng.Source)     { f.err = errors.New("bad fault config") }
func (f *failInitNode) InitError() error                 { return f.err }
func (f *failInitNode) Tick(s int64, fr *sim.Frame) bool { return false }
func (f *failInitNode) Receive(s int64, fr *sim.Frame)   {}

// TestByzantineInitErrorPassthrough: wrapping a node whose Init fails must
// not swallow the failure — the wrapper forwards sim.NodeInitError, so
// sim.NewEngine still rejects the deployment.
func TestByzantineInitErrorPassthrough(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), pos)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(Plan{Seed: 1, ByzantineFraction: 1, SpamRate: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	nodes := inj.WrapNodes([]sim.Node{&failInitNode{}, &chattyNode{p: 0.1}})
	if _, ok := nodes[0].(sim.NodeInitError); !ok {
		t.Fatal("Byzantine wrapper does not implement sim.NodeInitError")
	}
	if _, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 1, Faults: inj}); err == nil ||
		!strings.Contains(err.Error(), "bad fault config") {
		t.Fatalf("wrapper hid the inner init failure: %v", err)
	}
}
