// Package fault implements the deterministic fault-injection layer for the
// slotted SINR simulator: crash-stop and crash-recover schedules,
// adversarial per-slot jammers injected into the transmit set, frame
// drop/corruption, and Byzantine node wrappers that spam or equivocate.
//
// A Plan declares fault rates; an Injector compiled from the plan
// implements sim.FaultHook and is installed on an engine via
// sim.Config.Faults. Every stochastic fault decision is drawn from rng
// streams labelled under the plan seed (fault/plan/<kind>/<node> for
// per-node schedules, a serial per-slot stream for jamming and delivery
// faults), never from execution order, so a faulty execution is
// bit-identical at any worker count and on both Step drivers — and a plan
// whose rates are all zero consumes no randomness at all, leaving the
// execution bit-identical to running without a hook.
//
// Crash semantics: a crashed node goes inert — it neither ticks nor
// receives, and contributes no interference (it never transmits) — while
// every survivor's automaton state is untouched. Crash-recover resumes the
// same automaton with its state intact (a transient/omission fault in the
// literature's taxonomy); there is no re-Init. A panic recovered from a
// node's Tick or Receive is converted into a crash-stop fault for that
// node only (recorded in Stats and Panics) and the run continues.
package fault

import (
	"fmt"

	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
)

// Labelled rng stream roots under the plan seed. Per-node streams append
// the node id (fault/plan/<kind>/<node>); the jam and deliver streams are
// advanced serially in slot order by the engine's serial sections.
var (
	crashLabel   = rng.Label("fault/plan/crash")
	jamLabel     = rng.Label("fault/plan/jam")
	deliverLabel = rng.Label("fault/plan/deliver")
	byzLabel     = rng.Label("fault/plan/byz")
)

// NoiseFrameKind marks the garbage frames Byzantine spammers transmit.
// Protocol automata route unknown kinds to their default arm, so noise is
// decoded interference, never a protocol message.
var NoiseFrameKind = sim.RegisterFrameKind("fault.noise")

// corruptIDMask is xored into a corrupted frame's message id, making the
// frame look like a plausible-but-unknown protocol message.
const corruptIDMask = 0xfa17fa17fa17fa17

// Defaults applied by NewInjector when the corresponding Plan field is zero
// but the fault kind is active.
const (
	// DefaultCrashWindow is the slot window over which crash slots are
	// drawn when Plan.CrashWindow is zero.
	DefaultCrashWindow = 1 << 10
	// DefaultRecoverDelay bounds the extra down-time drawn for a
	// crash-recover node when Plan.RecoverDelay is zero.
	DefaultRecoverDelay = 1 << 7
	// jamAttempts bounds the candidate draws per injected jammer; a slot so
	// dense that every candidate already transmits simply injects fewer.
	jamAttempts = 8
	// maxPanicRecords caps the retained panic details (counters keep
	// counting past the cap).
	maxPanicRecords = 16
)

// MutateFunc rewrites a Byzantine node's outgoing frame in place
// (equivocation). It runs inside the node's Tick, so it may only touch the
// frame and draw from src (the wrapper's private labelled stream).
type MutateFunc func(slot int64, node int, f *sim.Frame, src *rng.Source)

// Plan declares a deterministic fault schedule. The zero value injects
// nothing. Rates are probabilities in [0, 1].
type Plan struct {
	// Seed roots every fault stream. Independent from the engine seed: the
	// same plan can be replayed against different protocol randomness.
	Seed uint64

	// CrashRate is the per-node probability of one crash during
	// CrashWindow. A crashed node goes inert; with probability RecoverRate
	// it recovers after 1..RecoverDelay further slots with its automaton
	// state intact, otherwise the crash is permanent (crash-stop).
	CrashRate    float64
	CrashWindow  int64
	RecoverRate  float64
	RecoverDelay int64

	// JamRate is the per-slot probability the adversary jams; on a jammed
	// slot JamPower idle nodes are injected into the transmit set as
	// interferers (half-duplex applies: a jamming node receives nothing,
	// and any frame "decoded" from a jammer is scrubbed as noise).
	JamRate  float64
	JamPower int

	// DropRate and CorruptRate are per-delivery probabilities: a decoded
	// frame is silently dropped, or delivered corrupted (mangled message
	// id, payloads nil'd) to that one receiver.
	DropRate    float64
	CorruptRate float64

	// ByzantineFraction selects nodes (per-node Bernoulli draw at wrap
	// time) to wrap in a Byzantine adversary: on idle slots it spams noise
	// frames with probability SpamRate, and on transmitting slots it
	// rewrites the outgoing frame via Mutate with probability MutateRate
	// (default 1 when Mutate is set). The wrapper cannot forge the
	// link-layer sender — the engine overwrites Frame.From after Tick — so
	// equivocation is confined to message contents (Msg, Payload).
	ByzantineFraction float64
	SpamRate          float64
	MutateRate        float64
	Mutate            MutateFunc
}

// Validate checks the plan's rates and bounds.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CrashRate", p.CrashRate}, {"RecoverRate", p.RecoverRate},
		{"JamRate", p.JamRate}, {"DropRate", p.DropRate},
		{"CorruptRate", p.CorruptRate}, {"ByzantineFraction", p.ByzantineFraction},
		{"SpamRate", p.SpamRate}, {"MutateRate", p.MutateRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.JamPower < 0 {
		return fmt.Errorf("fault: JamPower = %d negative", p.JamPower)
	}
	if p.CrashWindow < 0 || p.RecoverDelay < 0 {
		return fmt.Errorf("fault: negative crash window or recover delay")
	}
	return nil
}

// Stats are the injector's lifetime fault counters.
type Stats struct {
	// Crashed and Recovered count scheduled crash/recover transitions;
	// PanicCrashes counts node panics converted into crash-stop faults.
	Crashed, Recovered, PanicCrashes int
	// JammedSlots counts slots the adversary jammed; JamTransmissions the
	// injected interferers; JamScrubs receptions scrubbed because the
	// decoded sender was a jammer.
	JammedSlots, JamTransmissions, JamScrubs int
	// InertScrubs counts receptions scrubbed because the receiver was
	// crashed; Dropped and Corrupted the per-delivery frame faults.
	InertScrubs, Dropped, Corrupted int
	// ByzantineNodes counts wrapped nodes; SpamFrames and MutatedFrames
	// their injected and equivocated transmissions.
	ByzantineNodes, SpamFrames, MutatedFrames int
}

// PanicRecord is one recovered node panic (detail retained for the first
// maxPanicRecords; see Stats.PanicCrashes for the full count).
type PanicRecord struct {
	Slot  int64
	Node  int
	Phase string // "tick" or "receive"
	Value interface{}
	Stack []byte
}

// nodeState is one node's compiled fault schedule and current status.
type nodeState struct {
	crashSlot   int64 // -1: never crashes
	recoverSlot int64 // -1: crash-stop
	down        bool
	panicked    bool
}

// Injector compiles a Plan into a sim.FaultHook. One injector drives one
// engine; it is not safe for concurrent use beyond the FaultHook contract.
type Injector struct {
	plan Plan
	n    int

	jamSrc     *rng.Source
	deliverSrc *rng.Source

	sched        []nodeState
	hasSchedules bool
	inert        []bool
	inertCount   int

	jammed  []bool // per-node: injected as jammer this slot
	jamList []int
	txMark  []bool // scratch: real transmitters of the slot being perturbed

	corrupt    []bool // per-receiver corruption marks for the current slot
	corruptAny bool
	scratch    []sim.Frame // per-receiver corrupted copies

	byzWrapped []bool
	wrappers   []*byzantineNode

	epoch  uint64
	stats  Stats
	panics []PanicRecord
}

// NewInjector compiles the plan for an n-node deployment.
func NewInjector(plan Plan, n int) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("fault: injector over %d nodes", n)
	}
	if plan.CrashWindow == 0 {
		plan.CrashWindow = DefaultCrashWindow
	}
	if plan.RecoverDelay == 0 {
		plan.RecoverDelay = DefaultRecoverDelay
	}
	if plan.Mutate != nil && plan.MutateRate == 0 {
		plan.MutateRate = 1
	}
	inj := &Injector{
		plan:       plan,
		n:          n,
		sched:      make([]nodeState, n),
		inert:      make([]bool, n),
		jammed:     make([]bool, n),
		txMark:     make([]bool, n),
		corrupt:    make([]bool, n),
		scratch:    make([]sim.Frame, n),
		byzWrapped: make([]bool, n),
	}
	inj.rewind()
	return inj, nil
}

// rewind (re)derives every stream and schedule from the plan seed; shared
// by construction and Reset.
func (inj *Injector) rewind() {
	root := rng.New(inj.plan.Seed)
	inj.jamSrc = root.SplitLabeled(jamLabel)
	inj.deliverSrc = root.SplitLabeled(deliverLabel)
	inj.hasSchedules = false
	inj.inertCount = 0
	inj.epoch = 0
	for i := range inj.sched {
		inj.sched[i] = inj.drawSchedule(root.SplitLabels(crashLabel, uint64(i)))
		if inj.sched[i].crashSlot >= 0 {
			inj.hasSchedules = true
		}
		inj.inert[i] = false
		inj.jammed[i] = false
		inj.corrupt[i] = false
	}
	inj.jamList = inj.jamList[:0]
	inj.corruptAny = false
	inj.stats = Stats{}
	inj.panics = nil
	for _, w := range inj.wrappers {
		w.spammed, w.mutated = 0, 0
	}
}

// drawSchedule compiles one node's crash schedule from its labelled stream.
// Bernoulli(0) consumes nothing, so a zero-rate plan draws nothing at all.
func (inj *Injector) drawSchedule(src *rng.Source) nodeState {
	st := nodeState{crashSlot: -1, recoverSlot: -1}
	if !src.Bernoulli(inj.plan.CrashRate) {
		return st
	}
	st.crashSlot = 1 + src.Int63n(inj.plan.CrashWindow)
	if src.Bernoulli(inj.plan.RecoverRate) {
		st.recoverSlot = st.crashSlot + 1 + src.Int63n(inj.plan.RecoverDelay)
	}
	return st
}

// SlotStart implements sim.FaultHook: apply scheduled crash/recover
// transitions and return the inert bitmap (nil when nothing is down).
func (inj *Injector) SlotStart(slot int64, n int) []bool {
	if n != inj.n {
		panic(fmt.Sprintf("fault: injector over %d nodes driven by a %d-node engine", inj.n, n))
	}
	if inj.hasSchedules {
		for i := range inj.sched {
			st := &inj.sched[i]
			if st.down {
				if !st.panicked && st.recoverSlot == slot {
					st.down = false
					inj.inert[i] = false
					inj.inertCount--
					inj.stats.Recovered++
				}
			} else if st.crashSlot == slot {
				st.down = true
				inj.inert[i] = true
				inj.inertCount++
				inj.stats.Crashed++
			}
		}
	}
	if inj.inertCount == 0 {
		return nil
	}
	return inj.inert
}

// PerturbTransmitters implements sim.FaultHook: on a jammed slot, inject up
// to JamPower idle, live nodes into the transmit set. The jam stream is
// advanced serially in slot order, so the jammed-slot sequence is a pure
// function of the plan seed and the (deterministic) transmit history.
func (inj *Injector) PerturbTransmitters(slot int64, tx []int) []int {
	if inj.plan.JamPower <= 0 || inj.plan.JamRate <= 0 {
		return tx
	}
	for _, j := range inj.jamList {
		inj.jammed[j] = false
	}
	inj.jamList = inj.jamList[:0]
	if !inj.jamSrc.Bernoulli(inj.plan.JamRate) {
		return tx
	}
	inj.stats.JammedSlots++
	real := len(tx)
	for _, t := range tx {
		inj.txMark[t] = true
	}
	for p := 0; p < inj.plan.JamPower; p++ {
		for attempt := 0; attempt < jamAttempts; attempt++ {
			c := inj.jamSrc.Intn(inj.n)
			if inj.txMark[c] || inj.jammed[c] || inj.inert[c] {
				continue
			}
			inj.jammed[c] = true
			inj.jamList = append(inj.jamList, c)
			tx = append(tx, c)
			inj.stats.JamTransmissions++
			break
		}
	}
	for _, t := range tx[:real] {
		inj.txMark[t] = false
	}
	return tx
}

// FilterReceptions implements sim.FaultHook: scrub jammer decodes and inert
// receivers, then draw the per-delivery drop/corrupt faults in receiver
// order from the serial deliver stream.
func (inj *Injector) FilterReceptions(slot int64, receptions []sinr.Reception) {
	inj.corruptAny = false
	drop, corrupt := inj.plan.DropRate, inj.plan.CorruptRate
	if inj.inertCount == 0 && len(inj.jamList) == 0 && drop <= 0 && corrupt <= 0 {
		return
	}
	jamming := len(inj.jamList) > 0
	for i := range receptions {
		s := receptions[i].Sender
		if s < 0 {
			continue
		}
		if inj.inertCount > 0 && inj.inert[i] {
			receptions[i].Sender = -1
			inj.stats.InertScrubs++
			continue
		}
		if jamming && inj.jammed[s] {
			receptions[i].Sender = -1
			inj.stats.JamScrubs++
			continue
		}
		if drop > 0 && inj.deliverSrc.Bernoulli(drop) {
			receptions[i].Sender = -1
			inj.stats.Dropped++
			continue
		}
		if corrupt > 0 {
			if inj.deliverSrc.Bernoulli(corrupt) {
				inj.corrupt[i] = true
				inj.corruptAny = true
				inj.stats.Corrupted++
			} else {
				inj.corrupt[i] = false
			}
		}
	}
}

// DeliverFrame implements sim.FaultHook: deliveries marked corrupt get a
// per-receiver mangled copy (the pooled frame is shared with the slot's
// other receivers and must not be mutated). Concurrency-safe: distinct
// receivers touch distinct scratch frames and no stream is drawn from.
func (inj *Injector) DeliverFrame(slot int64, node int, f *sim.Frame) *sim.Frame {
	if !inj.corruptAny || !inj.corrupt[node] {
		return f
	}
	c := &inj.scratch[node]
	*c = *f
	c.Msg.ID ^= corruptIDMask
	c.Msg.Payload = nil
	c.Payload = nil
	return c
}

// NodePanicked implements sim.FaultHook: the node is crash-stopped (no
// scheduled recovery applies) and the panic is recorded.
func (inj *Injector) NodePanicked(slot int64, node int, phase string, value interface{}, stack []byte) {
	st := &inj.sched[node]
	st.panicked = true
	st.recoverSlot = -1
	if !st.down {
		st.down = true
		inj.inert[node] = true
		inj.inertCount++
	}
	inj.stats.PanicCrashes++
	if len(inj.panics) < maxPanicRecords {
		inj.panics = append(inj.panics, PanicRecord{
			Slot: slot, Node: node, Phase: phase, Value: value,
			Stack: append([]byte(nil), stack...),
		})
	}
}

// EpochApplied implements sim.FaultHook: per-node fault state follows the
// churn epoch's swap-remove relabels; nodes added by churn draw fresh crash
// schedules from (crash, epoch#, slot-id) labels and are never Byzantine
// (WrapNodes runs at construction time only).
func (inj *Injector) EpochApplied(delta *sinr.EpochDelta) {
	for _, rl := range delta.Relabels {
		inj.sched[rl.To] = inj.sched[rl.From]
		inj.inert[rl.To] = inj.inert[rl.From]
		inj.byzWrapped[rl.To] = inj.byzWrapped[rl.From]
	}
	newN := delta.NewN
	if newN > cap(inj.sched) {
		inj.sched = append(inj.sched[:cap(inj.sched)], make([]nodeState, newN-cap(inj.sched))...)
		inj.inert = append(inj.inert[:cap(inj.inert)], make([]bool, newN-cap(inj.inert))...)
		inj.jammed = append(inj.jammed[:cap(inj.jammed)], make([]bool, newN-cap(inj.jammed))...)
		inj.txMark = append(inj.txMark[:cap(inj.txMark)], make([]bool, newN-cap(inj.txMark))...)
		inj.corrupt = append(inj.corrupt[:cap(inj.corrupt)], make([]bool, newN-cap(inj.corrupt))...)
		inj.scratch = append(inj.scratch[:cap(inj.scratch)], make([]sim.Frame, newN-cap(inj.scratch))...)
		inj.byzWrapped = append(inj.byzWrapped[:cap(inj.byzWrapped)], make([]bool, newN-cap(inj.byzWrapped))...)
	}
	inj.sched = inj.sched[:newN]
	inj.inert = inj.inert[:newN]
	inj.jammed = inj.jammed[:newN]
	inj.txMark = inj.txMark[:newN]
	inj.corrupt = inj.corrupt[:newN]
	inj.scratch = inj.scratch[:newN]
	inj.byzWrapped = inj.byzWrapped[:newN]

	inj.epoch++
	root := rng.New(inj.plan.Seed)
	for _, id := range delta.Added {
		inj.sched[id] = inj.drawSchedule(root.SplitLabels(crashLabel, inj.epoch, uint64(id)))
		if inj.sched[id].crashSlot >= 0 {
			inj.hasSchedules = true
		}
		inj.inert[id] = false
		inj.jammed[id] = false
		inj.corrupt[id] = false
		inj.byzWrapped[id] = false
	}
	inj.n = newN
	inj.jamList = inj.jamList[:0]
	inj.inertCount = 0
	for _, down := range inj.inert {
		if down {
			inj.inertCount++
		}
	}
}

// Reset implements sim.FaultHook: rewind to slot zero alongside
// Engine.Reset, re-deriving every schedule and stream from the plan seed
// over the injector's current node count.
func (inj *Injector) Reset() { inj.rewind() }

// WrapNodes wraps the plan's Byzantine selection of nodes in adversarial
// wrappers and returns the (copied) node slice to hand to the engine. Call
// once, before sim.NewEngine. Selection and wrapper behavior draw from
// per-node fault/plan/byz streams, so the Byzantine set is a pure function
// of the plan seed.
func (inj *Injector) WrapNodes(nodes []sim.Node) []sim.Node {
	frac := inj.plan.ByzantineFraction
	if frac <= 0 {
		return nodes
	}
	inj.wrappers = inj.wrappers[:0]
	for i := range inj.byzWrapped {
		inj.byzWrapped[i] = false
	}
	out := append([]sim.Node(nil), nodes...)
	root := rng.New(inj.plan.Seed)
	for i, n := range out {
		if n == nil || !root.SplitLabels(byzLabel, uint64(i), 0).Bernoulli(frac) {
			continue
		}
		w := &byzantineNode{
			inner:      n,
			seed:       inj.plan.Seed,
			spamRate:   inj.plan.SpamRate,
			mutateRate: inj.plan.MutateRate,
			mutate:     inj.plan.Mutate,
		}
		out[i] = w
		inj.wrappers = append(inj.wrappers, w)
		inj.byzWrapped[i] = true
	}
	return out
}

// Stats returns the lifetime fault counters, folding in the Byzantine
// wrappers' per-node tallies. Call between slots (not concurrently with
// Step).
func (inj *Injector) Stats() Stats {
	s := inj.stats
	s.ByzantineNodes = len(inj.wrappers)
	for _, w := range inj.wrappers {
		s.SpamFrames += w.spammed
		s.MutatedFrames += w.mutated
	}
	return s
}

// Panics returns the retained panic records (first maxPanicRecords).
func (inj *Injector) Panics() []PanicRecord { return inj.panics }

// Inert reports whether node i is currently crashed (inert).
func (inj *Injector) Inert(i int) bool { return inj.inert[i] }

// Byzantine reports whether node i was wrapped as a Byzantine adversary.
func (inj *Injector) Byzantine(i int) bool { return inj.byzWrapped[i] }

// NumNodes returns the injector's current deployment size.
func (inj *Injector) NumNodes() int { return inj.n }
