package fault

import (
	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

// noiseIDBase keeps spam message ids disjoint from protocol ids (which are
// small node/round encodings): the top bit is set and the node id and slot
// are packed below it.
const noiseIDBase = uint64(1) << 63

// byzantineNode wraps a correct automaton in an adversary: on slots where
// the inner node stays silent it spams a noise frame with probability
// spamRate, and on slots where the inner node transmits it rewrites the
// outgoing frame via mutate with probability mutateRate (equivocation).
//
// The wrapper cannot forge the link-layer sender: the engine overwrites
// Frame.From with the true slot id after every Tick, so a Byzantine node
// lies only about message contents (Msg.ID, Msg.Origin, payloads). Its
// adversarial randomness comes from a private fault/plan/byz/<node> stream
// re-derived on every Init, so wrapped executions replay under
// Engine.Reset; the inner node's engine-provided stream passes through
// untouched.
type byzantineNode struct {
	inner      sim.Node
	seed       uint64
	spamRate   float64
	mutateRate float64
	mutate     MutateFunc

	id      int
	src     *rng.Source
	spammed int
	mutated int
}

// Init implements sim.Node.
func (w *byzantineNode) Init(id int, src *rng.Source) {
	w.id = id
	w.src = rng.New(w.seed).SplitLabels(byzLabel, uint64(id), 1)
	w.spammed, w.mutated = 0, 0
	w.inner.Init(id, src)
}

// InitError implements sim.NodeInitError by passing through the inner
// node's recorded failure, if it reports one.
func (w *byzantineNode) InitError() error {
	if ie, ok := w.inner.(sim.NodeInitError); ok {
		return ie.InitError()
	}
	return nil
}

// Tick implements sim.Node. Stream discipline: exactly one adversarial
// draw per Tick outcome (mutate when the inner node sent, spam when it did
// not), so consumption is a pure function of the inner node's
// deterministic transmit history.
func (w *byzantineNode) Tick(slot int64, f *sim.Frame) bool {
	if w.inner.Tick(slot, f) {
		if w.mutate != nil && w.src.Bernoulli(w.mutateRate) {
			w.mutate(slot, w.id, f, w.src)
			w.mutated++
		}
		return true
	}
	if w.src.Bernoulli(w.spamRate) {
		f.Kind = NoiseFrameKind
		f.Msg = core.Message{
			ID:     core.MessageID(noiseIDBase | uint64(w.id)<<24 | uint64(slot)&0xffffff),
			Origin: w.id,
		}
		f.Payload = nil
		w.spammed++
		return true
	}
	return false
}

// Receive implements sim.Node: the inner automaton still processes traffic
// (a Byzantine node participates, it just lies).
func (w *byzantineNode) Receive(slot int64, f *sim.Frame) { w.inner.Receive(slot, f) }
