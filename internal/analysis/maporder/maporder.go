// Package maporder flags iteration over Go maps whose loop body does
// order-sensitive work.
//
// Go randomizes map iteration order per run, so a `for range m` that
// appends to a slice, accumulates floating-point sums, emits frames or
// results, or draws randomness produces output that differs run to run —
// exactly the nondeterminism the repository's bit-identity invariants rule
// out. The analyzer recognizes the standard safe shape (collect, then sort
// the collected slice before it is used, in the same block) and the
// //sinrlint:allow maporder annotation for sites whose order provably does
// not reach any output.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"sinrmac/internal/analysis"
)

// Analyzer is the maporder check. It applies to every package in the
// module: map-order nondeterminism is as fatal in the experiment harness or
// a cmd as it is in the engine.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body appends, accumulates floats, emits results or draws randomness",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				stmts = n.List
			case *ast.CaseClause:
				stmts = n.Body
			case *ast.CommClause:
				stmts = n.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkRange inspects one range statement; rest is the tail of the
// enclosing block after it, scanned for the collect-then-sort pardon.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	var reason string
	// appendTargets collects the objects of `x = append(x, ...)` self-assign
	// targets; they are pardonable if sorted before use.
	var appendTargets []types.Object
	pardonable := true
	// handled marks append calls already classified via their enclosing
	// `x = append(x, ...)` assignment, so the child visit skips them.
	handled := map[*ast.CallExpr]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloat(pass.TypeOf(n.Lhs[0])) {
					reason = "accumulates a floating-point sum (order-dependent rounding)"
					return false
				}
			}
			// x = append(x, ...) — record the target for the sort pardon.
			if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					handled[call] = true
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := pass.ObjectOf(id); obj != nil && sameIdentBase(call, pass, obj) {
							appendTargets = append(appendTargets, obj)
							return true
						}
					}
					pardonable = false
					appendTargets = append(appendTargets, nil)
					return true
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) && !handled[n] {
				// append not in x = append(x, ...) form.
				pardonable = false
				appendTargets = append(appendTargets, nil)
				return true
			}
			if drawsRandomness(pass, n) {
				reason = "draws randomness (stream consumed in map order)"
				return false
			}
			if isFmtPrint(pass, n) {
				reason = "prints output (rendered in map order)"
				return false
			}
			for _, arg := range n.Args {
				if isFrameType(pass.TypeOf(arg)) {
					reason = "emits a sim.Frame (delivery order becomes map order)"
					return false
				}
			}
		case *ast.SendStmt:
			reason = "sends on a channel (emission order becomes map order)"
			return false
		}
		return true
	})
	if reason == "" {
		if len(appendTargets) == 0 {
			return
		}
		if pardonable && allSortedAfter(pass, appendTargets, rest) {
			return
		}
		reason = "appends to a slice (element order becomes map order; sort the slice before use, or sort the keys first)"
	}
	pass.Reportf(rs.Pos(), "iteration over map %s: sort keys first, or annotate why order cannot reach output", reason)
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return b.Info()&types.IsFloat != 0 || b.Info()&types.IsComplex != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sameIdentBase reports whether the append call's first argument is the
// identifier bound to obj — the `x = append(x, ...)` shape.
func sameIdentBase(call *ast.CallExpr, pass *analysis.Pass, obj types.Object) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// drawsRandomness reports whether the call consumes a pseudo-random stream:
// a method on an internal/rng Source or anything from math/rand.
func drawsRandomness(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				return true
			}
			return false
		}
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sinrmac/internal/rng"
}

// isFmtPrint reports whether the call writes formatted output (the fmt
// print family; Sprintf and friends return strings and are judged by what
// happens to the result instead).
func isFmtPrint(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
		return true
	}
	return false
}

func isFrameType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Frame" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sinrmac/internal/sim"
}

// allSortedAfter reports whether every append target is passed to a
// sort/slices call in the block tail following the range statement.
func allSortedAfter(pass *analysis.Pass, targets []types.Object, rest []ast.Stmt) bool {
	if len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn, ok := pass.ObjectOf(selIdent(sel)).(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				markIdents(pass, arg, sorted)
			}
			return true
		})
	}
	for _, obj := range targets {
		if obj == nil || !sorted[obj] {
			return false
		}
	}
	return true
}

func selIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id
	}
	return ast.NewIdent("")
}

// markIdents records every identifier object mentioned in e (sort.Sort
// wraps the slice in a conversion, so a plain-argument check is too
// narrow).
func markIdents(pass *analysis.Pass, e ast.Expr, out map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
}
