// Fixture for the maporder analyzer: map iteration with order-sensitive
// bodies is a violation; sorted-keys, collect-then-sort and the
// //sinrlint:allow maporder annotation are the sanctioned escapes.
package maporder

import (
	"fmt"
	"sort"

	"sinrmac/internal/rng"
)

func appendUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "appends to a slice"
		out = append(out, v)
	}
	return out
}

// collectThenSort is the pardoned shape: the collected slice is sorted in
// the same block before use, so map order cannot reach the output.
func collectThenSort(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func floatAccumulate(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "floating-point sum"
		sum += v
	}
	return sum
}

// intAccumulate is fine: integer addition is associative, so the sum is
// order-independent.
func intAccumulate(m map[int]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// sortedKeys is the canonical deterministic shape: collect keys, sort,
// then iterate the sorted slice.
func sortedKeys(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func printsOutput(m map[int]int) {
	for k, v := range m { // want "prints output"
		fmt.Println(k, v)
	}
}

func channelSend(m map[int]int, ch chan int) {
	for _, v := range m { // want "sends on a channel"
		ch <- v
	}
}

func drawsInMapOrder(m map[int]bool, src *rng.Source) uint64 {
	var last uint64
	for range m { // want "draws randomness"
		last = src.Uint64()
	}
	return last
}

// annotated is the negative case for the escape hatch: the doc-comment
// annotation pardons the whole declaration.
//
//sinrlint:allow maporder fixture: order provably cannot reach output
func annotated(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
