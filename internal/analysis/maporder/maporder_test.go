package maporder_test

import (
	"testing"

	"sinrmac/internal/analysis/analysistest"
	"sinrmac/internal/analysis/maporder"
)

func TestAnalyzerMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "maporder")
}
