// Fixture for the hotalloc analyzer: //sinrlint:hotpath functions must be
// statically allocation-free; //sinrlint:allow hotalloc pardons amortized
// growth sites.
package hotalloc

import "fmt"

type state struct {
	buf []int
	out []float64
}

// kernel is a clean hot path: loops, arithmetic, indexing, self-append.
//
//sinrlint:hotpath
func (s *state) kernel(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.buf = append(s.buf, len(xs))
	return sum
}

//sinrlint:hotpath
func (s *state) badMake(n int) {
	s.out = make([]float64, n) // want "make allocates"
}

//sinrlint:hotpath
func (s *state) badNew() *int {
	return new(int) // want "new allocates"
}

//sinrlint:hotpath
func (s *state) badAppend(dst []int, v int) []int {
	dst = append(dst, v)
	t := append(dst, v) // want "append to a slice the function does not own"
	_ = t
	return dst
}

//sinrlint:hotpath
func (s *state) badLiterals() {
	m := map[int]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	p := &state{} // want "composite literal allocates"
	_ = p
	var a [4]float64
	_ = a
	v := state{}
	_ = v
}

//sinrlint:hotpath
func (s *state) badBox(x int) interface{} {
	var i interface{} = x // want "boxes its operand"
	_ = i
	return x // want "boxes its operand"
}

func sink(vs ...interface{}) {}

//sinrlint:hotpath
func (s *state) badVariadic(x int) {
	sink(x) // want "boxes its operand"
}

//sinrlint:hotpath
func (s *state) badFmt(x int) {
	fmt.Println(x) // want "fmt.Println allocates"
}

//sinrlint:hotpath
func (s *state) badClosure(n int) func() int {
	f := func() int { return n } // want "closure captures"
	return f
}

//sinrlint:hotpath
func (s *state) okClosure() func() int {
	f := func() int { return 42 }
	return f
}

//sinrlint:hotpath
func (s *state) badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//sinrlint:hotpath
func (s *state) badConv(b []byte) string {
	return string(b) // want "string/slice conversion copies"
}

//sinrlint:hotpath
func (s *state) badGo() {
	go noop() // want "go statement"
}

func noop() {}

// growth is the negative case for the escape hatch: the amortized make is
// pardoned by the line-level annotation.
//
//sinrlint:hotpath
func (s *state) growth(n int) {
	if cap(s.out) < n {
		//sinrlint:allow hotalloc amortized growth, fixture
		s.out = make([]float64, n)
	}
	s.out = s.out[:n]
}

// unannotated functions are outside the analyzer's scope entirely.
func unannotated(n int) []int {
	return make([]int, n)
}
