package hotalloc_test

import (
	"testing"

	"sinrmac/internal/analysis/analysistest"
	"sinrmac/internal/analysis/hotalloc"
)

func TestAnalyzerHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hotalloc")
}
