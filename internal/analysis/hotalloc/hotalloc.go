// Package hotalloc statically rejects allocating constructs in functions
// annotated //sinrlint:hotpath.
//
// The steady-state slot path — Step/RunBatch kernels, the sparse/bounds/
// shard evaluation chunks, the ApplyEpoch steady-state patches — is held to
// zero allocations per slot by dynamic gates (TestEngineStepAllocFree,
// macbench allocs/op columns). Those gates only fire on the workloads they
// run; this analyzer rejects the allocating constructs themselves, in any
// annotated function, before a workload ever exists:
//
//   - make, new
//   - map and slice composite literals, and &T{...} (escaping composite)
//   - append whose base is not reassigned to the same variable
//     (x = append(x, ...) — amortized growth of an owned buffer — is
//     allowed)
//   - function literals that capture enclosing variables (closure alloc)
//   - conversions of concrete values to interface types (boxing)
//   - fmt calls, string concatenation and string<->[]byte/[]rune
//     conversions
//
// The analyzer is deliberately conservative: a flagged construct may be
// provably non-escaping in context, and such sites carry a line-level
// //sinrlint:allow hotalloc with the proof sketch. Plain struct and array
// value literals are not flagged (they are stack values), and constructs in
// nested function literals are judged as part of the literal itself.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"sinrmac/internal/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reject allocating constructs in //sinrlint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.IsHotpathDoc(fd.Doc) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// fn is the hotpath function; used to resolve result types for return
	// statements and to bound capture detection.
	fn *ast.FuncDecl
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, fn: fd}
	selfAppends := selfAppendCalls(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n, selfAppends)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(c.pass, n) {
				c.reportf(n.Pos(), "closure captures enclosing variables (allocates closure + boxed captures)")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass.TypeOf(n)) {
				c.reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.SendStmt:
			if ch := c.pass.TypeOf(n.Chan); ch != nil {
				if cht, ok := ch.Underlying().(*types.Chan); ok {
					c.ifaceConv(n.Value, cht.Elem())
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dst := c.pass.TypeOf(n.Type)
				for _, v := range n.Values {
					c.ifaceConv(v, dst)
				}
			}
		case *ast.ReturnStmt:
			c.returnStmt(n)
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement on a hot path (goroutine allocation and scheduling)")
		}
		return true
	})
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	c.pass.Reportf(pos, "hotpath function %s: "+format, append([]interface{}{c.fn.Name.Name}, args...)...)
}

// selfAppendCalls returns the append calls appearing as x = append(x, ...):
// growth of a variable the function owns, amortized O(1) and free in
// steady state once capacity is reached.
func selfAppendCalls(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return true
		}
		for j, rhs := range as.Rhs {
			if j >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			if sameLValue(as.Lhs[j], call.Args[0]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// sameLValue reports whether two expressions are syntactically the same
// identifier or selector chain (x, s.buf, s.a.b).
func sameLValue(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		return ok && a.Name == bid.Name
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameLValue(a.X, bs.X)
	case *ast.IndexExpr:
		bi, ok := b.(*ast.IndexExpr)
		return ok && sameLValue(a.X, bi.X) && sameLValue(a.Index, bi.Index)
	}
	return false
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

func (c *checker) call(call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	pass := c.pass
	// Conversions: T(x). Flag interface boxing and string<->bytes copies.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypeOf(call.Args[0])
		if isInterface(dst) && src != nil && !isInterface(src) && !isUntypedNil(pass, call.Args[0]) {
			c.reportf(call.Pos(), "conversion to interface type %s boxes its operand", dst)
		}
		if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
			c.reportf(call.Pos(), "string/slice conversion copies")
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "make allocates")
			case "new":
				c.reportf(call.Pos(), "new allocates")
			case "append":
				if !selfAppends[call] {
					c.reportf(call.Pos(), "append to a slice the function does not own (not x = append(x, ...)) allocates on growth")
				}
			}
			return
		}
	}
	// Calls into fmt allocate (interface boxing of arguments, formatting
	// buffers).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.reportf(call.Pos(), "fmt.%s allocates", sel.Sel.Name)
				return
			}
		}
	}
	// Implicit interface conversions at the call boundary.
	sigT := pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.ifaceConv(arg, pt)
		}
	}
}

func (c *checker) assign(as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		if as.Tok == token.ADD_ASSIGN && isString(c.pass.TypeOf(as.Lhs[0])) {
			c.reportf(as.Pos(), "string concatenation allocates")
		}
		return
	}
	for j, rhs := range as.Rhs {
		if j >= len(as.Lhs) {
			break
		}
		c.ifaceConv(rhs, c.pass.TypeOf(as.Lhs[j]))
	}
}

func (c *checker) returnStmt(ret *ast.ReturnStmt) {
	results := c.fnResults()
	for i, r := range ret.Results {
		if i < len(results) {
			c.ifaceConv(r, results[i])
		}
	}
}

func (c *checker) fnResults() []types.Type {
	obj := c.pass.ObjectOf(c.fn.Name)
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// ifaceConv flags an implicit concrete→interface conversion of src when
// assigned to destination type dst.
func (c *checker) ifaceConv(src ast.Expr, dst types.Type) {
	if dst == nil || !isInterface(dst) {
		return
	}
	st := c.pass.TypeOf(src)
	if st == nil || isInterface(st) || isUntypedNil(c.pass, src) {
		return
	}
	c.reportf(src.Pos(), "implicit conversion of %s to interface %s boxes its operand", st, dst)
}

func (c *checker) composite(lit *ast.CompositeLit) {
	t := c.pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates")
	}
	// Struct and array value literals are stack values; &T{...} is caught
	// at the UnaryExpr.
}

// capturesOuter reports whether the function literal references a variable
// declared outside it (other than package-level state, which needs no
// closure cell).
func capturesOuter(pass *analysis.Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || v.Pos() == 0 || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
