// Package analysistest runs one analyzer over a testdata fixture package
// and checks its diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of this repository's
// self-contained framework.
//
// Fixture layout follows the x/tools convention: the analyzer package holds
// testdata/src/<pkg>/*.go, and every line that should produce a diagnostic
// carries a trailing comment of the form
//
//	code() // want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. Lines
// without a want comment must produce no diagnostic, which is how the
// negative cases for the //sinrlint:allow escape hatches are expressed: an
// annotated violation simply has no want, and the test fails if the
// suppression ever stops working.
//
// Fixtures may import real repository packages (sinrmac/internal/sim and
// friends); their export data is produced on demand by one cached
// `go list -export -deps` call per test binary.
package analysistest

import (
	"bytes"
	"encoding/json"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sinrmac/internal/analysis"
	"sinrmac/internal/analysis/driver"
)

// want is one expectation: a diagnostic whose message matches rx, on line.
type want struct {
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run analyzes the fixture package at testdata/src/<pkg> (relative to the
// calling test's package directory) with a and compares diagnostics against
// the fixture's want annotations. The analyzer's Match filter is ignored:
// fixtures opt in by construction.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files under %s: %v", dir, err)
	}
	sort.Strings(files)

	loader := driver.NewLoader(exportData(t, files), nil)
	fixture, err := loader.Check("fixture/"+pkg, "", files)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fixture.Fset, fixture.Files, fixture.Types, fixture.Info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	analysis.SortDiagnostics(fixture.Fset, diags)

	wants := collectWants(t, fixture)
	for _, d := range diags {
		pos := fixture.Fset.Position(d.Pos)
		key := pos.Filename
		matched := false
		for _, w := range wants[key] {
			if w.line == pos.Line && !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.rx)
			}
		}
	}
}

// collectWants parses the fixtures' want comments.
func collectWants(t *testing.T, pkg *driver.Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, q := range quoted.FindAllString(m[1], -1) {
					pat := q[1 : len(q)-1]
					pat = strings.ReplaceAll(pat, `\"`, `"`)
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, line, pat, err)
					}
					out[name] = append(out[name], &want{line: line, rx: rx})
				}
			}
		}
	}
	return out
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

// exportData returns an import-path -> export-file map covering every
// import in the fixture files (with transitive dependencies), shelling out
// to the go command only for paths not yet cached in this test binary.
func exportData(t *testing.T, files []string) map[string]string {
	t.Helper()
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	seen := map[string]bool{}
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			if _, ok := exportCache[path]; !ok {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			t.Fatalf("go list -export %v: %v", missing, err)
		}
		type entry struct {
			ImportPath string
			Export     string
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var e entry
			if err := dec.Decode(&e); err != nil {
				break
			}
			if e.Export != "" {
				exportCache[e.ImportPath] = e.Export
			}
		}
	}
	return exportCache
}
