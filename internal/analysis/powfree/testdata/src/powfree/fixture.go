// Fixture for the powfree analyzer: math.Pow/math.Hypot are violations
// unless the site is covered by a //sinrlint:allow powfree annotation.
package powfree

import "math"

func hotPow(d, alpha float64) float64 {
	return math.Pow(d, alpha) // want "math.Pow on a sinr/geom path"
}

func hotHypot(x, y float64) float64 {
	return math.Hypot(x, y) // want "math.Hypot on a sinr/geom path"
}

// sqrtIsFine: the sanctioned kernel arithmetic never triggers the analyzer.
func sqrtIsFine(d2 float64) float64 {
	return math.Sqrt(d2) * math.Abs(d2)
}

// referencePath is the negative case for the declaration-level escape
// hatch: the whole body is pardoned by the doc-comment annotation.
//
//sinrlint:allow powfree fixture reference path, mirrors the naive Channel
func referencePath(d, alpha float64) float64 {
	return math.Pow(d, alpha) + math.Hypot(d, alpha)
}

// lineAllowed is the negative case for the line-level escape hatch: only
// the annotated line is pardoned, the un-annotated one still fires.
func lineAllowed(d, alpha float64) float64 {
	//sinrlint:allow powfree construction-time derivation in fixture
	p := math.Pow(d, alpha)
	q := math.Pow(alpha, d) // want "math.Pow on a sinr/geom path"
	return p + q
}
