package powfree_test

import (
	"testing"

	"sinrmac/internal/analysis/analysistest"
	"sinrmac/internal/analysis/powfree"
)

func TestAnalyzerPowfree(t *testing.T) {
	analysistest.Run(t, powfree.Analyzer, "powfree")
}
