// Package powfree pins the pow-free kernel arithmetic invariant.
//
// The hardware-fast slot kernel PR replaced every math.Pow/math.Hypot on
// the SINR evaluation paths with integer-exponent multiplication and
// Sqrt∘DistSq — bit-identical for the supported α and several times
// faster. This analyzer keeps it that way: inside internal/sinr and
// internal/geom non-test code, any call to math.Pow or math.Hypot is a
// violation unless the site carries //sinrlint:allow powfree with a
// justification — reserved for the naive reference Channel, the
// construction-time precomputations that run once per deployment, and the
// generic-α fallbacks that the fast paths never take for the shipped
// exponents.
package powfree

import (
	"go/ast"
	"go/types"

	"sinrmac/internal/analysis"
)

var forbidden = map[string]bool{"Pow": true, "Hypot": true}

// Analyzer is the powfree check.
var Analyzer = &analysis.Analyzer{
	Name: "powfree",
	Doc:  "forbid math.Pow/math.Hypot in internal/sinr and internal/geom outside annotated reference paths",
	Match: func(path string) bool {
		return path == "sinrmac/internal/sinr" || path == "sinrmac/internal/geom"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.ObjectOf(id).(*types.PkgName)
			if !ok || pn.Imported().Path() != "math" {
				return true
			}
			pass.Reportf(sel.Pos(), "math.%s on a sinr/geom path; kernels are pow-free (integer-α multiplication, Sqrt∘DistSq) — annotate only reference or construction-time code", sel.Sel.Name)
			return true
		})
	}
	return nil
}
