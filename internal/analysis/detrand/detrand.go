// Package detrand forbids wall-clock and ambient-randomness sources in the
// simulator's decision-path packages.
//
// Every reception table, protocol decision and experiment row in this
// repository must be a pure function of explicit seeds: the differential
// suites assert bit-identity across worker counts, shard counts, batch
// sizes and fault plans, and one time.Now() or math/rand global on a
// decision path silently breaks all of them. Randomness must come from
// internal/rng sources threaded through labelled splits; time may only be
// read by the annotated instrumentation sites (driver calibration probes,
// profiling counters) whose results feed scheduling heuristics, never
// protocol or channel decisions.
package detrand

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"sinrmac/internal/analysis"
)

// decisionPackages are the packages whose code decides simulation outcomes:
// the engine slot path, the SINR evaluators and their geometry, the fault
// injector, the experiment harness and scheduler, every protocol package,
// and the deterministic rng and topology layers they draw on.
var decisionPackages = map[string]bool{
	"sinrmac/internal/sim":        true,
	"sinrmac/internal/sinr":       true,
	"sinrmac/internal/fault":      true,
	"sinrmac/internal/exp":        true,
	"sinrmac/internal/rng":        true,
	"sinrmac/internal/geom":       true,
	"sinrmac/internal/topology":   true,
	"sinrmac/internal/core":       true,
	"sinrmac/internal/stats":      true,
	"sinrmac/internal/graphs":     true,
	"sinrmac/internal/workpool":   true,
	"sinrmac/internal/hmbcast":    true,
	"sinrmac/internal/decay":      true,
	"sinrmac/internal/approgress": true,
	"sinrmac/internal/macnode":    true,
	"sinrmac/internal/mac":        true,
	"sinrmac/internal/bcastproto": true,
	"sinrmac/internal/consensus":  true,
}

// forbiddenImports are packages whose mere presence on a decision path is a
// violation: their randomness is process-global or OS-seeded and cannot be
// replayed from an experiment seed.
var forbiddenImports = map[string]string{
	"math/rand":    "use internal/rng sources split from explicit seeds",
	"math/rand/v2": "use internal/rng sources split from explicit seeds",
	"crypto/rand":  "use internal/rng sources split from explicit seeds",
}

// forbiddenTime are the wall-clock entry points of package time. Reading
// the clock is only legitimate for the timing probes that pick a driver or
// size chunks — and those sites carry //sinrlint:allow detrand with a
// justification.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name:  "detrand",
	Doc:   "forbid wall-clock reads and ambient randomness in decision-path packages",
	Match: func(path string) bool { return decisionPackages[path] },
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, bad := forbiddenImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s in decision-path package: %s", path, hint)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "wall-clock read time.%s in decision-path package; decisions must derive from explicit seeds and slot counters", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2", "crypto/rand":
				// Imports are already flagged; flagging each use as well
				// points at every site that needs migrating to internal/rng.
				pass.Reportf(sel.Pos(), "ambient randomness %s.%s in decision-path package; use internal/rng sources split from explicit seeds", pkgPathBase(pkgName.Imported().Path()), sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

func pkgPathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
