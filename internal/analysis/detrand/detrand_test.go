package detrand_test

import (
	"testing"

	"sinrmac/internal/analysis/analysistest"
	"sinrmac/internal/analysis/detrand"
)

func TestAnalyzerDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "detrand")
}
