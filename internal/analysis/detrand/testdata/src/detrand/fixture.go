// Fixture for the detrand analyzer: wall-clock reads and ambient
// randomness are violations; //sinrlint:allow detrand pardons probes.
package detrand

import (
	"math/rand" // want "import of math/rand in decision-path package"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "wall-clock read time.Sleep"
}

func ambient() int {
	return rand.Intn(10) // want "ambient randomness rand.Intn"
}

// typeUseIsFine: mentioning time types or pure constructors reads no clock.
func typeUseIsFine(d time.Duration) time.Duration {
	var t time.Time
	_ = t
	return d + time.Millisecond
}

// declProbe is the negative case for the declaration-level escape hatch:
// the doc-comment annotation pardons the whole body.
//
//sinrlint:allow detrand fixture timing probe, feeds no decision
func declProbe() time.Time {
	return time.Now()
}

// lineProbe is the negative case for the line-level escape hatch: the
// annotated line is pardoned, the next read still fires.
func lineProbe() time.Duration {
	start := time.Now() //sinrlint:allow detrand fixture probe
	var d time.Duration
	d = time.Since(start) // want "wall-clock read time.Since"
	return d
}
