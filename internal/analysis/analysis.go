// Package analysis is a small, dependency-free analysis framework modelled
// on golang.org/x/tools/go/analysis. The repository's hard invariants —
// bit-identical execution at any worker/shard/batch count, the engine-owned
// frame lifecycle, the pow-free kernel arithmetic and the allocation-free
// hot paths — are enforced dynamically by the differential and alloc test
// suites; the analyzers built on this package enforce them *statically*, at
// lint time, so a regression fails in seconds instead of surviving until a
// differential test happens to exercise it.
//
// The package mirrors the x/tools API shape (Analyzer, Pass, Diagnostic and
// a Reportf method) so that the analyzers can migrate to the real framework
// by changing imports if golang.org/x/tools ever becomes available in this
// build environment; it is deliberately self-contained because the module
// builds offline with no external dependencies. Package loading and type
// checking live in the sibling driver package; per-analyzer expectations
// testing lives in analysistest.
//
// # Annotation grammar
//
// Two comment directives, written with no space after "//" like all Go tool
// directives, control the analyzers:
//
//	//sinrlint:allow <name>[,<name>...] [justification...]
//	//sinrlint:hotpath [justification...]
//
// An allow directive suppresses the named analyzers' diagnostics on the
// directive's own line and the line immediately below it; when it appears
// in the doc comment of a declaration it suppresses them for the entire
// declaration. Every allow is expected to carry a short justification —
// the escape hatch exists for sites that are deliberately outside an
// invariant (timing probes in driver calibration, the naive reference
// channel), not for silencing real violations.
//
// A hotpath directive in a function's doc comment declares the function to
// be on the allocation-free steady-state slot path; the hotalloc analyzer
// then rejects allocating constructs in its body.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sinrlint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path. A nil Match applies to every package. The driver
	// consults Match; test harnesses may run an analyzer on any package
	// directly.
	Match func(pkgPath string) bool
	// Run performs the check on one package. Findings are reported through
	// pass.Reportf; the error return is for analysis failures only.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
	allow  *allowIndex
}

// NewPass assembles a pass over one type-checked package. report receives
// every diagnostic that survives the allow-directive filter.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		report:   report,
		allow:    buildAllowIndex(fset, files),
	}
}

// Reportf reports a finding at pos unless an //sinrlint:allow directive for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.allow.allows(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier uses or defines, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// IsTestFile reports whether pos lies in a _test.go file. The analyzers
// enforce invariants on shipped code only: tests legitimately read the
// clock, use fmt, and construct frames by hand.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// NonTestFiles returns the pass's files excluding _test.go files.
func (p *Pass) NonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !IsTestFile(p.Fset, f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// directive holds one parsed //sinrlint: comment.
type directive struct {
	names []string // analyzer names for allow; nil for hotpath
	line  int
}

const (
	allowPrefix   = "//sinrlint:allow"
	hotpathPrefix = "//sinrlint:hotpath"
)

// parseAllow parses an allow directive's analyzer-name list, returning nil
// if the comment is not an allow directive.
func parseAllow(text string) []string {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //sinrlint:allowance
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// IsHotpathDoc reports whether a declaration's doc comment carries the
// //sinrlint:hotpath directive.
func IsHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			rest := strings.TrimPrefix(c.Text, hotpathPrefix)
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// allowRange suppresses a set of analyzers over a closed line interval of
// one file (used for declaration-level allows).
type allowRange struct {
	from, to int
	names    map[string]bool
}

type fileAllows struct {
	lines  map[int]map[string]bool // line -> analyzer names allowed on it
	ranges []allowRange
}

type allowIndex struct {
	byFile map[string]*fileAllows
}

func (ix *allowIndex) file(name string) *fileAllows {
	fa := ix.byFile[name]
	if fa == nil {
		fa = &fileAllows{lines: map[int]map[string]bool{}}
		ix.byFile[name] = fa
	}
	return fa
}

func (fa *fileAllows) addLine(line int, names []string) {
	m := fa.lines[line]
	if m == nil {
		m = map[string]bool{}
		fa.lines[line] = m
	}
	for _, n := range names {
		m[n] = true
	}
}

// buildAllowIndex scans every comment in the package once. A line-level
// allow covers its own line and the next line (the directive usually sits
// on its own line immediately above the construct it excuses, or trails the
// construct on the same line). A directive inside a declaration's doc
// comment covers the whole declaration.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{byFile: map[string]*fileAllows{}}
	for _, f := range files {
		var fa *fileAllows
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				if fa == nil {
					fa = ix.file(fset.Position(f.Pos()).Filename)
				}
				line := fset.Position(c.Pos()).Line
				fa.addLine(line, names)
				fa.addLine(line+1, names)
			}
		}
		// Declaration-level allows: a directive in a doc comment widens to
		// the declaration's full extent.
		for _, d := range f.Decls {
			var doc *ast.CommentGroup
			switch d := d.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			var names []string
			for _, c := range doc.List {
				names = append(names, parseAllow(c.Text)...)
			}
			if len(names) == 0 {
				continue
			}
			if fa == nil {
				fa = ix.file(fset.Position(f.Pos()).Filename)
			}
			set := map[string]bool{}
			for _, n := range names {
				set[n] = true
			}
			fa.ranges = append(fa.ranges, allowRange{
				from:  fset.Position(d.Pos()).Line,
				to:    fset.Position(d.End()).Line,
				names: set,
			})
		}
	}
	return ix
}

func (ix *allowIndex) allows(analyzer string, pos token.Position) bool {
	fa := ix.byFile[pos.Filename]
	if fa == nil {
		return false
	}
	if m := fa.lines[pos.Line]; m[analyzer] {
		return true
	}
	for _, r := range fa.ranges {
		if pos.Line >= r.from && pos.Line <= r.to && r.names[analyzer] {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by file position, then analyzer name,
// for stable output across runs — the lint gate's own output must be as
// deterministic as the code it polices.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// PkgPathBase strips the " [test-variant]" suffix the go command appends to
// the import paths of test-augmented package units, so Match rules see the
// plain import path in both standalone and vettool modes.
func PkgPathBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
