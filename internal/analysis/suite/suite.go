// Package suite assembles the repository's analyzer suite in its canonical
// order. cmd/sinrlint, the CI gate and the whole-tree tests all consume
// this single list so they cannot drift.
package suite

import (
	"sinrmac/internal/analysis"
	"sinrmac/internal/analysis/detrand"
	"sinrmac/internal/analysis/frameretain"
	"sinrmac/internal/analysis/hotalloc"
	"sinrmac/internal/analysis/maporder"
	"sinrmac/internal/analysis/powfree"
)

// Analyzers returns the full sinrlint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		frameretain.Analyzer,
		powfree.Analyzer,
		hotalloc.Analyzer,
	}
}
