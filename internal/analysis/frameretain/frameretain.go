// Package frameretain enforces the engine-owned frame lifecycle in
// protocol code.
//
// The engine pools one sim.Frame per node and re-delivers pointers to it
// every slot: a *sim.Frame handed to Tick or Receive — and any payload its
// Msg or Payload fields point to — is valid only until the end of that
// slot (the contract documented on sim.Frame since the frame pooling PR).
// Storing the pointer into a struct field, slice, map or channel therefore
// aliases memory the transmitter will overwrite on its next Tick. This
// analyzer flags such stores inside any Tick/Receive method that takes a
// *sim.Frame, tracking local aliases of the frame parameter and of its
// Msg/Payload fields. Retaining a *copy* (*f, or copied payload contents)
// is the sanctioned pattern and is not flagged.
package frameretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"sinrmac/internal/analysis"
)

// Analyzer is the frameretain check.
var Analyzer = &analysis.Analyzer{
	Name: "frameretain",
	Doc:  "flag Tick/Receive bodies that store the engine-owned *sim.Frame (or its payload pointers) beyond the slot",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Tick" && fd.Name.Name != "Receive" {
				continue
			}
			frames := frameParams(pass, fd)
			if len(frames) == 0 {
				continue
			}
			checkBody(pass, fd, frames)
		}
	}
	return nil
}

// isFramePtr reports whether t is *sim.Frame.
func isFramePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Frame" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sinrmac/internal/sim"
}

// frameParams returns the objects of fd's parameters of type *sim.Frame.
func frameParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.ObjectOf(name)
			if obj != nil && isFramePtr(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// checkBody flags escapes of frame-derived values from one Tick/Receive.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, tainted map[types.Object]bool) {
	// Propagate taint through local aliases (g := f; m := f.Msg). A couple
	// of passes reach a fixpoint on realistic bodies; the bound only limits
	// pathological alias chains written top-to-bottom out of order.
	for i := 0; i < 4; i++ {
		added := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || tainted[obj] {
					continue
				}
				// Only locals can become aliases; anything else is a store,
				// handled below.
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				if taintedExpr(pass, as.Rhs[j], tainted) {
					tainted[obj] = true
					added = true
				}
			}
			return true
		})
		if !added {
			break
		}
	}

	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			for j, lhs := range n.Lhs {
				if j >= len(n.Rhs) {
					break
				}
				if !taintedExpr(pass, n.Rhs[j], tainted) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					// Local alias: handled by taint propagation above —
					// unless the identifier is not function-local (a
					// package-level variable outlives the slot).
					if obj := pass.ObjectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(n.Pos(), "%s stores engine-owned frame data in package variable %s; the frame is valid only until end of slot — copy it", name, l.Name)
					}
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(), "%s stores engine-owned frame data in field %s; the frame is valid only until end of slot — copy it", name, renderSel(l))
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(), "%s stores engine-owned frame data in a slice or map element; the frame is valid only until end of slot — copy it", name)
				case *ast.StarExpr:
					pass.Reportf(n.Pos(), "%s stores engine-owned frame data through a pointer; the frame is valid only until end of slot — copy it", name)
				}
			}
		case *ast.SendStmt:
			if taintedExpr(pass, n.Value, tainted) {
				pass.Reportf(n.Pos(), "%s sends engine-owned frame data on a channel; the frame is valid only until end of slot — copy it", name)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
					for _, arg := range n.Args[1:] {
						if taintedExpr(pass, arg, tainted) {
							pass.Reportf(n.Pos(), "%s appends engine-owned frame data to a slice; the frame is valid only until end of slot — copy it", name)
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if taintedExpr(pass, e, tainted) {
					pass.Reportf(n.Pos(), "%s embeds engine-owned frame data in a composite literal; the frame is valid only until end of slot — copy it", name)
				}
			}
		case *ast.FuncLit:
			// A closure capturing the frame may run after the slot ends
			// (goroutine, stored callback).
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil && tainted[obj] {
						pass.Reportf(id.Pos(), "%s captures engine-owned frame data in a closure; the frame is valid only until end of slot — copy it", name)
						return false
					}
				}
				return true
			})
			return false // reported once; don't re-visit inner nodes
		}
		return true
	})
}

// taintedExpr reports whether e evaluates to frame-derived pointer data:
// a tainted identifier, a tainted expression's Msg/Payload field, or a
// parenthesization thereof. Dereferencing (*f, copying the struct) and
// reading scalar fields (f.From, f.Kind) launder the taint — those are
// copies.
func taintedExpr(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		return obj != nil && tainted[obj]
	case *ast.ParenExpr:
		return taintedExpr(pass, e.X, tainted)
	case *ast.SelectorExpr:
		if e.Sel.Name != "Msg" && e.Sel.Name != "Payload" {
			return false
		}
		return taintedExpr(pass, e.X, tainted)
	}
	return false
}

func renderSel(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
