// Fixture for the frameretain analyzer: Tick/Receive bodies must not
// retain the engine-owned *sim.Frame or its Msg/Payload pointers beyond
// the slot. Copying the frame value is the sanctioned pattern.
package frameretain

import "sinrmac/internal/sim"

type node struct {
	saved   *sim.Frame
	history []*sim.Frame
	byFrom  map[int]*sim.Frame
	lastMsg interface{}
	frame   sim.Frame
	ch      chan *sim.Frame
}

func (n *node) Tick(slot int64, f *sim.Frame) bool {
	n.saved = f // want "stores engine-owned frame data in field n.saved"
	return false
}

func (n *node) Receive(slot int64, f *sim.Frame) {
	g := f
	n.saved = g                      // want "stores engine-owned frame data in field n.saved"
	n.history = append(n.history, f) // want "appends engine-owned frame data"
	n.byFrom[f.From] = f             // want "slice or map element"
	n.lastMsg = f.Msg                // want "stores engine-owned frame data in field n.lastMsg"
	n.ch <- f                        // want "sends engine-owned frame data"
	go func() { n.saved = f }()      // want "captures engine-owned frame data"
}

// copier shows the sanctioned patterns: copying the frame value and
// reading its scalar fields launder the taint and produce no diagnostic.
type copier struct {
	frame sim.Frame
	from  int
}

func (c *copier) Receive(slot int64, f *sim.Frame) {
	c.frame = *f
	c.from = f.From
}

// annotated is the negative case for the escape hatch: a deliberate
// retention pardoned by the declaration-level annotation.
type annotated struct{ saved *sim.Frame }

// Tick retains the frame on purpose; the fixture asserts the annotation
// suppresses the diagnostic.
//
//sinrlint:allow frameretain fixture: retention is re-validated next slot
func (a *annotated) Tick(slot int64, f *sim.Frame) bool {
	a.saved = f
	return false
}

// clockOnly has no frame parameter, so it is outside the analyzer's scope.
type clockOnly struct{ ticks int }

func (c *clockOnly) Tick(slot int64) bool {
	c.ticks++
	return false
}
