package frameretain_test

import (
	"testing"

	"sinrmac/internal/analysis/analysistest"
	"sinrmac/internal/analysis/frameretain"
)

func TestAnalyzerFrameretain(t *testing.T) {
	analysistest.Run(t, frameretain.Analyzer, "frameretain")
}
