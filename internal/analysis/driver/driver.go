// Package driver loads and type-checks packages for the sinrlint analyzers
// and runs the analyzer suite over them. It fills the role of
// golang.org/x/tools/go/packages + go/analysis's checker using only the
// standard library: package metadata and compiled export data come from
// `go list -export -deps -json`, and imports resolve through the gc export
// data importer (go/importer.ForCompiler with a lookup function), so the
// whole pipeline works offline with zero module dependencies.
//
// Two entry points correspond to cmd/sinrlint's two modes:
//
//   - Load + Run: the standalone mode. Load shells out to the go command
//     once for the requested patterns and type-checks every matched
//     non-test package from source, importing dependencies from their
//     export data.
//   - RunVetUnit: the `go vet -vettool` mode. The go command hands the tool
//     one pre-planned compilation unit (a JSON "vet config" naming sources,
//     the import map and per-import export data files); no go list call is
//     needed.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"sinrmac/internal/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct {
		Err string
	}
}

// Loader type-checks packages against export data produced by the go
// command. It is not safe for concurrent use.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imports map[string]string // source import path -> canonical path (vet mode)
	imp     types.ImporterFrom
}

// NewLoader returns a loader resolving imports via the given
// path->export-file map. importMap optionally redirects source-level import
// paths to canonical unit paths (the vet config's ImportMap); nil means the
// identity mapping, which is exact for this dependency-free module.
func NewLoader(exports map[string]string, importMap map[string]string) *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: exports, imports: importMap}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := l.imports[path]; ok {
		path = mapped
	}
	file, ok := l.exports[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer over the export data map.
func (l *Loader) Import(path string) (*types.Package, error) {
	if mapped, ok := l.imports[path]; ok {
		path = mapped
	}
	return l.imp.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom; the directory is irrelevant
// because the import map is explicit.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// Check parses and type-checks one package from source files.
func (l *Loader) Check(pkgPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(pkgPath, l.Fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: l.Fset, Files: parsed, Types: pkg, Info: info}, nil
}

// Load resolves patterns with the go command (run in dir; "" means the
// current directory) and type-checks every matched package. Dependencies —
// including the matched packages' own — are compiled to export data by the
// same go invocation, so repeat runs ride the build cache.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	var targets []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	loader := NewLoader(exports, nil)
	var pkgs []*Package
	for _, e := range targets {
		if e.Error != nil {
			return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.Check(e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Run applies every analyzer whose Match accepts the package's import path,
// returning position-sorted diagnostics.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	var diags []analysis.Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		base := analysis.PkgPathBase(pkg.Path)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(base) {
				continue
			}
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
				diags = append(diags, d)
			})
			if err := a.Run(pass); err != nil {
				return nil, fset, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
		analysis.SortDiagnostics(pkg.Fset, diags)
	}
	return diags, fset, nil
}

// VetConfig mirrors the JSON compilation-unit description the go command
// passes to -vettool binaries. Field names and semantics follow
// cmd/go/internal/work's vet config (the same contract
// golang.org/x/tools/go/analysis/unitchecker consumes).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredGoFiles            []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit analyzes the single compilation unit described by the vet
// config file at cfgPath. It writes the (empty — the suite exchanges no
// facts) .vetx output the go command expects and returns the unit's
// diagnostics with the fileset for rendering positions.
func RunVetUnit(cfgPath string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("parse vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil, nil
	}
	loader := NewLoader(cfg.PackageFile, cfg.ImportMap)
	pkg, err := loader.Check(cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	diags, fset, err := Run([]*Package{pkg}, analyzers)
	return diags, fset, err
}
