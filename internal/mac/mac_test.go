package mac

import (
	"testing"

	"sinrmac/internal/approgress"
	"sinrmac/internal/core"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// testConfig returns a combined configuration tuned for quick unit tests.
func testConfig(lambda float64) Config {
	cfg := Config{
		Ack:  hmbcast.DefaultConfig(lambda, 0.1),
		Prog: approgress.DefaultConfig(lambda, 0.1, 3),
	}
	cfg.Ack.StepFactor = 1
	cfg.Ack.HaltFactor = 4
	cfg.Prog.QScale = 0.25
	cfg.Prog.TFactor = 4
	cfg.Prog.MISRounds = 4
	cfg.Prog.DataFactor = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(16).Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	bad := testConfig(16)
	bad.Ack.Lambda = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid ack config accepted")
	}
	bad = testConfig(16)
	bad.Prog.Alpha = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid prog config accepted")
	}
	if testConfig(16).AckDeadline() <= 0 || testConfig(16).EpochLen() <= 0 {
		t.Fatal("derived deadlines must be positive")
	}
}

// TestInitErrorSurfaced checks the library-error contract: an invalid
// configuration no longer panics inside Init — the node records the
// construction failure, reports it via InitError, and sim.NewEngine returns
// it wrapped to the caller. A failed node is inert until re-initialised.
func TestInitErrorSurfaced(t *testing.T) {
	bad := testConfig(16)
	bad.Ack.Lambda = 0
	n := New(bad, nil)
	n.Init(0, rng.New(1))
	if n.InitError() == nil {
		t.Fatal("InitError() = nil for an invalid ack config")
	}
	var f sim.Frame
	if n.Tick(0, &f) {
		t.Fatal("failed node transmitted")
	}
	n.Receive(1, &f)
	n.Bcast(1, core.Message{ID: 1, Origin: 0})
	if n.Busy() {
		t.Fatal("failed node accepted a broadcast")
	}

	bad2 := testConfig(16)
	bad2.Prog.Alpha = 1
	n2 := New(bad2, nil)
	n2.Init(0, rng.New(1))
	if n2.InitError() == nil {
		t.Fatal("InitError() = nil for an invalid prog config")
	}

	d, err := topology.Line(2, 2, sinr.DefaultParams(10))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.NewEngine(ch, []sim.Node{New(bad, nil), New(testConfig(16), nil)}, sim.Config{Seed: 1})
	if err == nil {
		t.Fatal("NewEngine accepted a node with an invalid MAC config")
	}
	// A valid node reports no error.
	ok := New(testConfig(16), nil)
	ok.Init(0, rng.New(1))
	if err := ok.InitError(); err != nil {
		t.Fatalf("InitError() = %v for a valid config", err)
	}
}

// oneShotLayer broadcasts a single message at a given slot and records
// callbacks.
type oneShotLayer struct {
	core.NopLayer
	mac     core.MAC
	msg     core.Message
	bcastAt int64
	sent    bool
	rcvs    []core.Message
	acks    []core.Message
}

func (l *oneShotLayer) Attach(node int, mac core.MAC, src *rng.Source) { l.mac = mac }

func (l *oneShotLayer) OnSlot(slot int64) {
	if !l.sent && l.msg.ID != 0 && slot >= l.bcastAt {
		l.mac.Bcast(slot, l.msg)
		l.sent = true
	}
}

func (l *oneShotLayer) OnRcv(slot int64, m core.Message) { l.rcvs = append(l.rcvs, m) }
func (l *oneShotLayer) OnAck(slot int64, m core.Message) { l.acks = append(l.acks, m) }

// buildMACScenario wires combined-MAC nodes over a deployment.
func buildMACScenario(t *testing.T, d *topology.Deployment, cfg Config, seed uint64) (*sim.Engine, []*Node, []*oneShotLayer, *core.Recorder) {
	t.Helper()
	rec := core.NewRecorder()
	simNodes := make([]sim.Node, d.NumNodes())
	macNodes := make([]*Node, d.NumNodes())
	layers := make([]*oneShotLayer, d.NumNodes())
	for i := range simNodes {
		n := New(cfg, rec)
		layers[i] = &oneShotLayer{}
		n.SetLayer(layers[i])
		macNodes[i] = n
		simNodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, simNodes, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return eng, macNodes, layers, rec
}

func TestCombinedMACAcksAndDelivers(t *testing.T) {
	d, err := topology.Clusters(1, 8, sinr.DefaultParams(20), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d.Lambda())
	eng, _, layers, rec := buildMACScenario(t, d, cfg, 5)
	layers[0].msg = core.Message{ID: 11, Origin: 0, Payload: "combined"}

	eng.Run(cfg.AckDeadline(), func() bool { return len(layers[0].acks) > 0 })
	if len(layers[0].acks) != 1 {
		t.Fatalf("broadcaster acks = %d", len(layers[0].acks))
	}
	// All neighbours got the message before the ack (nice execution).
	rep := core.CheckAcks(rec.Events(), d.StrongGraph())
	if rep.Acked != 1 || rep.Violations != 0 {
		t.Fatalf("ack report = %+v", rep)
	}
	for i := 1; i < len(layers); i++ {
		if len(layers[i].rcvs) == 0 {
			t.Fatalf("node %d never received the broadcast", i)
		}
	}
}

func TestCombinedMACSlotMultiplexing(t *testing.T) {
	// Frames produced on even engine slots must be acknowledgment frames,
	// frames on odd slots approximate-progress frames.
	d, err := topology.Clusters(1, 6, sinr.DefaultParams(20), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d.Lambda())
	eng, _, layers, _ := buildMACScenario(t, d, cfg, 9)
	for i := range layers {
		layers[i].msg = core.Message{ID: core.MessageID(100 + i), Origin: i}
	}
	bad := 0
	eng.AddObserver(sim.ObserverFunc(func(slot int64, tx []int, rec []sinr.Reception) {}))
	// Use a custom observer through engine stepping: inspect frames via the
	// node Tick return values by wrapping Step manually.
	var fr sim.Frame
	for slot := int64(0); slot < 400; slot++ {
		for id := 0; id < d.NumNodes(); id++ {
			n := eng.Node(id).(*Node)
			if !n.Tick(slot, &fr) {
				continue
			}
			even := slot%2 == 0
			isAck := fr.Kind == hmbcast.FrameKind
			if even != isAck {
				bad++
			}
		}
	}
	if bad != 0 {
		t.Fatalf("%d frames violated the even/odd multiplexing", bad)
	}
}

func TestCombinedMACBusyAbort(t *testing.T) {
	rec := core.NewRecorder()
	n := New(testConfig(8), rec)
	n.Init(0, rng.New(1))
	if n.Busy() {
		t.Fatal("fresh node busy")
	}
	n.Bcast(0, core.Message{ID: 1, Origin: 0})
	if !n.Busy() {
		t.Fatal("not busy after Bcast")
	}
	n.Bcast(1, core.Message{ID: 2, Origin: 0}) // ignored
	if got := len(rec.EventsOfKind(core.EventBcast)); got != 1 {
		t.Fatalf("bcast events = %d", got)
	}
	n.Abort(2, 1)
	if n.Busy() {
		t.Fatal("busy after abort")
	}
	if got := len(rec.EventsOfKind(core.EventAbort)); got != 1 {
		t.Fatalf("abort events = %d", got)
	}
	// No ack may fire afterwards.
	var fr sim.Frame
	for slot := int64(3); slot < 2000; slot++ {
		n.Tick(slot, &fr)
	}
	if got := len(rec.EventsOfKind(core.EventAck)); got != 0 {
		t.Fatalf("ack fired after abort: %d", got)
	}
	if n.ID() != 0 || n.ProgressAutomaton() == nil {
		t.Fatal("accessors broken")
	}
}

func TestCombinedMACFrameRouting(t *testing.T) {
	rec := core.NewRecorder()
	n := New(testConfig(8), rec)
	layer := &oneShotLayer{}
	n.SetLayer(layer)
	n.Init(1, rng.New(2))
	// A data frame from either half produces exactly one rcv upward.
	m := core.Message{ID: 3, Origin: 0}
	n.Receive(4, &sim.Frame{From: 0, Kind: hmbcast.FrameKind, Msg: m})
	n.Receive(5, &sim.Frame{From: 0, Kind: approgress.FrameData, Msg: m})
	if len(layer.rcvs) != 1 {
		t.Fatalf("rcvs = %d, want 1 (deduplicated across halves)", len(layer.rcvs))
	}
	m2 := core.Message{ID: 4, Origin: 0}
	n.Receive(6, &sim.Frame{From: 0, Kind: approgress.FrameData, Msg: m2})
	if len(layer.rcvs) != 2 {
		t.Fatalf("rcvs = %d, want 2", len(layer.rcvs))
	}
	// Control frames of the progress half do not produce rcv events.
	n.Receive(7, &sim.Frame{From: 0, Kind: approgress.FrameID, Payload: &approgress.IDPayload{Phase: 0, ID: 0}})
	if len(layer.rcvs) != 2 {
		t.Fatal("control frame produced a rcv event")
	}
}

func TestCombinedMACApproxProgressUnderContention(t *testing.T) {
	// A dense cluster of broadcasters around a listener: the listener must
	// receive something within a bounded number of odd-slot epochs, even
	// before any acknowledgment completes.
	d, err := topology.Clusters(1, 20, sinr.DefaultParams(30), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d.Lambda())
	eng, _, layers, rec := buildMACScenario(t, d, cfg, 13)
	for i := 1; i < len(layers); i++ {
		layers[i].msg = core.Message{ID: core.MessageID(200 + i), Origin: i}
	}
	listenerGotIt := func() bool { return len(layers[0].rcvs) > 0 }
	eng.Run(3*cfg.EpochLen(), listenerGotIt)
	if !listenerGotIt() {
		t.Fatalf("listener received nothing within 3 epochs (%d slots)", 3*cfg.EpochLen())
	}
	prog := core.MeasureProgress(rec.Events(), d.StrongGraph(), d.ApproxGraph(), eng.Slot())
	if prog.Satisfied == 0 {
		t.Fatal("no satisfied approximate-progress samples")
	}
}
