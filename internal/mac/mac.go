// Package mac implements Algorithm 11.1: the complete probabilistic absMAC
// for the SINR model with both fast acknowledgments (Theorem 5.1) and fast
// approximate progress (Theorem 9.1).
//
// The two halves run in parallel by time multiplexing, exactly as in the
// paper: the Halldórsson–Mitra acknowledgment automaton (package hmbcast)
// executes in every even slot and the Algorithm 9.1 approximate-progress
// automaton (package approgress) executes in every odd slot. The
// combination is necessary because the acknowledgment algorithm alone gives
// no useful progress bound and the approximate-progress algorithm alone
// never acknowledges (Section 11).
package mac

import (
	"fmt"

	"sinrmac/internal/approgress"
	"sinrmac/internal/core"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

// Config configures the combined MAC.
type Config struct {
	// Ack configures the even-slot acknowledgment automaton.
	Ack hmbcast.Config
	// Prog configures the odd-slot approximate-progress automaton.
	Prog approgress.Config
}

// DefaultConfig returns a combined configuration for the given Λ bound,
// path-loss exponent and absMAC error probabilities.
func DefaultConfig(lambda, alpha float64, params core.Params) Config {
	return Config{
		Ack:  hmbcast.DefaultConfig(lambda, params.EpsAck),
		Prog: approgress.DefaultConfig(lambda, params.EpsApprog, alpha),
	}
}

// Validate checks both halves of the configuration.
func (c Config) Validate() error {
	if err := c.Ack.Validate(); err != nil {
		return fmt.Errorf("mac: %w", err)
	}
	if err := c.Prog.Validate(); err != nil {
		return fmt.Errorf("mac: %w", err)
	}
	return nil
}

// AckDeadline returns an upper bound on the number of engine slots before a
// broadcast acknowledges: twice the acknowledgment automaton's own bound,
// because it only runs in every other slot.
func (c Config) AckDeadline() int64 {
	return 2 * c.Ack.MaxSlots()
}

// EpochLen returns the length of one approximate-progress epoch in engine
// slots (twice the automaton's protocol-slot epoch because it runs in every
// other slot).
func (c Config) EpochLen() int64 {
	return 2 * c.Prog.EpochLen()
}

// Node is one node's combined MAC endpoint (Algorithm 11.1). It implements
// sim.Node and core.MAC.
type Node struct {
	cfg      Config
	recorder *core.Recorder

	id      int
	src     *rng.Source
	layer   core.Layer
	initErr error

	ack  *hmbcast.Automaton
	prog *approgress.Automaton

	cur     *core.Message
	curSlot int64
	seen    map[core.MessageID]bool
}

var (
	_ sim.Node = (*Node)(nil)
	_ core.MAC = (*Node)(nil)
)

// New returns a combined MAC node. recorder may be nil; if provided, every
// absMAC interface event is recorded for the spec checker.
func New(cfg Config, recorder *core.Recorder) *Node {
	return &Node{cfg: cfg, recorder: recorder, seen: make(map[core.MessageID]bool)}
}

// Init implements sim.Node. Automaton construction can fail on an invalid
// configuration; instead of panicking inside library code the error is
// recorded and reported through InitError (sim.NodeInitError), which the
// engine checks right after Init and returns to its caller.
func (n *Node) Init(id int, src *rng.Source) {
	n.id = id
	n.src = src
	n.ack, n.prog, n.initErr = nil, nil, nil
	ackAut, err := hmbcast.NewAutomaton(n.cfg.Ack, src.Split(), n.onData)
	if err != nil {
		n.initErr = fmt.Errorf("mac: acknowledgment automaton for node %d: %w", id, err)
		return
	}
	progAut, err := approgress.NewAutomaton(n.cfg.Prog, id, src.Split(), n.onData)
	if err != nil {
		n.initErr = fmt.Errorf("mac: approximate-progress automaton for node %d: %w", id, err)
		return
	}
	n.ack = ackAut
	n.prog = progAut
	if n.layer != nil {
		n.layer.Attach(id, n, src.Split())
	}
}

// InitError implements sim.NodeInitError.
func (n *Node) InitError() error { return n.initErr }

// SetLayer implements core.MAC.
func (n *Node) SetLayer(l core.Layer) { n.layer = l }

// Busy implements core.MAC.
func (n *Node) Busy() bool { return n.cur != nil }

// ID returns the node id assigned at Init.
func (n *Node) ID() int { return n.id }

// ProgressAutomaton exposes the odd-slot automaton for instrumentation.
func (n *Node) ProgressAutomaton() *approgress.Automaton { return n.prog }

// Bcast implements core.MAC: both halves start broadcasting m.
func (n *Node) Bcast(slot int64, m core.Message) {
	if n.cur != nil || n.ack == nil {
		return
	}
	cp := m
	n.cur = &cp
	n.record(core.Event{Kind: core.EventBcast, Node: n.id, Msg: m, Slot: slot})
	n.ack.Start(m)
	n.prog.Start(m)
}

// Abort implements core.MAC.
func (n *Node) Abort(slot int64, id core.MessageID) {
	if n.cur == nil || n.cur.ID != id || n.ack == nil {
		return
	}
	n.record(core.Event{Kind: core.EventAbort, Node: n.id, Msg: *n.cur, Slot: slot})
	n.ack.Abort()
	n.prog.Abort()
	n.cur = nil
}

// Tick implements sim.Node: even slots run the acknowledgment automaton,
// odd slots run the approximate-progress automaton.
func (n *Node) Tick(slot int64, f *sim.Frame) bool {
	n.curSlot = slot
	if n.ack == nil {
		return false // Init failed; the engine surfaces InitError instead
	}
	if n.layer != nil {
		n.layer.OnSlot(slot)
	}
	// The acknowledgment fires once the even-slot automaton halts.
	if n.cur != nil && n.ack.Done() {
		m := *n.cur
		n.cur = nil
		n.ack.Abort()
		n.prog.Abort()
		n.record(core.Event{Kind: core.EventAck, Node: n.id, Msg: m, Slot: slot})
		if n.layer != nil {
			n.layer.OnAck(slot, m)
		}
	}
	if slot%2 == 0 {
		return n.ack.Tick(f)
	}
	return n.prog.Tick(f)
}

// Receive implements sim.Node. Frames are routed to the automaton that owns
// their kind, so a frame transmitted by one half is never misinterpreted by
// the other.
func (n *Node) Receive(slot int64, f *sim.Frame) {
	n.curSlot = slot
	if f == nil || n.ack == nil {
		return
	}
	switch f.Kind {
	case hmbcast.FrameKind:
		n.ack.Receive(f)
	default:
		n.prog.Receive(f)
	}
}

func (n *Node) onData(m core.Message) {
	if m.Origin == n.id || n.seen[m.ID] {
		return
	}
	n.seen[m.ID] = true
	n.record(core.Event{Kind: core.EventRcv, Node: n.id, Msg: m, Slot: n.curSlot})
	if n.layer != nil {
		n.layer.OnRcv(n.curSlot, m)
	}
}

func (n *Node) record(ev core.Event) {
	if n.recorder != nil {
		n.recorder.Record(ev)
	}
}
