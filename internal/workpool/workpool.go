// Package workpool provides the persistent worker pool the slot pipeline
// runs its parallel phases on.
//
// The simulation engine and the fast SINR evaluator both partition a dense
// index space (nodes, receivers, sparse candidates) into contiguous chunks
// and evaluate the chunks concurrently, thousands of times per second. The
// obvious fork/join — spawn a goroutine per chunk, wait on a WaitGroup —
// pays goroutine creation, stack setup and scheduler churn on every single
// slot. A Pool instead keeps its helper goroutines alive across calls,
// parked on a per-worker channel; a Run is one channel send per helper to
// wake it and one WaitGroup rendezvous to rejoin, with the calling
// goroutine executing chunk 0 itself so a pool of k workers needs only k-1
// helpers.
//
// A slot is not one parallel loop but a pipeline of them (tick, evaluate,
// receive) separated by serial interludes on the caller. Paying a full
// park/unpark per phase triples the handoff cost, so the pool also offers
// fused sessions: between Begin and End the helpers are woken once and then
// driven through every phase by a spin-then-park barrier — an atomic phase
// generation the helpers poll (yielding to the scheduler, so a session is
// safe at GOMAXPROCS=1) for a short budget before parking on their wake
// channel. Phases that arrive back to back, as they do inside one slot,
// synchronize without touching the scheduler at all; Run calls issued while
// a session is open join it transparently, so an evaluator sharing the
// engine's pool needs no session awareness. Sessions wake helpers lazily:
// a session whose phases all run inline (small n, one worker) never wakes
// anyone.
//
// The body of a parallel loop is passed as a Task interface value rather
// than a closure: callers store their task (typically a pointer to the
// owning struct) once and hand the same value to every Run, so the
// steady-state slot path performs zero heap allocations (sessions included:
// Begin/End reuse state owned by the Pool).
//
// Helpers are spawned lazily on first parallel use and parked between
// calls; an idle Pool costs nothing but the parked stacks. Close releases
// them explicitly, and a runtime cleanup tied to the Pool header releases
// them when the owner is garbage collected, so pools embedded in
// per-experiment evaluators do not leak goroutines across a long test run.
package workpool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Task is the body of one parallel loop. RunChunk is invoked with a
// half-open index range [lo, hi) and the index of the worker running it
// (0 ≤ worker < workers); per-worker scratch is indexed by that worker id.
// Distinct chunks are disjoint, so a Task needs no locking as long as it
// only writes state owned by its range or its worker.
type Task interface {
	RunChunk(lo, hi, worker int)
}

// PanicError is a panic recovered on a pool worker. A panic inside a chunk
// must not kill the process from a helper goroutine (which would skip every
// deferred handler on the caller's stack), so the pool recovers it, lets
// the remaining chunks finish, and re-raises the first panic — wrapped in a
// PanicError carrying the original value and the panicking goroutine's
// stack — on the owning goroutine at the next rendezvous (Run return or
// session End). Only the first panic is kept; later ones are dropped.
type PanicError struct {
	// Value is the original panic value.
	Value interface{}
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
	// Worker is the worker index whose chunk panicked.
	Worker int
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("workpool: worker %d panicked: %v", e.Worker, e.Value)
}

// sessionSpins bounds how many scheduler yields a session participant
// spends polling the phase generation before parking on its channel. The
// budget keeps back-to-back phases scheduler-free while capping the cost of
// a long serial interlude (evaluator preparation on the leader) to a few
// microseconds of yields per helper. Pools created on a single-processor
// runtime get a zero budget instead (see New): with GOMAXPROCS=1 the phase
// generation can only advance while the goroutine being waited on holds the
// CPU, so every spin iteration merely delays it — the yield ping-pong
// between spinning helpers and the leader's serial interlude is pure
// overhead, and parking immediately is strictly cheaper.
const sessionSpins = 128

// state is the part of the pool the helper goroutines reference. It is
// split from Pool so that the helpers do not keep the Pool header itself
// reachable: when the owning Pool becomes unreachable, its runtime cleanup
// closes stop and the helpers exit.
type state struct {
	stopOnce sync.Once
	stop     chan struct{}
	wake     []chan struct{}
	wg       sync.WaitGroup

	// Per-run parameters. Written by Run before the wake sends and read by
	// helpers after their wake receive, so the channel handoff orders the
	// accesses.
	task  Task
	n     int
	chunk int

	// Session state. The owner-side fields (sessActive, sessWoke,
	// sessWorkers, sessHelpers) are only touched by the owning goroutine;
	// the fields the helpers read (sessMode, sessBase, sessDone and the
	// per-phase pTask/pN/pChunk) are published either by a wake-channel
	// send or by the seq-cst phase counter, so every read is ordered by a
	// synchronizing operation.
	sessActive  bool // a session is open (owner-side)
	sessWoke    bool // helpers have been woken into the session
	sessMode    bool // helpers: a wake enters the session loop, not a plain chunk
	sessWorkers int
	sessHelpers int
	sessDone    bool
	sessBase    uint64 // phase generation the woken helpers start from
	phase       atomic.Uint64
	arrived     atomic.Int64
	pTask       Task
	pN          int
	pChunk      int
	panicked    atomic.Pointer[PanicError] // first chunk panic, re-raised at rendezvous
	parked      []int32                    // per-helper: 1 while parked at a session barrier
	leaderPark  int32
	leaderWake  chan struct{}
	spins       int // per-wait spin budget: sessionSpins, or 0 at GOMAXPROCS=1
}

// Pool is a persistent worker pool. The zero value is not usable; call New.
//
// Run, Begin, End and Close may not be called concurrently with each other
// on the same pool: the pool serves one parallel loop at a time (the slot
// pipeline's phases are sequential, and concurrent users — evaluator forks
// — each own a private pool). Close must not be called while a session is
// open.
type Pool struct {
	s *state
}

// New returns an empty pool. Helper goroutines are spawned lazily by Run.
func New() *Pool {
	p := &Pool{s: &state{
		stop:       make(chan struct{}),
		leaderWake: make(chan struct{}, 1),
		spins:      sessionSpins,
	}}
	if runtime.GOMAXPROCS(0) == 1 {
		// Spinning at a barrier only pays off when another processor can
		// advance the phase concurrently; single-proc pools park right away.
		p.s.spins = 0
	}
	// Backstop: release the helpers when the pool's owner drops it without
	// calling Close. The cleanup references only the inner state, never the
	// Pool header, so it does not keep the pool alive.
	runtime.AddCleanup(p, func(s *state) { s.shutdown() }, p.s)
	return p
}

func (s *state) shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// runChunk executes one chunk under a panic guard: the first panic across
// the pool's chunks is captured (value, stack, worker) for re-raising at
// the rendezvous; the chunk is abandoned but the worker survives to take
// its next phase, so the WaitGroup and session barriers stay balanced.
func (s *state) runChunk(t Task, lo, hi, worker int) {
	defer func() {
		if v := recover(); v != nil {
			s.panicked.CompareAndSwap(nil, &PanicError{
				Value:  v,
				Stack:  debug.Stack(),
				Worker: worker,
			})
		}
	}()
	t.RunChunk(lo, hi, worker)
}

// rethrow re-raises the first captured chunk panic on the calling
// goroutine, clearing it so the pool remains usable if the caller recovers.
func (s *state) rethrow() {
	if pe := s.panicked.Swap(nil); pe != nil {
		panic(pe)
	}
}

// Close parks no more: it signals every helper goroutine to exit. The pool
// must not be used afterwards. Close is idempotent and safe to call on a
// pool whose helpers were never spawned.
func (p *Pool) Close() { p.s.shutdown() }

// grow ensures at least k helper goroutines exist, spawning the missing
// ones. Helper i serves worker index i+1 (the caller is worker 0).
func (s *state) grow(k int) {
	for len(s.wake) < k {
		wake := make(chan struct{}, 1)
		s.wake = append(s.wake, wake)
		w := len(s.wake) // worker index: helper i-1 runs chunk i
		go func() {
			for {
				select {
				case <-wake:
				case <-s.stop:
					return
				}
				if s.sessMode {
					if !s.helperSession(w, wake) {
						return
					}
					continue
				}
				lo := w * s.chunk
				hi := lo + s.chunk
				if hi > s.n {
					hi = s.n
				}
				s.runChunk(s.task, lo, hi, w)
				s.wg.Done()
			}
		}()
	}
	for len(s.parked) < k {
		s.parked = append(s.parked, 0)
	}
}

// Run partitions [0, n) into up to workers contiguous chunks and executes
// t.RunChunk over them, blocking until every chunk has finished. Worker 0
// is the calling goroutine; the partition depends only on n and workers, so
// a deterministic Task yields deterministic results at any worker count.
// With workers <= 1 (or n <= 1) the loop runs inline with no handoff at
// all. Inside an open session the call joins the session's fused barrier
// instead of paying a park/unpark round trip.
func (p *Pool) Run(n, workers int, t Task) {
	if n <= 0 {
		return
	}
	s := p.s
	if s.sessActive {
		s.sessRun(n, workers, t)
		runtime.KeepAlive(p)
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t.RunChunk(0, n, 0)
		return
	}
	chunk := (n + workers - 1) / workers
	// Workers whose chunk starts at or beyond n have nothing to do; with
	// chunk = ceil(n/workers) that is exactly the tail beyond ceil(n/chunk).
	helpers := (n+chunk-1)/chunk - 1
	if helpers > workers-1 {
		helpers = workers - 1
	}
	s.grow(helpers)
	s.task, s.n, s.chunk = t, n, chunk
	s.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		s.wake[i] <- struct{}{}
	}
	s.runChunk(t, 0, chunk, 0)
	s.wg.Wait()
	s.task = nil
	s.rethrow()
	// The Pool header must stay reachable for the whole Run: its runtime
	// cleanup closes stop, and a helper with both a buffered wake signal
	// and a closed stop channel may exit without running its chunk.
	runtime.KeepAlive(p)
}

// Begin opens a fused session with up to workers workers. Until the
// matching End, every Run on the pool executes its phases on one set of
// session helpers that are woken at most once (on the first phase that
// needs them) and synchronize through spin-then-park barriers between
// phases. Begin allocates nothing once the pool has grown to the session
// width. Sessions do not nest.
func (p *Pool) Begin(workers int) {
	s := p.s
	if s.sessActive {
		panic("workpool: nested Begin")
	}
	if workers < 1 {
		workers = 1
	}
	s.sessActive = true
	s.sessWoke = false
	s.sessWorkers = workers
	s.sessHelpers = workers - 1
	if s.sessHelpers > 0 {
		s.grow(s.sessHelpers)
	}
	runtime.KeepAlive(p)
}

// End closes the session opened by Begin: the helpers (if any were woken)
// are released back to their parked wake loop and the call returns once
// every one of them has left the session, so a following Begin or plain Run
// observes a quiescent pool.
func (p *Pool) End() {
	s := p.s
	if !s.sessActive {
		panic("workpool: End without Begin")
	}
	s.sessActive = false
	if !s.sessWoke {
		return
	}
	s.sessWoke = false
	s.sessDone = true
	s.phase.Add(1)
	s.wakeParked()
	s.wg.Wait()
	s.sessDone = false
	s.sessMode = false
	s.rethrow()
	runtime.KeepAlive(p)
}

// InSession reports whether a fused session is currently open. Only the
// pool's owning goroutine may call it.
func (p *Pool) InSession() bool { return p.s.sessActive }

// sessRun executes one phase of an open session: it publishes the phase
// parameters, advances the phase generation (waking helpers lazily on the
// first parallel phase), runs chunk 0 on the caller and waits at the
// barrier for the session helpers.
func (s *state) sessRun(n, workers int, t Task) {
	if workers > s.sessWorkers {
		workers = s.sessWorkers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial interlude: the helpers keep spinning (or stay parked) at
		// the current barrier; no phase is published.
		t.RunChunk(0, n, 0)
		return
	}
	chunk := (n + workers - 1) / workers
	s.pTask, s.pN, s.pChunk = t, n, chunk
	s.arrived.Store(0)
	g := s.phase.Add(1)
	if !s.sessWoke {
		// First parallel phase of the session: wake every session helper.
		// They enter helperSession at generation g-1 and immediately
		// observe this phase.
		s.sessWoke = true
		s.sessMode = true
		s.sessBase = g - 1
		s.sessDone = false
		s.wg.Add(s.sessHelpers)
		for i := 0; i < s.sessHelpers; i++ {
			s.wake[i] <- struct{}{}
		}
	} else {
		s.wakeParked()
	}
	s.runChunk(t, 0, chunk, 0)
	s.awaitArrived()
	s.pTask = nil
}

// wakeParked delivers one wake to every session helper that parked at the
// barrier. The park flag is handed off by compare-and-swap, so between the
// helper and the leader exactly one of them claims it: a claimed flag is
// always followed by exactly one send, and an unclaimed one by none.
func (s *state) wakeParked() {
	for i := 0; i < s.sessHelpers; i++ {
		if atomic.CompareAndSwapInt32(&s.parked[i], 1, 0) {
			s.wake[i] <- struct{}{}
		}
	}
}

// awaitArrived blocks the leader until every session helper has arrived at
// the current phase barrier, spinning briefly before parking on leaderWake.
func (s *state) awaitArrived() {
	target := int64(s.sessHelpers)
	for i := 0; i < s.spins; i++ {
		if s.arrived.Load() >= target {
			return
		}
		runtime.Gosched()
	}
	atomic.StoreInt32(&s.leaderPark, 1)
	if s.arrived.Load() >= target && atomic.CompareAndSwapInt32(&s.leaderPark, 1, 0) {
		// The last helper arrived before it could claim the park flag, so
		// no wake is coming (its CAS will fail); reclaiming the flag
		// ourselves keeps the channel empty.
		return
	}
	<-s.leaderWake
}

// helperSession is a helper's life inside one fused session: wait for each
// phase generation, run the helper's chunk, count into the arrival barrier,
// repeat until the leader publishes the done phase. It reports false when
// the pool is shutting down.
func (s *state) helperSession(w int, wake chan struct{}) bool {
	g := s.sessBase
	for {
		if !s.awaitPhase(g+1, w, wake) {
			s.wg.Done()
			return false
		}
		g++
		if s.sessDone {
			s.wg.Done()
			return true
		}
		lo := w * s.pChunk
		if lo < s.pN {
			hi := lo + s.pChunk
			if hi > s.pN {
				hi = s.pN
			}
			s.runChunk(s.pTask, lo, hi, w)
		}
		if s.arrived.Add(1) == int64(s.sessHelpers) &&
			atomic.CompareAndSwapInt32(&s.leaderPark, 1, 0) {
			s.leaderWake <- struct{}{}
		}
	}
}

// awaitPhase waits until the session's phase generation reaches target,
// spinning with scheduler yields before parking on the helper's wake
// channel. The park flag handoff mirrors wakeParked: the helper publishes
// its flag, re-checks the generation, and either reclaims the flag itself
// (no signal coming) or consumes the signal of the leader that claimed it.
// It reports false when the pool is shutting down.
func (s *state) awaitPhase(target uint64, w int, wake chan struct{}) bool {
	for i := 0; i < s.spins; i++ {
		if s.phase.Load() >= target {
			return true
		}
		runtime.Gosched()
	}
	idx := w - 1
	atomic.StoreInt32(&s.parked[idx], 1)
	if s.phase.Load() >= target && atomic.CompareAndSwapInt32(&s.parked[idx], 1, 0) {
		return true
	}
	select {
	case <-wake:
		return true
	case <-s.stop:
		return false
	}
}
