// Package workpool provides the persistent worker pool the slot pipeline
// runs its parallel phases on.
//
// The simulation engine and the fast SINR evaluator both partition a dense
// index space (nodes, receivers, sparse candidates) into contiguous chunks
// and evaluate the chunks concurrently, thousands of times per second. The
// obvious fork/join — spawn a goroutine per chunk, wait on a WaitGroup —
// pays goroutine creation, stack setup and scheduler churn on every single
// slot. A Pool instead keeps its helper goroutines alive across calls,
// parked on a per-worker channel; a Run is one channel send per helper to
// wake it and one WaitGroup rendezvous to rejoin, with the calling
// goroutine executing chunk 0 itself so a pool of k workers needs only k-1
// helpers.
//
// The body of a parallel loop is passed as a Task interface value rather
// than a closure: callers store their task (typically a pointer to the
// owning struct) once and hand the same value to every Run, so the
// steady-state slot path performs zero heap allocations.
//
// Helpers are spawned lazily on first parallel use and parked between
// calls; an idle Pool costs nothing but the parked stacks. Close releases
// them explicitly, and a runtime cleanup tied to the Pool header releases
// them when the owner is garbage collected, so pools embedded in
// per-experiment evaluators do not leak goroutines across a long test run.
package workpool

import (
	"runtime"
	"sync"
)

// Task is the body of one parallel loop. RunChunk is invoked with a
// half-open index range [lo, hi) and the index of the worker running it
// (0 ≤ worker < workers); per-worker scratch is indexed by that worker id.
// Distinct chunks are disjoint, so a Task needs no locking as long as it
// only writes state owned by its range or its worker.
type Task interface {
	RunChunk(lo, hi, worker int)
}

// state is the part of the pool the helper goroutines reference. It is
// split from Pool so that the helpers do not keep the Pool header itself
// reachable: when the owning Pool becomes unreachable, its runtime cleanup
// closes stop and the helpers exit.
type state struct {
	stopOnce sync.Once
	stop     chan struct{}
	wake     []chan struct{}
	wg       sync.WaitGroup

	// Per-run parameters. Written by Run before the wake sends and read by
	// helpers after their wake receive, so the channel handoff orders the
	// accesses.
	task  Task
	n     int
	chunk int
}

// Pool is a persistent worker pool. The zero value is not usable; call New.
//
// Run may not be called concurrently with itself or with Close on the same
// pool: the pool serves one parallel loop at a time (the slot pipeline's
// phases are sequential, and concurrent users — evaluator forks — each own
// a private pool).
type Pool struct {
	s *state
}

// New returns an empty pool. Helper goroutines are spawned lazily by Run.
func New() *Pool {
	p := &Pool{s: &state{stop: make(chan struct{})}}
	// Backstop: release the helpers when the pool's owner drops it without
	// calling Close. The cleanup references only the inner state, never the
	// Pool header, so it does not keep the pool alive.
	runtime.AddCleanup(p, func(s *state) { s.shutdown() }, p.s)
	return p
}

func (s *state) shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Close parks no more: it signals every helper goroutine to exit. The pool
// must not be used afterwards. Close is idempotent and safe to call on a
// pool whose helpers were never spawned.
func (p *Pool) Close() { p.s.shutdown() }

// grow ensures at least k helper goroutines exist, spawning the missing
// ones. Helper i serves worker index i+1 (the caller is worker 0).
func (s *state) grow(k int) {
	for len(s.wake) < k {
		wake := make(chan struct{}, 1)
		s.wake = append(s.wake, wake)
		w := len(s.wake) // worker index: helper i-1 runs chunk i
		go func() {
			for {
				select {
				case <-wake:
				case <-s.stop:
					return
				}
				lo := w * s.chunk
				hi := lo + s.chunk
				if hi > s.n {
					hi = s.n
				}
				s.task.RunChunk(lo, hi, w)
				s.wg.Done()
			}
		}()
	}
}

// Run partitions [0, n) into up to workers contiguous chunks and executes
// t.RunChunk over them, blocking until every chunk has finished. Worker 0
// is the calling goroutine; the partition depends only on n and workers, so
// a deterministic Task yields deterministic results at any worker count.
// With workers <= 1 (or n <= 1) the loop runs inline with no handoff at
// all.
func (p *Pool) Run(n, workers int, t Task) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t.RunChunk(0, n, 0)
		return
	}
	s := p.s
	chunk := (n + workers - 1) / workers
	// Workers whose chunk starts at or beyond n have nothing to do; with
	// chunk = ceil(n/workers) that is exactly the tail beyond ceil(n/chunk).
	helpers := (n+chunk-1)/chunk - 1
	if helpers > workers-1 {
		helpers = workers - 1
	}
	s.grow(helpers)
	s.task, s.n, s.chunk = t, n, chunk
	s.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		s.wake[i] <- struct{}{}
	}
	t.RunChunk(0, chunk, 0)
	s.wg.Wait()
	s.task = nil
	// The Pool header must stay reachable for the whole Run: its runtime
	// cleanup closes stop, and a helper with both a buffered wake signal
	// and a closed stop channel may exit without running its chunk.
	runtime.KeepAlive(p)
}
