package workpool

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// panicTask panics on every chunk containing the trigger index and counts
// the indexes the surviving chunks covered.
type panicTask struct {
	trigger int
	covered atomic.Int64
}

func (p *panicTask) RunChunk(lo, hi, worker int) {
	if lo <= p.trigger && p.trigger < hi {
		panic("chunk boom")
	}
	p.covered.Add(int64(hi - lo))
}

// recoverPanicError runs fn and returns the recovered *PanicError, failing
// the test if fn does not panic with one.
func recoverPanicError(t *testing.T, fn func()) *PanicError {
	t.Helper()
	var pe *PanicError
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("no panic was re-raised")
			}
			var ok bool
			if pe, ok = v.(*PanicError); !ok {
				t.Fatalf("re-raised value is %T, want *PanicError", v)
			}
		}()
		fn()
	}()
	return pe
}

// TestRunReRaisesHelperPanic: a panic on a helper chunk surfaces on the
// calling goroutine at Run return, wrapped with the original value, the
// worker index and the panicking goroutine's stack — and the other chunks
// still complete.
func TestRunReRaisesHelperPanic(t *testing.T) {
	p := New()
	defer p.Close()
	const n, workers = 64, 4
	chunk := (n + workers - 1) / workers
	task := &panicTask{trigger: 2 * chunk} // worker 2's chunk
	pe := recoverPanicError(t, func() { p.Run(n, workers, task) })
	if pe.Value != "chunk boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if pe.Worker != 2 {
		t.Fatalf("worker = %d, want 2", pe.Worker)
	}
	if !strings.Contains(string(pe.Stack), "RunChunk") {
		t.Fatalf("stack does not name the chunk:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "worker 2") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	if got := task.covered.Load(); got != int64(n-chunk) {
		t.Fatalf("surviving chunks covered %d indexes, want %d", got, n-chunk)
	}
	var err error = pe
	var target *PanicError
	if !errors.As(err, &target) {
		t.Fatal("PanicError does not satisfy errors.As")
	}
}

// TestRunReRaisesLeaderPanic: the leader's own chunk (worker 0) gets the
// same treatment, so helpers are always rejoined before the panic escapes.
func TestRunReRaisesLeaderPanic(t *testing.T) {
	p := New()
	defer p.Close()
	task := &panicTask{trigger: 0}
	pe := recoverPanicError(t, func() { p.Run(64, 4, task) })
	if pe.Worker != 0 {
		t.Fatalf("worker = %d, want 0", pe.Worker)
	}
	// The pool stays usable after the caller recovers.
	ok := &panicTask{trigger: -1}
	p.Run(64, 4, ok)
	if ok.covered.Load() != 64 {
		t.Fatalf("pool unusable after recovered panic: covered %d", ok.covered.Load())
	}
}

// TestSessionReRaisesPanicAtEnd: a panic inside a fused-session phase is
// held until End so the remaining phases keep their barriers balanced, then
// re-raised on the owner.
func TestSessionReRaisesPanicAtEnd(t *testing.T) {
	p := New()
	defer p.Close()
	const n, workers = 64, 4
	chunk := (n + workers - 1) / workers
	bad := &panicTask{trigger: 3 * chunk} // worker 3's chunk
	good := &panicTask{trigger: -1}
	pe := recoverPanicError(t, func() {
		p.Begin(workers)
		p.Run(n, workers, bad)
		p.Run(n, workers, good) // later phases still run
		p.End()
	})
	if pe.Worker != 3 {
		t.Fatalf("worker = %d, want 3", pe.Worker)
	}
	if good.covered.Load() != n {
		t.Fatalf("phase after the panic covered %d indexes, want %d", good.covered.Load(), n)
	}
	// A fresh session on the same pool works after recovery.
	p.Begin(workers)
	p.Run(n, workers, good)
	p.End()
}

// TestFirstPanicWins: with every chunk panicking, exactly one PanicError is
// re-raised and the pool is clean afterwards.
func TestFirstPanicWins(t *testing.T) {
	p := New()
	defer p.Close()
	all := &panicAllTask{}
	pe := recoverPanicError(t, func() { p.Run(64, 8, all) })
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	// No second panic is pending.
	ok := &panicTask{trigger: -1}
	p.Run(64, 8, ok)
	if ok.covered.Load() != 64 {
		t.Fatalf("stale panic corrupted the next Run: covered %d", ok.covered.Load())
	}
}

type panicAllTask struct{}

func (panicAllTask) RunChunk(lo, hi, worker int) { panic("boom") }
