package workpool

import (
	"runtime"
	"sync"
	"testing"
)

// coverTask records, per index, how often it ran and which worker ran it.
type coverTask struct {
	got []int32
}

func (t *coverTask) RunChunk(lo, hi, worker int) {
	for i := lo; i < hi; i++ {
		t.got[i]++
	}
}

func checkCovered(t *testing.T, task *coverTask, label string) {
	t.Helper()
	for i, c := range task.got {
		if c != 1 {
			t.Fatalf("%s: index %d ran %d times, want 1", label, i, c)
		}
	}
}

func TestSessionCoversEveryIndexExactlyOnce(t *testing.T) {
	p := New()
	defer p.Close()
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{1, 2, 7, 64, 1000} {
			for _, phases := range []int{1, 2, 3, 5} {
				p.Begin(workers)
				tasks := make([]*coverTask, phases)
				for ph := range tasks {
					tasks[ph] = &coverTask{got: make([]int32, n)}
					p.Run(n, workers, tasks[ph])
				}
				p.End()
				for _, task := range tasks {
					checkCovered(t, task, "session phase")
				}
			}
		}
	}
}

func TestSessionMixedPhaseWidths(t *testing.T) {
	// Phases inside one session may use fewer workers than the session
	// width (down to inline), and Run requests wider than the session are
	// clamped to it.
	p := New()
	defer p.Close()
	const n = 257
	p.Begin(4)
	for _, w := range []int{4, 1, 2, 16, 3, 1, 4} {
		task := &coverTask{got: make([]int32, n)}
		p.Run(n, w, task)
		checkCovered(t, task, "mixed-width phase")
	}
	p.End()
}

// TestSessionManyPhases drives one session through the phase counts a
// batched engine micro-batch produces — 3 phases per slot for 64-slot
// batches, with narrow (inline) phases interleaved like the engine's serial
// leader sections — verifying the atomic phase generation and the
// spin-then-park barrier stay correct far past the handful of phases the
// per-slot drivers use.
func TestSessionManyPhases(t *testing.T) {
	p := New()
	defer p.Close()
	const n = 64
	for _, workers := range []int{2, 4, 8} {
		p.Begin(workers)
		for phase := 0; phase < 3*64; phase++ {
			w := workers
			if phase%3 == 2 {
				w = 1 // serial interlude, runs inline on the leader
			}
			task := &coverTask{got: make([]int32, n)}
			p.Run(n, w, task)
			checkCovered(t, task, "many-phase session")
		}
		p.End()
	}
}

func TestSessionWithoutPhases(t *testing.T) {
	// A session whose phases all run inline (or that has none) never wakes
	// a helper; Begin/End must still pair cleanly, repeatedly.
	p := New()
	defer p.Close()
	for i := 0; i < 100; i++ {
		p.Begin(4)
		task := &coverTask{got: make([]int32, 3)}
		p.Run(3, 1, task) // inline: below the parallel threshold
		checkCovered(t, task, "inline phase")
		p.End()
	}
}

func TestSessionsInterleaveWithPlainRuns(t *testing.T) {
	p := New()
	defer p.Close()
	const n = 500
	for i := 0; i < 50; i++ {
		plain := &coverTask{got: make([]int32, n)}
		p.Run(n, 4, plain)
		checkCovered(t, plain, "plain run")
		p.Begin(4)
		for ph := 0; ph < 3; ph++ {
			task := &coverTask{got: make([]int32, n)}
			p.Run(n, 4, task)
			checkCovered(t, task, "session phase")
		}
		p.End()
	}
}

func TestSessionInSession(t *testing.T) {
	p := New()
	defer p.Close()
	if p.InSession() {
		t.Fatal("fresh pool reports an open session")
	}
	p.Begin(2)
	if !p.InSession() {
		t.Fatal("InSession false after Begin")
	}
	p.End()
	if p.InSession() {
		t.Fatal("InSession true after End")
	}
}

func TestNestedBeginPanics(t *testing.T) {
	p := New()
	defer p.Close()
	p.Begin(2)
	defer p.End()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin did not panic")
		}
	}()
	p.Begin(2)
}

func TestEndWithoutBeginPanics(t *testing.T) {
	p := New()
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	p.End()
}

func TestSessionSteadyStateAllocFree(t *testing.T) {
	p := New()
	defer p.Close()
	task := &allocTask{}
	slot := func() {
		p.Begin(4)
		p.Run(1024, 4, task)
		p.Run(1024, 2, task)
		p.Run(1024, 4, task)
		p.End()
	}
	slot() // spawn helpers, grow park flags
	if allocs := testing.AllocsPerRun(50, slot); allocs != 0 {
		t.Fatalf("steady-state session allocates %.1f objects, want 0", allocs)
	}
}

// waitGoroutines polls until the live goroutine count drops to at most
// want, reporting the final count.
func waitGoroutines(want int) int {
	var g int
	for i := 0; i < 2000; i++ {
		g = runtime.NumGoroutine()
		if g <= want {
			return g
		}
		runtime.Gosched()
	}
	return g
}

func TestGoroutineLeakAcrossPoolLifecycles(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p := New()
		task := &allocTask{}
		p.Run(256, 4, task)
		p.Begin(4)
		p.Run(256, 4, task)
		p.End()
		p.Close()
	}
	if g := waitGoroutines(before); g > before {
		t.Fatalf("goroutines grew from %d to %d across 20 pool lifecycles", before, g)
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	p := New()
	task := &allocTask{}
	p.Run(64, 4, task)
	p.Close()
	p.Close() // idempotent
	// And concurrently, from many goroutines at once.
	q := New()
	q.Run(64, 4, task)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Close()
		}()
	}
	wg.Wait()
	// Close on a pool that never spawned helpers.
	New().Close()
}

func TestCloseVsWakeRace(t *testing.T) {
	// Hammer the window between a Run (or session End) returning and the
	// helpers re-parking on their wake channels: Close fires from another
	// goroutine the moment the owner finishes, while the helpers may still
	// be between their WaitGroup rendezvous and their next channel select.
	// Run under -race this exercises the stop/wake handoff; the test fails
	// by deadlock (test timeout) or detector report, not by assertion.
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		p := New()
		task := &allocTask{}
		if i%2 == 0 {
			p.Run(128, 4, task)
		} else {
			p.Begin(4)
			p.Run(128, 4, task)
			p.Run(128, 4, task)
			p.End()
		}
		done := make(chan struct{})
		go func() {
			p.Close()
			close(done)
		}()
		p.Close() // racing double close from the owner
		<-done
	}
	if g := waitGoroutines(before + 4); g > before+4 {
		t.Fatalf("goroutines grew from %d to %d across Close races", before, g)
	}
}

func BenchmarkSession3Phases4Workers(b *testing.B) {
	p := New()
	defer p.Close()
	task := &allocTask{}
	p.Begin(4)
	p.Run(4096, 4, task)
	p.End()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Begin(4)
		p.Run(4096, 4, task)
		p.Run(4096, 4, task)
		p.Run(4096, 4, task)
		p.End()
	}
}
