package workpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// sumTask sums indices into per-worker subtotals and records which worker
// handled each index.
type sumTask struct {
	got     []int32
	workers []int32
}

func (t *sumTask) RunChunk(lo, hi, worker int) {
	for i := lo; i < hi; i++ {
		atomic.AddInt32(&t.got[i], 1)
		t.workers[i] = int32(worker)
	}
}

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	p := New()
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 8, 200} {
			task := &sumTask{got: make([]int32, n), workers: make([]int32, n)}
			p.Run(n, workers, task)
			for i, c := range task.got {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestRunPartitionIsContiguousAndDeterministic(t *testing.T) {
	p := New()
	defer p.Close()
	const n, workers = 103, 4
	a := &sumTask{got: make([]int32, n), workers: make([]int32, n)}
	b := &sumTask{got: make([]int32, n), workers: make([]int32, n)}
	p.Run(n, workers, a)
	p.Run(n, workers, b)
	for i := range a.workers {
		if a.workers[i] != b.workers[i] {
			t.Fatalf("partition changed between runs at index %d: %d vs %d", i, a.workers[i], b.workers[i])
		}
		if i > 0 && a.workers[i] < a.workers[i-1] {
			t.Fatalf("partition not contiguous at index %d: worker %d after %d", i, a.workers[i], a.workers[i-1])
		}
	}
	if a.workers[0] != 0 {
		t.Fatalf("chunk 0 not run by the caller (worker %d)", a.workers[0])
	}
}

// countTask counts invocations per worker id.
type countTask struct {
	ran [16]int32
}

func (t *countTask) RunChunk(lo, hi, worker int) {
	atomic.AddInt32(&t.ran[worker], 1)
}

func TestWorkerCountClampedToN(t *testing.T) {
	p := New()
	defer p.Close()
	task := &countTask{}
	p.Run(2, 8, task)
	for w := 2; w < len(task.ran); w++ {
		if task.ran[w] != 0 {
			t.Fatalf("worker %d ran with only 2 items", w)
		}
	}
}

func TestRunAfterGrowAndShrink(t *testing.T) {
	// Changing the worker count between runs reuses the already-spawned
	// helpers and spawns only the missing ones.
	p := New()
	defer p.Close()
	for _, workers := range []int{4, 2, 6, 1, 3} {
		task := &sumTask{got: make([]int32, 50), workers: make([]int32, 50)}
		p.Run(50, workers, task)
		for i, c := range task.got {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestCloseReleasesHelpers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New()
	task := &countTask{}
	p.Run(100, 4, task)
	p.Close()
	// Helpers exit asynchronously; poll briefly.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
	}
	// Not fatal on a busy test binary, but flag gross leaks.
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines after Close: %d, started with %d", g, before)
	}
}

// allocTask is a trivial task used by the allocation test.
type allocTask struct{ sink int64 }

func (t *allocTask) RunChunk(lo, hi, worker int) {
	s := int64(0)
	for i := lo; i < hi; i++ {
		s += int64(i)
	}
	atomic.AddInt64(&t.sink, s)
}

func TestRunSteadyStateAllocFree(t *testing.T) {
	p := New()
	defer p.Close()
	task := &allocTask{}
	p.Run(1024, 4, task) // spawn the helpers
	allocs := testing.AllocsPerRun(50, func() { p.Run(1024, 4, task) })
	if allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f objects, want 0", allocs)
	}
}

func BenchmarkRun4Workers(b *testing.B) {
	p := New()
	defer p.Close()
	task := &allocTask{}
	p.Run(4096, 4, task)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(4096, 4, task)
	}
}
