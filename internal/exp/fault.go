package exp

import (
	"fmt"

	"sinrmac/internal/consensus"
	"sinrmac/internal/core"
	"sinrmac/internal/fault"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/stats"
	"sinrmac/internal/topology"
)

// faultPoint is one sweep point of E10: a fault intensity triple.
type faultPoint struct {
	crash float64 // per-node crash probability
	jam   int     // jammers injected per jammed slot
	byz   float64 // Byzantine node fraction
}

// faultTrialResult is one E10 trial under one fault plan.
type faultTrialResult struct {
	crashed, panics, jamSlots int
	decidedFrac               float64
	agree, valid              int
	quorum                    bool
	ackMiss                   int
	slot                      float64
}

// FaultDegradation is experiment E10-fault: graceful degradation of the
// combined MAC plus the consensus layer under a deterministic fault plan.
// Each sweep point runs consensus on a line deployment while the
// internal/fault injector crashes nodes, jams slots and wraps a fraction of
// the nodes in Byzantine adversaries (spam plus payload equivocation). The
// checkers then count — rather than assert — violations among the correct
// nodes: decision coverage, agreement/validity breaches
// (consensus.CheckFaulty), the majority-quorum assumption, and
// acknowledgment deadline misses over the MAC trace (core.CheckDeadlines).
// The zero-fault point doubles as the control: it must decide fully with no
// violations, pinning the fault layer's "off means off" contract at the
// experiment level.
func FaultDegradation(cfg Config) (Table, error) {
	table := Table{
		ID:    "E10-fault",
		Title: "graceful degradation: consensus under crash × jam × Byzantine faults",
		Columns: []string{
			"crash", "jam", "byz", "crashed", "panics", "jam_slots",
			"decided", "agree_viol", "valid_viol", "quorum", "ack_miss", "decision_slot",
		},
	}
	points := []faultPoint{
		{0, 0, 0},
		{0.15, 0, 0},
		{0, 2, 0},
		{0, 0, 0.15},
		{0.15, 2, 0.15},
		{0.3, 4, 0.3},
	}
	n := 16
	if cfg.Quick {
		points = points[:4]
		n = 10
	}
	trials := cfg.trials(2)
	const epsAck = 0.05

	res, err := runTrials(cfg, "E10-fault", len(points), trials, func(tc *TrialContext) (faultTrialResult, error) {
		fp := points[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return topology.Line(n, 4, sinr.DefaultParams(globalRange))
		})
		if err != nil {
			return faultTrialResult{}, err
		}
		strong := d.StrongGraph()
		diam := strong.Diameter()
		delta := strong.MaxDegree()
		lambda := d.Lambda()
		ch, err := tc.Channel()
		if err != nil {
			return faultTrialResult{}, err
		}
		// The injector carries per-trial schedule state, so the engine is
		// trial-private; the evaluator fork is too (closed with the trial).
		fast := sinr.NewFastChannel(ch)
		defer fast.Close()

		fack := int64(core.TheoreticalFack(delta, lambda, epsAck))
		deadline := fack * int64(diam+4) * 200
		// Crash/recover windows are sized to the decision timescale (a few
		// fack·diam periods), not to the worst-case deadline: a schedule
		// far beyond the decision slot would never fire.
		horizon := fack * int64(diam+4) * 10
		plan := fault.Plan{
			Seed:              tc.Src.Uint64(),
			CrashRate:         fp.crash,
			CrashWindow:       horizon,
			RecoverRate:       0.5,
			RecoverDelay:      horizon / 4,
			JamRate:           0.25,
			JamPower:          fp.jam,
			ByzantineFraction: fp.byz,
			SpamRate:          0.25,
			Mutate: func(slot int64, node int, f *sim.Frame, src *rng.Source) {
				// Equivocate on the consensus payload when one is attached,
				// otherwise garble the message identity.
				if p, ok := f.Msg.Payload.(consensus.Payload); ok {
					p.Value ^= 1
					f.Msg.Payload = p
				} else {
					f.Msg.ID ^= 0x5a5a
				}
			},
		}
		inj, err := fault.NewInjector(plan, n)
		if err != nil {
			return faultTrialResult{}, err
		}

		macCfg := combinedMACConfig(lambda)
		rec := core.NewRecorder()
		initials := make([]consensus.Value, n)
		layers := make([]*consensus.Node, n)
		nodes := make([]sim.Node, n)
		for i := range nodes {
			initials[i] = consensus.Value(uint8(tc.Src.Intn(2)))
			l, err := consensus.New(consensus.Config{Rounds: diam + 2}, initials[i])
			if err != nil {
				return faultTrialResult{}, err
			}
			layers[i] = l
			node := mac.New(macCfg, rec)
			node.SetLayer(l)
			nodes[i] = node
		}
		eng, err := tc.PrivateEngine(ch, inj.WrapNodes(nodes), fast, inj)
		if err != nil {
			return faultTrialResult{}, err
		}
		correctDecided := func() bool {
			for i, l := range layers {
				if inj.Inert(i) || inj.Byzantine(i) {
					continue
				}
				if ok, _, _ := l.Decided(); !ok {
					return false
				}
			}
			return true
		}
		eng.Run(deadline, correctDecided)

		crashed := make([]bool, n)
		byzantine := make([]bool, n)
		for i := range crashed {
			crashed[i], byzantine[i] = inj.Inert(i), inj.Byzantine(i)
		}
		fr := consensus.CheckFaulty(layers, initials, crashed, byzantine)
		st := inj.Stats()
		// The combined MAC timeshares ack and progress slots, so its
		// fault-free ack latency sits around 50·f_ack; 64·f_ack clears the
		// fault-free envelope and counts only fault-induced misses. The
		// progress deadline is tighter (8·f_ack clears fault-free easily).
		dr := core.CheckDeadlines(rec.Events(), strong, fack*64, fack*8, eng.Slot())

		slot := float64(deadline)
		latest := int64(-1)
		for i, l := range layers {
			if crashed[i] || byzantine[i] {
				continue
			}
			if ok, _, s := l.Decided(); ok && s > latest {
				latest = s
			}
		}
		if fr.Undecided == 0 && latest >= 0 {
			slot = float64(latest)
		}
		decidedFrac := 0.0
		if fr.Correct > 0 {
			decidedFrac = float64(fr.Decided) / float64(fr.Correct)
		}
		return faultTrialResult{
			crashed:     st.Crashed,
			panics:      st.PanicCrashes,
			jamSlots:    st.JammedSlots,
			decidedFrac: decidedFrac,
			agree:       fr.AgreementBreaches,
			valid:       fr.ValidityBreaches,
			quorum:      fr.QuorumIntact,
			ackMiss:     dr.AckMisses,
			slot:        slot,
		}, nil
	})
	if err != nil {
		return table, err
	}

	for pi, fp := range points {
		var slots, decided []float64
		crashedSum, panicsSum, jamSum, agreeSum, validSum, ackSum := 0, 0, 0, 0, 0, 0
		quorumAll := true
		for _, r := range res[pi] {
			slots = append(slots, r.slot)
			decided = append(decided, r.decidedFrac)
			crashedSum += r.crashed
			panicsSum += r.panics
			jamSum += r.jamSlots
			agreeSum += r.agree
			validSum += r.valid
			ackSum += r.ackMiss
			if !r.quorum {
				quorumAll = false
			}
		}
		table.AddRow(
			fmt.Sprintf("%.2f", fp.crash), fp.jam, fmt.Sprintf("%.2f", fp.byz),
			crashedSum, panicsSum, jamSum,
			fmt.Sprintf("%.2f", stats.Mean(decided)), agreeSum, validSum,
			fmt.Sprintf("%v", quorumAll), ackSum, stats.Median(slots),
		)
	}
	clean := true
	for _, r := range res[0] {
		if r.decidedFrac != 1 || r.agree != 0 || r.valid != 0 {
			clean = false
		}
	}
	if clean {
		table.AddNote("zero-fault control point decided fully with no violations (fault layer off means off)")
	} else {
		table.AddNote("WARNING: zero-fault control point shows violations — fault layer is not inert")
	}
	return table, nil
}
