package exp

import (
	"fmt"

	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// Experiment E9-scale: sharded slot evaluation at scale.
//
// Beyond the paper: the evaluation sizes the paper's experiments run at fit
// the per-pair regimes; this experiment drives the sharded evaluator across
// deployment sizes up to n = 10⁶ and records what the regime's cost model
// actually sees — the occupied-cell decomposition its memory scales with,
// the decoded receptions of full slot evaluations, and the certificate
// refine rate (the fraction of receivers the per-cell power bounds could
// not decide, each paying the exact O(k) fallback).
//
// The table is deliberately timing-free: every cell is a deterministic
// function of (Seed, n), so the determinism contract of the parallel
// harness (bit-identical tables at any worker count) extends to this
// experiment even though the evaluator itself fans slot evaluation across
// internal workers — the sharded regime's output and counters are exact,
// not heuristic, at any worker count. Wall-clock and memory measurements
// for the same configurations live in cmd/macbench (shard_n100k and the
// -large shard_n1m case), where testing.Benchmark methodology applies.

// scaleSlots is how many independent full slots each sweep point evaluates;
// refine rates and reception counts are accumulated across all of them.
const scaleSlots = 3

// scaleTxDiv sets the transmitter count per slot: k = n/scaleTxDiv, the
// dense-slot regime the sharded tier exists for (sparse slots bypass it).
const scaleTxDiv = 32

// ShardScale is experiment E9-scale (see the file comment).
func ShardScale(cfg Config) (Table, error) {
	table := Table{
		ID:    "E9-scale",
		Title: "Sharded evaluation at scale: cell decomposition, receptions and certificate refine rate vs n",
		Columns: []string{
			"n", "k", "shards", "cells", "receptions", "refine_rate",
		},
	}
	// The full sizes sit above sinr.DefaultShardThreshold, so Shards: 0
	// selects the regime (and its shard count) automatically — the table
	// records what a simulation at that size actually gets. The quick sizes
	// are below the threshold and pin a shard count explicitly so the quick
	// suite still exercises the sharded code path.
	type point struct {
		n      int
		shards int
	}
	points := []point{{100_000, 0}, {1_000_000, 0}}
	if cfg.Quick {
		points = []point{{20_000, 8}, {50_000, 8}}
	}
	for pi, pt := range points {
		k := pt.n / scaleTxDiv
		ch, _, err := sinr.DenseBenchWorkload(pt.n, k, cfg.Seed)
		if err != nil {
			return table, err
		}
		fast := sinr.NewFastChannel(ch, sinr.FastOptions{Shards: pt.shards, SparseFactor: -1})
		if fast.Shards() == 0 {
			fast.Close()
			return table, fmt.Errorf("exp: E9-scale point %d (n=%d): sharded regime unavailable", pi, pt.n)
		}
		src := rng.New(cfg.Seed).SplitLabeled(rng.Label("E9-scale")).SplitLabeled(uint64(pt.n))
		tx := make([]int, 0, k)
		receptions := 0
		for slot := 0; slot < scaleSlots; slot++ {
			tx = tx[:0]
			for len(tx) < k {
				id := src.Intn(pt.n)
				tx = append(tx, id) // duplicates are legal; distinct ids decide decoding
			}
			for _, r := range fast.SlotReceptions(tx) {
				if r.Sender >= 0 {
					receptions++
				}
			}
		}
		st := fast.BoundsStats()
		table.AddRow(pt.n, k, fast.Shards(), fast.OccupiedCells(), receptions,
			fmt.Sprintf("%.4f", st.RefineRate()))
		fast.Close()
	}
	table.AddNote("%d full slots per point at k = n/%d; refine_rate is the fraction of receivers the per-cell certificates could not decide (each pays the exact O(k) fallback); timings and memory for these configurations are cmd/macbench's shard cases", scaleSlots, scaleTxDiv)
	return table, nil
}
