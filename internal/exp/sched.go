package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// This file implements the deterministic parallel trial scheduler every
// experiment runs on.
//
// An experiment is a sweep grid of (point × trial) jobs. runTrials fans the
// jobs across a bounded worker pool and merges the results into a
// [point][trial] matrix, so aggregation code consumes them in canonical
// order no matter which worker finished which job when.
//
// # Seed derivation
//
// Every random stream is a pure function of (Config.Seed, experiment,
// point, trial), derived with rng.Source.SplitLabeled label paths instead
// of the loop-carried arithmetic seeds the sequential harness used:
//
//	expSrc    = rng.New(cfg.Seed).SplitLabeled(rng.Label(experiment))
//	deploySrc = expSrc.SplitLabels(point, 0)           // sweep-point deployment
//	tc.Src    = expSrc.SplitLabels(point, trial+1, 0)  // in-trial randomness
//	engine    = expSrc.SplitLabels(point, trial+1, 1)  // per-node protocol streams
//
// SplitLabeled never advances its parent, so a job's streams depend only on
// its coordinates — never on scheduling order or worker count. That is the
// determinism contract: the tables emitted with Workers: 8 are bit-identical
// to the tables emitted with Workers: 1.
//
// # Fixed-cost reuse and sampling semantics
//
// The sweep-point deployment is built exactly once (guarded by sync.Once)
// and shared by every trial: its strong graph, Λ, SINR channel and the fast
// evaluator's n×n power matrix are all paid once per point. Each worker
// additionally keeps, per point, a private fork of the point's fast
// evaluator (sinr.FastChannel.Fork — shared immutable matrix, private
// scratch and column cache) and one sim.Engine that later trials rewind
// with Engine.Reset instead of reallocating.
//
// Sharing the deployment changes what "trials" sample: they average over
// protocol randomness on one fixed topology per sweep point, not over fresh
// topology draws per trial as the pre-scheduler harness did. Topology
// randomness enters across sweep points (each point draws its own
// deployment from its own label). This is a deliberate trade — it is what
// lets the power matrix and engine be reused at all — and matches the
// common randomized-sweep methodology of fixing an instance per
// configuration; raise the number of sweep points, not Trials, to sample
// more topologies.

// workers resolves the scheduler's worker count: Config.Workers, or
// GOMAXPROCS when zero or negative.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// pointState is the shared per-sweep-point state: the deployment, its
// channel and the base fast evaluator whose power matrix all trial forks
// share. It is initialised by whichever job reaches the point first; the
// deployment itself is seeded from point-level labels, so the result does
// not depend on which job that is.
type pointState struct {
	once sync.Once
	err  error
	dep  *topology.Deployment
	ch   *sinr.Channel
	base *sinr.FastChannel
}

// trialWorker is the per-worker cache: one engine (and evaluator fork) per
// sweep point, reused across all trials this worker runs on that point.
type trialWorker struct {
	engines map[int]*sim.Engine
}

// TrialContext is handed to the trial function of runTrials. It identifies
// the job, carries its private random streams, and provides the reuse
// plumbing (shared deployment, per-worker engine).
type TrialContext struct {
	// Point and Trial are the job's coordinates in the sweep grid.
	Point int
	Trial int
	// Src is the trial's private random source for in-trial randomness
	// (message origins, initial values). It is a pure function of
	// (Config.Seed, experiment, Point, Trial).
	Src *rng.Source

	seed      uint64 // engine seed: per-node protocol streams
	batch     int    // Config.Batch, forwarded into every engine built here
	deploySrc *rng.Source
	ps        *pointState
	worker    *trialWorker
}

// Deployment returns the sweep point's deployment, building it on first use
// via build and sharing it with every other trial of the point. build
// receives the point-level source, so the deployment depends only on
// (Config.Seed, experiment, Point) — identical for every trial and worker
// count. The first build also raises the point's SINR channel and the base
// fast evaluator whose power matrix all trials share.
func (tc *TrialContext) Deployment(build func(src *rng.Source) (*topology.Deployment, error)) (*topology.Deployment, error) {
	ps := tc.ps
	ps.once.Do(func() {
		d, err := build(tc.deploySrc)
		if err != nil {
			ps.err = err
			return
		}
		ch, err := d.Channel()
		if err != nil {
			ps.err = err
			return
		}
		ps.dep, ps.ch = d, ch
		ps.base = sinr.NewFastChannel(ch)
	})
	return ps.dep, ps.err
}

// Channel returns the sweep point's SINR channel. Deployment must have been
// called first.
func (tc *TrialContext) Channel() (*sinr.Channel, error) {
	if tc.ps.ch == nil {
		return nil, fmt.Errorf("exp: Channel called before Deployment for point %d", tc.Point)
	}
	return tc.ps.ch, nil
}

// Engine returns this worker's engine over the point's deployment, rewound
// to slot zero with the given nodes and the trial's engine seed. The first
// call on a (worker, point) pair builds the engine over a private fork of
// the point's fast evaluator; later calls reuse it via sim.Engine.Reset, so
// repeated trials stop repaying the engine's fixed costs. The engine runs
// its receiver scan single-threaded: trial-level parallelism already
// saturates the worker pool, and the per-slot deployments the experiments
// sweep are far too small to amortise per-slot goroutines.
func (tc *TrialContext) Engine(nodes []sim.Node) (*sim.Engine, error) {
	if tc.ps.ch == nil {
		return nil, fmt.Errorf("exp: Engine called before Deployment for point %d", tc.Point)
	}
	eng := tc.worker.engines[tc.Point]
	if eng == nil {
		eng, err := sim.NewEngine(tc.ps.ch, nodes, sim.Config{
			Seed:      tc.seed,
			Workers:   1,
			Evaluator: tc.ps.base.Fork(),
			Batch:     tc.batch,
		})
		if err != nil {
			return nil, err
		}
		tc.worker.engines[tc.Point] = eng
		return eng, nil
	}
	if err := eng.Reset(nodes, tc.seed); err != nil {
		return nil, err
	}
	return eng, nil
}

// PrivateEngine builds a trial-private engine over a channel and evaluator
// the trial owns, seeded with the trial's engine seed. The churn and fault
// experiments use it: churn epochs mutate the deployment, channel and
// evaluator in place, and a fault injector carries per-trial mutable
// schedule state, so — unlike Engine — nothing here may be shared with or
// reused by other trials of the point. The caller owns the evaluator's
// lifetime (close a FastChannel when the trial ends); faults may be nil.
func (tc *TrialContext) PrivateEngine(ch *sinr.Channel, nodes []sim.Node, ev sinr.ChannelEvaluator, faults sim.FaultHook) (*sim.Engine, error) {
	return sim.NewEngine(ch, nodes, sim.Config{
		Seed:      tc.seed,
		Workers:   1,
		Evaluator: ev,
		Faults:    faults,
		Batch:     tc.batch,
	})
}

// runTrials runs fn once for every job of a points × trials sweep grid,
// fanning the jobs across cfg.workers() workers, and returns the results as
// a [point][trial] matrix in canonical order. Results are written to
// disjoint slots, errors are reported in canonical job order, and all
// randomness is label-derived, so the output is independent of the worker
// count. On error the first failing job (in canonical order) wins and the
// partial results are discarded.
func runTrials[T any](cfg Config, experiment string, points, trials int, fn func(tc *TrialContext) (T, error)) ([][]T, error) {
	if points <= 0 || trials <= 0 {
		return nil, fmt.Errorf("exp: %s: empty sweep grid (%d points × %d trials)", experiment, points, trials)
	}
	states := make([]*pointState, points)
	for i := range states {
		states[i] = &pointState{}
	}
	results := make([][]T, points)
	for i := range results {
		results[i] = make([]T, trials)
	}
	errs := make([]error, points*trials)

	expSrc := rng.New(cfg.Seed).SplitLabeled(rng.Label(experiment))
	var failed atomic.Bool
	runJob := func(wk *trialWorker, job int) {
		if cfg.Interrupt != nil && cfg.Interrupt() {
			errs[job] = ErrInterrupted
			failed.Store(true)
			return
		}
		point, trial := job/trials, job%trials
		tc := &TrialContext{
			Point:     point,
			Trial:     trial,
			Src:       expSrc.SplitLabels(uint64(point), uint64(trial)+1, 0),
			seed:      expSrc.SplitLabels(uint64(point), uint64(trial)+1, 1).Uint64(),
			deploySrc: expSrc.SplitLabels(uint64(point), 0),
			batch:     cfg.Batch,
			ps:        states[point],
			worker:    wk,
		}
		results[point][trial], errs[job] = fn(tc)
		if errs[job] != nil {
			failed.Store(true)
		}
	}

	jobs := points * trials
	workers := cfg.workers()
	if workers > jobs {
		workers = jobs
	}
	// Once any job has failed the sweep's output is discarded anyway, so
	// workers stop picking up new jobs (in-flight ones finish). Which later
	// jobs got skipped depends on timing, but the reported error does not:
	// the first failure in canonical order is deterministic because every
	// job scheduled before the failure was observed still runs.
	if workers <= 1 {
		wk := &trialWorker{engines: make(map[int]*sim.Engine)}
		for job := 0; job < jobs && !failed.Load(); job++ {
			runJob(wk, job)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wk := &trialWorker{engines: make(map[int]*sim.Engine)}
				for !failed.Load() {
					job := int(next.Add(1) - 1)
					if job >= jobs {
						return
					}
					runJob(wk, job)
				}
			}()
		}
		wg.Wait()
	}
	for job, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: %s point %d trial %d: %w", experiment, job/trials, job%trials, err)
		}
	}
	return results, nil
}
