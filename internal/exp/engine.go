package exp

import (
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// newEngine builds the simulation engine every experiment runs on. The
// experiment harness explicitly selects the fast SINR evaluator
// (sinr.NewFastChannel): it is differentially tested against the naive
// reference path, produces identical executions, and keeps the large sweeps
// tractable. Tests that want the reference semantics construct their engine
// directly with a nil Config.Evaluator.
func newEngine(d *topology.Deployment, nodes []sim.Node, seed uint64) (*sim.Engine, error) {
	ch, err := d.Channel()
	if err != nil {
		return nil, err
	}
	return sim.NewEngine(ch, nodes, sim.Config{Seed: seed, Evaluator: sinr.NewFastChannel(ch)})
}
