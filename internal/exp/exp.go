// Package exp defines the experiment harness that regenerates every table
// and figure of the paper's evaluation:
//
//	E1-ack    Table 1, f_ack row (Theorem 5.1): acknowledgment latency vs Δ.
//	E2-proglb Figure 1 / Theorem 6.1: progress needs ≥ Δ slots even with an
//	          optimal centralized scheduler.
//	E3-approg Table 1, f_approg row (Theorem 9.1): approximate-progress
//	          latency stays polylogarithmic as Δ grows.
//	E4-decay  Theorem 8.1: Decay's progress degrades linearly in Δ on the
//	          two-balls construction while Algorithm 9.1 does not.
//	E5-smb    Table 1 SMB row and Table 2: global single-message broadcast,
//	          MAC-based BSMB vs the Daum et al. [14]-style direct broadcast
//	          vs Decay flooding.
//	E6-mmb    Table 1 MMB row: multi-message broadcast cost as a function of
//	          the number of messages k.
//	E7-cons   Table 1 CONS row (Corollary 5.5): consensus completion time vs
//	          the network diameter.
//	E8-churn  Beyond the paper: global broadcast latency while the
//	          deployment churns — mobility epochs committed through the
//	          dynamic-topology API (topology epoch.go) and applied to the
//	          running engine incrementally (sim.Engine.ApplyEpoch), sweeping
//	          the per-slot churn rate against the static baseline.
//	E9-scale  Beyond the paper: the sharded slot evaluator at deployment
//	          sizes up to n = 10⁶ — cell decomposition, decoded receptions
//	          of full slot evaluations and the certificate refine rate, as
//	          a deterministic (timing-free) table.
//	E10-fault Beyond the paper: graceful degradation of the combined MAC
//	          and the consensus layer under a deterministic fault plan
//	          (internal/fault) — sweeping crash rate × jam power ×
//	          Byzantine fraction and reporting decision coverage,
//	          agreement/validity violations among correct nodes and
//	          deadline misses (core.CheckDeadlines, consensus.CheckFaulty).
//
// Each experiment returns a Table whose rows are also what
// cmd/experiments prints and what EXPERIMENTS.md records.
//
// # Parallel scheduling and determinism
//
// Every experiment is a sweep of (point × trial) jobs executed by the
// deterministic parallel scheduler in sched.go (runTrials). Jobs fan out
// across Config.Workers workers; each sweep point's deployment — and with
// it the strong graph, Λ and the fast evaluator's power matrix — is built
// once and shared by all trials, while each worker keeps a private
// evaluator fork and a reusable engine per point (sim.Engine.Reset).
//
// All randomness is derived from (Config.Seed, experiment, point, trial)
// labels via rng.Source.SplitLabeled, never from loop-carried seeds, and
// results are merged in canonical sweep order. The determinism contract:
// the same Config emits bit-identical tables at every worker count,
// asserted by TestParallelTablesBitIdentical.
package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Config controls how experiments are run.
type Config struct {
	// Seed seeds all deployments and simulations; identical seeds give
	// identical tables.
	Seed uint64
	// Trials is the number of independent repetitions averaged per data
	// point. Zero means the per-experiment default. Trials of one sweep
	// point share that point's deployment and vary only the protocol
	// randomness (see the sampling-semantics note in sched.go); the
	// deployment itself is redrawn per sweep point.
	Trials int
	// Quick shrinks every sweep to its smallest sizes so the whole suite
	// finishes in seconds. Used by unit tests and the -quick flag.
	Quick bool
	// Workers bounds the number of concurrent trial workers the parallel
	// scheduler (runTrials) fans (point × trial) jobs across. Zero means
	// GOMAXPROCS; one forces the sequential path. Every random stream is
	// derived from (Seed, experiment, point, trial) labels, so the emitted
	// tables are bit-identical at any worker count.
	Workers int
	// Batch is the engine micro-batch size forwarded into every trial
	// engine (sim.Config.Batch): each Engine.Run executes up to Batch
	// slots per fused driver session. Zero means the engine default
	// (sim.DefaultBatchSlots). Batching never changes results — the
	// batched driver is bit-identical to the slot-at-a-time loop — so
	// this is purely a throughput knob.
	Batch int
	// Interrupt, when non-nil, is polled before each trial job. Once it
	// returns true the scheduler stops picking up new jobs (in-flight
	// ones finish) and the experiment returns an error wrapping
	// ErrInterrupted. cmd/experiments wires SIGINT to it so the tables
	// completed before the signal can still be flushed.
	Interrupt func() bool
}

// ErrInterrupted is the sentinel wrapped by experiment errors when the
// sweep was cut short via Config.Interrupt. Tables completed before the
// interruption remain valid; the interrupted experiment's table does not.
var ErrInterrupted = errors.New("interrupted")

// DefaultConfig returns the configuration used by cmd/experiments.
func DefaultConfig() Config {
	return Config{Seed: 1, Trials: 3}
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// Table is one regenerated table or figure.
type Table struct {
	// ID is the experiment identifier (e.g. "E1-ack").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the formatted cells, one slice per row.
	Rows [][]string
	// Notes carry free-form observations (e.g. fitted slopes) that
	// EXPERIMENTS.md quotes.
	Notes []string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned plain text suitable for terminals and
// for inclusion in EXPERIMENTS.md code blocks.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(cfg Config) (Table, error)

// Registry maps experiment names (as accepted by cmd/experiments -exp) to
// their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"ack":    AckScaling,
		"proglb": ProgressLowerBound,
		"approg": ApproxProgressScaling,
		"decay":  DecayVsApprog,
		"smb":    SMBComparison,
		"mmb":    MMBScaling,
		"cons":   ConsensusScaling,
		"churn":  ChurnLatency,
		"scale":  ShardScale,
		"fault":  FaultDegradation,
	}
}

// Names returns the registered experiment names in a stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunAll runs every registered experiment in name order and returns their
// tables. It stops at the first failure.
func RunAll(cfg Config) ([]Table, error) {
	var out []Table
	reg := Registry()
	for _, name := range Names() {
		table, err := reg[name](cfg)
		if err != nil {
			return out, fmt.Errorf("exp: experiment %q failed: %w", name, err)
		}
		out = append(out, table)
	}
	return out, nil
}
