package exp

import (
	"fmt"
	"math"

	"sinrmac/internal/bcastproto"
	"sinrmac/internal/core"
	"sinrmac/internal/geom"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/stats"
	"sinrmac/internal/topology"
)

// Experiment E8-churn: global single-message broadcast latency under
// per-slot mobility churn.
//
// The paper states its guarantees for a fixed node set; this experiment
// measures how much a dynamic deployment degrades them. Every churnInterval
// slots an epoch of node moves is committed on the trial's private copy of
// the deployment — each mover jitters inside a small disc, preserving the
// unit-distance invariant (rejected epochs are re-drawn) — and applied to
// the running engine via sim.Engine.ApplyEpoch, which patches the fast
// evaluator incrementally and keeps every surviving automaton's protocol
// state. The sweep varies the per-slot churn rate (fraction of nodes moved
// per slot, amortised over the interval); rate 0 is the static baseline the
// other points are normalised against.

// churnInterval is the number of slots between committed mobility epochs.
const churnInterval = 10

// churnJitter is the radius of the per-move jitter disc. Small relative to
// the strong range (10.8 at the global experiments' parameters), so single
// epochs perturb link quality without routinely disconnecting G_{1-ε}.
const churnJitter = 0.5

// churnEpochAttempts caps how often one epoch is re-drawn when a jitter
// lands two nodes within unit distance.
const churnEpochAttempts = 8

// churnTrialResult is one E8 trial: the completion slot, how many epochs
// and node moves were applied, and the point's deployment statistics.
type churnTrialResult struct {
	latency float64
	done    bool
	epochs  int
	moved   int
	diam    int
	lambda  float64
}

// ChurnLatency is experiment E8-churn (see the file comment).
func ChurnLatency(cfg Config) (Table, error) {
	table := Table{
		ID:    "E8-churn",
		Title: "Dynamic deployments: global broadcast latency vs per-slot mobility churn rate",
		Columns: []string{
			"churn_rate", "n", "diam0", "lambda0", "epochs", "moved", "latency", "vs_static", "completed",
		},
	}
	rates := []float64{0, 0.002, 0.01, 0.05}
	n := 40
	if cfg.Quick {
		rates = []float64{0, 0.01}
		n = 24
	}
	trials := cfg.trials(2)

	res, err := runTrials(cfg, "E8-churn", len(rates), trials, func(tc *TrialContext) (churnTrialResult, error) {
		rate := rates[tc.Point]
		// Every sweep point starts from the SAME topology draw (a fixed
		// label off the experiment seed, deliberately not the point-derived
		// source): the sweep varies only the churn rate, so vs_static
		// compares latencies on one deployment instead of mixing topology
		// randomness into the ratio.
		base, err := tc.Deployment(func(*rng.Source) (*topology.Deployment, error) {
			return buildUniform(n, rng.New(cfg.Seed).SplitLabeled(rng.Label("E8-churn-deploy")))
		})
		if err != nil {
			return churnTrialResult{}, err
		}
		// Static statistics come from the shared pre-churn deployment; the
		// trial then churns a private clone (epochs mutate positions and
		// caches in place, so nothing churned may be shared across trials).
		diam := base.StrongGraph().Diameter()
		delta := base.StrongGraph().MaxDegree()
		lambda := base.Lambda()
		d := base.Clone()
		ch, err := d.Channel()
		if err != nil {
			return churnTrialResult{}, err
		}
		fast := sinr.NewFastChannel(ch)
		defer fast.Close()

		msg := core.Message{ID: 1, Origin: 0, Payload: "churn"}
		macCfg := combinedMACConfig(lambda)
		layers := make([]*bcastproto.BMMB, d.NumNodes())
		nodes := make([]sim.Node, d.NumNodes())
		for i := range nodes {
			var initial []core.Message
			if msg.Origin == i {
				initial = append(initial, msg)
			}
			layers[i] = bcastproto.NewBMMB(initial...)
			node := mac.New(macCfg, nil)
			node.SetLayer(layers[i])
			nodes[i] = node
		}
		eng, err := tc.PrivateEngine(ch, nodes, fast, nil)
		if err != nil {
			return churnTrialResult{}, err
		}

		movedPerEpoch := int(math.Round(rate * churnInterval * float64(n)))
		if rate > 0 && movedPerEpoch < 1 {
			movedPerEpoch = 1
		}
		ids := bcastproto.MessageIDs([]core.Message{msg})
		done := func() bool { return bcastproto.AllDelivered(layers, ids) }
		deadline := int64(core.TheoreticalFack(delta, lambda, 0.1)) * int64(diam+5) * 100

		epochs, moved := 0, 0
		for eng.Slot() < deadline && !done() {
			budget := deadline - eng.Slot()
			if budget > churnInterval {
				budget = churnInterval
			}
			eng.Run(budget, done)
			if done() || movedPerEpoch == 0 || eng.Slot() >= deadline {
				continue
			}
			epochDelta, err := commitMobilityEpoch(d, movedPerEpoch, tc.Src)
			if err != nil {
				return churnTrialResult{}, err
			}
			if epochDelta == nil {
				continue // every redraw collided; skip this epoch
			}
			if err := eng.ApplyEpoch(epochDelta, nil); err != nil {
				return churnTrialResult{}, err
			}
			epochs++
			moved += len(epochDelta.Dirty)
		}
		slot, ok := bcastproto.CompletionSlot(layers, ids)
		latency := float64(deadline)
		if ok {
			latency = float64(slot)
		}
		return churnTrialResult{
			latency: latency, done: ok, epochs: epochs, moved: moved,
			diam: diam, lambda: lambda,
		}, nil
	})
	if err != nil {
		return table, err
	}

	static := 0.0
	for pi, rate := range rates {
		var lat []float64
		epochs, moved := 0, 0
		completed := true
		for _, r := range res[pi] {
			lat = append(lat, r.latency)
			epochs += r.epochs
			moved += r.moved
			if !r.done {
				completed = false
			}
		}
		med := stats.Median(lat)
		if pi == 0 {
			static = med
		}
		vsStatic := 1.0
		if static > 0 {
			vsStatic = med / static
		}
		table.AddRow(fmt.Sprintf("%.3f", rate), n, res[pi][0].diam, res[pi][0].lambda,
			float64(epochs)/float64(len(res[pi])), float64(moved)/float64(len(res[pi])), med, vsStatic, completed)
	}
	table.AddNote("epochs of %d-slot cadence; each epoch moves rate·interval·n nodes by ≤%.1f jitter; vs_static is the latency ratio against the rate-0 baseline on the same topology draw", churnInterval, churnJitter)
	return table, nil
}

// commitMobilityEpoch commits one epoch of movedPerEpoch jittered node
// moves on d, re-drawing the whole epoch (fresh movers and jitters) when
// the unit-distance invariant rejects it. It returns nil when every attempt
// collided — the caller skips the epoch rather than failing the trial.
func commitMobilityEpoch(d *topology.Deployment, movedPerEpoch int, src *rng.Source) (*sinr.EpochDelta, error) {
	n := d.NumNodes()
	m := movedPerEpoch
	if m > n {
		m = n
	}
	for attempt := 0; attempt < churnEpochAttempts; attempt++ {
		seen := make(map[int]bool, m)
		for len(seen) < m {
			id := src.Intn(n)
			if seen[id] {
				continue
			}
			seen[id] = true
			angle := src.Float64() * 2 * math.Pi
			r := churnJitter * math.Sqrt(src.Float64())
			p := d.Positions[id]
			d.MoveNode(id, geom.Point{X: p.X + r*math.Cos(angle), Y: p.Y + r*math.Sin(angle)})
		}
		delta, err := d.CommitEpoch()
		if err == nil {
			return delta, nil
		}
		// A spacing violation rejects the whole epoch (the deployment is
		// untouched); redraw movers and jitters and retry.
	}
	return nil, nil
}
