package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// TestRunTrialsCanonicalOrder checks that results land in [point][trial]
// slots regardless of worker count and that every job sees its own
// coordinates.
func TestRunTrialsCanonicalOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		cfg := Config{Seed: 1, Workers: workers}
		res, err := runTrials(cfg, "T-order", 4, 5, func(tc *TrialContext) (string, error) {
			return fmt.Sprintf("p%dt%d", tc.Point, tc.Trial), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 4 {
			t.Fatalf("workers=%d: %d points", workers, len(res))
		}
		for p := range res {
			if len(res[p]) != 5 {
				t.Fatalf("workers=%d: point %d has %d trials", workers, p, len(res[p]))
			}
			for tr, got := range res[p] {
				if want := fmt.Sprintf("p%dt%d", p, tr); got != want {
					t.Fatalf("workers=%d: slot [%d][%d] = %q, want %q", workers, p, tr, got, want)
				}
			}
		}
	}
}

// TestRunTrialsSeedsIndependentOfWorkers is the heart of the determinism
// contract: the random streams a job observes are a pure function of its
// (experiment, point, trial) coordinates, never of the worker count or
// scheduling order.
func TestRunTrialsSeedsIndependentOfWorkers(t *testing.T) {
	draw := func(workers int) [][]uint64 {
		cfg := Config{Seed: 42, Workers: workers}
		res, err := runTrials(cfg, "T-seeds", 3, 4, func(tc *TrialContext) (uint64, error) {
			return tc.Src.Uint64() ^ tc.seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := draw(1)
	for _, workers := range []int{2, 8} {
		par := draw(workers)
		for p := range seq {
			for tr := range seq[p] {
				if seq[p][tr] != par[p][tr] {
					t.Fatalf("workers=%d: job (%d,%d) drew %d, sequential drew %d",
						workers, p, tr, par[p][tr], seq[p][tr])
				}
			}
		}
	}
	// Distinct jobs must draw distinct streams.
	seen := make(map[uint64]bool)
	for p := range seq {
		for tr := range seq[p] {
			if seen[seq[p][tr]] {
				t.Fatalf("jobs share a stream: %v", seq)
			}
			seen[seq[p][tr]] = true
		}
	}
	// A different experiment name must shift every stream.
	other, err := runTrials(Config{Seed: 42, Workers: 1}, "T-other", 3, 4, func(tc *TrialContext) (uint64, error) {
		return tc.Src.Uint64() ^ tc.seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if other[0][0] == seq[0][0] {
		t.Fatal("experiment label did not separate the streams")
	}
}

// TestRunTrialsSharedDeployment checks that every trial of a sweep point
// observes the same deployment instance (built once) and that different
// points get different deployments.
func TestRunTrialsSharedDeployment(t *testing.T) {
	var mu sync.Mutex
	builds := 0
	cfg := Config{Seed: 5, Workers: 4}
	res, err := runTrials(cfg, "T-dep", 2, 6, func(tc *TrialContext) (*topology.Deployment, error) {
		return tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			mu.Lock()
			builds++
			mu.Unlock()
			return topology.Line(8+tc.Point, 2, defaultLineParams())
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("deployment built %d times, want once per point", builds)
	}
	for p := range res {
		for tr := 1; tr < len(res[p]); tr++ {
			if res[p][tr] != res[p][0] {
				t.Fatalf("point %d trial %d got a different deployment instance", p, tr)
			}
		}
	}
	if res[0][0] == res[1][0] {
		t.Fatal("distinct points share a deployment")
	}
}

// TestRunTrialsEngineReuse checks that a worker reuses one engine per point
// across its trials and that Engine demands a prior Deployment call.
func TestRunTrialsEngineReuse(t *testing.T) {
	cfg := Config{Seed: 9, Workers: 1}
	res, err := runTrials(cfg, "T-engine", 1, 4, func(tc *TrialContext) (*sim.Engine, error) {
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return topology.Line(6, 2, defaultLineParams())
		})
		if err != nil {
			return nil, err
		}
		nodes := make([]sim.Node, d.NumNodes())
		for i := range nodes {
			nodes[i] = &idleNode{}
		}
		eng, err := tc.Engine(nodes)
		if err != nil {
			return nil, err
		}
		if eng.Slot() != 0 {
			return nil, fmt.Errorf("engine not rewound: slot %d", eng.Slot())
		}
		eng.Run(3, nil)
		return eng, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for tr := 1; tr < len(res[0]); tr++ {
		if res[0][tr] != res[0][0] {
			t.Fatal("sequential worker did not reuse its engine")
		}
	}

	_, err = runTrials(cfg, "T-engine2", 1, 1, func(tc *TrialContext) (int, error) {
		_, err := tc.Engine(nil)
		return 0, err
	})
	if err == nil {
		t.Fatal("Engine before Deployment accepted")
	}
}

// TestRunTrialsErrorPropagation checks that the first failing job in
// canonical order wins and is labelled with its coordinates.
func TestRunTrialsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		cfg := Config{Seed: 1, Workers: workers}
		var ran atomic.Int64
		_, err := runTrials(cfg, "T-err", 3, 3, func(tc *TrialContext) (int, error) {
			ran.Add(1)
			if tc.Point == 1 && tc.Trial >= 1 {
				return 0, boom
			}
			return tc.Point, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// Early cancellation: the sequential path stops at the first
		// failure (job index 4 of 9) instead of draining the grid.
		if workers == 1 && ran.Load() != 5 {
			t.Fatalf("sequential run executed %d jobs after a failure at job 4", ran.Load())
		}
		want := "T-err point 1 trial 1"
		if got := err.Error(); !strings.Contains(got, want) {
			t.Fatalf("workers=%d: error %q does not name the first failing job %q", workers, got, want)
		}
	}
	if _, err := runTrials(Config{Seed: 1}, "T-empty", 0, 3, func(tc *TrialContext) (int, error) { return 0, nil }); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// idleNode is a sim.Node that never transmits.
type idleNode struct{}

func (idleNode) Init(id int, src *rng.Source)       {}
func (idleNode) Tick(slot int64, f *sim.Frame) bool { return false }
func (idleNode) Receive(slot int64, f *sim.Frame)   {}

func defaultLineParams() sinr.Params { return sinr.DefaultParams(10) }
