package exp

import (
	"fmt"
	"math"

	"sinrmac/internal/approgress"
	"sinrmac/internal/core"
	"sinrmac/internal/decay"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/stats"
	"sinrmac/internal/topology"
)

// clusterRange is the fixed transmission range used by the E1/E3 degree
// sweeps so that Λ stays (nearly) constant while Δ varies.
const clusterRange = 32

// broadcastAllLayer makes its node broadcast one message at slot 0 and
// records nothing; it is the minimal environment for the MAC-level
// experiments.
type broadcastAllLayer struct {
	core.NopLayer
	mac   core.MAC
	msg   core.Message
	sent  bool
	acked bool
}

func (l *broadcastAllLayer) Attach(node int, mac core.MAC, src *rng.Source) { l.mac = mac }

func (l *broadcastAllLayer) OnSlot(slot int64) {
	if !l.sent && l.msg.ID != 0 {
		l.mac.Bcast(slot, l.msg)
		l.sent = true
	}
}

func (l *broadcastAllLayer) OnAck(slot int64, m core.Message) { l.acked = true }

// listenerLayer records the slot of the first rcv callback at its node. It
// is the cheap stop-condition probe used by the progress experiments.
type listenerLayer struct {
	core.NopLayer
	rcvSlot int64
}

func newListenerLayer() *listenerLayer { return &listenerLayer{rcvSlot: -1} }

func (l *listenerLayer) OnRcv(slot int64, m core.Message) {
	if l.rcvSlot < 0 {
		l.rcvSlot = slot
	}
}

// buildClusterDeployment builds one dense cluster of n nodes under the
// fixed cluster range, so that G_{1-ε} restricted to the cluster is a
// clique of degree n-1.
func buildClusterDeployment(n int, src *rng.Source) (*topology.Deployment, error) {
	return topology.Clusters(1, n, sinr.DefaultParams(clusterRange), src)
}

// ackTrialResult is one E1 trial: the latency report of the acknowledgment
// checker plus the point's Λ (shared by all trials of the point).
type ackTrialResult struct {
	mean, max             float64
	violations, broadcast float64
	unacked               float64
	lambda                float64
}

// AckScaling is experiment E1-ack: the acknowledgment latency of the
// Halldórsson–Mitra MAC as a function of the degree Δ (Table 1, f_ack row).
func AckScaling(cfg Config) (Table, error) {
	table := Table{
		ID:    "E1-ack",
		Title: "Theorem 5.1 / Table 1: acknowledgment latency vs degree Δ",
		Columns: []string{
			"delta", "lambda", "mean_fack", "max_fack", "theory_fack", "violation_rate", "unacked",
		},
	}
	deltas := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		deltas = []int{4, 8, 16}
	}
	trials := cfg.trials(3)
	const epsAck = 0.1

	res, err := runTrials(cfg, "E1-ack", len(deltas), trials, func(tc *TrialContext) (ackTrialResult, error) {
		delta := deltas[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return buildClusterDeployment(delta+1, src)
		})
		if err != nil {
			return ackTrialResult{}, err
		}
		lambda := d.Lambda()
		macCfg := hmbcast.DefaultConfig(lambda, epsAck)
		rec := core.NewRecorder()
		layers := make([]*broadcastAllLayer, d.NumNodes())
		nodes := make([]sim.Node, d.NumNodes())
		for i := range nodes {
			n := hmbcast.New(macCfg, rec)
			layers[i] = &broadcastAllLayer{msg: core.Message{ID: core.MessageID(i + 1), Origin: i}}
			n.SetLayer(layers[i])
			nodes[i] = n
		}
		eng, err := tc.Engine(nodes)
		if err != nil {
			return ackTrialResult{}, err
		}
		deadline := int64(200 * core.TheoreticalFack(delta, lambda, epsAck))
		eng.Run(deadline, func() bool {
			for _, l := range layers {
				if !l.acked {
					return false
				}
			}
			return true
		})
		rep := core.CheckAcks(rec.Events(), d.StrongGraph())
		return ackTrialResult{
			mean:       rep.MeanLatency,
			max:        float64(rep.MaxLatency),
			violations: float64(rep.Violations),
			broadcast:  float64(len(rep.Records)),
			unacked:    float64(rep.Unacked),
			lambda:     lambda,
		}, nil
	})
	if err != nil {
		return table, err
	}

	var xs, ys []float64
	for pi, delta := range deltas {
		var meanLat, maxLat, violations, broadcasts, unacked float64
		lambda := res[pi][0].lambda
		for _, r := range res[pi] {
			meanLat += r.mean
			if r.max > maxLat {
				maxLat = r.max
			}
			violations += r.violations
			broadcasts += r.broadcast
			unacked += r.unacked
		}
		meanLat /= float64(trials)
		violationRate := 0.0
		if broadcasts > 0 {
			violationRate = violations / broadcasts
		}
		theory := core.TheoreticalFack(delta, lambda, epsAck)
		table.AddRow(delta, lambda, meanLat, maxLat, theory, fmt.Sprintf("%.3f", violationRate), int(unacked))
		xs = append(xs, float64(delta))
		ys = append(ys, meanLat)
	}
	if fit, err := stats.LinearFit(xs, ys); err == nil {
		table.AddNote("mean f_ack ≈ %.0f·Δ + %.0f (R²=%.2f): linear in Δ with an additive log²(Λ/ε) floor, matching Theorem 5.1", fit.Slope, fit.Intercept, fit.R2)
	}
	return table, nil
}

// proglbResult is one E2 sweep point: the concurrency certificate and the
// optimal scheduler's slot count (the sweep is deterministic, one trial).
type proglbResult struct {
	maxConcurrent int
	slots         int
}

// ProgressLowerBound is experiment E2-proglb: the Figure 1 / Theorem 6.1
// construction, showing that even an optimal centralized scheduler needs at
// least Δ slots before every receiver has made progress.
func ProgressLowerBound(cfg Config) (Table, error) {
	table := Table{
		ID:    "E2-proglb",
		Title: "Theorem 6.1 / Figure 1: progress needs ≥ Δ slots under an optimal scheduler",
		Columns: []string{
			"delta", "max_concurrent_cross_links", "scheduler_slots", "fprog_lower_bound",
		},
	}
	deltas := []int{4, 8, 16, 32}
	if cfg.Quick {
		deltas = []int{4, 8}
	}
	res, err := runTrials(cfg, "E2-proglb", len(deltas), 1, func(tc *TrialContext) (proglbResult, error) {
		delta := deltas[tc.Point]
		if _, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return topology.ParallelLines(delta, 0.1)
		}); err != nil {
			return proglbResult{}, err
		}
		ch, err := tc.Channel()
		if err != nil {
			return proglbResult{}, err
		}
		senders := topology.ParallelLinesSenders(delta)
		receivers := topology.ParallelLinesReceivers(delta)

		// How many cross links can succeed in a single slot? Exhaustively
		// try all sender pairs (the SINR argument says the answer is 1).
		maxConcurrent := 0
		for i := 0; i < delta; i++ {
			if ch.Decodes(receivers[i], senders[i], []int{senders[i]}) && maxConcurrent < 1 {
				maxConcurrent = 1
			}
			for j := i + 1; j < delta; j++ {
				tx := []int{senders[i], senders[j]}
				ok := 0
				if ch.Decodes(receivers[i], senders[i], tx) {
					ok++
				}
				if ch.Decodes(receivers[j], senders[j], tx) {
					ok++
				}
				if ok > maxConcurrent {
					maxConcurrent = ok
				}
			}
		}

		// Optimal scheduler: per slot, transmit the largest set of senders
		// that still lets every targeted receiver decode. Because at most
		// one cross link survives concurrency, the greedy optimum serves one
		// receiver per slot.
		served := make([]bool, delta)
		slots := 0
		for remaining := delta; remaining > 0; slots++ {
			best := -1
			for i := 0; i < delta; i++ {
				if !served[i] && ch.Decodes(receivers[i], senders[i], []int{senders[i]}) {
					best = i
					break
				}
			}
			if best < 0 {
				return proglbResult{}, fmt.Errorf("exp: no schedulable cross link remains for delta=%d", delta)
			}
			served[best] = true
			remaining--
			// Try to piggy-back a second receiver in the same slot if the
			// SINR allows it (it does not, but the scheduler must check).
			for j := 0; j < delta; j++ {
				if served[j] {
					continue
				}
				tx := []int{senders[best], senders[j]}
				if ch.Decodes(receivers[best], senders[best], tx) && ch.Decodes(receivers[j], senders[j], tx) {
					served[j] = true
					remaining--
				}
			}
		}
		return proglbResult{maxConcurrent: maxConcurrent, slots: slots}, nil
	})
	if err != nil {
		return table, err
	}
	for pi, delta := range deltas {
		table.AddRow(delta, res[pi][0].maxConcurrent, res[pi][0].slots, delta)
	}
	table.AddNote("scheduler_slots equals Δ for every Δ: f_prog ≥ Δ_{G_{1-ε}} as proven in Theorem 6.1")
	return table, nil
}

// approgTestConfig returns the Algorithm 9.1 configuration used by the
// MAC-level experiments (documented in EXPERIMENTS.md).
func approgTestConfig(lambda float64) approgress.Config {
	cfg := approgress.DefaultConfig(lambda, 0.1, 3)
	cfg.QScale = 0.5
	cfg.TFactor = 4
	cfg.MISRounds = 4
	cfg.DataFactor = 2
	return cfg
}

// approgTrialResult is one E3 trial: the listener's first-reception slot
// plus the point's Λ and epoch length.
type approgTrialResult struct {
	lat    float64
	lambda float64
	epoch  int64
}

// ApproxProgressScaling is experiment E3-approg: the time until a listener
// surrounded by Δ broadcasting neighbours receives some message under
// Algorithm 9.1, as a function of Δ (Table 1, f_approg row).
func ApproxProgressScaling(cfg Config) (Table, error) {
	table := Table{
		ID:    "E3-approg",
		Title: "Theorem 9.1 / Table 1: approximate-progress latency vs degree Δ",
		Columns: []string{
			"delta", "lambda", "epoch_len", "median_progress", "max_progress", "theory_fapprog",
		},
	}
	deltas := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		deltas = []int{4, 8, 16}
	}
	trials := cfg.trials(3)

	res, err := runTrials(cfg, "E3-approg", len(deltas), trials, func(tc *TrialContext) (approgTrialResult, error) {
		delta := deltas[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return buildClusterDeployment(delta+1, src)
		})
		if err != nil {
			return approgTrialResult{}, err
		}
		lambda := d.Lambda()
		apCfg := approgTestConfig(lambda)
		epochLen := apCfg.EpochLen()
		listener := newListenerLayer()
		nodes := make([]sim.Node, d.NumNodes())
		apNodes := make([]*approgress.Node, d.NumNodes())
		for i := range nodes {
			n := approgress.NewNode(apCfg, 0, nil)
			if i == 0 {
				n.SetLayer(listener)
			}
			apNodes[i] = n
			nodes[i] = n
		}
		eng, err := tc.Engine(nodes)
		if err != nil {
			return approgTrialResult{}, err
		}
		// Node 0 listens; everyone else broadcasts.
		for i := 1; i < d.NumNodes(); i++ {
			apNodes[i].Bcast(0, core.Message{ID: core.MessageID(1000 + i), Origin: i})
		}
		eng.Run(4*epochLen, func() bool { return listener.rcvSlot >= 0 })
		first := listener.rcvSlot
		if first < 0 {
			first = 4 * epochLen // censored
		}
		return approgTrialResult{lat: float64(first), lambda: lambda, epoch: epochLen}, nil
	})
	if err != nil {
		return table, err
	}

	var xs, ys []float64
	for pi, delta := range deltas {
		lambda, epochLen := res[pi][0].lambda, res[pi][0].epoch
		latencies := make([]float64, 0, trials)
		for _, r := range res[pi] {
			latencies = append(latencies, r.lat)
		}
		theory := core.TheoreticalFapprog(lambda, 3, 0.1)
		table.AddRow(delta, lambda, epochLen, stats.Median(latencies), stats.Max(latencies), theory)
		xs = append(xs, float64(delta))
		ys = append(ys, stats.Median(latencies))
	}
	if ratio, err := stats.GrowthRatio(xs, ys); err == nil {
		table.AddNote("normalised growth of median progress time vs Δ = %.2f (≈0 means flat, ≈1 means linear; f_ack grows linearly)", ratio)
	}
	return table, nil
}

// decayTrialResult is one E4 trial: the progress latency of Decay and of
// Algorithm 9.1 on the same two-balls deployment.
type decayTrialResult struct {
	decay, approg float64
}

// DecayVsApprog is experiment E4-decay: the Theorem 8.1 two-balls
// construction, comparing the progress latency of Decay with that of
// Algorithm 9.1 as the dense ball grows.
func DecayVsApprog(cfg Config) (Table, error) {
	table := Table{
		ID:    "E4-decay",
		Title: "Theorem 8.1: Decay vs Algorithm 9.1 progress on the two-balls construction",
		Columns: []string{
			"delta", "decay_progress", "approg_progress", "decay_over_approg",
		},
	}
	deltas := []int{64, 256, 1024}
	if cfg.Quick {
		deltas = []int{8, 32}
	}
	trials := cfg.trials(3)

	res, err := runTrials(cfg, "E4-decay", len(deltas), trials, func(tc *TrialContext) (decayTrialResult, error) {
		delta := deltas[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			r := math.Max(20, 5*math.Sqrt(float64(delta)))
			return topology.TwoBalls(delta, sinr.DefaultParams(r), src)
		})
		if err != nil {
			return decayTrialResult{}, err
		}
		dl, err := measureTwoBallsProgress(tc, d, delta, true)
		if err != nil {
			return decayTrialResult{}, err
		}
		al, err := measureTwoBallsProgress(tc, d, delta, false)
		if err != nil {
			return decayTrialResult{}, err
		}
		return decayTrialResult{decay: dl, approg: al}, nil
	})
	if err != nil {
		return table, err
	}

	var xs, decayYs []float64
	for pi, delta := range deltas {
		var decayLat, apLat []float64
		for _, r := range res[pi] {
			decayLat = append(decayLat, r.decay)
			apLat = append(apLat, r.approg)
		}
		dm, am := stats.Median(decayLat), stats.Median(apLat)
		ratio := 0.0
		if am > 0 {
			ratio = dm / am
		}
		table.AddRow(delta, dm, am, fmt.Sprintf("%.3f", ratio))
		xs = append(xs, float64(delta))
		// Clamp at one slot so that a lucky slot-0 success does not break
		// the log-log fit.
		decayYs = append(decayYs, math.Max(1, dm))
	}
	if slope, err := stats.LogLogSlope(xs, decayYs); err == nil {
		table.AddNote("log-log slope of Decay progress vs Δ = %.2f (Theorem 8.1 predicts growth towards 1 once Δ exceeds the SINR capture threshold; Algorithm 9.1 stays flat in Δ)", slope)
	}
	table.AddNote("absolute Decay latencies are small at simulated scales; the paper's separation is asymptotic in Δ")
	return table, nil
}

// measureTwoBallsProgress runs the two-balls scenario with either the Decay
// MAC (useDecay) or the Algorithm 9.1 node and returns the slot at which
// the B1 listener (node 0) first receives any message. Both variants run on
// the trial's reusable engine with the same engine seed, so the comparison
// is over identical protocol randomness.
func measureTwoBallsProgress(tc *TrialContext, d *topology.Deployment, delta int, useDecay bool) (float64, error) {
	nodes := make([]sim.Node, d.NumNodes())
	var deadline int64
	broadcasters := map[int]bool{1: true}
	for _, b := range topology.TwoBallsB2(delta) {
		broadcasters[b] = true
	}
	listener := newListenerLayer()
	if useDecay {
		dcCfg := decay.DefaultConfig(float64(delta), 0.1)
		deadline = 40 * dcCfg.AckSlots()
		for i := range nodes {
			n := decay.New(dcCfg, nil)
			if i == 0 {
				n.SetLayer(listener)
			} else {
				layer := &broadcastAllLayer{}
				if broadcasters[i] {
					layer.msg = core.Message{ID: core.MessageID(2000 + i), Origin: i}
				}
				n.SetLayer(layer)
			}
			nodes[i] = n
		}
	}
	var apNodes []*approgress.Node
	if !useDecay {
		apCfg := approgTestConfig(d.Lambda())
		deadline = 4 * apCfg.EpochLen()
		apNodes = make([]*approgress.Node, d.NumNodes())
		for i := range nodes {
			n := approgress.NewNode(apCfg, 0, nil)
			if i == 0 {
				n.SetLayer(listener)
			}
			apNodes[i] = n
			nodes[i] = n
		}
	}
	eng, err := tc.Engine(nodes)
	if err != nil {
		return 0, err
	}
	// Broadcasts can only be issued once the engine has initialised the
	// nodes (the Decay variant issues them through its layer instead).
	for i, n := range apNodes {
		if broadcasters[i] {
			n.Bcast(0, core.Message{ID: core.MessageID(2000 + i), Origin: i})
		}
	}
	eng.Run(deadline, func() bool { return listener.rcvSlot >= 0 })
	first := listener.rcvSlot
	if first < 0 {
		first = deadline
	}
	return float64(first), nil
}
