package exp

import (
	"fmt"
	"math"

	"sinrmac/internal/approgress"
	"sinrmac/internal/bcastproto"
	"sinrmac/internal/consensus"
	"sinrmac/internal/core"
	"sinrmac/internal/decay"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/stats"
	"sinrmac/internal/topology"
)

// globalRange is the transmission range used by the global broadcast and
// consensus experiments.
const globalRange = 12

// buildUniform builds a connected uniform deployment of n nodes with
// roughly constant density, so the diameter grows with sqrt(n).
func buildUniform(n int, src *rng.Source) (*topology.Deployment, error) {
	side := 2.2 * math.Sqrt(float64(n)) * 2
	return topology.ConnectedUniform(n, side, sinr.DefaultParams(globalRange), src, 100)
}

// combinedMACConfig returns the Algorithm 11.1 configuration used by the
// global experiments (documented in EXPERIMENTS.md).
func combinedMACConfig(lambda float64) mac.Config {
	cfg := mac.DefaultConfig(lambda, 3, core.DefaultParams())
	cfg.Ack.StepFactor = 1
	cfg.Ack.HaltFactor = 4
	cfg.Prog.QScale = 0.25
	cfg.Prog.TFactor = 3
	cfg.Prog.MISRounds = 3
	cfg.Prog.DataFactor = 2
	return cfg
}

// runBMMBOverMACs wires one BMMB layer per node over the MAC nodes produced
// by newMAC, starts the given messages at their origins and returns the
// global completion slot (or the deadline if incomplete). It runs on the
// trial's reusable engine.
func runBMMBOverMACs(tc *TrialContext, d *topology.Deployment, msgs []core.Message, deadline int64,
	newMAC func(i int) sim.Node, attach func(n sim.Node, l core.Layer)) (float64, bool, error) {

	layers := make([]*bcastproto.BMMB, d.NumNodes())
	nodes := make([]sim.Node, d.NumNodes())
	for i := range nodes {
		var initial []core.Message
		for _, m := range msgs {
			if m.Origin == i {
				initial = append(initial, m)
			}
		}
		layers[i] = bcastproto.NewBMMB(initial...)
		n := newMAC(i)
		attach(n, layers[i])
		nodes[i] = n
	}
	eng, err := tc.Engine(nodes)
	if err != nil {
		return 0, false, err
	}
	ids := bcastproto.MessageIDs(msgs)
	eng.Run(deadline, func() bool { return bcastproto.AllDelivered(layers, ids) })
	slot, ok := bcastproto.CompletionSlot(layers, ids)
	if !ok {
		return float64(deadline), false, nil
	}
	return float64(slot), true, nil
}

// runDirectSMB runs the Daum et al. [14]-style direct broadcast: relay
// layers over progress-only nodes with w.h.p. parameters (ε = 1/n).
func runDirectSMB(tc *TrialContext, d *topology.Deployment, msg core.Message, deadline int64) (float64, bool, error) {
	apCfg := approgress.DefaultConfig(d.Lambda(), 1/float64(d.NumNodes()), 3)
	apCfg.QScale = 0.25
	apCfg.TFactor = 3
	apCfg.MISRounds = 3
	apCfg.DataFactor = 2

	layers := make([]*bcastproto.Relay, d.NumNodes())
	nodes := make([]sim.Node, d.NumNodes())
	for i := range nodes {
		var initial *core.Message
		if msg.Origin == i {
			cp := msg
			initial = &cp
		}
		layers[i] = bcastproto.NewRelay(msg.ID, initial)
		n := approgress.NewNode(apCfg, 0, nil)
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	eng, err := tc.Engine(nodes)
	if err != nil {
		return 0, false, err
	}
	eng.Run(deadline, func() bool {
		_, done := bcastproto.RelayCompletionSlot(layers)
		return done
	})
	slot, ok := bcastproto.RelayCompletionSlot(layers)
	if !ok {
		return float64(deadline), false, nil
	}
	return float64(slot), true, nil
}

// smbTrialResult is one E5 trial: the completion slot of each broadcast
// strategy plus the point's deployment statistics.
type smbTrialResult struct {
	ours, daum, decay float64
	diam, delta       int
	lambda            float64
}

// SMBComparison is experiment E5-smb: global single-message broadcast with
// the MAC-based BSMB protocol (this paper), the direct [14]-style
// broadcast, and Decay flooding (Table 1 SMB row and Table 2).
func SMBComparison(cfg Config) (Table, error) {
	table := Table{
		ID:    "E5-smb",
		Title: "Table 2 / Theorem 12.7: global single-message broadcast comparison",
		Columns: []string{
			"n", "diam", "delta", "lambda", "this_paper", "daum_direct", "decay_flood", "theory_smb",
		},
	}
	sizes := []int{30, 60, 120}
	if cfg.Quick {
		sizes = []int{20, 35}
	}
	trials := cfg.trials(2)

	res, err := runTrials(cfg, "E5-smb", len(sizes), trials, func(tc *TrialContext) (smbTrialResult, error) {
		n := sizes[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return buildUniform(n, src)
		})
		if err != nil {
			return smbTrialResult{}, err
		}
		strong := d.StrongGraph()
		diam := strong.Diameter()
		delta := strong.MaxDegree()
		lambda := d.Lambda()
		msg := core.Message{ID: 1, Origin: 0, Payload: "smb"}

		macCfg := combinedMACConfig(lambda)
		rec := core.NewRecorder()
		deadline := int64(core.TheoreticalFack(delta, lambda, 0.1)) * int64(diam+5) * 50
		t1, _, err := runBMMBOverMACs(tc, d, []core.Message{msg}, deadline,
			func(i int) sim.Node { return mac.New(macCfg, rec) },
			func(node sim.Node, l core.Layer) { node.(*mac.Node).SetLayer(l) })
		if err != nil {
			return smbTrialResult{}, err
		}

		t2, _, err := runDirectSMB(tc, d, msg, deadline)
		if err != nil {
			return smbTrialResult{}, err
		}

		dcCfg := decay.DefaultConfig(float64(n), 0.1)
		t3, _, err := runBMMBOverMACs(tc, d, []core.Message{msg}, deadline,
			func(i int) sim.Node { return decay.New(dcCfg, nil) },
			func(node sim.Node, l core.Layer) { node.(interface{ SetLayer(core.Layer) }).SetLayer(l) })
		if err != nil {
			return smbTrialResult{}, err
		}
		return smbTrialResult{ours: t1, daum: t2, decay: t3, diam: diam, delta: delta, lambda: lambda}, nil
	})
	if err != nil {
		return table, err
	}

	var diams, ours []float64
	for pi, n := range sizes {
		var oursLat, daumLat, decayLat []float64
		for _, r := range res[pi] {
			oursLat = append(oursLat, r.ours)
			daumLat = append(daumLat, r.daum)
			decayLat = append(decayLat, r.decay)
		}
		diam, delta, lambda := res[pi][0].diam, res[pi][0].delta, res[pi][0].lambda
		theory := core.TheoreticalSMB(diam, n, lambda, 3, 0.1)
		table.AddRow(n, diam, delta, lambda,
			stats.Median(oursLat), stats.Median(daumLat), stats.Median(decayLat), theory)
		diams = append(diams, float64(diam))
		ours = append(ours, stats.Median(oursLat))
	}
	if len(diams) >= 2 {
		if fit, err := stats.LinearFit(diams, ours); err == nil {
			table.AddNote("this_paper SMB time ≈ %.0f·D + %.0f (R²=%.2f): linear in the diameter as Theorem 12.7 predicts", fit.Slope, fit.Intercept, fit.R2)
		}
	}
	return table, nil
}

// mmbTrialResult is one E6 trial: completion slots for the MAC-based and
// Decay-flooding strategies plus the point's deployment statistics.
type mmbTrialResult struct {
	ours, decay float64
	diam        int
	lambda      float64
}

// MMBScaling is experiment E6-mmb: global multi-message broadcast cost as a
// function of the number of messages k (Table 1 MMB row).
func MMBScaling(cfg Config) (Table, error) {
	table := Table{
		ID:    "E6-mmb",
		Title: "Theorem 12.7: global multi-message broadcast vs number of messages k",
		Columns: []string{
			"k", "n", "diam", "this_paper", "decay_flood", "theory_mmb",
		},
	}
	ks := []int{1, 2, 4, 8}
	if cfg.Quick {
		ks = []int{1, 2}
	}
	n := 40
	if cfg.Quick {
		n = 24
	}
	trials := cfg.trials(2)

	res, err := runTrials(cfg, "E6-mmb", len(ks), trials, func(tc *TrialContext) (mmbTrialResult, error) {
		k := ks[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return buildUniform(n, src)
		})
		if err != nil {
			return mmbTrialResult{}, err
		}
		diam := d.StrongGraph().Diameter()
		lambda := d.Lambda()
		msgs := make([]core.Message, k)
		for i := range msgs {
			msgs[i] = core.Message{ID: core.MessageID(100 + i), Origin: tc.Src.Intn(n), Payload: i}
		}

		macCfg := combinedMACConfig(lambda)
		delta := d.StrongGraph().MaxDegree()
		deadline := int64(core.TheoreticalFack(delta, lambda, 0.1)) * int64(diam+5+3*k) * 50
		t1, _, err := runBMMBOverMACs(tc, d, msgs, deadline,
			func(i int) sim.Node { return mac.New(macCfg, nil) },
			func(node sim.Node, l core.Layer) { node.(*mac.Node).SetLayer(l) })
		if err != nil {
			return mmbTrialResult{}, err
		}

		dcCfg := decay.DefaultConfig(float64(n), 0.1)
		t2, _, err := runBMMBOverMACs(tc, d, msgs, deadline,
			func(i int) sim.Node { return decay.New(dcCfg, nil) },
			func(node sim.Node, l core.Layer) { node.(interface{ SetLayer(core.Layer) }).SetLayer(l) })
		if err != nil {
			return mmbTrialResult{}, err
		}
		return mmbTrialResult{ours: t1, decay: t2, diam: diam, lambda: lambda}, nil
	})
	if err != nil {
		return table, err
	}

	var xs, ys []float64
	for pi, k := range ks {
		var oursLat, decayLat []float64
		for _, r := range res[pi] {
			oursLat = append(oursLat, r.ours)
			decayLat = append(decayLat, r.decay)
		}
		diam, lambda := res[pi][0].diam, res[pi][0].lambda
		theory := core.TheoreticalMMB(diam, 8, n, k, lambda, 3, 0.1)
		table.AddRow(k, n, diam, stats.Median(oursLat), stats.Median(decayLat), theory)
		xs = append(xs, float64(k))
		ys = append(ys, stats.Median(oursLat))
	}
	if len(xs) >= 2 {
		if fit, err := stats.LinearFit(xs, ys); err == nil {
			table.AddNote("this_paper MMB time ≈ %.0f·k + %.0f (R²=%.2f): additive in k rather than multiplicative in D·Δ·k", fit.Slope, fit.Intercept, fit.R2)
		}
	}
	return table, nil
}

// consTrialResult is one E7 trial: the decision slot, whether agreement
// held, and the point's deployment statistics.
type consTrialResult struct {
	slot        float64
	agreement   bool
	diam, delta int
	lambda      float64
}

// ConsensusScaling is experiment E7-cons: network-wide consensus completion
// time as a function of the diameter (Corollary 5.5).
func ConsensusScaling(cfg Config) (Table, error) {
	table := Table{
		ID:    "E7-cons",
		Title: "Corollary 5.5: consensus completion time vs diameter",
		Columns: []string{
			"n", "diam", "delta", "decision_slot", "theory_cons", "agreement",
		},
	}
	sizes := []int{8, 16, 32}
	if cfg.Quick {
		sizes = []int{6, 10}
	}
	trials := cfg.trials(2)
	const epsAck = 0.05

	res, err := runTrials(cfg, "E7-cons", len(sizes), trials, func(tc *TrialContext) (consTrialResult, error) {
		n := sizes[tc.Point]
		d, err := tc.Deployment(func(src *rng.Source) (*topology.Deployment, error) {
			return topology.Line(n, 4, sinr.DefaultParams(globalRange))
		})
		if err != nil {
			return consTrialResult{}, err
		}
		strong := d.StrongGraph()
		diam := strong.Diameter()
		delta := strong.MaxDegree()
		lambda := d.Lambda()

		macCfg := hmbcast.DefaultConfig(lambda, epsAck)
		macCfg.StepFactor = 1
		macCfg.HaltFactor = 4

		initials := make([]consensus.Value, n)
		for i := range initials {
			initials[i] = consensus.Value(uint8(tc.Src.Intn(2)))
		}
		layers := make([]*consensus.Node, n)
		nodes := make([]sim.Node, n)
		for i := range nodes {
			l, err := consensus.New(consensus.Config{Rounds: diam + 2}, initials[i])
			if err != nil {
				return consTrialResult{}, err
			}
			layers[i] = l
			node := hmbcast.New(macCfg, nil)
			node.SetLayer(l)
			nodes[i] = node
		}
		eng, err := tc.Engine(nodes)
		if err != nil {
			return consTrialResult{}, err
		}
		deadline := int64(core.TheoreticalFack(delta, lambda, epsAck)) * int64(diam+4) * 200
		eng.Run(deadline, func() bool {
			_, done := consensus.DecisionSlot(layers)
			return done
		})
		slot, done := consensus.DecisionSlot(layers)
		if !done {
			slot = deadline
		}
		agreement := consensus.CheckAgreement(layers, initials) == nil
		return consTrialResult{slot: float64(slot), agreement: agreement, diam: diam, delta: delta, lambda: lambda}, nil
	})
	if err != nil {
		return table, err
	}

	var diams, times []float64
	for pi, n := range sizes {
		var lat []float64
		agreementOK := true
		for _, r := range res[pi] {
			lat = append(lat, r.slot)
			if !r.agreement {
				agreementOK = false
			}
		}
		diam, delta, lambda := res[pi][0].diam, res[pi][0].delta, res[pi][0].lambda
		theory := core.TheoreticalCons(diam, delta, n, lambda, 0.1)
		table.AddRow(n, diam, delta, stats.Median(lat), theory, fmt.Sprintf("%v", agreementOK))
		diams = append(diams, float64(diam))
		times = append(times, stats.Median(lat))
	}
	if len(diams) >= 2 {
		if fit, err := stats.LinearFit(diams, times); err == nil {
			table.AddNote("consensus time ≈ %.0f·D + %.0f (R²=%.2f): linear in D·f_ack as Corollary 5.5 predicts", fit.Slope, fit.Intercept, fit.R2)
		}
	}
	return table, nil
}
