package exp

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func quickConfig() Config {
	return Config{Seed: 7, Trials: 1, Quick: true}
}

func TestTableFormatting(t *testing.T) {
	table := Table{
		ID:      "T-test",
		Title:   "a test table",
		Columns: []string{"a", "bb"},
	}
	table.AddRow(1, 2.345)
	table.AddRow("x", "y")
	table.AddNote("slope = %.1f", 1.5)
	out := table.Format()
	for _, want := range []string{"T-test", "a test table", "bb", "2.3", "note: slope = 1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

func TestRegistryAndNames(t *testing.T) {
	reg := Registry()
	names := Names()
	if len(reg) != len(names) || len(reg) != 10 {
		t.Fatalf("registry size = %d, names = %d", len(reg), len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, name := range names {
		if reg[name] == nil {
			t.Fatalf("nil runner for %q", name)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trials <= 0 || cfg.Seed == 0 {
		t.Fatalf("default config = %+v", cfg)
	}
	if got := (Config{}).trials(5); got != 5 {
		t.Fatalf("trials default = %d", got)
	}
	if got := (Config{Trials: 2}).trials(5); got != 2 {
		t.Fatalf("trials override = %d", got)
	}
}

// TestParallelTablesBitIdentical is the differential test of the parallel
// scheduler's determinism contract: every registered table rendered with
// eight workers must be byte-identical to the sequential (one-worker)
// harness.
// Under -race this doubles as the race-detector run of the scheduler: eight
// workers share deployments, strong graphs and evaluator matrices while the
// jobs execute concurrently.
func TestParallelTablesBitIdentical(t *testing.T) {
	render := func(workers int) string {
		cfg := Config{Seed: 7, Trials: 2, Quick: true, Workers: workers}
		tables, err := RunAll(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for _, table := range tables {
			b.WriteString(table.Format())
			b.WriteString("\n")
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("tables diverged between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// TestBatchInvariantTables checks the Config.Batch plumbing end to end: the
// micro-batch size is a pure throughput knob, so a table rendered with
// slot-at-a-time engines must be byte-identical to one rendered with 64-slot
// micro-batches (the sim-level differential suite pins the same invariant at
// the engine layer; this pins the exp wiring on top of it).
func TestBatchInvariantTables(t *testing.T) {
	render := func(batch int) string {
		cfg := Config{Seed: 7, Trials: 2, Quick: true, Workers: 1, Batch: batch}
		table, err := AckScaling(cfg)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		return table.Format()
	}
	if one, sixtyFour := render(1), render(64); one != sixtyFour {
		t.Fatalf("tables diverged between batch=1 and batch=64:\n--- batch=1 ---\n%s\n--- batch=64 ---\n%s", one, sixtyFour)
	}
}

// parseFloat pulls a numeric cell out of a table row.
func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestAckScalingQuick(t *testing.T) {
	table, err := AckScaling(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Acknowledgment latency must grow with the degree.
	first := parseFloat(t, table.Rows[0][2])
	last := parseFloat(t, table.Rows[len(table.Rows)-1][2])
	if last <= first {
		t.Fatalf("mean f_ack did not grow with Δ: %v -> %v", first, last)
	}
	// No unacknowledged broadcasts.
	for _, row := range table.Rows {
		if row[6] != "0" {
			t.Fatalf("unacked broadcasts in row %v", row)
		}
	}
}

func TestProgressLowerBoundQuick(t *testing.T) {
	table, err := ProgressLowerBound(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		delta := parseFloat(t, row[0])
		concurrent := parseFloat(t, row[1])
		slots := parseFloat(t, row[2])
		bound := parseFloat(t, row[3])
		if concurrent != 1 {
			t.Fatalf("max concurrent cross links = %v, want 1 (row %v)", concurrent, row)
		}
		if slots != delta || bound != delta {
			t.Fatalf("scheduler needed %v slots for delta %v (row %v)", slots, delta, row)
		}
	}
}

func TestApproxProgressScalingQuick(t *testing.T) {
	table, err := ApproxProgressScaling(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Every sweep point must have made progress well before the censoring
	// deadline of four epochs.
	for _, row := range table.Rows {
		epoch := parseFloat(t, row[2])
		median := parseFloat(t, row[3])
		if median >= 4*epoch {
			t.Fatalf("progress censored at deadline in row %v", row)
		}
	}
}

func TestDecayVsApprogQuick(t *testing.T) {
	table, err := DecayVsApprog(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		// Decay can succeed in slot 0 when the dense ball is small (no
		// interference yet), so only require a non-negative latency there.
		if parseFloat(t, row[1]) < 0 || parseFloat(t, row[2]) <= 0 {
			t.Fatalf("implausible progress latency in row %v", row)
		}
	}
}

func TestSMBComparisonQuick(t *testing.T) {
	table, err := SMBComparison(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		for _, col := range []int{4, 5, 6} {
			if parseFloat(t, row[col]) <= 0 {
				t.Fatalf("non-positive completion time in row %v", row)
			}
		}
	}
}

func TestMMBScalingQuick(t *testing.T) {
	table, err := MMBScaling(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// More messages may not complete faster.
	if parseFloat(t, table.Rows[1][3]) < parseFloat(t, table.Rows[0][3])*0.5 {
		t.Fatalf("k=2 completed drastically faster than k=1: %v", table.Rows)
	}
}

func TestConsensusScalingQuick(t *testing.T) {
	table, err := ConsensusScaling(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[5] != "true" {
			t.Fatalf("agreement violated in row %v", row)
		}
		if parseFloat(t, row[3]) <= 0 {
			t.Fatalf("non-positive decision slot in row %v", row)
		}
	}
	// Larger diameter means later decisions.
	if parseFloat(t, table.Rows[1][3]) <= parseFloat(t, table.Rows[0][3]) {
		t.Fatalf("consensus time did not grow with the diameter: %v", table.Rows)
	}
}

func TestChurnLatencyQuick(t *testing.T) {
	table, err := ChurnLatency(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// The static point applies no epochs and normalises to itself.
	if parseFloat(t, table.Rows[0][4]) != 0 {
		t.Fatalf("static point applied epochs: %v", table.Rows[0])
	}
	if parseFloat(t, table.Rows[0][7]) != 1.0 {
		t.Fatalf("static point vs_static != 1: %v", table.Rows[0])
	}
	// The churned point commits epochs and moves nodes.
	if parseFloat(t, table.Rows[1][4]) <= 0 || parseFloat(t, table.Rows[1][5]) <= 0 {
		t.Fatalf("churned point applied no epochs: %v", table.Rows[1])
	}
	for _, row := range table.Rows {
		if parseFloat(t, row[6]) <= 0 {
			t.Fatalf("non-positive latency in row %v", row)
		}
	}
}

func TestScaleSweepQuick(t *testing.T) {
	table, err := ShardScale(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	prevCells := 0.0
	for _, row := range table.Rows {
		n := parseFloat(t, row[0])
		k := parseFloat(t, row[1])
		if parseFloat(t, row[2]) <= 0 {
			t.Fatalf("point did not run the sharded regime: %v", row)
		}
		cells := parseFloat(t, row[3])
		if cells <= 0 || cells > n {
			t.Fatalf("implausible cell count in row %v", row)
		}
		if cells <= prevCells {
			t.Fatalf("occupied cells did not grow with n: %v", table.Rows)
		}
		prevCells = cells
		// Dense slots at β > 1 decode at most one sender near each
		// transmitter; across the evaluated slots the workload must decode
		// something but cannot exceed one reception per listening receiver.
		receptions := parseFloat(t, row[4])
		if receptions <= 0 || receptions > float64(scaleSlots)*(n-k) {
			t.Fatalf("implausible reception count in row %v", row)
		}
		refine := parseFloat(t, row[5])
		if refine < 0 || refine >= 1 {
			t.Fatalf("refine rate out of range in row %v", row)
		}
	}
}

// TestInterruptStopsSweep: a Config.Interrupt that trips mid-sweep makes
// the experiment fail with an error wrapping ErrInterrupted instead of
// running to completion.
func TestInterruptStopsSweep(t *testing.T) {
	calls := 0
	cfg := quickConfig()
	cfg.Workers = 1
	cfg.Interrupt = func() bool {
		calls++
		return calls > 1 // let the first job through
	}
	_, err := AckScaling(cfg)
	if err == nil {
		t.Fatal("interrupted sweep completed")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error %v does not wrap ErrInterrupted", err)
	}
}
