// Package graphs provides the graph machinery the paper layers on top of
// the SINR model: generic undirected graphs with hop distances, diameters
// and neighbourhoods (Section 4.1), SINR-induced strong-connectivity graphs
// G_a (Section 4.3), maximal-independent-set computations for
// growth-bounded graphs (used by Algorithm 9.1), and the Λ edge-length
// ratio.
package graphs

import (
	"fmt"
	"math"
	"sort"

	"sinrmac/internal/geom"
	"sinrmac/internal/sinr"
)

// Graph is a simple undirected graph on nodes 0..n-1.
type Graph struct {
	n   int
	adj [][]int
	set []map[int]bool
}

// New returns an empty graph with n nodes and no edges. It panics if n is
// negative.
func New(n int) *Graph {
	if n < 0 {
		panic("graphs: negative node count")
	}
	g := &Graph{
		n:   n,
		adj: make([][]int, n),
		set: make([]map[int]bool, n),
	}
	for i := range g.set {
		g.set[i] = make(map[int]bool)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate
// edges are ignored. It panics if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v || g.set[u][v] {
		return
	}
	g.set[u][v] = true
	g.set[v][u] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graphs: node %d out of range [0, %d)", u, g.n))
	}
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.set[u][v]
}

// Neighbors returns the neighbours of u in ascending order. The returned
// slice is a copy.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, len(g.adj[u]))
	copy(out, g.adj[u])
	sort.Ints(out)
	return out
}

// Degree returns the degree of u (excluding u itself, as in the paper's
// δ_G(v) definition).
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// MaxDegree returns Δ_G, the maximum degree over all nodes (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// HopDist returns the hop distance between u and v, or -1 if v is
// unreachable from u.
func (g *Graph) HopDist(u, v int) int {
	return g.BFS(u)[v]
}

// Eccentricity returns the largest finite hop distance from src to any
// reachable node.
func (g *Graph) Eccentricity(src int) int {
	max := 0
	for _, d := range g.BFS(src) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns D_G, the maximum hop distance between any two nodes in
// the same connected component. For a graph with no edges it returns 0.
func (g *Graph) Diameter() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if e := g.Eccentricity(u); e > max {
			max = e
		}
	}
	return max
}

// IsConnected reports whether the graph is connected (the empty graph and
// single-node graph are considered connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components as sorted node lists, ordered
// by their smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for u := 0; u < g.n; u++ {
		if seen[u] {
			continue
		}
		var comp []int
		queue := []int{u}
		seen[u] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			comp = append(comp, x)
			for _, v := range g.adj[x] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// NeighborhoodR returns N_{G,r}(v): all nodes within hop distance r of v,
// including v itself, in ascending order.
func (g *Graph) NeighborhoodR(v, r int) []int {
	dist := g.BFS(v)
	var out []int
	for u, d := range dist {
		if d >= 0 && d <= r {
			out = append(out, u)
		}
	}
	return out
}

// NeighborhoodRSet returns N_{G,r}(W) for a set of nodes W: the union of
// the r-neighbourhoods of all nodes in W, in ascending order.
func (g *Graph) NeighborhoodRSet(w []int, r int) []int {
	seen := make(map[int]bool)
	for _, v := range w {
		for _, u := range g.NeighborhoodR(v, r) {
			seen[u] = true
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// InducedSubgraph returns the subgraph G|S induced by the node set S,
// together with the mapping from new node index to original node id.
func (g *Graph) InducedSubgraph(s []int) (*Graph, []int) {
	nodes := append([]int(nil), s...)
	sort.Ints(nodes)
	// Deduplicate.
	nodes = dedupSorted(nodes)
	index := make(map[int]int, len(nodes))
	for i, v := range nodes {
		index[v] = i
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, w := range g.adj[v] {
			if j, ok := index[w]; ok && j > i {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, nodes
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if v > u {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Edges returns all edges (u < v) sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if v > u {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// UnitDisk returns the graph connecting every pair of points at Euclidean
// distance at most radius.
func UnitDisk(pos []geom.Point, radius float64) *Graph {
	g := New(len(pos))
	for u := range pos {
		for v := u + 1; v < len(pos); v++ {
			if pos[u].Dist(pos[v]) <= radius {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Induced returns the SINR-induced graph G_a for the given deployment:
// nodes u, v are adjacent iff d(u, v) <= a·R where R is the transmission
// range implied by params (Section 4.3 of the paper).
func Induced(params sinr.Params, pos []geom.Point, a float64) *Graph {
	return UnitDisk(pos, params.RangeA(a))
}

// Strong returns G_{1-ε}, the reliable-communication graph.
func Strong(params sinr.Params, pos []geom.Point) *Graph {
	return Induced(params, pos, 1-params.Epsilon)
}

// Approx returns G_{1-2ε}, the graph in which approximate progress is
// measured.
func Approx(params sinr.Params, pos []geom.Point) *Graph {
	return Induced(params, pos, 1-2*params.Epsilon)
}

// Weak returns G₁, the weak-connectivity graph of all pairs within the full
// transmission range R.
func Weak(params sinr.Params, pos []geom.Point) *Graph {
	return Induced(params, pos, 1)
}

// EdgeLengthRatio returns Λ_G: the ratio between the longest and the
// shortest Euclidean edge length of g under the given positions. It returns
// 1 for graphs with no edges.
func EdgeLengthRatio(g *Graph, pos []geom.Point) float64 {
	minLen, maxLen := math.Inf(1), 0.0
	for _, e := range g.Edges() {
		d := pos[e[0]].Dist(pos[e[1]])
		if d < minLen {
			minLen = d
		}
		if d > maxLen {
			maxLen = d
		}
	}
	if maxLen == 0 || math.IsInf(minLen, 1) || minLen == 0 {
		return 1
	}
	return maxLen / minLen
}

// IsIndependent reports whether no two nodes of s are adjacent in g.
func (g *Graph) IsIndependent(s []int) bool {
	inSet := make(map[int]bool, len(s))
	for _, v := range s {
		inSet[v] = true
	}
	for _, v := range s {
		for _, w := range g.adj[v] {
			if inSet[w] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependent reports whether s is a maximal independent set of
// the nodes in domain: s must be independent, every node of domain must be
// in s or adjacent to a member of s.
func (g *Graph) IsMaximalIndependent(s, domain []int) bool {
	if !g.IsIndependent(s) {
		return false
	}
	inSet := make(map[int]bool, len(s))
	for _, v := range s {
		inSet[v] = true
	}
	for _, v := range domain {
		if inSet[v] {
			continue
		}
		covered := false
		for _, w := range g.adj[v] {
			if inSet[w] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// GreedyMIS returns the lexicographically-first maximal independent set of
// the nodes in domain (all nodes when domain is nil), considering nodes in
// ascending order. The result is sorted.
func (g *Graph) GreedyMIS(domain []int) []int {
	nodes := domain
	if nodes == nil {
		nodes = make([]int, g.n)
		for i := range nodes {
			nodes[i] = i
		}
	} else {
		nodes = append([]int(nil), nodes...)
		sort.Ints(nodes)
		nodes = dedupSorted(nodes)
	}
	inDomain := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		inDomain[v] = true
	}
	blocked := make(map[int]bool)
	var mis []int
	for _, v := range nodes {
		if blocked[v] {
			continue
		}
		mis = append(mis, v)
		for _, w := range g.adj[v] {
			if inDomain[w] {
				blocked[w] = true
			}
		}
	}
	return mis
}

// LabelMIS computes a maximal independent set of the nodes in domain using
// the label-ordering rule of the ruler/competitor algorithm the paper
// adapts from Schneider–Wattenhofer [47]: a node joins the MIS when its
// label is a strict local minimum among undecided neighbours; ties are
// broken by node id. Labels need not be unique; with unique labels the
// result is a maximal independent set of domain.
//
// The returned set is sorted. This function models the *outcome* of the
// distributed MIS computation; the distributed simulation of it below the
// MAC layer lives in package approgress.
func (g *Graph) LabelMIS(domain []int, labels map[int]uint64) []int {
	nodes := append([]int(nil), domain...)
	sort.Ints(nodes)
	nodes = dedupSorted(nodes)
	inDomain := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		inDomain[v] = true
	}
	undecided := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		undecided[v] = true
	}
	var mis []int
	inMIS := make(map[int]bool)
	for len(undecided) > 0 {
		progress := false
		// Collect undecided nodes in deterministic order.
		var rem []int
		for v := range undecided {
			rem = append(rem, v)
		}
		sort.Ints(rem)
		var joiners []int
		for _, v := range rem {
			lv := labels[v]
			isMin := true
			for _, w := range g.adj[v] {
				if !inDomain[w] || !undecided[w] {
					continue
				}
				lw := labels[w]
				if lw < lv || (lw == lv && w < v) {
					isMin = false
					break
				}
			}
			if isMin {
				joiners = append(joiners, v)
			}
		}
		for _, v := range joiners {
			if !undecided[v] {
				continue
			}
			// A neighbour may have joined in this same sweep; re-check.
			conflict := false
			for _, w := range g.adj[v] {
				if inMIS[w] {
					conflict = true
					break
				}
			}
			if conflict {
				delete(undecided, v)
				continue
			}
			mis = append(mis, v)
			inMIS[v] = true
			delete(undecided, v)
			progress = true
			for _, w := range g.adj[v] {
				if inDomain[w] {
					delete(undecided, w)
				}
			}
		}
		if !progress {
			// Can only happen with adversarial duplicate labels; fall back
			// to greedy completion to preserve maximality.
			for v := range undecided {
				rem = append(rem, v)
			}
			sort.Ints(rem)
			for _, v := range rem {
				if !undecided[v] {
					continue
				}
				conflict := false
				for _, w := range g.adj[v] {
					if inMIS[w] {
						conflict = true
						break
					}
				}
				if !conflict {
					mis = append(mis, v)
					inMIS[v] = true
				}
				delete(undecided, v)
			}
		}
	}
	sort.Ints(mis)
	return mis
}

// GrowthBound estimates the growth-bounding function f(r) of the paper's
// Definition 4.1 empirically: for each node it computes the size of a
// maximal independent set restricted to the r-neighbourhood and returns the
// maximum over all nodes.
func (g *Graph) GrowthBound(r int) int {
	max := 0
	for v := 0; v < g.n; v++ {
		hood := g.NeighborhoodR(v, r)
		if size := len(g.GreedyMIS(hood)); size > max {
			max = size
		}
	}
	return max
}
