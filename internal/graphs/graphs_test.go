package graphs

import (
	"math"
	"testing"
	"testing/quick"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// randomGraph returns an Erdős–Rényi graph G(n, p).
func randomGraph(n int, p float64, src *rng.Source) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Bernoulli(p) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self loop ignored
	g.AddEdge(1, 3)
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing or not symmetric")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop present")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge (0,3)")
	}
	if got := g.Degree(1); got != 2 {
		t.Fatalf("Degree(1) = %d", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Fatalf("MaxDegree = %d", got)
	}
	wantNbrs := []int{0, 3}
	got := g.Neighbors(1)
	if len(got) != 2 || got[0] != wantNbrs[0] || got[1] != wantNbrs[1] {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestNeighborsIsCopy(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	nbrs := g.Neighbors(0)
	nbrs[0] = 2
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("Neighbors exposed internal adjacency slice")
	}
}

func TestBFSAndDiameterPath(t *testing.T) {
	g := pathGraph(6)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("BFS(0)[%d] = %d", i, d)
		}
	}
	if got := g.Diameter(); got != 5 {
		t.Fatalf("Diameter = %d", got)
	}
	if got := g.HopDist(1, 4); got != 3 {
		t.Fatalf("HopDist(1,4) = %d", got)
	}
	if got := g.Eccentricity(2); got != 3 {
		t.Fatalf("Eccentricity(2) = %d", got)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes got distances %v", dist)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v", comps)
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !New(0).IsConnected() {
		t.Fatal("empty graph not connected")
	}
	if !New(1).IsConnected() {
		t.Fatal("single node graph not connected")
	}
	if New(1).Diameter() != 0 {
		t.Fatal("single node diameter != 0")
	}
}

func TestNeighborhoodR(t *testing.T) {
	g := pathGraph(7)
	got := g.NeighborhoodR(3, 2)
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("NeighborhoodR = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeighborhoodR = %v, want %v", got, want)
		}
	}
	setGot := g.NeighborhoodRSet([]int{0, 6}, 1)
	wantSet := []int{0, 1, 5, 6}
	if len(setGot) != len(wantSet) {
		t.Fatalf("NeighborhoodRSet = %v, want %v", setGot, wantSet)
	}
	for i := range wantSet {
		if setGot[i] != wantSet[i] {
			t.Fatalf("NeighborhoodRSet = %v, want %v", setGot, wantSet)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := pathGraph(5)
	sub, ids := g.InducedSubgraph([]int{0, 1, 3, 4, 4})
	if sub.NumNodes() != 4 {
		t.Fatalf("subgraph nodes = %d", sub.NumNodes())
	}
	if len(ids) != 4 || ids[0] != 0 || ids[3] != 4 {
		t.Fatalf("id map = %v", ids)
	}
	// Only 0-1 and 3-4 survive.
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(2, 3) {
		t.Fatal("expected edges missing in induced subgraph")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := pathGraph(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("Clone shares storage with original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Fatal("Clone missing edges")
	}
}

func TestEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 0)
	g.AddEdge(3, 1)
	g.AddEdge(0, 1)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestUnitDiskAndInduced(t *testing.T) {
	params := sinr.DefaultParams(10)
	pos := []geom.Point{{X: 0, Y: 0}, {X: 7.9, Y: 0}, {X: 9.5, Y: 0}, {X: 30, Y: 0}}
	weak := Weak(params, pos)
	strong := Strong(params, pos)
	approx := Approx(params, pos)

	// Weak graph (R=10): 0-8 and 8-9.5 edges, 0-9.5 edge (9.5<10), no 30.
	if !weak.HasEdge(0, 1) || !weak.HasEdge(1, 2) || !weak.HasEdge(0, 2) || weak.HasEdge(2, 3) {
		t.Fatalf("weak graph edges wrong: %v", weak.Edges())
	}
	// Strong graph (R_{1-ε}=9): 0-8, 8-9.5 (1.5), not 0-9.5.
	if !strong.HasEdge(0, 1) || !strong.HasEdge(1, 2) || strong.HasEdge(0, 2) {
		t.Fatalf("strong graph edges wrong: %v", strong.Edges())
	}
	// Approx graph (R_{1-2ε}=8): 0-8 included (<=), 8-9.5 included, not 0-9.5.
	if !approx.HasEdge(0, 1) || !approx.HasEdge(1, 2) || approx.HasEdge(0, 2) {
		t.Fatalf("approx graph edges wrong: %v", approx.Edges())
	}
	// Containment G_{1-2ε} ⊆ G_{1-ε} ⊆ G₁.
	for _, e := range approx.Edges() {
		if !strong.HasEdge(e[0], e[1]) {
			t.Fatalf("approx edge %v missing from strong graph", e)
		}
	}
	for _, e := range strong.Edges() {
		if !weak.HasEdge(e[0], e[1]) {
			t.Fatalf("strong edge %v missing from weak graph", e)
		}
	}
}

func TestEdgeLengthRatio(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 0}}
	g := New(3)
	if got := EdgeLengthRatio(g, pos); got != 1 {
		t.Fatalf("ratio of empty graph = %v", got)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := EdgeLengthRatio(g, pos); math.Abs(got-4) > 1e-12 {
		t.Fatalf("EdgeLengthRatio = %v, want 4", got)
	}
}

func TestIndependenceChecks(t *testing.T) {
	g := pathGraph(5)
	if !g.IsIndependent([]int{0, 2, 4}) {
		t.Fatal("alternating set not independent")
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Fatal("adjacent pair reported independent")
	}
	all := []int{0, 1, 2, 3, 4}
	if !g.IsMaximalIndependent([]int{0, 2, 4}, all) {
		t.Fatal("maximal set not recognized")
	}
	if g.IsMaximalIndependent([]int{0, 4}, all) {
		t.Fatal("non-maximal set accepted (2 uncovered)")
	}
	if g.IsMaximalIndependent([]int{0, 1, 3}, all) {
		t.Fatal("dependent set accepted as maximal independent")
	}
}

func TestGreedyMIS(t *testing.T) {
	g := pathGraph(6)
	mis := g.GreedyMIS(nil)
	all := []int{0, 1, 2, 3, 4, 5}
	if !g.IsMaximalIndependent(mis, all) {
		t.Fatalf("GreedyMIS %v not a maximal independent set", mis)
	}
	// Restricted domain.
	dom := []int{1, 2, 3}
	mis = g.GreedyMIS(dom)
	if !g.IsMaximalIndependent(mis, dom) {
		t.Fatalf("restricted GreedyMIS %v not maximal over %v", mis, dom)
	}
}

func TestLabelMISUniqueLabels(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(30, 0.15, src)
		domain := make([]int, 30)
		labels := make(map[int]uint64, 30)
		for i := range domain {
			domain[i] = i
			labels[i] = uint64(i*7919 + 13) // unique
		}
		mis := g.LabelMIS(domain, labels)
		if !g.IsMaximalIndependent(mis, domain) {
			t.Fatalf("trial %d: LabelMIS %v not maximal independent", trial, mis)
		}
	}
}

func TestLabelMISDuplicateLabelsStillIndependent(t *testing.T) {
	src := rng.New(88)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(25, 0.2, src)
		domain := make([]int, 25)
		labels := make(map[int]uint64, 25)
		for i := range domain {
			domain[i] = i
			labels[i] = uint64(src.Intn(3)) // heavy duplication
		}
		mis := g.LabelMIS(domain, labels)
		if !g.IsIndependent(mis) {
			t.Fatalf("trial %d: LabelMIS with duplicate labels not independent: %v", trial, mis)
		}
		// With the id tie-break the result is in fact maximal as well.
		if !g.IsMaximalIndependent(mis, domain) {
			t.Fatalf("trial %d: LabelMIS with duplicate labels not maximal: %v", trial, mis)
		}
	}
}

func TestLabelMISSubdomain(t *testing.T) {
	g := pathGraph(8)
	domain := []int{2, 3, 4, 5}
	labels := map[int]uint64{2: 9, 3: 1, 4: 7, 5: 3}
	mis := g.LabelMIS(domain, labels)
	if !g.IsMaximalIndependent(mis, domain) {
		t.Fatalf("LabelMIS %v not maximal over %v", mis, domain)
	}
	for _, v := range mis {
		if v < 2 || v > 5 {
			t.Fatalf("LabelMIS returned node %d outside domain", v)
		}
	}
}

func TestGrowthBoundPath(t *testing.T) {
	g := pathGraph(20)
	// In a path the r-neighbourhood has 2r+1 nodes and an MIS of size r+1.
	for r := 0; r <= 3; r++ {
		if got := g.GrowthBound(r); got != r+1 {
			t.Fatalf("GrowthBound(%d) = %d, want %d", r, got, r+1)
		}
	}
}

func TestGrowthBoundUnitDiskPolynomial(t *testing.T) {
	// Unit-disk graphs are growth bounded: f(r) = O(r²). Check the estimate
	// does not explode faster than quadratically on a random deployment.
	src := rng.New(3)
	pos := make([]geom.Point, 200)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 30, Y: src.Float64() * 30}
	}
	g := UnitDisk(pos, 3)
	f2 := g.GrowthBound(2)
	f4 := g.GrowthBound(4)
	if f4 > 8*f2+8 {
		t.Fatalf("growth bound not polynomial-ish: f(2)=%d f(4)=%d", f2, f4)
	}
}

// Property: BFS distances obey the edge relaxation property |d(u)-d(v)| <= 1
// for every edge (u, v).
func TestQuickBFSEdgeConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(40)
		g := randomGraph(n, 0.1+src.Float64()*0.2, src)
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e[0]], dist[e[1]]
			if du < 0 != (dv < 0) {
				return false
			}
			if du >= 0 && dv >= 0 && abs(du-dv) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: GreedyMIS always yields a maximal independent set.
func TestQuickGreedyMISMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(40)
		g := randomGraph(n, src.Float64()*0.3, src)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return g.IsMaximalIndependent(g.GreedyMIS(nil), all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SINR-induced graphs are nested: G_{1-2ε} ⊆ G_{1-ε} ⊆ G₁.
func TestQuickInducedGraphNesting(t *testing.T) {
	params := sinr.DefaultParams(10)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(30)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: src.Float64() * 50, Y: src.Float64() * 50}
		}
		weak, strong, approx := Weak(params, pos), Strong(params, pos), Approx(params, pos)
		for _, e := range approx.Edges() {
			if !strong.HasEdge(e[0], e[1]) {
				return false
			}
		}
		for _, e := range strong.Edges() {
			if !weak.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkDiameterRandom200(b *testing.B) {
	src := rng.New(10)
	g := randomGraph(200, 0.05, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Diameter()
	}
}

func BenchmarkGreedyMIS(b *testing.B) {
	src := rng.New(11)
	g := randomGraph(500, 0.02, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GreedyMIS(nil)
	}
}
