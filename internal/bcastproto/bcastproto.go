// Package bcastproto implements the global broadcast protocols of
// Khabbazian, Kowalski, Kuhn and Lynch [37] on top of the abstract MAC
// layer, as used by Section 12 of the paper:
//
//   - BMMB (Basic Multi-Message Broadcast): every node maintains a FIFO
//     queue of messages to broadcast and a set of already-seen messages;
//     whenever the MAC layer is idle the head of the queue is broadcast,
//     and every newly received message is delivered to the environment and
//     appended to the queue.
//   - BSMB (Basic Single-Message Broadcast): BMMB specialised to one
//     message that starts at a designated initial node i₀.
//   - Relay: the minimal "forward once" layer used to run the Daum et
//     al. [14]-style direct broadcast baseline over a progress-only MAC
//     that never acknowledges.
//
// The protocols are written purely against core.MAC and core.Layer, so the
// same code runs over the combined MAC of Algorithm 11.1, the
// acknowledgment-only MAC, or the Decay baseline — exactly the portability
// the absMAC abstraction is meant to provide.
package bcastproto

import (
	"sort"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
)

// Delivery records one message delivered to the environment at one node.
type Delivery struct {
	// Msg is the delivered message.
	Msg core.Message
	// Slot is the slot at which the deliver event occurred.
	Slot int64
}

// BMMB is the per-node Basic Multi-Message Broadcast layer.
type BMMB struct {
	node int
	mac  core.MAC

	queue     []core.Message
	inFlight  bool
	rcvd      map[core.MessageID]bool
	delivered []Delivery
}

var _ core.Layer = (*BMMB)(nil)

// NewBMMB returns a BMMB layer with the given initial messages (the
// messages the environment "arrives" at this node at time zero; they are
// delivered locally at slot 0).
func NewBMMB(initial ...core.Message) *BMMB {
	b := &BMMB{rcvd: make(map[core.MessageID]bool)}
	for _, m := range initial {
		b.arrive(0, m)
	}
	return b
}

// NewBSMB returns the Basic Single-Message Broadcast layer for one node:
// the designated initial node passes its message, every other node passes
// nothing.
func NewBSMB(initial ...core.Message) *BMMB {
	return NewBMMB(initial...)
}

// arrive implements the arrive(m)/deliver(m) pair of the BMMB protocol.
func (b *BMMB) arrive(slot int64, m core.Message) {
	if b.rcvd[m.ID] {
		return
	}
	b.rcvd[m.ID] = true
	b.delivered = append(b.delivered, Delivery{Msg: m, Slot: slot})
	b.queue = append(b.queue, m)
}

// Attach implements core.Layer.
func (b *BMMB) Attach(node int, mac core.MAC, src *rng.Source) {
	b.node = node
	b.mac = mac
}

// OnSlot implements core.Layer: when the MAC is idle and the queue is not
// empty, broadcast the head of the queue.
func (b *BMMB) OnSlot(slot int64) {
	if b.inFlight || len(b.queue) == 0 || b.mac == nil || b.mac.Busy() {
		return
	}
	b.inFlight = true
	b.mac.Bcast(slot, b.queue[0])
}

// OnRcv implements core.Layer.
func (b *BMMB) OnRcv(slot int64, m core.Message) {
	b.arrive(slot, m)
}

// OnAck implements core.Layer: the acknowledged message is removed from the
// queue.
func (b *BMMB) OnAck(slot int64, m core.Message) {
	if len(b.queue) > 0 && b.queue[0].ID == m.ID {
		b.queue = b.queue[1:]
	}
	b.inFlight = false
}

// Delivered returns the messages delivered to the environment at this node,
// in delivery order.
func (b *BMMB) Delivered() []Delivery {
	out := make([]Delivery, len(b.delivered))
	copy(out, b.delivered)
	return out
}

// HasDelivered reports whether the message with the given id has been
// delivered at this node.
func (b *BMMB) HasDelivered(id core.MessageID) bool {
	return b.rcvd[id]
}

// QueueLen returns the number of messages still queued for broadcast.
func (b *BMMB) QueueLen() int { return len(b.queue) }

// AllDelivered reports whether every one of the given layers has delivered
// every one of the given message ids. It is the completion predicate of the
// global SMB/MMB problems.
func AllDelivered(layers []*BMMB, ids []core.MessageID) bool {
	for _, l := range layers {
		for _, id := range ids {
			if !l.HasDelivered(id) {
				return false
			}
		}
	}
	return true
}

// CompletionSlot returns the largest delivery slot of the given message ids
// over all layers, i.e. the slot at which global broadcast completed, and
// whether all deliveries happened. Initial arrivals (slot 0 at the origins)
// are included.
func CompletionSlot(layers []*BMMB, ids []core.MessageID) (int64, bool) {
	want := make(map[core.MessageID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var last int64
	for _, l := range layers {
		seen := 0
		for _, d := range l.Delivered() {
			if want[d.Msg.ID] {
				seen++
				if d.Slot > last {
					last = d.Slot
				}
			}
		}
		if seen < len(ids) {
			return 0, false
		}
	}
	return last, true
}

// Relay is the minimal forwarding layer used for the Daum et al. [14]-style
// direct single-message broadcast baseline: a node that receives the target
// message for the first time immediately starts broadcasting it itself and
// never stops (the underlying progress-only MAC does not acknowledge).
type Relay struct {
	core.NopLayer

	node int
	mac  core.MAC

	target    core.MessageID
	initial   *core.Message
	started   bool
	rcvSlot   int64
	delivered bool
}

var _ core.Layer = (*Relay)(nil)

// NewRelay returns a relay layer for the given target message id. If
// initial is non-nil this node is the broadcast source and starts
// broadcasting immediately.
func NewRelay(target core.MessageID, initial *core.Message) *Relay {
	r := &Relay{target: target}
	if initial != nil {
		cp := *initial
		r.initial = &cp
	}
	return r
}

// Attach implements core.Layer.
func (r *Relay) Attach(node int, mac core.MAC, src *rng.Source) {
	r.node = node
	r.mac = mac
}

// OnSlot implements core.Layer.
func (r *Relay) OnSlot(slot int64) {
	if r.started || r.mac == nil {
		return
	}
	if r.initial != nil {
		r.mac.Bcast(slot, *r.initial)
		r.started = true
		r.delivered = true
		return
	}
	if r.delivered {
		r.mac.Bcast(slot, core.Message{ID: r.target, Origin: r.node, Payload: nil})
		r.started = true
	}
}

// OnRcv implements core.Layer.
func (r *Relay) OnRcv(slot int64, m core.Message) {
	if m.ID != r.target || r.delivered {
		return
	}
	r.delivered = true
	r.rcvSlot = slot
}

// Delivered reports whether this node has the target message and the slot
// at which it first arrived (0 for the source).
func (r *Relay) Delivered() (bool, int64) {
	return r.delivered, r.rcvSlot
}

// RelayCompletionSlot returns the largest first-arrival slot over all relay
// layers and whether every node has the message.
func RelayCompletionSlot(layers []*Relay) (int64, bool) {
	var last int64
	for _, l := range layers {
		ok, slot := l.Delivered()
		if !ok {
			return 0, false
		}
		if slot > last {
			last = slot
		}
	}
	return last, true
}

// MessageIDs returns the ids of the given messages, sorted, for use with
// AllDelivered and CompletionSlot.
func MessageIDs(msgs []core.Message) []core.MessageID {
	out := make([]core.MessageID, len(msgs))
	for i, m := range msgs {
		out[i] = m.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
