package bcastproto

import (
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// fakeMAC is an in-memory MAC used for unit-testing the layers without a
// simulation: Bcast immediately succeeds and the ack is delivered on the
// next OnSlot via the test.
type fakeMAC struct {
	busy   bool
	bcasts []core.Message
}

func (f *fakeMAC) Bcast(slot int64, m core.Message) {
	f.busy = true
	f.bcasts = append(f.bcasts, m)
}
func (f *fakeMAC) Abort(slot int64, id core.MessageID) { f.busy = false }
func (f *fakeMAC) SetLayer(core.Layer)                 {}
func (f *fakeMAC) Busy() bool                          { return f.busy }

func TestBMMBQueueDiscipline(t *testing.T) {
	m1 := core.Message{ID: 1, Origin: 0}
	m2 := core.Message{ID: 2, Origin: 0}
	b := NewBMMB(m1, m2)
	fm := &fakeMAC{}
	b.Attach(0, fm, rng.New(1))

	if got := b.QueueLen(); got != 2 {
		t.Fatalf("QueueLen = %d", got)
	}
	// Initial messages are delivered locally at slot 0.
	if len(b.Delivered()) != 2 {
		t.Fatalf("initial deliveries = %d", len(b.Delivered()))
	}
	b.OnSlot(1)
	if len(fm.bcasts) != 1 || fm.bcasts[0].ID != 1 {
		t.Fatalf("bcasts = %+v", fm.bcasts)
	}
	// While in flight, no second broadcast is issued.
	b.OnSlot(2)
	if len(fm.bcasts) != 1 {
		t.Fatal("BMMB broadcast while busy")
	}
	// The ack pops the head and the next message goes out.
	fm.busy = false
	b.OnAck(3, m1)
	b.OnSlot(4)
	if len(fm.bcasts) != 2 || fm.bcasts[1].ID != 2 {
		t.Fatalf("bcasts = %+v", fm.bcasts)
	}
	if b.QueueLen() != 1 {
		t.Fatalf("QueueLen after ack = %d", b.QueueLen())
	}
}

func TestBMMBRcvDeliversOnceAndForwards(t *testing.T) {
	b := NewBMMB()
	fm := &fakeMAC{}
	b.Attach(1, fm, rng.New(1))
	m := core.Message{ID: 9, Origin: 0}
	b.OnRcv(5, m)
	b.OnRcv(6, m) // duplicate
	if got := len(b.Delivered()); got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
	if !b.HasDelivered(9) || b.HasDelivered(10) {
		t.Fatal("HasDelivered wrong")
	}
	if b.Delivered()[0].Slot != 5 {
		t.Fatalf("delivery slot = %d", b.Delivered()[0].Slot)
	}
	// The received message is queued for re-broadcast.
	b.OnSlot(7)
	if len(fm.bcasts) != 1 || fm.bcasts[0].ID != 9 {
		t.Fatalf("forwarded bcasts = %+v", fm.bcasts)
	}
}

func TestBMMBDeliveredIsCopy(t *testing.T) {
	b := NewBMMB(core.Message{ID: 1, Origin: 0})
	d := b.Delivered()
	d[0].Slot = 99
	if b.Delivered()[0].Slot != 0 {
		t.Fatal("Delivered exposed internal slice")
	}
}

func TestAllDeliveredAndCompletionSlot(t *testing.T) {
	m1 := core.Message{ID: 1, Origin: 0}
	m2 := core.Message{ID: 2, Origin: 1}
	a := NewBMMB(m1)
	b := NewBMMB(m2)
	ids := MessageIDs([]core.Message{m1, m2})

	if AllDelivered([]*BMMB{a, b}, ids) {
		t.Fatal("AllDelivered true before exchange")
	}
	if _, ok := CompletionSlot([]*BMMB{a, b}, ids); ok {
		t.Fatal("CompletionSlot complete before exchange")
	}
	a.OnRcv(10, m2)
	b.OnRcv(12, m1)
	if !AllDelivered([]*BMMB{a, b}, ids) {
		t.Fatal("AllDelivered false after exchange")
	}
	slot, ok := CompletionSlot([]*BMMB{a, b}, ids)
	if !ok || slot != 12 {
		t.Fatalf("CompletionSlot = %d/%v", slot, ok)
	}
}

func TestMessageIDsSorted(t *testing.T) {
	ids := MessageIDs([]core.Message{{ID: 5}, {ID: 2}, {ID: 9}})
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 5 || ids[2] != 9 {
		t.Fatalf("MessageIDs = %v", ids)
	}
}

func TestRelayLifecycle(t *testing.T) {
	src := core.Message{ID: 7, Origin: 0}
	source := NewRelay(7, &src)
	other := NewRelay(7, nil)
	fmSrc, fmOther := &fakeMAC{}, &fakeMAC{}
	source.Attach(0, fmSrc, rng.New(1))
	other.Attach(1, fmOther, rng.New(2))

	source.OnSlot(0)
	if len(fmSrc.bcasts) != 1 {
		t.Fatal("source did not broadcast")
	}
	if ok, _ := source.Delivered(); !ok {
		t.Fatal("source not marked delivered")
	}
	// The other node does nothing until it hears the message.
	other.OnSlot(0)
	if len(fmOther.bcasts) != 0 {
		t.Fatal("non-source relay broadcast before reception")
	}
	other.OnRcv(42, src)
	other.OnRcv(50, src) // duplicate keeps the first slot
	if ok, slot := other.Delivered(); !ok || slot != 42 {
		t.Fatalf("Delivered = %v/%d", ok, slot)
	}
	other.OnSlot(43)
	if len(fmOther.bcasts) != 1 {
		t.Fatal("relay did not start broadcasting after reception")
	}
	// Irrelevant messages are ignored.
	third := NewRelay(7, nil)
	third.Attach(2, &fakeMAC{}, rng.New(3))
	third.OnRcv(1, core.Message{ID: 99, Origin: 5})
	if ok, _ := third.Delivered(); ok {
		t.Fatal("relay accepted an unrelated message")
	}
	slot, ok := RelayCompletionSlot([]*Relay{source, other})
	if !ok || slot != 42 {
		t.Fatalf("RelayCompletionSlot = %d/%v", slot, ok)
	}
	if _, ok := RelayCompletionSlot([]*Relay{source, other, third}); ok {
		t.Fatal("RelayCompletionSlot complete with an undelivered node")
	}
}

// Integration: BSMB over the acknowledgment-only MAC floods a line network.
func TestBSMBOverAckMACLine(t *testing.T) {
	params := sinr.DefaultParams(10)
	d, err := topology.Line(6, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewRecorder()
	cfg := hmbcast.DefaultConfig(d.Lambda(), 0.1)
	cfg.StepFactor = 1
	cfg.HaltFactor = 4

	msg := core.Message{ID: 1, Origin: 0, Payload: "smb"}
	layers := make([]*BMMB, d.NumNodes())
	nodes := make([]sim.Node, d.NumNodes())
	for i := range nodes {
		if i == 0 {
			layers[i] = NewBSMB(msg)
		} else {
			layers[i] = NewBSMB()
		}
		n := hmbcast.New(cfg, rec)
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ids := []core.MessageID{1}
	deadline := int64(d.NumNodes()+2) * cfg.MaxSlots()
	eng.Run(deadline, func() bool { return AllDelivered(layers, ids) })
	if !AllDelivered(layers, ids) {
		t.Fatalf("BSMB did not complete within %d slots", deadline)
	}
	if slot, ok := CompletionSlot(layers, ids); !ok || slot <= 0 {
		t.Fatalf("CompletionSlot = %d/%v", slot, ok)
	}
}

// Integration: BMMB over the combined MAC broadcasts two messages from
// different origins across a small cluster chain.
func TestBMMBOverCombinedMAC(t *testing.T) {
	d, err := topology.Clusters(2, 5, sinr.DefaultParams(20), rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewRecorder()
	cfg := mac.DefaultConfig(d.Lambda(), 3, core.DefaultParams())
	cfg.Ack.StepFactor = 1
	cfg.Ack.HaltFactor = 4
	cfg.Prog.QScale = 0.25
	cfg.Prog.TFactor = 3
	cfg.Prog.MISRounds = 3
	cfg.Prog.DataFactor = 2

	msgs := []core.Message{
		{ID: 101, Origin: 0, Payload: "a"},
		{ID: 102, Origin: d.NumNodes() - 1, Payload: "b"},
	}
	layers := make([]*BMMB, d.NumNodes())
	nodes := make([]sim.Node, d.NumNodes())
	for i := range nodes {
		var initial []core.Message
		for _, m := range msgs {
			if m.Origin == i {
				initial = append(initial, m)
			}
		}
		layers[i] = NewBMMB(initial...)
		n := mac.New(cfg, rec)
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	ids := MessageIDs(msgs)
	deadline := 20 * cfg.AckDeadline()
	eng.Run(deadline, func() bool { return AllDelivered(layers, ids) })
	if !AllDelivered(layers, ids) {
		t.Fatalf("BMMB did not complete within %d slots", deadline)
	}
}
