package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sinrmac/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStddev(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Fatal("empty/singleton moments not zero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
	if got := Stddev(xs); got != 2 {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max not infinite")
	}
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-9) {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEqual(got, 2.5, 1e-9) {
		t.Fatalf("Median = %v", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
	// Input order must not matter.
	if Quantile([]float64{5, 1, 3}, 0.5) != Quantile([]float64{1, 3, 5}, 0.5) {
		t.Fatal("Quantile depends on input order")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.Mean, 5.5, 1e-9) || !almostEqual(s.Median, 5.5, 1e-9) {
		t.Fatalf("summary = %+v", s)
	}
	if s.P90 < s.Median || s.P90 > s.Max {
		t.Fatalf("P90 out of order: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 3, 1e-9) || !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	src := rng.New(1)
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 3*xi+10+src.NormFloat64()*5)
	}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.1 {
		t.Fatalf("slope = %v, want ~3", fit.Slope)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x² has log-log slope 2.
	var x, y []float64
	for i := 1; i <= 20; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i*i))
	}
	s, err := LogLogSlope(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 2, 1e-9) {
		t.Fatalf("slope = %v, want 2", s)
	}
	if _, err := LogLogSlope([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := LogLogSlope([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestGrowthRatio(t *testing.T) {
	// y doubles while x quadruples: ratio 0.5.
	r, err := GrowthRatio([]float64{1, 2, 4}, []float64{10, 15, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 0.5, 1e-9) {
		t.Fatalf("GrowthRatio = %v", r)
	}
	if _, err := GrowthRatio([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := GrowthRatio([]float64{2, 1}, []float64{1, 1}); err == nil {
		t.Fatal("decreasing x accepted")
	}
}

// Property: the median always lies between min and max, and the mean of a
// permuted slice equals the mean of the original.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		src := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64()*200 - 100
		}
		s := Summarize(xs)
		if s.Median < s.Min-1e-9 || s.Median > s.Max+1e-9 {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		shuffled := append([]float64(nil), xs...)
		src.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return almostEqual(Mean(shuffled), s.Mean, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
