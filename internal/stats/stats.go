// Package stats provides the small set of descriptive statistics and
// fitting helpers the experiment harness uses to summarise measured
// latencies and to compare their scaling shape against the paper's bounds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs (+Inf for an empty slice).
func Min(xs []float64) float64 {
	out := math.Inf(1)
	for _, x := range xs {
		if x < out {
			out = x
		}
	}
	return out
}

// Max returns the maximum of xs (-Inf for an empty slice).
func Max(xs []float64) float64 {
	out := math.Inf(-1)
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

// Quantile returns the q-quantile of xs (q in [0, 1]) using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and panics if q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0, 1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a five-number-plus-mean summary of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Min, Median, P90, Max are order statistics of the sample.
	Min    float64
	Median float64
	P90    float64
	Max    float64
	// Mean and Stddev are the sample moments.
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Min:    Min(xs),
		Median: Median(xs),
		P90:    Quantile(xs, 0.9),
		Max:    Max(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f median=%.1f p90=%.1f max=%.1f mean=%.1f±%.1f",
		s.N, s.Min, s.Median, s.P90, s.Max, s.Mean, s.Stddev)
}

// Fit is a least-squares linear fit y ≈ Slope·x + Intercept.
type Fit struct {
	// Slope and Intercept are the fitted coefficients.
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// LinearFit fits y ≈ a·x + b by ordinary least squares. It returns an error
// when the inputs have mismatched lengths or fewer than two points, or when
// all x values coincide.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least two points, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: all x values identical")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range x {
			pred := slope*x[i] + intercept
			d := y[i] - pred
			ssRes += d * d
		}
		r2 = 1 - ssRes/syy
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// LogLogSlope fits log(y) ≈ s·log(x) + c and returns s: the empirical
// polynomial growth exponent of y as a function of x. Non-positive values
// are rejected with an error.
func LogLogSlope(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return 0, fmt.Errorf("stats: log-log fit requires positive values (x=%v, y=%v)", x[i], y[i])
		}
		lx = append(lx, math.Log(x[i]))
		ly = append(ly, math.Log(y[i]))
	}
	fit, err := LinearFit(lx, ly)
	if err != nil {
		return 0, err
	}
	return fit.Slope, nil
}

// GrowthRatio returns y[last]/y[first] normalised by x[last]/x[first]: a
// value near 1 means y grows proportionally to x, a value near 0 means y is
// (nearly) flat in x. It returns an error on bad input.
func GrowthRatio(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("stats: GrowthRatio needs two aligned points, got %d/%d", len(x), len(y))
	}
	x0, x1 := x[0], x[len(x)-1]
	y0, y1 := y[0], y[len(y)-1]
	if x0 <= 0 || y0 <= 0 || x1 <= x0 {
		return 0, fmt.Errorf("stats: GrowthRatio requires positive, increasing x and positive y")
	}
	return (y1 / y0) / (x1 / x0), nil
}
