// Package geom provides the planar geometry primitives the SINR simulator
// is built on: points, Euclidean distances, bounding boxes and a uniform
// grid index used to answer range queries and to bin nodes into annuli for
// interference accounting.
//
// The paper (Section 4.2) places nodes in the Euclidean plane and assumes a
// minimum pairwise distance of 1 (the near-field normalisation); helpers in
// this package enforce and verify that normalisation.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q, computed as
// Sqrt(DistSq(p, q)).
//
// The composition through the squared distance is deliberate: Sqrt is a
// single hardware instruction where math.Hypot is a library call with
// branches and scaling, and every distance-derived quantity in the
// simulator (range queries, received powers, threshold comparisons) is
// then one monotone rounding away from the same squared-domain value, so
// d(p,q) < r exactly when DistSq(p,q) < r·r up to the documented grid
// slack. Deployment coordinates are bounded (no risk of dx² overflowing),
// which is the one case Hypot exists to handle.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root when only comparisons are needed.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Sub returns p minus q.
func (p Point) Sub(q Point) Point {
	return Point{X: p.X - q.X, Y: p.Y - q.Y}
}

// Scale returns p scaled by factor s about the origin.
func (p Point) Scale(s float64) Point {
	return Point{X: p.X * s, Y: p.Y * s}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner and
// Max at the upper-right corner.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two arbitrary corner points.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Expand returns r grown by margin on every side.
func (r Rect) Expand(margin float64) Rect {
	return Rect{
		Min: Point{X: r.Min.X - margin, Y: r.Min.Y - margin},
		Max: Point{X: r.Max.X + margin, Y: r.Max.Y + margin},
	}
}

// BoundingBox returns the smallest axis-aligned rectangle containing all
// points. It returns a zero Rect when points is empty.
func BoundingBox(points []Point) Rect {
	if len(points) == 0 {
		return Rect{}
	}
	r := Rect{Min: points[0], Max: points[0]}
	for _, p := range points[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// MinPairwiseDist returns the smallest distance between two distinct points.
// It returns +Inf when fewer than two points are given.
//
// The implementation uses a uniform grid to avoid the quadratic scan for
// large inputs, falling back to brute force for small ones.
func MinPairwiseDist(points []Point) float64 {
	n := len(points)
	if n < 2 {
		return math.Inf(1)
	}
	if n <= 64 {
		return minPairwiseBrute(points)
	}
	// Grid with cell size roughly the expected nearest-neighbour spacing.
	box := BoundingBox(points)
	cell := math.Sqrt(box.Area()/float64(n)) + 1e-12
	if cell <= 0 || math.IsNaN(cell) {
		return minPairwiseBrute(points)
	}
	g := NewGrid(cell)
	for i, p := range points {
		g.Insert(i, p)
	}
	// Compare in the squared domain and take one root at the end: Sqrt is
	// monotone (x ≤ y ⟹ Sqrt(x) ≤ Sqrt(y) after rounding), so the minimum
	// commutes with the root and the result is bit-identical to minimising
	// Dist directly.
	bestSq := math.Inf(1)
	for i, p := range points {
		for _, j := range g.Neighborhood(p, cell) {
			if j == i {
				continue
			}
			if d2 := p.DistSq(points[j]); d2 < bestSq {
				bestSq = d2
			}
		}
	}
	// The grid only inspects adjacent cells; if nothing was found there the
	// points are sparse relative to the cell size and we must fall back.
	if math.IsInf(bestSq, 1) {
		return minPairwiseBrute(points)
	}
	return math.Sqrt(bestSq)
}

func minPairwiseBrute(points []Point) float64 {
	bestSq := math.Inf(1)
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if d2 := points[i].DistSq(points[j]); d2 < bestSq {
				bestSq = d2
			}
		}
	}
	return math.Sqrt(bestSq)
}

// MaxPairwiseDist returns the largest distance between two points, or 0
// when fewer than two points are given.
func MaxPairwiseDist(points []Point) float64 {
	best := 0.0
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if d := points[i].Dist(points[j]); d > best {
				best = d
			}
		}
	}
	return best
}

// NormalizeMinDist rescales the points (about the origin) so that the
// minimum pairwise distance becomes exactly minDist. It returns the scale
// factor applied. Points are modified in place. If fewer than two points
// are supplied, or all points coincide, the slice is returned unchanged
// with scale 1.
func NormalizeMinDist(points []Point, minDist float64) float64 {
	cur := MinPairwiseDist(points)
	if math.IsInf(cur, 1) || cur == 0 {
		return 1
	}
	scale := minDist / cur
	for i := range points {
		points[i] = points[i].Scale(scale)
	}
	return scale
}

// cellKey identifies one cell of a Grid.
type cellKey struct {
	cx, cy int
}

// Grid is a uniform spatial hash over the plane with square cells. It
// supports insertion of indexed points and range queries, and is used both
// by topology generation (minimum-distance checks) and by interference
// accounting (annulus binning).
type Grid struct {
	cell  float64
	cells map[cellKey][]int
	pts   map[int]Point
}

// NewGrid returns an empty grid with the given cell side length. It panics
// if cell is not positive.
func NewGrid(cell float64) *Grid {
	if cell <= 0 || math.IsNaN(cell) {
		panic("geom: grid cell size must be positive")
	}
	return &Grid{
		cell:  cell,
		cells: make(map[cellKey][]int),
		pts:   make(map[int]Point),
	}
}

// CellSize returns the grid's cell side length.
func (g *Grid) CellSize() float64 { return g.cell }

// Len returns the number of points stored in the grid.
func (g *Grid) Len() int { return len(g.pts) }

func (g *Grid) keyFor(p Point) cellKey {
	return cellKey{
		cx: int(math.Floor(p.X / g.cell)),
		cy: int(math.Floor(p.Y / g.cell)),
	}
}

// Insert adds the point p with identifier id. Inserting the same id twice
// keeps both entries; callers are expected to use unique ids.
func (g *Grid) Insert(id int, p Point) {
	k := g.keyFor(p)
	g.cells[k] = append(g.cells[k], id)
	g.pts[id] = p
}

// Remove deletes the point with identifier id from the grid. Removing an
// unknown id is a no-op. The bucket entry is swap-removed, so the order of
// ids within a cell is not preserved; emptied buckets keep their map key
// (and slice capacity), which lets churn workloads that revisit the same
// cells update the grid without allocating.
func (g *Grid) Remove(id int) {
	p, ok := g.pts[id]
	if !ok {
		return
	}
	delete(g.pts, id)
	g.removeFromCell(g.keyFor(p), id)
}

// Move relocates the point with identifier id to p, preserving the no-alloc
// property of Remove when the destination bucket has capacity. Moving an
// unknown id inserts it.
func (g *Grid) Move(id int, p Point) {
	old, ok := g.pts[id]
	if !ok {
		g.Insert(id, p)
		return
	}
	g.pts[id] = p
	ko, kn := g.keyFor(old), g.keyFor(p)
	if ko == kn {
		return
	}
	g.removeFromCell(ko, id)
	g.cells[kn] = append(g.cells[kn], id)
}

// removeFromCell swap-removes id from the bucket of cell k.
func (g *Grid) removeFromCell(k cellKey, id int) {
	cell := g.cells[k]
	for i, cid := range cell {
		if cid == id {
			cell[i] = cell[len(cell)-1]
			g.cells[k] = cell[:len(cell)-1]
			return
		}
	}
}

// Neighborhood returns the ids of all points within radius r of p
// (inclusive). The result is sorted for determinism. Membership is decided
// in the squared domain (DistSq ≤ r²), the same predicate AnyWithin and
// AppendWithin evaluate, so every grid query in the package agrees on
// borderline points without ever taking a root.
func (g *Grid) Neighborhood(p Point, r float64) []int {
	if r < 0 {
		return nil
	}
	span := int(math.Ceil(r/g.cell)) + 1
	center := g.keyFor(p)
	rr := r * r
	var out []int
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			k := cellKey{cx: center.cx + dx, cy: center.cy + dy}
			for _, id := range g.cells[k] {
				if g.pts[id].DistSq(p) <= rr {
					out = append(out, id)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// AnyWithin reports whether any stored point q with Dist(p, q) <= r
// satisfies pred. Unlike Neighborhood it allocates nothing and stops at the
// first match, which makes it suitable for per-slot hot paths (the fast SINR
// evaluator uses it to cull receivers with no transmitter in range).
func (g *Grid) AnyWithin(p Point, r float64, pred func(id int) bool) bool {
	if r < 0 {
		return false
	}
	// A point within distance r of p lies in a cell whose coordinates differ
	// from p's cell by at most ceil(r/cell) in each axis.
	span := int(math.Ceil(r / g.cell))
	center := g.keyFor(p)
	rr := r * r
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			k := cellKey{cx: center.cx + dx, cy: center.cy + dy}
			for _, id := range g.cells[k] {
				if g.pts[id].DistSq(p) <= rr && pred(id) {
					return true
				}
			}
		}
	}
	return false
}

// AppendWithin appends to dst the ids of all stored points within distance
// r of p (inclusive) and returns the extended slice. Unlike Neighborhood it
// neither sorts nor allocates beyond growing dst, and the membership
// predicate (squared distance at most r²) is exactly the one AnyWithin
// evaluates, so the two queries agree on every borderline point. The append
// order follows the grid's deterministic cell walk, not id order; callers
// that need id order must sort. The sparse sender-centric SINR path uses it
// to enumerate the receivers inside each transmitter's ball with a reused
// candidate buffer.
func (g *Grid) AppendWithin(dst []int, p Point, r float64) []int {
	if r < 0 {
		return dst
	}
	span := int(math.Ceil(r / g.cell))
	center := g.keyFor(p)
	rr := r * r
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			k := cellKey{cx: center.cx + dx, cy: center.cy + dy}
			for _, id := range g.cells[k] {
				if g.pts[id].DistSq(p) <= rr {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// AnnulusCount returns how many stored points have distance d from p with
// inner < d <= outer. It is used by interference bounds that sum over rings
// around a receiver.
func (g *Grid) AnnulusCount(p Point, inner, outer float64) int {
	count := 0
	for _, id := range g.Neighborhood(p, outer) {
		d := g.pts[id].Dist(p)
		if d > inner && d <= outer {
			count++
		}
	}
	return count
}

// Points returns a copy of the stored points keyed by id.
func (g *Grid) Points() map[int]Point {
	out := make(map[int]Point, len(g.pts))
	for id, p := range g.pts {
		out[id] = p
	}
	return out
}
