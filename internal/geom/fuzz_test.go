package geom

import (
	"math"
	"sort"
	"testing"

	"sinrmac/internal/rng"
)

// FuzzPointDistance fuzzes the distance helpers the r²-domain rewrite leans
// on: Dist must be exactly Sqrt∘DistSq (that composition is what makes
// squared-domain comparisons interchangeable with distance comparisons),
// both must be symmetric, and the monotonicity of a correctly rounded Sqrt
// must carry squared-domain orderings into the distance domain.
func FuzzPointDistance(f *testing.F) {
	f.Add(0.0, 0.0, 3.0, 4.0, 5.0)
	f.Add(1.5, -2.25, 1.5, -2.25, 0.0)
	f.Add(1e-300, 0.0, -1e-300, 0.0, 1e-280)
	f.Add(1e150, 1e150, -1e150, -1e150, 1.0)
	f.Add(0.1, 0.2, 0.30000000000000004, 0.4, 0.28284271247461906)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, r float64) {
		p := Point{X: x1, Y: y1}
		q := Point{X: x2, Y: y2}
		d := p.Dist(q)
		dd := p.DistSq(q)
		if want := math.Sqrt(dd); d != want && !(math.IsNaN(d) && math.IsNaN(want)) {
			t.Fatalf("Dist(%v,%v)=%x, Sqrt(DistSq)=%x", p, q, math.Float64bits(d), math.Float64bits(want))
		}
		if back := q.Dist(p); d != back && !(math.IsNaN(d) && math.IsNaN(back)) {
			t.Fatalf("Dist not symmetric: %x vs %x", math.Float64bits(d), math.Float64bits(back))
		}
		if back := q.DistSq(p); dd != back && !(math.IsNaN(dd) && math.IsNaN(back)) {
			t.Fatalf("DistSq not symmetric: %x vs %x", math.Float64bits(dd), math.Float64bits(back))
		}
		if self := p.Dist(p); !math.IsNaN(x1+y1) && self != 0 {
			t.Fatalf("Dist(p,p) = %v, want 0", self)
		}
		// Sqrt monotonicity: squared-domain orderings against r·r survive
		// the root, which is why grid predicates may cull on DistSq ≤ r²
		// while the exact tier recomputes with Dist.
		if r >= 0 && !math.IsNaN(dd) {
			rr := r * r
			if dd <= rr && d > math.Sqrt(rr) {
				t.Fatalf("DistSq=%g ≤ r²=%g but Dist=%g > Sqrt(r²)=%g", dd, rr, d, math.Sqrt(rr))
			}
			if dd > rr && d < math.Sqrt(rr) {
				t.Fatalf("DistSq=%g > r²=%g but Dist=%g < Sqrt(r²)=%g", dd, rr, d, math.Sqrt(rr))
			}
		}
	})
}

// FuzzGridQueryAgreement fuzzes the three grid range queries against a
// brute-force scan and against each other. After the r² rewrite all three
// use the same DistSq ≤ r·r predicate, so they must agree exactly — on
// borderline points sitting on the query circle included.
func FuzzGridQueryAgreement(f *testing.F) {
	f.Add(uint64(1), uint8(12), 5.0, 5.0, 3.0)
	f.Add(uint64(7), uint8(40), 0.0, 0.0, 0.0)
	f.Add(uint64(99), uint8(3), 25.0, 25.0, 40.0)
	f.Add(uint64(0xbeef), uint8(20), -5.0, 60.0, 12.5)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, qx, qy, r float64) {
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(r) {
			t.Skip("NaN query")
		}
		// Keep the query commensurate with the deployment so cells stay
		// enumerable; the interesting behaviour is on the circle boundary,
		// not at astronomic magnitudes.
		qx = math.Mod(qx, 100)
		qy = math.Mod(qy, 100)
		r = math.Abs(math.Mod(r, 80))
		n := int(nRaw)%48 + 1
		src := rng.New(seed)
		g := NewGrid(1 + src.Float64()*7)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: src.Float64() * 50, Y: src.Float64() * 50}
			if i > 0 && src.Bernoulli(0.25) {
				// Plant points exactly on the query circle to force the
				// boundary of the DistSq ≤ r² predicate.
				theta := src.Float64() * 2 * math.Pi
				pts[i] = Point{X: qx + r*math.Cos(theta), Y: qy + r*math.Sin(theta)}
			}
			g.Insert(i, pts[i])
		}
		q := Point{X: qx, Y: qy}
		rr := r * r
		var brute []int
		for i, p := range pts {
			if p.DistSq(q) <= rr {
				brute = append(brute, i)
			}
		}
		sort.Ints(brute)
		nb := append([]int(nil), g.Neighborhood(q, r)...)
		sort.Ints(nb)
		aw := g.AppendWithin(nil, q, r)
		sort.Ints(aw)
		var visited []int
		g.AnyWithin(q, r, func(id int) bool {
			visited = append(visited, id)
			return false
		})
		sort.Ints(visited)
		for name, got := range map[string][]int{
			"Neighborhood": nb, "AppendWithin": aw, "AnyWithin": visited,
		} {
			if len(got) != len(brute) {
				t.Fatalf("%s returned %v, brute force says %v (q=%v r=%v)", name, got, brute, q, r)
			}
			for i := range got {
				if got[i] != brute[i] {
					t.Fatalf("%s returned %v, brute force says %v (q=%v r=%v)", name, got, brute, q, r)
				}
			}
		}
		// AnyWithin's early-exit answer must match membership for each id.
		for _, want := range brute {
			if !g.AnyWithin(q, r, func(id int) bool { return id == want }) {
				t.Fatalf("AnyWithin missed id %d at DistSq=%g ≤ r²=%g", want, pts[want].DistSq(q), rr)
			}
		}
	})
}

// FuzzMinPairwiseDist fuzzes the gridded minimum-distance scan against the
// quadratic reference. The grid path minimises DistSq and takes a single
// root at the end; the brute path does the same, so the results must be
// bit-identical whichever path the size heuristic picks.
func FuzzMinPairwiseDist(f *testing.F) {
	f.Add(uint64(3), uint8(10), 50.0)
	f.Add(uint64(11), uint8(200), 50.0) // forces the grid path (n > 64)
	f.Add(uint64(42), uint8(130), 1e-6) // near-coincident cloud
	f.Add(uint64(123), uint8(90), 5e4)  // sparse: grid falls back to brute
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, side float64) {
		if math.IsNaN(side) || math.IsInf(side, 0) {
			t.Skip("non-finite side")
		}
		side = math.Abs(side)
		if side > 1e9 {
			side = math.Mod(side, 1e9)
		}
		n := int(nRaw) + 2
		src := rng.New(seed)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: src.Float64() * side, Y: src.Float64() * side}
		}
		if src.Bernoulli(0.3) {
			pts[n-1] = pts[0] // duplicate point: minimum distance exactly 0
		}
		got := MinPairwiseDist(pts)
		want := minPairwiseBrute(pts)
		if got != want {
			t.Fatalf("n=%d side=%g: MinPairwiseDist=%x, brute=%x",
				n, side, math.Float64bits(got), math.Float64bits(want))
		}
	})
}
