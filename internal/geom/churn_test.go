package geom

import (
	"math"
	"testing"

	"sinrmac/internal/rng"
)

// TestGridRemoveMove drives a random insert/move/remove schedule and checks
// the mutated grid answers every query exactly like a grid rebuilt from the
// live point set.
func TestGridRemoveMove(t *testing.T) {
	src := rng.New(0x96d)
	g := NewGrid(1.5)
	live := map[int]Point{}
	next := 0
	randPoint := func() Point {
		return Point{X: src.Float64()*20 - 10, Y: src.Float64()*20 - 10}
	}
	for step := 0; step < 400; step++ {
		switch op := src.Intn(3); {
		case op == 0 || len(live) == 0:
			p := randPoint()
			g.Insert(next, p)
			live[next] = p
			next++
		case op == 1:
			for id := range live {
				p := randPoint()
				g.Move(id, p)
				live[id] = p
				break
			}
		default:
			for id := range live {
				g.Remove(id)
				delete(live, id)
				break
			}
		}
		if g.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, g.Len(), len(live))
		}
		if step%20 != 0 {
			continue
		}
		fresh := NewGrid(1.5)
		for id, p := range live {
			fresh.Insert(id, p)
		}
		q := randPoint()
		r := src.Float64() * 6
		got, want := g.Neighborhood(q, r), fresh.Neighborhood(q, r)
		if len(got) != len(want) {
			t.Fatalf("step %d: Neighborhood sizes %d vs %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: Neighborhood diverged: %v vs %v", step, got, want)
			}
		}
		pred := func(id int) bool { return id%2 == 0 }
		if g.AnyWithin(q, r, pred) != fresh.AnyWithin(q, r, pred) {
			t.Fatalf("step %d: AnyWithin diverged", step)
		}
	}
	// Removing an unknown id and moving an unknown id are safe.
	g.Remove(1 << 20)
	g.Move(1<<20, Point{X: 0, Y: 0})
	if _, ok := g.Points()[1<<20]; !ok {
		t.Fatal("Move of an unknown id did not insert it")
	}
}

// cellIndexEqual compares a churned index against a freshly built one on
// the same points: same absolute lattice cell per node, same per-cell
// membership. Dense ids may differ (the churned index appends new cells and
// keeps emptied ones), so the comparison goes through absolute coordinates.
func cellIndexEqual(t *testing.T, label string, churned, fresh *CellIndex, points []Point) {
	t.Helper()
	absCoord := func(ci *CellIndex, c int) (int, int) {
		cx, cy := ci.Coord(c)
		return ci.minCX + cx, ci.minCY + cy
	}
	for i := range points {
		gx, gy := absCoord(churned, churned.CellOf(i))
		wx, wy := absCoord(fresh, fresh.CellOf(i))
		if gx != wx || gy != wy {
			t.Fatalf("%s: node %d in cell (%d,%d), fresh build says (%d,%d)", label, i, gx, gy, wx, wy)
		}
	}
	for c := 0; c < fresh.NumCells(); c++ {
		var some int32 = -1
		for _, id := range fresh.Nodes(c) {
			some = id
			break
		}
		if some < 0 {
			continue
		}
		gc := churned.CellOf(int(some))
		got, want := churned.Nodes(gc), fresh.Nodes(c)
		if len(got) != len(want) {
			t.Fatalf("%s: cell membership sizes %d vs %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: cell membership diverged: %v vs %v", label, got, want)
			}
		}
	}
}

// TestCellIndexApplyChurn drives random in-lattice churn — moves, shrinks
// and growths — against a from-scratch rebuild.
func TestCellIndexApplyChurn(t *testing.T) {
	src := rng.New(0xce11)
	const cell = 2.5
	// Points strictly inside a fixed box, so every churned position stays in
	// the original lattice.
	randIn := func() Point {
		return Point{X: src.Float64() * 30, Y: src.Float64() * 30}
	}
	points := make([]Point, 80)
	for i := range points {
		points[i] = randIn()
	}
	// Pin the lattice corners so the span covers the whole box.
	points[0] = Point{X: 0.1, Y: 0.1}
	points[1] = Point{X: 29.9, Y: 29.9}
	ci := NewCellIndex(points, cell)
	for round := 0; round < 30; round++ {
		var dirty []int
		switch src.Intn(3) {
		case 0: // moves
			for k := 0; k < 1+src.Intn(5); k++ {
				id := 2 + src.Intn(len(points)-2)
				points[id] = randIn()
				dirty = append(dirty, id)
			}
		case 1: // shrink
			if len(points) > 10 {
				points = points[:len(points)-1-src.Intn(3)]
			}
		default: // grow
			for k := 0; k < 1+src.Intn(4); k++ {
				dirty = append(dirty, len(points))
				points = append(points, randIn())
			}
		}
		if !ci.ApplyChurn(points, dirty) {
			t.Fatalf("round %d: in-lattice churn rejected", round)
		}
		cellIndexEqual(t, "round", ci, NewCellIndex(points, cell), points)
	}
}

// TestCellIndexApplyChurnOutOfLattice checks the rebuild signal: a dirty
// point outside the original lattice rejects the churn and leaves the index
// untouched.
func TestCellIndexApplyChurnOutOfLattice(t *testing.T) {
	points := []Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 9, Y: 3}}
	ci := NewCellIndex(points, 2)
	before := make([]int, len(points))
	for i := range points {
		before[i] = ci.CellOf(i)
	}
	churned := append([]Point(nil), points...)
	churned[1] = Point{X: -50, Y: 0}
	if ci.ApplyChurn(churned, []int{1}) {
		t.Fatal("out-of-lattice churn accepted")
	}
	for i := range points {
		if ci.CellOf(i) != before[i] {
			t.Fatal("rejected churn mutated the index")
		}
	}
	// The same churn confined to the lattice is accepted.
	churned[1] = Point{X: 1, Y: 1}
	if !ci.ApplyChurn(churned, []int{1}) {
		t.Fatal("in-lattice churn rejected")
	}
	cellIndexEqual(t, "after", ci, NewCellIndex(churned, 2), churned)
}

// TestCellIndexChurnAllocSteadyState pins the apply-path property the churn
// benchmark relies on: once arenas have grown, a repeating churn cycle
// allocates nothing.
func TestCellIndexChurnAllocSteadyState(t *testing.T) {
	src := rng.New(0xa110)
	const cell = 2.0
	points := make([]Point, 200)
	for i := range points {
		points[i] = Point{X: src.Float64() * 40, Y: src.Float64() * 40}
	}
	ci := NewCellIndex(points, cell)
	away := append([]Point(nil), points...)
	dirty := []int{3, 17, 60, 99, 150}
	for _, id := range dirty {
		away[id] = Point{X: math.Min(points[id].X+3, 39.9), Y: points[id].Y}
	}
	home := append([]Point(nil), points...)
	// Warm both phases, then measure.
	ci.ApplyChurn(away, dirty)
	ci.ApplyChurn(home, dirty)
	i := 0
	phases := [][]Point{away, home}
	allocs := testing.AllocsPerRun(50, func() {
		if !ci.ApplyChurn(phases[i%2], dirty) {
			t.Fatal("steady-state churn rejected")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ApplyChurn allocates %.1f times per op, want 0", allocs)
	}
}
