package geom

import "math"

// CellIndex is an immutable, densely numbered decomposition of an indexed
// point set into the square lattice cells a Grid with the same cell size
// uses (cell c of a point p is (floor(p.X/cell), floor(p.Y/cell))). Where
// Grid answers per-point range queries, CellIndex answers the aggregate
// queries the hierarchical SINR bounds tier is built on: which cell does a
// node live in, which nodes live in a cell, and what are the lattice
// coordinates of a cell so that conservative cell-pair distance bounds
// (CellOffsetDistBounds) can be looked up by integer offset. The tighter
// per-point variant (PointCellDistBounds) serves callers refining a single
// query point against a cell.
//
// Cells are numbered densely in first-occurrence order of the input points,
// so the numbering is deterministic for a fixed point slice. The node lists
// are stored in one CSR arena; a CellIndex performs no allocation after
// construction and is safe for concurrent readers.
//
// The index is not strictly immutable: ApplyChurn re-buckets a changed
// point set in place (appending dense ids for cells that first become
// occupied inside the original lattice rectangle) so that churn epochs can
// patch the CSR instead of rebuilding the decomposition. Mutation and
// concurrent reads must not overlap; between mutations concurrent readers
// remain safe.
type CellIndex struct {
	cell         float64
	minCX, minCY int
	spanX, spanY int

	cellOf []int32           // node id -> dense cell id
	start  []int32           // CSR offsets: nodes of cell c are nodes[start[c]:start[c+1]]
	nodes  []int32           // node ids grouped by cell
	cx, cy []int32           // dense cell id -> lattice coords relative to (minCX, minCY)
	ids    map[cellKey]int32 // lattice cell -> dense id, retained for ApplyChurn
	cursor []int32           // CSR scatter scratch, reused across ApplyChurn calls
}

// NewCellIndex decomposes the points into square cells of the given side
// length. It panics if cell is not positive, matching NewGrid.
func NewCellIndex(points []Point, cell float64) *CellIndex {
	if cell <= 0 || math.IsNaN(cell) {
		panic("geom: cell index cell size must be positive")
	}
	n := len(points)
	ci := &CellIndex{cell: cell, cellOf: make([]int32, n)}
	ids := make(map[cellKey]int32, n)
	keys := make([]cellKey, 0, n)
	for i, p := range points {
		k := cellKey{cx: int(math.Floor(p.X / cell)), cy: int(math.Floor(p.Y / cell))}
		id, ok := ids[k]
		if !ok {
			id = int32(len(keys))
			ids[k] = id
			keys = append(keys, k)
		}
		ci.cellOf[i] = id
	}
	ci.ids = ids
	nc := len(keys)
	ci.cx = make([]int32, nc)
	ci.cy = make([]int32, nc)
	if nc > 0 {
		ci.minCX, ci.minCY = keys[0].cx, keys[0].cy
		maxCX, maxCY := ci.minCX, ci.minCY
		for _, k := range keys {
			ci.minCX = min(ci.minCX, k.cx)
			ci.minCY = min(ci.minCY, k.cy)
			maxCX = max(maxCX, k.cx)
			maxCY = max(maxCY, k.cy)
		}
		ci.spanX, ci.spanY = maxCX-ci.minCX, maxCY-ci.minCY
		for c, k := range keys {
			ci.cx[c] = int32(k.cx - ci.minCX)
			ci.cy[c] = int32(k.cy - ci.minCY)
		}
	}
	// CSR fill: count, prefix, scatter.
	counts := make([]int32, nc+1)
	for _, c := range ci.cellOf {
		counts[c+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	ci.start = counts
	ci.nodes = make([]int32, n)
	cursor := make([]int32, nc)
	copy(cursor, ci.start[:nc])
	for i, c := range ci.cellOf {
		ci.nodes[cursor[c]] = int32(i)
		cursor[c]++
	}
	return ci
}

// CellSize returns the cell side length.
func (ci *CellIndex) CellSize() float64 { return ci.cell }

// NumCells returns the number of occupied cells.
func (ci *CellIndex) NumCells() int { return len(ci.cx) }

// Span returns the lattice extent: occupied cell coordinates lie in
// [0, spanX] × [0, spanY], so offsets between two occupied cells lie in
// [-spanX, spanX] × [-spanY, spanY].
func (ci *CellIndex) Span() (spanX, spanY int) { return ci.spanX, ci.spanY }

// CellOf returns the dense id of the cell containing node id.
func (ci *CellIndex) CellOf(id int) int { return int(ci.cellOf[id]) }

// Coord returns the lattice coordinates of cell c, relative to the minimum
// occupied cell (both components are in [0, Span()]).
func (ci *CellIndex) Coord(c int) (cx, cy int) { return int(ci.cx[c]), int(ci.cy[c]) }

// Nodes returns the ids of the nodes in cell c. The slice aliases the
// index's arena and must not be modified.
func (ci *CellIndex) Nodes(c int) []int32 { return ci.nodes[ci.start[c]:ci.start[c+1]] }

// PointCoord returns the lattice coordinates of the cell containing p,
// relative to the minimum occupied cell (the Coord convention). The result
// may fall outside [0, Span()] when p lies outside the occupied lattice.
func (ci *CellIndex) PointCoord(p Point) (cx, cy int) {
	return int(math.Floor(p.X/ci.cell)) - ci.minCX, int(math.Floor(p.Y/ci.cell)) - ci.minCY
}

// CellAt returns the dense id of the occupied cell at the given relative
// lattice coordinates (the Coord convention), or -1 when no node has ever
// occupied that cell. It is the inverse of Coord and lets callers walk the
// lattice around a point — the sharded evaluator's candidate enumeration
// and cell-level culling are built on it.
func (ci *CellIndex) CellAt(cx, cy int) int {
	c, ok := ci.ids[cellKey{cx: cx + ci.minCX, cy: cy + ci.minCY}]
	if !ok {
		return -1
	}
	return int(c)
}

// Rect returns the closed square region of cell c in plane coordinates.
func (ci *CellIndex) Rect(c int) Rect {
	x := float64(ci.minCX+int(ci.cx[c])) * ci.cell
	y := float64(ci.minCY+int(ci.cy[c])) * ci.cell
	return Rect{Min: Point{X: x, Y: y}, Max: Point{X: x + ci.cell, Y: y + ci.cell}}
}

// ApplyChurn re-buckets a churned point set in place. points is the full
// post-epoch position slice (node i at points[i], so the index afterwards
// covers exactly len(points) nodes — shrinking or growing the node count is
// expressed by the slice length) and dirty lists the node ids whose position
// changed, including ids appended at the end.
//
// It returns false — leaving the index completely unchanged — when any dirty
// point falls outside the lattice rectangle spanned by the original
// decomposition: the per-offset tables callers build on top of Span would no
// longer cover the deployment, so they must rebuild from scratch. Cells that
// first become occupied inside the rectangle are appended to the dense
// numbering (a cell emptied by churn keeps its id, so NumCells never
// shrinks), and the CSR arena is rebuilt by one count/prefix/scatter pass —
// O(len(points) + NumCells), with no allocation once the arenas have grown
// to their steady-state sizes.
func (ci *CellIndex) ApplyChurn(points []Point, dirty []int) bool {
	// Pass 1 is read-only: if any dirty point escapes the lattice the index
	// must stay untouched so the caller can still read it while rebuilding.
	for _, id := range dirty {
		p := points[id]
		kx := int(math.Floor(p.X / ci.cell))
		ky := int(math.Floor(p.Y / ci.cell))
		if kx < ci.minCX || kx > ci.minCX+ci.spanX || ky < ci.minCY || ky > ci.minCY+ci.spanY {
			return false
		}
	}
	n := len(points)
	if n <= cap(ci.cellOf) {
		ci.cellOf = ci.cellOf[:n]
	} else {
		grown := make([]int32, n)
		copy(grown, ci.cellOf)
		ci.cellOf = grown
	}
	for _, id := range dirty {
		p := points[id]
		k := cellKey{cx: int(math.Floor(p.X / ci.cell)), cy: int(math.Floor(p.Y / ci.cell))}
		c, ok := ci.ids[k]
		if !ok {
			c = int32(len(ci.cx))
			ci.ids[k] = c
			ci.cx = append(ci.cx, int32(k.cx-ci.minCX))
			ci.cy = append(ci.cy, int32(k.cy-ci.minCY))
		}
		ci.cellOf[id] = c
	}
	// CSR rebuild: count, prefix, scatter, reusing the arenas.
	nc := len(ci.cx)
	if nc+1 <= cap(ci.start) {
		ci.start = ci.start[:nc+1]
	} else {
		ci.start = make([]int32, nc+1)
	}
	for c := range ci.start {
		ci.start[c] = 0
	}
	for _, c := range ci.cellOf {
		ci.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		ci.start[c+1] += ci.start[c]
	}
	if n <= cap(ci.nodes) {
		ci.nodes = ci.nodes[:n]
	} else {
		ci.nodes = make([]int32, n)
	}
	if nc <= cap(ci.cursor) {
		ci.cursor = ci.cursor[:nc]
	} else {
		ci.cursor = make([]int32, nc)
	}
	copy(ci.cursor, ci.start[:nc])
	for i, c := range ci.cellOf {
		ci.nodes[ci.cursor[c]] = int32(i)
		ci.cursor[c]++
	}
	return true
}

// CellOffsetDistBounds returns conservative bounds on the distance between
// any point of one square lattice cell and any point of the cell (dx, dy)
// lattice steps away, for cells of the given side length: any such pair is
// at distance in [dmin, dmax]. The bounds depend only on the offset, which
// is what lets the SINR bounds tier precompute per-offset power bounds once
// and share them across every receiver-cell/transmitter-cell pair.
//
//sinrlint:allow powfree construction-time: called once per lattice offset when bounds/shard tables are built, never per slot
func CellOffsetDistBounds(dx, dy int, cell float64) (dmin, dmax float64) {
	ax, ay := dx, dy
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	gx, gy := float64(ax-1), float64(ay-1)
	if gx < 0 {
		gx = 0
	}
	if gy < 0 {
		gy = 0
	}
	dmin = cell * math.Hypot(gx, gy)
	dmax = cell * math.Hypot(float64(ax+1), float64(ay+1))
	return dmin, dmax
}

// PointCellDistBounds returns the minimum and maximum distance from p to
// the closed square cell with absolute lattice coordinates (cx, cy) and the
// given side length: every point q of the cell satisfies
// dmin <= p.Dist(q) <= dmax. The minimum is attained by clamping p into the
// cell, the maximum at the corner farthest from p.
func PointCellDistBounds(p Point, cx, cy int, cell float64) (dmin, dmax float64) {
	lox, hix := float64(cx)*cell, float64(cx+1)*cell
	loy, hiy := float64(cy)*cell, float64(cy+1)*cell
	nx := math.Min(math.Max(p.X, lox), hix)
	ny := math.Min(math.Max(p.Y, loy), hiy)
	dmin = p.Dist(Point{X: nx, Y: ny})
	fx := hix
	if p.X-lox > hix-p.X {
		fx = lox
	}
	fy := hiy
	if p.Y-loy > hiy-p.Y {
		fy = loy
	}
	dmax = p.Dist(Point{X: fx, Y: fy})
	return dmin, dmax
}
