package geom

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"sinrmac/internal/rng"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dist(tc.b); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Dist = %v, want %v", got, tc.want)
			}
			if got := tc.a.DistSq(tc.b); math.Abs(got-tc.want*tc.want) > 1e-9 {
				t.Fatalf("DistSq = %v, want %v", got, tc.want*tc.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		a := Point{src.Float64() * 100, src.Float64() * 100}
		b := Point{src.Float64() * 100, src.Float64() * 100}
		c := Point{src.Float64() * 100, src.Float64() * 100}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{2, 3}, Point{-1, 1})
	if r.Min != (Point{-1, 1}) || r.Max != (Point{2, 3}) {
		t.Fatalf("NewRect did not normalize corners: %+v", r)
	}
	if got := r.Width(); got != 3 {
		t.Fatalf("Width = %v", got)
	}
	if got := r.Height(); got != 2 {
		t.Fatalf("Height = %v", got)
	}
	if got := r.Area(); got != 6 {
		t.Fatalf("Area = %v", got)
	}
	if got := r.Center(); got != (Point{0.5, 2}) {
		t.Fatalf("Center = %v", got)
	}
	if !r.Contains(Point{0, 2}) {
		t.Fatal("Contains(interior) = false")
	}
	if !r.Contains(Point{-1, 1}) {
		t.Fatal("Contains(corner) = false")
	}
	if r.Contains(Point{5, 5}) {
		t.Fatal("Contains(exterior) = true")
	}
	e := r.Expand(1)
	if e.Min != (Point{-2, 0}) || e.Max != (Point{3, 4}) {
		t.Fatalf("Expand = %+v", e)
	}
}

func TestBoundingBox(t *testing.T) {
	if got := BoundingBox(nil); got != (Rect{}) {
		t.Fatalf("BoundingBox(nil) = %+v", got)
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	box := BoundingBox(pts)
	if box.Min != (Point{-2, -1}) || box.Max != (Point{4, 5}) {
		t.Fatalf("BoundingBox = %+v", box)
	}
	for _, p := range pts {
		if !box.Contains(p) {
			t.Fatalf("bounding box does not contain %v", p)
		}
	}
}

func TestMinPairwiseDistSmall(t *testing.T) {
	if got := MinPairwiseDist(nil); !math.IsInf(got, 1) {
		t.Fatalf("MinPairwiseDist(nil) = %v", got)
	}
	if got := MinPairwiseDist([]Point{{0, 0}}); !math.IsInf(got, 1) {
		t.Fatalf("MinPairwiseDist(1 point) = %v", got)
	}
	pts := []Point{{0, 0}, {10, 0}, {10.5, 0}, {20, 20}}
	if got := MinPairwiseDist(pts); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MinPairwiseDist = %v, want 0.5", got)
	}
}

func TestMinPairwiseDistLargeMatchesBrute(t *testing.T) {
	src := rng.New(99)
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{src.Float64() * 50, src.Float64() * 50}
	}
	want := minPairwiseBrute(pts)
	got := MinPairwiseDist(pts)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("grid min dist %v != brute force %v", got, want)
	}
}

func TestMaxPairwiseDist(t *testing.T) {
	if got := MaxPairwiseDist([]Point{{1, 1}}); got != 0 {
		t.Fatalf("MaxPairwiseDist(single) = %v", got)
	}
	pts := []Point{{0, 0}, {3, 4}, {1, 1}}
	if got := MaxPairwiseDist(pts); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MaxPairwiseDist = %v", got)
	}
}

func TestNormalizeMinDist(t *testing.T) {
	pts := []Point{{0, 0}, {0, 2}, {0, 10}}
	scale := NormalizeMinDist(pts, 1)
	if math.Abs(scale-0.5) > 1e-12 {
		t.Fatalf("scale = %v, want 0.5", scale)
	}
	if got := MinPairwiseDist(pts); math.Abs(got-1) > 1e-12 {
		t.Fatalf("min dist after normalize = %v", got)
	}
}

func TestNormalizeMinDistDegenerate(t *testing.T) {
	pts := []Point{{1, 1}}
	if scale := NormalizeMinDist(pts, 1); scale != 1 {
		t.Fatalf("scale for single point = %v", scale)
	}
	same := []Point{{2, 2}, {2, 2}}
	if scale := NormalizeMinDist(same, 1); scale != 1 {
		t.Fatalf("scale for coincident points = %v", scale)
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0) did not panic")
		}
	}()
	NewGrid(0)
}

func TestGridNeighborhood(t *testing.T) {
	g := NewGrid(1)
	pts := []Point{{0, 0}, {0.5, 0}, {3, 0}, {0, 2.5}, {-1, -1}}
	for i, p := range pts {
		g.Insert(i, p)
	}
	if g.Len() != len(pts) {
		t.Fatalf("Len = %d", g.Len())
	}
	got := g.Neighborhood(Point{0, 0}, 1.5)
	want := []int{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighborhood = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighborhood = %v, want %v", got, want)
		}
	}
	if got := g.Neighborhood(Point{0, 0}, -1); got != nil {
		t.Fatalf("negative radius neighborhood = %v", got)
	}
}

func TestGridNeighborhoodMatchesBrute(t *testing.T) {
	src := rng.New(7)
	g := NewGrid(2)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{src.Float64() * 40, src.Float64() * 40}
		g.Insert(i, pts[i])
	}
	center := Point{20, 20}
	for _, r := range []float64{0.5, 3, 10, 60} {
		got := g.Neighborhood(center, r)
		want := 0
		for _, p := range pts {
			if p.Dist(center) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("radius %v: got %d points, want %d", r, len(got), want)
		}
	}
}

func TestGridAnnulusCount(t *testing.T) {
	g := NewGrid(1)
	g.Insert(0, Point{1, 0}) // d=1
	g.Insert(1, Point{2, 0}) // d=2
	g.Insert(2, Point{5, 0}) // d=5
	g.Insert(3, Point{0, 0}) // d=0
	center := Point{0, 0}
	if got := g.AnnulusCount(center, 0.5, 2); got != 2 {
		t.Fatalf("AnnulusCount(0.5,2) = %d, want 2", got)
	}
	if got := g.AnnulusCount(center, 2, 10); got != 1 {
		t.Fatalf("AnnulusCount(2,10) = %d, want 1", got)
	}
	if got := g.AnnulusCount(center, 0, 0.1); got != 0 {
		t.Fatalf("AnnulusCount(0,0.1) = %d, want 0", got)
	}
}

func TestGridPointsCopy(t *testing.T) {
	g := NewGrid(1)
	g.Insert(1, Point{1, 2})
	m := g.Points()
	m[1] = Point{9, 9}
	if got := g.Points()[1]; got != (Point{1, 2}) {
		t.Fatalf("Points returned shared map; stored point mutated to %v", got)
	}
}

// Property: every point returned by Neighborhood really lies within the
// requested radius.
func TestQuickNeighborhoodWithinRadius(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g := NewGrid(1 + src.Float64()*3)
		pts := make([]Point, 50)
		for i := range pts {
			pts[i] = Point{src.Float64() * 30, src.Float64() * 30}
			g.Insert(i, pts[i])
		}
		center := Point{src.Float64() * 30, src.Float64() * 30}
		r := src.Float64() * 15
		for _, id := range g.Neighborhood(center, r) {
			if pts[id].Dist(center) > r+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinPairwiseDist1000(b *testing.B) {
	src := rng.New(5)
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{src.Float64() * 100, src.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPairwiseDist(pts)
	}
}

func BenchmarkGridNeighborhood(b *testing.B) {
	src := rng.New(6)
	g := NewGrid(2)
	for i := 0; i < 2000; i++ {
		g.Insert(i, Point{src.Float64() * 100, src.Float64() * 100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Neighborhood(Point{50, 50}, 10)
	}
}

// TestGridAnyWithin checks the non-allocating existence query against the
// allocating Neighborhood reference on random point sets.
func TestGridAnyWithin(t *testing.T) {
	src := rng.New(31)
	g := NewGrid(3)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: src.Float64() * 100, Y: src.Float64() * 100}
		g.Insert(i, pts[i])
	}
	always := func(int) bool { return true }
	for trial := 0; trial < 200; trial++ {
		p := Point{X: src.Float64() * 120, Y: src.Float64() * 120}
		r := src.Float64() * 15
		want := len(g.Neighborhood(p, r)) > 0
		if got := g.AnyWithin(p, r, always); got != want {
			t.Fatalf("AnyWithin(%v, %v) = %v, Neighborhood says %v", p, r, got, want)
		}
	}
	// The predicate restricts matches: only even ids count.
	even := func(id int) bool { return id%2 == 0 }
	for trial := 0; trial < 200; trial++ {
		p := Point{X: src.Float64() * 120, Y: src.Float64() * 120}
		r := src.Float64() * 15
		want := false
		for _, id := range g.Neighborhood(p, r) {
			if id%2 == 0 {
				want = true
				break
			}
		}
		if got := g.AnyWithin(p, r, even); got != want {
			t.Fatalf("AnyWithin(even) mismatch at %v r=%v", p, r)
		}
	}
	if g.AnyWithin(Point{0, 0}, -1, always) {
		t.Fatal("negative radius matched")
	}
}

// TestGridAnyWithinAllocFree pins the property the fast SINR evaluator
// relies on: the existence query allocates nothing.
func TestGridAnyWithinAllocFree(t *testing.T) {
	g := NewGrid(2)
	for i := 0; i < 100; i++ {
		g.Insert(i, Point{X: float64(i % 10), Y: float64(i / 10)})
	}
	pred := func(id int) bool { return id == 99 }
	allocs := testing.AllocsPerRun(50, func() {
		g.AnyWithin(Point{5, 5}, 4, pred)
	})
	if allocs != 0 {
		t.Fatalf("AnyWithin allocates %.1f objects per query, want 0", allocs)
	}
}

// TestGridAppendWithinMatchesNeighborhood checks the sparse-path ball
// enumeration against the sorted reference query: same membership (the
// AnyWithin predicate), unsorted but duplicate-free, reusing the caller's
// buffer without allocating.
func TestGridAppendWithinMatchesNeighborhood(t *testing.T) {
	src := rng.New(41)
	g := NewGrid(3)
	for i := 0; i < 400; i++ {
		g.Insert(i, Point{X: src.Float64() * 120, Y: src.Float64() * 120})
	}
	var buf []int
	for trial := 0; trial < 300; trial++ {
		p := Point{X: src.Float64() * 140, Y: src.Float64() * 140}
		r := src.Float64() * 18
		want := g.Neighborhood(p, r)
		buf = g.AppendWithin(buf[:0], p, r)
		got := append([]int(nil), buf...)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("AppendWithin(%v, %v) found %d points, Neighborhood %d", p, r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AppendWithin(%v, %v) mismatch at %d: %d vs %d", p, r, i, got[i], want[i])
			}
		}
	}
	if got := g.AppendWithin(nil, Point{0, 0}, -1); got != nil {
		t.Fatal("negative radius appended points")
	}
}

// TestGridAppendWithinAllocFree pins the property the sparse sender-centric
// SINR path relies on: enumerating a ball into a warm buffer allocates
// nothing.
func TestGridAppendWithinAllocFree(t *testing.T) {
	g := NewGrid(2)
	for i := 0; i < 100; i++ {
		g.Insert(i, Point{X: float64(i % 10), Y: float64(i / 10)})
	}
	buf := make([]int, 0, 128)
	allocs := testing.AllocsPerRun(50, func() {
		buf = g.AppendWithin(buf[:0], Point{5, 5}, 4)
	})
	if allocs != 0 {
		t.Fatalf("AppendWithin allocates %.1f objects per query, want 0", allocs)
	}
}

// TestGridAppendWithinBoundary pins the membership rule at geometric edge
// cases: a query point lying exactly on a cell edge (so its cell key is
// decided by the floor convention), points exactly at distance r, and a
// zero radius, which must return exactly the points coincident with the
// query. These are the cases the sparse candidate enumeration and the
// bounds tier's near/far split both depend on agreeing about.
func TestGridAppendWithinBoundary(t *testing.T) {
	g := NewGrid(1)
	pts := []Point{
		{X: 0, Y: 0},  // on the corner shared by four cells
		{X: 1, Y: 0},  // on a vertical cell edge
		{X: 2, Y: 0},  // exactly at distance 2 from the origin
		{X: 0, Y: -1}, // on a horizontal edge, negative coordinates
		{X: 0.5, Y: 0.5},
		{X: 0, Y: 0}, // coincident with point 0
	}
	for i, p := range pts {
		g.Insert(i, p)
	}
	cases := []struct {
		name string
		p    Point
		r    float64
		want []int
	}{
		{"zero-radius-at-point", Point{0, 0}, 0, []int{0, 5}},
		{"zero-radius-off-point", Point{0.25, 0}, 0, nil},
		{"edge-query-radius-one", Point{1, 0}, 1, []int{0, 1, 2, 4, 5}},
		{"corner-query-exact-distance", Point{0, 0}, 2, []int{0, 1, 2, 3, 4, 5}},
		{"corner-query-just-under", Point{0, 0}, 2 * (1 - 1e-12), []int{0, 1, 3, 4, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := append([]int(nil), g.AppendWithin(nil, tc.p, tc.r)...)
			sort.Ints(got)
			if len(got) != len(tc.want) {
				t.Fatalf("AppendWithin(%v, %v) = %v, want %v", tc.p, tc.r, got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("AppendWithin(%v, %v) = %v, want %v", tc.p, tc.r, got, tc.want)
				}
			}
			// The non-allocating existence probe must agree on every case.
			any := g.AnyWithin(tc.p, tc.r, func(int) bool { return true })
			if any != (len(tc.want) > 0) {
				t.Fatalf("AnyWithin(%v, %v) = %v disagrees with AppendWithin %v", tc.p, tc.r, any, tc.want)
			}
		})
	}
}

// TestCellIndexStructure checks the dense cell decomposition against the
// definition: every node lands in the cell its floored coordinates name,
// the CSR node lists partition the ids, and coordinates stay within Span.
func TestCellIndexStructure(t *testing.T) {
	src := rng.New(42)
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{X: src.Float64()*90 - 45, Y: src.Float64()*90 - 45}
	}
	const cell = 7.5
	ci := NewCellIndex(pts, cell)
	sx, sy := ci.Span()
	seen := make(map[int]bool, len(pts))
	for c := 0; c < ci.NumCells(); c++ {
		cx, cy := ci.Coord(c)
		if cx < 0 || cx > sx || cy < 0 || cy > sy {
			t.Fatalf("cell %d coord (%d,%d) outside span (%d,%d)", c, cx, cy, sx, sy)
		}
		rect := ci.Rect(c)
		for _, id := range ci.Nodes(c) {
			if seen[int(id)] {
				t.Fatalf("node %d listed in two cells", id)
			}
			seen[int(id)] = true
			if ci.CellOf(int(id)) != c {
				t.Fatalf("node %d: CellOf %d, listed under %d", id, ci.CellOf(int(id)), c)
			}
			if p := pts[id]; !rect.Contains(p) {
				t.Fatalf("node %d at %v outside its cell rect %v", id, p, rect)
			}
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("CSR lists cover %d of %d nodes", len(seen), len(pts))
	}
}

// TestCellDistBounds fuzzes the two distance-bound queries the SINR bounds
// tier is built on: for random point pairs, the distance must lie within
// the bounds of their cells' lattice offset, and within the point-to-cell
// bounds of either endpoint's cell. Conservativeness is what the bounds
// tier's decision-exactness rests on, so any violation is fatal.
func TestCellDistBounds(t *testing.T) {
	src := rng.New(7)
	const cell = 3.25
	for trial := 0; trial < 2000; trial++ {
		a := Point{X: src.Float64()*80 - 40, Y: src.Float64()*80 - 40}
		b := Point{X: src.Float64()*80 - 40, Y: src.Float64()*80 - 40}
		ax, ay := int(math.Floor(a.X/cell)), int(math.Floor(a.Y/cell))
		bx, by := int(math.Floor(b.X/cell)), int(math.Floor(b.Y/cell))
		d := a.Dist(b)
		dmin, dmax := CellOffsetDistBounds(bx-ax, by-ay, cell)
		if d < dmin*(1-1e-9) || d > dmax*(1+1e-9) {
			t.Fatalf("offset bounds [%g, %g] exclude distance %g (offset %d,%d)", dmin, dmax, d, bx-ax, by-ay)
		}
		pmin, pmax := PointCellDistBounds(a, bx, by, cell)
		if d < pmin*(1-1e-9) || d > pmax*(1+1e-9) {
			t.Fatalf("point-cell bounds [%g, %g] exclude distance %g", pmin, pmax, d)
		}
		// Point-to-cell bounds are tighter than (contained in) the pure
		// offset bounds, never looser.
		if pmin < dmin*(1-1e-9) || pmax > dmax*(1+1e-9) {
			t.Fatalf("point-cell bounds [%g, %g] looser than offset bounds [%g, %g]", pmin, pmax, dmin, dmax)
		}
	}
	// A point inside the queried cell has distance bound zero.
	if dmin, _ := PointCellDistBounds(Point{1, 1}, 0, 0, cell); dmin != 0 {
		t.Fatalf("point inside cell: dmin = %g, want 0", dmin)
	}
	// Symmetric offsets give identical bounds.
	for _, off := range [][2]int{{0, 0}, {1, 2}, {-3, 4}, {5, 0}} {
		amin, amax := CellOffsetDistBounds(off[0], off[1], cell)
		bmin, bmax := CellOffsetDistBounds(-off[0], -off[1], cell)
		if amin != bmin || amax != bmax {
			t.Fatalf("offset bounds not symmetric at %v", off)
		}
	}
}
