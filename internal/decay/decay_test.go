package decay

import (
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/graphs"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(16, 0.1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{DeltaBound: 0.5, EpsAck: 0.1},
		{DeltaBound: 16, EpsAck: 0},
		{DeltaBound: 16, EpsAck: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := DefaultConfig(16, 0.1)
	if got := cfg.PhaseLen(); got != 5 {
		t.Fatalf("PhaseLen = %d, want 5", got)
	}
	if cfg.AckPhases() <= 0 {
		t.Fatal("AckPhases not positive")
	}
	if cfg.AckSlots() != int64(cfg.AckPhases()*cfg.PhaseLen()) {
		t.Fatal("AckSlots inconsistent")
	}
	// Larger contention bound means longer phases and more of them.
	big := DefaultConfig(1024, 0.1)
	if big.PhaseLen() <= cfg.PhaseLen() || big.AckPhases() <= cfg.AckPhases() {
		t.Fatal("phase structure not monotone in DeltaBound")
	}
}

func TestAutomatonConstructorErrors(t *testing.T) {
	if _, err := NewAutomaton(Config{DeltaBound: 0, EpsAck: 0.1}, rng.New(1), nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewAutomaton(DefaultConfig(8, 0.1), nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// tick drives one automaton Tick with a throwaway pooled frame, returning
// whether the automaton transmitted.
func tick(a *Automaton) bool {
	var f sim.Frame
	return a.Tick(&f)
}

func TestAutomatonLifecycle(t *testing.T) {
	cfg := DefaultConfig(8, 0.1)
	aut, err := NewAutomaton(cfg, rng.New(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if aut.Active() || aut.Done() {
		t.Fatal("fresh automaton active")
	}
	if tick(aut) {
		t.Fatal("idle automaton transmitted")
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	if !aut.Active() {
		t.Fatal("not active after Start")
	}
	sent := 0
	for i := int64(0); i < cfg.AckSlots(); i++ {
		if tick(aut) {
			sent++
		}
	}
	if !aut.Done() {
		t.Fatal("automaton not done after AckSlots slots")
	}
	if sent == 0 {
		t.Fatal("automaton never transmitted")
	}
	aut.Abort()
	if aut.Active() || aut.Done() {
		t.Fatal("aborted automaton still active")
	}
}

func TestAutomatonFirstSlotAlwaysTransmits(t *testing.T) {
	// In slot 0 of every phase the transmission probability is 1.
	cfg := DefaultConfig(8, 0.1)
	aut, err := NewAutomaton(cfg, rng.New(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	for phase := 0; phase < 5; phase++ {
		if !tick(aut) {
			t.Fatalf("phase %d slot 0 did not transmit", phase)
		}
		for j := 1; j < cfg.PhaseLen(); j++ {
			tick(aut)
		}
	}
}

func TestAutomatonReceiveCallback(t *testing.T) {
	var got []core.Message
	aut, err := NewAutomaton(DefaultConfig(8, 0.1), rng.New(4), func(m core.Message) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	aut.Receive(nil)
	aut.Receive(&sim.Frame{Kind: sim.RegisterFrameKind("hm.data"), Msg: core.Message{ID: 9}})
	aut.Receive(&sim.Frame{Kind: FrameKind, Msg: core.Message{ID: 5, Origin: 2}})
	if len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("onData saw %+v", got)
	}
}

// bcastOnce is a minimal layer that issues a single broadcast at slot 0.
type bcastOnce struct {
	core.NopLayer
	mac  core.MAC
	msg  core.Message
	acks int
	rcvs []core.Message
	sent bool
}

func (l *bcastOnce) Attach(node int, mac core.MAC, src *rng.Source) { l.mac = mac }

func (l *bcastOnce) OnSlot(slot int64) {
	if !l.sent && l.msg.ID != 0 {
		l.mac.Bcast(slot, l.msg)
		l.sent = true
	}
}

func (l *bcastOnce) OnRcv(slot int64, m core.Message) { l.rcvs = append(l.rcvs, m) }
func (l *bcastOnce) OnAck(slot int64, m core.Message) { l.acks++ }

func TestDecayNodeSingleBroadcast(t *testing.T) {
	d, err := topology.Clusters(1, 6, sinr.DefaultParams(30), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewRecorder()
	cfg := DefaultConfig(8, 0.1)
	nodes := make([]sim.Node, d.NumNodes())
	layers := make([]*bcastOnce, d.NumNodes())
	for i := range nodes {
		n := New(cfg, rec)
		layers[i] = &bcastOnce{}
		if i == 0 {
			layers[i].msg = core.Message{ID: 77, Origin: 0}
		}
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(cfg.AckSlots()+5, nil)
	if layers[0].acks != 1 {
		t.Fatalf("broadcaster acks = %d", layers[0].acks)
	}
	for i := 1; i < len(layers); i++ {
		if len(layers[i].rcvs) != 1 {
			t.Fatalf("node %d received %d messages, want 1", i, len(layers[i].rcvs))
		}
	}
	rep := core.CheckAcks(rec.Events(), d.StrongGraph())
	if rep.Acked != 1 || rep.Violations != 0 {
		t.Fatalf("ack report = %+v", rep)
	}
}

func TestDecayProgressSlowerWithContention(t *testing.T) {
	// Sanity check of the Theorem 8.1 mechanism at small scale: with many
	// coupled contenders in strong range of a receiver, the first
	// successful reception takes longer than with a single sender.
	single := measureFirstReception(t, 1, 101)
	crowded := measureFirstReception(t, 24, 101)
	if crowded < single {
		t.Fatalf("reception with 24 contenders (%d slots) faster than with 1 (%d slots)", crowded, single)
	}
}

// measureFirstReception builds one cluster of senders+1 nodes where every
// node except node 0 broadcasts, and returns the slot at which node 0 first
// receives anything.
func measureFirstReception(t *testing.T, senders int, seed uint64) int64 {
	t.Helper()
	d, err := topology.Clusters(1, senders+1, sinr.DefaultParams(40), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewRecorder()
	cfg := DefaultConfig(64, 0.1)
	nodes := make([]sim.Node, d.NumNodes())
	for i := range nodes {
		n := New(cfg, rec)
		l := &bcastOnce{}
		if i != 0 {
			l.msg = core.Message{ID: core.MessageID(i), Origin: i}
		}
		n.SetLayer(l)
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	firstRcv := int64(-1)
	eng.Run(20000, func() bool {
		for _, ev := range rec.EventsOfKind(core.EventRcv) {
			if ev.Node == 0 {
				firstRcv = ev.Slot
				return true
			}
		}
		return false
	})
	if firstRcv < 0 {
		t.Fatalf("node 0 never received anything with %d senders", senders)
	}
	return firstRcv
}

func TestDecayWorksOverMultipleHops(t *testing.T) {
	// Two nodes out of range of each other plus a relay in the middle: only
	// direct neighbours of the broadcaster receive.
	params := sinr.DefaultParams(10)
	d, err := topology.Line(3, 8, params)
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewRecorder()
	cfg := DefaultConfig(4, 0.1)
	nodes := make([]sim.Node, 3)
	layers := make([]*bcastOnce, 3)
	for i := range nodes {
		n := New(cfg, rec)
		layers[i] = &bcastOnce{}
		if i == 0 {
			layers[i].msg = core.Message{ID: 1, Origin: 0}
		}
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(cfg.AckSlots()+5, nil)
	if len(layers[1].rcvs) != 1 {
		t.Fatalf("relay received %d messages", len(layers[1].rcvs))
	}
	if len(layers[2].rcvs) != 0 {
		t.Fatalf("out-of-range node received %d messages", len(layers[2].rcvs))
	}
	// The progress checker over the strong graph agrees.
	g := d.StrongGraph()
	if g.HasEdge(0, 2) {
		t.Fatal("test precondition violated: nodes 0 and 2 adjacent")
	}
	prog := core.MeasureProgress(rec.Events(), g, g, eng.Slot())
	if prog.Satisfied == 0 {
		t.Fatal("no satisfied progress samples")
	}
}

func TestDecayNodeAgainstChecker(t *testing.T) {
	// Cross-check the decay MAC against MeasureProgress on a small path.
	g := graphs.New(2)
	g.AddEdge(0, 1)
	rec := core.NewRecorder()
	rec.Record(core.Event{Kind: core.EventBcast, Node: 0, Msg: core.Message{ID: 1, Origin: 0}, Slot: 0})
	rec.Record(core.Event{Kind: core.EventRcv, Node: 1, Msg: core.Message{ID: 1, Origin: 0}, Slot: 2})
	rec.Record(core.Event{Kind: core.EventAck, Node: 0, Msg: core.Message{ID: 1, Origin: 0}, Slot: 4})
	prog := core.MeasureProgress(rec.Events(), g, g, 10)
	if prog.MaxLatency != 2 {
		t.Fatalf("max progress latency = %d, want 2", prog.MaxLatency)
	}
}
