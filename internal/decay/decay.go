// Package decay implements the classical Decay local-broadcast strategy of
// Bar-Yehuda, Goldreich and Itai [4], adapted to the SINR model.
//
// The paper uses Decay twice: as the baseline whose progress is provably
// slow on the two-balls construction (Theorem 8.1: f_approg =
// Ω(Δ·log(1/ε))), and — via flooding — as the classical graph-model global
// broadcast that Table 2 compares against. This package provides the
// per-node automaton, a standalone MAC node compatible with core.MAC, and
// is reused by the experiment harness for both purposes.
//
// Time is divided into decay phases of K = ⌈log₂ Δ̃⌉+1 slots. In slot j of a
// phase (j = 0, 1, ..., K-1) every node with an ongoing broadcast transmits
// its message with probability 2^{-j}: all contenders start at probability
// one and halve in lockstep, which is exactly the coupling that the
// two-balls lower bound exploits.
package decay

import (
	"fmt"
	"math"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

// FrameKind is the frame kind used for Decay data transmissions, registered
// once at package initialisation.
var FrameKind = sim.RegisterFrameKind("decay.data")

// Config holds the Decay parameters.
type Config struct {
	// DeltaBound is the known upper bound Δ̃ on the local contention (the
	// classical algorithm assumes a bound on the maximum degree or the
	// network size). It determines the phase length ⌈log₂ Δ̃⌉+1.
	DeltaBound float64
	// EpsAck is the target error probability for the acknowledgment: the
	// node keeps repeating decay phases until enough phases have elapsed
	// that every neighbour received the message with probability at least
	// 1-EpsAck under the classical analysis.
	EpsAck float64
	// AckPhaseFactor scales the number of phases before the node
	// acknowledges; the default reproduces the O(Δ̃ + log(1/ε)) phase count
	// of the classical bound.
	AckPhaseFactor float64
}

// DefaultConfig returns a Decay configuration with default constants.
func DefaultConfig(deltaBound, epsAck float64) Config {
	return Config{DeltaBound: deltaBound, EpsAck: epsAck}
}

func (c Config) withDefaults() Config {
	if c.AckPhaseFactor <= 0 {
		c.AckPhaseFactor = 1
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.DeltaBound < 1 {
		return fmt.Errorf("decay: DeltaBound = %v must be at least 1", c.DeltaBound)
	}
	if c.EpsAck <= 0 || c.EpsAck >= 1 {
		return fmt.Errorf("decay: EpsAck = %v must lie in (0, 1)", c.EpsAck)
	}
	return nil
}

// PhaseLen returns the number of slots in one decay phase.
func (c Config) PhaseLen() int {
	return int(math.Ceil(math.Log2(math.Max(2, c.DeltaBound)))) + 1
}

// AckPhases returns the number of phases after which a broadcasting node
// acknowledges.
func (c Config) AckPhases() int {
	c = c.withDefaults()
	v := c.AckPhaseFactor * (c.DeltaBound + math.Log2(1/c.EpsAck))
	if v < 1 {
		v = 1
	}
	return int(math.Ceil(v))
}

// AckSlots returns the total number of protocol slots before the
// acknowledgment fires.
func (c Config) AckSlots() int64 {
	return int64(c.AckPhases()) * int64(c.PhaseLen())
}

// Automaton is the per-node Decay state machine, ticked once per protocol
// slot.
type Automaton struct {
	cfg    Config
	src    *rng.Source
	onData func(core.Message)

	active    bool
	done      bool
	msg       core.Message
	slotInPh  int
	phaseDone int
}

// NewAutomaton returns a Decay automaton. onData is invoked for every
// received data frame and may be nil.
func NewAutomaton(cfg Config, src *rng.Source, onData func(core.Message)) (*Automaton, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("decay: nil random source")
	}
	return &Automaton{cfg: cfg.withDefaults(), src: src, onData: onData}, nil
}

// Start begins the Decay broadcast of m.
func (a *Automaton) Start(m core.Message) {
	a.active = true
	a.done = false
	a.msg = m
	a.slotInPh = 0
	a.phaseDone = 0
}

// Abort cancels the ongoing broadcast.
func (a *Automaton) Abort() {
	a.active = false
	a.done = false
}

// Active reports whether a broadcast is ongoing and not yet complete.
func (a *Automaton) Active() bool { return a.active && !a.done }

// Done reports whether the broadcast has completed (enough phases elapsed).
func (a *Automaton) Done() bool { return a.active && a.done }

// Tick advances the automaton one protocol slot; a transmission fills the
// pooled frame f and returns true.
func (a *Automaton) Tick(f *sim.Frame) bool {
	if !a.Active() {
		return false
	}
	p := math.Pow(2, -float64(a.slotInPh))
	send := a.src.Bernoulli(p)
	a.slotInPh++
	if a.slotInPh >= a.cfg.PhaseLen() {
		a.slotInPh = 0
		a.phaseDone++
		if a.phaseDone >= a.cfg.AckPhases() {
			a.done = true
		}
	}
	if !send {
		return false
	}
	f.Kind = FrameKind
	f.Msg = a.msg
	return true
}

// Receive processes a frame decoded in one of this automaton's slots.
func (a *Automaton) Receive(f *sim.Frame) {
	if f == nil || f.Kind != FrameKind {
		return
	}
	if a.onData != nil {
		a.onData(f.Msg)
	}
}
