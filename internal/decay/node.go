package decay

import (
	"sinrmac/internal/core"
	"sinrmac/internal/macnode"
	"sinrmac/internal/rng"
)

// New returns a standalone Decay-based MAC node (core.MAC + sim.Node)
// running the Decay automaton in every slot. It is the baseline MAC used by
// the Theorem 8.1 experiment and by the Decay-flooding rows of the global
// broadcast comparisons. recorder may be nil.
func New(cfg Config, recorder *core.Recorder) *macnode.Node {
	return macnode.New(func(src *rng.Source, onData func(core.Message)) (macnode.Automaton, error) {
		return NewAutomaton(cfg, src, onData)
	}, recorder)
}
