package topology

import (
	"strings"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/sinr"
)

// epochTestDeployment is a 4×4 unit-grid-at-spacing-2 deployment, roomy
// enough that jittered epochs keep the unit-distance invariant.
func epochTestDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := Grid(4, 4, 2, sinr.DefaultParams(10))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCommitEpochMoveAddRemove(t *testing.T) {
	d := epochTestDeployment(t)
	orig := append([]geom.Point(nil), d.Positions...)
	n := d.NumNodes() // 16

	moved := geom.Point{X: orig[2].X + 0.5, Y: orig[2].Y + 0.5}
	added := geom.Point{X: -4, Y: -4}
	d.MoveNode(2, moved)
	d.RemoveNode(5)
	d.AddNode(added)
	if got := d.PendingOps(); got != 3 {
		t.Fatalf("PendingOps = %d, want 3", got)
	}
	delta, err := d.CommitEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if d.PendingOps() != 0 {
		t.Fatal("pending ops survived the commit")
	}
	if delta.OldN != n || delta.NewN != n || delta.Removed != 1 || len(delta.Added) != 1 {
		t.Fatalf("delta counts = %+v", delta)
	}
	if d.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", d.NumNodes(), n)
	}
	// Swap-remove semantics: the pre-epoch last node (15) fills slot 5, the
	// added node appends at the freed tail slot.
	if len(delta.Relabels) != 1 || delta.Relabels[0] != (sinr.Relabel{From: 15, To: 5}) {
		t.Fatalf("relabels = %v", delta.Relabels)
	}
	if d.Positions[5] != orig[15] {
		t.Fatalf("slot 5 holds %v, want relabeled %v", d.Positions[5], orig[15])
	}
	if d.Positions[2] != moved {
		t.Fatalf("slot 2 holds %v, want moved %v", d.Positions[2], moved)
	}
	if delta.Added[0] != 15 || d.Positions[15] != added {
		t.Fatalf("added id %v at %v", delta.Added, d.Positions[15])
	}
	// Dirty is sorted and is exactly the changed slots: 2 (move), 5
	// (relabel target), 15 (add).
	want := []int{2, 5, 15}
	if len(delta.Dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", delta.Dirty, want)
	}
	for i, id := range want {
		if delta.Dirty[i] != id {
			t.Fatalf("dirty = %v, want %v", delta.Dirty, want)
		}
	}
	// The delta owns its positions: later epochs must not mutate them.
	snapshot := append([]geom.Point(nil), delta.Positions...)
	d.MoveNode(0, geom.Point{X: orig[0].X + 0.3, Y: orig[0].Y})
	if _, err := d.CommitEpoch(); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if delta.Positions[i] != snapshot[i] {
			t.Fatal("a later epoch mutated an earlier delta's positions")
		}
	}
	if d.Epochs() != 2 {
		t.Fatalf("Epochs = %d, want 2", d.Epochs())
	}
}

func TestCommitEpochValidation(t *testing.T) {
	cases := []struct {
		name  string
		queue func(d *Deployment)
		want  string
	}{
		{"empty", func(d *Deployment) {}, "no queued mutations"},
		{"bad id", func(d *Deployment) { d.RemoveNode(99) }, "references node"},
		{"negative id", func(d *Deployment) { d.MoveNode(-1, geom.Point{}) }, "references node"},
		{"double touch", func(d *Deployment) {
			d.MoveNode(3, geom.Point{X: 100, Y: 100})
			d.RemoveNode(3)
		}, "twice"},
		{"spacing", func(d *Deployment) {
			d.MoveNode(0, geom.Point{X: d.Positions[1].X + 0.2, Y: d.Positions[1].Y})
		}, "near-field"},
		{"spacing of added", func(d *Deployment) {
			d.AddNode(geom.Point{X: d.Positions[4].X + 0.3, Y: d.Positions[4].Y})
		}, "near-field"},
		{"remove all", func(d *Deployment) {
			for i := 0; i < 16; i++ {
				d.RemoveNode(i)
			}
		}, "every node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := epochTestDeployment(t)
			before := append([]geom.Point(nil), d.Positions...)
			tc.queue(d)
			_, err := d.CommitEpoch()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CommitEpoch error = %v, want %q", err, tc.want)
			}
			if d.PendingOps() != 0 {
				t.Fatal("failed commit left ops queued")
			}
			if len(d.Positions) != len(before) {
				t.Fatalf("failed commit resized the deployment to %d", len(d.Positions))
			}
			for i := range before {
				if d.Positions[i] != before[i] {
					t.Fatal("failed commit mutated the deployment")
				}
			}
			if d.Epochs() != 0 {
				t.Fatal("failed commit counted as an epoch")
			}
		})
	}
}

// TestValidateAfterBreakingEpoch drives Deployment.Validate directly over a
// layout an epoch would have produced had it skipped validation: the same
// invariant guards both paths.
func TestValidateAfterBreakingEpoch(t *testing.T) {
	d := epochTestDeployment(t)
	d.Positions[0] = geom.Point{X: d.Positions[1].X + 0.1, Y: d.Positions[1].Y}
	if err := d.Validate(false); err == nil || !strings.Contains(err.Error(), "near-field") {
		t.Fatalf("Validate = %v, want near-field violation", err)
	}
}

func TestCommitEpochInvalidatesCaches(t *testing.T) {
	d := epochTestDeployment(t)
	strong0, approx0, weak0 := d.StrongGraph(), d.ApproxGraph(), d.WeakGraph()
	lambda0 := d.Lambda()
	// Caching satellite: repeated calls return the identical induced graph.
	if d.StrongGraph() != strong0 || d.ApproxGraph() != approx0 || d.WeakGraph() != weak0 {
		t.Fatal("derived graphs are re-induced per call")
	}
	d.RemoveNode(3)
	if _, err := d.CommitEpoch(); err != nil {
		t.Fatal(err)
	}
	if d.StrongGraph() == strong0 || d.ApproxGraph() == approx0 || d.WeakGraph() == weak0 {
		t.Fatal("CommitEpoch kept a stale derived graph")
	}
	if got := d.StrongGraph().NumNodes(); got != 15 {
		t.Fatalf("post-epoch strong graph has %d nodes, want 15", got)
	}
	// Λ changes when the minimum spacing changes.
	d.MoveNode(0, geom.Point{X: d.Positions[0].X + 0.9, Y: d.Positions[0].Y})
	if _, err := d.CommitEpoch(); err != nil {
		t.Fatal(err)
	}
	if d.Lambda() == lambda0 {
		t.Fatal("CommitEpoch kept a stale Λ")
	}
}

func TestDeploymentClone(t *testing.T) {
	d := epochTestDeployment(t)
	c := d.Clone()
	c.MoveNode(0, geom.Point{X: d.Positions[0].X + 0.5, Y: d.Positions[0].Y + 0.5})
	if _, err := c.CommitEpoch(); err != nil {
		t.Fatal(err)
	}
	if d.Positions[0] == c.Positions[0] {
		t.Fatal("epoch on the clone leaked into the base deployment")
	}
	if d.Epochs() != 0 || c.Epochs() != 1 {
		t.Fatalf("epoch counters: base %d, clone %d", d.Epochs(), c.Epochs())
	}
}
