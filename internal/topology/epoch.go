package topology

import (
	"fmt"
	"sort"

	"sinrmac/internal/geom"
	"sinrmac/internal/sinr"
)

// This file implements the epoch-based mutation API of Deployment: dynamic
// deployments with node churn (joins, failures) and mobility (moves).
//
// # Epoch lifecycle
//
// Mutations are batched: AddNode, RemoveNode and MoveNode queue operations
// against the current (pre-epoch) node numbering, and CommitEpoch applies
// the whole batch atomically — moves first, then removals (in descending id
// order, each swap-removing the last slot, so the relabel chain is
// deterministic regardless of queue order), then additions appended at the
// end. The commit revalidates the unit-distance invariant for every changed
// node against the candidate layout and, on any error, leaves the
// deployment completely unchanged (the queued batch is cleared either way,
// so callers can rebuild and retry a rejected epoch).
//
// A successful commit invalidates every cached derived quantity — the
// strong/approximation/weak graphs and Λ are re-induced lazily from the
// post-epoch positions — and returns a sinr.EpochDelta describing the
// change: downstream consumers apply it to live SINR evaluators
// (sinr.FastChannel.ApplyEpoch patches its indices incrementally) and to a
// running simulation (sim.Engine.ApplyEpoch relabels the node automata and
// initialises only the added nodes). The delta owns a copy of the
// post-epoch positions, so it stays valid across later epochs.
//
// CommitEpoch must not race with concurrent readers of the deployment;
// between epochs concurrent use remains safe.

type epochOpKind uint8

const (
	opMove epochOpKind = iota
	opRemove
	opAdd
)

type epochOp struct {
	kind epochOpKind
	id   int
	pos  geom.Point
}

// AddNode queues the addition of a node at p for the next CommitEpoch. The
// node's id is assigned at commit (added nodes are appended after removals,
// in queue order).
func (d *Deployment) AddNode(p geom.Point) {
	d.pending = append(d.pending, epochOp{kind: opAdd, pos: p})
}

// RemoveNode queues the removal of node id (pre-epoch numbering) for the
// next CommitEpoch. The last node is swap-removed into the freed slot.
func (d *Deployment) RemoveNode(id int) {
	d.pending = append(d.pending, epochOp{kind: opRemove, id: id})
}

// MoveNode queues moving node id (pre-epoch numbering) to p for the next
// CommitEpoch.
func (d *Deployment) MoveNode(id int, p geom.Point) {
	d.pending = append(d.pending, epochOp{kind: opMove, id: id, pos: p})
}

// PendingOps returns the number of queued, uncommitted epoch operations.
func (d *Deployment) PendingOps() int { return len(d.pending) }

// Epochs returns the number of epochs committed so far.
func (d *Deployment) Epochs() int { return d.epochs }

// CommitEpoch applies the queued mutation batch, revalidates the
// unit-distance invariant for every changed node, invalidates the cached
// derived quantities and returns the delta describing the epoch. On error
// the deployment is unchanged. The queued batch is consumed either way.
func (d *Deployment) CommitEpoch() (*sinr.EpochDelta, error) {
	ops := d.pending
	d.pending = d.pending[:0]
	if len(ops) == 0 {
		return nil, fmt.Errorf("topology: CommitEpoch on %q with no queued mutations", d.Name)
	}
	oldN := len(d.Positions)
	// Each pre-epoch id may appear in at most one operation: the relabel
	// semantics of mixed move/remove batches on one node are not worth
	// defining.
	var moves, removes []epochOp
	adds := 0
	touched := make(map[int]bool, len(ops))
	for _, op := range ops {
		switch op.kind {
		case opAdd:
			adds++
			continue
		case opMove, opRemove:
			if op.id < 0 || op.id >= oldN {
				return nil, fmt.Errorf("topology: epoch on %q references node %d of %d", d.Name, op.id, oldN)
			}
			if touched[op.id] {
				return nil, fmt.Errorf("topology: epoch on %q touches node %d twice", d.Name, op.id)
			}
			touched[op.id] = true
			if op.kind == opMove {
				moves = append(moves, op)
			} else {
				removes = append(removes, op)
			}
		}
	}
	if oldN-len(removes)+adds <= 0 {
		return nil, fmt.Errorf("topology: epoch on %q would remove every node", d.Name)
	}

	// Build the candidate layout.
	cand := make([]geom.Point, oldN, oldN+adds)
	copy(cand, d.Positions)
	for _, op := range moves {
		cand[op.id] = op.pos
	}
	sort.Slice(removes, func(i, j int) bool { return removes[i].id > removes[j].id })
	var relabels []sinr.Relabel
	for _, op := range removes {
		last := len(cand) - 1
		if op.id != last {
			cand[op.id] = cand[last]
			relabels = append(relabels, sinr.Relabel{From: last, To: op.id})
		}
		cand = cand[:last]
	}
	var added []int
	for _, op := range ops {
		if op.kind == opAdd {
			added = append(added, len(cand))
			cand = append(cand, op.pos)
		}
	}
	newN := len(cand)

	// Dirty = every post-epoch slot whose content changed. Comparing the
	// layouts directly is robust against relabel chains and no-op moves.
	var dirty []int
	for i := 0; i < newN; i++ {
		if i >= oldN || cand[i] != d.Positions[i] {
			dirty = append(dirty, i)
		}
	}
	if err := validateEpochSpacing(d.Name, cand, dirty); err != nil {
		return nil, err
	}

	// Commit: swap the layout in and drop every cached derived quantity.
	d.Positions = cand
	d.cacheMu.Lock()
	d.strong, d.approx, d.weak = nil, nil, nil
	d.lambda, d.lambdaOK = 0, false
	d.cacheMu.Unlock()
	d.epochs++
	return &sinr.EpochDelta{
		OldN:      oldN,
		NewN:      newN,
		Dirty:     dirty,
		Relabels:  relabels,
		Added:     added,
		Removed:   len(removes),
		Positions: append([]geom.Point(nil), cand...),
	}, nil
}

// validateEpochSpacing checks the near-field normalisation for an epoch:
// every changed node must keep unit distance (with Validate's tolerance) to
// every other node of the candidate layout. Only pairs involving a changed
// node can newly violate, so the check is O(n + changed · local density)
// via a unit grid rather than a full pairwise rescan.
func validateEpochSpacing(name string, cand []geom.Point, dirty []int) error {
	if len(dirty) == 0 {
		return nil
	}
	grid := geom.NewGrid(1)
	for i, p := range cand {
		grid.Insert(i, p)
	}
	for _, id := range dirty {
		p := cand[id]
		for _, j := range grid.Neighborhood(p, 1) {
			if j == id {
				continue
			}
			if dist := p.Dist(cand[j]); dist < 1-1e-9 {
				return fmt.Errorf("topology: epoch on %q violates the near-field bound: nodes %d and %d at distance %v < 1",
					name, id, j, dist)
			}
		}
	}
	return nil
}

// Clone returns an independent deployment with the same name, parameters
// and a private copy of the positions. Cached derived quantities and queued
// epoch operations are not carried over (they are re-derived lazily).
// Churn experiments clone the shared per-sweep-point deployment so each
// trial can commit its own epochs.
func (d *Deployment) Clone() *Deployment {
	return &Deployment{
		Name:      d.Name,
		Positions: append([]geom.Point(nil), d.Positions...),
		Params:    d.Params,
	}
}
