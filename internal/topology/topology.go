// Package topology generates node deployments in the Euclidean plane for
// simulations, experiments and benchmarks: uniform random deployments,
// grids, lines and clustered deployments, plus the two adversarial
// constructions used by the paper's lower bounds (the Theorem 6.1
// two-parallel-lines construction in Figure 1 and the Theorem 8.1 two-balls
// construction).
//
// Every deployment carries its SINR parameters; nodes are always at least
// unit distance apart (the paper's near-field normalisation).
//
// Deployments are dynamic: the epoch API (epoch.go) batches node
// additions, removals and moves into atomically committed epochs that
// preserve the unit-distance invariant, invalidate the cached derived
// quantities and emit sinr.EpochDelta values downstream evaluators and
// engines apply incrementally.
package topology

import (
	"fmt"
	"math"
	"sync"

	"sinrmac/internal/geom"
	"sinrmac/internal/graphs"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// Deployment is a set of node positions with the physical-layer parameters
// they are intended to be simulated under. Derived quantities that are
// expensive to induce (the strong, approximation and weak graphs, Λ) are
// computed once and cached, which lets many concurrent trials share one
// deployment without repaying the induction per trial.
//
// Positions are immutable except through the epoch API (epoch.go): AddNode,
// RemoveNode and MoveNode batch mutations that CommitEpoch applies
// atomically, revalidating the unit-distance invariant and invalidating
// every cached derived quantity. Committing an epoch must not race with
// concurrent readers of the deployment; between epochs concurrent use stays
// safe.
type Deployment struct {
	// Name identifies the generator and parameters for reports.
	Name string
	// Positions holds the node locations; node i is at Positions[i].
	Positions []geom.Point
	// Params are the SINR parameters for this deployment.
	Params sinr.Params

	// cacheMu guards the lazily induced derived quantities below. A plain
	// mutex (rather than per-field sync.Once) lets CommitEpoch drop every
	// cache in one critical section when the positions change.
	cacheMu  sync.Mutex
	strong   *graphs.Graph
	approx   *graphs.Graph
	weak     *graphs.Graph
	lambda   float64
	lambdaOK bool

	pending []epochOp
	epochs  int
}

// NumNodes returns the number of nodes in the deployment.
func (d *Deployment) NumNodes() int { return len(d.Positions) }

// StrongGraph returns G_{1-ε} for the deployment. The graph is induced on
// first use and cached — experiments query the diameter and maximum degree
// of a shared deployment from many concurrent trials — so callers must
// treat the returned graph as read-only. It is safe for concurrent use.
func (d *Deployment) StrongGraph() *graphs.Graph {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if d.strong == nil {
		d.strong = graphs.Strong(d.Params, d.Positions)
	}
	return d.strong
}

// ApproxGraph returns G_{1-2ε} for the deployment. Like StrongGraph it is
// induced on first use and cached (concurrent trials sharing one deployment
// used to repay the O(n²) induction per call), so callers must treat the
// returned graph as read-only. It is safe for concurrent use.
func (d *Deployment) ApproxGraph() *graphs.Graph {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if d.approx == nil {
		d.approx = graphs.Approx(d.Params, d.Positions)
	}
	return d.approx
}

// WeakGraph returns G₁ for the deployment, induced on first use and cached
// exactly like StrongGraph and ApproxGraph; the returned graph is read-only
// and safe for concurrent use.
func (d *Deployment) WeakGraph() *graphs.Graph {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if d.weak == nil {
		d.weak = graphs.Weak(d.Params, d.Positions)
	}
	return d.weak
}

// Lambda returns Λ = R_{1-ε}/dmin for the deployment, computed once and
// cached (the minimum pairwise distance scan is quadratic for small
// deployments). It is safe for concurrent use.
func (d *Deployment) Lambda() float64 {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if !d.lambdaOK {
		d.lambda = sinr.Lambda(d.Params, d.Positions)
		d.lambdaOK = true
	}
	return d.lambda
}

// Channel returns a fresh SINR channel for the deployment.
func (d *Deployment) Channel() (*sinr.Channel, error) {
	return sinr.NewChannel(d.Params, d.Positions)
}

// Validate checks the structural assumptions the paper's algorithms rely
// on: valid SINR parameters, minimum pairwise distance of at least 1, and
// (when requireConnected is set) connectivity of G_{1-ε}.
func (d *Deployment) Validate(requireConnected bool) error {
	if err := d.Params.Validate(); err != nil {
		return err
	}
	if len(d.Positions) == 0 {
		return fmt.Errorf("topology: deployment %q has no nodes", d.Name)
	}
	if dmin := geom.MinPairwiseDist(d.Positions); dmin < 1-1e-9 {
		return fmt.Errorf("topology: deployment %q violates the near-field bound: min distance %v < 1", d.Name, dmin)
	}
	if requireConnected && !d.StrongGraph().IsConnected() {
		return fmt.Errorf("topology: deployment %q has a disconnected strong graph G_{1-ε}", d.Name)
	}
	return nil
}

// UniformRandom places n nodes uniformly at random in a side×side square,
// rejecting candidate positions closer than unit distance to an existing
// node. It returns an error when the square cannot plausibly hold n nodes
// at unit spacing or when the rejection sampling fails to find room.
func UniformRandom(n int, side float64, params sinr.Params, src *rng.Source) (*Deployment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: UniformRandom needs a positive node count, got %d", n)
	}
	if float64(n) > side*side {
		return nil, fmt.Errorf("topology: %d nodes cannot keep unit spacing in a %.1f×%.1f square", n, side, side)
	}
	grid := geom.NewGrid(1)
	pos := make([]geom.Point, 0, n)
	const maxAttemptsPerNode = 2000
	for len(pos) < n {
		placed := false
		for attempt := 0; attempt < maxAttemptsPerNode; attempt++ {
			cand := geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
			ok := true
			for _, idx := range grid.Neighborhood(cand, 1) {
				if pos[idx].Dist(cand) < 1 {
					ok = false
					break
				}
			}
			if ok {
				grid.Insert(len(pos), cand)
				pos = append(pos, cand)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("topology: could not place node %d of %d with unit spacing in a %.1f×%.1f square", len(pos)+1, n, side, side)
		}
	}
	return &Deployment{
		Name:      fmt.Sprintf("uniform(n=%d,side=%.0f)", n, side),
		Positions: pos,
		Params:    params,
	}, nil
}

// ConnectedUniform repeatedly draws uniform random deployments until the
// strong-connectivity graph G_{1-ε} is connected, up to maxTries attempts.
func ConnectedUniform(n int, side float64, params sinr.Params, src *rng.Source, maxTries int) (*Deployment, error) {
	if maxTries <= 0 {
		maxTries = 50
	}
	var lastErr error
	for try := 0; try < maxTries; try++ {
		d, err := UniformRandom(n, side, params, src.Split())
		if err != nil {
			lastErr = err
			continue
		}
		if d.StrongGraph().IsConnected() {
			return d, nil
		}
		lastErr = fmt.Errorf("topology: deployment disconnected on try %d", try+1)
	}
	return nil, fmt.Errorf("topology: no connected uniform deployment after %d tries: %w", maxTries, lastErr)
}

// Grid places rows×cols nodes on a regular lattice with the given spacing
// (spacing must be at least 1).
func Grid(rows, cols int, spacing float64, params sinr.Params) (*Deployment, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: Grid dimensions must be positive, got %dx%d", rows, cols)
	}
	if spacing < 1 {
		return nil, fmt.Errorf("topology: Grid spacing %v violates unit minimum distance", spacing)
	}
	pos := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos = append(pos, geom.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return &Deployment{
		Name:      fmt.Sprintf("grid(%dx%d,spacing=%.1f)", rows, cols, spacing),
		Positions: pos,
		Params:    params,
	}, nil
}

// Line places n nodes on a horizontal line with the given spacing
// (spacing must be at least 1). Line deployments maximise the diameter for
// a given node count and are used by the consensus and SMB experiments.
func Line(n int, spacing float64, params sinr.Params) (*Deployment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: Line needs a positive node count, got %d", n)
	}
	if spacing < 1 {
		return nil, fmt.Errorf("topology: Line spacing %v violates unit minimum distance", spacing)
	}
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * spacing, Y: 0}
	}
	return &Deployment{
		Name:      fmt.Sprintf("line(n=%d,spacing=%.1f)", n, spacing),
		Positions: pos,
		Params:    params,
	}, nil
}

// Clusters places numClusters cluster centers far apart on a line (at
// strong-range spacing so consecutive clusters remain connected) and fills
// each cluster with clusterSize nodes packed at unit-ish spacing inside a
// small disc. Clustered deployments create high local degree Δ while
// keeping the diameter moderate; they are the workload where approximate
// progress shines over acknowledgments.
func Clusters(numClusters, clusterSize int, params sinr.Params, src *rng.Source) (*Deployment, error) {
	if numClusters <= 0 || clusterSize <= 0 {
		return nil, fmt.Errorf("topology: Clusters needs positive sizes, got %d clusters of %d", numClusters, clusterSize)
	}
	strong := params.StrongRange()
	// Cluster radius: small relative to the strong range but large enough
	// to hold clusterSize nodes at unit spacing.
	radius := math.Max(2, 1.2*math.Sqrt(float64(clusterSize)))
	if 2*radius >= strong {
		return nil, fmt.Errorf("topology: cluster of %d nodes needs radius %.1f, which does not fit inside strong range %.1f", clusterSize, radius, strong)
	}
	spacing := strong - 2*radius // gap between cluster discs stays connected
	if spacing < 1 {
		spacing = 1
	}
	grid := geom.NewGrid(1)
	var pos []geom.Point
	for c := 0; c < numClusters; c++ {
		center := geom.Point{X: float64(c) * (spacing + 2*radius), Y: 0}
		placedInCluster := 0
		attempts := 0
		for placedInCluster < clusterSize {
			attempts++
			if attempts > clusterSize*5000 {
				return nil, fmt.Errorf("topology: could not pack %d nodes into cluster %d", clusterSize, c)
			}
			angle := src.Float64() * 2 * math.Pi
			r := radius * math.Sqrt(src.Float64())
			cand := geom.Point{X: center.X + r*math.Cos(angle), Y: center.Y + r*math.Sin(angle)}
			ok := true
			for _, idx := range grid.Neighborhood(cand, 1) {
				if pos[idx].Dist(cand) < 1 {
					ok = false
					break
				}
			}
			if ok {
				grid.Insert(len(pos), cand)
				pos = append(pos, cand)
				placedInCluster++
			}
		}
	}
	return &Deployment{
		Name:      fmt.Sprintf("clusters(%dx%d)", numClusters, clusterSize),
		Positions: pos,
		Params:    params,
	}, nil
}

// ParallelLines builds the Theorem 6.1 / Figure 1 lower-bound construction:
// delta nodes V on one horizontal line with unit spacing, delta nodes U on a
// parallel line at vertical distance exactly R_{1-ε}, so that v_i's only
// strong neighbour across the gap is u_i. The SINR parameters are chosen so
// that R_{1-ε} = 10·delta, exactly as in the paper's proof.
func ParallelLines(delta int, epsilon float64) (*Deployment, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("topology: ParallelLines needs a positive degree, got %d", delta)
	}
	if epsilon <= 0 || epsilon >= 0.5 {
		return nil, fmt.Errorf("topology: epsilon %v out of range (0, 0.5)", epsilon)
	}
	strongRange := 10 * float64(delta)
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1, Epsilon: epsilon}
	// R = strongRange/(1-ε), P = βN R^α. The tiny inflation of P guards the
	// cross-line links (at distance exactly R_{1-ε}) against floating-point
	// rounding when the range is recovered from the power.
	r := strongRange / (1 - epsilon)
	params.Power = params.Beta * params.Noise * math.Pow(r, params.Alpha) * (1 + 1e-9)

	pos := make([]geom.Point, 0, 2*delta)
	// V nodes: indices 0..delta-1 on the lower line.
	for i := 0; i < delta; i++ {
		pos = append(pos, geom.Point{X: float64(i), Y: 0})
	}
	// U nodes: indices delta..2delta-1 on the upper line.
	for i := 0; i < delta; i++ {
		pos = append(pos, geom.Point{X: float64(i), Y: strongRange})
	}
	return &Deployment{
		Name:      fmt.Sprintf("parallel-lines(delta=%d)", delta),
		Positions: pos,
		Params:    params,
	}, nil
}

// ParallelLinesSender returns the V-side (sender) indices of a
// ParallelLines deployment with the given delta.
func ParallelLinesSenders(delta int) []int {
	out := make([]int, delta)
	for i := range out {
		out[i] = i
	}
	return out
}

// ParallelLinesReceivers returns the U-side (receiver) indices of a
// ParallelLines deployment with the given delta.
func ParallelLinesReceivers(delta int) []int {
	out := make([]int, delta)
	for i := range out {
		out[i] = delta + i
	}
	return out
}

// TwoBalls builds the Theorem 8.1 construction on which the Decay strategy
// fails to achieve fast approximate progress: a ball B1 containing two
// nodes and a dense ball B2 containing delta nodes, both of radius R/4,
// with ball centers at distance R_2 = 2R so that the balls are not directly
// connected in G_{1-ε}, connected through a sparse bridging path so that
// G_{1-ε} stays connected. Node 0 and node 1 form B1 (placed at opposite
// ends of B1's diameter); nodes 2..delta+1 form B2; the remaining nodes are
// the bridge relays.
func TwoBalls(delta int, params sinr.Params, src *rng.Source) (*Deployment, error) {
	if delta < 2 {
		return nil, fmt.Errorf("topology: TwoBalls needs delta >= 2, got %d", delta)
	}
	r := params.Range()
	ballRadius := r / 4
	centerDist := 2 * r
	// B2 must hold delta nodes at unit spacing inside radius ballRadius.
	if needed := 1.2 * math.Sqrt(float64(delta)); needed > ballRadius {
		return nil, fmt.Errorf("topology: ball radius %.1f too small for %d nodes; increase the transmission range", ballRadius, delta)
	}
	c1 := geom.Point{X: 0, Y: 0}
	c2 := geom.Point{X: centerDist, Y: 0}

	grid := geom.NewGrid(1)
	var pos []geom.Point
	add := func(p geom.Point) bool {
		for _, idx := range grid.Neighborhood(p, 1) {
			if pos[idx].Dist(p) < 1 {
				return false
			}
		}
		grid.Insert(len(pos), p)
		pos = append(pos, p)
		return true
	}
	// B1: two nodes at the ends of B1's horizontal diameter, so the signal
	// between them is as weak as the construction allows (distance R/2).
	if !add(geom.Point{X: c1.X - ballRadius, Y: 0}) || !add(geom.Point{X: c1.X + ballRadius, Y: 0}) {
		return nil, fmt.Errorf("topology: could not place B1 nodes")
	}
	// B2: delta nodes packed around c2.
	placed := 0
	attempts := 0
	for placed < delta {
		attempts++
		if attempts > delta*5000 {
			return nil, fmt.Errorf("topology: could not pack %d nodes into B2", delta)
		}
		angle := src.Float64() * 2 * math.Pi
		rr := ballRadius * math.Sqrt(src.Float64())
		if add(geom.Point{X: c2.X + rr*math.Cos(angle), Y: c2.Y + rr*math.Sin(angle)}) {
			placed++
		}
	}
	// Bridge: a chain of relays between the balls so that G_{1-ε} is
	// connected (the paper connects the balls by a path). Consecutive hops
	// stay within 0.8·R_{1-ε}.
	hop := 0.8 * params.StrongRange()
	startX := c1.X + ballRadius
	endX := c2.X - ballRadius
	for x := startX + hop; x < endX; x += hop {
		if !add(geom.Point{X: x, Y: 2.5}) {
			return nil, fmt.Errorf("topology: could not place bridge relay at x=%.1f", x)
		}
	}
	return &Deployment{
		Name:      fmt.Sprintf("two-balls(delta=%d)", delta),
		Positions: pos,
		Params:    params,
	}, nil
}

// TwoBallsB1 returns the node indices of ball B1 in a TwoBalls deployment.
func TwoBallsB1() []int { return []int{0, 1} }

// TwoBallsB2 returns the node indices of ball B2 in a TwoBalls deployment
// with the given delta.
func TwoBallsB2(delta int) []int {
	out := make([]int, delta)
	for i := range out {
		out[i] = 2 + i
	}
	return out
}
