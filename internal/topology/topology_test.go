package topology

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

func TestUniformRandomBasics(t *testing.T) {
	params := sinr.DefaultParams(10)
	d, err := UniformRandom(100, 40, params, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if err := d.Validate(false); err != nil {
		t.Fatal(err)
	}
	if dmin := geom.MinPairwiseDist(d.Positions); dmin < 1 {
		t.Fatalf("min distance %v < 1", dmin)
	}
	box := geom.BoundingBox(d.Positions)
	if box.Min.X < 0 || box.Max.X > 40 || box.Min.Y < 0 || box.Max.Y > 40 {
		t.Fatalf("nodes escaped the square: %+v", box)
	}
}

func TestUniformRandomErrors(t *testing.T) {
	params := sinr.DefaultParams(10)
	if _, err := UniformRandom(0, 10, params, rng.New(1)); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := UniformRandom(1000, 3, params, rng.New(1)); err == nil {
		t.Fatal("impossible density accepted")
	}
}

func TestUniformRandomDeterministic(t *testing.T) {
	params := sinr.DefaultParams(10)
	a, err := UniformRandom(50, 30, params, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformRandom(50, 30, params, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("node %d differs between identical seeds", i)
		}
	}
}

func TestConnectedUniform(t *testing.T) {
	params := sinr.DefaultParams(12)
	d, err := ConnectedUniform(60, 30, params, rng.New(3), 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestGridDeployment(t *testing.T) {
	params := sinr.DefaultParams(10)
	d, err := Grid(3, 4, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if err := d.Validate(true); err != nil {
		t.Fatal(err)
	}
	if dmin := geom.MinPairwiseDist(d.Positions); math.Abs(dmin-2) > 1e-12 {
		t.Fatalf("grid min distance = %v", dmin)
	}
	if _, err := Grid(0, 3, 2, params); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := Grid(3, 3, 0.5, params); err == nil {
		t.Fatal("sub-unit spacing accepted")
	}
}

func TestLineDeployment(t *testing.T) {
	params := sinr.DefaultParams(10)
	d, err := Line(20, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(true); err != nil {
		t.Fatal(err)
	}
	g := d.StrongGraph()
	// Strong range 9, spacing 4: each node connects to 2 positions either
	// side, so the diameter is ceil(19/2) = 10.
	if got := g.Diameter(); got != 10 {
		t.Fatalf("line diameter = %d, want 10", got)
	}
	if _, err := Line(0, 2, params); err == nil {
		t.Fatal("empty line accepted")
	}
	if _, err := Line(5, 0.2, params); err == nil {
		t.Fatal("sub-unit spacing accepted")
	}
}

func TestClustersDeployment(t *testing.T) {
	params := sinr.DefaultParams(30)
	d, err := Clusters(4, 20, params, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 80 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if err := d.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Clusters should produce high degree relative to a same-size line.
	if deg := d.StrongGraph().MaxDegree(); deg < 19 {
		t.Fatalf("cluster max degree = %d, want >= 19 (cluster-mates adjacent)", deg)
	}
	if _, err := Clusters(0, 5, params, rng.New(1)); err == nil {
		t.Fatal("zero clusters accepted")
	}
	if _, err := Clusters(2, 10000, params, rng.New(1)); err == nil {
		t.Fatal("oversize cluster accepted")
	}
}

func TestParallelLinesConstruction(t *testing.T) {
	for _, delta := range []int{2, 4, 8, 16} {
		d, err := ParallelLines(delta, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumNodes() != 2*delta {
			t.Fatalf("delta=%d: NumNodes = %d", delta, d.NumNodes())
		}
		if err := d.Validate(true); err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		g := d.StrongGraph()
		// Every node must have degree exactly delta (Theorem 6.1 setup):
		// delta-1 same-line neighbours plus exactly one cross-line link.
		for v := 0; v < d.NumNodes(); v++ {
			if got := g.Degree(v); got != delta {
				t.Fatalf("delta=%d: node %d degree %d, want %d", delta, v, got, delta)
			}
		}
		// v_i's only cross-line neighbour is u_i.
		senders := ParallelLinesSenders(delta)
		receivers := ParallelLinesReceivers(delta)
		for i, v := range senders {
			for j, u := range receivers {
				has := g.HasEdge(v, u)
				if (i == j) != has {
					t.Fatalf("delta=%d: edge(v%d,u%d) = %v", delta, i, j, has)
				}
			}
		}
	}
}

func TestParallelLinesErrors(t *testing.T) {
	if _, err := ParallelLines(0, 0.1); err == nil {
		t.Fatal("delta=0 accepted")
	}
	if _, err := ParallelLines(4, 0.7); err == nil {
		t.Fatal("epsilon=0.7 accepted")
	}
}

func TestParallelLinesCrossLinkWorksAlone(t *testing.T) {
	// A single cross-line transmission with no interference must decode:
	// the construction places the pair exactly at the strong radius, inside
	// the transmission range R.
	d, err := ParallelLines(5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	senders := ParallelLinesSenders(5)
	receivers := ParallelLinesReceivers(5)
	for i := range senders {
		if !ch.Decodes(receivers[i], senders[i], []int{senders[i]}) {
			t.Fatalf("lone cross-line transmission %d failed to decode", i)
		}
	}
}

func TestParallelLinesMutualExclusion(t *testing.T) {
	// When two cross-line pairs transmit concurrently, at least one of the
	// receptions fails (this is the contention at the heart of Theorem 6.1).
	d, err := ParallelLines(8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	senders := ParallelLinesSenders(8)
	receivers := ParallelLinesReceivers(8)
	tx := []int{senders[0], senders[4]}
	ok0 := ch.Decodes(receivers[0], senders[0], tx)
	ok4 := ch.Decodes(receivers[4], senders[4], tx)
	if ok0 && ok4 {
		t.Fatal("two concurrent cross-line transmissions both decoded; construction too weak")
	}
}

func TestTwoBallsConstruction(t *testing.T) {
	for _, delta := range []int{8, 32} {
		r := math.Max(20, 5*math.Sqrt(float64(delta)))
		params := sinr.DefaultParams(r)
		d, err := TwoBalls(delta, params, rng.New(11))
		if err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		if d.NumNodes() < delta+2 {
			t.Fatalf("delta=%d: NumNodes = %d", delta, d.NumNodes())
		}
		if err := d.Validate(true); err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		g := d.StrongGraph()
		// B1 and B2 must not be directly connected.
		for _, a := range TwoBallsB1() {
			for _, b := range TwoBallsB2(delta) {
				if g.HasEdge(a, b) {
					t.Fatalf("delta=%d: balls directly connected via (%d,%d)", delta, a, b)
				}
			}
		}
		// The two B1 nodes are mutual neighbours.
		if !g.HasEdge(0, 1) {
			t.Fatalf("delta=%d: B1 nodes not adjacent", delta)
		}
		// B2 is dense: every B2 node sees many other B2 nodes.
		for _, b := range TwoBallsB2(delta) {
			if g.Degree(b) < delta-1 {
				t.Fatalf("delta=%d: B2 node %d degree %d", delta, b, g.Degree(b))
			}
		}
	}
}

func TestTwoBallsErrors(t *testing.T) {
	params := sinr.DefaultParams(20)
	if _, err := TwoBalls(1, params, rng.New(1)); err == nil {
		t.Fatal("delta=1 accepted")
	}
	if _, err := TwoBalls(10000, params, rng.New(1)); err == nil {
		t.Fatal("oversized ball accepted")
	}
}

func TestValidateRejectsBadDeployments(t *testing.T) {
	params := sinr.DefaultParams(10)
	tooClose := &Deployment{
		Name:      "too-close",
		Positions: []geom.Point{{X: 0, Y: 0}, {X: 0.3, Y: 0}},
		Params:    params,
	}
	if err := tooClose.Validate(false); err == nil {
		t.Fatal("sub-unit spacing deployment validated")
	}
	empty := &Deployment{Name: "empty", Params: params}
	if err := empty.Validate(false); err == nil {
		t.Fatal("empty deployment validated")
	}
	disconnected := &Deployment{
		Name:      "disconnected",
		Positions: []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}},
		Params:    params,
	}
	if err := disconnected.Validate(true); err == nil {
		t.Fatal("disconnected deployment validated with requireConnected")
	}
	if err := disconnected.Validate(false); err != nil {
		t.Fatalf("disconnected deployment rejected without requireConnected: %v", err)
	}
}

func TestDeploymentDerivedQuantities(t *testing.T) {
	params := sinr.DefaultParams(10)
	d, err := Line(10, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Lambda(); math.Abs(got-params.StrongRange()/2) > 1e-9 {
		t.Fatalf("Lambda = %v", got)
	}
	weak, strong, approx := d.WeakGraph(), d.StrongGraph(), d.ApproxGraph()
	if weak.NumEdges() < strong.NumEdges() || strong.NumEdges() < approx.NumEdges() {
		t.Fatal("graph nesting violated")
	}
	if _, err := d.Channel(); err != nil {
		t.Fatal(err)
	}
}

// TestDeploymentCachesDerivedQuantities pins the sharing contract the
// parallel experiment scheduler relies on: StrongGraph and Lambda are
// induced once per deployment and returned from cache on every later call,
// including concurrent ones.
func TestDeploymentCachesDerivedQuantities(t *testing.T) {
	d, err := Line(12, 2, sinr.DefaultParams(10))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	graphs := make([]interface{}, 8)
	lambdas := make([]float64, 8)
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i] = d.StrongGraph()
			lambdas[i] = d.Lambda()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(graphs); i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("StrongGraph returned different instances")
		}
		if lambdas[i] != lambdas[0] {
			t.Fatal("Lambda returned different values")
		}
	}
	if d.StrongGraph() != graphs[0] {
		t.Fatal("StrongGraph cache missed on a later call")
	}
}

// Property: uniform deployments always honour the unit minimum distance and
// stay inside their square, for arbitrary seeds.
func TestQuickUniformRandomInvariants(t *testing.T) {
	params := sinr.DefaultParams(10)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 10 + src.Intn(60)
		side := 20 + src.Float64()*20
		d, err := UniformRandom(n, side, params, src)
		if err != nil {
			return true // density rejection is acceptable
		}
		if geom.MinPairwiseDist(d.Positions) < 1-1e-9 {
			return false
		}
		for _, p := range d.Positions {
			if p.X < 0 || p.X > side || p.Y < 0 || p.Y > side {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUniformRandom200(b *testing.B) {
	params := sinr.DefaultParams(10)
	for i := 0; i < b.N; i++ {
		if _, err := UniformRandom(200, 60, params, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}
