package sinr_test

// The differential churn suite: randomized add/remove/move epochs are
// committed through topology.Deployment's epoch API and applied to
// incrementally patched FastChannels, which must produce slot receptions
// bit-identical to (a) the naive reference over the updated channel and
// (b) a FastChannel rebuilt from scratch over the post-epoch positions —
// across the matrix and grid regimes, the sparse/bounds/dense dispatch
// tiers, several worker counts, forks, and the incremental-vs-rebuild
// crossover. This file lives in the external test package because it
// drives the real topology commit path (topology imports sinr).

import (
	"fmt"
	"math"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// churnWorld is a lattice-backed dynamic deployment: nodes sit jittered on
// sites of a spacing-2 lattice, so every epoch trivially preserves the
// unit-distance invariant while still moving nodes across grid buckets and
// bounds-tier cells.
type churnWorld struct {
	t      *testing.T
	src    *rng.Source
	d      *topology.Deployment
	sites  []geom.Point // lattice site centers
	siteOf []int        // node id -> site index
	vacant []int        // unoccupied site indices
}

const churnTestJitter = 0.4

func newChurnWorld(t *testing.T, src *rng.Source, rows, cols, n int, params sinr.Params) *churnWorld {
	w := &churnWorld{t: t, src: src}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			w.sites = append(w.sites, geom.Point{X: 2 * float64(c), Y: 2 * float64(r)})
		}
	}
	if n > len(w.sites) {
		t.Fatalf("churn world: %d nodes for %d sites", n, len(w.sites))
	}
	perm := src.Perm(len(w.sites))
	pos := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		w.siteOf = append(w.siteOf, perm[i])
		pos[i] = w.jitterAt(perm[i])
	}
	w.vacant = append(w.vacant, perm[n:]...)
	w.d = &topology.Deployment{Name: "churn-world", Positions: pos, Params: params}
	if err := w.d.Validate(false); err != nil {
		t.Fatalf("initial churn world invalid: %v", err)
	}
	return w
}

func (w *churnWorld) jitterAt(site int) geom.Point {
	angle := w.src.Float64() * 2 * math.Pi
	r := churnTestJitter * math.Sqrt(w.src.Float64())
	return geom.Point{X: w.sites[site].X + r*math.Cos(angle), Y: w.sites[site].Y + r*math.Sin(angle)}
}

// epoch queues and commits one random epoch of the given op counts and
// updates the world's site bookkeeping from the returned delta.
func (w *churnWorld) epoch(moves, adds, removes int) *sinr.EpochDelta {
	n := w.d.NumNodes()
	if removes > n-2 {
		removes = n - 2
	}
	if adds > len(w.vacant) {
		adds = len(w.vacant)
	}
	touched := make(map[int]bool)
	for c := 0; c < moves; c++ {
		id := w.src.Intn(n)
		if touched[id] {
			continue
		}
		touched[id] = true
		w.d.MoveNode(id, w.jitterAt(w.siteOf[id]))
	}
	removedSites := make([]int, 0, removes)
	for c := 0; c < removes; c++ {
		id := w.src.Intn(n)
		if touched[id] {
			continue
		}
		touched[id] = true
		removedSites = append(removedSites, w.siteOf[id])
		w.d.RemoveNode(id)
	}
	addedSites := make([]int, 0, adds)
	for c := 0; c < adds; c++ {
		site := w.vacant[len(w.vacant)-1]
		w.vacant = w.vacant[:len(w.vacant)-1]
		addedSites = append(addedSites, site)
		w.d.AddNode(w.jitterAt(site))
	}
	if w.d.PendingOps() == 0 {
		return nil
	}
	delta, err := w.d.CommitEpoch()
	if err != nil {
		w.t.Fatalf("CommitEpoch: %v", err)
	}
	// Replay the delta on the site bookkeeping: removed ids free their
	// sites, survivors follow the relabel chain, added ids take their site.
	// Relabel targets are exactly the removed slots (or tail truncation).
	freed := map[int]bool{}
	for _, s := range removedSites {
		freed[s] = true
	}
	for _, rl := range delta.Relabels {
		w.siteOf[rl.To] = w.siteOf[rl.From]
	}
	w.siteOf = w.siteOf[:delta.OldN-delta.Removed]
	for i, id := range delta.Added {
		if id != len(w.siteOf) {
			w.t.Fatalf("added id %d, bookkeeping expects %d", id, len(w.siteOf))
		}
		w.siteOf = append(w.siteOf, addedSites[i])
	}
	for s := range freed {
		w.vacant = append(w.vacant, s)
	}
	if len(w.siteOf) != delta.NewN || w.d.NumNodes() != delta.NewN {
		w.t.Fatalf("bookkeeping drifted: %d sites, %d nodes, delta says %d",
			len(w.siteOf), w.d.NumNodes(), delta.NewN)
	}
	return delta
}

// churnVariants builds the fast-evaluator configurations the churn suite
// patches: both per-pair cache regimes and the sharded regime, each dispatch
// tier pinned and the adaptive default, at one and several workers.
func churnVariants(ch *sinr.Channel) map[string]*sinr.FastChannel {
	return map[string]*sinr.FastChannel{
		"matrix/default":  sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2}),
		"matrix/1w":       sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 1}),
		"matrix/sparse":   sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, SparseFactor: 1}),
		"matrix/bounds":   sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, SparseFactor: -1, BoundsFactor: 1}),
		"matrix/dense":    sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, SparseFactor: -1, BoundsFactor: -1}),
		"grid/default":    sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, MatrixThreshold: -1}),
		"grid/4w":         sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 4, MatrixThreshold: -1}),
		"grid/sparse":     sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, MatrixThreshold: -1, SparseFactor: 1}),
		"grid/bounds":     sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}),
		"grid/nocache":    sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, MatrixThreshold: -1, ColumnCacheBytes: -1}),
		"grid/dense":      sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: -1}),
		"matrix/bounds1w": sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 1, SparseFactor: -1, BoundsFactor: 1}),
		"shard/s4":        sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, Shards: 4}),
		"shard/s2/cert":   sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, Shards: 2, SparseFactor: -1, BoundsFactor: 1}),
		"shard/s4/dense":  sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: -1}),
		"shard/s8/sparse": sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2, Shards: 8, SparseFactor: 1}),
	}
}

// churnTxSets draws the transmitter sets one post-epoch comparison round
// evaluates: a sparse set, a dense set and the all-transmit slot.
func churnTxSets(src *rng.Source, n int) [][]int {
	var sparse, dense []int
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.08) {
			sparse = append(sparse, i)
		}
		if src.Bernoulli(0.45) {
			dense = append(dense, i)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return [][]int{sparse, dense, all}
}

// assertChurnEquivalent compares every patched variant — and a from-scratch
// rebuild of the same configuration — against the naive reference.
func assertChurnEquivalent(t *testing.T, w *churnWorld, ch *sinr.Channel,
	variants map[string]*sinr.FastChannel, src *rng.Source, label string) {
	t.Helper()
	n := w.d.NumNodes()
	freshCh, err := sinr.NewChannel(w.d.Params, w.d.Positions)
	if err != nil {
		t.Fatalf("%s: fresh channel: %v", label, err)
	}
	rebuilt := churnVariants(freshCh)
	defer func() {
		for _, f := range rebuilt {
			f.Close()
		}
	}()
	for _, tx := range churnTxSets(src, n) {
		want := ch.SlotReceptions(tx)
		for name, fast := range variants {
			got := fast.SlotReceptions(tx)
			compareReceptions(t, fmt.Sprintf("%s patched %s", label, name), got, want, tx)
		}
		for name, fast := range rebuilt {
			got := fast.SlotReceptions(tx)
			compareReceptions(t, fmt.Sprintf("%s rebuilt %s", label, name), got, want, tx)
		}
	}
}

func compareReceptions(t *testing.T, label string, got, want []sinr.Reception, tx []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d receptions, want %d", label, len(got), len(want))
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("%s: node %d decoded sender %d, reference says %d (k=%d)",
				label, r, got[r].Sender, want[r].Sender, len(tx))
		}
	}
}

// TestChurnEpochEquivalence is the main differential churn test: randomized
// mixed epochs, applied incrementally, must leave every variant
// bit-identical to the naive reference and to a from-scratch rebuild.
func TestChurnEpochEquivalence(t *testing.T) {
	src := rng.New(0xc4421)
	w := newChurnWorld(t, src, 10, 10, 64, sinr.DefaultParams(9))
	ch, err := w.d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	variants := churnVariants(ch)
	defer func() {
		for _, f := range variants {
			f.Close()
		}
	}()
	// Epoch 0: no churn yet — establish the baseline and force every lazily
	// built index (bounds cell index, column caches) into existence so the
	// later epochs exercise the patch paths rather than fresh builds.
	assertChurnEquivalent(t, w, ch, variants, src, "epoch 0")

	for e := 1; e <= 10; e++ {
		var delta *sinr.EpochDelta
		if e%5 == 0 {
			// Churn storm: move nearly half the deployment, crossing the
			// documented rebuild crossover.
			delta = w.epoch(w.d.NumNodes()/2, 1, 1)
		} else {
			delta = w.epoch(1+src.Intn(3), src.Intn(3), src.Intn(3))
		}
		if delta == nil {
			continue
		}
		if frac := float64(len(delta.Dirty)+delta.Removed) / float64(delta.NewN); e%5 == 0 && frac <= sinr.ChurnRebuildFraction {
			t.Fatalf("epoch %d: storm did not cross the rebuild crossover (%.2f)", e, frac)
		}
		for name, fast := range variants {
			if err := fast.ApplyEpoch(delta); err != nil {
				t.Fatalf("epoch %d: ApplyEpoch on %s: %v", e, name, err)
			}
		}
		assertChurnEquivalent(t, w, ch, variants, src, fmt.Sprintf("epoch %d (dirty=%d removed=%d added=%d n=%d)",
			e, len(delta.Dirty), delta.Removed, len(delta.Added), delta.NewN))
	}
}

// TestChurnForkEquivalence checks that forks taken from a patched evaluator
// behave exactly like the evaluator itself, and that a pre-epoch fork that
// is handed every epoch stays equivalent too (the shared channel state is
// applied once per family, private state per member).
func TestChurnForkEquivalence(t *testing.T) {
	src := rng.New(0xf02c)
	w := newChurnWorld(t, src, 8, 8, 40, sinr.DefaultParams(8))
	ch, err := w.d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []sinr.FastOptions{
		{Workers: 2},
		{Workers: 2, MatrixThreshold: -1},
		{Workers: 2, SparseFactor: -1, BoundsFactor: 1},
	} {
		opts := opts
		root := sinr.NewFastChannel(ch, opts)
		early := root.Fork() // pre-epoch fork, patched alongside the root
		for _, tx := range churnTxSets(src, w.d.NumNodes()) {
			root.SlotReceptions(tx) // build lazy state pre-epoch
		}
		for e := 0; e < 4; e++ {
			delta := w.epoch(2+src.Intn(2), src.Intn(2), src.Intn(2))
			if delta == nil {
				continue
			}
			if err := root.ApplyEpoch(delta); err != nil {
				t.Fatalf("root.ApplyEpoch: %v", err)
			}
			if err := early.ApplyEpoch(delta); err != nil {
				t.Fatalf("early.ApplyEpoch: %v", err)
			}
			late := root.Fork() // post-epoch fork
			for _, tx := range churnTxSets(src, w.d.NumNodes()) {
				want := ch.SlotReceptions(tx)
				compareReceptions(t, fmt.Sprintf("epoch %d root", e), root.SlotReceptions(tx), want, tx)
				compareReceptions(t, fmt.Sprintf("epoch %d early fork", e), early.SlotReceptions(tx), want, tx)
				compareReceptions(t, fmt.Sprintf("epoch %d late fork", e), late.SlotReceptions(tx), want, tx)
			}
			late.Close()
		}
		early.Close()
		root.Close()
		// Reset the shared channel for the next options set: the world
		// carries on churning, so rebuild a fresh channel snapshot.
		ch, err = w.d.Channel()
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestChurnApplyAllocFree pins the benchmark acceptance property: on a
// steady-state mobility cycle the incremental apply path performs zero heap
// allocations, in both per-pair cache regimes and the sharded regime,
// including the cell-index patch and the shard-partition append.
func TestChurnApplyAllocFree(t *testing.T) {
	for _, reg := range []struct {
		name string
		opts sinr.FastOptions
	}{
		{"matrix", sinr.FastOptions{Workers: 1, MatrixThreshold: 1200, SparseFactor: -1, BoundsFactor: 1}},
		{"grid", sinr.FastOptions{Workers: 1, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}},
		{"shard", sinr.FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: 1}},
	} {
		t.Run(reg.name, func(t *testing.T) {
			const n, moved = 1000, 10
			ch, deltas, err := sinr.ChurnBenchWorkload(n, moved, 7)
			if err != nil {
				t.Fatal(err)
			}
			f := sinr.NewFastChannel(ch, reg.opts)
			defer f.Close()
			if reg.opts.Shards > 0 && f.Shards() == 0 {
				t.Fatal("sharded configuration fell back to a per-pair regime")
			}
			// Build the bounds cell index and warm every bucket/arena the
			// cycle will touch.
			tx := make([]int, 0, n/2)
			for i := 0; i < n; i += 2 {
				tx = append(tx, i)
			}
			f.SlotReceptions(tx)
			for cycle := 0; cycle < 2; cycle++ {
				for _, d := range deltas {
					if err := f.ApplyEpoch(d); err != nil {
						t.Fatal(err)
					}
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(50, func() {
				if err := f.ApplyEpoch(deltas[i%2]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state ApplyEpoch allocates %.1f times per op, want 0", allocs)
			}
			// The patched evaluator still matches the naive reference.
			want := ch.SlotReceptions(tx)
			compareReceptions(t, reg.name+" post-cycle", f.SlotReceptions(tx), want, tx)
		})
	}
}

// TestChurnOutOfLatticeSharedInvalidation pins the fork-family
// invalidation of the bounds tier: when an epoch escapes the cell index's
// original lattice, whichever member applies it first drops the shared
// holder, and every other member applying the same delta must follow —
// keeping a stale local index would evaluate later dense slots on a
// pre-epoch cell decomposition.
func TestChurnOutOfLatticeSharedInvalidation(t *testing.T) {
	var pos []geom.Point
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			pos = append(pos, geom.Point{X: 2 * float64(c), Y: 2 * float64(r)})
		}
	}
	n := len(pos)
	ch, err := sinr.NewChannel(sinr.DefaultParams(6), pos)
	if err != nil {
		t.Fatal(err)
	}
	root := sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 1, SparseFactor: -1, BoundsFactor: 1})
	defer root.Close()
	fork := root.Fork()
	defer fork.Close()
	tx := make([]int, 0, n/2)
	for i := 0; i < n; i += 2 {
		tx = append(tx, i)
	}
	// Both members build and cache the shared bounds index pre-epoch.
	root.SlotReceptions(tx)
	fork.SlotReceptions(tx)
	// One node leaves the original lattice by many cells.
	moved := append([]geom.Point(nil), pos...)
	moved[0] = geom.Point{X: 120, Y: 120}
	delta := &sinr.EpochDelta{OldN: n, NewN: n, Dirty: []int{0}, Positions: moved}
	if err := root.ApplyEpoch(delta); err != nil {
		t.Fatal(err)
	}
	if err := fork.ApplyEpoch(delta); err != nil {
		t.Fatal(err)
	}
	want := ch.SlotReceptions(tx)
	compareReceptions(t, "root after lattice escape", root.SlotReceptions(tx), want, tx)
	compareReceptions(t, "fork after lattice escape", fork.SlotReceptions(tx), want, tx)
}

// TestChurnDeltaValidate covers EpochDelta's own consistency checks and the
// evaluator-side mismatch errors.
func TestChurnDeltaValidate(t *testing.T) {
	var nilDelta *sinr.EpochDelta
	if err := nilDelta.Validate(); err == nil {
		t.Fatal("nil delta validated")
	}
	bad := &sinr.EpochDelta{OldN: 3, NewN: 2, Removed: 1, Positions: make([]geom.Point, 1)}
	if err := bad.Validate(); err == nil {
		t.Fatal("position/count mismatch validated")
	}
	bad = &sinr.EpochDelta{OldN: 3, NewN: 3, Dirty: []int{7}, Positions: make([]geom.Point, 3)}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range dirty id validated")
	}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	f := sinr.NewFastChannel(ch)
	defer f.Close()
	wrongN := &sinr.EpochDelta{OldN: 5, NewN: 5, Positions: make([]geom.Point, 5)}
	if err := f.ApplyEpoch(wrongN); err == nil {
		t.Fatal("ApplyEpoch accepted a delta for the wrong node count")
	}
	if err := ch.ApplyEpoch(wrongN); err == nil {
		t.Fatal("Channel.ApplyEpoch accepted a delta for the wrong node count")
	}
}

// TestChurnCrossShardMigration drives epochs whose movers cross shard-stripe
// boundaries: lattice columns are mirrored from the far left of the
// deployment to the far right, so for any stripe count S ≥ 2 every mover
// changes shards (the stripe function is monotone in the cell column and the
// move crosses every stripe boundary). The patched sharded evaluators — and
// their pre-epoch forks, post-epoch forks and from-scratch rebuilds — must
// stay bit-identical to the naive reference, and the in-lattice patch must
// never demote the regime.
func TestChurnCrossShardMigration(t *testing.T) {
	const rows, cols = 6, 40
	var pos []geom.Point
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos = append(pos, geom.Point{X: 2 * float64(c), Y: 2 * float64(r)})
		}
	}
	n := len(pos)
	// Range 6 ⇒ cell side ≈ 6: the 78-unit-wide lattice spans ~13 cell
	// columns, so even S = 8 gets non-degenerate stripes.
	ch, err := sinr.NewChannel(sinr.DefaultParams(6), pos)
	if err != nil {
		t.Fatal(err)
	}
	shardOpts := map[string]sinr.FastOptions{
		"s2/cert":     {Workers: 2, Shards: 2, SparseFactor: -1, BoundsFactor: 1},
		"s4/adaptive": {Workers: 2, Shards: 4},
		"s4/dense":    {Workers: 2, Shards: 4, SparseFactor: -1, BoundsFactor: -1},
		"s8/cert/1w":  {Workers: 1, Shards: 8, SparseFactor: -1, BoundsFactor: 1},
	}
	roots := make(map[string]*sinr.FastChannel, len(shardOpts))
	forks := make(map[string]*sinr.FastChannel, len(shardOpts))
	for name, opt := range shardOpts {
		root := sinr.NewFastChannel(ch, opt)
		if root.Shards() == 0 {
			t.Fatalf("%s: construction fell back to a per-pair regime", name)
		}
		roots[name] = root
		forks[name] = root.Fork()
	}
	defer func() {
		for name := range roots {
			roots[name].Close()
			forks[name].Close()
		}
	}()
	src := rng.New(0x5a4d)
	cur := append([]geom.Point(nil), pos...)
	// Build every lazy index pre-epoch so the epochs exercise the patch path.
	for _, tx := range churnTxSets(src, n) {
		for name := range roots {
			roots[name].SlotReceptions(tx)
			forks[name].SlotReceptions(tx)
		}
	}
	for e := 0; e < 5; e++ {
		// Mirror lattice column e across the deployment: X = 2e becomes
		// 77.4 - 2e, off the site grid so no two nodes coincide.
		next := append([]geom.Point(nil), cur...)
		dirty := make([]int, 0, rows)
		for r := 0; r < rows; r++ {
			id := r*cols + e
			dirty = append(dirty, id)
			next[id] = geom.Point{X: 2*float64(cols-1) - cur[id].X - 0.6, Y: cur[id].Y}
		}
		delta := &sinr.EpochDelta{OldN: n, NewN: n, Dirty: dirty, Positions: next}
		cur = next
		for name, root := range roots {
			if err := root.ApplyEpoch(delta); err != nil {
				t.Fatalf("epoch %d: ApplyEpoch on %s: %v", e, name, err)
			}
			if err := forks[name].ApplyEpoch(delta); err != nil {
				t.Fatalf("epoch %d: ApplyEpoch on %s fork: %v", e, name, err)
			}
			if root.Shards() == 0 {
				t.Fatalf("epoch %d: in-lattice migration demoted %s", e, name)
			}
		}
		late := roots["s4/adaptive"].Fork()
		rebuilt := sinr.NewFastChannel(ch, shardOpts["s4/adaptive"])
		for _, tx := range churnTxSets(src, n) {
			want := ch.SlotReceptions(tx)
			for name := range roots {
				label := fmt.Sprintf("epoch %d %s", e, name)
				compareReceptions(t, label+" patched", roots[name].SlotReceptions(tx), want, tx)
				compareReceptions(t, label+" early fork", forks[name].SlotReceptions(tx), want, tx)
			}
			compareReceptions(t, fmt.Sprintf("epoch %d late fork", e), late.SlotReceptions(tx), want, tx)
			compareReceptions(t, fmt.Sprintf("epoch %d rebuilt", e), rebuilt.SlotReceptions(tx), want, tx)
		}
		late.Close()
		rebuilt.Close()
	}
}

// TestChurnShardLatticeEscape covers the sharded regime's two escape hatches
// for epochs that leave the cell index's original lattice. A moderate escape
// rebuilds the index eagerly inside ApplyEpoch (the regime has no per-pair
// state to fall back on, so it can never stay unresolved) and the evaluator
// stays sharded; an escape that stretches the deployment past the
// offset-table cap demotes the whole fork family to the per-pair grid
// regime. Either way the results must keep matching the naive reference.
func TestChurnShardLatticeEscape(t *testing.T) {
	build := func(t *testing.T) (*sinr.Channel, *sinr.FastChannel, *sinr.FastChannel, []int, []geom.Point) {
		var pos []geom.Point
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				pos = append(pos, geom.Point{X: 2 * float64(c), Y: 2 * float64(r)})
			}
		}
		ch, err := sinr.NewChannel(sinr.DefaultParams(6), pos)
		if err != nil {
			t.Fatal(err)
		}
		root := sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: 1})
		fork := root.Fork()
		tx := make([]int, 0, len(pos)/2)
		for i := 0; i < len(pos); i += 2 {
			tx = append(tx, i)
		}
		// Both members evaluate pre-epoch so the shared index is warm.
		root.SlotReceptions(tx)
		fork.SlotReceptions(tx)
		return ch, root, fork, tx, pos
	}
	apply := func(t *testing.T, ch *sinr.Channel, root, fork *sinr.FastChannel, tx []int, pos []geom.Point, to geom.Point, wantShards int) {
		t.Helper()
		moved := append([]geom.Point(nil), pos...)
		moved[0] = to
		delta := &sinr.EpochDelta{OldN: len(pos), NewN: len(pos), Dirty: []int{0}, Positions: moved}
		if err := root.ApplyEpoch(delta); err != nil {
			t.Fatalf("root.ApplyEpoch: %v", err)
		}
		if err := fork.ApplyEpoch(delta); err != nil {
			t.Fatalf("fork.ApplyEpoch: %v", err)
		}
		if root.Shards() != wantShards || fork.Shards() != wantShards {
			t.Fatalf("after escape to %v: root has %d shards, fork %d, want %d",
				to, root.Shards(), fork.Shards(), wantShards)
		}
		want := ch.SlotReceptions(tx)
		compareReceptions(t, "root after lattice escape", root.SlotReceptions(tx), want, tx)
		compareReceptions(t, "fork after lattice escape", fork.SlotReceptions(tx), want, tx)
	}
	t.Run("rebuild", func(t *testing.T) {
		ch, root, fork, tx, pos := build(t)
		defer root.Close()
		defer fork.Close()
		// ~20 cells away: outside the original lattice, well inside the
		// offset-table cap, so the eager rebuild keeps the regime sharded.
		apply(t, ch, root, fork, tx, pos, geom.Point{X: 120, Y: 120}, 4)
	})
	t.Run("demote", func(t *testing.T) {
		ch, root, fork, tx, pos := build(t)
		defer root.Close()
		defer fork.Close()
		// ~500k cells away: the offset tables would exceed boundsMaxOffsets,
		// so the whole family demotes to the per-pair grid regime.
		apply(t, ch, root, fork, tx, pos, geom.Point{X: 3e6, Y: 3e6}, 0)
	})
}
