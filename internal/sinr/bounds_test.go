package sinr

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// boundsVariants returns bounds-tier evaluators (sparse pinned off, bounds
// pinned on) in both cache regimes and at one and several workers.
func boundsVariants(t testing.TB, ch *Channel) map[string]*FastChannel {
	variants := map[string]*FastChannel{
		"matrix/1w": NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: -1, BoundsFactor: 1}),
		"matrix/4w": NewFastChannel(ch, FastOptions{Workers: 4, SparseFactor: -1, BoundsFactor: 1}),
		"grid/1w":   NewFastChannel(ch, FastOptions{Workers: 1, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}),
		"grid/4w":   NewFastChannel(ch, FastOptions{Workers: 4, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}),
	}
	t.Cleanup(func() {
		for _, f := range variants {
			f.Close()
		}
	})
	return variants
}

// TestBoundsTierEquivalence is the dedicated differential test of the
// hierarchical-bounds tier in its target regime — dense transmitter sets up
// to and including all-transmit — on the canonical dense workload geometry.
// Slots are evaluated repeatedly on the same evaluators so later slots run
// on warm aggregates, and every decision must be bit-identical to the naive
// reference.
func TestBoundsTierEquivalence(t *testing.T) {
	const n = 400
	for _, k := range []int{n / 16, n / 4, n / 2, n - 8, n} {
		for seed := uint64(1); seed <= 3; seed++ {
			ch, tx, err := DenseBenchWorkload(n, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			variants := boundsVariants(t, ch)
			label := fmt.Sprintf("k=%d seed=%d", k, seed)
			for slot := 0; slot < 2; slot++ {
				assertEquivalent(t, ch, variants, tx, fmt.Sprintf("%s slot %d", label, slot))
			}
			for _, f := range variants {
				st := f.BoundsStats()
				if st.Slots == 0 || st.Receivers == 0 {
					if k < n { // all-transmit slots have no listeners to count
						t.Fatalf("%s: bounds tier never engaged (stats %+v)", label, st)
					}
				}
				f.Close()
			}
		}
	}
}

// TestBoundsThresholdRefine plants receivers exactly on the β threshold —
// where the decode decision is decided by the last ulp of the exact
// floating-point arithmetic — and requires (a) the bounds tier to fall back
// to the exact evaluator for every planted receiver rather than guess, and
// (b) the emitted decisions to stay bit-identical to the naive reference.
// Receivers well inside and well outside the ambiguous band check that both
// certificates still fire, so the fallback stays the exception.
func TestBoundsThresholdRefine(t *testing.T) {
	p := DefaultParams(10)
	r := p.Range()

	t.Run("lone-transmitter-ring", func(t *testing.T) {
		// One transmitter; with no interference every receiver's SINR is
		// signal/N, so a receiver at distance exactly R sits exactly on β.
		pos := []geom.Point{
			{X: 0, Y: 0},          // transmitter
			{X: r, Y: 0},          // planted: exactly on threshold
			{X: -r, Y: 0},         // planted
			{X: 0, Y: r},          // planted
			{X: 0, Y: -r},         // planted
			{X: r / 2, Y: 0},      // decode-certifiable
			{X: 0, Y: r / 3},      // decode-certifiable
			{X: 2 * r, Y: 0},      // silence-certifiable
			{X: 2 * r, Y: 2 * r},  // silence-certifiable
			{X: -2 * r, Y: r / 2}, // silence-certifiable
		}
		const planted = 4
		ch, err := NewChannel(p, pos)
		if err != nil {
			t.Fatal(err)
		}
		for name, f := range boundsVariants(t, ch) {
			want := ch.SlotReceptions([]int{0})
			got := f.SlotReceptions([]int{0})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: node %d decoded %d, reference says %d", name, i, got[i].Sender, want[i].Sender)
				}
			}
			st := f.BoundsStats()
			if st.Refined < planted {
				t.Errorf("%s: %d receivers refined, want at least the %d planted on the threshold", name, st.Refined, planted)
			}
			if st.Refined >= st.Receivers {
				t.Errorf("%s: every receiver refined (%d/%d); certificates never fired", name, st.Refined, st.Receivers)
			}
		}
	})

	t.Run("interference-knife-edge", func(t *testing.T) {
		// Receiver at the origin, signal 8βN from tx1 at R/2, and tx2 placed
		// so the interference makes the exact SINR land exactly on β:
		// signal/(itf+N) = β ⟺ itf = signal/β - N = 7N.
		signal := p.Power / math.Pow(r/2, p.Alpha)
		itf := signal/p.Beta - p.Noise
		d2 := math.Cbrt(p.Power / itf)
		pos := []geom.Point{
			{X: 0, Y: 0},           // planted receiver, exactly on threshold
			{X: r / 2, Y: 0},       // tx1
			{X: -d2, Y: 0},         // tx2, interference tuned to the knife edge
			{X: r / 4, Y: 100},     // far listeners: silence-certifiable, and they
			{X: 100, Y: 100},       // add no interference that would detune the
			{X: 100 + r/3, Y: 100}, // knife edge
		}
		ch, err := NewChannel(p, pos)
		if err != nil {
			t.Fatal(err)
		}
		tx := []int{1, 2}
		for name, f := range boundsVariants(t, ch) {
			want := ch.SlotReceptions(tx)
			got := f.SlotReceptions(tx)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: node %d decoded %d, reference says %d", name, i, got[i].Sender, want[i].Sender)
				}
			}
			if st := f.BoundsStats(); st.Refined < 1 {
				t.Errorf("%s: knife-edge receiver was not refined (stats %+v)", name, st)
			}
		}
	})
}

// TestBoundsAdaptiveDispatch checks the three-way dispatch boundaries: the
// adaptive cost model must select the bounds tier on a dense many-cell
// workload, must reject it when everyone transmits (no listeners, so the
// dense skip-scan is already optimal), and must leave genuinely sparse
// slots on the sender-centric path.
func TestBoundsAdaptiveDispatch(t *testing.T) {
	const n = 2000
	ch, tx, err := DenseBenchWorkload(n, n/4, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastChannel(ch, FastOptions{Workers: 1})
	defer f.Close()

	f.SlotReceptions(tx)
	st := f.BoundsStats()
	if st.Slots != 1 {
		t.Fatalf("dense k=n/4 slot: bounds tier evaluated %d slots, want 1", st.Slots)
	}
	if rate := st.RefineRate(); rate > 0.5 {
		t.Errorf("refine rate %.2f on the canonical dense workload; bounds too loose to pay off", rate)
	}

	// All-transmit: no listeners, the tier must decline.
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	f.SlotReceptions(all)
	if got := f.BoundsStats().Slots; got != st.Slots {
		t.Errorf("all-transmit slot took the bounds tier (slots %d -> %d)", st.Slots, got)
	}

	// A handful of transmitters: the sparse path must keep priority.
	f.SlotReceptions(tx[:5])
	if got := f.BoundsStats().Slots; got != st.Slots {
		t.Errorf("sparse slot took the bounds tier (slots %d -> %d)", st.Slots, got)
	}

	f.ResetBoundsStats()
	if got := f.BoundsStats(); got != (BoundsStats{}) {
		t.Errorf("ResetBoundsStats left %+v", got)
	}

	// A fork shares the immutable index but owns private counters.
	g := f.Fork()
	defer g.Close()
	g.SlotReceptions(tx)
	if g.bidx != f.bidx || g.bidx == nil {
		t.Fatal("fork does not share the parent's bounds index")
	}
	if got := g.Fork().BoundsStats(); got != (BoundsStats{}) {
		t.Errorf("fresh fork inherited counters %+v", got)
	}
	if got := f.BoundsStats().Slots; got != 0 {
		t.Errorf("fork evaluation bled into parent counters (slots=%d)", got)
	}

	// Forks taken before the parent ever evaluated a slot — the experiment
	// scheduler's pattern — must still share a single index build.
	cold := NewFastChannel(ch)
	defer cold.Close()
	a, b := cold.Fork(), cold.Fork()
	defer a.Close()
	defer b.Close()
	a.SlotReceptions(tx)
	b.SlotReceptions(tx)
	if a.bidx == nil || a.bidx != b.bidx {
		t.Fatal("cold forks built separate bounds indexes")
	}
}

// TestBoundsBetaGuard pins the degenerate-β corner: with β barely above 1
// the decision-exactness slack argument does not hold, so the tier must
// decline even when forced, and the dense path must carry the slot.
func TestBoundsBetaGuard(t *testing.T) {
	p := DefaultParams(10)
	p.Beta = 1 + 1e-12
	src := rng.New(3)
	pos := make([]geom.Point, 80)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
	}
	ch, err := NewChannel(p, pos)
	if err != nil {
		t.Fatal(err)
	}
	var tx []int
	for i := 0; i < len(pos); i += 2 {
		tx = append(tx, i)
	}
	f := NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: -1, BoundsFactor: 1})
	defer f.Close()
	want := ch.SlotReceptions(tx)
	got := f.SlotReceptions(tx)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d decoded %d, reference says %d", i, got[i].Sender, want[i].Sender)
		}
	}
	if st := f.BoundsStats(); st.Slots != 0 {
		t.Errorf("bounds tier engaged with beta-1 = 1e-12 (stats %+v)", st)
	}
}

// TestBuildCandidatesMarkWraparound covers the sparse path's visit-stamp
// wraparound: after 2³² slots the generation counter wraps, the stale marks
// — which at that point hold the very stamp values the new generations will
// reuse — must be cleared, or ball members would be wrongly deduplicated
// away and receivers silently dropped. The test injects a near-wrap stamp
// state and checks both the emitted receptions and the rebuilt candidate
// set against a fresh evaluator.
func TestBuildCandidatesMarkWraparound(t *testing.T) {
	src := rng.New(0x77a9)
	const n = 150
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	var tx []int
	for i := 0; i < n; i += 6 {
		tx = append(tx, i)
	}
	f := NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: 1})
	defer f.Close()
	f.SlotReceptions(tx) // marks now carry stamp 1, the post-wrap generation

	// Jump the generation counter to the wrap boundary: the next slot
	// increments it to 0 and must take the reset branch.
	f.markGen = ^uint32(0)
	for slot := 0; slot < 3; slot++ {
		want := ch.SlotReceptions(tx)
		got := f.SlotReceptions(tx)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("slot %d after wraparound: node %d decoded %d, reference says %d",
					slot, r, got[r].Sender, want[r].Sender)
			}
		}
	}
	if f.markGen != 3 {
		t.Errorf("markGen = %d after wrap plus three slots, want 3", f.markGen)
	}

	fresh := NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: 1})
	defer fresh.Close()
	fresh.SlotReceptions(tx)
	got := append([]int(nil), f.candidates...)
	want := append([]int(nil), fresh.candidates...)
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("candidate set has %d members after wraparound, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate set diverged after wraparound at index %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestSparseCoverageEstimate is the property test guarding the adaptive
// sparse crossover: across density regimes and transmitter counts, the
// per-slot coverage estimate 1-exp(k·ln(1-p)) that useSparse compares
// against sparseCoverageMax must stay within sparseEstimateFactor (2.5×,
// documented at sparseCoverageMax) of the measured candidate-set coverage
// |∪ balls|/n whenever the measured coverage is large enough (≥ 5%) for
// the ratio to be meaningful. If the estimate rots — a changed culling
// radius, a changed area clamp — dense slots would silently take the
// scattered sparse path (or vice versa) and this test fails before the
// crossover constant does damage.
func TestSparseCoverageEstimate(t *testing.T) {
	const sparseEstimateFactor = 2.5
	const n = 400
	regimes := []struct {
		name       string
		sideFactor float64
		rangeR     float64
	}{
		{"dense", 2, 8},
		{"medium", 4, 8},
		{"sparse", 8, 8},
		{"short-range", 4, 4},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for _, k := range []int{4, 20, n / 8, n / 4, n / 2} {
				var estSum, measSum float64
				const seeds = 5
				for seed := uint64(0); seed < seeds; seed++ {
					src := rng.New(0xc0ffee + seed)
					side := reg.sideFactor * math.Sqrt(float64(n))
					pos := make([]geom.Point, n)
					for i := range pos {
						pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
					}
					ch, err := NewChannel(DefaultParams(reg.rangeR), pos)
					if err != nil {
						t.Fatal(err)
					}
					f := NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: 1})
					tx := make([]int, 0, k)
					seen := make(map[int]bool, k)
					for len(tx) < k {
						id := src.Intn(n)
						if !seen[id] {
							seen[id] = true
							tx = append(tx, id)
						}
					}
					if math.IsInf(f.logBallMiss, -1) {
						f.Close()
						t.Skip("single ball covers the deployment; estimate saturates")
					}
					estSum += 1 - math.Exp(float64(k)*f.logBallMiss)
					f.buildCandidates(tx)
					measSum += float64(len(f.candidates)) / float64(n)
					f.Close()
				}
				est, meas := estSum/seeds, measSum/seeds
				if meas < 0.05 {
					continue
				}
				if ratio := est / meas; ratio > sparseEstimateFactor || ratio < 1/sparseEstimateFactor {
					t.Errorf("k=%d: estimated coverage %.3f vs measured %.3f (ratio %.2f exceeds %.1fx)",
						k, est, meas, est/meas, sparseEstimateFactor)
				}
			}
		})
	}
}
