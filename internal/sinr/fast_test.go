package sinr

import (
	"fmt"
	"math"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// fastVariants returns the fast-evaluator configurations the differential
// tests exercise: the cached-matrix path and the spatial-grid far-field
// path, each at one and several workers, with the sparse sender-centric
// crossover and the hierarchical-bounds tier forced on, forced off and left
// at their defaults. The evaluators' worker pools are released when the
// test finishes.
func fastVariants(t testing.TB, ch *Channel) map[string]*FastChannel {
	variants := map[string]*FastChannel{
		"matrix/1w":        NewFastChannel(ch, FastOptions{Workers: 1}),
		"matrix/4w":        NewFastChannel(ch, FastOptions{Workers: 4}),
		"matrix/nosparse":  NewFastChannel(ch, FastOptions{Workers: 2, SparseFactor: -1}),
		"matrix/sparse":    NewFastChannel(ch, FastOptions{Workers: 2, SparseFactor: 1}),
		"matrix/bounds":    NewFastChannel(ch, FastOptions{Workers: 2, SparseFactor: -1, BoundsFactor: 1}),
		"matrix/bounds/1w": NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: -1, BoundsFactor: 1}),
		"grid/1w":          NewFastChannel(ch, FastOptions{Workers: 1, MatrixThreshold: -1}),
		"grid/4w":          NewFastChannel(ch, FastOptions{Workers: 4, MatrixThreshold: -1}),
		"grid/nosparse":    NewFastChannel(ch, FastOptions{Workers: 2, MatrixThreshold: -1, SparseFactor: -1}),
		"grid/sparse":      NewFastChannel(ch, FastOptions{Workers: 2, MatrixThreshold: -1, SparseFactor: 1}),
		"grid/nocache":     NewFastChannel(ch, FastOptions{Workers: 2, MatrixThreshold: -1, ColumnCacheBytes: -1}),
		"grid/bounds":      NewFastChannel(ch, FastOptions{Workers: 2, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}),
		"grid/bounds/4w":   NewFastChannel(ch, FastOptions{Workers: 4, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}),
		"shard/s1":         NewFastChannel(ch, FastOptions{Workers: 2, Shards: 1}),
		"shard/s2/dense":   NewFastChannel(ch, FastOptions{Workers: 2, Shards: 2, SparseFactor: -1, BoundsFactor: -1}),
		"shard/s4/cert":    NewFastChannel(ch, FastOptions{Workers: 2, Shards: 4, SparseFactor: -1, BoundsFactor: 1}),
		"shard/s4/cert/1w": NewFastChannel(ch, FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: 1}),
		"shard/s8/sparse":  NewFastChannel(ch, FastOptions{Workers: 4, Shards: 8, SparseFactor: 1}),
	}
	t.Cleanup(func() {
		for _, f := range variants {
			f.Close()
		}
	})
	return variants
}

// assertEquivalent checks every fast variant against the naive reference for
// one transmitter set. The fast result must be bit-identical (Reception is a
// sender index, so bit-identical means the same slice of ints). Passing the
// same variants map across calls exercises warm scratch arenas and power
// caches; passing nil builds fresh (cold) evaluators.
func assertEquivalent(t *testing.T, ch *Channel, variants map[string]*FastChannel, tx []int, label string) {
	t.Helper()
	if variants == nil {
		variants = fastVariants(t, ch)
	}
	want := ch.SlotReceptions(tx)
	for name, fast := range variants {
		got := fast.SlotReceptions(tx)
		if len(got) != len(want) {
			t.Fatalf("%s %s: %d receptions, want %d", label, name, len(got), len(want))
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("%s %s: node %d decoded sender %d, naive reference says %d (tx=%v)",
					label, name, r, got[r].Sender, want[r].Sender, tx)
			}
		}
	}
}

// TestSlotReceptionsEquivalence is the differential property test of the
// fast evaluator: across three density regimes it draws random topologies
// and random transmitter sets and requires both fast paths, at one and
// several workers, to reproduce the naive reference exactly. Half-duplex is
// exercised by every case in which a transmitter is also a potential
// receiver; the all-transmit case makes it total.
func TestSlotReceptionsEquivalence(t *testing.T) {
	regimes := []struct {
		name       string
		sideFactor float64 // deployment side = sideFactor * sqrt(n)
		txProb     float64
	}{
		{"sparse", 8, 0.05},
		{"medium", 4, 0.2},
		{"dense", 2, 0.5},
	}
	const casesPerRegime = 100
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			src := rng.New(0xd1ff + uint64(len(reg.name)))
			for c := 0; c < casesPerRegime; c++ {
				n := 20 + src.Intn(100)
				side := reg.sideFactor * math.Sqrt(float64(n))
				pos := make([]geom.Point, n)
				for i := range pos {
					pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
				}
				params := DefaultParams(5 + src.Float64()*20)
				ch, err := NewChannel(params, pos)
				if err != nil {
					t.Fatal(err)
				}
				variants := fastVariants(t, ch)
				label := fmt.Sprintf("case %d (n=%d)", c, n)
				// Several independent transmitter sets over the same
				// evaluators: the second and later slots run on warm
				// scratch arenas and power caches.
				for slot := 0; slot < 3; slot++ {
					var tx []int
					for i := 0; i < n; i++ {
						if src.Bernoulli(reg.txProb) {
							tx = append(tx, i)
						}
					}
					assertEquivalent(t, ch, variants, tx, fmt.Sprintf("%s slot %d (k=%d)", label, slot, len(tx)))
				}
				// The same deployment with everyone transmitting: pure
				// half-duplex, nothing may be decoded anywhere.
				all := make([]int, n)
				for i := range all {
					all[i] = i
				}
				assertEquivalent(t, ch, variants, all, label+" all-tx")
				// Release the case's pool goroutines eagerly rather than
				// letting hundreds of evaluators park helpers until the
				// subtest's deferred cleanup runs.
				for _, f := range variants {
					f.Close()
				}
			}
		})
	}
}

// TestSparseSenderCentricEquivalence is the dedicated differential test of
// the sparse sender-centric path: across transmitter densities k = 1, √n
// and n/4 and worker counts 1 and 4, the sparse path (forced on with
// SparseFactor 1) must reproduce the naive reference — and therefore the
// dense scan, which is held to the same reference elsewhere — bit for bit,
// on both the matrix and the grid regime. Slots are evaluated repeatedly on
// the same evaluators so the second and later slots run on warm candidate
// buffers and visit stamps.
func TestSparseSenderCentricEquivalence(t *testing.T) {
	src := rng.New(0x5a135)
	const n = 360
	side := 5 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(14), pos)
	if err != nil {
		t.Fatal(err)
	}
	densities := []struct {
		name string
		k    int
	}{
		{"k=1", 1},
		{"k=sqrt(n)", int(math.Sqrt(n))},
		{"k=n/4", n / 4},
	}
	for _, regime := range []struct {
		name      string
		threshold int
	}{
		{"matrix", 0},
		{"grid", -1},
	} {
		for _, workers := range []int{1, 4} {
			sparse := NewFastChannel(ch, FastOptions{
				Workers: workers, MatrixThreshold: regime.threshold, SparseFactor: 1,
			})
			dense := NewFastChannel(ch, FastOptions{
				Workers: workers, MatrixThreshold: regime.threshold, SparseFactor: -1,
			})
			for _, d := range densities {
				for slot := 0; slot < 4; slot++ {
					tx := make([]int, 0, d.k)
					for len(tx) < d.k {
						id := src.Intn(n)
						dup := false
						for _, s := range tx {
							if s == id {
								dup = true
								break
							}
						}
						if !dup {
							tx = append(tx, id)
						}
					}
					want := ch.SlotReceptions(tx)
					label := fmt.Sprintf("%s/%dw %s slot %d", regime.name, workers, d.name, slot)
					for name, fast := range map[string]*FastChannel{"sparse": sparse, "dense": dense} {
						got := fast.SlotReceptions(tx)
						for r := range want {
							if got[r] != want[r] {
								t.Fatalf("%s %s: node %d decoded %d, reference says %d (tx=%v)",
									label, name, r, got[r].Sender, want[r].Sender, tx)
							}
						}
					}
				}
			}
			sparse.Close()
			dense.Close()
		}
	}
}

// TestForkMatchesParent checks that a fork of a (warm) fast evaluator keeps
// producing receptions bit-identical to the naive reference on both the
// matrix and grid paths, and that the fork and its parent do not share
// mutable scratch: interleaved and concurrent evaluations of different
// transmitter sets stay independent.
func TestForkMatchesParent(t *testing.T) {
	src := rng.New(0xf0f0)
	n := 120
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []FastOptions{
		{Workers: 2},
		{Workers: 2, MatrixThreshold: -1},
		{Workers: 2, SparseFactor: -1, BoundsFactor: 1},
		{Workers: 2, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1},
	} {
		name := "matrix"
		if opts.MatrixThreshold < 0 {
			name = "grid"
		}
		if opts.BoundsFactor > 0 {
			name += "/bounds"
		}
		t.Run(name, func(t *testing.T) {
			parent := NewFastChannel(ch, opts)
			// Warm the parent's scratch and column cache before forking.
			warm := []int{1, 3, 5, 7}
			parent.SlotReceptions(warm)
			fork := parent.Fork()
			if fork.NumNodes() != parent.NumNodes() || fork.Channel() != parent.Channel() {
				t.Fatal("fork does not share the parent's deployment")
			}

			// Interleaved slots: the fork's result must survive the parent
			// evaluating a different transmitter set (no shared out slice).
			txA := []int{0, 10, 20, 30, 40}
			txB := []int{2, 4, 6, 8}
			got := fork.SlotReceptions(txA)
			parent.SlotReceptions(txB)
			want := ch.SlotReceptions(txA)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("fork diverged at node %d after parent ran: got %d want %d",
						r, got[r].Sender, want[r].Sender)
				}
			}

			// Concurrent forks over random transmitter sets: run under -race
			// this is the scheduler's sharing pattern (one fork per worker).
			const forks = 4
			done := make(chan error, forks)
			for w := 0; w < forks; w++ {
				f := parent.Fork()
				wsrc := rng.New(uint64(w) + 100)
				go func() {
					for slot := 0; slot < 25; slot++ {
						var tx []int
						for i := 0; i < n; i++ {
							if wsrc.Bernoulli(0.1) {
								tx = append(tx, i)
							}
						}
						got := f.SlotReceptions(tx)
						want := ch.SlotReceptions(tx)
						for r := range want {
							if got[r] != want[r] {
								done <- fmt.Errorf("concurrent fork diverged at node %d (slot %d)", r, slot)
								return
							}
						}
					}
					done <- nil
				}()
			}
			for w := 0; w < forks; w++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSlotReceptionsEquivalenceThreshold pins the β-threshold and near-field
// edge cases: receivers exactly at, just inside and just outside the
// transmission range R, coincident nodes inside the near-field clamp, and a
// symmetric-interference tie. These are the cases the far-field culling
// slack exists for.
func TestSlotReceptionsEquivalenceThreshold(t *testing.T) {
	p := DefaultParams(10)
	r := p.Range()
	cases := []struct {
		name string
		pos  []geom.Point
		tx   []int
	}{
		{"exactly-at-range", []geom.Point{{X: 0, Y: 0}, {X: r, Y: 0}}, []int{0}},
		{"just-inside", []geom.Point{{X: 0, Y: 0}, {X: r * 0.999999, Y: 0}}, []int{0}},
		{"just-outside", []geom.Point{{X: 0, Y: 0}, {X: r * 1.000001, Y: 0}}, []int{0}},
		{"range-ring", []geom.Point{
			{X: 0, Y: 0}, {X: r, Y: 0}, {X: -r, Y: 0}, {X: 0, Y: r}, {X: 0, Y: -r},
		}, []int{0}},
		{"near-field-clamp", []geom.Point{{X: 0, Y: 0}, {X: 0.25, Y: 0}, {X: 0.5, Y: 0}}, []int{0}},
		{"coincident-nodes", []geom.Point{{X: 3, Y: 3}, {X: 3, Y: 3}, {X: 5, Y: 3}}, []int{0}},
		{"symmetric-tie", []geom.Point{{X: -3, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 0}}, []int{0, 1}},
		{"half-duplex-pair", []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}}, []int{0, 1}},
		{"strong-range-line", []geom.Point{
			{X: 0, Y: 0}, {X: p.StrongRange(), Y: 0}, {X: 2 * p.StrongRange(), Y: 0},
		}, []int{0, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch, err := NewChannel(p, tc.pos)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, ch, nil, tc.tx, tc.name)
		})
	}
}

// TestFastChannelSubRangeDeployment covers the degenerate parameter corner
// where the transmission range is below the near-field clamp distance: the
// candidate radius must not collapse below 1.
func TestFastChannelSubRangeDeployment(t *testing.T) {
	p := DefaultParams(0.9)
	ch, err := NewChannel(p, []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 2, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ch, nil, []int{0}, "sub-range")
	assertEquivalent(t, ch, nil, []int{0, 2}, "sub-range-two")
}

// TestFastChannelEmptyAndAccessors checks the trivial paths and the
// evaluator accessors.
func TestFastChannelEmptyAndAccessors(t *testing.T) {
	ch, err := NewChannel(DefaultParams(10), []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastChannel(ch)
	if f.Params() != ch.Params() {
		t.Fatal("Params mismatch")
	}
	if f.NumNodes() != ch.NumNodes() {
		t.Fatal("NumNodes mismatch")
	}
	if f.Channel() != ch {
		t.Fatal("Channel accessor mismatch")
	}
	rec := f.SlotReceptions(nil)
	for i, r := range rec {
		if r.Sender != -1 {
			t.Fatalf("node %d decoded %d with no transmitters", i, r.Sender)
		}
	}
}

// TestFastChannelReusesOutput documents the arena contract: the slice
// returned by one call is overwritten by the next.
func TestFastChannelReusesOutput(t *testing.T) {
	ch, err := NewChannel(DefaultParams(10), []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastChannel(ch)
	first := f.SlotReceptions([]int{0})
	if first[1].Sender != 0 {
		t.Fatalf("node 1 decoded %d, want 0", first[1].Sender)
	}
	second := f.SlotReceptions(nil)
	if &first[0] != &second[0] {
		t.Fatal("fast evaluator did not reuse its output arena")
	}
	if first[1].Sender != -1 {
		t.Fatal("previous result not overwritten by the arena")
	}
}

// TestFastChannelAllocFree verifies the arena property: after the first
// call, slot evaluation performs no allocations (single-worker, both paths;
// the multi-worker path allocates only goroutine bookkeeping).
func TestFastChannelAllocFree(t *testing.T) {
	src := rng.New(11)
	pos := make([]geom.Point, 300)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 80, Y: src.Float64() * 80}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	var tx []int
	for i := range pos {
		if i%7 == 0 {
			tx = append(tx, i)
		}
	}
	for _, tc := range []struct {
		name string
		opt  FastOptions
	}{
		{"matrix/dense", FastOptions{Workers: 1, SparseFactor: -1}},
		{"matrix/sparse", FastOptions{Workers: 1, SparseFactor: 1}},
		{"matrix/bounds", FastOptions{Workers: 1, SparseFactor: -1, BoundsFactor: 1}},
		{"grid/dense", FastOptions{Workers: 1, MatrixThreshold: -1, SparseFactor: -1}},
		{"grid/sparse", FastOptions{Workers: 1, MatrixThreshold: -1, SparseFactor: 1}},
		{"grid/bounds", FastOptions{Workers: 1, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}},
		{"matrix/sparse/4w", FastOptions{Workers: 4, SparseFactor: 1}},
		{"grid/bounds/4w", FastOptions{Workers: 4, MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: 1}},
		{"shard/cert", FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: 1}},
		{"shard/dense", FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: -1}},
		{"shard/sparse", FastOptions{Workers: 1, Shards: 4, SparseFactor: 1}},
		{"shard/cert/4w", FastOptions{Workers: 4, Shards: 8, SparseFactor: -1, BoundsFactor: 1}},
	} {
		f := NewFastChannel(ch, tc.opt)
		f.SlotReceptions(tx) // warm the scratch rows and candidate buffers
		allocs := testing.AllocsPerRun(20, func() { f.SlotReceptions(tx) })
		if allocs != 0 {
			t.Errorf("%s path allocates %.1f objects per slot, want 0", tc.name, allocs)
		}
		f.Close()
	}
}

// TestColumnCacheEviction pins the bounded column cache of the grid regime:
// the resident set never exceeds the configured capacity, the clock sweep
// recycles column storage when the transmitting working set turns over, the
// current slot's columns are pinned (a slot whose transmitter set exceeds
// the capacity serves the overflow by recomputation instead of thrashing
// the columns it just filled), and every decision stays bit-identical to
// the naive reference throughout.
func TestColumnCacheEviction(t *testing.T) {
	src := rng.New(0xeb1c)
	const n = 120
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(10), pos)
	if err != nil {
		t.Fatal(err)
	}
	// Grid regime with dense dispatch pinned, so every slot runs
	// ensureColumns + gridChunk; capacity counts whole columns (8n bytes
	// each).
	newEval := func(capacity int) *FastChannel {
		f := NewFastChannel(ch, FastOptions{Workers: 1, MatrixThreshold: -1,
			SparseFactor: -1, BoundsFactor: -1, ColumnCacheBytes: int64(8 * n * capacity)})
		t.Cleanup(f.Close)
		return f
	}
	slot := func(t *testing.T, f *FastChannel, tx []int, label string) {
		t.Helper()
		want := ch.SlotReceptions(tx)
		got := f.SlotReceptions(tx)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("%s: node %d decoded sender %d, naive reference says %d",
					label, r, got[r].Sender, want[r].Sender)
			}
		}
	}
	t.Run("working set turnover", func(t *testing.T) {
		f := newEval(6)
		a := []int{0, 1, 2, 3, 4, 5}
		b := []int{6, 7, 8, 9, 10, 11}
		slot(t, f, a, "A cold")
		if st := f.ColumnStats(); st != (ColumnStats{Misses: 6, Resident: 6}) {
			t.Fatalf("after cold slot: %+v", st)
		}
		slot(t, f, a, "A warm")
		if st := f.ColumnStats(); st != (ColumnStats{Hits: 6, Misses: 6, Resident: 6}) {
			t.Fatalf("after warm slot: %+v", st)
		}
		// A disjoint working set of the same size must displace every
		// resident column while the resident count stays at capacity.
		slot(t, f, b, "B")
		if st := f.ColumnStats(); st != (ColumnStats{Hits: 6, Misses: 12, Evictions: 6, Resident: 6}) {
			t.Fatalf("after turnover slot: %+v", st)
		}
	})
	t.Run("slot pins its columns", func(t *testing.T) {
		f := newEval(4)
		tx := []int{0, 1, 2, 3, 4, 5, 6, 7}
		slot(t, f, tx, "oversized cold")
		if st := f.ColumnStats(); st != (ColumnStats{Misses: 8, Resident: 4}) {
			t.Fatalf("after cold oversized slot: %+v", st)
		}
		for i := 0; i < 3; i++ {
			slot(t, f, tx, "oversized warm")
		}
		// Each repeat hits the four pinned columns and recomputes the
		// overflow; nothing is ever evicted just to be re-evicted within the
		// same slot.
		if st := f.ColumnStats(); st != (ColumnStats{Hits: 12, Misses: 20, Resident: 4}) {
			t.Fatalf("after warm oversized slots: %+v", st)
		}
	})
	t.Run("random sweep stays exact", func(t *testing.T) {
		f := newEval(3)
		for c := 0; c < 40; c++ {
			var tx []int
			for i := 0; i < n; i++ {
				if src.Bernoulli(0.15) {
					tx = append(tx, i)
				}
			}
			slot(t, f, tx, fmt.Sprintf("case %d (k=%d)", c, len(tx)))
		}
		st := f.ColumnStats()
		if st.Evictions == 0 {
			t.Fatal("a 40-slot sweep over a 3-column cache never evicted")
		}
		if st.Resident > 3 {
			t.Fatalf("resident columns %d exceed the capacity 3", st.Resident)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		f := NewFastChannel(ch, FastOptions{Workers: 1, MatrixThreshold: -1,
			SparseFactor: -1, BoundsFactor: -1, ColumnCacheBytes: -1})
		t.Cleanup(f.Close)
		slot(t, f, []int{0, 1, 2, 3}, "nocache")
		if st := f.ColumnStats(); st != (ColumnStats{}) {
			t.Fatalf("disabled cache reports activity: %+v", st)
		}
	})
}

func BenchmarkFastSlotReceptions200(b *testing.B) {
	p := testParams()
	src := rng.New(8)
	pos := make([]geom.Point, 200)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 60, Y: src.Float64() * 60}
	}
	ch, err := NewChannel(p, pos)
	if err != nil {
		b.Fatal(err)
	}
	var tx []int
	for i := range pos {
		if i%5 == 0 {
			tx = append(tx, i)
		}
	}
	f := NewFastChannel(ch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SlotReceptions(tx)
	}
}
