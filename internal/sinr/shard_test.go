package sinr

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// shardVariants returns sharded evaluators across the shard counts the
// acceptance criteria pin (S ∈ {1, 2, 4, 8}), at one and several workers,
// with the certified pipeline forced on, forced off (sharded dense scan)
// and left adaptive.
func shardVariants(t testing.TB, ch *Channel) map[string]*FastChannel {
	variants := map[string]*FastChannel{
		"s1/cert/1w":  NewFastChannel(ch, FastOptions{Workers: 1, Shards: 1, SparseFactor: -1, BoundsFactor: 1}),
		"s2/cert":     NewFastChannel(ch, FastOptions{Workers: 4, Shards: 2, SparseFactor: -1, BoundsFactor: 1}),
		"s4/cert":     NewFastChannel(ch, FastOptions{Workers: 4, Shards: 4, SparseFactor: -1, BoundsFactor: 1}),
		"s8/cert":     NewFastChannel(ch, FastOptions{Workers: 4, Shards: 8, SparseFactor: -1, BoundsFactor: 1}),
		"s4/adaptive": NewFastChannel(ch, FastOptions{Workers: 2, Shards: 4, SparseFactor: -1}),
		"s4/dense/1w": NewFastChannel(ch, FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: -1}),
		"s8/dense":    NewFastChannel(ch, FastOptions{Workers: 4, Shards: 8, SparseFactor: -1, BoundsFactor: -1}),
		"s4/sparse":   NewFastChannel(ch, FastOptions{Workers: 2, Shards: 4, SparseFactor: 1}),
	}
	t.Cleanup(func() {
		for _, f := range variants {
			f.Close()
		}
	})
	return variants
}

// TestShardedEquivalence is the dedicated differential test of the sharded
// regime: across dense transmitter densities up to and including
// all-transmit, every shard count S ∈ {1, 2, 4, 8} — certified, dense and
// sparse pipelines, one and several workers — must reproduce the naive
// reference bit for bit. Bit-identity across S follows: every variant is
// held to the same reference.
func TestShardedEquivalence(t *testing.T) {
	const n = 400
	for _, k := range []int{n / 16, n / 4, n / 2, n - 8, n} {
		for seed := uint64(1); seed <= 3; seed++ {
			ch, tx, err := DenseBenchWorkload(n, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			variants := shardVariants(t, ch)
			label := fmt.Sprintf("k=%d seed=%d", k, seed)
			for slot := 0; slot < 2; slot++ {
				assertEquivalent(t, ch, variants, tx, fmt.Sprintf("%s slot %d", label, slot))
			}
			for name, f := range variants {
				if f.Shards() == 0 {
					t.Fatalf("%s %s: evaluator fell out of the sharded regime", label, name)
				}
				f.Close()
			}
		}
	}
}

// TestShardedThresholdRefine reruns the planted on-threshold geometries of
// the bounds tier against the sharded regime: receivers whose decode
// decision is decided by the last ulp must refine through the exact
// arithmetic (never be guessed from the certificates), receivers well clear
// of the threshold must certify, and every decision must match the naive
// reference.
func TestShardedThresholdRefine(t *testing.T) {
	p := DefaultParams(10)
	r := p.Range()

	t.Run("lone-transmitter-ring", func(t *testing.T) {
		pos := []geom.Point{
			{X: 0, Y: 0},          // transmitter
			{X: r, Y: 0},          // planted: exactly on threshold
			{X: -r, Y: 0},         // planted
			{X: 0, Y: r},          // planted
			{X: 0, Y: -r},         // planted
			{X: r / 2, Y: 0},      // decode-certifiable
			{X: 0, Y: r / 3},      // decode-certifiable
			{X: 2 * r, Y: 0},      // silence-certifiable
			{X: 2 * r, Y: 2 * r},  // silence-certifiable
			{X: -2 * r, Y: r / 2}, // silence-certifiable
		}
		const planted = 4
		ch, err := NewChannel(p, pos)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{1, 2, 4, 8} {
			f := NewFastChannel(ch, FastOptions{Workers: 1, Shards: s, SparseFactor: -1, BoundsFactor: 1})
			want := ch.SlotReceptions([]int{0})
			got := f.SlotReceptions([]int{0})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("S=%d: node %d decoded %d, reference says %d", s, i, got[i].Sender, want[i].Sender)
				}
			}
			st := f.BoundsStats()
			if st.Refined < planted {
				t.Errorf("S=%d: %d receivers refined, want at least the %d planted on the threshold", s, st.Refined, planted)
			}
			if st.Refined >= st.Receivers {
				t.Errorf("S=%d: every receiver refined (%d/%d); certificates never fired", s, st.Refined, st.Receivers)
			}
			f.Close()
		}
	})

	t.Run("interference-knife-edge", func(t *testing.T) {
		signal := p.Power / math.Pow(r/2, p.Alpha)
		itf := signal/p.Beta - p.Noise
		d2 := math.Cbrt(p.Power / itf)
		pos := []geom.Point{
			{X: 0, Y: 0},           // planted receiver, exactly on threshold
			{X: r / 2, Y: 0},       // tx1
			{X: -d2, Y: 0},         // tx2, interference tuned to the knife edge
			{X: r / 4, Y: 100},     // far listeners, spread across supercells
			{X: 100, Y: 100},       //
			{X: 100 + r/3, Y: 100}, //
		}
		ch, err := NewChannel(p, pos)
		if err != nil {
			t.Fatal(err)
		}
		tx := []int{1, 2}
		for _, s := range []int{1, 4, 8} {
			f := NewFastChannel(ch, FastOptions{Workers: 1, Shards: s, SparseFactor: -1, BoundsFactor: 1})
			want := ch.SlotReceptions(tx)
			got := f.SlotReceptions(tx)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("S=%d: node %d decoded %d, reference says %d", s, i, got[i].Sender, want[i].Sender)
				}
			}
			if st := f.BoundsStats(); st.Refined < 1 {
				t.Errorf("S=%d: knife-edge receiver was not refined (stats %+v)", s, st)
			}
			f.Close()
		}
	})
}

// TestShardedDispatchAndGuards covers the regime's dispatch boundaries: the
// automatic selection threshold, the β guard (certificates decline, the
// sharded dense scan carries the slot, results still exact), and the
// construction fallback for outlier geometry whose offset tables would
// exceed the cap.
func TestShardedDispatchAndGuards(t *testing.T) {
	t.Run("auto-threshold", func(t *testing.T) {
		if got := resolveShards(0, DefaultShardThreshold); got != 0 {
			t.Errorf("resolveShards(0, threshold) = %d, want 0", got)
		}
		if got := resolveShards(0, DefaultShardThreshold+1); got != defaultShardCount {
			t.Errorf("resolveShards(0, threshold+1) = %d, want %d", got, defaultShardCount)
		}
		if got := resolveShards(-1, 1<<20); got != 0 {
			t.Errorf("resolveShards(-1, 1M) = %d, want 0 (disabled)", got)
		}
		if got := resolveShards(3, 100); got != 3 {
			t.Errorf("resolveShards(3, 100) = %d, want 3 (forced)", got)
		}
	})

	t.Run("beta-guard", func(t *testing.T) {
		p := DefaultParams(10)
		p.Beta = 1 + 1e-12
		src := rng.New(3)
		pos := make([]geom.Point, 80)
		for i := range pos {
			pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
		}
		ch, err := NewChannel(p, pos)
		if err != nil {
			t.Fatal(err)
		}
		var tx []int
		for i := 0; i < len(pos); i += 2 {
			tx = append(tx, i)
		}
		f := NewFastChannel(ch, FastOptions{Workers: 1, Shards: 4, SparseFactor: -1, BoundsFactor: 1})
		defer f.Close()
		want := ch.SlotReceptions(tx)
		got := f.SlotReceptions(tx)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d decoded %d, reference says %d", i, got[i].Sender, want[i].Sender)
			}
		}
		if st := f.BoundsStats(); st.Slots != 0 {
			t.Errorf("certified pipeline engaged with beta-1 = 1e-12 (stats %+v)", st)
		}
		if f.Shards() == 0 {
			t.Error("beta guard must keep the sharded regime (dense scan), not demote it")
		}
	})

	t.Run("outlier-geometry-fallback", func(t *testing.T) {
		// Two clusters ~1e6 apart: the per-offset tables would span far past
		// boundsMaxOffsets, so construction must fall back to the per-pair
		// regimes even though Shards was forced — and still be exact.
		pos := []geom.Point{
			{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 5},
			{X: 1e6, Y: 1e6}, {X: 1e6 + 5, Y: 1e6},
		}
		ch, err := NewChannel(DefaultParams(10), pos)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFastChannel(ch, FastOptions{Workers: 1, Shards: 8})
		defer f.Close()
		if f.Shards() != 0 {
			t.Fatalf("outlier geometry kept the sharded regime (S=%d)", f.Shards())
		}
		tx := []int{0, 3}
		want := ch.SlotReceptions(tx)
		got := f.SlotReceptions(tx)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d decoded %d, reference says %d", i, got[i].Sender, want[i].Sender)
			}
		}
	})
}

// TestShardedForkSharing checks the fork contract in the sharded regime:
// forks share the immutable index and shard extension (no rebuild), own
// private counters, and keep producing reference-identical receptions
// concurrently with the parent.
func TestShardedForkSharing(t *testing.T) {
	const n = 500
	ch, tx, err := DenseBenchWorkload(n, n/4, 11)
	if err != nil {
		t.Fatal(err)
	}
	parent := NewFastChannel(ch, FastOptions{Workers: 2, Shards: 4, SparseFactor: -1, BoundsFactor: 1})
	defer parent.Close()
	parent.SlotReceptions(tx)

	fork := parent.Fork()
	defer fork.Close()
	if fork.Shards() != parent.Shards() {
		t.Fatalf("fork shard count %d, parent %d", fork.Shards(), parent.Shards())
	}
	if fork.bidx == nil || fork.bidx != parent.bidx || fork.sext != parent.sext {
		t.Fatal("fork does not share the parent's index and shard extension")
	}
	if got := fork.BoundsStats(); got != (BoundsStats{}) {
		t.Errorf("fresh fork inherited counters %+v", got)
	}

	want := ch.SlotReceptions(tx)
	done := make(chan error, 2)
	for _, f := range []*FastChannel{parent, fork} {
		f := f
		go func() {
			for slot := 0; slot < 20; slot++ {
				got := f.SlotReceptions(tx)
				for r := range want {
					if got[r] != want[r] {
						done <- fmt.Errorf("slot %d: node %d decoded %d, want %d", slot, r, got[r].Sender, want[r].Sender)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedMediumEquivalence holds the sharded regime to the naive
// reference at a size where the supercell hierarchy genuinely engages
// (hundreds of occupied cells, multiple supercell rows) — the small-n
// differential wall cannot reach that shape. Skipped in -short.
func TestShardedMediumEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-n sharded differential test skipped in -short")
	}
	const n = 20000
	for _, k := range []int{n / 32, n / 4} {
		ch, tx, err := DenseBenchWorkload(n, k, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := ch.SlotReceptions(tx)
		for _, s := range []int{1, 8} {
			f := NewFastChannel(ch, FastOptions{Workers: 4, Shards: s, SparseFactor: -1})
			got := f.SlotReceptions(tx)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("n=%d k=%d S=%d: node %d decoded %d, reference says %d",
						n, k, s, r, got[r].Sender, want[r].Sender)
				}
			}
			f.Close()
		}
	}
}

// TestShardedMillionNodeBudget is the scale acceptance test: a full slot
// evaluation at n = 10⁶ must complete in the (automatically selected)
// sharded regime within the documented memory budget
// (ShardBytesPerNodeBudget heap bytes per node for the channel plus
// evaluator, measured via runtime.MemStats), and must actually decode
// frames. Skipped in -short.
func TestShardedMillionNodeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node budget test skipped in -short")
	}
	const n = 1_000_000
	src := rng.New(1)
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastChannel(ch)
	defer f.Close()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if f.Shards() != defaultShardCount {
		t.Fatalf("n=10^6 selected %d shards, want the automatic %d", f.Shards(), defaultShardCount)
	}
	perNode := float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
	t.Logf("channel + sharded evaluator: %.1f heap bytes/node", perNode)
	if perNode > ShardBytesPerNodeBudget {
		t.Fatalf("%.1f heap bytes/node exceeds the documented budget of %d", perNode, ShardBytesPerNodeBudget)
	}

	tx := make([]int, 0, n/10)
	for i := 0; i < n; i += 10 {
		tx = append(tx, i)
	}
	rec := f.SlotReceptions(tx)
	decoded := 0
	for _, r := range rec {
		if r.Sender >= 0 {
			decoded++
		}
	}
	if decoded == 0 {
		t.Fatal("million-node slot decoded nothing")
	}
	st := f.BoundsStats()
	t.Logf("slot: k=%d decoded=%d certified-pipeline slots=%d refine=%.4f",
		len(tx), decoded, st.Slots, st.RefineRate())
}
