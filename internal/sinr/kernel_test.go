package sinr

import (
	"fmt"
	"math"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// powReference is the pre-rewrite arithmetic of ReceivedPower: the
// near-field clamp followed by a math.Pow path loss. The pow-free integer-α
// fast paths must reproduce it bit for bit.
func powReference(p Params, d float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.Power / math.Pow(d, p.Alpha)
}

// TestReceivedPowerPowFree pins the integer-α multiplication fast paths of
// Params.ReceivedPower bit-identical to the math.Pow reference, for every
// fast-pathed exponent and for generic exponents (which still go through
// Pow), across adversarial and random distances: the clamp boundary, the
// overflow region where d^α saturates before or after the division, and
// magnitudes spanning the full exponent range.
func TestReceivedPowerPowFree(t *testing.T) {
	alphas := []float64{2, 3, 4, 2.5, 3.0000000001, 6}
	special := []float64{
		0, 0.5, math.Nextafter(1, 0), 1, math.Nextafter(1, 2), 1.5, 2, 3,
		1e10, 5.6e102, math.Nextafter(5.6e102, math.Inf(1)), 1.34e154,
		math.Nextafter(1.34e154, math.Inf(1)), 1e300, math.MaxFloat64,
		math.Inf(1), math.NaN(), -0.5, // negative distances are clamped too
	}
	src := rng.New(0x90f7ee)
	for _, alpha := range alphas {
		p := Params{Alpha: alpha, Beta: 1.5, Noise: 1, Power: 3.375e3, Epsilon: 0.1}
		check := func(d float64) {
			t.Helper()
			got := p.ReceivedPower(d)
			want := powReference(p, d)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("alpha=%v d=%g: ReceivedPower=%g (%x), pow reference=%g (%x)",
					alpha, d, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		for _, d := range special {
			check(d)
		}
		for i := 0; i < 20000; i++ {
			// Log-uniform magnitudes cover the whole double range; the
			// uniform band stresses the near-field clamp neighbourhood.
			check(math.Exp((src.Float64()*2 - 1) * 700))
			check(src.Float64() * 2)
		}
	}
}

// TestPairPowerKernelBitIdentical pins FastChannel's fused SoA kernel to
// the reference composition params.ReceivedPower(Point.Dist) on random
// deployments across fast-pathed and generic exponents. This is the
// invariant that lets every SoA hot loop (grid chunks, bounds near
// expansion, column fills, churn matrix patches) replace the reference
// composition without changing a single reception decision.
func TestPairPowerKernelBitIdentical(t *testing.T) {
	src := rng.New(0x50a6e4)
	for _, alpha := range []float64{3, 4, 2.5, 5} {
		params := DefaultParams(12)
		params.Alpha = alpha
		params.Power = params.Beta * params.Noise * math.Pow(12, alpha)
		n := 60
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
		}
		// A couple of coincident and near-field pairs exercise the clamp.
		pos[1] = pos[0]
		pos[2] = geom.Point{X: pos[0].X + 0.3, Y: pos[0].Y}
		ch, err := NewChannel(params, pos)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFastChannel(ch, FastOptions{Workers: 1})
		for s := 0; s < n; s++ {
			for r := 0; r < n; r++ {
				got := f.pairPower(f.px[s], f.py[s], f.px[r], f.py[r])
				want := params.ReceivedPower(pos[s].Dist(pos[r]))
				if got != want {
					t.Fatalf("alpha=%v pair (%d,%d): pairPower=%x, reference=%x",
						alpha, s, r, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
		f.Close()
	}
}

// TestSlotReceptionsEquivalenceAlphaVariants runs the full differential
// harness — matrix/grid × sparse/bounds/dense × worker counts — under every
// fast-pathed path-loss exponent and a generic (math.Pow) one, so the
// pow-free rewrite is held to the naive reference on whole-slot decisions,
// not just on isolated power values.
func TestSlotReceptionsEquivalenceAlphaVariants(t *testing.T) {
	for _, alpha := range []float64{3, 4, 2.5} {
		t.Run(fmt.Sprintf("alpha=%v", alpha), func(t *testing.T) {
			src := rng.New(0xa1fa + math.Float64bits(alpha))
			for c := 0; c < 20; c++ {
				n := 30 + src.Intn(90)
				side := 4 * math.Sqrt(float64(n))
				pos := make([]geom.Point, n)
				for i := range pos {
					pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
				}
				params := DefaultParams(5 + src.Float64()*15)
				r := math.Pow(params.Power/(params.Beta*params.Noise), 1/params.Alpha)
				params.Alpha = alpha
				params.Power = params.Beta * params.Noise * math.Pow(r, alpha)
				ch, err := NewChannel(params, pos)
				if err != nil {
					t.Fatal(err)
				}
				variants := fastVariants(t, ch)
				for slot := 0; slot < 3; slot++ {
					var tx []int
					for i := 0; i < n; i++ {
						if src.Bernoulli(0.2) {
							tx = append(tx, i)
						}
					}
					assertEquivalent(t, ch, variants, tx,
						fmt.Sprintf("alpha=%v case %d slot %d", alpha, c, slot))
				}
				for _, f := range variants {
					f.Close()
				}
			}
		})
	}
}

// TestFillColumnBlockedBitIdentical pins the blocked 4-wide column-fill
// kernel to the scalar pairPower loop (and through it to the reference
// composition params.ReceivedPower(Point.Dist)) bit for bit — across
// fast-pathed and generic exponents, every remainder-lane count
// (n mod 4 ∈ {0,1,2,3}), coincident/near-field clamp pairs, and receivers
// planted exactly on power-threshold distances (the culling radius and the
// transmission range, one ulp either side).
func TestFillColumnBlockedBitIdentical(t *testing.T) {
	src := rng.New(0xb10c4ed)
	up := func(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }
	down := func(x float64) float64 { return math.Nextafter(x, 0) }
	for _, alpha := range []float64{3, 4, 2.5, 5} {
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 64, 65, 66, 67} {
			params := DefaultParams(12)
			params.Alpha = alpha
			params.Power = params.Beta * params.Noise * math.Pow(12, alpha)
			r := params.Range()
			cr := math.Max(r, 1) * (1 + cullSlack)
			pos := make([]geom.Point, n)
			for i := range pos {
				pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
			}
			// Overwrite a prefix with adversarial receivers relative to the
			// sender at pos[0]: clamp boundary, culling radius, range, ± ulp.
			boundary := []geom.Point{
				pos[0],
				{X: pos[0].X + 1, Y: pos[0].Y},
				{X: up(pos[0].X + 1), Y: pos[0].Y},
				{X: down(pos[0].X + 1), Y: pos[0].Y},
				{X: pos[0].X + r, Y: pos[0].Y},
				{X: up(pos[0].X + r), Y: pos[0].Y},
				{X: pos[0].X + cr, Y: pos[0].Y},
				{X: down(pos[0].X + cr), Y: pos[0].Y},
			}
			for i := 1; i < n && i-1 < len(boundary); i++ {
				pos[i] = boundary[i-1]
			}
			ch, err := NewChannel(params, pos)
			if err != nil {
				t.Fatal(err)
			}
			f := NewFastChannel(ch, FastOptions{Workers: 1})
			blocked := make([]float64, n)
			scalar := make([]float64, n)
			for _, s := range []int{0, n - 1} {
				f.BenchFillColumn(blocked, s, true)
				f.BenchFillColumn(scalar, s, false)
				for i := 0; i < n; i++ {
					if math.Float64bits(blocked[i]) != math.Float64bits(scalar[i]) {
						t.Fatalf("alpha=%v n=%d s=%d r=%d: blocked=%x scalar=%x",
							alpha, n, s, i, math.Float64bits(blocked[i]), math.Float64bits(scalar[i]))
					}
					want := params.ReceivedPower(pos[s].Dist(pos[i]))
					if math.Float64bits(blocked[i]) != math.Float64bits(want) {
						t.Fatalf("alpha=%v n=%d s=%d r=%d: blocked=%x reference=%x",
							alpha, n, s, i, math.Float64bits(blocked[i]), math.Float64bits(want))
					}
				}
			}
			f.Close()
		}
	}
}

// TestGatherTotalsBlockedBitIdentical pins the blocked 4-receiver totals
// gather (the matrix paths' interference pass) to the scalar per-receiver
// tx-order sum bit for bit, across receiver-list lengths covering every
// remainder-lane count and transmitter sets of varied size and order.
func TestGatherTotalsBlockedBitIdentical(t *testing.T) {
	src := rng.New(0x9a73e5)
	const n = 48
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 30, Y: src.Float64() * 30}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastChannel(ch, FastOptions{Workers: 1, SparseFactor: -1})
	if f.mat == nil {
		t.Fatal("workload did not select the matrix regime")
	}
	for trial := 0; trial < 50; trial++ {
		nr := 1 + src.Intn(12)
		rs := make([]int, nr)
		for i := range rs {
			rs[i] = src.Intn(n)
		}
		k := 1 + src.Intn(n)
		tx := make([]int, k)
		for i := range tx {
			tx[i] = src.Intn(n)
		}
		blocked := make([]float64, nr)
		scalar := make([]float64, nr)
		f.BenchGatherTotals(blocked, rs, tx, true)
		f.BenchGatherTotals(scalar, rs, tx, false)
		for i := range rs {
			if math.Float64bits(blocked[i]) != math.Float64bits(scalar[i]) {
				t.Fatalf("trial %d receiver %d (of %d, k=%d): blocked=%x scalar=%x",
					trial, i, nr, k, math.Float64bits(blocked[i]), math.Float64bits(scalar[i]))
			}
		}
	}
	f.Close()
}

// TestOnThresholdCullBoundary is the adversarial case for the r²-domain
// comparisons: receivers are planted exactly on the culling-radius circle
// of the only transmitter (where the grid queries' DistSq ≤ r² predicate
// decides membership), one ulp inside and outside it, on the near-field
// clamp boundary d = 1, and exactly at the transmission range R (the
// decode boundary for a lone transmitter). Every fast variant must agree
// with the naive reference on all of them — the culling slack exists
// precisely so these borderline points fall through to the exact
// arithmetic.
func TestOnThresholdCullBoundary(t *testing.T) {
	params := DefaultParams(12)
	cr := math.Max(params.Range(), 1) * (1 + cullSlack) // == FastChannel.cullRadius
	r := params.Range()
	up := func(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }
	down := func(x float64) float64 { return math.Nextafter(x, 0) }
	pos := []geom.Point{
		{X: 0, Y: 0}, // the transmitter
		{X: cr, Y: 0},
		{X: up(cr), Y: 0},
		{X: down(cr), Y: 0},
		{X: -cr, Y: 0},
		{X: 0, Y: cr},
		{X: cr / math.Sqrt2, Y: cr / math.Sqrt2},
		{X: up(cr / math.Sqrt2), Y: up(cr / math.Sqrt2)},
		{X: r, Y: 0},
		{X: up(r), Y: 0},
		{X: down(r), Y: 0},
		{X: -r / math.Sqrt2, Y: r / math.Sqrt2},
		{X: 1, Y: 0}, // near-field clamp boundary
		{X: up(1), Y: 0},
		{X: down(1), Y: 0},
		{X: 0.25, Y: 0},
		{X: 40, Y: 40}, // far outside every radius
	}
	ch, err := NewChannel(params, pos)
	if err != nil {
		t.Fatal(err)
	}
	variants := fastVariants(t, ch)
	assertEquivalent(t, ch, variants, []int{0}, "lone transmitter on-threshold")
	// A second transmitter at the far corner adds interference without
	// moving the boundary receivers, so the β comparison itself goes
	// borderline at the certified tiers too.
	assertEquivalent(t, ch, variants, []int{0, 16}, "two transmitters on-threshold")
	// Boundary receivers transmitting: half-duplex plus culling interact.
	assertEquivalent(t, ch, variants, []int{0, 1, 8}, "boundary nodes transmitting")
}
