package sinr

import (
	"fmt"
	"math"
	"sort"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// This file implements churn support for the SINR evaluators: applying a
// committed topology epoch — batched node additions, removals and moves —
// to a live channel without rebuilding its indices from scratch.
//
// # Epoch lifecycle
//
// topology.Deployment batches mutations and CommitEpoch materialises them
// into an EpochDelta: the full post-epoch position slice plus the change
// structure (dirty slots, swap-remove relabels, added ids). The delta is
// self-contained — it owns a copy of the positions — so it can be applied
// to any evaluator family over the pre-epoch deployment, and replayed (the
// churn benchmark cycles a fixed delta pair).
//
// Applying a delta is a stop-the-world operation for an evaluator family:
// it must not overlap with slot evaluation on the evaluator or any of its
// forks, and forks taken before the epoch are invalidated (their private
// scratch is sized for the old node count and, in the grid regime, their
// column caches hold stale powers). Fork the evaluator again after the
// apply; sim.Engine.ApplyEpoch calls ApplyEpoch between slots, which
// satisfies the contract by construction.
//
// # Incremental maintenance vs rebuild
//
// FastChannel.ApplyEpoch patches the indices it owns instead of rebuilding
// them:
//
//   - power matrix (matrix regime): only the rows and columns of dirty
//     slots are recomputed — O(dirty·n) math.Pow against the O(n²/2) of a
//     full rebuild — into a stride-addressed matrix whose stride grows with
//     headroom when additions outpace capacity;
//   - spatial grid: dirty nodes are moved/inserted and removed tail slots
//     deleted, O(changed) bucket operations;
//   - bounds tier: the shared cell index re-buckets the dirty nodes and
//     rebuilds its CSR in O(n + occupied cells) (geom.CellIndex.ApplyChurn)
//     while the per-offset power tables — the expensive math.Pow part — are
//     reused unchanged, since they depend only on the lattice span; the
//     per-cell transmitter aggregates are per-slot state and need no patch.
//     Only when a dirty node escapes the original lattice is the index
//     dropped and lazily rebuilt;
//   - grid-regime column cache: dropped (stale powers), lazily refilled.
//
// Past ChurnRebuildFraction the patch stops paying: recomputing a dirty row
// and column costs about twice the per-node share of the symmetric full
// rebuild, so beyond ~half the nodes the rebuild is cheaper; ApplyEpoch
// falls back to a full rebuild at a quarter (margin for the patch's
// scattered writes and bucket churn). The incremental and rebuild paths are
// held bit-identical by the differential churn tests: every power is
// recomputed by the same formula from the same positions, so the patched
// evaluator's receptions match a from-scratch evaluator's exactly.

// ChurnRebuildFraction is the documented incremental-vs-rebuild crossover:
// when more than this fraction of the post-epoch deployment changed in one
// epoch (dirty slots plus removals), FastChannel.ApplyEpoch rebuilds its
// indices from scratch instead of patching them. Patching a dirty node
// recomputes its full matrix row and column (2n math.Pow without the
// symmetry pairing of the rebuild), so the break-even sits near 50% churn;
// a quarter leaves margin for the patch's scattered writes.
const ChurnRebuildFraction = 0.25

// Relabel records one swap-remove relabel of a committed epoch: the node in
// (pre-epoch) slot From now occupies slot To. Relabels are emitted in the
// order the removals were applied (descending removed slot) and must be
// consumed sequentially — later relabels may chain off earlier ones.
type Relabel struct {
	From, To int
}

// EpochDelta describes one committed churn epoch of a deployment. It is
// produced by topology.Deployment.CommitEpoch and consumed by
// Channel.ApplyEpoch / FastChannel.ApplyEpoch (and, one level up, by
// sim.Engine.ApplyEpoch, which also relabels the node automata).
//
// Node identity across an epoch: moves keep their id; removals swap-remove,
// so the node last in the pre-epoch numbering takes the removed slot (the
// Relabels list records the chain); additions append at the end. Dirty
// lists, in ascending order, every post-epoch slot whose position differs
// from the pre-epoch slot content — moved nodes, relabel targets and added
// ids — which is exactly the set of matrix rows/columns, grid buckets and
// cell-index entries an incremental apply must patch.
type EpochDelta struct {
	// OldN and NewN are the node counts before and after the epoch.
	OldN, NewN int
	// Dirty are the post-epoch ids whose slot position changed, ascending.
	Dirty []int
	// Relabels are the sequential swap-remove relabels of the epoch.
	Relabels []Relabel
	// Added are the post-epoch ids of nodes added this epoch, ascending.
	Added []int
	// Removed is the number of nodes removed this epoch.
	Removed int
	// Positions is the full post-epoch position slice, owned by the delta.
	Positions []geom.Point
}

// Validate checks the delta's internal consistency.
func (d *EpochDelta) Validate() error {
	if d == nil {
		return fmt.Errorf("sinr: nil epoch delta")
	}
	if d.NewN <= 0 {
		return fmt.Errorf("sinr: epoch delta leaves %d nodes", d.NewN)
	}
	if len(d.Positions) != d.NewN {
		return fmt.Errorf("sinr: epoch delta carries %d positions for %d nodes", len(d.Positions), d.NewN)
	}
	if d.NewN != d.OldN-d.Removed+len(d.Added) {
		return fmt.Errorf("sinr: epoch delta counts disagree: %d - %d + %d != %d",
			d.OldN, d.Removed, len(d.Added), d.NewN)
	}
	for _, id := range d.Dirty {
		if id < 0 || id >= d.NewN {
			return fmt.Errorf("sinr: epoch delta dirty id %d out of range [0, %d)", id, d.NewN)
		}
	}
	for _, rl := range d.Relabels {
		if rl.From < 0 || rl.From >= d.OldN || rl.To < 0 || rl.To >= rl.From {
			return fmt.Errorf("sinr: epoch delta relabel %d->%d out of range for %d nodes", rl.From, rl.To, d.OldN)
		}
	}
	for _, id := range d.Added {
		if id < 0 || id >= d.NewN {
			return fmt.Errorf("sinr: epoch delta added id %d out of range [0, %d)", id, d.NewN)
		}
	}
	return nil
}

// EpochApplier is the evaluator capability sim.Engine.ApplyEpoch requires:
// both the naive Channel (which just swaps its position slice) and
// FastChannel (which patches its indices incrementally) implement it.
type EpochApplier interface {
	ChannelEvaluator
	// ApplyEpoch applies a committed epoch. It must not be called
	// concurrently with SlotReceptions on the evaluator or any fork of it.
	ApplyEpoch(d *EpochDelta) error
}

var (
	_ EpochApplier = (*Channel)(nil)
	_ EpochApplier = (*FastChannel)(nil)
)

// ApplyEpoch applies a committed epoch to the naive channel: the position
// slice is resized and overwritten from the delta. The naive evaluator
// recomputes everything per slot, so no further maintenance is needed; its
// post-epoch receptions are the reference the incremental FastChannel apply
// is held bit-identical to.
func (c *Channel) ApplyEpoch(d *EpochDelta) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if len(c.pos) != d.OldN {
		return fmt.Errorf("sinr: epoch delta for %d nodes applied to a %d-node channel", d.OldN, len(c.pos))
	}
	if cap(c.pos) >= d.NewN {
		c.pos = c.pos[:d.NewN]
	} else {
		c.pos = make([]geom.Point, d.NewN, d.NewN+d.NewN/4+8)
	}
	copy(c.pos, d.Positions)
	return nil
}

// epochApplied reports whether the channel already reflects the delta's
// post-epoch state: several evaluators of one fork family wrap the same
// channel, and whichever applies the epoch first updates it for all.
func (c *Channel) epochApplied(d *EpochDelta) bool {
	if len(c.pos) != d.NewN {
		return false
	}
	for _, id := range d.Dirty {
		if c.pos[id] != d.Positions[id] {
			return false
		}
	}
	return true
}

// ApplyEpoch applies a committed epoch to the fast evaluator, patching the
// affected power-matrix rows/columns, grid buckets, cell-index CSR entries
// and coverage model in O(dirty·n) instead of rebuilding the O(n²) state —
// falling back to a full rebuild past ChurnRebuildFraction. The underlying
// channel is updated too (at most once per epoch across a fork family).
//
// The apply is stop-the-world for the evaluator's fork family: it must not
// overlap slot evaluation anywhere in the family, forks taken before the
// epoch are invalid afterwards, and each family applies every epoch exactly
// once (through any one member). On the steady state of a fixed-size
// mobility workload the apply path performs no heap allocation; capacity
// growth (more nodes than ever before, new grid cells) allocates once.
func (f *FastChannel) ApplyEpoch(d *EpochDelta) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if f.n != d.OldN {
		return fmt.Errorf("sinr: epoch delta for %d nodes applied to a %d-node evaluator", d.OldN, f.n)
	}
	if !f.ch.epochApplied(d) {
		if err := f.ch.ApplyEpoch(d); err != nil {
			return err
		}
	}
	oldN := f.n
	f.pos = f.ch.pos
	f.n = d.NewN

	if float64(len(d.Dirty)+d.Removed) > ChurnRebuildFraction*float64(d.NewN) {
		f.syncSoAPositions(nil)
		f.rebuildAfterEpoch()
	} else {
		// Only the dirty slots changed position; the SoA mirror is patched
		// before the index patches below read coordinates through it.
		f.syncSoAPositions(d.Dirty)
		f.patchAfterEpoch(d, oldN)
	}
	f.resizeChurnScratch()
	f.setWorkers(f.workersReq)
	return nil
}

// patchAfterEpoch is the incremental path of ApplyEpoch.
//
//sinrlint:hotpath
func (f *FastChannel) patchAfterEpoch(d *EpochDelta, oldN int) {
	n := f.n
	// Power matrix: recompute the row and column of every dirty slot,
	// mirroring each value. Non-dirty pairs kept their positions, so their
	// entries are still exact; growth copies the valid block first.
	if f.mat != nil {
		if n > f.stride {
			stride := n + n/4 + 8
			//sinrlint:allow hotalloc amortized matrix growth, taken only when an epoch raises n past the stride headroom; steady-state churn stays alloc-free (churn alloc tests)
			grown := make([]float64, stride*stride)
			for r := 0; r < oldN; r++ {
				copy(grown[r*stride:r*stride+oldN], f.mat[r*f.stride:r*f.stride+oldN])
			}
			f.mat, f.stride = grown, stride
		}
		for _, i := range d.Dirty {
			ix, iy := f.px[i], f.py[i]
			ri := i * f.stride
			for s := 0; s < n; s++ {
				pw := f.pairPower(ix, iy, f.px[s], f.py[s])
				f.mat[ri+s] = pw
				f.mat[s*f.stride+i] = pw
			}
		}
	} else if f.shards == 0 {
		f.dropColumnCache()
	}
	// Spatial grid (per-pair regimes only; the sharded regime holds no
	// grid): tail slots beyond the new count disappear, dirty slots move
	// (or, for appended ids, insert).
	if f.grid != nil {
		for id := n; id < oldN; id++ {
			f.grid.Remove(id)
		}
		for _, id := range d.Dirty {
			if id < oldN {
				f.grid.Move(id, f.pos[id])
			} else {
				f.grid.Insert(id, f.pos[id])
			}
		}
	}
	// Bounds tier: patch the shared cell index in place when it exists and
	// the epoch stays inside its lattice; otherwise drop it for a lazy
	// rebuild (sharded regime: an eager one — the index is the regime's
	// only spatial state, so it can never stay unresolved). The per-offset
	// power tables survive a successful patch unchanged (they depend only
	// on the lattice span and the physical parameters), and so do the
	// supercell tables and the shard stripe function; newly occupied cells
	// appended by the patch join the partition under the holder lock.
	h := f.bholder
	h.mu.Lock()
	if h.built && h.idx != nil {
		if h.idx.cells.ApplyChurn(f.pos, d.Dirty) {
			if h.idx.shard != nil {
				h.idx.shard.appendCells(h.idx.cells)
			}
			f.bidx, f.boundsOff = h.idx, h.off
			f.sext = h.idx.shard
			h.mu.Unlock()
			if f.shards > 0 {
				f.growShardScratch()
			} else {
				f.growBoundsScratch()
			}
		} else {
			h.built, h.idx, h.off = false, nil, false
			f.bidx, f.boundsOff = nil, false
			h.mu.Unlock()
			if f.shards > 0 && !f.ensureShardIndex() {
				f.demoteToGrid()
			}
		}
	} else {
		// Not built (never yet, latched off, or already invalidated by
		// another family member's apply): nothing to patch, but the local
		// cache must follow the holder — keeping a stale f.bidx here would
		// evaluate the next dense slot on a pre-epoch cell decomposition.
		// A holder latched off for outlier geometry stays off; a lazily
		// rebuilt index re-evaluates the cap anyway.
		f.bidx, f.boundsOff = h.idx, h.off
		h.mu.Unlock()
		if f.shards > 0 && f.bidx == nil && !f.ensureShardIndex() {
			f.demoteToGrid()
		}
	}
	// Coverage model: expand the box by the changed positions.
	for _, id := range d.Dirty {
		p := f.pos[id]
		if p.X < f.box.Min.X {
			f.box.Min.X = p.X
		}
		if p.Y < f.box.Min.Y {
			f.box.Min.Y = p.Y
		}
		if p.X > f.box.Max.X {
			f.box.Max.X = p.X
		}
		if p.Y > f.box.Max.Y {
			f.box.Max.Y = p.Y
		}
	}
	f.updateCoverageModel()
}

// rebuildAfterEpoch is the full-rebuild fallback of ApplyEpoch, taken past
// ChurnRebuildFraction (and exercising exactly the state a fresh evaluator
// would build, which is what the differential churn tests compare against).
func (f *FastChannel) rebuildAfterEpoch() {
	n := f.n
	if f.shards > 0 {
		// Sharded regime: the cell index is the only spatial state, so it is
		// rebuilt eagerly (the per-pair regimes below rebuild lazily via the
		// invalidated holder). A post-epoch deployment stretched past the
		// offset-table cap demotes to the per-pair grid regime instead.
		f.bholder.invalidate()
		if !f.ensureShardIndex() {
			f.demoteToGrid()
		}
		f.box = geom.BoundingBox(f.pos)
		f.updateCoverageModel()
		return
	}
	f.grid = geom.NewGrid(f.cullRadius)
	for i, p := range f.pos {
		f.grid.Insert(i, p)
	}
	if f.mat != nil {
		if n > f.stride {
			f.stride = n + n/4 + 8
			f.mat = make([]float64, f.stride*f.stride)
		}
		for r := 0; r < n; r++ {
			rx, ry := f.px[r], f.py[r]
			for s := r; s < n; s++ {
				pw := f.pairPower(rx, ry, f.px[s], f.py[s])
				f.mat[r*f.stride+s] = pw
				f.mat[s*f.stride+r] = pw
			}
		}
	} else {
		f.dropColumnCache()
	}
	f.bholder.invalidate()
	f.bidx, f.boundsOff = nil, false
	f.box = geom.BoundingBox(f.pos)
	f.updateCoverageModel()
}

// dropColumnCache invalidates the grid regime's lazy power columns: churn
// makes cached powers stale, and the columns refill lazily as senders
// transmit again. The resident ring, clock hand and slot stamps reset with
// them, and the capacity is re-derived from the configured byte budget at
// the new node count. (The hit/miss/eviction counters are lifetime
// instrumentation and survive.)
func (f *FastChannel) dropColumnCache() {
	n := f.n
	if n > cap(f.cols) {
		f.cols = make([][]float64, n)
	} else {
		f.cols = f.cols[:n]
	}
	for i := range f.cols {
		f.cols[i] = nil
	}
	if n > cap(f.colRef) {
		f.colRef = make([]bool, n)
		f.colStamp = make([]uint32, n)
	} else {
		f.colRef = f.colRef[:n]
		f.colStamp = f.colStamp[:n]
		for i := range f.colRef {
			f.colRef[i] = false
			f.colStamp[i] = 0
		}
	}
	f.colGen = 0
	f.colIDs = f.colIDs[:0]
	f.colHand = 0
	f.colBudgetInit = 0
	if f.colBytes > 0 {
		f.colBudgetInit = int(f.colBytes / int64(8*n))
	}
}

// resizeChurnScratch resizes the per-evaluator slot scratch to the
// post-epoch node count and restores the all-(-1) reception invariant.
func (f *FastChannel) resizeChurnScratch() {
	n := f.n
	if n > cap(f.out) {
		f.out = make([]Reception, n)
	} else {
		f.out = f.out[:n]
	}
	for i := range f.out {
		f.out[i].Sender = -1
	}
	for w := range f.decoded {
		f.decoded[w] = f.decoded[w][:0]
	}
	if n > cap(f.isTx) {
		f.isTx = make([]bool, n)
	} else {
		prev := len(f.isTx)
		f.isTx = f.isTx[:n]
		for i := prev; i < n; i++ {
			f.isTx[i] = false
		}
	}
	// Visit stamps re-exposed by a shrink-then-grow sequence could collide
	// with a live generation, so the grown region is always zeroed.
	if n > cap(f.mark) {
		f.mark = make([]uint32, n)
	} else {
		prev := len(f.mark)
		f.mark = f.mark[:n]
		for i := prev; i < n; i++ {
			f.mark[i] = 0
		}
	}
}

// ChurnBenchWorkload builds the churn benchmark workload behind the
// churn-apply entries of BENCH_macbench.json: n nodes at BenchWorkload's
// canonical density and a replayable pair of mobility epochs that jitter a
// fixed set of `moved` nodes away from their home positions and back. The
// deltas are constructed directly (no topology round trip) so the benchmark
// loop measures nothing but the evaluator's apply path; cycling A, B, A, …
// keeps the channel's state bounded, and because applying an EpochDelta is
// idempotent the cycle may start from either phase.
func ChurnBenchWorkload(n, moved int, seed uint64) (*Channel, [2]*EpochDelta, error) {
	var deltas [2]*EpochDelta
	if moved <= 0 || moved > n {
		return nil, deltas, fmt.Errorf("sinr: ChurnBenchWorkload needs 0 < moved <= n, got %d of %d", moved, n)
	}
	src := rng.New(seed)
	side := 4 * math.Sqrt(float64(n))
	home := make([]geom.Point, n)
	for i := range home {
		home[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), home)
	if err != nil {
		return nil, deltas, err
	}
	// A fixed set of movers, each jittered by up to half a culling-grid cell
	// so most moves change buckets without tearing the deployment apart.
	seen := make(map[int]bool, moved)
	dirty := make([]int, 0, moved)
	for len(dirty) < moved {
		id := src.Intn(n)
		if !seen[id] {
			seen[id] = true
			dirty = append(dirty, id)
		}
	}
	sort.Ints(dirty)
	away := make([]geom.Point, n)
	copy(away, home)
	for _, id := range dirty {
		angle := src.Float64() * 2 * math.Pi
		r := 0.5 + 2*src.Float64()
		away[id] = geom.Point{X: home[id].X + r*math.Cos(angle), Y: home[id].Y + r*math.Sin(angle)}
	}
	deltas[0] = &EpochDelta{OldN: n, NewN: n, Dirty: dirty, Positions: away}
	back := make([]geom.Point, n)
	copy(back, home)
	deltas[1] = &EpochDelta{OldN: n, NewN: n, Dirty: append([]int(nil), dirty...), Positions: back}
	return ch, deltas, nil
}
