package sinr

import (
	"math"
	"runtime"
	"sync"

	"sinrmac/internal/geom"
)

// DefaultMatrixThreshold is the largest deployment size for which
// FastChannel precomputes the full n×n received-power matrix (n = 2048 uses
// 32 MiB). Larger deployments use the spatial-grid far-field path instead.
const DefaultMatrixThreshold = 2048

// DefaultColumnCacheBytes is the default memory budget of the lazy
// received-power column cache used above the matrix threshold: the first
// time a node transmits, its power column (towards every receiver) is
// computed once and retained, eliminating math.Pow from that sender's hot
// path for the rest of the execution. A column costs 8n bytes, so 256 MiB
// holds 32M/n columns: the full column set up to n ≈ 5.8k, half of it at
// n ≈ 8k. Beyond the budget the earliest transmitters keep their columns
// and later ones fall back to recomputation.
const DefaultColumnCacheBytes = 256 << 20

// cullSlack is the relative safety margin applied to the far-field culling
// thresholds. Culling is only an optimisation: a sender is skipped by the
// decode scan only when its received power provably cannot reach the SINR
// threshold even with zero interference, and a receiver is skipped only when
// no transmitter lies within the (slack-inflated) transmission range. The
// margin keeps both shortcuts conservative under floating-point rounding, so
// every borderline pair still goes through the exact reference arithmetic
// and the fast evaluator stays bit-identical to the naive one.
const cullSlack = 1e-9

// FastOptions tunes a FastChannel. The zero value selects the defaults.
type FastOptions struct {
	// Workers bounds the number of goroutines evaluating receivers per slot.
	// Zero or negative means GOMAXPROCS. sim.Engine overrides this with its
	// own worker count via SetWorkers.
	Workers int
	// MatrixThreshold is the largest deployment size for which the full
	// received-power matrix is cached. Zero means DefaultMatrixThreshold; a
	// negative value disables the matrix entirely (forcing the grid path,
	// which the differential tests use to exercise both paths at small n).
	MatrixThreshold int
	// ColumnCacheBytes bounds the memory of the grid path's lazy per-sender
	// power-column cache. Zero means DefaultColumnCacheBytes; a negative
	// value disables the cache (every power is recomputed each slot).
	ColumnCacheBytes int64
}

// FastChannel is the scalable SINR slot evaluator. It produces receptions
// bit-identical to Channel.SlotReceptions (the naive reference) while
// avoiding its per-slot costs:
//
//   - all result and scratch storage lives in a per-channel arena that is
//     reused across slots (no per-slot map or slice allocations);
//   - for deployments up to MatrixThreshold nodes the received powers are
//     precomputed once into an n×n matrix, eliminating every math.Pow from
//     the slot path;
//   - above the threshold a uniform spatial grid (internal/geom) buckets the
//     deployment so that receivers with no transmitter inside the
//     transmission range are culled before any interference is summed, and
//     each remaining receiver computes every received power exactly once
//     (the naive path computes each twice);
//   - on the grid path a memory-bounded lazy cache keeps the power column
//     of every node that has ever transmitted (positions are immutable, so
//     the column never changes), removing math.Pow from the steady-state
//     slot path entirely while ColumnCacheBytes lasts;
//   - receivers are scanned by a bounded pool of worker goroutines; the
//     partition is deterministic, so results are identical at any worker
//     count.
//
// Culling never changes results: a sender whose lone-transmitter SINR is
// below β cannot be decoded under any interference (the denominator only
// grows), and both cull thresholds carry a conservative slack so borderline
// pairs fall through to the exact reference arithmetic.
//
// The Reception slice returned by SlotReceptions is owned by the evaluator
// and valid only until the next call; callers that retain it must copy.
// SlotReceptions must not be called concurrently with itself.
type FastChannel struct {
	ch      *Channel
	pos     []geom.Point
	n       int
	workers int

	beta, noise float64
	// cullPower is the received power below which a sender provably cannot
	// be decoded; cullRadius is the distance beyond which received power is
	// provably below cullPower. Both carry cullSlack.
	cullPower  float64
	cullRadius float64

	mat  []float64  // n×n received-power matrix (mat[r*n+s]), nil in grid mode
	grid *geom.Grid // all-node spatial index, nil in matrix mode

	// Lazy column cache (grid mode): cols[s] is the received power of
	// sender s at every node, filled the first time s transmits, up to
	// colBudget columns. Columns are only written between parallel scans.
	// The cache is private to each evaluator: forks sharing a deployment
	// each fill their own columns, so concurrent trials never contend.
	cols          [][]float64
	colBudget     int
	colBudgetInit int

	out    []Reception
	isTx   []bool
	txPred func(id int) bool // reusable predicate over isTx for grid queries
	rows   [][]float64       // per-worker received-power scratch (grid mode)
	tx     []int             // transmitter set of the slot being evaluated
}

var _ ParallelEvaluator = (*FastChannel)(nil)

// NewFastChannel returns a fast evaluator over the given channel. At most
// one FastOptions value may be supplied; omitting it selects the defaults.
func NewFastChannel(c *Channel, opts ...FastOptions) *FastChannel {
	var opt FastOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	threshold := opt.MatrixThreshold
	if threshold == 0 {
		threshold = DefaultMatrixThreshold
	}
	n := c.NumNodes()
	f := &FastChannel{
		ch:        c,
		pos:       c.pos,
		n:         n,
		workers:   opt.Workers,
		beta:      c.params.Beta,
		noise:     c.params.Noise,
		cullPower: c.params.Beta * c.params.Noise * (1 - cullSlack),
		out:       make([]Reception, n),
		isTx:      make([]bool, n),
	}
	// Any sender within the near-field clamp distance (1) radiates maximum
	// power, so the candidate radius never drops below it.
	f.cullRadius = math.Max(c.params.Range(), 1) * (1 + cullSlack)
	f.txPred = func(id int) bool { return f.isTx[id] }
	if n <= threshold {
		f.mat = buildPowerMatrix(c)
	} else {
		f.grid = geom.NewGrid(f.cullRadius)
		for i, p := range f.pos {
			f.grid.Insert(i, p)
		}
		budget := opt.ColumnCacheBytes
		if budget == 0 {
			budget = DefaultColumnCacheBytes
		}
		f.cols = make([][]float64, n)
		if budget > 0 {
			f.colBudgetInit = int(budget / int64(8*n))
			f.colBudget = f.colBudgetInit
		}
	}
	return f
}

// Fork returns an evaluator that shares f's immutable state — the underlying
// channel, node positions, precomputed n×n power matrix and spatial grid —
// while owning private mutable scratch (reception slice, transmitter flags,
// per-worker rows) and, on the grid path, a private lazy column cache with a
// fresh budget. Forks may evaluate slots concurrently with each other and
// with f. The experiment scheduler hands each trial worker its own fork, so
// the power matrix of a sweep point's deployment is built once and shared
// across every parallel trial instead of being rebuilt per trial.
func (f *FastChannel) Fork() *FastChannel {
	g := &FastChannel{
		ch:            f.ch,
		pos:           f.pos,
		n:             f.n,
		workers:       f.workers,
		beta:          f.beta,
		noise:         f.noise,
		cullPower:     f.cullPower,
		cullRadius:    f.cullRadius,
		mat:           f.mat,
		grid:          f.grid,
		colBudgetInit: f.colBudgetInit,
		out:           make([]Reception, f.n),
		isTx:          make([]bool, f.n),
	}
	g.txPred = func(id int) bool { return g.isTx[id] }
	if g.grid != nil {
		g.cols = make([][]float64, g.n)
		g.colBudget = g.colBudgetInit
	}
	return g
}

// ensureColumns fills the power columns of any transmitter that does not
// have one yet, while the cache budget lasts. It runs before the parallel
// receiver scan, so the scan sees the cache as read-only.
func (f *FastChannel) ensureColumns(tx []int) {
	for _, s := range tx {
		if f.cols[s] != nil || f.colBudget <= 0 {
			continue
		}
		col := make([]float64, f.n)
		ps := f.pos[s]
		for r := range col {
			col[r] = f.ch.params.ReceivedPower(ps.Dist(f.pos[r]))
		}
		f.cols[s] = col
		f.colBudget--
	}
}

// buildPowerMatrix precomputes ReceivedPower(Dist(s, r)) for every node
// pair, exploiting symmetry to halve the math.Pow calls.
func buildPowerMatrix(c *Channel) []float64 {
	n := c.NumNodes()
	mat := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for s := r; s < n; s++ {
			pw := c.params.ReceivedPower(c.Dist(s, r))
			mat[r*n+s] = pw
			mat[s*n+r] = pw
		}
	}
	return mat
}

// Params implements ChannelEvaluator.
func (f *FastChannel) Params() Params { return f.ch.Params() }

// NumNodes implements ChannelEvaluator.
func (f *FastChannel) NumNodes() int { return f.n }

// Channel returns the underlying naive channel.
func (f *FastChannel) Channel() *Channel { return f.ch }

// SetWorkers implements ParallelEvaluator.
func (f *FastChannel) SetWorkers(workers int) { f.workers = workers }

// SlotReceptions implements ChannelEvaluator. The returned slice is reused
// by the next call.
func (f *FastChannel) SlotReceptions(transmitters []int) []Reception {
	out := f.out
	for i := range out {
		out[i].Sender = -1
	}
	if len(transmitters) == 0 {
		return out
	}
	for _, t := range transmitters {
		f.isTx[t] = true
	}
	// Method expressions rather than closures keep the single-worker slot
	// path allocation-free.
	f.tx = transmitters
	if f.mat != nil {
		f.forEachReceiverChunk((*FastChannel).matrixChunk)
	} else {
		f.ensureColumns(transmitters)
		f.forEachReceiverChunk((*FastChannel).gridChunk)
	}
	f.tx = nil
	for _, t := range transmitters {
		f.isTx[t] = false
	}
	return out
}

// matrixChunk evaluates receivers [lo, hi) against the cached power matrix.
func (f *FastChannel) matrixChunk(lo, hi, _ int) {
	tx := f.tx
	for r := lo; r < hi; r++ {
		if f.isTx[r] {
			continue // half-duplex: a transmitting node cannot receive
		}
		row := f.mat[r*f.n : (r+1)*f.n]
		total := 0.0
		for _, s := range tx {
			total += row[s]
		}
		for _, s := range tx {
			signal := row[s]
			if signal < f.cullPower {
				continue // cannot meet β even without interference
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				break
			}
		}
	}
}

// gridChunk evaluates receivers [lo, hi) on the spatial-grid far-field
// path: receivers with no transmitter within the transmission range are
// culled outright, and the rest compute each received power exactly once
// into the worker's scratch row.
func (f *FastChannel) gridChunk(lo, hi, worker int) {
	tx := f.tx
	row := f.rows[worker]
	if cap(row) < len(tx) {
		row = make([]float64, len(tx))
		f.rows[worker] = row
	}
	row = row[:len(tx)]
	for r := lo; r < hi; r++ {
		if f.isTx[r] {
			continue
		}
		p := f.pos[r]
		if !f.grid.AnyWithin(p, f.cullRadius, f.txPred) {
			continue // far field: no transmitter can reach this receiver
		}
		total := 0.0
		for j, s := range tx {
			var pw float64
			if col := f.cols[s]; col != nil {
				pw = col[r]
			} else {
				pw = f.ch.params.ReceivedPower(f.pos[s].Dist(p))
			}
			row[j] = pw
			total += pw
		}
		for j, s := range tx {
			signal := row[j]
			if signal < f.cullPower {
				continue
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				break
			}
		}
	}
}

// forEachReceiverChunk partitions the receiver index space into contiguous
// chunks and runs fn over them on up to f.workers goroutines. The partition
// depends only on the deployment size and worker count, and chunks are
// disjoint, so evaluation is deterministic and race-free.
func (f *FastChannel) forEachReceiverChunk(fn func(f *FastChannel, lo, hi, worker int)) {
	workers := f.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.n {
		workers = f.n
	}
	if len(f.rows) < workers {
		f.rows = append(f.rows, make([][]float64, workers-len(f.rows))...)
	}
	if workers <= 1 {
		fn(f, 0, f.n, 0)
		return
	}
	chunk := (f.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > f.n {
			hi = f.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, w int) {
			defer wg.Done()
			fn(f, lo, hi, w)
		}(lo, hi, w)
	}
	wg.Wait()
}
