package sinr

import (
	"math"
	"runtime"

	"sinrmac/internal/geom"
	"sinrmac/internal/workpool"
)

// DefaultMatrixThreshold is the largest deployment size for which
// FastChannel precomputes the full n×n received-power matrix (n = 2048 uses
// 32 MiB). Larger deployments use the spatial-grid far-field path instead.
const DefaultMatrixThreshold = 2048

// DefaultColumnCacheBytes is the default memory budget of the lazy
// received-power column cache used above the matrix threshold: the first
// time a node transmits, its power column (towards every receiver) is
// computed once and retained, eliminating math.Pow from that sender's hot
// path for the rest of the execution. A column costs 8n bytes, so 256 MiB
// holds 32M/n columns: the full column set up to n ≈ 5.8k, half of it at
// n ≈ 8k. Beyond the budget the earliest transmitters keep their columns
// and later ones fall back to recomputation.
const DefaultColumnCacheBytes = 256 << 20

// sparseCoverageMax is the crossover of the default (adaptive) sparse
// heuristic: a slot takes the sender-centric sparse path when the estimated
// fraction of nodes covered by the transmitters' culling balls is at most
// this value.
//
// The heuristic weighs the two slot costs. The dense scan visits all n
// receivers and sums k powers at each: Θ(n·k), in receiver order (cache
// friendly). The sparse path enumerates only the receivers within
// cullRadius of some transmitter — every other receiver provably decodes
// nothing — at a cost of Σ_s |ball(s)| grid probes plus |candidates|·k
// arithmetic, but touches the candidates in scattered order. Under a
// uniform-deployment model with per-ball coverage probability p =
// ballArea/deploymentArea, the expected candidate fraction after k balls is
// 1-(1-p)^k; the evaluator computes exactly that estimate per slot (one Exp
// from precomputed ln(1-p)) and goes sparse below the threshold. Measured
// on the canonical benchmark workloads the true crossover sits near an
// estimated coverage of 0.8 (the arithmetic saved equals the enumeration
// plus locality cost); 0.6 keeps a safety margin for the estimate's
// uniformity assumption, so dense slots (broadcast storms, all-transmit
// probes, discovery blocks in clustered deployments) stay on the scan that
// streams receivers sequentially.
const sparseCoverageMax = 0.6

// cullSlack is the relative safety margin applied to the far-field culling
// thresholds. Culling is only an optimisation: a sender is skipped by the
// decode scan only when its received power provably cannot reach the SINR
// threshold even with zero interference, and a receiver is skipped only when
// no transmitter lies within the (slack-inflated) transmission range. The
// margin keeps both shortcuts conservative under floating-point rounding, so
// every borderline pair still goes through the exact reference arithmetic
// and the fast evaluator stays bit-identical to the naive one.
const cullSlack = 1e-9

// FastOptions tunes a FastChannel. The zero value selects the defaults.
type FastOptions struct {
	// Workers bounds the number of goroutines evaluating receivers per slot.
	// Zero or negative means GOMAXPROCS. sim.Engine overrides this with its
	// own worker count via SetWorkers.
	Workers int
	// MatrixThreshold is the largest deployment size for which the full
	// received-power matrix is cached. Zero means DefaultMatrixThreshold; a
	// negative value disables the matrix entirely (forcing the grid path,
	// which the differential tests use to exercise both paths at small n).
	MatrixThreshold int
	// ColumnCacheBytes bounds the memory of the grid path's lazy per-sender
	// power-column cache. Zero means DefaultColumnCacheBytes; a negative
	// value disables the cache (every power is recomputed each slot).
	ColumnCacheBytes int64
	// SparseFactor overrides the sparse-path crossover. Zero (the default)
	// selects the adaptive heuristic: a slot is evaluated
	// sender-centrically when the estimated ball coverage of its
	// transmitters stays below sparseCoverageMax (see that constant). A
	// positive value pins a fixed crossover instead — sparse when
	// k·SparseFactor ≤ n, with 1 forcing the sparse path on every slot —
	// and a negative value disables the sparse path entirely (every slot
	// scans all n receivers, the pre-sparse behaviour the benchmarks
	// compare against). The differential tests use the overrides to pin
	// each path; simulations keep the default.
	SparseFactor int
	// BoundsFactor overrides the hierarchical-bounds tier dispatch for the
	// slots the sparse path declined. Zero (the default) selects the
	// adaptive per-slot cost model of prepareBounds; a positive value
	// forces the bounds tier onto every such slot (the differential tests
	// pin it this way), and a negative value disables the tier (the
	// pre-bounds dense scan the benchmarks compare against). The β guard
	// (boundsBetaMin) is respected in every mode. In the sharded regime the
	// same knob steers the certified pipeline vs the sharded dense scan.
	BoundsFactor int
	// Shards selects the sharded regime (shard.go): the matrix-free
	// evaluator that holds only O(occupied cells + nodes) state and is the
	// primary representation at scale. Zero (the default) engages it
	// automatically above DefaultShardThreshold nodes with
	// defaultShardCount shards; a positive value forces that shard count at
	// any deployment size (the differential tests pin S ∈ {1, 2, 4, 8}),
	// and a negative value disables the regime, keeping the per-pair
	// matrix/grid representations regardless of n. The shard count is a
	// work-partition width, not a correctness parameter: results are
	// bit-identical at any value.
	Shards int
}

// FastChannel is the scalable SINR slot evaluator. It produces receptions
// bit-identical to Channel.SlotReceptions (the naive reference) while
// avoiding its per-slot costs:
//
//   - all result and scratch storage lives in a per-channel arena that is
//     reused across slots (no per-slot map or slice allocations), and only
//     the receivers that decoded something in the previous slot are reset,
//     so a quiet slot costs O(k) rather than O(n);
//   - for deployments up to MatrixThreshold nodes the received powers are
//     precomputed once into an n×n matrix, eliminating every math.Pow from
//     the slot path;
//   - above the threshold each receiver computes every received power
//     exactly once (the naive path computes each twice), with a
//     memory-bounded lazy cache keeping the power column of every node
//     that has ever transmitted (positions are immutable, so the column
//     never changes);
//   - a uniform spatial grid (internal/geom) buckets the deployment in both
//     regimes. On dense slots above the matrix threshold it culls receivers
//     with no transmitter inside the transmission range before any
//     interference is summed; on sparse slots (estimated transmitter-ball
//     coverage below sparseCoverageMax, either regime) it drives the
//     sender-centric path, which enumerates only the receivers inside some
//     transmitter's ball — O(Σ_s |ball(s)|) grid work plus |candidates|·k
//     arithmetic — instead of scanning all n receivers;
//   - dense slots whose transmitter count dwarfs the number of occupied
//     grid cells take the hierarchical-bounds tier (bounds.go): per-cell
//     transmitter aggregates bound each receiver's interference from above
//     and below in O(occupied cells), the decode decision is emitted
//     directly when the certificates agree under a k·ulp rounding slack,
//     and only the thin ambiguous band around β refines through the exact
//     per-receiver arithmetic;
//   - above DefaultShardThreshold nodes (or when FastOptions.Shards forces
//     it) the evaluator runs the sharded regime (shard.go): the bounds
//     representation, extended with a supercell layer, becomes the primary
//     one — no matrix, grid or column cache exists at all, memory is
//     O(occupied cells + nodes), and receivers are scanned in spatial
//     shards whose knowledge of remote transmitters is certified aggregate
//     bounds;
//   - receivers are scanned by a persistent pool of worker goroutines
//     (internal/workpool) woken by a channel handoff instead of spawned per
//     slot; the partition is deterministic, so results are identical at any
//     worker count.
//
// The regime decision is made once, at construction: sharded at scale (or
// when forced), the per-pair representations otherwise, with the matrix
// kept up to MatrixThreshold nodes and the grid plus bounded column cache
// above it. Within the chosen regime each slot then dispatches — sparse
// when the estimated candidate coverage is low, certified bounds when the
// per-slot cost model wins, the exact dense scan otherwise — and no tier
// changes results: a sender whose lone-transmitter SINR is below β cannot
// be decoded under any interference (the denominator only grows), the
// sparse path skips exactly the receivers whose every received power is
// provably below that bound, the bounds and sharded tiers emit only
// decisions their conservative certificates prove identical to the exact
// arithmetic's (bounds.go and shard.go document the argument), and every
// threshold carries slack so borderline cases fall through to the exact
// reference arithmetic.
//
// The Reception slice returned by SlotReceptions is owned by the evaluator
// and valid only until the next call; callers that retain it must copy.
// SlotReceptions must not be called concurrently with itself.
type FastChannel struct {
	ch      *Channel
	pos     []geom.Point
	n       int
	workers int

	// SoA mirror of pos plus the hoisted path-loss constants: the pair
	// loops read coordinates from two flat float64 slices (twice the
	// density of a []Point per cache line, and indexable without the
	// struct field loads) and dispatch the path-loss exponent once per
	// evaluator instead of once per pair. pairPower is the fused kernel
	// over this layout; it is bit-identical to
	// params.ReceivedPower(Point.Dist) by construction (same subtraction,
	// square, Sqrt, clamp and α-multiplication sequence), which
	// TestPairPowerKernelBitIdentical pins. Churn epochs patch px/py in
	// step with pos.
	px, py []float64
	power  float64
	alpha  float64
	alphaK int // 2, 3, 4 select the multiplication fast paths; 0 → math.Pow
	// workersReq is the last requested (unclamped) worker count; ApplyEpoch
	// re-resolves the clamp when the node count changes.
	workersReq int

	beta, noise float64
	// cullPower is the received power below which a sender provably cannot
	// be decoded; cullRadius is the distance beyond which received power is
	// provably below cullPower. Both carry cullSlack.
	cullPower  float64
	cullRadius float64

	// mat is the received-power matrix (mat[r*stride+s]), nil in grid mode.
	// stride equals n at construction and grows (with headroom) when churn
	// epochs push the node count past it, so moderate add/remove churn
	// patches the matrix in place instead of reshaping it.
	mat    []float64
	stride int
	grid   *geom.Grid // all-node spatial index (both modes)

	sparseFactor int
	// box is the (monotonically expanded) bounding box of the deployment and
	// logBallMiss is ln(1 - ballArea/deploymentArea) derived from it,
	// precomputed for the adaptive per-slot coverage estimate
	// 1-exp(k·logBallMiss). Churn epochs expand the box by the changed
	// positions (it never shrinks below a past extent — the estimate only
	// steers dispatch, never correctness) and refresh logBallMiss.
	box         geom.Rect
	logBallMiss float64

	// Lazy column cache (grid mode): cols[s] is the received power of
	// sender s at every node, filled the first time s transmits, with at
	// most colBudgetInit columns resident. When the cache is full a
	// second-chance (clock) sweep over the resident ring evicts a column
	// that is neither referenced since its last sweep nor pinned by the
	// current slot (colStamp == colGen), reusing its storage; a slot whose
	// working set exceeds the capacity therefore keeps its first columns
	// cached instead of thrashing. Columns are only written between
	// parallel scans. The cache is private to each evaluator: forks sharing
	// a deployment each fill their own columns, so concurrent trials never
	// contend. colHits/colMisses/colEvictions are read via ColumnStats.
	cols          [][]float64
	colIDs        []int32  // resident ring: node ids that currently hold a column
	colRef        []bool   // per node: referenced since the clock hand last passed
	colStamp      []uint32 // per node: colGen of the last slot that used the column
	colGen        uint32
	colHand       int
	colBudgetInit int
	colBytes      int64 // configured byte budget, kept to re-derive colBudgetInit under churn
	colHits       uint64
	colMisses     uint64
	colEvictions  uint64

	pool *workpool.Pool
	// chunkFn is the loop body of the current parallel scan; RunChunk
	// dispatches to it. Method expressions rather than closures keep the
	// slot path allocation-free.
	chunkFn func(f *FastChannel, lo, hi, worker int)

	out    []Reception
	isTx   []bool
	txPred func(id int) bool // reusable predicate over isTx for grid queries
	rows   [][]float64       // per-worker received-power scratch (grid mode)
	tx     []int             // transmitter set of the slot being evaluated

	// decoded[w] lists the receivers worker w decoded a frame for in the
	// previous slot; resetting exactly those entries restores the all -1
	// invariant of out without an O(n) sweep.
	decoded [][]int

	// Sparse-path scratch: the deduplicated candidate receivers of the
	// current slot, the per-transmitter ball buffer, and the visit stamps
	// that dedup the ball union without clearing between slots.
	candidates []int
	ball       []int
	mark       []uint32
	markGen    uint32

	// Bounds tier (see bounds.go). bholder shares the lazily built
	// immutable cell index and offset power tables across all forks of a
	// deployment; bidx/boundsOff cache the resolved result locally, and
	// everything below them is per-evaluator slot scratch.
	boundsFactor int
	bholder      *boundsHolder
	boundsOff    bool // latched when the offset tables would exceed boundsMaxOffsets
	bidx         *boundsIndex
	txCellCnt    []int32 // per cell: transmitter count of the current slot
	txCellStart  []int32 // per cell: CSR offset into txByCell
	txCellFill   []int32 // per cell: scatter cursor while building the CSR
	txByCell     []int32 // slot transmitters grouped by cell
	occT         []int32 // occupied transmitter cells, in tx-encounter order
	loFar        []float64
	hiFar        []float64
	farMaxUB     []float64
	nearCnt      []int32
	nearCells    []int32 // per receiver cell, stride bidx.nearStride
	// Per-slot certificate constants (prepareBounds) and lifetime counters
	// (read via BoundsStats, written with atomics from the chunk workers).
	slackUp, slackDown float64
	betaHi, betaLo     float64
	boundsSlots        uint64
	boundsReceivers    uint64
	boundsRefined      uint64

	// Sharded regime (shard.go): shards > 0 replaces the matrix / grid /
	// column-cache representations with the cell decomposition plus the
	// supercell layer of sext. The scratch below extends the bounds tier's
	// per-cell aggregates with the per-supercell level; superFarLo/Hi/Max
	// hold the far-field interference bounds of each receiver supercell for
	// the slot being evaluated.
	shards        int
	sext          *shardExt
	occS          []int32 // occupied transmitter supercells, in occT-encounter order
	superTxCnt    []int32 // per supercell: transmitter count of the current slot
	superOccCnt   []int32 // per supercell: occupied-cell count of the current slot
	superOccStart []int32 // per supercell: CSR offset into occTBySuper
	superOccFill  []int32 // per supercell: scatter cursor while building the CSR
	occTBySuper   []int32 // occupied transmitter cells grouped by supercell
	superFarLo    []float64
	superFarHi    []float64
	superFarMax   []float64
}

var _ ParallelEvaluator = (*FastChannel)(nil)

// NewFastChannel returns a fast evaluator over the given channel. At most
// one FastOptions value may be supplied; omitting it selects the defaults.
func NewFastChannel(c *Channel, opts ...FastOptions) *FastChannel {
	var opt FastOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	threshold := opt.MatrixThreshold
	if threshold == 0 {
		threshold = DefaultMatrixThreshold
	}
	n := c.NumNodes()
	f := &FastChannel{
		ch:        c,
		pos:       c.pos,
		n:         n,
		beta:      c.params.Beta,
		noise:     c.params.Noise,
		power:     c.params.Power,
		alpha:     c.params.Alpha,
		alphaK:    alphaCase(c.params.Alpha),
		cullPower: c.params.Beta * c.params.Noise * (1 - cullSlack),
		out:       make([]Reception, n),
		isTx:      make([]bool, n),
		mark:      make([]uint32, n),
		pool:      workpool.New(),
	}
	f.syncSoAPositions(nil)
	f.setWorkers(opt.Workers)
	f.txPred = func(id int) bool { return f.isTx[id] }
	f.sparseFactor = opt.SparseFactor
	f.boundsFactor = opt.BoundsFactor
	f.bholder = &boundsHolder{}
	for i := range f.out {
		f.out[i].Sender = -1
	}
	// Any sender within the near-field clamp distance (1) radiates maximum
	// power, so the candidate radius never drops below it.
	f.cullRadius = math.Max(c.params.Range(), 1) * (1 + cullSlack)
	f.box = geom.BoundingBox(f.pos)
	f.updateCoverageModel()
	budget := opt.ColumnCacheBytes
	if budget == 0 {
		budget = DefaultColumnCacheBytes
	}
	f.colBytes = budget
	if s := resolveShards(opt.Shards, n); s > 0 {
		f.shards = s
		if f.ensureShardIndex() {
			// Sharded regime: the cell decomposition plus the supercell
			// layer is the only spatial state — no grid, matrix or column
			// cache is built.
			return f
		}
		// Outlier geometry latched the offset tables off: fall back to the
		// per-pair regimes below.
		f.shards = 0
	}
	// The grid is built in both per-pair regimes: the matrix path uses it
	// only for the sparse sender-centric enumeration, the grid path also
	// for dense-slot receiver culling.
	f.grid = geom.NewGrid(f.cullRadius)
	for i, p := range f.pos {
		f.grid.Insert(i, p)
	}
	if n <= threshold {
		f.mat = buildPowerMatrix(c)
		f.stride = n
	} else {
		f.cols = make([][]float64, n)
		f.colRef = make([]bool, n)
		f.colStamp = make([]uint32, n)
		if budget > 0 {
			f.colBudgetInit = int(budget / int64(8*n))
		}
	}
	return f
}

// alphaCase maps a path-loss exponent to the multiplication fast path
// pairPower and Params.ReceivedPower share: 2, 3 or 4 for the integer
// exponents, 0 for the generic math.Pow fallback.
func alphaCase(alpha float64) int {
	switch alpha {
	case 2:
		return 2
	case 3:
		return 3
	case 4:
		return 4
	}
	return 0
}

// pairPower is the fused path-loss kernel over the SoA layout: the received
// power at (bx, by) from a transmitter at (ax, ay). It evaluates exactly
// the reference composition params.ReceivedPower(Point.Dist) — the same
// coordinate subtractions, the same dx²+dy² and Sqrt, the same near-field
// clamp, and the same α-specific multiplication sequence (ReceivedPower
// documents why the multiplications are bit-identical to math.Pow) — with
// the Params value copy, the method dispatch and the per-pair exponent
// switch hoisted into evaluator fields, so the result is bit-identical to
// the naive evaluator's on every input while the pair loops stay free of
// calls and table loads.
//
//sinrlint:allow powfree generic-α fallback in the final return; shipped exponents take the multiplication cases
//sinrlint:hotpath
func (f *FastChannel) pairPower(ax, ay, bx, by float64) float64 {
	dx := ax - bx
	dy := ay - by
	d := math.Sqrt(dx*dx + dy*dy)
	if d < 1 {
		d = 1
	}
	switch f.alphaK {
	case 3:
		return f.power / (d * d * d)
	case 2:
		return f.power / (d * d)
	case 4:
		dd := d * d
		return f.power / (dd * dd)
	}
	return f.power / math.Pow(d, f.alpha)
}

// dist4 is pairPower's clamped-distance prologue for four receivers at
// once: per lane exactly the scalar operation sequence (subtractions,
// dx²+dy², Sqrt, near-field clamp), so each lane's distance is bit-identical
// to the scalar kernel's while the four Sqrt chains overlap.
//
//sinrlint:hotpath
func dist4(sx, sy float64, px, py []float64, i int) (d0, d1, d2, d3 float64) {
	dx0, dy0 := sx-px[i], sy-py[i]
	dx1, dy1 := sx-px[i+1], sy-py[i+1]
	dx2, dy2 := sx-px[i+2], sy-py[i+2]
	dx3, dy3 := sx-px[i+3], sy-py[i+3]
	d0 = math.Sqrt(dx0*dx0 + dy0*dy0)
	d1 = math.Sqrt(dx1*dx1 + dy1*dy1)
	d2 = math.Sqrt(dx2*dx2 + dy2*dy2)
	d3 = math.Sqrt(dx3*dx3 + dy3*dy3)
	if d0 < 1 {
		d0 = 1
	}
	if d1 < 1 {
		d1 = 1
	}
	if d2 < 1 {
		d2 = 1
	}
	if d3 < 1 {
		d3 = 1
	}
	return
}

// fillColumn computes the sender at (sx, sy)'s received power at every node
// into col, processing receivers in 4-wide blocks over the SoA px/py
// mirror with the α-specific multiplication sequence hoisted out of the
// loop. Every lane performs exactly pairPower's operation sequence, so each
// entry is bit-identical to the scalar call (the kernel differential tests
// pin this, remainder lanes included); the blocked form overlaps the
// independent Sqrt/divide chains and hoists the slice bounds checks.
//
//sinrlint:allow powfree generic-α fallback in the default case; shipped exponents take the blocked multiplication cases
//sinrlint:hotpath
func (f *FastChannel) fillColumn(col []float64, sx, sy float64) {
	n := len(col)
	px := f.px[:n]
	py := f.py[:n]
	i := 0
	switch f.alphaK {
	case 3:
		for ; i+4 <= n; i += 4 {
			d0, d1, d2, d3 := dist4(sx, sy, px, py, i)
			col[i] = f.power / (d0 * d0 * d0)
			col[i+1] = f.power / (d1 * d1 * d1)
			col[i+2] = f.power / (d2 * d2 * d2)
			col[i+3] = f.power / (d3 * d3 * d3)
		}
	case 2:
		for ; i+4 <= n; i += 4 {
			d0, d1, d2, d3 := dist4(sx, sy, px, py, i)
			col[i] = f.power / (d0 * d0)
			col[i+1] = f.power / (d1 * d1)
			col[i+2] = f.power / (d2 * d2)
			col[i+3] = f.power / (d3 * d3)
		}
	case 4:
		for ; i+4 <= n; i += 4 {
			d0, d1, d2, d3 := dist4(sx, sy, px, py, i)
			dd0, dd1, dd2, dd3 := d0*d0, d1*d1, d2*d2, d3*d3
			col[i] = f.power / (dd0 * dd0)
			col[i+1] = f.power / (dd1 * dd1)
			col[i+2] = f.power / (dd2 * dd2)
			col[i+3] = f.power / (dd3 * dd3)
		}
	default:
		for ; i+4 <= n; i += 4 {
			d0, d1, d2, d3 := dist4(sx, sy, px, py, i)
			col[i] = f.power / math.Pow(d0, f.alpha)
			col[i+1] = f.power / math.Pow(d1, f.alpha)
			col[i+2] = f.power / math.Pow(d2, f.alpha)
			col[i+3] = f.power / math.Pow(d3, f.alpha)
		}
	}
	for ; i < n; i++ {
		col[i] = f.pairPower(sx, sy, px[i], py[i])
	}
}

// syncSoAPositions brings px/py in step with pos. With a nil dirty list the
// whole mirror is rebuilt (construction, growth past capacity, churn
// rebuilds); with a dirty list only the listed slots are rewritten, which
// keeps the per-epoch cost proportional to the churn. Steady-state epochs
// allocate nothing: capacity is retained across shrinks and regrows.
func (f *FastChannel) syncSoAPositions(dirty []int) {
	n := len(f.pos)
	if dirty == nil || n > cap(f.px) {
		if n > cap(f.px) {
			f.px = make([]float64, n)
			f.py = make([]float64, n)
		} else {
			f.px = f.px[:n]
			f.py = f.py[:n]
		}
		for i, p := range f.pos {
			f.px[i] = p.X
			f.py[i] = p.Y
		}
		return
	}
	f.px = f.px[:n]
	f.py = f.py[:n]
	for _, id := range dirty {
		p := f.pos[id]
		f.px[id] = p.X
		f.py[id] = p.Y
	}
}

// updateCoverageModel derives logBallMiss — the per-ball miss probability of
// the adaptive sparse crossover — from the current bounding box. Clamping
// each box dimension to the ball diameter keeps the density estimate
// meaningful for degenerate (line-like or tiny) deployments: the reachable
// region around a line of length L is a strip of area ≈ L·2r, not the
// zero-area box.
func (f *FastChannel) updateCoverageModel() {
	area := math.Max(f.box.Width(), 2*f.cullRadius) * math.Max(f.box.Height(), 2*f.cullRadius)
	miss := 1 - math.Pi*f.cullRadius*f.cullRadius/area
	if miss <= 0 {
		// A single ball covers the whole deployment: the estimate is total
		// coverage for any k ≥ 1, so the adaptive heuristic always scans
		// densely.
		f.logBallMiss = math.Inf(-1)
	} else {
		f.logBallMiss = math.Log(miss)
	}
}

// Fork returns an evaluator that shares f's immutable state — the underlying
// channel, node positions, precomputed n×n power matrix, spatial grid and
// (once built) the bounds tier's cell index and offset power tables — while
// owning private mutable scratch (reception slice, transmitter flags,
// per-worker rows, sparse candidate buffers, bounds-tier aggregates and
// counters, worker pool) and, on the grid path, a private lazy column cache
// with a fresh budget. Forks may evaluate
// slots concurrently with each other and with f. The experiment scheduler
// hands each trial worker its own fork, so the power matrix of a sweep
// point's deployment is built once and shared across every parallel trial
// instead of being rebuilt per trial.
func (f *FastChannel) Fork() *FastChannel {
	g := &FastChannel{
		ch:            f.ch,
		pos:           f.pos,
		n:             f.n,
		px:            f.px,
		py:            f.py,
		power:         f.power,
		alpha:         f.alpha,
		alphaK:        f.alphaK,
		workers:       f.workers,
		workersReq:    f.workersReq,
		beta:          f.beta,
		noise:         f.noise,
		cullPower:     f.cullPower,
		cullRadius:    f.cullRadius,
		mat:           f.mat,
		stride:        f.stride,
		grid:          f.grid,
		sparseFactor:  f.sparseFactor,
		boundsFactor:  f.boundsFactor,
		bholder:       f.bholder,
		box:           f.box,
		logBallMiss:   f.logBallMiss,
		colBytes:      f.colBytes,
		colBudgetInit: f.colBudgetInit,
		out:           make([]Reception, f.n),
		isTx:          make([]bool, f.n),
		mark:          make([]uint32, f.n),
		pool:          workpool.New(),
	}
	g.txPred = func(id int) bool { return g.isTx[id] }
	for i := range g.out {
		g.out[i].Sender = -1
	}
	switch {
	case f.shards > 0:
		// Sharded regime: share the resolved index and shard extension
		// (immutable between epochs) and grow private per-slot scratch.
		g.shards = f.shards
		g.bidx, g.boundsOff = f.bidx, f.boundsOff
		g.sext = f.sext
		g.growShardScratch()
	case f.mat == nil:
		g.cols = make([][]float64, g.n)
		g.colRef = make([]bool, g.n)
		g.colStamp = make([]uint32, g.n)
	}
	// g shares f's boundsHolder: whichever fork first takes a dense slot
	// builds the cell index and offset tables once for all of them, and
	// each fork then grows private per-slot aggregates and counters (a
	// fork's BoundsStats start at zero).
	return g
}

// Close releases the evaluator's worker-pool goroutines. It is optional —
// an unreachable evaluator's pool is reclaimed by the runtime — but tests
// and drivers that construct many evaluators call it to bound the live
// goroutine count deterministically.
func (f *FastChannel) Close() { f.pool.Close() }

// ensureColumns fills the power columns of any transmitter that does not
// have one yet. It runs before the parallel receiver scan, so the scan sees
// the cache as read-only. The cache is bounded: below capacity
// (colBudgetInit columns) a fresh column is allocated; at capacity a
// second-chance (clock) sweep evicts a resident column and reuses its
// storage, so a long-running sweep's footprint stays at the configured byte
// budget no matter how many distinct nodes ever transmit. Columns used by
// the current slot are pinned (colStamp), so a slot whose transmitter set
// exceeds the capacity keeps its first columns and serves the overflow by
// recomputation instead of evicting what it just filled.
func (f *FastChannel) ensureColumns(tx []int) {
	if f.colBudgetInit <= 0 {
		return
	}
	f.colGen++
	if f.colGen == 0 { // stamp wraparound: reset once every 2^32 slots
		for i := range f.colStamp {
			f.colStamp[i] = 0
		}
		f.colGen = 1
	}
	gen := f.colGen
	for _, s := range tx {
		if f.cols[s] != nil {
			f.colRef[s] = true
			f.colStamp[s] = gen
			f.colHits++
			continue
		}
		f.colMisses++
		var col []float64
		if len(f.colIDs) < f.colBudgetInit {
			col = make([]float64, f.n)
			f.colIDs = append(f.colIDs, int32(s))
		} else {
			// Clock sweep: skip columns the current slot pinned, give
			// referenced columns a second chance, evict the first column
			// with neither. Bounded by two passes over the ring; if every
			// resident column is pinned by this slot the sender goes
			// uncached (the chunk evaluators recompute its powers).
			scanned := 0
			limit := 2 * len(f.colIDs)
			for scanned < limit {
				v := f.colIDs[f.colHand]
				if f.colStamp[v] == gen {
					f.colHand++
					if f.colHand == len(f.colIDs) {
						f.colHand = 0
					}
					scanned++
					continue
				}
				if f.colRef[v] {
					f.colRef[v] = false
					f.colHand++
					if f.colHand == len(f.colIDs) {
						f.colHand = 0
					}
					scanned++
					continue
				}
				col = f.cols[v]
				f.cols[v] = nil
				f.colIDs[f.colHand] = int32(s)
				f.colHand++
				if f.colHand == len(f.colIDs) {
					f.colHand = 0
				}
				f.colEvictions++
				break
			}
			if col == nil {
				continue
			}
		}
		f.colRef[s] = true
		f.colStamp[s] = gen
		f.fillColumn(col, f.px[s], f.py[s])
		f.cols[s] = col
	}
}

// ColumnStats reports the lifetime behaviour of the evaluator's lazy
// power-column cache: transmitter lookups that found a resident column,
// lookups that had to fill one, evictions performed by the clock sweep, and
// the current resident count. All zeros in the matrix and sharded regimes
// (which keep no column cache) and when the cache is disabled.
type ColumnStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Resident  int
}

// ColumnStats returns the evaluator's column-cache counters. Like
// BoundsStats the counters are per evaluator: forks start at zero.
func (f *FastChannel) ColumnStats() ColumnStats {
	return ColumnStats{
		Hits:      f.colHits,
		Misses:    f.colMisses,
		Evictions: f.colEvictions,
		Resident:  len(f.colIDs),
	}
}

// buildPowerMatrix precomputes ReceivedPower(Dist(s, r)) for every node
// pair, exploiting symmetry to halve the math.Pow calls.
func buildPowerMatrix(c *Channel) []float64 {
	n := c.NumNodes()
	mat := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for s := r; s < n; s++ {
			pw := c.params.ReceivedPower(c.Dist(s, r))
			mat[r*n+s] = pw
			mat[s*n+r] = pw
		}
	}
	return mat
}

// Params implements ChannelEvaluator.
func (f *FastChannel) Params() Params { return f.ch.Params() }

// NumNodes implements ChannelEvaluator.
func (f *FastChannel) NumNodes() int { return f.n }

// Channel returns the underlying naive channel.
func (f *FastChannel) Channel() *Channel { return f.ch }

// WorkerPool returns the evaluator's persistent worker pool. sim.Engine
// runs its own parallel phases (tick, receive) on the same pool, so one
// set of parked goroutines serves the whole slot pipeline.
func (f *FastChannel) WorkerPool() *workpool.Pool { return f.pool }

// SetWorkers implements ParallelEvaluator.
func (f *FastChannel) SetWorkers(workers int) { f.setWorkers(workers) }

// setWorkers resolves and caches the effective worker count once, instead
// of consulting runtime.GOMAXPROCS on every slot. The unclamped request is
// retained so churn epochs that change n can re-resolve the clamp.
func (f *FastChannel) setWorkers(workers int) {
	f.workersReq = workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.n {
		workers = f.n
	}
	if workers < 1 {
		workers = 1
	}
	f.workers = workers
}

// RunChunk implements workpool.Task by dispatching to the loop body of the
// current scan; the evaluator itself is the task value, so submitting a
// scan to the pool allocates nothing.
func (f *FastChannel) RunChunk(lo, hi, worker int) { f.chunkFn(f, lo, hi, worker) }

// runChunks evaluates fn over [0, n) on the worker pool, growing the
// per-worker scratch first.
// workerRow returns worker's per-slot received-power scratch row sized for
// the current transmitter set, growing it when a larger slot arrives. The
// growth is amortized ownership, not steady-state allocation: capacity only
// ratchets up to the largest |tx| seen by this worker, so the alloc-free
// slot gates (TestEngineStepAllocFree, macbench allocs/op) never re-enter
// the make. Keeping the single make here leaves the chunk kernels
// statically allocation-free for the hotalloc analyzer.
func (f *FastChannel) workerRow(worker int) []float64 {
	row := f.rows[worker]
	if cap(row) < len(f.tx) {
		row = make([]float64, len(f.tx))
		f.rows[worker] = row
	}
	return row[:len(f.tx)]
}

func (f *FastChannel) runChunks(n int, fn func(f *FastChannel, lo, hi, worker int)) {
	workers := f.workers
	if len(f.rows) < workers {
		f.rows = append(f.rows, make([][]float64, workers-len(f.rows))...)
	}
	for len(f.decoded) < workers {
		f.decoded = append(f.decoded, nil)
	}
	f.chunkFn = fn
	f.pool.Run(n, workers, f)
	f.chunkFn = nil
}

// SlotReceptions implements ChannelEvaluator. The returned slice is reused
// by the next call.
func (f *FastChannel) SlotReceptions(transmitters []int) []Reception {
	out := f.out
	// Between calls out is all -1 except the entries the previous slot
	// decoded; resetting those restores the invariant without touching the
	// other n-k receivers.
	for w, dec := range f.decoded {
		for _, r := range dec {
			out[r].Sender = -1
		}
		f.decoded[w] = dec[:0]
	}
	if len(transmitters) == 0 {
		return out
	}
	distinct := 0
	for _, t := range transmitters {
		if !f.isTx[t] {
			f.isTx[t] = true
			distinct++
		}
	}
	if distinct == f.n {
		// Every node transmits: half-duplex leaves no listener, so the
		// all--1 state out is already in is the exact result. (Counting
		// distinct ids, not len(transmitters), keeps this sound when the
		// caller passes duplicates.) Skipping the dispatch entirely keeps
		// all-transmit probes at O(k) on every tier.
		for _, t := range transmitters {
			f.isTx[t] = false
		}
		return out
	}
	f.tx = transmitters
	switch {
	case f.useSparse(len(transmitters)):
		f.buildCandidates(transmitters)
		switch {
		case f.shards > 0:
			f.runChunks(len(f.candidates), (*FastChannel).sparseShardChunk)
		case f.mat == nil:
			f.ensureColumns(transmitters)
			f.runChunks(len(f.candidates), (*FastChannel).sparseGridChunk)
		default:
			f.runChunks(len(f.candidates), (*FastChannel).sparseMatrixChunk)
		}
	case f.shards > 0:
		f.shardSlot(transmitters)
	case f.prepareBounds(len(transmitters)):
		f.runChunks(f.bidx.cells.NumCells(), (*FastChannel).boundsPrepChunk)
		if f.mat == nil {
			f.ensureColumns(transmitters)
			f.runChunks(f.n, (*FastChannel).boundsGridChunk)
		} else {
			f.runChunks(f.n, (*FastChannel).boundsMatrixChunk)
		}
		f.finishBounds()
	case f.mat != nil:
		f.runChunks(f.n, (*FastChannel).matrixChunk)
	default:
		f.ensureColumns(transmitters)
		f.runChunks(f.n, (*FastChannel).gridChunk)
	}
	f.tx = nil
	for _, t := range transmitters {
		f.isTx[t] = false
	}
	return out
}

// useSparse decides the path of a slot with k ≥ 1 transmitters: the
// explicit SparseFactor override when one was configured, otherwise the
// adaptive coverage estimate (see sparseCoverageMax).
func (f *FastChannel) useSparse(k int) bool {
	switch {
	case f.sparseFactor < 0:
		return false
	case f.sparseFactor > 0:
		return k*f.sparseFactor <= f.n
	default:
		return 1-math.Exp(float64(k)*f.logBallMiss) <= sparseCoverageMax
	}
}

// buildCandidates fills f.candidates with the deduplicated union of the
// transmitters' culling balls: exactly the receivers for which some
// transmitter lies within cullRadius, i.e. the receivers the dense grid
// path would not cull. Every other node's received powers are all provably
// below cullPower, so its reception is -1 without evaluation. The visit
// stamps dedup overlapping balls without clearing state between slots.
func (f *FastChannel) buildCandidates(tx []int) {
	f.markGen++
	if f.markGen == 0 { // stamp wraparound: reset once every 2^32 slots
		for i := range f.mark {
			f.mark[i] = 0
		}
		f.markGen = 1
	}
	gen := f.markGen
	f.candidates = f.candidates[:0]
	if f.shards > 0 {
		f.appendCandidatesCells(tx, gen)
		return
	}
	for _, s := range tx {
		f.ball = f.grid.AppendWithin(f.ball[:0], f.pos[s], f.cullRadius)
		ball := f.ball
		i := 0
		// 4-wide unroll of the mark scan. The stamp checks stay sequential,
		// so the candidate order (and duplicate handling within a ball) is
		// identical to the scalar loop; only the loop-control overhead drops.
		for ; i+4 <= len(ball); i += 4 {
			id0, id1, id2, id3 := ball[i], ball[i+1], ball[i+2], ball[i+3]
			if f.mark[id0] != gen {
				f.mark[id0] = gen
				f.candidates = append(f.candidates, id0)
			}
			if f.mark[id1] != gen {
				f.mark[id1] = gen
				f.candidates = append(f.candidates, id1)
			}
			if f.mark[id2] != gen {
				f.mark[id2] = gen
				f.candidates = append(f.candidates, id2)
			}
			if f.mark[id3] != gen {
				f.mark[id3] = gen
				f.candidates = append(f.candidates, id3)
			}
		}
		for ; i < len(ball); i++ {
			id := ball[i]
			if f.mark[id] != gen {
				f.mark[id] = gen
				f.candidates = append(f.candidates, id)
			}
		}
	}
}

// The chunk evaluators below share one decode structure — total received
// power over all transmitters, then the first sender meeting the SINR
// threshold wins (at most one can, since β > 1). The matrix paths gather
// listeners into 4-wide blocks whose interference totals are accumulated in
// one shared pass over the transmitters (matrixTotals4): each receiver's
// total is still added in exact transmitter order by its own accumulator,
// so every total — and therefore every decode — is bit-identical to the
// scalar loop's, while the four independent add chains overlap instead of
// serialising on one accumulator's add latency. The grid paths keep their
// own power source (cached column, recomputation) and enumeration inline.

// matrixTotals4 sums four receivers' row powers over the slot's
// transmitters in one pass. Four independent accumulators, each added in
// transmitter order, make every lane's sum the exact floating-point result
// of the scalar loop; the four-stream layout is also the shape
// SIMD-capable compilers vectorise (independent lanes, no cross-lane
// reduction).
//
//sinrlint:hotpath
func matrixTotals4(tx []int, row0, row1, row2, row3 []float64) (t0, t1, t2, t3 float64) {
	for _, s := range tx {
		t0 += row0[s]
		t1 += row1[s]
		t2 += row2[s]
		t3 += row3[s]
	}
	return
}

// matrixDecodeRow applies the decode scan to one receiver given its matrix
// row and precomputed interference total.
//
//sinrlint:hotpath
func (f *FastChannel) matrixDecodeRow(r int, row []float64, total float64, dec []int) []int {
	for _, s := range f.tx {
		signal := row[s]
		if signal < f.cullPower {
			continue // cannot meet β even without interference
		}
		if signal/(total-signal+f.noise) >= f.beta {
			f.out[r].Sender = s
			dec = append(dec, r)
			break
		}
	}
	return dec
}

// matrixBlock4 evaluates four listeners against the cached power matrix:
// one shared transmitter pass for the four totals, then per-receiver
// decode scans in block order (ascending within the chunk, so the decode
// list order matches the scalar loop's).
//
//sinrlint:hotpath
func (f *FastChannel) matrixBlock4(blk *[4]int, dec []int) []int {
	m, stride, n := f.mat, f.stride, f.n
	row0 := m[blk[0]*stride : blk[0]*stride+n]
	row1 := m[blk[1]*stride : blk[1]*stride+n]
	row2 := m[blk[2]*stride : blk[2]*stride+n]
	row3 := m[blk[3]*stride : blk[3]*stride+n]
	t0, t1, t2, t3 := matrixTotals4(f.tx, row0, row1, row2, row3)
	dec = f.matrixDecodeRow(blk[0], row0, t0, dec)
	dec = f.matrixDecodeRow(blk[1], row1, t1, dec)
	dec = f.matrixDecodeRow(blk[2], row2, t2, dec)
	dec = f.matrixDecodeRow(blk[3], row3, t3, dec)
	return dec
}

// matrixScalar evaluates one listener against the cached power matrix — the
// remainder path for blocks of fewer than four listeners.
func (f *FastChannel) matrixScalar(r int, dec []int) []int {
	row := f.mat[r*f.stride : r*f.stride+f.n]
	total := 0.0
	for _, s := range f.tx {
		total += row[s]
	}
	return f.matrixDecodeRow(r, row, total, dec)
}

// matrixChunk evaluates receivers [lo, hi) against the cached power matrix,
// in 4-wide listener blocks with a scalar remainder.
//
//sinrlint:hotpath
func (f *FastChannel) matrixChunk(lo, hi, worker int) {
	dec := f.decoded[worker]
	var blk [4]int
	nb := 0
	for r := lo; r < hi; r++ {
		if f.isTx[r] {
			continue // half-duplex: a transmitting node cannot receive
		}
		blk[nb] = r
		nb++
		if nb == 4 {
			dec = f.matrixBlock4(&blk, dec)
			nb = 0
		}
	}
	for i := 0; i < nb; i++ {
		dec = f.matrixScalar(blk[i], dec)
	}
	f.decoded[worker] = dec
}

// sparseMatrixChunk evaluates the slot's candidate receivers [lo, hi) (by
// candidate index) against the cached power matrix. The arithmetic is
// identical to matrixChunk — the same 4-wide blocks, filled in candidate
// order; only the receiver enumeration differs.
//
//sinrlint:hotpath
func (f *FastChannel) sparseMatrixChunk(lo, hi, worker int) {
	dec := f.decoded[worker]
	var blk [4]int
	nb := 0
	for i := lo; i < hi; i++ {
		r := f.candidates[i]
		if f.isTx[r] {
			continue
		}
		blk[nb] = r
		nb++
		if nb == 4 {
			dec = f.matrixBlock4(&blk, dec)
			nb = 0
		}
	}
	for i := 0; i < nb; i++ {
		dec = f.matrixScalar(blk[i], dec)
	}
	f.decoded[worker] = dec
}

// gridChunk evaluates receivers [lo, hi) on the spatial-grid far-field
// path: receivers with no transmitter within the transmission range are
// culled outright, and the rest compute each received power exactly once
// into the worker's scratch row.
//
//sinrlint:hotpath
func (f *FastChannel) gridChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	row := f.workerRow(worker)
	for r := lo; r < hi; r++ {
		if f.isTx[r] {
			continue
		}
		if !f.grid.AnyWithin(f.pos[r], f.cullRadius, f.txPred) {
			continue // far field: no transmitter can reach this receiver
		}
		rx, ry := f.px[r], f.py[r]
		total := 0.0
		for j, s := range tx {
			var pw float64
			if col := f.cols[s]; col != nil {
				pw = col[r]
			} else {
				pw = f.pairPower(f.px[s], f.py[s], rx, ry)
			}
			row[j] = pw
			total += pw
		}
		for j, s := range tx {
			signal := row[j]
			if signal < f.cullPower {
				continue
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				dec = append(dec, r)
				break
			}
		}
	}
	f.decoded[worker] = dec
}

// sparseGridChunk evaluates the slot's candidate receivers [lo, hi) (by
// candidate index) on the grid path. Candidates are exactly the receivers
// AnyWithin would pass, so the existence probe is skipped; the power
// arithmetic is identical to gridChunk.
//
//sinrlint:hotpath
func (f *FastChannel) sparseGridChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	row := f.workerRow(worker)
	for i := lo; i < hi; i++ {
		r := f.candidates[i]
		if f.isTx[r] {
			continue
		}
		rx, ry := f.px[r], f.py[r]
		total := 0.0
		for j, s := range tx {
			var pw float64
			if col := f.cols[s]; col != nil {
				pw = col[r]
			} else {
				pw = f.pairPower(f.px[s], f.py[s], rx, ry)
			}
			row[j] = pw
			total += pw
		}
		for j, s := range tx {
			signal := row[j]
			if signal < f.cullPower {
				continue
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				dec = append(dec, r)
				break
			}
		}
	}
	f.decoded[worker] = dec
}
