// Package sinr implements the physical (SINR) interference model of the
// paper, Section 4.2.
//
// A transmission from v is received at u iff
//
//	SINR_u(v) = (P / d(v,u)^α) / (Σ_{w∈S\{u,v}} P / d(w,u)^α + N) >= β
//
// where S is the set of concurrently transmitting nodes, P the uniform
// transmission power, N the ambient noise and α the path-loss exponent.
// The transmission range is R = (P/(βN))^{1/α}; R_a = a·R for a ∈ (0,1]
// defines the strong-connectivity radii R_{1-ε} and R_{1-2ε} used by the
// induced graphs G_{1-ε} and G_{1-2ε}.
//
// Two slot evaluators implement the predicate: the naive reference
// (Channel.SlotReceptions) and FastChannel, which picks one of four regimes
// at construction — the precomputed power matrix up to
// DefaultMatrixThreshold nodes, the spatial-grid regime with its bounded
// lazy column cache above that, and past DefaultShardThreshold (or a pinned
// FastOptions.Shards) the sharded regime (shard.go), whose memory is
// O(occupied cells + nodes) with no per-pair state. Within a regime each
// slot dispatches further: the sender-centric sparse path when the
// transmitters' estimated ball coverage is low, an O(k) short-circuit on
// all-transmit slots, the hierarchical-bounds tier (bounds.go) when the
// transmitter count dwarfs the occupied grid cells, and the dense streaming
// scan otherwise. All paths are decision-exact: because β > 1 at most one
// sender can decode at a receiver, so the only output is a discrete
// decision, and the optimised paths either prove their decision identical
// to the reference's floating-point arithmetic (conservative culling slack;
// interference bounds widened by a Θ(k)·ulp rounding slack — in the sharded
// regime those certified bounds are also what crosses shard boundaries, so
// shards never read each other's per-receiver state) or fall back to it.
// The differential tests in this package hold every path bit-identical to
// the reference at any shard and worker count.
//
// # Pow-free arithmetic
//
// The hot paths never call math.Pow or math.Hypot. Params.ReceivedPower
// evaluates the integer path-loss exponents α ∈ {2, 3, 4} by plain
// multiplication — bit-identical to math.Pow for those exponents (see the
// doc of ReceivedPower for the argument, and TestReceivedPowerPowFree for
// the pin) — and distances come from a fused Sqrt(dx²+dy²) over a
// structure-of-arrays coordinate mirror (FastChannel.pairPower, pinned
// bit-identical to the Point.Dist composition by
// TestPairPowerKernelBitIdentical). Threshold comparisons in the sparse and
// bounds tiers stay in the squared-distance domain (DistSq ≤ r², shared
// with every geom grid query), which is exact because Sqrt is monotone and
// correctly rounded; received powers themselves are always computed from
// the rounded distance, never from its square, so no decision moves.
//
// Deployments may churn: committed topology epochs (sinr.EpochDelta) are
// applied to live evaluators via ApplyEpoch — the naive channel swaps its
// position slice, FastChannel patches its indices incrementally (see
// churn.go for the epoch lifecycle, the per-index patch rules and the
// incremental-vs-rebuild crossover) — and the churn differential suite
// holds the patched evaluator bit-identical to a from-scratch rebuild.
package sinr

import (
	"errors"
	"fmt"
	"math"

	"sinrmac/internal/geom"
)

// Params holds the physical-layer constants of the SINR model.
type Params struct {
	// Alpha is the path-loss exponent. The paper assumes Alpha > 2
	// (typically in (2, 6]).
	Alpha float64
	// Beta is the minimum SINR threshold required for successful
	// reception, Beta > 1.
	Beta float64
	// Noise is the ambient noise power N > 0.
	Noise float64
	// Power is the uniform transmission power P > 0 used by all nodes.
	Power float64
	// Epsilon is the strong-connectivity slack ε ∈ (0, 1/2): reliable
	// local broadcast is provided on G_{1-ε} and approximate progress is
	// measured on G_{1-2ε}.
	Epsilon float64
}

// DefaultParams returns a parameter set with α = 3, β = 1.5, unit noise and
// ε = 0.1, with the power chosen so that the transmission range R is the
// given value. These are the defaults used by examples and experiments.
//
//sinrlint:allow powfree construction-time parameter derivation, runs once per experiment
func DefaultParams(transmissionRange float64) Params {
	p := Params{
		Alpha:   3,
		Beta:    1.5,
		Noise:   1,
		Epsilon: 0.1,
	}
	// R = (P/(βN))^{1/α}  =>  P = βN R^α.
	p.Power = p.Beta * p.Noise * math.Pow(transmissionRange, p.Alpha)
	return p
}

// Validate reports whether the parameters satisfy the model assumptions of
// Section 4.6 of the paper.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 2:
		return fmt.Errorf("sinr: path-loss exponent alpha = %v must exceed 2", p.Alpha)
	case p.Beta <= 1:
		return fmt.Errorf("sinr: SINR threshold beta = %v must exceed 1", p.Beta)
	case p.Noise <= 0:
		return fmt.Errorf("sinr: noise = %v must be positive", p.Noise)
	case p.Power <= 0:
		return fmt.Errorf("sinr: power = %v must be positive", p.Power)
	case p.Epsilon <= 0 || p.Epsilon >= 0.5:
		return fmt.Errorf("sinr: epsilon = %v must lie in (0, 0.5)", p.Epsilon)
	}
	return nil
}

// Range returns the transmission range R = (P/(βN))^{1/α}: the maximum
// distance at which a message can be received when no other node transmits.
//
//sinrlint:allow powfree construction-time derived quantity, never on a slot path
func (p Params) Range() float64 {
	return math.Pow(p.Power/(p.Beta*p.Noise), 1/p.Alpha)
}

// RangeA returns R_a = a · R.
func (p Params) RangeA(a float64) float64 {
	return a * p.Range()
}

// StrongRange returns R_{1-ε}, the radius of the reliable-broadcast graph
// G_{1-ε}.
func (p Params) StrongRange() float64 {
	return p.RangeA(1 - p.Epsilon)
}

// ApproxRange returns R_{1-2ε}, the radius of the approximation graph
// G_{1-2ε} in which approximate progress is measured.
func (p Params) ApproxRange() float64 {
	return p.RangeA(1 - 2*p.Epsilon)
}

// ReceivedPower returns the power received over distance d, applying the
// near-field clamp of the paper: distances below 1 are treated as 1 so that
// a receiver never observes more power than was transmitted.
//
// Integer path-loss exponents take a multiplication fast path that is
// bit-identical to math.Pow. math.Pow(d, k) for k ∈ {2, 3, 4} reduces (via
// Frexp renormalisation, whose doublings are exact) to the same repeated
// squaring sequence — d·d, (d·d)·d, (d·d)·(d·d) — with one IEEE rounding
// per multiply, and floating-point rounding is scale-invariant, so the
// products below reproduce Pow's result on every finite d ≥ 1, including
// the overflow threshold (the intermediates are monotone in d). The
// differential suite (TestReceivedPowerPowFree) pins this equality; the
// exponent dispatch is three float compares, which the evaluators hoist
// out of their pair loops entirely (FastChannel precomputes the case).
//
//sinrlint:allow powfree generic-α reference fallback; integer α ∈ {2,3,4} takes the multiplication cases above it
func (p Params) ReceivedPower(d float64) float64 {
	if d < 1 {
		d = 1
	}
	switch p.Alpha {
	case 2:
		return p.Power / (d * d)
	case 3:
		return p.Power / (d * d * d)
	case 4:
		dd := d * d
		return p.Power / (dd * dd)
	}
	return p.Power / math.Pow(d, p.Alpha)
}

// ErrMismatchedPositions is returned by NewChannel when the position slice
// is empty.
var ErrMismatchedPositions = errors.New("sinr: channel requires at least one node position")

// Channel evaluates the SINR reception predicate for a fixed deployment of
// nodes. It owns the node positions; protocol automata never access them,
// matching the paper's assumption that locations are unknown to nodes.
type Channel struct {
	params Params
	pos    []geom.Point
}

// NewChannel returns a channel for the given parameters and node positions.
// Node i is located at pos[i].
func NewChannel(params Params, pos []geom.Point) (*Channel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pos) == 0 {
		return nil, ErrMismatchedPositions
	}
	cp := make([]geom.Point, len(pos))
	copy(cp, pos)
	return &Channel{params: params, pos: cp}, nil
}

// Params returns the channel's physical parameters.
func (c *Channel) Params() Params { return c.params }

// NumNodes returns the number of nodes in the deployment.
func (c *Channel) NumNodes() int { return len(c.pos) }

// Positions returns a copy of the node positions. It is intended for
// analysis code (graph induction, experiment reporting), not for protocols.
func (c *Channel) Positions() []geom.Point {
	cp := make([]geom.Point, len(c.pos))
	copy(cp, c.pos)
	return cp
}

// Dist returns the Euclidean distance between nodes u and v.
func (c *Channel) Dist(u, v int) float64 {
	return c.pos[u].Dist(c.pos[v])
}

// Interference returns the total interference power observed at node recv
// from every node in transmitters except recv itself and the excluded
// sender (pass sender < 0 to include all transmitters).
func (c *Channel) Interference(recv int, transmitters []int, sender int) float64 {
	total := 0.0
	for _, w := range transmitters {
		if w == recv || w == sender {
			continue
		}
		total += c.params.ReceivedPower(c.Dist(w, recv))
	}
	return total
}

// SINR returns the signal-to-interference-plus-noise ratio at node recv for
// the transmission of node sender, given the full set of concurrent
// transmitters.
func (c *Channel) SINR(recv, sender int, transmitters []int) float64 {
	signal := c.params.ReceivedPower(c.Dist(sender, recv))
	interference := c.Interference(recv, transmitters, sender)
	return signal / (interference + c.params.Noise)
}

// Decodes reports whether node recv successfully decodes the transmission
// of node sender when the nodes in transmitters transmit concurrently.
// A node that is itself transmitting never decodes (half-duplex), and a
// node never decodes its own transmission.
func (c *Channel) Decodes(recv, sender int, transmitters []int) bool {
	if recv == sender {
		return false
	}
	for _, w := range transmitters {
		if w == recv {
			return false // half-duplex: a transmitting node cannot receive
		}
	}
	return c.SINR(recv, sender, transmitters) >= c.params.Beta
}

// Reception describes the outcome of one slot at one listening node.
type Reception struct {
	// Sender is the index of the node whose frame was decoded, or -1 if
	// nothing was decoded this slot.
	Sender int
}

// ChannelEvaluator evaluates the SINR reception predicate for one
// communication slot. Two implementations exist: the naive reference scan on
// *Channel itself and the arena-backed, worker-parallel *FastChannel. Both
// produce identical Reception slices for the same deployment and transmitter
// set; the differential test harness (TestSlotReceptionsEquivalence) keeps
// them in lock-step.
//
// Callers select a path explicitly: simulation drivers that only need the
// reference semantics pass the *Channel, performance-sensitive drivers wrap
// it with NewFastChannel.
type ChannelEvaluator interface {
	// Params returns the physical-layer parameters of the deployment.
	Params() Params
	// NumNodes returns the deployment size.
	NumNodes() int
	// SlotReceptions evaluates one slot: given the transmitting node ids it
	// returns, for every node, the sender it decodes (or -1). The returned
	// slice is indexed by node id, has length NumNodes(), and is only
	// guaranteed valid until the next SlotReceptions call (implementations
	// may reuse it as scratch); callers that retain it must copy.
	//
	// Slot-input perturbation contract: the transmitter list need not come
	// from protocol automata — a fault layer (sim.FaultHook, internal/fault)
	// may append adversarially injected ids before evaluation. Injected
	// transmitters are physically indistinguishable from real ones: they
	// contribute interference at every receiver and are half-duplex (an
	// injected node decodes nothing that slot). Every id must be a valid
	// node index; duplicates are legal and evaluate like a single
	// transmission by that node. Callers may mutate the returned slice
	// (e.g. scrubbing entries to Sender = -1) — implementations reset every
	// entry on the next call.
	SlotReceptions(transmitters []int) []Reception
}

// ParallelEvaluator is implemented by evaluators whose receiver scan can run
// on multiple goroutines. The simulation engine wires its worker count into
// any evaluator implementing this interface.
type ParallelEvaluator interface {
	ChannelEvaluator
	// SetWorkers bounds the number of goroutines used per slot evaluation.
	// Zero or negative restores the default (GOMAXPROCS).
	SetWorkers(workers int)
}

var _ ChannelEvaluator = (*Channel)(nil)

// SlotReceptions evaluates one communication slot: given the set of
// transmitting nodes, it returns for every node the sender it decodes (or
// -1). Because β > 1, at most one sender can satisfy the SINR condition at
// any receiver, so the result is unambiguous; the implementation still
// scans all transmitters and keeps the decodable one.
//
// The returned slice is indexed by node id and has length NumNodes().
//
// This is the naive O(n·k) reference evaluator: it allocates fresh result
// and scratch storage on every call and recomputes every received power. It
// is deliberately kept simple — FastChannel is differentially tested against
// it — and remains the default path of sim.Engine.
func (c *Channel) SlotReceptions(transmitters []int) []Reception {
	out := make([]Reception, len(c.pos))
	for i := range out {
		out[i].Sender = -1
	}
	if len(transmitters) == 0 {
		return out
	}
	transmitting := make(map[int]bool, len(transmitters))
	for _, t := range transmitters {
		transmitting[t] = true
	}
	// Precompute total received power at every node from all transmitters;
	// then SINR for sender s at receiver r is P_s / (total - P_s + N).
	totals := make([]float64, len(c.pos))
	for r := range c.pos {
		if transmitting[r] {
			continue
		}
		for _, s := range transmitters {
			totals[r] += c.params.ReceivedPower(c.Dist(s, r))
		}
	}
	for r := range c.pos {
		if transmitting[r] {
			continue
		}
		for _, s := range transmitters {
			signal := c.params.ReceivedPower(c.Dist(s, r))
			if signal/(totals[r]-signal+c.params.Noise) >= c.params.Beta {
				out[r].Sender = s
				break
			}
		}
	}
	return out
}

// MaxContentionBound returns the paper's coarse bound 4Λ² on the number of
// nodes within transmission range R₁ of any node, given Λ (the ratio of
// R_{1-ε} to the minimum pairwise distance). It is used by the
// acknowledgment algorithm, which only knows a polynomial bound on Λ.
func MaxContentionBound(lambda float64) float64 {
	return 4 * lambda * lambda
}

// Lambda returns Λ = R_{1-ε} / dmin for the given deployment: the ratio of
// the strong-connectivity radius to the minimum pairwise node distance.
// It returns 1 when the deployment has fewer than two nodes.
func Lambda(params Params, pos []geom.Point) float64 {
	dmin := geom.MinPairwiseDist(pos)
	if math.IsInf(dmin, 1) || dmin <= 0 {
		return 1
	}
	l := params.StrongRange() / dmin
	if l < 1 {
		return 1
	}
	return l
}
