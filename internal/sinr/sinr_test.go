package sinr

import (
	"math"
	"testing"
	"testing/quick"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

func testParams() Params { return DefaultParams(10) }

func TestDefaultParamsRange(t *testing.T) {
	for _, r := range []float64{1, 5, 10, 42.5, 100} {
		p := DefaultParams(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("DefaultParams(%v) invalid: %v", r, err)
		}
		if got := p.Range(); math.Abs(got-r) > 1e-9*r {
			t.Fatalf("Range = %v, want %v", got, r)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"valid", func(p *Params) {}, false},
		{"alpha too small", func(p *Params) { p.Alpha = 2 }, true},
		{"beta too small", func(p *Params) { p.Beta = 1 }, true},
		{"zero noise", func(p *Params) { p.Noise = 0 }, true},
		{"negative power", func(p *Params) { p.Power = -1 }, true},
		{"epsilon zero", func(p *Params) { p.Epsilon = 0 }, true},
		{"epsilon half", func(p *Params) { p.Epsilon = 0.5 }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := testParams()
			tc.mutate(&p)
			err := p.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestRangeOrdering(t *testing.T) {
	p := testParams()
	if !(p.ApproxRange() < p.StrongRange() && p.StrongRange() < p.Range()) {
		t.Fatalf("range ordering violated: %v %v %v", p.ApproxRange(), p.StrongRange(), p.Range())
	}
	if got, want := p.StrongRange(), (1-p.Epsilon)*p.Range(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("StrongRange = %v, want %v", got, want)
	}
	if got, want := p.ApproxRange(), (1-2*p.Epsilon)*p.Range(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ApproxRange = %v, want %v", got, want)
	}
}

func TestReceivedPowerNearFieldClamp(t *testing.T) {
	p := testParams()
	if got, want := p.ReceivedPower(0.1), p.ReceivedPower(1); got != want {
		t.Fatalf("near-field clamp missing: %v != %v", got, want)
	}
	if p.ReceivedPower(2) >= p.ReceivedPower(1) {
		t.Fatal("received power does not decay with distance")
	}
}

func TestNewChannelErrors(t *testing.T) {
	if _, err := NewChannel(Params{}, []geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewChannel(testParams(), nil); err == nil {
		t.Fatal("empty deployment accepted")
	}
}

func TestChannelPositionsCopied(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	ch, err := NewChannel(testParams(), pos)
	if err != nil {
		t.Fatal(err)
	}
	pos[0] = geom.Point{X: 100, Y: 100}
	if ch.Dist(0, 1) != 1 {
		t.Fatal("channel shares caller's position slice")
	}
	got := ch.Positions()
	got[1] = geom.Point{X: 50, Y: 50}
	if ch.Dist(0, 1) != 1 {
		t.Fatal("Positions exposes internal slice")
	}
}

func TestSingleTransmitterInRange(t *testing.T) {
	// Two nodes at distance well inside R: a lone transmission must decode.
	p := testParams()
	ch, err := NewChannel(p, []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Decodes(1, 0, []int{0}) {
		t.Fatal("lone in-range transmission not decoded")
	}
	if ch.Decodes(0, 0, []int{0}) {
		t.Fatal("node decoded its own transmission")
	}
}

func TestSingleTransmitterOutOfRange(t *testing.T) {
	p := testParams()
	ch, err := NewChannel(p, []geom.Point{{X: 0, Y: 0}, {X: p.Range() * 1.01, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Decodes(1, 0, []int{0}) {
		t.Fatal("out-of-range transmission decoded")
	}
}

func TestRangeIsExactThreshold(t *testing.T) {
	p := testParams()
	r := p.Range()
	ch, err := NewChannel(p, []geom.Point{{X: 0, Y: 0}, {X: r * 0.999, Y: 0}, {X: 0, Y: r * 1.001}})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Decodes(1, 0, []int{0}) {
		t.Fatal("transmission just inside R not decoded")
	}
	if ch.Decodes(2, 0, []int{0}) {
		t.Fatal("transmission just outside R decoded")
	}
}

func TestHalfDuplex(t *testing.T) {
	p := testParams()
	ch, err := NewChannel(p, []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Decodes(1, 0, []int{0, 1}) {
		t.Fatal("transmitting node decoded a concurrent transmission")
	}
}

func TestInterferenceBlocksReception(t *testing.T) {
	// Receiver between two equidistant transmitters: with β > 1 neither can
	// be decoded because signal == interference.
	p := testParams()
	ch, err := NewChannel(p, []geom.Point{{X: -3, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Decodes(2, 0, []int{0, 1}) || ch.Decodes(2, 1, []int{0, 1}) {
		t.Fatal("reception succeeded despite symmetric interference")
	}
	// Without the interferer the same link works.
	if !ch.Decodes(2, 0, []int{0}) {
		t.Fatal("link broken without interference")
	}
}

func TestCaptureEffect(t *testing.T) {
	// A very close transmitter should be decodable despite a far interferer.
	p := testParams()
	ch, err := NewChannel(p, []geom.Point{{X: 1.5, Y: 0}, {X: 9.5, Y: 0}, {X: 0, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Decodes(2, 0, []int{0, 1}) {
		t.Fatal("close transmitter not captured over far interferer")
	}
	if ch.Decodes(2, 1, []int{0, 1}) {
		t.Fatal("far transmitter decoded despite strong close interferer")
	}
}

func TestInterferenceAdditive(t *testing.T) {
	p := testParams()
	pos := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}, {X: 2, Y: 2}}
	ch, err := NewChannel(p, pos)
	if err != nil {
		t.Fatal(err)
	}
	i12 := ch.Interference(3, []int{1}, -1)
	i13 := ch.Interference(3, []int{2}, -1)
	both := ch.Interference(3, []int{1, 2}, -1)
	if math.Abs(both-(i12+i13)) > 1e-9 {
		t.Fatalf("interference not additive: %v + %v != %v", i12, i13, both)
	}
	// Excluding the sender removes its contribution.
	if got := ch.Interference(3, []int{1, 2}, 1); math.Abs(got-i13) > 1e-9 {
		t.Fatalf("sender exclusion wrong: %v != %v", got, i13)
	}
	// The receiver itself never contributes.
	if got := ch.Interference(3, []int{3}, -1); got != 0 {
		t.Fatalf("receiver contributed interference %v to itself", got)
	}
}

func TestSINRMonotoneInInterferers(t *testing.T) {
	p := testParams()
	ch, err := NewChannel(p, []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 6, Y: 0}, {X: 9, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	s1 := ch.SINR(1, 0, []int{0})
	s2 := ch.SINR(1, 0, []int{0, 2})
	s3 := ch.SINR(1, 0, []int{0, 2, 3})
	if !(s1 > s2 && s2 > s3) {
		t.Fatalf("SINR not monotone decreasing in interferers: %v %v %v", s1, s2, s3)
	}
}

func TestSlotReceptionsMatchesDecodes(t *testing.T) {
	p := testParams()
	src := rng.New(4)
	pos := make([]geom.Point, 40)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 30, Y: src.Float64() * 30}
	}
	ch, err := NewChannel(p, pos)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		var tx []int
		for i := range pos {
			if src.Bernoulli(0.2) {
				tx = append(tx, i)
			}
		}
		rec := ch.SlotReceptions(tx)
		for r := range pos {
			// Find expected sender via Decodes.
			want := -1
			for _, s := range tx {
				if ch.Decodes(r, s, tx) {
					want = s
					break
				}
			}
			if rec[r].Sender != want {
				t.Fatalf("trial %d node %d: SlotReceptions sender %d, Decodes says %d",
					trial, r, rec[r].Sender, want)
			}
		}
	}
}

func TestSlotReceptionsEmpty(t *testing.T) {
	ch, err := NewChannel(testParams(), []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	rec := ch.SlotReceptions(nil)
	for i, r := range rec {
		if r.Sender != -1 {
			t.Fatalf("node %d decoded sender %d with no transmitters", i, r.Sender)
		}
	}
}

// Property: at most one sender can be decoded per receiver per slot when
// β > 1 (the paper's uniqueness argument).
func TestQuickAtMostOneDecodablePerSlot(t *testing.T) {
	p := testParams()
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 5 + src.Intn(30)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
		}
		ch, err := NewChannel(p, pos)
		if err != nil {
			return false
		}
		var tx []int
		for i := 0; i < n; i++ {
			if src.Bernoulli(0.3) {
				tx = append(tx, i)
			}
		}
		for r := 0; r < n; r++ {
			decodable := 0
			for _, s := range tx {
				if ch.Decodes(r, s, tx) {
					decodable++
				}
			}
			if decodable > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLambda(t *testing.T) {
	p := testParams()
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 0}}
	want := p.StrongRange() / 1.0
	if got := Lambda(p, pos); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Lambda = %v, want %v", got, want)
	}
	if got := Lambda(p, []geom.Point{{X: 0, Y: 0}}); got != 1 {
		t.Fatalf("Lambda(single node) = %v, want 1", got)
	}
	// Very sparse deployment: Λ clamps at 1.
	sparse := []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}
	if got := Lambda(p, sparse); got != 1 {
		t.Fatalf("Lambda(sparse) = %v, want 1", got)
	}
}

func TestMaxContentionBound(t *testing.T) {
	if got := MaxContentionBound(3); got != 36 {
		t.Fatalf("MaxContentionBound(3) = %v", got)
	}
	if got := MaxContentionBound(1); got != 4 {
		t.Fatalf("MaxContentionBound(1) = %v", got)
	}
}

func BenchmarkSlotReceptions200(b *testing.B) {
	p := testParams()
	src := rng.New(8)
	pos := make([]geom.Point, 200)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 60, Y: src.Float64() * 60}
	}
	ch, err := NewChannel(p, pos)
	if err != nil {
		b.Fatal(err)
	}
	var tx []int
	for i := range pos {
		if i%5 == 0 {
			tx = append(tx, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SlotReceptions(tx)
	}
}
