package sinr

import (
	"sync/atomic"

	"sinrmac/internal/geom"
)

// This file implements the sharded tier of FastChannel: the million-node
// slot evaluator that promotes the hierarchical bounds representation of
// bounds.go from an opportunistic per-slot tier to the primary regime. Above
// DefaultShardThreshold nodes (or whenever FastOptions.Shards forces it) the
// evaluator holds no per-pair state at all — no n×n matrix, no per-sender
// power columns, no map-backed spatial grid — only the flat cell
// decomposition (geom.CellIndex), the per-offset power-bound tables, and a
// supercell layer on top, for O(occupied cells + nodes) memory.
//
// # Structure
//
// The occupied cells are partitioned spatially into S shards — stripes of
// lattice columns, a pure function of the cell coordinate — and the
// receiver scan runs one chunk per shard on the worker pool, so the
// per-shard phases ride the engine's fused slot session like every other
// scan. Each shard evaluates its own receivers against
//
//   - exact per-sender terms for the near cells (distance lower bound
//     within the culling radius — at most 21 lattice offsets, wherever the
//     sender lives);
//   - certified per-cell-offset power bounds for the remote transmitter
//     aggregates of the surrounding 3×3 supercell window (two table
//     lookups per occupied window cell);
//   - certified per-supercell-offset bounds for everything farther out:
//     supercells are squares of shardSuperSize cells, and a per-slot
//     supercell pass aggregates the transmitter counts so the far field
//     costs O(occupied supercells) per supercell instead of O(occupied
//     cells) per cell.
//
// The two-level split is what keeps a dense slot at n = 10⁶ tractable: the
// flat bounds tier's prep pass is O(cells × occupied cells) — quadratic in
// the ~10⁵ cells of a million-node deployment — while the supercell far
// field is O(supercells × occupied supercells) plus a per-cell window of
// ~(3·shardSuperSize)² table lookups.
//
// # The cross-shard certificate invariant
//
// A shard never reads another shard's per-receiver state; everything it
// knows about remote transmitters is the per-cell/per-supercell aggregate
// bounds. The decisions stay bit-identical to Channel.SlotReceptions at any
// shard count because the shard partition only distributes *work*: every
// quantity entering a decode/silence certificate — the near-cell exact sum,
// the window cell bounds, the supercell far bounds, and the k·ulp rounding
// slack ε_k of bounds.go — is a deterministic function of the slot's
// transmitter set and the (shard-independent) lattice decomposition. The
// bound sums carry at most 2k+near terms across the three levels, within
// the 4·(k+64)·ulp slack budget, so loW ≤ Ŝ ≤ hiW still brackets the exact
// path's floating-point interference sum in any summation order; receivers
// whose certificates disagree refine through the exact per-receiver
// arithmetic exactly as in bounds.go. S ∈ {1, 2, 4, 8, …} therefore yields
// identical Reception slices, which TestShardedEquivalence pins.
//
// Slots that decline the certificates (β guard, cost model, forced via
// BoundsFactor < 0) fall back to a sharded dense scan: cells with no
// transmitter in any near cell are culled wholesale (conservative: the cell
// pair distance lower bound proves every received power below cullPower),
// and the surviving listeners pay the exact O(k) row. Sparse slots keep the
// sender-centric path, with candidates enumerated by walking the cell
// lattice instead of the map grid.

// DefaultShardThreshold is the node count above which a FastChannel with
// the default options switches to the sharded regime: below it the matrix /
// column-cache regimes win on constant factors, above it their per-pair
// state stops fitting a sane memory budget (the column cache alone would
// need 8n bytes per transmitter).
const DefaultShardThreshold = 1 << 16

// defaultShardCount is the shard count of the automatic sharded regime.
// Shards are work-partition units, not threads: the scan runs min(workers,
// shards) chunks, so 64 stripes load-balance any worker count the pool is
// likely to see while keeping the per-shard bookkeeping negligible.
const defaultShardCount = 64

// shardSuperSize is the supercell side length in cells. Supercells at
// Chebyshev distance ≥ 2 provably contain no near cell (their closest cell
// pair is shardSuperSize+1 ≥ 3 > 2 lattice steps apart), which is what lets
// the window phase stop at the 3×3 supercell neighbourhood; 8 balances the
// window size ((3·8)² offsets) against the supercell pass (n/64 cells
// aggregate into each supercell row).
const shardSuperSize = 8

// ShardBytesPerNodeBudget is the documented memory budget of the sharded
// regime: channel plus evaluator together stay under this many heap bytes
// per node (measured ~90 B/node at n = 10⁶ on the canonical density —
// positions and their SoA mirror at 32 B, reception/flag/stamp scratch at
// 13 B, the cell index CSR at ~13 B, and the offset tables amortizing to
// ~8 B). TestShardedMillionNodeBudget enforces it with runtime.MemStats,
// and cmd/sinrsim's -maxnodes guard derives its refusal message from it.
const ShardBytesPerNodeBudget = 128

// shardExt is the sharded regime's extension of the bounds index: the
// supercell layer and the shard partition. It is built once per fork family
// (attached to the shared boundsIndex under the holder lock) and mutated
// only by churn epochs, which append entries for newly occupied cells.
type shardExt struct {
	s int // shard count
	g int // supercell side, in cells (shardSuperSize)
	// Supercell lattice dimensions: cell (cx, cy) lives in supercell
	// (cx/g)·superH + cy/g, a dense id in [0, superW·superH).
	superW, superH int
	// spanX1 is spanX+1 of the lattice at build time; the stripe function
	// shard(cx) = cx·s/spanX1 stays stable across churn epochs because a
	// successful in-place patch never changes the span.
	spanX1 int
	// Per-supercell-offset power bounds, the coarse analogue of the
	// boundsIndex cell tables: valid for any point pair of two supercells
	// at lattice offset (dx, dy), indexed by (dx+superW-1)·(2·superH-1) +
	// dy+superH-1.
	pwSuperUB, pwSuperLB []float64
	// The near lattice offsets (distance lower bound within the culling
	// radius): at most 21 of the 5×5 neighbourhood, independent of the
	// deployment. The sharded dense path probes them to cull whole cells.
	nearDX, nearDY []int32
	// shardCells[s] lists the dense cell ids of shard s; the per-shard
	// receiver chunks iterate exactly one list each.
	shardCells [][]int32
	cellCount  int // cells assigned so far (== NumCells between epochs)
}

// shardForColumn maps a lattice column to its stripe.
func (e *shardExt) shardForColumn(cx int) int {
	sh := cx * e.s / e.spanX1
	if sh >= e.s {
		sh = e.s - 1
	}
	if sh < 0 {
		sh = 0
	}
	return sh
}

// appendCells extends the partition to cells the churn patch appended to
// the decomposition (always inside the original lattice, so the stripe
// function still applies). Steady-state mobility cycles re-occupy existing
// cells and append nothing.
func (e *shardExt) appendCells(cells *geom.CellIndex) {
	nc := cells.NumCells()
	for c := e.cellCount; c < nc; c++ {
		cx, _ := cells.Coord(c)
		sh := e.shardForColumn(cx)
		e.shardCells[sh] = append(e.shardCells[sh], int32(c))
	}
	e.cellCount = nc
}

// buildShardExt constructs the supercell layer and shard partition over a
// freshly built bounds index.
func (f *FastChannel) buildShardExt(bi *boundsIndex) *shardExt {
	cells := bi.cells
	ext := &shardExt{
		s:      f.shards,
		g:      shardSuperSize,
		superW: bi.spanX/shardSuperSize + 1,
		superH: bi.spanY/shardSuperSize + 1,
		spanX1: bi.spanX + 1,
	}
	w, h := 2*ext.superW-1, 2*ext.superH-1
	ext.pwSuperUB = make([]float64, w*h)
	ext.pwSuperLB = make([]float64, w*h)
	super := float64(ext.g) * cells.CellSize()
	for dx := -(ext.superW - 1); dx <= ext.superW-1; dx++ {
		for dy := -(ext.superH - 1); dy <= ext.superH-1; dy++ {
			dmin, dmax := geom.CellOffsetDistBounds(dx, dy, super)
			idx := (dx+ext.superW-1)*h + dy + ext.superH - 1
			ext.pwSuperUB[idx] = f.ch.params.ReceivedPower(dmin * (1 - boundsDistPad))
			ext.pwSuperLB[idx] = f.ch.params.ReceivedPower(dmax * (1 + boundsDistPad))
		}
	}
	for dx := -2; dx <= 2; dx++ {
		for dy := -2; dy <= 2; dy++ {
			if dmin, _ := geom.CellOffsetDistBounds(dx, dy, cells.CellSize()); dmin <= f.cullRadius*(1+boundsDistPad) {
				ext.nearDX = append(ext.nearDX, int32(dx))
				ext.nearDY = append(ext.nearDY, int32(dy))
			}
		}
	}
	ext.shardCells = make([][]int32, ext.s)
	ext.appendCells(cells)
	return ext
}

// resolveShards maps the FastOptions.Shards knob to an effective shard
// count: negative disables the regime, positive forces that count at any
// deployment size (the differential tests pin S ∈ {1, 2, 4, 8} this way),
// zero selects it automatically above DefaultShardThreshold.
func resolveShards(opt, n int) int {
	switch {
	case opt < 0:
		return 0
	case opt > 0:
		return opt
	case n > DefaultShardThreshold:
		return defaultShardCount
	}
	return 0
}

// Shards returns the shard count of the sharded regime, or 0 when the
// evaluator runs one of the per-pair regimes (matrix or grid column cache).
func (f *FastChannel) Shards() int { return f.shards }

// OccupiedCells returns the number of occupied cells in the bounds/shard
// cell decomposition, or 0 while the index has not been built (the bounds
// tier builds it lazily on the first slot that selects it; the sharded
// regime builds it eagerly at construction). The count is what the sharded
// regime's memory scales with, so the scale experiment reports it.
func (f *FastChannel) OccupiedCells() int {
	if f.bidx == nil {
		return 0
	}
	return f.bidx.cells.NumCells()
}

// ensureShardIndex resolves the shared bounds index for the sharded regime
// — building it eagerly, unlike the lazy bounds tier — and attaches the
// shard extension. It reports false when the deployment's extent latches
// the offset tables off (boundsMaxOffsets); the caller then falls back to
// the per-pair regimes, which handle outlier geometry at per-pair cost.
func (f *FastChannel) ensureShardIndex() bool {
	h := f.bholder
	h.mu.Lock()
	if !h.built {
		h.idx, h.off = f.buildBoundsIndex()
		h.built = true
	}
	if h.idx != nil && h.idx.shard == nil {
		h.idx.shard = f.buildShardExt(h.idx)
	}
	f.bidx, f.boundsOff = h.idx, h.off
	h.mu.Unlock()
	if f.bidx == nil {
		return false
	}
	f.sext = f.bidx.shard
	f.growShardScratch()
	return true
}

// growShardScratch sizes the sharded regime's per-slot scratch: the
// per-cell transmitter aggregates shared with the bounds tier plus the
// per-supercell layer. Unlike growBoundsScratch it allocates no per-cell
// far-sum or near-list arenas — the shard chunks compute those per receiver
// cell on the stack — so the evaluator's footprint stays O(cells + nodes).
// Scratch already large enough is kept (steady-state churn allocates
// nothing here).
func (f *FastChannel) growShardScratch() {
	nc := f.bidx.cells.NumCells()
	ns := f.sext.superW * f.sext.superH
	if len(f.txCellCnt) >= nc && len(f.superTxCnt) >= ns && cap(f.occTBySuper) >= nc {
		return
	}
	f.txCellCnt = make([]int32, nc)
	f.txCellStart = make([]int32, nc)
	f.txCellFill = make([]int32, nc)
	f.occT = make([]int32, 0, nc)
	f.occTBySuper = make([]int32, nc)
	f.superTxCnt = make([]int32, ns)
	f.superOccCnt = make([]int32, ns)
	f.superOccStart = make([]int32, ns)
	f.superOccFill = make([]int32, ns)
	f.occS = make([]int32, 0, ns)
	f.superFarLo = make([]float64, ns)
	f.superFarHi = make([]float64, ns)
	f.superFarMax = make([]float64, ns)
}

// demoteToGrid abandons the sharded regime for the per-pair grid regime:
// the escape hatch for churn that stretches the deployment past the offset
// table cap mid-life. It is deliberately rare and allocation-heavy; the
// differential churn suite pins that the demoted evaluator still matches
// the reference.
func (f *FastChannel) demoteToGrid() {
	f.shards, f.sext = 0, nil
	f.grid = geom.NewGrid(f.cullRadius)
	for i, p := range f.pos {
		f.grid.Insert(i, p)
	}
	f.dropColumnCache()
}

// shardSlot evaluates one non-sparse slot in the sharded regime: the
// certified bounds pipeline when the cost model (or BoundsFactor) selects
// it, the cell-culled dense scan otherwise.
func (f *FastChannel) shardSlot(transmitters []int) {
	if f.prepareShard(len(transmitters)) {
		f.runChunks(f.sext.superW*f.sext.superH, (*FastChannel).superFarChunk)
		f.runChunks(f.shards, (*FastChannel).shardBoundsChunk)
		f.finishShard()
		return
	}
	// Dense fallback: aggregate per-cell transmitter counts (for the
	// cell-level cull) and scan each shard's listeners exactly.
	occ := f.occT[:0]
	cells := f.bidx.cells
	for _, t := range f.tx {
		c := cells.CellOf(t)
		if f.txCellCnt[c] == 0 {
			occ = append(occ, int32(c))
		}
		f.txCellCnt[c]++
	}
	f.occT = occ
	f.runChunks(f.shards, (*FastChannel).shardDenseChunk)
	f.finishBounds()
}

// prepareShard is the sharded analogue of prepareBounds: it decides whether
// the slot takes the certified pipeline and, if so, builds the per-cell and
// per-supercell transmitter aggregates. The cost model mirrors the flat
// tier's with the supercell terms added: the far field costs
// supercells·occupiedSupercells instead of cells·occupiedCells, plus a
// per-cell window of ~9 occupied cells per supercell.
func (f *FastChannel) prepareShard(k int) bool {
	if f.boundsFactor < 0 || f.beta-1 < boundsBetaMin {
		return false
	}
	cells := f.bidx.cells
	ext := f.sext
	nc := cells.NumCells()
	ns := ext.superW * ext.superH
	listeners := float64(f.n - k)
	denseCost := listeners * float64(k)
	nearTx := float64(k) * float64(f.bidx.nearStride) / float64(nc)
	if f.boundsFactor == 0 {
		// Pre-count rejection: even with a single occupied cell the
		// pipeline cannot cost less than this, so slots the model will
		// reject anyway skip the O(k) aggregation.
		minCost := float64(k) + float64(nc) + float64(ns) + listeners*(nearTx+8)
		if minCost*boundsSafety > denseCost {
			return false
		}
	}
	occ := f.occT[:0]
	for _, t := range f.tx {
		c := cells.CellOf(t)
		if f.txCellCnt[c] == 0 {
			occ = append(occ, int32(c))
		}
		f.txCellCnt[c]++
	}
	f.occT = occ
	g := ext.g
	occS := f.occS[:0]
	for _, c := range occ {
		cx, cy := cells.Coord(int(c))
		sc := (cx/g)*ext.superH + cy/g
		if f.superOccCnt[sc] == 0 {
			occS = append(occS, int32(sc))
		}
		f.superOccCnt[sc]++
		f.superTxCnt[sc] += f.txCellCnt[c]
	}
	f.occS = occS
	if f.boundsFactor == 0 {
		shardCost := float64(k) + float64(ns)*float64(len(occS)) +
			float64(nc)*(1+9*float64(len(occ))/float64(ns)) + listeners*(nearTx+8)
		if shardCost*boundsSafety > denseCost {
			for _, c := range occ {
				f.txCellCnt[c] = 0
			}
			for _, sc := range occS {
				f.superOccCnt[sc] = 0
				f.superTxCnt[sc] = 0
			}
			return false
		}
	}
	// CSR of the slot's transmitters grouped by cell (shared layout with
	// the flat bounds tier).
	if cap(f.txByCell) < k {
		f.txByCell = make([]int32, k)
	}
	f.txByCell = f.txByCell[:k]
	pos := int32(0)
	for _, c := range occ {
		f.txCellStart[c] = pos
		f.txCellFill[c] = pos
		pos += f.txCellCnt[c]
	}
	for _, t := range f.tx {
		c := cells.CellOf(t)
		f.txByCell[f.txCellFill[c]] = int32(t)
		f.txCellFill[c]++
	}
	// CSR of the occupied cells grouped by supercell, driving the window
	// enumeration of the per-shard chunks.
	spos := int32(0)
	for sc := 0; sc < ns; sc++ {
		f.superOccStart[sc] = spos
		f.superOccFill[sc] = spos
		spos += f.superOccCnt[sc]
	}
	for _, c := range occ {
		cx, cy := cells.Coord(int(c))
		sc := (cx/g)*ext.superH + cy/g
		f.occTBySuper[f.superOccFill[sc]] = c
		f.superOccFill[sc]++
	}
	epsK := 4.0 * 0x1p-52 * float64(k+64)
	f.slackUp, f.slackDown = 1+epsK, 1-epsK
	f.betaHi, f.betaLo = f.beta*(1+epsK), f.beta*(1-epsK)
	atomic.AddUint64(&f.boundsSlots, 1)
	return true
}

// finishShard restores the per-cell and per-supercell aggregates after a
// certified sharded slot.
func (f *FastChannel) finishShard() {
	for _, c := range f.occT {
		f.txCellCnt[c] = 0
	}
	for _, sc := range f.occS {
		f.superOccCnt[sc] = 0
		f.superTxCnt[sc] = 0
	}
}

// superFarChunk computes, for every receiver supercell in [lo, hi), the
// far-field interference bounds contributed by transmitter supercells
// outside the 3×3 window (Chebyshev distance ≥ 2 — those provably contain
// no near cell). Each chunk writes only its own range.
//
// Receiver supercells are processed in 4-wide blocks sharing one pass over
// the occupied-supercell list: the transmitter supercell's coordinates and
// occupancy count are decoded once per occupied supercell instead of once
// per (receiver, transmitter) pair, and the four lanes accumulate through
// independent chains. Per lane the operations — window skip, bound sums in
// occupied order, max update — are exactly the scalar body's, so the
// aggregates are bit-identical to the scalar loop's.
//
//sinrlint:hotpath
func (f *FastChannel) superFarChunk(lo, hi, _ int) {
	ext := f.sext
	occS := f.occS
	h := 2*ext.superH - 1
	sc := lo
	for ; sc+4 <= hi; sc += 4 {
		rsx0, rsy0 := sc/ext.superH, sc%ext.superH
		rsx1, rsy1 := (sc+1)/ext.superH, (sc+1)%ext.superH
		rsx2, rsy2 := (sc+2)/ext.superH, (sc+2)%ext.superH
		rsx3, rsy3 := (sc+3)/ext.superH, (sc+3)%ext.superH
		var lo0, lo1, lo2, lo3 float64
		var hi0, hi1, hi2, hi3 float64
		var fm0, fm1, fm2, fm3 float64
		for _, tsc32 := range occS {
			tsc := int(tsc32)
			tsx, tsy := tsc/ext.superH, tsc%ext.superH
			cnt := float64(f.superTxCnt[tsc])
			if dsx, dsy := tsx-rsx0, tsy-rsy0; dsx < -1 || dsx > 1 || dsy < -1 || dsy > 1 {
				idx := (dsx+ext.superW-1)*h + dsy + ext.superH - 1
				lo0 += cnt * ext.pwSuperLB[idx]
				ub := ext.pwSuperUB[idx]
				hi0 += cnt * ub
				if ub > fm0 {
					fm0 = ub
				}
			}
			if dsx, dsy := tsx-rsx1, tsy-rsy1; dsx < -1 || dsx > 1 || dsy < -1 || dsy > 1 {
				idx := (dsx+ext.superW-1)*h + dsy + ext.superH - 1
				lo1 += cnt * ext.pwSuperLB[idx]
				ub := ext.pwSuperUB[idx]
				hi1 += cnt * ub
				if ub > fm1 {
					fm1 = ub
				}
			}
			if dsx, dsy := tsx-rsx2, tsy-rsy2; dsx < -1 || dsx > 1 || dsy < -1 || dsy > 1 {
				idx := (dsx+ext.superW-1)*h + dsy + ext.superH - 1
				lo2 += cnt * ext.pwSuperLB[idx]
				ub := ext.pwSuperUB[idx]
				hi2 += cnt * ub
				if ub > fm2 {
					fm2 = ub
				}
			}
			if dsx, dsy := tsx-rsx3, tsy-rsy3; dsx < -1 || dsx > 1 || dsy < -1 || dsy > 1 {
				idx := (dsx+ext.superW-1)*h + dsy + ext.superH - 1
				lo3 += cnt * ext.pwSuperLB[idx]
				ub := ext.pwSuperUB[idx]
				hi3 += cnt * ub
				if ub > fm3 {
					fm3 = ub
				}
			}
		}
		f.superFarLo[sc], f.superFarLo[sc+1], f.superFarLo[sc+2], f.superFarLo[sc+3] = lo0, lo1, lo2, lo3
		f.superFarHi[sc], f.superFarHi[sc+1], f.superFarHi[sc+2], f.superFarHi[sc+3] = hi0, hi1, hi2, hi3
		f.superFarMax[sc], f.superFarMax[sc+1], f.superFarMax[sc+2], f.superFarMax[sc+3] = fm0, fm1, fm2, fm3
	}
	for ; sc < hi; sc++ {
		rsx, rsy := sc/ext.superH, sc%ext.superH
		loSum, hiSum, farMax := 0.0, 0.0, 0.0
		for _, tsc32 := range occS {
			tsc := int(tsc32)
			dsx := tsc/ext.superH - rsx
			dsy := tsc%ext.superH - rsy
			if dsx >= -1 && dsx <= 1 && dsy >= -1 && dsy <= 1 {
				continue // window: handled at cell granularity per receiver cell
			}
			idx := (dsx+ext.superW-1)*h + dsy + ext.superH - 1
			cnt := float64(f.superTxCnt[tsc])
			loSum += cnt * ext.pwSuperLB[idx]
			ub := ext.pwSuperUB[idx]
			hiSum += cnt * ub
			if ub > farMax {
				farMax = ub
			}
		}
		f.superFarLo[sc] = loSum
		f.superFarHi[sc] = hiSum
		f.superFarMax[sc] = farMax
	}
}

// shardBoundsChunk evaluates the receivers of shards [lo, hi) on the
// certified pipeline. Per receiver cell it folds the cell-granularity
// bounds of the 3×3 supercell window (collecting the near cells into a
// stack buffer — at most 21 near offsets exist) on top of the precomputed
// supercell far field, then runs the standard certificate per listener:
// near transmitters exactly, decode/silence decisions emitted only when
// provable, the ambiguous band refined with the exact O(k) arithmetic.
//
//sinrlint:hotpath
func (f *FastChannel) shardBoundsChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	row := f.workerRow(worker)
	bi := f.bidx
	ext := f.sext
	cells := bi.cells
	g := ext.g
	h := 2*bi.spanY + 1
	var near [25]int32
	var evaluated, refined uint64
	for si := lo; si < hi; si++ {
		for _, rc32 := range ext.shardCells[si] {
			rc := int(rc32)
			nodes := cells.Nodes(rc)
			if len(nodes) == 0 {
				continue
			}
			listening := false
			for _, r := range nodes {
				if !f.isTx[r] {
					listening = true
					break
				}
			}
			if !listening {
				continue
			}
			rcx, rcy := cells.Coord(rc)
			rsx, rsy := rcx/g, rcy/g
			scSelf := rsx*ext.superH + rsy
			loFar := f.superFarLo[scSelf]
			hiFar := f.superFarHi[scSelf]
			farMax := f.superFarMax[scSelf]
			nearN := 0
			wsxHi, wsyHi := rsx+1, rsy+1
			if wsxHi >= ext.superW {
				wsxHi = ext.superW - 1
			}
			if wsyHi >= ext.superH {
				wsyHi = ext.superH - 1
			}
			for wsx := max(rsx-1, 0); wsx <= wsxHi; wsx++ {
				for wsy := max(rsy-1, 0); wsy <= wsyHi; wsy++ {
					sc := wsx*ext.superH + wsy
					s0 := f.superOccStart[sc]
					for _, tc := range f.occTBySuper[s0 : s0+int32(f.superOccCnt[sc])] {
						tcx, tcy := cells.Coord(int(tc))
						idx := (tcx-rcx+bi.spanX)*h + tcy - rcy + bi.spanY
						if bi.nearOff[idx] {
							near[nearN] = tc
							nearN++
							continue
						}
						cnt := float64(f.txCellCnt[tc])
						loFar += cnt * bi.pwLB[idx]
						ub := bi.pwUB[idx]
						hiFar += cnt * ub
						if ub > farMax {
							farMax = ub
						}
					}
				}
			}
			for _, r32 := range nodes {
				r := int(r32)
				if f.isTx[r] {
					continue
				}
				evaluated++
				rx, ry := f.px[r], f.py[r]
				exactNear := 0.0
				best := -1
				bestPow := 0.0
				for i := 0; i < nearN; i++ {
					c := near[i]
					cstart := f.txCellStart[c]
					for _, s := range f.txByCell[cstart : cstart+f.txCellCnt[c]] {
						pw := f.pairPower(f.px[s], f.py[s], rx, ry)
						exactNear += pw
						if pw > bestPow {
							bestPow = pw
							best = int(s)
						}
					}
				}
				loW := (exactNear + loFar) * f.slackDown
				hiW := (exactNear + hiFar) * f.slackUp
				if best >= 0 && bestPow >= f.betaHi*(hiW-bestPow+f.noise) {
					f.out[r].Sender = best
					dec = append(dec, r)
					continue
				}
				pMax := bestPow
				if farMax > pMax {
					pMax = farMax
				}
				itf := loW - pMax
				if itf < 0 {
					itf = 0
				}
				if pMax < f.betaLo*(itf+f.noise) {
					continue // certified: nothing decodes here
				}
				// Ambiguous band: exact fallback, identical to the dense
				// scan's arithmetic (pairPower in transmitter order).
				refined++
				total := 0.0
				for j, s := range tx {
					pw := f.pairPower(f.px[s], f.py[s], rx, ry)
					row[j] = pw
					total += pw
				}
				for j, s := range tx {
					signal := row[j]
					if signal < f.cullPower {
						continue
					}
					if signal/(total-signal+f.noise) >= f.beta {
						f.out[r].Sender = s
						dec = append(dec, r)
						break
					}
				}
			}
		}
	}
	f.decoded[worker] = dec
	atomic.AddUint64(&f.boundsReceivers, evaluated)
	atomic.AddUint64(&f.boundsRefined, refined)
}

// shardDenseChunk is the sharded regime's exact fallback scan for slots the
// certificates decline: cells with no transmitter in any near-offset cell
// are culled wholesale (the cell-pair distance lower bound proves every
// received power there below cullPower — the same conservative argument as
// the per-receiver grid cull), and each surviving listener pays the exact
// O(k) row, bit-identical to the dense scan.
//
//sinrlint:hotpath
func (f *FastChannel) shardDenseChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	row := f.workerRow(worker)
	ext := f.sext
	cells := f.bidx.cells
	for si := lo; si < hi; si++ {
		for _, rc32 := range ext.shardCells[si] {
			rc := int(rc32)
			nodes := cells.Nodes(rc)
			listening := false
			for _, r := range nodes {
				if !f.isTx[r] {
					listening = true
					break
				}
			}
			if !listening {
				continue
			}
			rcx, rcy := cells.Coord(rc)
			hot := false
			for i := range ext.nearDX {
				c := cells.CellAt(rcx+int(ext.nearDX[i]), rcy+int(ext.nearDY[i]))
				if c >= 0 && f.txCellCnt[c] > 0 {
					hot = true
					break
				}
			}
			if !hot {
				continue // no transmitter within the culling radius of any point of rc
			}
			for _, r32 := range nodes {
				r := int(r32)
				if f.isTx[r] {
					continue
				}
				rx, ry := f.px[r], f.py[r]
				total := 0.0
				for j, s := range tx {
					pw := f.pairPower(f.px[s], f.py[s], rx, ry)
					row[j] = pw
					total += pw
				}
				for j, s := range tx {
					signal := row[j]
					if signal < f.cullPower {
						continue
					}
					if signal/(total-signal+f.noise) >= f.beta {
						f.out[r].Sender = s
						dec = append(dec, r)
						break
					}
				}
			}
		}
	}
	f.decoded[worker] = dec
}

// sparseShardChunk evaluates the slot's candidate receivers [lo, hi) (by
// candidate index) in the sharded regime: the arithmetic of the sparse grid
// path with every power recomputed by the fused kernel (the regime keeps no
// column cache by design).
//
//sinrlint:hotpath
func (f *FastChannel) sparseShardChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	row := f.workerRow(worker)
	for i := lo; i < hi; i++ {
		r := f.candidates[i]
		if f.isTx[r] {
			continue
		}
		rx, ry := f.px[r], f.py[r]
		total := 0.0
		for j, s := range tx {
			pw := f.pairPower(f.px[s], f.py[s], rx, ry)
			row[j] = pw
			total += pw
		}
		for j, s := range tx {
			signal := row[j]
			if signal < f.cullPower {
				continue
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				dec = append(dec, r)
				break
			}
		}
	}
	f.decoded[worker] = dec
}

// appendCandidatesCells is the sharded regime's candidate enumeration: the
// transmitters' culling balls walked on the cell lattice (the 3×3 cell
// window suffices because the ball radius equals the cell side) with the
// same DistSq ≤ r² membership predicate as the grid's AppendWithin, so the
// candidate set is identical to the grid path's.
func (f *FastChannel) appendCandidatesCells(tx []int, gen uint32) {
	cells := f.bidx.cells
	rr := f.cullRadius * f.cullRadius
	for _, s := range tx {
		p := f.pos[s]
		cx, cy := cells.PointCoord(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				c := cells.CellAt(cx+dx, cy+dy)
				if c < 0 {
					continue
				}
				for _, id32 := range cells.Nodes(c) {
					id := int(id32)
					if f.mark[id] != gen && f.pos[id].DistSq(p) <= rr {
						f.mark[id] = gen
						f.candidates = append(f.candidates, id)
					}
				}
			}
		}
	}
}
