package sinr

import (
	"math"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// BenchWorkload builds the canonical slot-path benchmark workload: n nodes
// drawn uniformly from a 4√n × 4√n square, so the density stays constant as
// n grows (the hardest regime for far-field culling — nearly every receiver
// has transmitters in range), with every tenth node transmitting. It is the
// single definition shared by the top-level BenchmarkSlotReceptions suite
// and cmd/macbench -json, so their measurements stay comparable across PRs.
func BenchWorkload(n int, seed uint64) (*Channel, []int, error) {
	src := rng.New(seed)
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		return nil, nil, err
	}
	var tx []int
	for i := 0; i < n; i += 10 {
		tx = append(tx, i)
	}
	return ch, tx, nil
}

// DenseBenchWorkload builds the dense-slot benchmark workload behind the
// bounds-vs-dense entries of BENCH_macbench.json: n nodes at BenchWorkload's
// canonical density (4√n × 4√n square) with k distinct transmitters drawn
// as the prefix of a seeded permutation — the regime a backoff protocol
// like decay spends its early phases in, where a large fraction of nodes
// transmits at once and the sender-centric sparse path cannot help. It is
// the fixed definition behind the bounds-vs-dense entries of
// BENCH_macbench.json, so those measurements stay comparable across PRs.
func DenseBenchWorkload(n, k int, seed uint64) (*Channel, []int, error) {
	src := rng.New(seed)
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		return nil, nil, err
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return ch, perm[:k], nil
}

// SparseBenchWorkload builds the sparse-slot benchmark workload: n nodes
// drawn uniformly from an 8√n × 8√n square (a quarter of BenchWorkload's
// density) with ⌈√n⌉ distinct random transmitters — the regime a backoff
// protocol like decay spends most of its slots in, where only a small
// fraction of receivers lies within culling range of any transmitter. It is
// the fixed definition behind the sparse-vs-dense entries of
// BENCH_macbench.json, so those measurements stay comparable across PRs.
func SparseBenchWorkload(n int, seed uint64) (*Channel, []int, error) {
	src := rng.New(seed)
	side := 8 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		return nil, nil, err
	}
	k := int(math.Ceil(math.Sqrt(float64(n))))
	seen := make(map[int]bool, k)
	tx := make([]int, 0, k)
	for len(tx) < k {
		id := src.Intn(n)
		if !seen[id] {
			seen[id] = true
			tx = append(tx, id)
		}
	}
	return ch, tx, nil
}

// BenchFillColumn fills dst[:n] with sender s's received power at every
// node, either through the blocked 4-wide production kernel (the column
// cache's fill path) or through the scalar pairPower loop it replaced. It
// exists for cmd/macbench's within-run blocked-kernel gate and the
// bit-identity tests; production paths always use the blocked kernel.
func (f *FastChannel) BenchFillColumn(dst []float64, s int, blocked bool) {
	dst = dst[:f.n]
	sx, sy := f.px[s], f.py[s]
	if blocked {
		f.fillColumn(dst, sx, sy)
		return
	}
	for r := range dst {
		dst[r] = f.pairPower(sx, sy, f.px[r], f.py[r])
	}
}

// BenchGatherTotals computes each listed receiver's total received power
// over the transmitter set against the cached power matrix, either through
// the blocked 4-receiver gather (the production matrix kernel's totals
// pass, matrixTotals4) or through the scalar per-receiver loop it
// replaced. Requires the matrix regime; exported for cmd/macbench's
// within-run blocked-kernel gate.
func (f *FastChannel) BenchGatherTotals(out []float64, rs, tx []int, blocked bool) {
	if f.mat == nil {
		panic("sinr: BenchGatherTotals requires the matrix regime")
	}
	i := 0
	if blocked {
		for ; i+4 <= len(rs); i += 4 {
			row0 := f.mat[rs[i]*f.stride : rs[i]*f.stride+f.n]
			row1 := f.mat[rs[i+1]*f.stride : rs[i+1]*f.stride+f.n]
			row2 := f.mat[rs[i+2]*f.stride : rs[i+2]*f.stride+f.n]
			row3 := f.mat[rs[i+3]*f.stride : rs[i+3]*f.stride+f.n]
			out[i], out[i+1], out[i+2], out[i+3] = matrixTotals4(tx, row0, row1, row2, row3)
		}
	}
	for ; i < len(rs); i++ {
		row := f.mat[rs[i]*f.stride : rs[i]*f.stride+f.n]
		total := 0.0
		for _, s := range tx {
			total += row[s]
		}
		out[i] = total
	}
}
