package sinr

import (
	"math"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
)

// BenchWorkload builds the canonical slot-path benchmark workload: n nodes
// drawn uniformly from a 4√n × 4√n square, so the density stays constant as
// n grows (the hardest regime for far-field culling — nearly every receiver
// has transmitters in range), with every tenth node transmitting. It is the
// single definition shared by the top-level BenchmarkSlotReceptions suite
// and cmd/macbench -json, so their measurements stay comparable across PRs.
func BenchWorkload(n int, seed uint64) (*Channel, []int, error) {
	src := rng.New(seed)
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		return nil, nil, err
	}
	var tx []int
	for i := 0; i < n; i += 10 {
		tx = append(tx, i)
	}
	return ch, tx, nil
}

// DenseBenchWorkload builds the dense-slot benchmark workload behind the
// bounds-vs-dense entries of BENCH_macbench.json: n nodes at BenchWorkload's
// canonical density (4√n × 4√n square) with k distinct transmitters drawn
// as the prefix of a seeded permutation — the regime a backoff protocol
// like decay spends its early phases in, where a large fraction of nodes
// transmits at once and the sender-centric sparse path cannot help. It is
// the fixed definition behind the bounds-vs-dense entries of
// BENCH_macbench.json, so those measurements stay comparable across PRs.
func DenseBenchWorkload(n, k int, seed uint64) (*Channel, []int, error) {
	src := rng.New(seed)
	side := 4 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		return nil, nil, err
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return ch, perm[:k], nil
}

// SparseBenchWorkload builds the sparse-slot benchmark workload: n nodes
// drawn uniformly from an 8√n × 8√n square (a quarter of BenchWorkload's
// density) with ⌈√n⌉ distinct random transmitters — the regime a backoff
// protocol like decay spends most of its slots in, where only a small
// fraction of receivers lies within culling range of any transmitter. It is
// the fixed definition behind the sparse-vs-dense entries of
// BENCH_macbench.json, so those measurements stay comparable across PRs.
func SparseBenchWorkload(n int, seed uint64) (*Channel, []int, error) {
	src := rng.New(seed)
	side := 8 * math.Sqrt(float64(n))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	ch, err := NewChannel(DefaultParams(12), pos)
	if err != nil {
		return nil, nil, err
	}
	k := int(math.Ceil(math.Sqrt(float64(n))))
	seen := make(map[int]bool, k)
	tx := make([]int, 0, k)
	for len(tx) < k {
		id := src.Intn(n)
		if !seen[id] {
			seen[id] = true
			tx = append(tx, id)
		}
	}
	return ch, tx, nil
}
