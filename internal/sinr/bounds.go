package sinr

import (
	"sync"
	"sync/atomic"

	"sinrmac/internal/geom"
)

// This file implements the hierarchical-bounds tier of FastChannel: an
// O(occupied cells) per-receiver slot evaluator for dense transmitter sets
// that emits the exact decode decision whenever conservative interference
// bounds already determine it, and falls back to the exact per-receiver
// arithmetic (identical to the dense chunk evaluators) only inside the thin
// ambiguous band around the SINR threshold β.
//
// # Structure
//
// The deployment is decomposed once into square cells of side cullRadius
// (geom.CellIndex, the same lattice the culling grid uses). Per slot, the
// transmitter set is aggregated per cell in O(k): a transmitter count and a
// CSR list per occupied cell. Because received power is a monotone function
// of distance, the total interference a receiver in cell rc observes from
// the transmitters of cell tc is bounded by
//
//	cnt(tc)·pw(dmax(rc,tc)) <= Σ <= cnt(tc)·pw(dmin(rc,tc))
//
// where dmin/dmax are the conservative cell-pair distance bounds of
// geom.CellOffsetDistBounds. Those depend only on the integer lattice
// offset, so pw(dmin)/pw(dmax) are precomputed once per evaluator into
// per-offset tables and each (receiver cell, transmitter cell) pair costs
// two table lookups. Cells whose distance lower bound does not exceed
// cullRadius are "near": only they can contain a decodable sender (beyond
// cullRadius every received power is provably below cullPower), so near
// cells are expanded exactly per receiver while far cells contribute only
// their aggregate bounds. The per-slot prep pass computes, for every
// receiver cell, the far-cell bound sums and the near-cell list — O(cells ×
// occupied tx cells) total, amortized O(occupied cells / receivers-per-cell)
// per receiver — and the per-receiver pass then costs O(near transmitters)
// plus O(1).
//
// # Decision exactness
//
// The tier never emits an approximate value: its only output is the decode
// decision (Reception.Sender), and a decision is emitted directly only when
// it is provably identical to what the exact evaluator computes. Since
// β > 1, at most one sender can decode at a receiver, and that sender must
// be the strongest one, which lies in a near cell and is found exactly
// during near expansion (power p*, identity s*). With S the true real
// interference total, the exact path's floating-point total Ŝ satisfies
// |Ŝ-S|/S <= (k-1)·ulp/2 up to second order; the tier widens its bounds
// multiplicatively by slack ε_k = 4·2⁻⁵²·(k+64) — covering both that
// summation error and the rounding of the bound arithmetic itself — so that
// loW <= Ŝ <= hiW holds for the FP sum the exact path would compute, in any
// summation order. Then:
//
//   - decode is certified when p* >= β·(1+ε_k)·(hiW - p* + N): the exact
//     path's SINR for s* is at least β, and no other sender can reach β
//     (its interference includes p*, forcing its ratio below 1);
//   - silence is certified when pMax < β·(1-ε_k)·(max(0, loW-pMax) + N)
//     with pMax = max(p*, far-cell power upper bound): the SINR ratio is
//     monotone in the signal, so every sender's exact ratio stays below β.
//
// If neither certificate fires — the receiver sits within the bounds' gap
// of the threshold — the receiver is refined: re-evaluated with the exact
// dense arithmetic (same power source, same tx-order summation), so the
// output is bit-identical to Channel.SlotReceptions in every case. Ties for
// the strongest power can never certify (the rival's power alone pushes the
// bound past the certificate) and therefore also refine.
//
// The ε_k slack argument additionally needs β itself to clear 1 by more
// than the accumulated rounding; boundsBetaMin guards that degenerate
// corner by disabling the tier (Params.Validate already requires β > 1).

// boundsBetaMin is the minimum β-1 for which the bounds tier is enabled:
// the decision-exactness argument needs the SINR threshold to exceed 1 by
// more than the floating-point slack ε_k, and 1e-9 leaves six orders of
// magnitude of margin over ε_k at k = 10⁶.
const boundsBetaMin = 1e-9

// boundsDistPad is the relative padding applied when the per-offset power
// tables are built: upper-bound powers are evaluated at dmin·(1-pad) and
// lower-bound powers at dmax·(1+pad), so the handful of ulps of rounding in
// the distance and power computations can never make a table entry
// non-conservative.
const boundsDistPad = 1e-12

// boundsSafety is the factor by which the bounds tier's estimated slot cost
// must undercut the dense scan's before the adaptive dispatch selects it;
// the margin absorbs the estimate's uniformity assumption and the (not
// estimated) exact-refine fraction.
const boundsSafety = 2.0

// boundsMaxOffsets caps the per-offset power tables: a deployment whose
// extent spans so many cells that the (2·spanX+1)·(2·spanY+1) offset tables
// would exceed this many entries (2M entries = 2 × 16 MiB) keeps the bounds
// tier disabled rather than paying unbounded memory for outlier geometry.
const boundsMaxOffsets = 1 << 21

// BoundsStats snapshots the bounds tier's instrumentation counters. The
// refine rate — the fraction of bounds-evaluated receivers whose decision
// the bounds could not certify — is the tier's effectiveness measure:
// certified receivers cost O(near transmitters), refined ones pay the full
// O(k) exact evaluation on top.
type BoundsStats struct {
	// Slots is the number of slots the bounds tier evaluated.
	Slots uint64
	// Receivers is the number of listening receivers those slots evaluated.
	Receivers uint64
	// Refined is how many of those receivers fell back to the exact
	// evaluator because neither certificate fired.
	Refined uint64
}

// RefineRate returns Refined/Receivers, or 0 when nothing was evaluated.
func (s BoundsStats) RefineRate() float64 {
	if s.Receivers == 0 {
		return 0
	}
	return float64(s.Refined) / float64(s.Receivers)
}

// BoundsStats returns the tier's counters accumulated since the evaluator
// was created (or since ResetBoundsStats). It is safe to call concurrently
// with slot evaluation; a concurrent read observes some recent state.
func (f *FastChannel) BoundsStats() BoundsStats {
	return BoundsStats{
		Slots:     atomic.LoadUint64(&f.boundsSlots),
		Receivers: atomic.LoadUint64(&f.boundsReceivers),
		Refined:   atomic.LoadUint64(&f.boundsRefined),
	}
}

// ResetBoundsStats zeroes the tier's counters; benchmark drivers call it
// between cases so each case reports its own refine rate. Forks start with
// zeroed counters of their own.
func (f *FastChannel) ResetBoundsStats() {
	atomic.StoreUint64(&f.boundsSlots, 0)
	atomic.StoreUint64(&f.boundsReceivers, 0)
	atomic.StoreUint64(&f.boundsRefined, 0)
}

// boundsIndex is the immutable part of the bounds tier: the cell
// decomposition and the per-offset power-bound tables. It is built lazily
// on the first slot that considers the tier and shared by forks.
type boundsIndex struct {
	cells *geom.CellIndex
	// pwUB/pwLB bound the received power between any point pair of two
	// cells at lattice offset (dx, dy), indexed by
	// (dx+spanX)·(2·spanY+1) + dy+spanY.
	pwUB, pwLB []float64
	// nearOff flags the offsets whose distance lower bound does not exceed
	// cullRadius: only such cells can contain a decodable sender, and they
	// are expanded exactly.
	nearOff []bool
	// nearStride is the number of near offsets — the per-receiver-cell
	// capacity of the near-cell lists (each near offset names at most one
	// cell).
	nearStride   int
	spanX, spanY int
	// shard is the sharded regime's extension (supercell tables and the
	// shard partition, see shard.go), attached under the holder lock when
	// an evaluator family runs sharded; nil for the flat bounds tier.
	shard *shardExt
}

// boundsHolder shares one lazily built boundsIndex between an evaluator
// and all its forks: whichever of them first takes a dense slot builds the
// index, concurrent forks block on the mutex instead of duplicating the
// O(n) decomposition and the offset tables. Unlike a sync.Once the holder
// can be reset: a churn epoch whose changes escape the original lattice
// invalidates it in place (no allocation on the apply path) and the next
// dense slot rebuilds from the post-epoch positions.
type boundsHolder struct {
	mu    sync.Mutex
	built bool
	idx   *boundsIndex // nil when the tier is latched off
	off   bool
}

// invalidate drops the holder's index so the next dense slot rebuilds it.
func (h *boundsHolder) invalidate() {
	h.mu.Lock()
	h.built, h.idx, h.off = false, nil, false
	h.mu.Unlock()
}

// ensureBoundsIndex resolves the shared cell decomposition and offset
// tables, building them exactly once across all forks (until a churn epoch
// invalidates the holder), and sizes this evaluator's private scratch. The
// tier is latched off instead when the deployment's extent would make the
// tables exceed boundsMaxOffsets.
func (f *FastChannel) ensureBoundsIndex() {
	h := f.bholder
	h.mu.Lock()
	if !h.built {
		h.idx, h.off = f.buildBoundsIndex()
		h.built = true
	}
	f.bidx, f.boundsOff = h.idx, h.off
	h.mu.Unlock()
	if f.bidx != nil {
		f.growBoundsScratch()
	}
}

// buildBoundsIndex constructs the cell decomposition and per-offset power
// tables from the evaluator's immutable state (positions, radius, params).
func (f *FastChannel) buildBoundsIndex() (*boundsIndex, bool) {
	cells := geom.NewCellIndex(f.pos, f.cullRadius)
	sx, sy := cells.Span()
	w, h := 2*sx+1, 2*sy+1
	if w*h > boundsMaxOffsets {
		return nil, true
	}
	bi := &boundsIndex{
		cells:   cells,
		pwUB:    make([]float64, w*h),
		pwLB:    make([]float64, w*h),
		nearOff: make([]bool, w*h),
		spanX:   sx,
		spanY:   sy,
	}
	for dx := -sx; dx <= sx; dx++ {
		for dy := -sy; dy <= sy; dy++ {
			dmin, dmax := geom.CellOffsetDistBounds(dx, dy, f.cullRadius)
			idx := (dx+sx)*h + dy + sy
			bi.pwUB[idx] = f.ch.params.ReceivedPower(dmin * (1 - boundsDistPad))
			bi.pwLB[idx] = f.ch.params.ReceivedPower(dmax * (1 + boundsDistPad))
			if dmin <= f.cullRadius*(1+boundsDistPad) {
				bi.nearOff[idx] = true
				bi.nearStride++
			}
		}
	}
	return bi, false
}

// growBoundsScratch sizes the per-slot scratch of the bounds tier for the
// evaluator's own use. Forks share the index but call this to own private
// scratch. It is also re-run after churn epochs, which can grow the cell
// count (or swap in a rebuilt index with a different shape); scratch already
// large enough is kept, so steady-state churn allocates nothing here.
func (f *FastChannel) growBoundsScratch() {
	nc := f.bidx.cells.NumCells()
	if len(f.txCellCnt) >= nc && len(f.nearCells) >= nc*f.bidx.nearStride {
		return
	}
	f.txCellCnt = make([]int32, nc)
	f.txCellStart = make([]int32, nc)
	f.txCellFill = make([]int32, nc)
	f.occT = make([]int32, 0, nc)
	f.loFar = make([]float64, nc)
	f.hiFar = make([]float64, nc)
	f.farMaxUB = make([]float64, nc)
	f.nearCnt = make([]int32, nc)
	f.nearCells = make([]int32, nc*f.bidx.nearStride)
}

// prepareBounds decides whether the slot with k >= 1 transmitters takes the
// bounds tier and, if so, builds the per-cell transmitter aggregates. It
// must run after f.tx is set. On rejection all touched scratch is restored,
// so the dense path sees a clean evaluator.
//
// The adaptive decision (boundsFactor == 0) models per-slot op counts: the
// dense scan costs listeners·k, the bounds tier k (aggregation) +
// cells·occupiedTxCells (the prep pass) + listeners·(expected near
// transmitters + O(1)); the tier is taken only when it undercuts the dense
// scan by boundsSafety. A positive boundsFactor forces the tier (tests pin
// paths with it), a negative one disables it; either way the β guard is
// respected.
func (f *FastChannel) prepareBounds(k int) bool {
	if f.boundsFactor < 0 || f.boundsOff || f.beta-1 < boundsBetaMin {
		return false
	}
	if f.bidx == nil {
		// Build lazily, but in the adaptive mode only once slots are dense
		// enough that the tier could plausibly win (the cost model below
		// needs the cell count, which requires the index).
		if f.boundsFactor == 0 && k < 16 {
			return false
		}
		f.ensureBoundsIndex()
		if f.boundsOff {
			return false
		}
	}
	cells := f.bidx.cells
	nc := cells.NumCells()
	listeners := float64(f.n - k)
	denseCost := listeners * float64(k)
	nearTx := float64(k) * float64(f.bidx.nearStride) / float64(nc)
	if f.boundsFactor == 0 {
		// Pre-count rejection: even with a single occupied transmitter cell
		// the tier cannot cost less than this, so slots the model will
		// reject anyway (all-transmit above all: listeners = 0) skip the
		// O(k) aggregation instead of paying it just to learn that.
		minCost := float64(k) + float64(nc) + listeners*(nearTx+8)
		if minCost*boundsSafety > denseCost {
			return false
		}
	}
	occ := f.occT[:0]
	for _, t := range f.tx {
		c := cells.CellOf(t)
		if f.txCellCnt[c] == 0 {
			occ = append(occ, int32(c))
		}
		f.txCellCnt[c]++
	}
	f.occT = occ
	if f.boundsFactor == 0 {
		boundsCost := float64(k) + float64(nc)*float64(len(occ)) + listeners*(nearTx+8)
		if boundsCost*boundsSafety > denseCost {
			for _, c := range occ {
				f.txCellCnt[c] = 0
			}
			return false
		}
	}
	// CSR of the slot's transmitters grouped by cell.
	if cap(f.txByCell) < k {
		f.txByCell = make([]int32, k)
	}
	f.txByCell = f.txByCell[:k]
	pos := int32(0)
	for _, c := range occ {
		f.txCellStart[c] = pos
		f.txCellFill[c] = pos
		pos += f.txCellCnt[c]
	}
	for _, t := range f.tx {
		c := cells.CellOf(t)
		f.txByCell[f.txCellFill[c]] = int32(t)
		f.txCellFill[c]++
	}
	// Rounding slack: covers the exact path's k-term FP summation in any
	// order plus the bound arithmetic's own rounding, with headroom.
	epsK := 4.0 * 0x1p-52 * float64(k+64)
	f.slackUp, f.slackDown = 1+epsK, 1-epsK
	f.betaHi, f.betaLo = f.beta*(1+epsK), f.beta*(1-epsK)
	atomic.AddUint64(&f.boundsSlots, 1)
	return true
}

// finishBounds restores the per-cell aggregates after the slot.
func (f *FastChannel) finishBounds() {
	for _, c := range f.occT {
		f.txCellCnt[c] = 0
	}
}

// boundsPrepChunk computes, for every receiver cell in [lo, hi), the
// far-cell interference bound sums, the largest far-cell power upper bound,
// and the list of occupied near cells. It writes only per-cell entries of
// its range, so chunks race on nothing.
//
// Receiver cells are processed in 4-wide blocks sharing one pass over the
// occupied-cell list: the transmitter cell's coordinates and occupancy
// count load once per occupied cell instead of once per (receiver cell,
// occupied cell) pair, and the four lanes' bound sums accumulate through
// independent chains. Each lane performs exactly the scalar body's
// operations in occupied-cell order — per-lane sums, near-list appends and
// max updates are untouched — so every aggregate is bit-identical to the
// scalar loop's (hoisting the count conversion out of the far branch
// changes no arithmetic: the multiply still happens only in the far case).
//
//sinrlint:hotpath
func (f *FastChannel) boundsPrepChunk(lo, hi, _ int) {
	bi := f.bidx
	occ := f.occT
	stride := bi.nearStride
	h := 2*bi.spanY + 1
	rc := lo
	for ; rc+4 <= hi; rc += 4 {
		rcx0, rcy0 := bi.cells.Coord(rc)
		rcx1, rcy1 := bi.cells.Coord(rc + 1)
		rcx2, rcy2 := bi.cells.Coord(rc + 2)
		rcx3, rcy3 := bi.cells.Coord(rc + 3)
		var lo0, lo1, lo2, lo3 float64
		var hi0, hi1, hi2, hi3 float64
		var fm0, fm1, fm2, fm3 float64
		var nr0, nr1, nr2, nr3 int
		base0 := rc * stride
		base1 := (rc + 1) * stride
		base2 := (rc + 2) * stride
		base3 := (rc + 3) * stride
		for _, c := range occ {
			tcx, tcy := bi.cells.Coord(int(c))
			cnt := float64(f.txCellCnt[c])
			if idx := (tcx-rcx0+bi.spanX)*h + tcy - rcy0 + bi.spanY; bi.nearOff[idx] {
				f.nearCells[base0+nr0] = c
				nr0++
			} else {
				lo0 += cnt * bi.pwLB[idx]
				ub := bi.pwUB[idx]
				hi0 += cnt * ub
				if ub > fm0 {
					fm0 = ub
				}
			}
			if idx := (tcx-rcx1+bi.spanX)*h + tcy - rcy1 + bi.spanY; bi.nearOff[idx] {
				f.nearCells[base1+nr1] = c
				nr1++
			} else {
				lo1 += cnt * bi.pwLB[idx]
				ub := bi.pwUB[idx]
				hi1 += cnt * ub
				if ub > fm1 {
					fm1 = ub
				}
			}
			if idx := (tcx-rcx2+bi.spanX)*h + tcy - rcy2 + bi.spanY; bi.nearOff[idx] {
				f.nearCells[base2+nr2] = c
				nr2++
			} else {
				lo2 += cnt * bi.pwLB[idx]
				ub := bi.pwUB[idx]
				hi2 += cnt * ub
				if ub > fm2 {
					fm2 = ub
				}
			}
			if idx := (tcx-rcx3+bi.spanX)*h + tcy - rcy3 + bi.spanY; bi.nearOff[idx] {
				f.nearCells[base3+nr3] = c
				nr3++
			} else {
				lo3 += cnt * bi.pwLB[idx]
				ub := bi.pwUB[idx]
				hi3 += cnt * ub
				if ub > fm3 {
					fm3 = ub
				}
			}
		}
		f.nearCnt[rc], f.nearCnt[rc+1], f.nearCnt[rc+2], f.nearCnt[rc+3] = int32(nr0), int32(nr1), int32(nr2), int32(nr3)
		f.loFar[rc], f.loFar[rc+1], f.loFar[rc+2], f.loFar[rc+3] = lo0, lo1, lo2, lo3
		f.hiFar[rc], f.hiFar[rc+1], f.hiFar[rc+2], f.hiFar[rc+3] = hi0, hi1, hi2, hi3
		f.farMaxUB[rc], f.farMaxUB[rc+1], f.farMaxUB[rc+2], f.farMaxUB[rc+3] = fm0, fm1, fm2, fm3
	}
	for ; rc < hi; rc++ {
		rcx, rcy := bi.cells.Coord(rc)
		loSum, hiSum, farMax := 0.0, 0.0, 0.0
		near := 0
		base := rc * stride
		for _, c := range occ {
			tcx, tcy := bi.cells.Coord(int(c))
			idx := (tcx-rcx+bi.spanX)*h + tcy - rcy + bi.spanY
			if bi.nearOff[idx] {
				f.nearCells[base+near] = c
				near++
				continue
			}
			cnt := float64(f.txCellCnt[c])
			loSum += cnt * bi.pwLB[idx]
			ub := bi.pwUB[idx]
			hiSum += cnt * ub
			if ub > farMax {
				farMax = ub
			}
		}
		f.nearCnt[rc] = int32(near)
		f.loFar[rc] = loSum
		f.hiFar[rc] = hiSum
		f.farMaxUB[rc] = farMax
	}
}

// boundsGridChunk evaluates receivers [lo, hi) on the bounds tier in the
// grid regime (powers from the lazy column cache, recomputed on a cache
// miss). Certified receivers cost O(near transmitters); the rest re-run the
// exact dense arithmetic of gridChunk — same power source, same tx-order
// summation — so the emitted decisions are bit-identical to the dense scan.
//
//sinrlint:hotpath
func (f *FastChannel) boundsGridChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	row := f.workerRow(worker)
	bi := f.bidx
	stride := bi.nearStride
	var evaluated, refined uint64
	for r := lo; r < hi; r++ {
		if f.isTx[r] {
			continue
		}
		evaluated++
		rx, ry := f.px[r], f.py[r]
		rc := bi.cells.CellOf(r)
		exactNear := 0.0
		best := -1
		bestPow := 0.0
		base := rc * stride
		for i := 0; i < int(f.nearCnt[rc]); i++ {
			c := f.nearCells[base+i]
			cstart := f.txCellStart[c]
			for _, s := range f.txByCell[cstart : cstart+f.txCellCnt[c]] {
				var pw float64
				if col := f.cols[s]; col != nil {
					pw = col[r]
				} else {
					pw = f.pairPower(f.px[s], f.py[s], rx, ry)
				}
				exactNear += pw
				if pw > bestPow {
					bestPow = pw
					best = int(s)
				}
			}
		}
		loW := (exactNear + f.loFar[rc]) * f.slackDown
		hiW := (exactNear + f.hiFar[rc]) * f.slackUp
		if best >= 0 && bestPow >= f.betaHi*(hiW-bestPow+f.noise) {
			f.out[r].Sender = best
			dec = append(dec, r)
			continue
		}
		pMax := bestPow
		if f.farMaxUB[rc] > pMax {
			pMax = f.farMaxUB[rc]
		}
		itf := loW - pMax
		if itf < 0 {
			itf = 0
		}
		if pMax < f.betaLo*(itf+f.noise) {
			continue // certified: nothing decodes here
		}
		// Ambiguous band: exact fallback, identical to gridChunk.
		refined++
		total := 0.0
		for j, s := range tx {
			var pw float64
			if col := f.cols[s]; col != nil {
				pw = col[r]
			} else {
				pw = f.pairPower(f.px[s], f.py[s], rx, ry)
			}
			row[j] = pw
			total += pw
		}
		for j, s := range tx {
			signal := row[j]
			if signal < f.cullPower {
				continue
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				dec = append(dec, r)
				break
			}
		}
	}
	f.decoded[worker] = dec
	atomic.AddUint64(&f.boundsReceivers, evaluated)
	atomic.AddUint64(&f.boundsRefined, refined)
}

// boundsMatrixChunk is boundsGridChunk with powers served from the cached
// n×n matrix; the fallback is identical to matrixChunk.
//
//sinrlint:hotpath
func (f *FastChannel) boundsMatrixChunk(lo, hi, worker int) {
	tx := f.tx
	dec := f.decoded[worker]
	bi := f.bidx
	stride := bi.nearStride
	var evaluated, refined uint64
	for r := lo; r < hi; r++ {
		if f.isTx[r] {
			continue
		}
		evaluated++
		mrow := f.mat[r*f.stride : r*f.stride+f.n]
		rc := bi.cells.CellOf(r)
		exactNear := 0.0
		best := -1
		bestPow := 0.0
		base := rc * stride
		for i := 0; i < int(f.nearCnt[rc]); i++ {
			c := f.nearCells[base+i]
			cstart := f.txCellStart[c]
			for _, s := range f.txByCell[cstart : cstart+f.txCellCnt[c]] {
				pw := mrow[s]
				exactNear += pw
				if pw > bestPow {
					bestPow = pw
					best = int(s)
				}
			}
		}
		loW := (exactNear + f.loFar[rc]) * f.slackDown
		hiW := (exactNear + f.hiFar[rc]) * f.slackUp
		if best >= 0 && bestPow >= f.betaHi*(hiW-bestPow+f.noise) {
			f.out[r].Sender = best
			dec = append(dec, r)
			continue
		}
		pMax := bestPow
		if f.farMaxUB[rc] > pMax {
			pMax = f.farMaxUB[rc]
		}
		itf := loW - pMax
		if itf < 0 {
			itf = 0
		}
		if pMax < f.betaLo*(itf+f.noise) {
			continue
		}
		refined++
		total := 0.0
		for _, s := range tx {
			total += mrow[s]
		}
		for _, s := range tx {
			signal := mrow[s]
			if signal < f.cullPower {
				continue
			}
			if signal/(total-signal+f.noise) >= f.beta {
				f.out[r].Sender = s
				dec = append(dec, r)
				break
			}
		}
	}
	f.decoded[worker] = dec
	atomic.AddUint64(&f.boundsReceivers, evaluated)
	atomic.AddUint64(&f.boundsRefined, refined)
}
