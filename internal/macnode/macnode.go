// Package macnode provides the generic adapter that turns a single
// local-broadcast automaton (the Halldórsson–Mitra acknowledgment algorithm,
// the Decay baseline, ...) into a full per-node MAC endpoint: a sim.Node
// automaton that also implements core.MAC, drives an attached higher layer,
// deduplicates rcv events and records the absMAC event trace.
//
// The combined MAC of Algorithm 11.1 (package mac) does not use this
// adapter because it multiplexes two automatons onto alternating slots; all
// single-automaton MACs do.
package macnode

import (
	"fmt"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

// Automaton is a per-node local-broadcast algorithm ticked once per
// protocol slot.
type Automaton interface {
	// Start begins the local broadcast of m, resetting algorithm state.
	Start(m core.Message)
	// Abort cancels the ongoing broadcast.
	Abort()
	// Done reports whether the ongoing broadcast has completed and can be
	// acknowledged.
	Done() bool
	// Tick advances the automaton one slot. To transmit it fills the
	// node's pooled frame f and returns true; returning false listens.
	// The frame follows the sim frame lifecycle: it is reused across
	// slots and valid only until the end of the slot.
	Tick(f *sim.Frame) bool
	// Receive processes a frame decoded in one of the automaton's slots.
	// The frame's payload is valid only for the duration of the call.
	Receive(f *sim.Frame)
}

// Factory constructs a node's automaton given its private random source and
// the callback the automaton must invoke for every received bcast-message.
type Factory func(src *rng.Source, onData func(core.Message)) (Automaton, error)

// Node adapts one Automaton into a core.MAC + sim.Node endpoint.
type Node struct {
	factory  Factory
	recorder *core.Recorder

	id      int
	src     *rng.Source
	aut     Automaton
	layer   core.Layer
	initErr error

	cur     *core.Message
	curSlot int64
	seen    map[core.MessageID]bool
}

var (
	_ sim.Node = (*Node)(nil)
	_ core.MAC = (*Node)(nil)
)

// New returns a Node built around the automaton produced by factory.
// recorder may be nil; if provided, every absMAC interface event is
// recorded for the spec checker.
func New(factory Factory, recorder *core.Recorder) *Node {
	if factory == nil {
		panic("macnode: nil factory")
	}
	return &Node{factory: factory, recorder: recorder, seen: make(map[core.MessageID]bool)}
}

// Init implements sim.Node. A factory failure (typically an invalid
// automaton configuration) is recorded rather than panicking inside library
// code; the engine reads it back through InitError (sim.NodeInitError)
// right after Init and returns the wrapped error to its caller.
func (n *Node) Init(id int, src *rng.Source) {
	n.id = id
	n.src = src
	n.aut, n.initErr = nil, nil
	aut, err := n.factory(src.Split(), n.onData)
	if err != nil {
		n.initErr = fmt.Errorf("macnode: automaton construction for node %d failed: %w", id, err)
		return
	}
	n.aut = aut
	if n.layer != nil {
		n.layer.Attach(id, n, src.Split())
	}
}

// InitError implements sim.NodeInitError.
func (n *Node) InitError() error { return n.initErr }

// SetLayer implements core.MAC.
func (n *Node) SetLayer(l core.Layer) { n.layer = l }

// Busy implements core.MAC.
func (n *Node) Busy() bool { return n.cur != nil }

// ID returns the node id assigned at Init.
func (n *Node) ID() int { return n.id }

// Bcast implements core.MAC. The enhanced absMAC allows one outstanding
// broadcast per node; extra requests are dropped (higher layers queue).
func (n *Node) Bcast(slot int64, m core.Message) {
	if n.cur != nil || n.aut == nil {
		return
	}
	cp := m
	n.cur = &cp
	n.record(core.Event{Kind: core.EventBcast, Node: n.id, Msg: m, Slot: slot})
	n.aut.Start(m)
}

// Abort implements core.MAC.
func (n *Node) Abort(slot int64, id core.MessageID) {
	if n.cur == nil || n.cur.ID != id || n.aut == nil {
		return
	}
	n.record(core.Event{Kind: core.EventAbort, Node: n.id, Msg: *n.cur, Slot: slot})
	n.aut.Abort()
	n.cur = nil
}

// Tick implements sim.Node.
func (n *Node) Tick(slot int64, f *sim.Frame) bool {
	n.curSlot = slot
	if n.aut == nil {
		return false // Init failed; the engine surfaces InitError instead
	}
	if n.layer != nil {
		n.layer.OnSlot(slot)
	}
	// Deliver the acknowledgment for a completed broadcast.
	if n.cur != nil && n.aut.Done() {
		m := *n.cur
		n.cur = nil
		n.aut.Abort()
		n.record(core.Event{Kind: core.EventAck, Node: n.id, Msg: m, Slot: slot})
		if n.layer != nil {
			n.layer.OnAck(slot, m)
		}
	}
	return n.aut.Tick(f)
}

// Receive implements sim.Node.
func (n *Node) Receive(slot int64, f *sim.Frame) {
	n.curSlot = slot
	if n.aut == nil {
		return
	}
	n.aut.Receive(f)
}

// onData handles a received bcast-message: the first reception of each
// message id produces a rcv event and an upward OnRcv callback.
func (n *Node) onData(m core.Message) {
	if m.Origin == n.id || n.seen[m.ID] {
		return
	}
	n.seen[m.ID] = true
	n.record(core.Event{Kind: core.EventRcv, Node: n.id, Msg: m, Slot: n.curSlot})
	if n.layer != nil {
		n.layer.OnRcv(n.curSlot, m)
	}
}

func (n *Node) record(ev core.Event) {
	if n.recorder != nil {
		n.recorder.Record(ev)
	}
}
