package macnode

import (
	"errors"
	"strings"
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
)

// testChannel returns a two-node channel on which a lone transmission from
// node 0 always decodes at node 1.
func testChannel(t *testing.T) *sinr.Channel {
	t.Helper()
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// dataKind is the frame kind the fake automaton transmits.
var dataKind = sim.RegisterFrameKind("test.data")

// fakeAutomaton is a scriptable Automaton that records every call.
type fakeAutomaton struct {
	onData func(core.Message)

	started []core.Message
	aborts  int
	done    bool
	ticks   int
	frame   *sim.Frame // copied into the pooled frame by Tick, nil listens
	rcvd    []*sim.Frame
}

func (a *fakeAutomaton) Start(m core.Message) { a.started = append(a.started, m) }
func (a *fakeAutomaton) Abort()               { a.aborts++; a.done = false }
func (a *fakeAutomaton) Done() bool           { return a.done }
func (a *fakeAutomaton) Tick(f *sim.Frame) bool {
	a.ticks++
	if a.frame == nil {
		return false
	}
	f.Kind = a.frame.Kind
	f.Msg = a.frame.Msg
	f.Payload = a.frame.Payload
	return true
}
func (a *fakeAutomaton) Receive(f *sim.Frame) { a.rcvd = append(a.rcvd, f) }

// deliver simulates the automaton decoding a data message: it invokes the
// onData callback the factory captured, as real automatons do.
func (a *fakeAutomaton) deliver(m core.Message) { a.onData(m) }

// recordingLayer records the upward callbacks a MAC issues.
type recordingLayer struct {
	attached int
	mac      core.MAC
	slots    []int64
	rcvs     []core.Message
	acks     []core.Message
}

func (l *recordingLayer) Attach(node int, mac core.MAC, src *rng.Source) { l.attached++; l.mac = mac }
func (l *recordingLayer) OnSlot(slot int64)                              { l.slots = append(l.slots, slot) }
func (l *recordingLayer) OnRcv(slot int64, m core.Message)               { l.rcvs = append(l.rcvs, m) }
func (l *recordingLayer) OnAck(slot int64, m core.Message)               { l.acks = append(l.acks, m) }

// newTestNode builds an initialised Node around a fakeAutomaton.
func newTestNode(t *testing.T, id int, rec *core.Recorder) (*Node, *fakeAutomaton, *recordingLayer) {
	t.Helper()
	aut := &fakeAutomaton{}
	layer := &recordingLayer{}
	n := New(func(src *rng.Source, onData func(core.Message)) (Automaton, error) {
		if src == nil {
			t.Fatal("factory got a nil random source")
		}
		aut.onData = onData
		return aut, nil
	}, rec)
	n.SetLayer(layer)
	n.Init(id, rng.New(42))
	return n, aut, layer
}

func TestNewNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil, nil)
}

func TestInitFactoryErrorReported(t *testing.T) {
	n := New(func(src *rng.Source, onData func(core.Message)) (Automaton, error) {
		return nil, errors.New("boom")
	}, nil)
	n.Init(0, rng.New(1))
	err := n.InitError()
	if err == nil {
		t.Fatal("InitError() = nil after a factory error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("InitError() = %v, want the factory error wrapped", err)
	}
	// A failed node is inert, not a crash: it listens and drops traffic.
	var f sim.Frame
	if n.Tick(0, &f) {
		t.Fatal("failed node transmitted")
	}
	n.Receive(0, &f)
	n.Bcast(0, core.Message{ID: 1, Origin: 0})
	if n.Busy() {
		t.Fatal("failed node accepted a broadcast")
	}
	// A successful re-Init clears the recorded error.
	ok, _, _ := newTestNode(t, 0, nil)
	if err := ok.InitError(); err != nil {
		t.Fatalf("InitError() = %v after successful Init", err)
	}
}

func TestInitAttachesLayer(t *testing.T) {
	n, _, layer := newTestNode(t, 3, nil)
	if layer.attached != 1 {
		t.Fatalf("layer attached %d times, want 1", layer.attached)
	}
	if layer.mac != core.MAC(n) {
		t.Fatal("layer attached to a different MAC endpoint")
	}
	if n.ID() != 3 {
		t.Fatalf("ID = %d, want 3", n.ID())
	}
}

func TestBcastStateMachine(t *testing.T) {
	rec := core.NewRecorder()
	n, aut, _ := newTestNode(t, 0, rec)
	if n.Busy() {
		t.Fatal("fresh node is busy")
	}
	m := core.Message{ID: 7, Origin: 0}
	n.Bcast(5, m)
	if !n.Busy() {
		t.Fatal("node not busy after Bcast")
	}
	if len(aut.started) != 1 || aut.started[0].ID != 7 {
		t.Fatalf("automaton started with %v, want message 7", aut.started)
	}
	// The enhanced absMAC allows one outstanding broadcast: extra requests
	// are dropped without touching the automaton.
	n.Bcast(6, core.Message{ID: 8, Origin: 0})
	if len(aut.started) != 1 {
		t.Fatal("second Bcast reached the automaton while busy")
	}
	events := rec.Events()
	if len(events) != 1 || events[0].Kind != core.EventBcast || events[0].Msg.ID != 7 || events[0].Slot != 5 {
		t.Fatalf("recorded events = %+v, want one bcast(7)@5", events)
	}
}

func TestAckDeliveredOnTickAfterDone(t *testing.T) {
	rec := core.NewRecorder()
	n, aut, layer := newTestNode(t, 0, rec)
	m := core.Message{ID: 11, Origin: 0}
	n.Bcast(0, m)
	var fr sim.Frame
	n.Tick(1, &fr)
	if len(layer.acks) != 0 {
		t.Fatal("ack before the automaton finished")
	}
	aut.done = true
	n.Tick(2, &fr)
	if len(layer.acks) != 1 || layer.acks[0].ID != 11 {
		t.Fatalf("acks = %v, want message 11", layer.acks)
	}
	if n.Busy() {
		t.Fatal("node still busy after ack")
	}
	if aut.aborts != 1 {
		t.Fatalf("automaton reset %d times on ack, want 1", aut.aborts)
	}
	// Layer saw OnSlot for both ticks, in order, before the ack.
	if len(layer.slots) != 2 || layer.slots[0] != 1 || layer.slots[1] != 2 {
		t.Fatalf("layer slots = %v", layer.slots)
	}
	kinds := []core.EventKind{}
	for _, ev := range rec.Events() {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != core.EventBcast || kinds[1] != core.EventAck {
		t.Fatalf("event kinds = %v, want [bcast ack]", kinds)
	}
	// After the ack the node accepts a fresh broadcast.
	n.Bcast(3, core.Message{ID: 12, Origin: 0})
	if !n.Busy() || len(aut.started) != 2 {
		t.Fatal("node did not accept a new broadcast after ack")
	}
}

func TestAbort(t *testing.T) {
	rec := core.NewRecorder()
	n, aut, _ := newTestNode(t, 0, rec)
	n.Bcast(0, core.Message{ID: 5, Origin: 0})
	// Aborting a different message id is a no-op.
	n.Abort(1, 99)
	if !n.Busy() || aut.aborts != 0 {
		t.Fatal("mismatched abort changed state")
	}
	n.Abort(2, 5)
	if n.Busy() {
		t.Fatal("node busy after abort")
	}
	if aut.aborts != 1 {
		t.Fatalf("automaton aborted %d times, want 1", aut.aborts)
	}
	// Aborting with nothing outstanding is a no-op.
	n.Abort(3, 5)
	if aut.aborts != 1 {
		t.Fatal("abort without an outstanding broadcast reached the automaton")
	}
	events := rec.Events()
	if len(events) != 2 || events[1].Kind != core.EventAbort || events[1].Slot != 2 {
		t.Fatalf("events = %+v, want [bcast abort@2]", events)
	}
}

func TestTickForwardsFrames(t *testing.T) {
	n, aut, _ := newTestNode(t, 0, nil)
	var fr sim.Frame
	if n.Tick(0, &fr) {
		t.Fatal("idle automaton transmitted")
	}
	aut.frame = &sim.Frame{Kind: dataKind}
	if !n.Tick(1, &fr) || fr.Kind != dataKind {
		t.Fatalf("Tick did not fill the pooled frame with the automaton's transmission (frame %+v)", fr)
	}
	in := &sim.Frame{Kind: dataKind, From: 9}
	n.Receive(1, in)
	if len(aut.rcvd) != 1 || aut.rcvd[0] != in {
		t.Fatal("Receive not forwarded to the automaton")
	}
}

func TestRcvDeduplication(t *testing.T) {
	rec := core.NewRecorder()
	n, aut, layer := newTestNode(t, 0, rec)
	var fr sim.Frame
	n.Tick(4, &fr) // establish the current slot for event timestamps
	m := core.Message{ID: 20, Origin: 1}
	aut.deliver(m)
	aut.deliver(m) // duplicate delivery of the same message id
	if len(layer.rcvs) != 1 || layer.rcvs[0].ID != 20 {
		t.Fatalf("layer rcvs = %v, want exactly one rcv of 20", layer.rcvs)
	}
	// A message originated by this node is never delivered upward.
	aut.deliver(core.Message{ID: 21, Origin: 0})
	if len(layer.rcvs) != 1 {
		t.Fatal("own-origin message delivered upward")
	}
	// A different message id is delivered.
	aut.deliver(core.Message{ID: 22, Origin: 2})
	if len(layer.rcvs) != 2 {
		t.Fatal("second distinct message not delivered")
	}
	events := rec.Events()
	if len(events) != 2 || events[0].Kind != core.EventRcv || events[0].Slot != 4 {
		t.Fatalf("events = %+v, want two rcv events stamped with slot 4", events)
	}
}

// TestNodeWithoutLayerOrRecorder checks that both attachments are optional.
func TestNodeWithoutLayerOrRecorder(t *testing.T) {
	aut := &fakeAutomaton{}
	n := New(func(src *rng.Source, onData func(core.Message)) (Automaton, error) {
		aut.onData = onData
		return aut, nil
	}, nil)
	n.Init(0, rng.New(1))
	n.Bcast(0, core.Message{ID: 1, Origin: 0})
	aut.done = true
	var fr sim.Frame
	n.Tick(1, &fr) // ack with no layer must not panic
	if n.Busy() {
		t.Fatal("node busy after layerless ack")
	}
	aut.deliver(core.Message{ID: 2, Origin: 1}) // rcv with no layer
}

// TestNodeDrivenByEngine exercises the adapter end-to-end under the real
// simulation engine and the core.MAC contract: one broadcaster, one
// listener, a trivially decodable channel.
func TestNodeDrivenByEngine(t *testing.T) {
	rec := core.NewRecorder()
	frames := 0
	mkNode := func(transmit bool) *Node {
		return New(func(src *rng.Source, onData func(core.Message)) (Automaton, error) {
			a := &fakeAutomaton{}
			a.onData = onData
			if transmit {
				// Broadcast automaton: transmit a data frame every slot
				// carrying the message; finish after three slots.
				a.frame = &sim.Frame{Kind: dataKind, Msg: core.Message{ID: 1, Origin: 0}}
			}
			frames++
			return a, nil
		}, rec)
	}
	tx := mkNode(true)
	rxLayer := &recordingLayer{}
	rx := mkNode(false)
	rx.SetLayer(rxLayer)

	ch := testChannel(t)
	eng, err := sim.NewEngine(ch, []sim.Node{tx, rx}, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tx.Bcast(0, core.Message{ID: 1, Origin: 0})
	eng.Run(3, nil)
	// The receiving adapter's automaton saw the transmitted frames.
	rxAut := eng.Node(1).(*Node).aut.(*fakeAutomaton)
	if len(rxAut.rcvd) != 3 {
		t.Fatalf("receiver automaton decoded %d frames, want 3", len(rxAut.rcvd))
	}
	if frames != 2 {
		t.Fatalf("factory ran %d times, want 2", frames)
	}
}
