package approgress

import (
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// testConfig returns a configuration tuned so that the algorithm completes
// quickly in small unit tests: smaller Q (more data transmissions) and a
// longer discovery block (more reliable neighbourhood estimation).
func testConfig(lambda float64) Config {
	cfg := DefaultConfig(lambda, 0.1, 3)
	cfg.QScale = 0.25
	cfg.TFactor = 4
	cfg.MISRounds = 4
	cfg.DataFactor = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(16, 0.1, 3).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Lambda: 0.5, EpsApprog: 0.1, Alpha: 3},
		{Lambda: 16, EpsApprog: 0, Alpha: 3},
		{Lambda: 16, EpsApprog: 1.2, Alpha: 3},
		{Lambda: 16, EpsApprog: 0.1, Alpha: 2},
		{Lambda: 16, EpsApprog: 0.1, Alpha: 3, P: 0.7},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestConfigDerivedLengths(t *testing.T) {
	cfg := DefaultConfig(32, 0.1, 3)
	if cfg.T() <= 0 || cfg.Q() < 1 || cfg.DataSlots() <= 0 {
		t.Fatal("derived quantities must be positive")
	}
	if cfg.PhaseCount() < 2 {
		t.Fatalf("PhaseCount = %d", cfg.PhaseCount())
	}
	wantPhase := int64(2*cfg.T()) + int64(cfg.MISRoundCount()*cfg.T()) + int64(cfg.DataSlots())
	if got := cfg.PhaseLen(); got != wantPhase {
		t.Fatalf("PhaseLen = %d, want %d", got, wantPhase)
	}
	if got := cfg.EpochLen(); got != wantPhase*int64(cfg.PhaseCount()) {
		t.Fatalf("EpochLen = %d", got)
	}
	// Larger Λ gives more phases and a larger Q.
	big := DefaultConfig(1024, 0.1, 3)
	if big.PhaseCount() <= cfg.PhaseCount() || big.Q() <= cfg.Q() {
		t.Fatal("phase structure not monotone in Λ")
	}
	// The approximate-progress machinery does not depend on any degree
	// parameter: the epoch length is a function of Λ, ε and α only.
	if cfg.EpochLen() != DefaultConfig(32, 0.1, 3).EpochLen() {
		t.Fatal("epoch length not deterministic in its parameters")
	}
}

func TestAutomatonConstructorErrors(t *testing.T) {
	if _, err := NewAutomaton(Config{Lambda: 0, EpsApprog: 0.1, Alpha: 3}, 0, rng.New(1), nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewAutomaton(DefaultConfig(8, 0.1, 3), 0, nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// tick drives one automaton Tick with a throwaway pooled frame, returning
// the transmitted frame (nil when the automaton listened).
func tick(a *Automaton) *sim.Frame {
	var f sim.Frame
	if a.Tick(&f) {
		return &f
	}
	return nil
}

func TestAutomatonIdleWithoutBroadcast(t *testing.T) {
	aut, err := NewAutomaton(testConfig(8), 0, rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < aut.cfg.EpochLen()+10; i++ {
		if tick(aut) != nil {
			t.Fatal("idle automaton transmitted")
		}
	}
	if aut.Broadcasting() || aut.SenderActive() || aut.EpochSender() {
		t.Fatal("idle automaton claims to be active")
	}
}

func TestAutomatonJoinsAtEpochBoundary(t *testing.T) {
	cfg := testConfig(8)
	aut, err := NewAutomaton(cfg, 0, rng.New(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Burn half an epoch, then start a broadcast: the node must not join
	// S₁ until the next epoch boundary.
	for i := int64(0); i < cfg.EpochLen()/2; i++ {
		tick(aut)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	if !aut.Broadcasting() {
		t.Fatal("not broadcasting after Start")
	}
	for i := cfg.EpochLen() / 2; i < cfg.EpochLen(); i++ {
		tick(aut)
		if aut.EpochSender() {
			t.Fatal("node joined S₁ in the middle of an epoch")
		}
	}
	tick(aut) // first slot of the next epoch
	if !aut.EpochSender() || !aut.SenderActive() {
		t.Fatal("node did not join S₁ at the epoch boundary")
	}
}

func TestAutomatonTransmitsAllFrameKindsWhenAlone(t *testing.T) {
	cfg := testConfig(8)
	aut, err := NewAutomaton(cfg, 3, rng.New(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 9, Origin: 3})
	kinds := map[sim.FrameKind]int{}
	for i := int64(0); i < cfg.EpochLen(); i++ {
		if f := tick(aut); f != nil {
			kinds[f.Kind]++
		}
	}
	for _, k := range []sim.FrameKind{FrameID, FrameList, FrameMIS, FrameData} {
		if kinds[k] == 0 {
			t.Fatalf("automaton never transmitted %s frames; got %v", k, kinds)
		}
	}
	// A lone node must end every phase as a dominator (trivial local
	// minimum) and therefore stay in S_φ throughout.
	if !aut.SenderActive() {
		t.Fatal("lone broadcaster dropped out of the sender set")
	}
}

func TestAutomatonAbortStopsData(t *testing.T) {
	cfg := testConfig(8)
	aut, err := NewAutomaton(cfg, 0, rng.New(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	aut.Abort()
	if aut.Broadcasting() {
		t.Fatal("still broadcasting after abort")
	}
	for i := int64(0); i < cfg.EpochLen(); i++ {
		if f := tick(aut); f != nil && f.Kind == FrameData {
			t.Fatal("aborted automaton transmitted data")
		}
	}
}

func TestAutomatonReceiveDataCallback(t *testing.T) {
	var got []core.Message
	aut, err := NewAutomaton(testConfig(8), 1, rng.New(5), func(m core.Message) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	aut.Receive(nil)
	aut.Receive(&sim.Frame{Kind: sim.RegisterFrameKind("decay.data"), Msg: core.Message{ID: 3}})
	aut.Receive(&sim.Frame{Kind: FrameData, Msg: core.Message{ID: 4, Origin: 2}})
	if len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("onData saw %+v", got)
	}
}

// buildScenario builds a deployment, a recorder and one approgress Node per
// deployment node; broadcasters[i] == true makes node i broadcast message
// id 1000+i at slot 0.
func buildScenario(t *testing.T, d *topology.Deployment, cfg Config, broadcasters []bool, seed uint64) (*sim.Engine, []*Node, *core.Recorder) {
	t.Helper()
	rec := core.NewRecorder()
	nodes := make([]sim.Node, d.NumNodes())
	apNodes := make([]*Node, d.NumNodes())
	for i := range nodes {
		n := NewNode(cfg, 0, rec)
		apNodes[i] = n
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range broadcasters {
		if b {
			apNodes[i].Bcast(0, core.Message{ID: core.MessageID(1000 + i), Origin: i})
		}
	}
	return eng, apNodes, rec
}

func TestSingleBroadcasterDeliversWithinEpochs(t *testing.T) {
	d, err := topology.Clusters(1, 8, sinr.DefaultParams(20), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d.Lambda())
	broadcasters := make([]bool, d.NumNodes())
	broadcasters[0] = true
	eng, _, rec := buildScenario(t, d, cfg, broadcasters, 31)

	deadline := 3 * cfg.EpochLen()
	eng.Run(deadline, func() bool {
		return len(rec.EventsOfKind(core.EventRcv)) >= d.NumNodes()-1
	})
	rcvs := rec.EventsOfKind(core.EventRcv)
	received := map[int]bool{}
	for _, ev := range rcvs {
		if ev.Msg.ID == 1000 {
			received[ev.Node] = true
		}
	}
	if len(received) < d.NumNodes()-1 {
		t.Fatalf("only %d of %d neighbours received the broadcast within %d slots",
			len(received), d.NumNodes()-1, deadline)
	}
}

func TestApproxProgressInDenseCluster(t *testing.T) {
	// Every node in a dense cluster broadcasts; a designated listener node
	// must receive something within a small number of epochs even though
	// the contention equals the cluster size.
	d, err := topology.Clusters(1, 24, sinr.DefaultParams(30), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d.Lambda())
	broadcasters := make([]bool, d.NumNodes())
	for i := 1; i < d.NumNodes(); i++ {
		broadcasters[i] = true
	}
	eng, _, rec := buildScenario(t, d, cfg, broadcasters, 35)

	listenerGotIt := func() bool {
		for _, ev := range rec.EventsOfKind(core.EventRcv) {
			if ev.Node == 0 {
				return true
			}
		}
		return false
	}
	eng.Run(3*cfg.EpochLen(), listenerGotIt)
	if !listenerGotIt() {
		t.Fatalf("listener received nothing within 3 epochs (%d slots) despite %d broadcasting neighbours",
			3*cfg.EpochLen(), d.NumNodes()-1)
	}
	// The progress checker agrees that approximate progress was made for
	// the listener with respect to G_{1-2ε}.
	prog := core.MeasureProgress(rec.Events(), d.StrongGraph(), d.ApproxGraph(), eng.Slot())
	if prog.Satisfied == 0 {
		t.Fatal("no satisfied approximate-progress samples")
	}
}

func TestSparsificationReducesSenderSet(t *testing.T) {
	// Two dense clusters of broadcasters: by the last phase of an epoch the
	// surviving sender set S_Φ must be strictly smaller than S₁, because
	// the per-phase MIS removes dominated cluster-mates.
	d, err := topology.Clusters(2, 8, sinr.DefaultParams(20), rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d.Lambda())
	cfg.TFactor = 10 // long discovery blocks so H̃̃ is reliably discovered
	broadcasters := make([]bool, d.NumNodes())
	for i := range broadcasters {
		broadcasters[i] = true
	}
	eng, apNodes, _ := buildScenario(t, d, cfg, broadcasters, 43)

	// Run until the start of the last phase's data block of the first
	// epoch, at which point S_Φ membership has been decided.
	lastPhaseStart := int64(cfg.PhaseCount()-1) * cfg.PhaseLen()
	_, misEnd := func() (int64, int64) {
		t := int64(cfg.T())
		return t, 2*t + int64(cfg.MISRoundCount())*t
	}()
	eng.Run(lastPhaseStart+misEnd+1, nil)

	active := 0
	for _, n := range apNodes {
		if n.Automaton().SenderActive() {
			active++
		}
	}
	if active == 0 {
		t.Fatal("sender set collapsed to zero before the last phase")
	}
	if active >= d.NumNodes() {
		t.Fatalf("no sparsification: %d of %d nodes still in S_Φ", active, d.NumNodes())
	}
}

func TestNodeAckTimerAndAbort(t *testing.T) {
	rec := core.NewRecorder()
	n := NewNode(testConfig(8), 50, rec)
	layer := &captureLayer{}
	n.SetLayer(layer)
	n.Init(2, rng.New(7))
	n.Bcast(0, core.Message{ID: 5, Origin: 2})
	if !n.Busy() {
		t.Fatal("node not busy after Bcast")
	}
	var fr sim.Frame
	for slot := int64(0); slot < 60; slot++ {
		n.Tick(slot, &fr)
	}
	if n.Busy() {
		t.Fatal("node still busy after the ack timer")
	}
	if len(layer.acks) != 1 || layer.acks[0].ID != 5 {
		t.Fatalf("acks = %+v", layer.acks)
	}
	if got := len(rec.EventsOfKind(core.EventAck)); got != 1 {
		t.Fatalf("ack events = %d", got)
	}

	// Abort before the timer suppresses the ack.
	n.Bcast(100, core.Message{ID: 6, Origin: 2})
	n.Abort(101, 6)
	for slot := int64(101); slot < 300; slot++ {
		n.Tick(slot, &fr)
	}
	if got := len(rec.EventsOfKind(core.EventAck)); got != 1 {
		t.Fatalf("ack fired for aborted message: %d acks", got)
	}
}

func TestNodeRcvDeduplication(t *testing.T) {
	rec := core.NewRecorder()
	n := NewNode(testConfig(8), 0, rec)
	layer := &captureLayer{}
	n.SetLayer(layer)
	n.Init(1, rng.New(8))
	m := core.Message{ID: 7, Origin: 0}
	for i := 0; i < 3; i++ {
		n.Receive(int64(i), &sim.Frame{From: 0, Kind: FrameData, Msg: m})
	}
	if len(layer.rcvs) != 1 {
		t.Fatalf("OnRcv called %d times", len(layer.rcvs))
	}
	// Own messages are never delivered upward.
	n.Receive(5, &sim.Frame{From: 1, Kind: FrameData, Msg: core.Message{ID: 8, Origin: 1}})
	if len(layer.rcvs) != 1 {
		t.Fatal("own message delivered upward")
	}
}

// captureLayer records layer callbacks.
type captureLayer struct {
	core.NopLayer
	rcvs []core.Message
	acks []core.Message
}

func (l *captureLayer) OnRcv(slot int64, m core.Message) { l.rcvs = append(l.rcvs, m) }
func (l *captureLayer) OnAck(slot int64, m core.Message) { l.acks = append(l.acks, m) }
