// Package approgress implements Algorithm 9.1 of the paper: the
// approximate-progress half of the absMAC implementation (Theorem 9.1),
// obtained by localising the global broadcast algorithm of Daum, Gilbert,
// Kuhn and Newport [14].
//
// Time is divided into epochs; each epoch consists of Φ = Θ(log Λ) phases.
// Within an epoch the set of senders is iteratively sparsified:
//
//   - S₁ is the set of nodes with an ongoing broadcast at the start of the
//     epoch;
//   - in each phase φ the senders estimate the constant-degree reliability
//     graph H̃̃ᵘₚ[S_φ] by repeatedly transmitting their identifiers (the
//     discovery and confirmation blocks), run a label-based maximal
//     independent set computation over it (the MIS block), and transmit
//     their bcast-message with probability p/Q (the data block);
//   - S_{φ+1} is the set of MIS dominators, which is geometrically sparser
//     than S_φ (the paper's Lemma 10.15: the minimum distance roughly
//     doubles per phase), so that by the last phase every node with a
//     broadcasting G_{1-2ε}-neighbour receives some bcast-message from a
//     G_{1-ε}-neighbour with probability 1-ε_approg.
//
// Deviations from the paper, made so the algorithm runs at simulation scale
// and documented in DESIGN.md: the structural constants (T, Q, the number
// of MIS rounds) are configurable and default to small multiples of the
// paper's logarithmic terms rather than the astronomically large constants
// implied by the analysis; the Schneider–Wattenhofer MIS is replaced by a
// round-based local-minimum-label MIS with the same non-unique-label
// behaviour; and a sender that fails to hear one of its H̃̃-neighbours
// during an MIS round prunes that neighbour (the paper instead drops the
// whole node for the rest of the epoch — pruning keeps more senders alive
// at small scale while preserving the "wrong neighbourhood" error mode the
// paper analyses through its set W).
package approgress

import (
	"fmt"
	"math"
	"sort"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

// Frame kinds used by the algorithm, registered once at package
// initialisation.
var (
	// FrameID is the discovery-block frame carrying the sender's id.
	FrameID = sim.RegisterFrameKind("ap.id")
	// FrameList is the confirmation-block frame carrying the sender's
	// potential-neighbour list.
	FrameList = sim.RegisterFrameKind("ap.list")
	// FrameMIS is the MIS-block frame carrying the sender's label and
	// state.
	FrameMIS = sim.RegisterFrameKind("ap.mis")
	// FrameData is the data-block frame carrying the bcast-message (in the
	// typed Frame.Msg slot; the kinds above travel in Frame.Payload as
	// pointers into the sender's per-automaton scratch).
	FrameData = sim.RegisterFrameKind("ap.data")
)

// IDPayload is the payload of FrameID frames. Like every control payload of
// this algorithm it is transmitted as a pointer into the sending
// automaton's scratch, so it is valid only until the end of the slot;
// receivers that retain any of it copy the values out.
type IDPayload struct {
	// Phase is the phase index the frame belongs to.
	Phase int
	// ID is the sender's node id.
	ID int
}

// ListPayload is the payload of FrameList frames.
type ListPayload struct {
	// Phase is the phase index the frame belongs to.
	Phase int
	// ID is the sender's node id.
	ID int
	// Potentials is the sender's potential-neighbour list (O(1) entries).
	Potentials []int
}

// MIS states carried in MISPayload.
const (
	// StateUndecided marks a competitor that has not yet joined or been
	// ruled out of the MIS.
	StateUndecided uint8 = iota
	// StateDominator marks a node that joined the MIS.
	StateDominator
	// StateDominated marks a node ruled out by a dominator neighbour.
	StateDominated
)

// MISPayload is the payload of FrameMIS frames.
type MISPayload struct {
	// Phase and Round identify the MIS round the frame belongs to.
	Phase int
	Round int
	// ID is the sender's node id.
	ID int
	// Label is the sender's temporary label for this phase.
	Label uint64
	// State is the sender's current MIS state.
	State uint8
}

// Config holds the Algorithm 9.1 parameters.
type Config struct {
	// Lambda is the known polynomial upper bound on Λ.
	Lambda float64
	// EpsApprog is the approximate-progress error probability ε_approg.
	EpsApprog float64
	// Alpha is the path-loss exponent (used for Q = Θ(log^α Λ)).
	Alpha float64

	// P is the constant transmission probability p ∈ (0, 1/2] used during
	// discovery, confirmation and MIS blocks. Default 0.1.
	P float64
	// QScale scales Q = ⌈QScale · log₂(Λ)^Alpha⌉ (minimum 1). Default 1.
	QScale float64
	// TFactor scales the block length T = ⌈TFactor · log₂(Λ/ε_approg)⌉.
	// Default 6.
	TFactor float64
	// MISRounds is the number of label-MIS rounds per phase. Default 6.
	MISRounds int
	// DataFactor scales the data-block length ⌈DataFactor·Q·log₂(1/ε)⌉.
	// Default 1.
	DataFactor float64
	// NeighborThreshold is the minimum number of receptions of an id during
	// the discovery block for the sender to become a potential neighbour
	// (the paper's (1-γ/2)µT threshold). Default 2.
	NeighborThreshold int
	// Phases overrides Φ; zero means ⌈log₂ Λ⌉ + 1.
	Phases int
	// LabelRange is the size of the temporary-label space (the paper uses
	// labels from [1, poly(Λ/ε_approg)]). Zero means a default derived from
	// Λ and ε_approg.
	LabelRange uint64
}

// DefaultConfig returns an Algorithm 9.1 configuration with default
// structural constants for the given Λ bound, ε_approg and path-loss α.
func DefaultConfig(lambda, epsApprog, alpha float64) Config {
	return Config{Lambda: lambda, EpsApprog: epsApprog, Alpha: alpha}
}

func (c Config) withDefaults() Config {
	if c.P <= 0 {
		c.P = 0.1
	}
	if c.QScale <= 0 {
		c.QScale = 1
	}
	if c.TFactor <= 0 {
		c.TFactor = 6
	}
	if c.MISRounds <= 0 {
		c.MISRounds = 6
	}
	if c.DataFactor <= 0 {
		c.DataFactor = 1
	}
	if c.NeighborThreshold <= 0 {
		c.NeighborThreshold = 2
	}
	if c.Phases <= 0 {
		c.Phases = int(math.Ceil(math.Log2(math.Max(2, c.Lambda)))) + 1
	}
	if c.LabelRange == 0 {
		r := (c.Lambda / c.EpsApprog) * (c.Lambda / c.EpsApprog) * 1024
		if r < 1024 {
			r = 1024
		}
		if r > 1<<40 {
			r = 1 << 40
		}
		c.LabelRange = uint64(r)
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lambda < 1 {
		return fmt.Errorf("approgress: Lambda = %v must be at least 1", c.Lambda)
	}
	if c.EpsApprog <= 0 || c.EpsApprog >= 1 {
		return fmt.Errorf("approgress: EpsApprog = %v must lie in (0, 1)", c.EpsApprog)
	}
	if c.Alpha <= 2 {
		return fmt.Errorf("approgress: Alpha = %v must exceed 2", c.Alpha)
	}
	d := c.withDefaults()
	if d.P > 0.5 {
		return fmt.Errorf("approgress: P = %v must not exceed 0.5", d.P)
	}
	return nil
}

// T returns the block length T (slots per discovery/confirmation block and
// per MIS round).
func (c Config) T() int {
	c = c.withDefaults()
	v := c.TFactor * math.Log2(math.Max(2, c.Lambda/c.EpsApprog))
	if v < 4 {
		v = 4
	}
	return int(math.Ceil(v))
}

// Q returns the data-block probability divisor Q = Θ(log^α Λ).
func (c Config) Q() float64 {
	c = c.withDefaults()
	v := c.QScale * math.Pow(math.Log2(math.Max(2, c.Lambda)), c.Alpha)
	if v < 1 {
		v = 1
	}
	return math.Ceil(v)
}

// DataSlots returns the number of slots in one data block.
func (c Config) DataSlots() int {
	c = c.withDefaults()
	v := c.DataFactor * c.Q() * math.Log2(math.Max(2, 1/c.EpsApprog))
	if v < 8 {
		v = 8
	}
	return int(math.Ceil(v))
}

// PhaseCount returns Φ, the number of phases per epoch.
func (c Config) PhaseCount() int {
	return c.withDefaults().Phases
}

// MISRoundCount returns the number of MIS rounds per phase.
func (c Config) MISRoundCount() int {
	return c.withDefaults().MISRounds
}

// PhaseLen returns the number of slots in one phase: discovery (T) +
// confirmation (T) + MIS rounds (MISRounds·T) + data block.
func (c Config) PhaseLen() int64 {
	t := int64(c.T())
	return 2*t + int64(c.MISRoundCount())*t + int64(c.DataSlots())
}

// EpochLen returns the number of slots in one epoch.
func (c Config) EpochLen() int64 {
	return int64(c.PhaseCount()) * c.PhaseLen()
}

// block boundaries within a phase.
func (c Config) blockBounds() (discEnd, listEnd, misEnd int64) {
	t := int64(c.T())
	discEnd = t
	listEnd = 2 * t
	misEnd = listEnd + int64(c.MISRoundCount())*t
	return
}

// Automaton is the per-node Algorithm 9.1 state machine, ticked once per
// protocol slot. It never acknowledges; acknowledgment is provided by the
// other half of the combined MAC (Algorithm 11.1).
type Automaton struct {
	cfg    Config
	id     int
	src    *rng.Source
	onData func(core.Message)

	msg       *core.Message
	protoSlot int64

	// Per-epoch state.
	epochSender bool // member of S₁ this epoch

	// Per-phase state.
	phaseSender bool // member of S_φ for the current phase
	nextSender  bool // member of S_{φ+1} (decided during the MIS block)
	label       uint64
	idCounts    map[int]int
	potentials  []int
	confirmed   map[int][]int // sender id -> its potential list (from FrameList)
	neighbors   map[int]bool  // H̃̃ neighbours for the current phase
	misState    uint8
	heardRound  map[int]MISPayload // MIS messages heard in the current round
	curRound    int

	// Transmission scratch: the control payloads the automaton points
	// pooled frames at. Re-filled on every transmitting Tick, so a
	// receiver's view is stable for exactly one slot (the sim frame
	// lifecycle). listScratch additionally reuses its Potentials backing
	// array across slots.
	idScratch   IDPayload
	listScratch ListPayload
	misScratch  MISPayload
}

// NewAutomaton returns an Algorithm 9.1 automaton for the node with the
// given id. onData is invoked for every received bcast-message (data
// frame); it may be nil.
func NewAutomaton(cfg Config, id int, src *rng.Source, onData func(core.Message)) (*Automaton, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("approgress: nil random source")
	}
	return &Automaton{
		cfg:    cfg.withDefaults(),
		id:     id,
		src:    src,
		onData: onData,
	}, nil
}

// Start sets m as the node's ongoing broadcast. The node joins S₁ at the
// start of the next epoch (the paper's nodes join at epoch boundaries).
func (a *Automaton) Start(m core.Message) {
	cp := m
	a.msg = &cp
}

// Abort clears the ongoing broadcast. The node keeps participating until
// the end of the current epoch, as in the paper's abort semantics, because
// epoch membership was fixed at the epoch boundary.
func (a *Automaton) Abort() {
	a.msg = nil
}

// Broadcasting reports whether the node currently has an ongoing broadcast.
func (a *Automaton) Broadcasting() bool { return a.msg != nil }

// SenderActive reports whether the node is a member of the current phase's
// sender set S_φ. It is exported for tests and instrumentation.
func (a *Automaton) SenderActive() bool { return a.phaseSender }

// EpochSender reports whether the node joined S₁ in the current epoch.
func (a *Automaton) EpochSender() bool { return a.epochSender }

// Neighbors returns the node's current H̃̃-neighbour set, sorted. It is
// exported for tests and instrumentation.
func (a *Automaton) Neighbors() []int {
	out := make([]int, 0, len(a.neighbors))
	for v := range a.neighbors {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ProtocolSlot returns the automaton's protocol-slot counter.
func (a *Automaton) ProtocolSlot() int64 { return a.protoSlot }

// Tick advances the automaton by one protocol slot; a transmission fills
// the pooled frame f and returns true.
func (a *Automaton) Tick(f *sim.Frame) bool {
	slot := a.protoSlot
	a.protoSlot++

	epochLen := a.cfg.EpochLen()
	phaseLen := a.cfg.PhaseLen()
	epochPos := slot % epochLen
	phase := int(epochPos / phaseLen)
	phasePos := epochPos % phaseLen
	discEnd, listEnd, misEnd := a.cfg.blockBounds()
	t := int64(a.cfg.T())

	// Epoch boundary: recompute S₁ membership.
	if epochPos == 0 {
		a.epochSender = a.msg != nil
		a.phaseSender = a.epochSender
	}
	// Phase boundary: reset per-phase state.
	if phasePos == 0 {
		if phase > 0 {
			// S_{φ+1} membership was decided during the previous phase.
			a.phaseSender = a.phaseSender && a.nextSender
		}
		a.resetPhase()
	}

	switch {
	case phasePos < discEnd:
		return a.tickDiscovery(phase, f)
	case phasePos < listEnd:
		if phasePos == discEnd {
			a.finalizePotentials()
		}
		return a.tickList(phase, f)
	case phasePos < misEnd:
		round := int((phasePos - listEnd) / t)
		if (phasePos-listEnd)%t == 0 {
			if round == 0 {
				a.finalizeNeighbors()
			} else {
				a.processMISRound()
			}
			a.curRound = round
			a.heardRound = make(map[int]MISPayload)
		}
		return a.tickMIS(phase, round, f)
	default:
		if phasePos == misEnd {
			a.processMISRound()
			a.finalizeMIS()
		}
		return a.tickData(f)
	}
}

func (a *Automaton) resetPhase() {
	a.nextSender = false
	a.label = a.src.Uint64()%a.cfg.LabelRange + 1
	a.idCounts = make(map[int]int)
	a.potentials = nil
	a.confirmed = make(map[int][]int)
	a.neighbors = make(map[int]bool)
	a.misState = StateUndecided
	a.heardRound = make(map[int]MISPayload)
	a.curRound = 0
}

func (a *Automaton) tickDiscovery(phase int, f *sim.Frame) bool {
	if !a.phaseSender || !a.src.Bernoulli(a.cfg.P) {
		return false
	}
	a.idScratch = IDPayload{Phase: phase, ID: a.id}
	f.Kind = FrameID
	f.Payload = &a.idScratch
	return true
}

func (a *Automaton) finalizePotentials() {
	if !a.phaseSender {
		return
	}
	var pots []int
	for id, count := range a.idCounts {
		if count >= a.cfg.NeighborThreshold {
			pots = append(pots, id)
		}
	}
	sort.Ints(pots)
	a.potentials = pots
}

func (a *Automaton) tickList(phase int, f *sim.Frame) bool {
	if !a.phaseSender || !a.src.Bernoulli(a.cfg.P) {
		return false
	}
	a.listScratch.Phase = phase
	a.listScratch.ID = a.id
	a.listScratch.Potentials = append(a.listScratch.Potentials[:0], a.potentials...)
	f.Kind = FrameList
	f.Payload = &a.listScratch
	return true
}

// finalizeNeighbors computes the H̃̃ neighbour set: v is a neighbour of u if
// v is a potential neighbour of u and u appears in the potential list that
// u received from v (the mutual-confirmation rule of Section 9.3.1).
func (a *Automaton) finalizeNeighbors() {
	if !a.phaseSender {
		return
	}
	a.neighbors = make(map[int]bool)
	for _, v := range a.potentials {
		list, got := a.confirmed[v]
		if !got {
			continue
		}
		for _, w := range list {
			if w == a.id {
				a.neighbors[v] = true
				break
			}
		}
	}
}

func (a *Automaton) tickMIS(phase, round int, f *sim.Frame) bool {
	if !a.phaseSender || !a.src.Bernoulli(a.cfg.P) {
		return false
	}
	a.misScratch = MISPayload{
		Phase: phase, Round: round, ID: a.id, Label: a.label, State: a.misState,
	}
	f.Kind = FrameMIS
	f.Payload = &a.misScratch
	return true
}

// processMISRound applies the state transition at the end of an MIS round:
// a node dominated by an MIS neighbour becomes dominated; an undecided node
// whose label is a strict local minimum among the neighbours it heard (and
// which heard all of its neighbours) becomes a dominator. Neighbours that
// were not heard at all during the round are pruned (see the package
// comment for how this relates to the paper's drop-out rule).
func (a *Automaton) processMISRound() {
	if !a.phaseSender {
		return
	}
	// Prune neighbours that stayed silent for the whole round.
	heardAll := true
	for v := range a.neighbors {
		if _, ok := a.heardRound[v]; !ok {
			delete(a.neighbors, v)
			heardAll = false
		}
	}
	if a.misState != StateUndecided {
		return
	}
	isMin := true
	for v := range a.neighbors {
		msg := a.heardRound[v]
		if msg.State == StateDominator {
			a.misState = StateDominated
			return
		}
		if msg.State != StateUndecided {
			continue
		}
		if msg.Label < a.label || (msg.Label == a.label && v < a.id) {
			isMin = false
		}
	}
	if isMin && heardAll {
		a.misState = StateDominator
	}
}

// finalizeMIS decides S_{φ+1} membership: only dominators continue;
// undecided nodes are ignored, exactly as in the paper's modified MIS.
func (a *Automaton) finalizeMIS() {
	if !a.phaseSender {
		return
	}
	// A node with no surviving neighbours is trivially a local minimum.
	if a.misState == StateUndecided && len(a.neighbors) == 0 {
		a.misState = StateDominator
	}
	a.nextSender = a.misState == StateDominator
}

func (a *Automaton) tickData(f *sim.Frame) bool {
	if !a.phaseSender || a.msg == nil {
		return false
	}
	if !a.src.Bernoulli(a.cfg.P / a.cfg.Q()) {
		return false
	}
	f.Kind = FrameData
	f.Msg = *a.msg
	return true
}

// Receive processes a frame decoded in one of this automaton's slots. The
// control payloads point into the sender's scratch and are only valid for
// this call, so anything retained (the confirmed potential lists, the
// heard-this-round MIS messages) is copied out here.
func (a *Automaton) Receive(f *sim.Frame) {
	if f == nil {
		return
	}
	switch f.Kind {
	case FrameID:
		if p, ok := f.Payload.(*IDPayload); ok && a.phaseSender {
			a.idCounts[p.ID]++
		}
	case FrameList:
		if p, ok := f.Payload.(*ListPayload); ok && a.phaseSender {
			a.confirmed[p.ID] = append([]int(nil), p.Potentials...)
		}
	case FrameMIS:
		if p, ok := f.Payload.(*MISPayload); ok && a.phaseSender {
			if a.neighbors[p.ID] {
				a.heardRound[p.ID] = *p
			}
		}
	case FrameData:
		if a.onData != nil {
			a.onData(f.Msg)
		}
	}
}
