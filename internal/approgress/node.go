package approgress

import (
	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

// Node is a standalone progress-only MAC endpoint running Algorithm 9.1 in
// every slot. It provides the approximate-progress guarantee of Theorem 9.1
// but no acknowledgment bound: an ack is emitted only after a fixed timer
// (AckAfter), mirroring the paper's convention that a bcast keeps a node in
// S₁ for f_ack/2 slots. The combined MAC of Algorithm 11.1 (package mac)
// pairs this automaton with the Halldórsson–Mitra acknowledgment automaton.
type Node struct {
	cfg      Config
	ackAfter int64
	recorder *core.Recorder

	id    int
	src   *rng.Source
	aut   *Automaton
	layer core.Layer

	cur       *core.Message
	bcastSlot int64
	curSlot   int64
	seen      map[core.MessageID]bool
}

var (
	_ sim.Node = (*Node)(nil)
	_ core.MAC = (*Node)(nil)
)

// NewNode returns a standalone Algorithm 9.1 node. ackAfter is the number
// of slots after a Bcast at which the (timer-based) ack fires; zero or a
// negative value means the node never acknowledges. recorder may be nil.
func NewNode(cfg Config, ackAfter int64, recorder *core.Recorder) *Node {
	return &Node{cfg: cfg, ackAfter: ackAfter, recorder: recorder, seen: make(map[core.MessageID]bool)}
}

// Init implements sim.Node.
func (n *Node) Init(id int, src *rng.Source) {
	n.id = id
	n.src = src
	aut, err := NewAutomaton(n.cfg, id, src.Split(), n.onData)
	if err != nil {
		panic(err)
	}
	n.aut = aut
	if n.layer != nil {
		n.layer.Attach(id, n, src.Split())
	}
}

// Automaton exposes the underlying Algorithm 9.1 automaton for tests and
// instrumentation.
func (n *Node) Automaton() *Automaton { return n.aut }

// SetLayer implements core.MAC.
func (n *Node) SetLayer(l core.Layer) { n.layer = l }

// Busy implements core.MAC.
func (n *Node) Busy() bool { return n.cur != nil }

// Bcast implements core.MAC.
func (n *Node) Bcast(slot int64, m core.Message) {
	if n.cur != nil {
		return
	}
	cp := m
	n.cur = &cp
	n.bcastSlot = slot
	n.record(core.Event{Kind: core.EventBcast, Node: n.id, Msg: m, Slot: slot})
	n.aut.Start(m)
}

// Abort implements core.MAC.
func (n *Node) Abort(slot int64, id core.MessageID) {
	if n.cur == nil || n.cur.ID != id {
		return
	}
	n.record(core.Event{Kind: core.EventAbort, Node: n.id, Msg: *n.cur, Slot: slot})
	n.aut.Abort()
	n.cur = nil
}

// Tick implements sim.Node.
func (n *Node) Tick(slot int64, f *sim.Frame) bool {
	n.curSlot = slot
	if n.layer != nil {
		n.layer.OnSlot(slot)
	}
	if n.cur != nil && n.ackAfter > 0 && slot-n.bcastSlot >= n.ackAfter {
		m := *n.cur
		n.cur = nil
		n.aut.Abort()
		n.record(core.Event{Kind: core.EventAck, Node: n.id, Msg: m, Slot: slot})
		if n.layer != nil {
			n.layer.OnAck(slot, m)
		}
	}
	return n.aut.Tick(f)
}

// Receive implements sim.Node.
func (n *Node) Receive(slot int64, f *sim.Frame) {
	n.curSlot = slot
	n.aut.Receive(f)
}

func (n *Node) onData(m core.Message) {
	if m.Origin == n.id || n.seen[m.ID] {
		return
	}
	n.seen[m.ID] = true
	n.record(core.Event{Kind: core.EventRcv, Node: n.id, Msg: m, Slot: n.curSlot})
	if n.layer != nil {
		n.layer.OnRcv(n.curSlot, m)
	}
}

func (n *Node) record(ev core.Event) {
	if n.recorder != nil {
		n.recorder.Record(ev)
	}
}
