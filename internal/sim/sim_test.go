package sim

import (
	"fmt"
	"runtime"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// Frame kinds used by the test automata.
var (
	beaconKind = RegisterFrameKind("test.beacon")
	randKind   = RegisterFrameKind("test.rand")
)

// beaconNode transmits a beacon frame every period slots (starting at
// slot offset) and records every frame it receives.
type beaconNode struct {
	id       int
	src      *rng.Source
	period   int64
	offset   int64
	sent     int
	received []int // sender ids in order of reception
}

func (b *beaconNode) Init(id int, src *rng.Source) {
	b.id = id
	b.src = src
}

func (b *beaconNode) Tick(slot int64, f *Frame) bool {
	if b.period > 0 && slot%b.period == b.offset {
		b.sent++
		f.Kind = beaconKind
		return true
	}
	return false
}

func (b *beaconNode) Receive(slot int64, f *Frame) {
	b.received = append(b.received, f.From)
}

// randomNode transmits with a fixed probability each slot, exercising the
// per-node random source.
type randomNode struct {
	id       int
	src      *rng.Source
	p        float64
	sent     int
	received int
}

func (r *randomNode) Init(id int, src *rng.Source) { r.id, r.src = id, src }

func (r *randomNode) Tick(slot int64, f *Frame) bool {
	if r.src.Bernoulli(r.p) {
		r.sent++
		f.Kind = randKind
		return true
	}
	return false
}

func (r *randomNode) Receive(slot int64, f *Frame) { r.received++ }

func twoNodeChannel(t *testing.T, d float64) *sinr.Channel {
	t.Helper()
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), []geom.Point{{X: 0, Y: 0}, {X: d, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewEngineValidation(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	if _, err := NewEngine(nil, nil, Config{}); err == nil {
		t.Fatal("nil channel accepted")
	}
	if _, err := NewEngine(ch, []Node{&beaconNode{}}, Config{}); err == nil {
		t.Fatal("node count mismatch accepted")
	}
	if _, err := NewEngine(ch, []Node{&beaconNode{}, nil}, Config{}); err == nil {
		t.Fatal("nil node accepted")
	}
}

func TestSingleTransmissionDelivered(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	sender := &beaconNode{period: 4, offset: 0}
	listener := &beaconNode{}
	eng, err := NewEngine(ch, []Node{sender, listener}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(8, nil)
	if sender.sent != 2 {
		t.Fatalf("sender transmitted %d times, want 2", sender.sent)
	}
	if len(listener.received) != 2 || listener.received[0] != 0 {
		t.Fatalf("listener received %v, want two frames from node 0", listener.received)
	}
	st := eng.Stats()
	if st.Slots != 8 || st.Transmissions != 2 || st.Receptions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	ch := twoNodeChannel(t, 50)
	sender := &beaconNode{period: 1, offset: 0}
	listener := &beaconNode{}
	eng, err := NewEngine(ch, []Node{sender, listener}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10, nil)
	if len(listener.received) != 0 {
		t.Fatalf("out-of-range listener received %v", listener.received)
	}
}

func TestHalfDuplexInEngine(t *testing.T) {
	// Both nodes transmit in the same slots; neither must ever receive.
	ch := twoNodeChannel(t, 5)
	a := &beaconNode{period: 2, offset: 0}
	b := &beaconNode{period: 2, offset: 0}
	eng, err := NewEngine(ch, []Node{a, b}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10, nil)
	if len(a.received) != 0 || len(b.received) != 0 {
		t.Fatalf("concurrent transmitters received frames: %v %v", a.received, b.received)
	}
}

func TestAlternatingTransmitters(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	a := &beaconNode{period: 2, offset: 0}
	b := &beaconNode{period: 2, offset: 1}
	eng, err := NewEngine(ch, []Node{a, b}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10, nil)
	if len(a.received) != 5 || len(b.received) != 5 {
		t.Fatalf("alternating schedule delivered %d/%d frames, want 5/5", len(a.received), len(b.received))
	}
}

func TestFrameFromFilledByEngine(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	a := &beaconNode{period: 1, offset: 0}
	b := &beaconNode{}
	eng, err := NewEngine(ch, []Node{a, b}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	if len(b.received) != 1 || b.received[0] != 0 {
		t.Fatalf("receiver saw %v, want sender id 0 set by engine", b.received)
	}
}

func TestRunStopCondition(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	a := &beaconNode{period: 1, offset: 0}
	b := &beaconNode{}
	eng, err := NewEngine(ch, []Node{a, b}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ran, stopped := eng.Run(100, func() bool { return len(b.received) >= 3 })
	if !stopped {
		t.Fatal("stop condition not reached")
	}
	if ran != 3 {
		t.Fatalf("ran %d slots, want 3", ran)
	}
	// A stop condition that already holds runs zero slots.
	ran, stopped = eng.Run(100, func() bool { return true })
	if ran != 0 || !stopped {
		t.Fatalf("pre-satisfied stop ran %d slots, stopped=%v", ran, stopped)
	}
	// Without a stop condition Run simulates exactly maxSlots.
	ran, stopped = eng.Run(7, nil)
	if ran != 7 || stopped {
		t.Fatalf("unconditional run: ran=%d stopped=%v", ran, stopped)
	}
}

func TestObserverSeesTraffic(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	a := &beaconNode{period: 2, offset: 0}
	b := &beaconNode{}
	eng, err := NewEngine(ch, []Node{a, b}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var slots []int64
	var totalTx, totalRx int
	eng.AddObserver(ObserverFunc(func(slot int64, tx []int, rec []sinr.Reception) {
		slots = append(slots, slot)
		totalTx += len(tx)
		for _, r := range rec {
			if r.Sender >= 0 {
				totalRx++
			}
		}
	}))
	eng.Run(6, nil)
	if len(slots) != 6 || slots[0] != 0 || slots[5] != 5 {
		t.Fatalf("observer slots = %v", slots)
	}
	if totalTx != 3 || totalRx != 3 {
		t.Fatalf("observer saw tx=%d rx=%d, want 3/3", totalTx, totalRx)
	}
}

// engineSeed is the rng seed shared by every random-scenario engine below:
// executions built from the same topology seed are only comparable when
// their engines also share this seed.
const engineSeed = 99

// buildScenario builds an n-node random deployment (drawn from the topology
// seed) and an engine over it with the given config; fast selects the fast
// evaluator instead of the naive reference path.
func buildScenario(t *testing.T, n int, seed uint64, fast bool, cfg Config) ([]*randomNode, *Engine) {
	t.Helper()
	src := rng.New(seed)
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
	}
	ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
	if err != nil {
		t.Fatal(err)
	}
	if fast {
		cfg.Evaluator = sinr.NewFastChannel(ch)
	}
	nodes := make([]*randomNode, n)
	ifaces := make([]Node, n)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.2}
		ifaces[i] = nodes[i]
	}
	eng, err := NewEngine(ch, ifaces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, eng
}

// buildRandomScenario builds an n-node random deployment with random
// transmitter nodes for the parallel/sequential equivalence test.
func buildRandomScenario(t *testing.T, n int, seed uint64, parallel bool) ([]*randomNode, *Engine) {
	t.Helper()
	return buildScenario(t, n, seed, false, Config{Seed: engineSeed, Parallel: parallel, Workers: 4})
}

func TestParallelMatchesSequential(t *testing.T) {
	seqNodes, seqEng := buildRandomScenario(t, 60, 5, false)
	parNodes, parEng := buildRandomScenario(t, 60, 5, true)
	seqEng.Run(200, nil)
	parEng.Run(200, nil)
	if seqEng.Stats() != parEng.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", seqEng.Stats(), parEng.Stats())
	}
	for i := range seqNodes {
		if seqNodes[i].sent != parNodes[i].sent || seqNodes[i].received != parNodes[i].received {
			t.Fatalf("node %d diverged: seq sent=%d recv=%d, par sent=%d recv=%d",
				i, seqNodes[i].sent, seqNodes[i].received, parNodes[i].sent, parNodes[i].received)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	aNodes, aEng := buildRandomScenario(t, 40, 17, false)
	bNodes, bEng := buildRandomScenario(t, 40, 17, false)
	aEng.Run(300, nil)
	bEng.Run(300, nil)
	for i := range aNodes {
		if aNodes[i].sent != bNodes[i].sent || aNodes[i].received != bNodes[i].received {
			t.Fatalf("replay diverged at node %d", i)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	a := &beaconNode{}
	b := &beaconNode{}
	eng, err := NewEngine(ch, []Node{a, b}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Channel() != ch {
		t.Fatal("Channel accessor mismatch")
	}
	if eng.Node(0) != Node(a) || eng.Node(1) != Node(b) {
		t.Fatal("Node accessor mismatch")
	}
	if eng.Slot() != 0 {
		t.Fatal("fresh engine slot != 0")
	}
	eng.Step()
	if eng.Slot() != 1 {
		t.Fatal("slot did not advance")
	}
}

// TestResetReplaysFreshEngine is the determinism contract Engine.Reset is
// built on: an engine reset with new nodes and a seed must replay the exact
// execution a freshly constructed engine would produce, for both evaluator
// paths.
func TestResetReplaysFreshEngine(t *testing.T) {
	for _, fast := range []bool{false, true} {
		name := "naive"
		if fast {
			name = "fast"
		}
		t.Run(name, func(t *testing.T) {
			// Reference: a fresh engine.
			freshNodes, freshEng := buildScenario(t, 50, 11, fast, Config{Seed: engineSeed})
			freshEng.Run(150, nil)

			// Reused: run an unrelated execution first, then Reset.
			_, eng := buildScenario(t, 50, 11, fast, Config{Seed: 12345})
			eng.AddObserver(ObserverFunc(func(int64, []int, []sinr.Reception) {}))
			eng.Run(40, nil)
			reNodes := make([]*randomNode, 50)
			ifaces := make([]Node, 50)
			for i := range reNodes {
				reNodes[i] = &randomNode{p: 0.2}
				ifaces[i] = reNodes[i]
			}
			if err := eng.Reset(ifaces, engineSeed); err != nil {
				t.Fatal(err)
			}
			if eng.Slot() != 0 || eng.Stats() != (Stats{}) {
				t.Fatalf("Reset left slot=%d stats=%+v", eng.Slot(), eng.Stats())
			}
			eng.Run(150, nil)

			if freshEng.Stats() != eng.Stats() {
				t.Fatalf("stats diverged after Reset: fresh %+v vs reset %+v", freshEng.Stats(), eng.Stats())
			}
			for i := range freshNodes {
				if freshNodes[i].sent != reNodes[i].sent || freshNodes[i].received != reNodes[i].received {
					t.Fatalf("node %d diverged: fresh sent=%d recv=%d, reset sent=%d recv=%d",
						i, freshNodes[i].sent, freshNodes[i].received, reNodes[i].sent, reNodes[i].received)
				}
			}
		})
	}
}

func TestResetValidation(t *testing.T) {
	_, eng := buildScenario(t, 10, 3, false, Config{Seed: 1})
	if err := eng.Reset(make([]Node, 9), 1); err == nil {
		t.Fatal("Reset accepted a node-count mismatch")
	}
	nodes := make([]Node, 10)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.1}
	}
	nodes[7] = nil
	if err := eng.Reset(nodes, 1); err == nil {
		t.Fatal("Reset accepted a nil node")
	}
}

func TestManyNodesThroughput(t *testing.T) {
	// Smoke test: a larger deployment with random transmitters makes some
	// progress (receptions happen) and no invariants trip.
	nodes, eng := buildRandomScenario(t, 150, 23, true)
	eng.Run(200, nil)
	totalRx := 0
	for _, n := range nodes {
		totalRx += n.received
	}
	if totalRx == 0 {
		t.Fatal("no receptions in 200 slots of random traffic")
	}
	if eng.Stats().Receptions != int64(totalRx) {
		t.Fatalf("stats receptions %d != node total %d", eng.Stats().Receptions, totalRx)
	}
}

func ExampleEngine() {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), pos)
	if err != nil {
		panic(err)
	}
	sender := &beaconNode{period: 2, offset: 0}
	listener := &beaconNode{}
	eng, err := NewEngine(ch, []Node{sender, listener}, Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	eng.Run(10, nil)
	fmt.Println(len(listener.received))
	// Output: 5
}

func BenchmarkEngineStep200Nodes(b *testing.B) {
	src := rng.New(3)
	pos := make([]geom.Point, 200)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 60, Y: src.Float64() * 60}
	}
	ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]Node, 200)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.1}
	}
	eng, err := NewEngine(ch, nodes, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkEngineStepParallel200Nodes(b *testing.B) {
	src := rng.New(3)
	pos := make([]geom.Point, 200)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * 60, Y: src.Float64() * 60}
	}
	ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]Node, 200)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.1}
	}
	eng, err := NewEngine(ch, nodes, Config{Seed: 1, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// fastScenario mirrors buildRandomScenario but runs the engine on the fast
// evaluator with the given config.
func fastScenario(t *testing.T, n int, seed uint64, cfg Config) ([]*randomNode, *Engine) {
	t.Helper()
	return buildScenario(t, n, seed, true, cfg)
}

// TestFastEvaluatorMatchesNaiveEngine runs the same random scenario on the
// naive reference path and on the fast evaluator and requires identical
// executions (stats and per-node traffic).
func TestFastEvaluatorMatchesNaiveEngine(t *testing.T) {
	naiveNodes, naiveEng := buildRandomScenario(t, 80, 9, false)
	fastNodes, fastEng := fastScenario(t, 80, 9, Config{Seed: engineSeed, Workers: 4})
	naiveEng.Run(300, nil)
	fastEng.Run(300, nil)
	if naiveEng.Stats() != fastEng.Stats() {
		t.Fatalf("stats diverged: naive %+v, fast %+v", naiveEng.Stats(), fastEng.Stats())
	}
	for i := range naiveNodes {
		if naiveNodes[i].sent != fastNodes[i].sent || naiveNodes[i].received != fastNodes[i].received {
			t.Fatalf("node %d diverged: naive sent=%d recv=%d, fast sent=%d recv=%d",
				i, naiveNodes[i].sent, naiveNodes[i].received, fastNodes[i].sent, fastNodes[i].received)
		}
	}
}

// TestShardedEvaluatorMatchesNaiveEngine runs the same random scenario on
// the naive reference path and on fast evaluators forced into the sharded
// regime (at several shard counts and dispatch pins) and requires identical
// executions: the shard partition only distributes work, so the engine-level
// traffic must not depend on it.
func TestShardedEvaluatorMatchesNaiveEngine(t *testing.T) {
	const n, seed, slots = 80, 9, 300
	naiveNodes, naiveEng := buildRandomScenario(t, n, seed, false)
	naiveEng.Run(slots, nil)
	for _, tc := range []struct {
		name string
		opts sinr.FastOptions
	}{
		{"s1/adaptive", sinr.FastOptions{Shards: 1}},
		{"s4/cert", sinr.FastOptions{Shards: 4, SparseFactor: -1, BoundsFactor: 1}},
		{"s4/dense", sinr.FastOptions{Shards: 4, SparseFactor: -1, BoundsFactor: -1}},
		{"s8/parallel", sinr.FastOptions{Shards: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(seed)
			pos := make([]geom.Point, n)
			for i := range pos {
				pos[i] = geom.Point{X: src.Float64() * 40, Y: src.Float64() * 40}
			}
			ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
			if err != nil {
				t.Fatal(err)
			}
			fast := sinr.NewFastChannel(ch, tc.opts)
			defer fast.Close()
			if fast.Shards() == 0 {
				t.Fatal("sharded configuration fell back to a per-pair regime")
			}
			nodes := make([]*randomNode, n)
			ifaces := make([]Node, n)
			for i := range nodes {
				nodes[i] = &randomNode{p: 0.2}
				ifaces[i] = nodes[i]
			}
			eng, err := NewEngine(ch, ifaces, Config{Seed: engineSeed, Parallel: true, Workers: 4, Evaluator: fast})
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(slots, nil)
			if naiveEng.Stats() != eng.Stats() {
				t.Fatalf("stats diverged: naive %+v, sharded %+v", naiveEng.Stats(), eng.Stats())
			}
			for i := range naiveNodes {
				if naiveNodes[i].sent != nodes[i].sent || naiveNodes[i].received != nodes[i].received {
					t.Fatalf("node %d diverged: naive sent=%d recv=%d, sharded sent=%d recv=%d",
						i, naiveNodes[i].sent, naiveNodes[i].received, nodes[i].sent, nodes[i].received)
				}
			}
		})
	}
}

// TestSeedReproducibilityAcrossWorkers is the seed-reproducibility check:
// with a fixed rng seed, Engine.Run yields identical Stats under a single
// worker (sequential driver) and under GOMAXPROCS workers (parallel driver),
// both on the fast evaluator.
func TestSeedReproducibilityAcrossWorkers(t *testing.T) {
	const n, slots = 70, 250
	_, oneEng := fastScenario(t, n, 21, Config{Seed: 7, Workers: 1})
	_, manyEng := fastScenario(t, n, 21, Config{Seed: 7, Parallel: true, Workers: runtime.GOMAXPROCS(0)})
	oneEng.Run(slots, nil)
	manyEng.Run(slots, nil)
	if oneEng.Stats() != manyEng.Stats() {
		t.Fatalf("stats diverged across worker counts: 1w %+v, %dw %+v",
			oneEng.Stats(), runtime.GOMAXPROCS(0), manyEng.Stats())
	}
	if oneEng.Stats().Slots != slots {
		t.Fatalf("ran %d slots, want %d", oneEng.Stats().Slots, slots)
	}
}

// TestEvaluatorValidation checks that a mismatched evaluator is rejected and
// that the default evaluator is the channel itself.
func TestEvaluatorValidation(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	other, err := sinr.NewChannel(sinr.DefaultParams(10), []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(ch, []Node{&beaconNode{}, &beaconNode{}}, Config{Evaluator: sinr.NewFastChannel(other)}); err == nil {
		t.Fatal("evaluator over a different deployment accepted")
	}
	// Same node count but a different channel object is also rejected.
	sameSize := twoNodeChannel(t, 7)
	if _, err := NewEngine(ch, []Node{&beaconNode{}, &beaconNode{}}, Config{Evaluator: sinr.NewFastChannel(sameSize)}); err == nil {
		t.Fatal("evaluator wrapping a different same-size channel accepted")
	}
	eng, err := NewEngine(ch, []Node{&beaconNode{}, &beaconNode{}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Evaluator() != sinr.ChannelEvaluator(ch) {
		t.Fatal("default evaluator is not the naive channel")
	}
	fast := sinr.NewFastChannel(ch)
	eng, err = NewEngine(ch, []Node{&beaconNode{}, &beaconNode{}}, Config{Evaluator: fast})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Evaluator() != sinr.ChannelEvaluator(fast) {
		t.Fatal("explicit evaluator not selected")
	}
}

// TestRegisterFrameKind pins the interning contract: one kind per name,
// stable on re-registration, zero reserved, names recoverable.
func TestRegisterFrameKind(t *testing.T) {
	a := RegisterFrameKind("test.kind.a")
	b := RegisterFrameKind("test.kind.b")
	if a == 0 || b == 0 {
		t.Fatal("registered kind collided with the reserved zero kind")
	}
	if a == b {
		t.Fatal("distinct names interned to the same kind")
	}
	if again := RegisterFrameKind("test.kind.a"); again != a {
		t.Fatalf("re-registering returned %v, want %v", again, a)
	}
	if got := a.String(); got != "test.kind.a" {
		t.Fatalf("String() = %q", got)
	}
	if RegisterFrameKind("") != 0 {
		t.Fatal("empty name did not map to the reserved kind")
	}
	var zero FrameKind
	if zero.String() != "<none>" {
		t.Fatalf("zero kind String() = %q", zero.String())
	}
}

// frameProbe records the frame pointers handed to it.
type frameProbe struct {
	id      int
	tickPtr []*Frame
	rcvPtr  []*Frame
	period  int64
}

func (p *frameProbe) Init(id int, src *rng.Source) { p.id = id }

func (p *frameProbe) Tick(slot int64, f *Frame) bool {
	p.tickPtr = append(p.tickPtr, f)
	if p.period > 0 && slot%p.period == 0 {
		f.Kind = beaconKind
		return true
	}
	return false
}

func (p *frameProbe) Receive(slot int64, f *Frame) { p.rcvPtr = append(p.rcvPtr, f) }

// TestPooledFrameLifecycle pins the frame-pool contract: every Tick of a
// node sees the same pooled frame, a receiver is handed the sender's pooled
// frame (not a copy), and the engine fills in From.
func TestPooledFrameLifecycle(t *testing.T) {
	ch := twoNodeChannel(t, 5)
	sender := &frameProbe{period: 1}
	listener := &frameProbe{}
	eng, err := NewEngine(ch, []Node{sender, listener}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(4, nil)
	for i, f := range sender.tickPtr[1:] {
		if f != sender.tickPtr[0] {
			t.Fatalf("sender's pooled frame changed identity at slot %d", i+1)
		}
	}
	if len(listener.rcvPtr) != 4 {
		t.Fatalf("listener received %d frames, want 4", len(listener.rcvPtr))
	}
	for _, f := range listener.rcvPtr {
		if f != sender.tickPtr[0] {
			t.Fatal("receiver was not handed the sender's pooled frame")
		}
		if f.From != 0 || f.Kind != beaconKind {
			t.Fatalf("delivered frame = %+v, want From=0 Kind=beacon", f)
		}
	}
}

// TestEngineStepAllocFree is the slot-pipeline allocation budget: once the
// engine and evaluator are warm, a steady-state Step — tick, evaluate,
// deliver — performs zero heap allocations, on the sequential driver and on
// the pooled parallel driver, with the evaluator on both its dense and
// sparse paths.
func TestEngineStepAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name     string
		parallel bool
		workers  int
		pin      bool
		p        float64 // per-slot transmit probability (sets tx density)
		shards   int     // force the sharded evaluator regime when > 0
	}{
		{"sequential/dense", false, 1, false, 0.5, 0},
		{"sequential/sparse", false, 1, false, 0.02, 0},
		{"parallel/sparse", true, 4, false, 0.02, 0},
		// Pinned forces the fused session driver every slot regardless of
		// what the crossover would decide, so the Begin/phase/End machinery
		// itself is held to the zero-alloc budget.
		{"parallel-pinned/sparse", true, 4, true, 0.02, 0},
		{"parallel-pinned/dense", true, 4, true, 0.5, 0},
		// The sharded regime's per-slot aggregation phases ride the same
		// fused session and share the zero-alloc budget.
		{"sequential/shard", false, 1, false, 0.5, 4},
		{"parallel-pinned/shard", true, 4, true, 0.5, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(31)
			pos := make([]geom.Point, 400)
			for i := range pos {
				pos[i] = geom.Point{X: src.Float64() * 90, Y: src.Float64() * 90}
			}
			ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
			if err != nil {
				t.Fatal(err)
			}
			fast := sinr.NewFastChannel(ch, sinr.FastOptions{Shards: tc.shards})
			defer fast.Close()
			if tc.shards > 0 && fast.Shards() == 0 {
				t.Fatal("sharded configuration fell back to a per-pair regime")
			}
			nodes := make([]Node, len(pos))
			for i := range nodes {
				nodes[i] = &randomNode{p: tc.p}
			}
			eng, err := NewEngine(ch, nodes, Config{
				Seed: 3, Parallel: tc.parallel, Workers: tc.workers,
				PinDriver: tc.pin, Evaluator: fast,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(30, nil) // warm the pool, scratch and tx buffers
			allocs := testing.AllocsPerRun(50, eng.Step)
			if allocs != 0 {
				t.Errorf("steady-state Step allocates %.1f objects per slot, want 0", allocs)
			}
		})
	}
}
