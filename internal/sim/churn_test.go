package sim

import (
	"errors"
	"strings"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// churnTestDelta hand-builds the epoch deltas the engine tests apply (the
// full topology commit path is exercised by topology's and sinr's own
// tests; here only the engine-side semantics matter).

// latticePositions lays n nodes on a spacing-2 line.
func latticePositions(n int) []geom.Point {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: 2 * float64(i), Y: 0}
	}
	return pos
}

// churnEngine builds an engine of randomNodes over a fresh channel.
func churnEngine(t *testing.T, n int, seed uint64, fast bool) (*Engine, []Node) {
	t.Helper()
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), latticePositions(n))
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.2}
	}
	cfg := Config{Seed: seed, Workers: 2}
	if fast {
		cfg.Evaluator = sinr.NewFastChannel(ch, sinr.FastOptions{Workers: 2})
	}
	eng, err := NewEngine(ch, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, nodes
}

// TestEngineApplyEpochDifferential runs the same churn schedule on a
// naive-evaluator engine and a fast-evaluator engine: the executions —
// per-slot receptions observed, aggregate stats — must be identical, and
// both must keep running correctly as nodes move, leave and join.
func TestEngineApplyEpochDifferential(t *testing.T) {
	const n, seed = 24, 11
	type run struct {
		eng  *Engine
		recs [][]int
	}
	runs := make([]*run, 2)
	for i, fast := range []bool{false, true} {
		r := &run{}
		r.eng, _ = churnEngine(t, n, seed, fast)
		r.eng.AddObserver(ObserverFunc(func(slot int64, tx []int, recs []sinr.Reception) {
			row := make([]int, len(recs))
			for j, rec := range recs {
				row[j] = rec.Sender
			}
			r.recs = append(r.recs, row)
		}))
		runs[i] = r
	}

	// One delta sequence drives both engines (deltas are reusable across
	// evaluator families).
	pos := latticePositions(n)
	schedule := make([]*sinr.EpochDelta, 0, 3)
	// Epoch 1: move node 3 and node 7.
	p1 := append([]geom.Point(nil), pos...)
	p1[3] = geom.Point{X: p1[3].X + 0.7, Y: 0.5}
	p1[7] = geom.Point{X: p1[7].X - 0.6, Y: -0.4}
	schedule = append(schedule, &sinr.EpochDelta{OldN: n, NewN: n, Dirty: []int{3, 7}, Positions: p1})
	// Epoch 2: remove node 5 (last relabels into it) and add one node.
	p2 := append([]geom.Point(nil), p1...)
	p2[5] = p2[n-1]
	p2 = p2[:n-1]
	p2 = append(p2, geom.Point{X: -2, Y: 2})
	schedule = append(schedule, &sinr.EpochDelta{
		OldN: n, NewN: n, Dirty: []int{5, n - 1},
		Relabels: []sinr.Relabel{{From: n - 1, To: 5}},
		Added:    []int{n - 1}, Removed: 1, Positions: p2,
	})
	// Epoch 3: pure shrink (remove the last node).
	p3 := append([]geom.Point(nil), p2...)
	p3 = p3[:n-1]
	schedule = append(schedule, &sinr.EpochDelta{OldN: n, NewN: n - 1, Removed: 1, Positions: p3})

	for _, r := range runs {
		r.eng.Run(30, nil)
		for _, delta := range schedule {
			if err := r.eng.ApplyEpoch(delta, func(id int) Node { return &randomNode{p: 0.2} }); err != nil {
				t.Fatal(err)
			}
			r.eng.Run(30, nil)
		}
	}
	a, b := runs[0], runs[1]
	if a.eng.Stats() != b.eng.Stats() {
		t.Fatalf("stats diverged: naive %+v, fast %+v", a.eng.Stats(), b.eng.Stats())
	}
	if len(a.recs) != len(b.recs) {
		t.Fatalf("slot counts diverged: %d vs %d", len(a.recs), len(b.recs))
	}
	for slot := range a.recs {
		if len(a.recs[slot]) != len(b.recs[slot]) {
			t.Fatalf("slot %d: reception widths diverged", slot)
		}
		for j := range a.recs[slot] {
			if a.recs[slot][j] != b.recs[slot][j] {
				t.Fatalf("slot %d node %d: naive decoded %d, fast %d",
					slot, j, a.recs[slot][j], b.recs[slot][j])
			}
		}
	}
}

// TestEngineApplyEpochRelabel checks the automaton surgery: survivors keep
// their state and follow the swap-remove relabel, removed automata drop
// out, and exactly the added nodes are initialised (once, with their new
// id).
func TestEngineApplyEpochRelabel(t *testing.T) {
	const n = 8
	eng, _ := churnEngine(t, n, 3, true)
	eng.Run(10, nil)
	moved := eng.Node(n - 1) // will be relabeled into slot 2
	removed := eng.Node(2)   // will leave the deployment
	sentBefore := moved.(*randomNode).sent

	pos := latticePositions(n)
	p := append([]geom.Point(nil), pos...)
	p[2] = p[n-1]
	p = p[:n-1]
	p = append(p, geom.Point{X: -4, Y: 0})
	inits := 0
	delta := &sinr.EpochDelta{
		OldN: n, NewN: n, Dirty: []int{2, n - 1},
		Relabels: []sinr.Relabel{{From: n - 1, To: 2}},
		Added:    []int{n - 1}, Removed: 1, Positions: p,
	}
	err := eng.ApplyEpoch(delta, func(id int) Node {
		inits++
		if id != n-1 {
			t.Fatalf("factory called for id %d, want %d", id, n-1)
		}
		return &randomNode{p: 0.2}
	})
	if err != nil {
		t.Fatal(err)
	}
	if inits != 1 {
		t.Fatalf("factory called %d times, want 1", inits)
	}
	if eng.Node(2) != moved {
		t.Fatal("relabeled automaton did not follow its node")
	}
	if got := moved.(*randomNode).sent; got != sentBefore {
		t.Fatal("relabel re-initialised a surviving automaton")
	}
	// The added automaton gets a fresh protocol identity, never a reused
	// slot id: the survivor relabeled into slot 2 still answers to id n-1,
	// so handing the newcomer n-1 would put two live automata on one
	// identity.
	if got := eng.Node(n - 1).(*randomNode).id; got != n {
		t.Fatalf("added automaton initialised with id %d, want fresh id %d", got, n)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		id := eng.Node(i).(*randomNode).id
		if seen[id] {
			t.Fatalf("two live automata share protocol id %d", id)
		}
		seen[id] = true
	}
	// The pre-epoch automaton at slot 2 is gone.
	for i := 0; i < n; i++ {
		if eng.Node(i) == removed {
			t.Fatal("removed automaton still wired into the engine")
		}
	}
	eng.Run(10, nil) // post-epoch slots keep working
}

// TestEngineApplyEpochErrors covers the hook's error paths.
func TestEngineApplyEpochErrors(t *testing.T) {
	const n = 6
	eng, _ := churnEngine(t, n, 5, true)
	pos := latticePositions(n)
	if err := eng.ApplyEpoch(&sinr.EpochDelta{OldN: n + 1, NewN: n + 1, Positions: latticePositions(n + 1)}, nil); err == nil {
		t.Fatal("accepted a delta for the wrong node count")
	}
	grown := append(latticePositions(n), geom.Point{X: -2, Y: 0})
	addDelta := &sinr.EpochDelta{OldN: n, NewN: n + 1, Dirty: []int{n}, Added: []int{n}, Positions: grown}
	if err := eng.ApplyEpoch(addDelta, nil); err == nil || !strings.Contains(err.Error(), "factory") {
		t.Fatalf("missing-factory error = %v", err)
	}
	// A factory that returns nil, or a node whose Init fails, aborts the
	// apply before anything — evaluator included — is mutated.
	if err := eng.ApplyEpoch(addDelta, func(id int) Node { return nil }); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil-factory error = %v", err)
	}
	if err := eng.ApplyEpoch(addDelta, func(id int) Node { return &initFailNode{} }); err == nil ||
		!strings.Contains(err.Error(), "failed to initialise") {
		t.Fatalf("failing-init error = %v", err)
	}
	// Every failed apply leaves the engine usable at its old size.
	if got := len(eng.nodes); got != n {
		t.Fatalf("failed apply resized the engine to %d nodes", got)
	}
	eng.Run(5, nil)
	// ...and a subsequent valid apply still works.
	if err := eng.ApplyEpoch(addDelta, func(id int) Node { return &randomNode{p: 0.2} }); err != nil {
		t.Fatalf("apply after failed applies: %v", err)
	}
	eng.Run(5, nil)
	_ = pos
}

// initFailNode fails its Init and reports it via NodeInitError.
type initFailNode struct{ err error }

func (f *initFailNode) Init(id int, src *rng.Source) { f.err = errors.New("bad config") }
func (f *initFailNode) InitError() error             { return f.err }
func (f *initFailNode) Tick(slot int64, fr *Frame) bool {
	return false
}
func (f *initFailNode) Receive(slot int64, fr *Frame) {}

// TestEngineSurfacesInitErrors checks that NewEngine and Reset return a
// node's recorded Init failure instead of letting protocols panic.
func TestEngineSurfacesInitErrors(t *testing.T) {
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), latticePositions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(ch, []Node{&initFailNode{}, &randomNode{p: 0.1}}, Config{Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "bad config") {
		t.Fatalf("NewEngine error = %v, want wrapped init failure", err)
	}
	eng, err := NewEngine(ch, []Node{&randomNode{p: 0.1}, &randomNode{p: 0.1}}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset([]Node{&randomNode{p: 0.1}, &initFailNode{}}, 2); err == nil ||
		!strings.Contains(err.Error(), "bad config") {
		t.Fatalf("Reset error = %v, want wrapped init failure", err)
	}
}

// TestEngineApplyEpochInitFailureMidChurn: after a successful growth epoch,
// a later epoch whose factory produces failing nodes is rejected without
// disturbing the running engine — it stays at the successful epoch's size,
// keeps simulating, and accepts a subsequent valid epoch.
func TestEngineApplyEpochInitFailureMidChurn(t *testing.T) {
	const n = 6
	eng, _ := churnEngine(t, n, 5, true)
	grow := func(size int) *sinr.EpochDelta {
		return &sinr.EpochDelta{
			OldN: size, NewN: size + 1,
			Dirty: []int{size}, Added: []int{size},
			Positions: latticePositions(size + 1),
		}
	}
	if err := eng.ApplyEpoch(grow(n), func(id int) Node { return &randomNode{p: 0.2} }); err != nil {
		t.Fatal(err)
	}
	eng.Run(5, nil)
	factoryCalls := 0
	if err := eng.ApplyEpoch(grow(n+1), func(id int) Node { factoryCalls++; return &initFailNode{} }); err == nil ||
		!strings.Contains(err.Error(), "failed to initialise") {
		t.Fatalf("mid-churn failing factory error = %v", err)
	}
	if factoryCalls == 0 {
		t.Fatal("failing factory was never invoked")
	}
	if got := len(eng.nodes); got != n+1 {
		t.Fatalf("failed mid-churn apply resized the engine to %d nodes, want %d", got, n+1)
	}
	eng.Run(5, nil)
	if err := eng.ApplyEpoch(grow(n+1), func(id int) Node { return &randomNode{p: 0.2} }); err != nil {
		t.Fatalf("valid epoch after the failed one: %v", err)
	}
	eng.Run(5, nil)
	if got := eng.Stats().Slots; got != 15 {
		t.Fatalf("engine simulated %d slots across the churn sequence, want 15", got)
	}
}
