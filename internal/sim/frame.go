package sim

import (
	"fmt"
	"sync"

	"sinrmac/internal/core"
)

// FrameKind identifies a protocol frame type. Kinds are interned small
// integers rather than strings: each protocol registers its kinds once at
// package initialisation with RegisterFrameKind, and the per-slot dispatch
// that used to compare strings (every Receive of every node, every slot)
// becomes an integer compare. The zero FrameKind is reserved and never
// returned by RegisterFrameKind, so a zeroed Frame is recognisably blank.
type FrameKind uint32

var (
	kindMu sync.Mutex
	// kindNames[k] is the registered name of kind k; index 0 is the
	// reserved blank kind.
	kindNames = []string{"<none>"}
	kindIndex = map[string]FrameKind{}
)

// RegisterFrameKind interns name and returns its kind. Registering the same
// name again returns the same kind, so independent packages (and repeated
// test binaries' init orders) agree on a name's identity within a process.
// Kind values are process-local: they depend on registration order and must
// never be persisted or compared across processes — compare the names
// instead. Registering the empty name returns the reserved zero kind.
func RegisterFrameKind(name string) FrameKind {
	if name == "" {
		return 0
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if k, ok := kindIndex[name]; ok {
		return k
	}
	k := FrameKind(len(kindNames))
	kindNames = append(kindNames, name)
	kindIndex[name] = k
	return k
}

// String returns the registered name of the kind, for logs and test
// failures.
func (k FrameKind) String() string {
	kindMu.Lock()
	defer kindMu.Unlock()
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("<unregistered kind %d>", uint32(k))
}

// Frame is one physical-layer frame occupying one slot on the channel.
//
// # Frame lifecycle
//
// Frames are pooled: the engine owns one frame per node, allocated once at
// construction, and hands node i its frame on every Tick. A node that wants
// to transmit fills the frame's fields and returns true; the engine then
// delivers pointers to that same frame to every receiver that decodes it.
// No frame is ever allocated on the steady-state slot path.
//
// The pooling imposes two rules on protocol code:
//
//   - A frame (and any payload it points to) is valid only until the end of
//     the slot it was transmitted in. The transmitting node will overwrite
//     the frame — and any per-automaton scratch its Payload points into —
//     on a later Tick. Receivers and observers that retain payload data
//     beyond the Receive call must copy it.
//   - Fields are not cleared between slots. A node that transmits kind A in
//     one slot and kind B later leaves A's fields stale; receivers must
//     only read the fields defined for the frame's Kind.
//
// Test and analysis code may still construct Frame values directly (for
// driving a node's Receive by hand); the lifecycle rules apply only to
// engine-pooled frames.
type Frame struct {
	// From is the sender's node id. The engine fills it in on transmission,
	// so protocols do not need to set it.
	From int
	// Kind distinguishes protocol frame types. Protocols register their
	// kinds once with RegisterFrameKind.
	Kind FrameKind
	// Msg is the typed payload slot for bcast-message frames — the common
	// data path of every MAC in this repository. Keeping it inline avoids
	// boxing a core.Message into Payload on every transmission.
	Msg core.Message
	// Payload carries any other protocol-specific payload. Hot protocols
	// point it at per-automaton scratch (re-filled on each Tick) rather
	// than allocating; see the lifecycle rules above.
	Payload interface{}
}
