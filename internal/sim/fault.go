package sim

import (
	"runtime/debug"
	"sort"
	"time"

	"sinrmac/internal/sinr"
)

// FaultHook is the engine's fault-injection extension point, installed via
// Config.Faults (implemented by internal/fault.Injector). The engine calls
// the hook at fixed points of every slot; with no hook installed the slot
// pipeline is byte-for-byte the plain one, and a hook whose plan injects
// nothing must leave the execution bit-identical to running without one.
//
// Determinism contract: every method below that draws randomness is called
// from a serial section of the slot (SlotStart, PerturbTransmitters and
// FilterReceptions run on the driving goroutine, in slot order, on both
// drivers), so a hook that derives all decisions from labelled rng streams
// and its own per-slot state produces bit-identical fault sequences at any
// worker count. DeliverFrame may be called concurrently for distinct
// receiving nodes and must not draw from shared streams.
type FaultHook interface {
	// SlotStart is called first in every slot. It returns the inert bitmap
	// (len n, true = node neither ticks nor receives this slot) or nil when
	// no node is inert — the nil fast path keeps the zero-fault tick loop
	// free of per-node checks. The returned slice is only read until the
	// next SlotStart.
	SlotStart(slot int64, n int) []bool
	// PerturbTransmitters may append adversarial transmitter ids (jammers)
	// to the slot's collected transmit set and returns the possibly-grown
	// slice. Injected ids must be valid node ids; injected transmitters
	// participate in slot evaluation exactly like real ones (interference,
	// half-duplex), but the engine does not count them in Stats.Transmissions.
	PerturbTransmitters(slot int64, tx []int) []int
	// FilterReceptions runs after SlotReceptions and before delivery; the
	// hook may scrub entries (Sender = -1) for jammer decodes, inert
	// receivers and dropped frames, and record which deliveries to corrupt.
	// Mutating the slice is safe: evaluators reuse it as scratch and reset
	// every entry on the next slot.
	FilterReceptions(slot int64, receptions []sinr.Reception)
	// DeliverFrame maps a decoded frame just before delivery to node; it
	// returns f unchanged, a substitute (for corruption, a per-receiver
	// scratch copy — the pooled frame is shared by all receivers), or nil
	// to silently drop. Called once per delivery, possibly concurrently for
	// distinct nodes.
	DeliverFrame(slot int64, node int, f *Frame) *Frame
	// NodePanicked reports a recovered panic from the node's Tick or
	// Receive. The engine calls it serially (in node order) before the
	// affected receptions are filtered; the hook is expected to treat the
	// node as crash-stopped from this point on.
	NodePanicked(slot int64, node int, phase string, value interface{}, stack []byte)
	// EpochApplied is called after Engine.ApplyEpoch commits a churn epoch,
	// so per-node fault state follows the swap-remove relabels.
	EpochApplied(delta *sinr.EpochDelta)
	// Reset rewinds the hook to slot zero alongside Engine.Reset.
	Reset()
}

// panicRecord is one recovered node panic awaiting serial hand-off to the
// fault hook.
type panicRecord struct {
	node  int
	phase string
	value interface{}
	stack []byte
}

// recordPanic queues a recovered node panic; called from worker goroutines.
func (e *Engine) recordPanic(node int, phase string, value interface{}) {
	stack := debug.Stack()
	e.panicMu.Lock()
	e.pendingPanics = append(e.pendingPanics, panicRecord{node, phase, value, stack})
	e.panicMu.Unlock()
}

// drainPanics hands queued panics to the fault hook in node order (the
// queue order depends on worker scheduling; sorting restores determinism).
func (e *Engine) drainPanics(slot int64) {
	e.panicMu.Lock()
	pending := e.pendingPanics
	e.pendingPanics = e.pendingPanics[:0]
	e.panicMu.Unlock()
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].node < pending[j].node })
	for _, p := range pending {
		e.faults.NodePanicked(slot, p.node, p.phase, p.value, p.stack)
	}
}

// tickChunkFaults is the tick phase under a fault hook: inert nodes do not
// tick, and a panicking Tick is recovered and converted into a crash fault
// instead of killing the engine. The panic recovery costs one deferred call
// per chunk, not per node, so the zero-fault plan stays near the plain
// loop's cost.
func (e *Engine) tickChunkFaults(lo, hi, _ int) {
	for i := lo; i < hi; {
		i = e.tickRunFaults(i, hi)
	}
}

// tickRunFaults ticks nodes [lo, hi) until one panics; on a panic it marks
// the node non-transmitting, records the panic and returns the index to
// resume from.
func (e *Engine) tickRunFaults(lo, hi int) (next int) {
	slot := e.tickSlot
	i := lo
	defer func() {
		if r := recover(); r != nil {
			e.sent[i] = false
			e.recordPanic(i, "tick", r)
			next = i + 1
		}
	}()
	if inert := e.inert; inert != nil {
		for ; i < hi; i++ {
			if inert[i] {
				e.sent[i] = false
				continue
			}
			e.sent[i] = e.nodes[i].Tick(slot, &e.frames[i])
		}
	} else {
		for ; i < hi; i++ {
			e.sent[i] = e.nodes[i].Tick(slot, &e.frames[i])
		}
	}
	return hi
}

// tickSerialFaultsRun is the sequential driver's tick run under a fault
// hook: like the plain serial loop it appends transmitters to txScratch
// directly (no sent-flag pass — that extra O(n) sweep is what the
// engine_step_faults benchmark gate polices), while keeping the per-run
// panic recovery. A node that panics mid-Tick is simply never appended.
func (e *Engine) tickSerialFaultsRun(lo, hi int) (next int) {
	slot := e.tickSlot
	i := lo
	defer func() {
		if r := recover(); r != nil {
			e.recordPanic(i, "tick", r)
			next = i + 1
		}
	}()
	if inert := e.inert; inert != nil {
		for ; i < hi; i++ {
			if inert[i] {
				continue
			}
			if e.nodes[i].Tick(slot, &e.frames[i]) {
				e.frames[i].From = i
				e.txScratch = append(e.txScratch, i)
			}
		}
	} else {
		for ; i < hi; i++ {
			if e.nodes[i].Tick(slot, &e.frames[i]) {
				e.frames[i].From = i
				e.txScratch = append(e.txScratch, i)
			}
		}
	}
	return hi
}

// recvChunkFaults is the receive phase under a fault hook: every delivery
// is routed through DeliverFrame, and a panicking Receive is recovered and
// recorded. Inert receivers were already scrubbed by FilterReceptions.
func (e *Engine) recvChunkFaults(lo, hi, worker int) {
	for i := lo; i < hi; {
		i = e.recvRunFaults(i, hi, worker)
	}
}

// recvRunFaults delivers to receivers [lo, hi) until one panics, counting
// deliveries into the worker's subtotal incrementally.
func (e *Engine) recvRunFaults(lo, hi, worker int) (next int) {
	slot, rec := e.rxSlot, e.rxRec
	i := lo
	defer func() {
		if r := recover(); r != nil {
			e.recordPanic(i, "receive", r)
			next = i + 1
		}
	}()
	for ; i < hi; i++ {
		if s := rec[i].Sender; s >= 0 {
			if f := e.faults.DeliverFrame(slot, i, &e.frames[s]); f != nil {
				e.nodes[i].Receive(slot, f)
				e.rxCounts[worker]++
			}
		}
	}
	return hi
}

// stepSerialFaults is the sequential driver with the fault hook wired into
// every phase. Ordering matters for determinism and for the graceful-
// degradation semantics: tick panics are drained (and the nodes marked
// crashed) before FilterReceptions, so a node that died mid-Tick does not
// receive in the same slot.
func (e *Engine) stepSerialFaults() {
	slot := e.slot
	n := len(e.nodes)
	e.inert = e.faults.SlotStart(slot, n)
	e.tickSlot = slot
	e.txScratch = e.txScratch[:0]
	for i := 0; i < n; {
		i = e.tickSerialFaultsRun(i, n)
	}
	e.realTx = len(e.txScratch)
	e.txScratch = e.faults.PerturbTransmitters(slot, e.txScratch)
	receptions := e.evaluator.SlotReceptions(e.txScratch)
	e.drainPanics(slot)
	e.faults.FilterReceptions(slot, receptions)
	e.rxCounts[0] = 0
	e.rxSlot, e.rxRec = slot, receptions
	e.recvChunkFaults(0, n, 0)
	e.rxRec = nil
	e.stats.Receptions += e.rxCounts[0]
	e.drainPanics(slot)
	e.finishSlot(slot, receptions)
}

// stepParallelFaults is the fused worker-pool driver with the fault hook:
// the hook's stochastic sections (SlotStart, PerturbTransmitters,
// FilterReceptions, panic draining) all run on the leader between the
// parallel phases, so the fault sequence is identical to the serial
// driver's at any worker count.
//
//sinrlint:allow detrand chunk-calibration probes; EWMA phase costs size chunks, the slot outcome is bit-identical at any sizing
func (e *Engine) stepParallelFaults() {
	slot := e.slot
	n := len(e.nodes)
	e.inert = e.faults.SlotStart(slot, n)
	probing := e.cal.probing
	e.pool.Begin(e.workers)

	e.txScratch = e.txScratch[:0]
	e.tickSlot = slot
	var t0 time.Time
	if probing {
		t0 = time.Now()
	}
	e.pool.Run(n, phaseWorkersFor(e.cal.tickNsPerNode, n, e.workers), &e.tickTask)
	if probing {
		observePhaseCost(&e.cal.tickNsPerNode, float64(time.Since(t0)), n)
	}
	for i, sent := range e.sent {
		if sent {
			e.sent[i] = false
			e.frames[i].From = i
			e.txScratch = append(e.txScratch, i)
		}
	}
	e.realTx = len(e.txScratch)
	e.txScratch = e.faults.PerturbTransmitters(slot, e.txScratch)

	receptions := e.evaluator.SlotReceptions(e.txScratch)
	e.drainPanics(slot)
	e.faults.FilterReceptions(slot, receptions)

	if probing {
		t0 = time.Now()
	}
	e.stats.Receptions += e.receiveParallel(slot, receptions)
	if probing {
		observePhaseCost(&e.cal.recvNsPerNode, float64(time.Since(t0)), n)
	}
	e.pool.End()
	e.drainPanics(slot)
	e.finishSlot(slot, receptions)
}
