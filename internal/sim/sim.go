// Package sim provides the synchronous, slotted simulation engine that
// drives protocol automata over the SINR channel.
//
// Time proceeds in discrete slots. In every slot the engine
//
//  1. asks every node automaton whether it transmits a frame (Tick),
//  2. evaluates the SINR reception predicate at every listening node
//     through the configured sinr.ChannelEvaluator (the naive reference
//     scan by default, the fast arena/grid engine via Config.Evaluator), and
//  3. delivers the decoded frame, if any, to each receiver (Receive).
//
// Node automata never see positions, the set of transmitters, or other
// nodes' state: all coordination happens through transmitted frames, as in
// the paper's model. The engine supports both a sequential driver and a
// worker-pool parallel driver; both produce identical executions for
// well-behaved (share-nothing) nodes.
//
// # Parallel driver
//
// The parallel driver runs the whole slot — tick, evaluation, receive —
// inside one fused workpool session: the pool's helpers are woken at most
// once per slot and the phase hand-offs in between are spin-then-park
// barriers instead of full park/unpark round trips. Phase chunking is
// sized from measured per-node cost (an EWMA taken during calibration
// slots): a phase is split only into chunks predicted to cost at least a
// documented minimum, so cheap phases run inline instead of paying wake
// overhead for sub-microsecond chunks.
//
// Because both drivers produce bit-identical executions, the engine is
// free to choose between them on measured wall-clock alone: with
// Config.Parallel set (and PinDriver unset) it periodically times a few
// slots under each driver and runs the cheaper one until the next
// calibration window. On a machine where parallelism cannot win — one
// core, tiny deployments — the engine settles on the sequential loop;
// where it wins, it settles on the fused parallel driver. DriverStats
// exposes the measurements and the current choice.
//
// # Frame lifecycle
//
// The steady-state slot path allocates nothing. The engine owns a pool of
// frames — one per node, allocated once — and hands node i its frame on
// every Tick; the node fills it and returns true to transmit. Frame kinds
// are interned integers (RegisterFrameKind), and the common bcast-message
// payload travels in the typed Frame.Msg slot instead of a boxed
// interface. Pooled frames are valid only until the end of the slot they
// were transmitted in: nodes and observers that retain a frame's payload
// must copy it, and stale fields from earlier slots are never cleared (see
// the Frame documentation for the full rules).
//
// The parallel driver's tick and receive phases, and a parallel channel
// evaluator's receiver scan, all run on one persistent worker pool
// (internal/workpool) whose goroutines are parked between phases rather
// than respawned per slot.
//
// Deployments may churn mid-execution: Engine.ApplyEpoch applies a
// committed topology epoch between slots — the evaluator patches its
// state, surviving automata keep their protocol state and follow the
// swap-remove relabels, and only added nodes are initialised.
//
// # Batched execution
//
// Run and RunBatch execute slots in micro-batches of Config.Batch slots:
// on the parallel driver a whole micro-batch runs inside one fused
// workpool session, so the helpers are woken once per batch (instead of
// once per slot) and the phase barrier advances through 3·b phases before
// the helpers park again. Batching changes wall clock only, never the
// execution: observers, recorders, the fault hook's serial sections, stat
// counters and the stop() poll all fire once per slot, in exact slot
// order, at the same pipeline points as a slot-at-a-time Step loop — a
// batch size of 1 is bit-identical to calling Step in a loop, and so is
// every other batch size (TestRunBatchBitIdentity pins it across drivers,
// worker counts, fault plans and churn epochs).
//
// Because observers run between slots of an open session, they must not
// re-enter the engine: Step, Run and RunBatch panic when called from an
// observer mid-batch, and ApplyEpoch and Reset — state mutations that
// require a batch flush — return an error instead. Between Run/RunBatch
// calls the batch is always flushed, so the usual call sites (applying a
// churn epoch between Run legs, resetting for the next trial) need no
// changes at any batch size.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
	"sinrmac/internal/workpool"
)

// Node is a per-node protocol automaton.
//
// Implementations must confine their state to the single node: the engine
// may invoke different nodes' methods concurrently (never the same node's),
// so sharing mutable state between Node instances is a data race.
type Node interface {
	// Init is called exactly once before the first slot with the node's id
	// and a private random source.
	Init(id int, src *rng.Source)
	// Tick is called once per slot with the node's pooled frame. To
	// transmit, fill f's fields and return true; to listen, return false
	// (the frame's contents are then ignored). The frame is reused across
	// slots and its fields are not cleared between them.
	Tick(slot int64, f *Frame) bool
	// Receive is called after Tick in the same slot if the node decoded a
	// frame. A node that transmitted in this slot never receives
	// (half-duplex). The frame and its payload are valid only for the
	// duration of the call; retain by copying.
	Receive(slot int64, f *Frame)
}

// NodeInitError is implemented by nodes whose Init can fail — typically
// because constructing the node's protocol automaton from its configuration
// fails. Init itself has no error return (it is called on the engine's hot
// construction path for every node), so such nodes record the failure and
// report it here; NewEngine, Reset and ApplyEpoch consult the interface
// right after calling Init and surface the wrapped error to the caller
// instead of letting library code panic.
type NodeInitError interface {
	// InitError returns the error the last Init recorded, or nil.
	InitError() error
}

// initErrorOf returns the node's recorded Init failure, if any.
func initErrorOf(n Node) error {
	if r, ok := n.(NodeInitError); ok {
		return r.InitError()
	}
	return nil
}

// Observer is notified after every simulated slot. Observers are used by
// experiments and the spec checker to collect traces without perturbing the
// protocols.
type Observer interface {
	// OnSlot is called once per slot with the transmitting node ids and the
	// per-node reception outcome (indexed by node id, Sender == -1 when
	// nothing was decoded). Both slices are only valid for the duration of
	// the call: fast evaluators reuse the receptions slice as scratch for
	// the next slot, and the engine reuses the transmitter slice. Observers
	// that retain either must copy.
	OnSlot(slot int64, transmitters []int, receptions []sinr.Reception)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(slot int64, transmitters []int, receptions []sinr.Reception)

// OnSlot implements Observer.
func (f ObserverFunc) OnSlot(slot int64, transmitters []int, receptions []sinr.Reception) {
	f(slot, transmitters, receptions)
}

// Config controls engine construction.
type Config struct {
	// Seed seeds the per-node random sources. Identical seeds and nodes
	// reproduce identical executions.
	Seed uint64
	// Parallel enables the worker-pool driver, which runs the tick,
	// evaluation and receive phases of each slot inside one fused workpool
	// session. The execution is identical to the sequential driver; only
	// wall-clock time differs. Because of that, the engine does not take
	// Parallel on faith: it periodically times a few slots under each
	// driver and falls back to the sequential loop whenever the parallel
	// driver does not pay on the current machine and deployment.
	Parallel bool
	// PinDriver disables the measured serial/parallel crossover: the
	// driver selected by Parallel runs unconditionally and no calibration
	// slots are timed. Benchmarks and tests pin the driver they mean to
	// exercise; simulations keep the adaptive default.
	PinDriver bool
	// Workers bounds the number of pool workers used by the parallel
	// driver and by a parallel channel evaluator. Zero means GOMAXPROCS.
	// The count is resolved once at construction (and Reset), not per
	// slot.
	Workers int
	// Evaluator selects the SINR slot evaluator. Nil means the channel
	// itself (the naive reference path); pass sinr.NewFastChannel(channel)
	// to select the arena-backed parallel engine. The evaluator must be
	// built over the same deployment as the channel. If it implements
	// sinr.ParallelEvaluator, the engine wires its worker count into it,
	// and if it exposes a WorkerPool the engine runs its own parallel
	// phases on the same pool, so one set of parked goroutines serves the
	// whole slot pipeline.
	//
	// Fast evaluators reuse their Reception slice across slots, so observers
	// registered on an engine with a non-nil Evaluator must copy the slice
	// if they retain it beyond the OnSlot call.
	Evaluator sinr.ChannelEvaluator
	// Faults installs a fault-injection hook (see FaultHook and
	// internal/fault): crash schedules, adversarial jammers, frame
	// drop/corruption and panic-to-crash conversion. Nil (the default)
	// leaves the slot pipeline untouched; a hook whose plan injects nothing
	// produces an execution bit-identical to running without one.
	Faults FaultHook
	// Batch is the micro-batch size used by Run and RunBatch: up to this
	// many consecutive slots execute inside one fused workpool session, so
	// the pool's helpers are woken once per batch instead of once per slot.
	// Zero selects DefaultBatchSlots; one runs slot-at-a-time (exactly the
	// Step loop). Batching never changes the execution — observers, fault
	// hooks, stat counters and stop() polls fire per slot, in slot order,
	// at the same pipeline points regardless of batch size — so the knob
	// trades nothing but wall clock.
	Batch int
	// Profile, when non-nil, makes the sequential driver accumulate its
	// per-phase wall clock (tick / evaluate / receive) into the pointed-to
	// PhaseStats. Profiling adds two clock reads per phase and perturbs
	// nothing else; it applies to the plain sequential driver only — the
	// parallel driver's phase costs are already measured by the adaptive
	// probe (DriverStats), and the fault-path driver is left unprofiled.
	// cmd/macbench uses it for the per-phase breakdown columns.
	Profile *PhaseStats
}

// PhaseStats accumulates the sequential driver's per-phase wall clock when
// Config.Profile points at one: tick covers every Node.Tick call plus
// transmitter collection, eval covers ChannelEvaluator.SlotReceptions, and
// recv covers every delivery. All fields are totals in nanoseconds over
// Slots profiled slots.
type PhaseStats struct {
	Slots  int64
	TickNs int64
	EvalNs int64
	RecvNs int64
}

// DefaultBatchSlots is the micro-batch size Run and RunBatch use when
// Config.Batch is zero. Large enough to amortise the per-batch session
// wake/park and probe bookkeeping down to noise, small enough that a stop
// condition, SIGINT poll or churn boundary is never more than a few dozen
// slots away.
const DefaultBatchSlots = 64

// Engine drives a set of node automata over an SINR channel.
type Engine struct {
	channel   *sinr.Channel
	evaluator sinr.ChannelEvaluator
	nodes     []Node
	observers []Observer
	cfg       Config
	workers   int // resolved worker count, cached at construction/Reset

	slot   int64
	stats  Stats
	epochs int // churn epochs applied, salts the added-node rng labels
	// nextID is the next never-used protocol identity. Survivors of a churn
	// epoch keep the id they were initialised with even after a swap-remove
	// relabel moves them to another slot, so nodes added later must draw
	// fresh identities — reusing a freed slot index would collide with a
	// survivor's id and break identity-based protocol logic (origin
	// deduplication, MIS tie-breaking).
	nextID int

	// frames is the per-node frame pool: frames[i] is handed to node i on
	// every Tick and delivered to its receivers on decode. Allocated once.
	frames []Frame
	// sent[i] records whether node i transmits this slot (parallel tick
	// phase); the sequential phase appends to txScratch directly.
	sent      []bool
	txScratch []int
	rxCounts  []int64 // scratch: per-chunk reception subtotals (parallel driver)

	// pool runs the parallel tick/receive phases; shared with the
	// evaluator when it exposes one. tickTask/recvTask are the pool task
	// headers, allocated once so submitting a phase allocates nothing.
	pool     *workpool.Pool
	tickTask phaseTask
	recvTask phaseTask
	tickSlot int64
	rxSlot   int64
	rxRec    []sinr.Reception

	// Fault-injection state (used only when cfg.Faults is non-nil). inert
	// is the hook's per-slot bitmap (nil when no node is inert), realTx the
	// count of real transmitters before jammer injection, and pendingPanics
	// the recovered node panics awaiting serial hand-off to the hook.
	faults        FaultHook
	inert         []bool
	realTx        int
	panicMu       sync.Mutex
	pendingPanics []panicRecord

	// batch is the resolved micro-batch size (Config.Batch, defaulted);
	// inBatch guards against engine re-entry from observers while a batch's
	// workpool session is open. prof is Config.Profile.
	batch   int
	inBatch bool
	prof    *PhaseStats

	cal driverCal // serial/parallel crossover + phase-cost measurements
}

// Driver calibration constants. Every driverRecalPeriod slots the adaptive
// driver times driverProbeSlots slots under the sequential loop and the
// same number under the fused parallel driver, then runs whichever was
// cheaper until the next window. The probes also feed the per-node phase
// cost EWMA that sizes chunks: a phase is split only into chunks predicted
// to cost at least minPhaseChunkNs, which keeps the per-chunk barrier and
// wake overhead (single-digit microseconds at worst) a small fraction of
// the chunk's work.
const (
	driverProbeSlots  = 8
	driverRecalPeriod = 8192
	minPhaseChunkNs   = 20000.0
	phaseCostEWMA     = 0.25
)

// driverCal is the adaptive driver's measurement state.
type driverCal struct {
	pos            uint32  // slot position within the current recalibration period
	useParallel    bool    // decision from the last probe window
	decided        bool    // at least one probe window has completed
	serialNs       float64 // accumulators for the current probe window
	parallelNs     float64
	serialSlotNs   float64 // mean per-slot ns from the last completed window
	parallelSlotNs float64
	calibrations   uint64
	probing        bool    // current slot is a timed parallel probe
	tickNsPerNode  float64 // EWMA per-node phase costs (parallel probes)
	recvNsPerNode  float64
}

// DriverStats reports the adaptive driver's measurements: the per-slot
// cost of each driver from the last calibration window, the per-node phase
// cost EWMAs feeding the chunk-sizing model, the phase worker counts that
// model currently yields, and which driver the next non-probe slot will
// use. All times are in nanoseconds.
type DriverStats struct {
	// Parallel reports whether the next regular slot runs the parallel
	// driver (true whenever the driver is pinned parallel).
	Parallel bool
	// Calibrations counts completed probe windows.
	Calibrations uint64
	// SerialSlotNs and ParallelSlotNs are the mean measured per-slot costs
	// from the last completed probe window (zero before the first).
	SerialSlotNs   float64
	ParallelSlotNs float64
	// TickNsPerNode and RecvNsPerNode are the EWMA per-node costs of the
	// tick and receive phases measured during parallel probe slots.
	TickNsPerNode float64
	RecvNsPerNode float64
	// TickWorkers and RecvWorkers are the phase worker counts the
	// chunk-sizing model derives from those costs for the current
	// deployment size.
	TickWorkers int
	RecvWorkers int
}

// DriverStats returns the adaptive driver's current measurements. It is
// meaningful on engines configured with Parallel; on others it reports the
// zero value with Parallel false.
func (e *Engine) DriverStats() DriverStats {
	c := &e.cal
	par := e.cfg.Parallel && e.workers > 1 && (e.cfg.PinDriver || c.useParallel)
	return DriverStats{
		Parallel:       par,
		Calibrations:   c.calibrations,
		SerialSlotNs:   c.serialSlotNs,
		ParallelSlotNs: c.parallelSlotNs,
		TickNsPerNode:  c.tickNsPerNode,
		RecvNsPerNode:  c.recvNsPerNode,
		TickWorkers:    phaseWorkersFor(c.tickNsPerNode, len(e.nodes), e.workers),
		RecvWorkers:    phaseWorkersFor(c.recvNsPerNode, len(e.nodes), e.workers),
	}
}

// phaseWorkersFor sizes one parallel phase from its measured per-node cost:
// the phase is split into at most max chunks, each predicted to cost at
// least minPhaseChunkNs. An unmeasured phase (cost 0, before the first
// parallel probe) uses every worker.
func phaseWorkersFor(nsPerNode float64, n, max int) int {
	if max <= 1 {
		return 1
	}
	if nsPerNode <= 0 {
		return max
	}
	w := int(nsPerNode * float64(n) / minPhaseChunkNs)
	if w < 1 {
		w = 1
	}
	if w > max {
		w = max
	}
	return w
}

// phaseTask adapts one engine phase to workpool.Task. The fn indirection
// (a method expression, assigned once) lets both phases share the type
// without per-slot closures.
type phaseTask struct {
	e  *Engine
	fn func(e *Engine, lo, hi, worker int)
}

// RunChunk implements workpool.Task.
func (t *phaseTask) RunChunk(lo, hi, worker int) { t.fn(t.e, lo, hi, worker) }

// Stats accumulates aggregate counters over an execution.
type Stats struct {
	// Slots is the number of slots simulated so far.
	Slots int64
	// Transmissions counts frames put on the channel.
	Transmissions int64
	// Receptions counts successful decodes.
	Receptions int64
}

// NewEngine returns an engine over the given channel and nodes. The number
// of nodes must match the channel's deployment size.
func NewEngine(channel *sinr.Channel, nodes []Node, cfg Config) (*Engine, error) {
	if channel == nil {
		return nil, fmt.Errorf("sim: nil channel")
	}
	if len(nodes) != channel.NumNodes() {
		return nil, fmt.Errorf("sim: %d nodes for a %d-node deployment", len(nodes), channel.NumNodes())
	}
	evaluator := cfg.Evaluator
	if evaluator == nil {
		evaluator = channel
	}
	if evaluator.NumNodes() != channel.NumNodes() {
		return nil, fmt.Errorf("sim: evaluator over %d nodes for a %d-node deployment",
			evaluator.NumNodes(), channel.NumNodes())
	}
	if wrapped, ok := evaluator.(interface{ Channel() *sinr.Channel }); ok && wrapped.Channel() != channel {
		return nil, fmt.Errorf("sim: evaluator wraps a different channel than the engine's")
	}
	e := &Engine{
		channel:   channel,
		evaluator: evaluator,
		// The engine owns its node table: ApplyEpoch relabels and truncates
		// it in place, which must never reach through to a slice the caller
		// retains for its own bookkeeping.
		nodes:  append([]Node(nil), nodes...),
		cfg:    cfg,
		frames: make([]Frame, len(nodes)),
		sent:   make([]bool, len(nodes)),
	}
	e.tickTask = phaseTask{e: e, fn: (*Engine).tickChunk}
	e.recvTask = phaseTask{e: e, fn: (*Engine).recvChunk}
	e.faults = cfg.Faults
	if e.faults != nil {
		e.tickTask.fn = (*Engine).tickChunkFaults
		e.recvTask.fn = (*Engine).recvChunkFaults
	}
	e.workers = e.resolveWorkers()
	e.rxCounts = make([]int64, e.workers)
	e.batch = resolveBatch(cfg.Batch)
	e.prof = cfg.Profile
	for i := range e.frames {
		e.frames[i].From = i
	}
	if pe, ok := evaluator.(sinr.ParallelEvaluator); ok {
		pe.SetWorkers(e.workers)
	}
	// Run the engine's own parallel phases on the evaluator's persistent
	// pool when it has one; otherwise own a pool (only the parallel driver
	// ever uses it).
	if ph, ok := evaluator.(interface{ WorkerPool() *workpool.Pool }); ok {
		e.pool = ph.WorkerPool()
	} else if cfg.Parallel {
		e.pool = workpool.New()
	}
	e.nextID = len(nodes)
	master := rng.New(cfg.Seed)
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("sim: node %d is nil", i)
		}
		n.Init(i, master.SplitLabeled(uint64(i)))
		if err := initErrorOf(n); err != nil {
			return nil, fmt.Errorf("sim: node %d failed to initialise: %w", i, err)
		}
	}
	return e, nil
}

// Reset rewinds the engine to slot zero over a fresh set of node automata,
// reusing the engine's channel, evaluator, frame pool and scratch storage
// instead of reallocating them. The node count must match the deployment.
// Observers are dropped; callers re-register the ones the new execution
// needs.
//
// Reset re-seeds the per-node random sources exactly as NewEngine does, so
// an engine that is Reset with the same nodes and seed replays the identical
// execution a fresh engine would produce — this is what lets the experiment
// scheduler run many trials on one engine without repaying its fixed costs.
// Mutable per-execution state inside the evaluator (scratch arenas, lazy
// power-column caches) is keyed only to the immutable deployment, so it
// carries over safely.
func (e *Engine) Reset(nodes []Node, seed uint64) error {
	if e.inBatch {
		return fmt.Errorf("sim: Reset called from inside a running batch; return from Run/RunBatch first")
	}
	if len(nodes) != len(e.nodes) {
		return fmt.Errorf("sim: Reset with %d nodes on a %d-node engine", len(nodes), len(e.nodes))
	}
	for i, n := range nodes {
		if n == nil {
			return fmt.Errorf("sim: node %d is nil", i)
		}
	}
	e.nodes = append(e.nodes[:0], nodes...)
	e.observers = e.observers[:0]
	e.slot = 0
	e.stats = Stats{}
	e.txScratch = e.txScratch[:0]
	for i := range e.frames {
		e.frames[i] = Frame{From: i}
		e.sent[i] = false
	}
	e.workers = e.resolveWorkers()
	if len(e.rxCounts) < e.workers {
		e.rxCounts = make([]int64, e.workers)
	}
	e.cfg.Seed = seed
	e.cal = driverCal{}
	e.epochs = 0
	e.nextID = len(nodes)
	if e.faults != nil {
		e.faults.Reset()
		e.inert = nil
		e.pendingPanics = e.pendingPanics[:0]
	}
	master := rng.New(seed)
	for i, n := range nodes {
		n.Init(i, master.SplitLabeled(uint64(i)))
		if err := initErrorOf(n); err != nil {
			return fmt.Errorf("sim: node %d failed to initialise: %w", i, err)
		}
	}
	return nil
}

// churnInitLabel salts the rng label path of nodes added by churn epochs,
// so an added node's stream never collides with an original node's
// (which are derived from the bare id label).
const churnInitLabel uint64 = 0xc402c4

// ApplyEpoch applies a committed churn epoch (topology.Deployment.
// CommitEpoch) to a running simulation, between slots: the evaluator (and
// through it the channel) patches its state via sinr's EpochApplier
// capability, surviving node automata follow their node through the
// swap-remove relabels, removed automata are dropped, and only the added
// nodes are initialised — every existing automaton keeps its protocol state
// across the epoch, exactly as a deployed node would keep its state while
// neighbours churn around it.
//
// newNode supplies the automaton for each added slot id; it may be nil when
// the epoch adds none. An added automaton is initialised with a FRESH
// protocol identity — the next id never used in this execution, not its
// slot index — because a surviving automaton keeps the id it was
// initialised with even after a relabel moves it to another slot, and
// reusing a freed id would let two live automata share an identity (which
// breaks origin deduplication and MIS tie-breaking at the protocol layer).
// Slot-indexed engine artifacts (receptions, Frame.From, Node(i)) keep
// using slot ids as before. Added nodes draw their rng streams from
// (Seed, churn, epoch#, identity) labels, so executions remain
// reproducible. ApplyEpoch must not be called concurrently with Step.
func (e *Engine) ApplyEpoch(delta *sinr.EpochDelta, newNode func(id int) Node) error {
	if e.inBatch {
		return fmt.Errorf("sim: ApplyEpoch called from inside a running batch; return from Run/RunBatch first")
	}
	ap, ok := e.evaluator.(sinr.EpochApplier)
	if !ok {
		return fmt.Errorf("sim: evaluator %T cannot apply churn epochs", e.evaluator)
	}
	if err := delta.Validate(); err != nil {
		return err
	}
	if delta.OldN != len(e.nodes) {
		return fmt.Errorf("sim: epoch delta for %d nodes applied to a %d-node engine", delta.OldN, len(e.nodes))
	}
	if len(delta.Added) > 0 && newNode == nil {
		return fmt.Errorf("sim: epoch adds %d nodes but no node factory was supplied", len(delta.Added))
	}
	// Added automata are built and initialised BEFORE anything is mutated:
	// every remaining failure (nil factory result, out-of-order slot,
	// recorded Init error, evaluator rejection — the evaluators validate
	// before touching their state) then leaves the engine fully usable at
	// its pre-epoch size, so callers may treat a failed apply as
	// recoverable.
	firstAdd := delta.OldN - delta.Removed
	added := make([]Node, 0, len(delta.Added))
	master := rng.New(e.cfg.Seed)
	epoch := uint64(e.epochs + 1)
	for i, id := range delta.Added {
		if id != firstAdd+i {
			return fmt.Errorf("sim: epoch adds node %d out of order (expected slot %d)", id, firstAdd+i)
		}
		n := newNode(id)
		if n == nil {
			return fmt.Errorf("sim: node factory returned nil for added node %d", id)
		}
		identity := e.nextID + i
		n.Init(identity, master.SplitLabels(churnInitLabel, epoch, uint64(identity)))
		if err := initErrorOf(n); err != nil {
			return fmt.Errorf("sim: added node %d failed to initialise: %w", id, err)
		}
		added = append(added, n)
	}
	if err := ap.ApplyEpoch(delta); err != nil {
		return err
	}
	e.epochs++
	e.nextID += len(added)
	// Survivors follow their node: the sequential relabel chain mirrors the
	// swap-removes CommitEpoch performed on the positions.
	for _, rl := range delta.Relabels {
		e.nodes[rl.To] = e.nodes[rl.From]
	}
	e.nodes = append(e.nodes[:firstAdd], added...)
	if len(e.nodes) != delta.NewN {
		return fmt.Errorf("sim: epoch left %d nodes, expected %d", len(e.nodes), delta.NewN)
	}
	// Resize the per-node scratch. Frames are per-slot scratch, so resetting
	// them wholesale is safe between slots.
	if delta.NewN > cap(e.frames) {
		e.frames = make([]Frame, delta.NewN)
	} else {
		e.frames = e.frames[:delta.NewN]
	}
	for i := range e.frames {
		e.frames[i] = Frame{From: i}
	}
	if delta.NewN > cap(e.sent) {
		e.sent = make([]bool, delta.NewN)
	} else {
		e.sent = e.sent[:delta.NewN]
	}
	for i := range e.sent {
		e.sent[i] = false
	}
	e.txScratch = e.txScratch[:0]
	e.workers = e.resolveWorkers()
	if len(e.rxCounts) < e.workers {
		e.rxCounts = make([]int64, e.workers)
	}
	if pe, ok := e.evaluator.(sinr.ParallelEvaluator); ok {
		pe.SetWorkers(e.workers)
	}
	// Per-node fault state (crash schedules, inert bits) follows the same
	// relabels the node table just applied.
	if e.faults != nil {
		e.faults.EpochApplied(delta)
		e.inert = nil
	}
	return nil
}

// AddObserver registers an observer invoked after every slot, in
// registration order.
func (e *Engine) AddObserver(o Observer) {
	e.observers = append(e.observers, o)
}

// Slot returns the number of the next slot to be simulated (equivalently,
// the number of slots already simulated).
func (e *Engine) Slot() int64 { return e.slot }

// Stats returns the aggregate counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Channel returns the engine's SINR channel.
func (e *Engine) Channel() *sinr.Channel { return e.channel }

// Evaluator returns the slot evaluator the engine runs on: the channel
// itself unless Config.Evaluator selected another path.
func (e *Engine) Evaluator() sinr.ChannelEvaluator { return e.evaluator }

// Node returns the automaton with the given id. It is intended for tests
// and for layering higher-level protocols on top of MAC automata.
func (e *Engine) Node(id int) Node { return e.nodes[id] }

// Step simulates exactly one slot. With Config.Parallel set and PinDriver
// unset, the slot may be a timed calibration probe; the execution is
// identical either way, only the driver (and the timing) differs. Step must
// not be called from an observer while a Run/RunBatch micro-batch is open
// (the batch's workpool session is still active); doing so panics.
func (e *Engine) Step() {
	if e.inBatch {
		panic("sim: Step called from inside a running batch")
	}
	parallel, timed := e.driverForSlot()
	if !timed {
		e.stepOnce(parallel)
		return
	}
	e.cal.probing = parallel
	start := time.Now() //sinrlint:allow detrand driver-probe timing; feeds only the serial/parallel choice between bit-identical drivers
	e.stepOnce(parallel)
	elapsed := float64(time.Since(start)) //sinrlint:allow detrand driver-probe timing
	e.cal.probing = false
	if parallel {
		e.cal.parallelNs += elapsed
	} else {
		e.cal.serialNs += elapsed
	}
}

// stepOnce runs one slot on the selected driver, taking the fault-path
// variant when a hook is installed (the plain paths stay branch-free).
func (e *Engine) stepOnce(parallel bool) {
	switch {
	case parallel && e.faults != nil:
		e.stepParallelFaults()
	case parallel:
		e.stepParallel()
	case e.faults != nil:
		e.stepSerialFaults()
	case e.prof != nil:
		e.stepSerialProfiled()
	default:
		e.stepSerial()
	}
}

// resolveBatch derives the effective micro-batch size from the
// configuration.
func resolveBatch(b int) int {
	if b <= 0 {
		return DefaultBatchSlots
	}
	return b
}

// driverForSlot decides which driver runs the next slot and whether the
// slot is a timed calibration probe. The schedule within each
// driverRecalPeriod-slot window is: driverProbeSlots timed serial slots,
// driverProbeSlots timed parallel slots, then the cheaper driver untimed
// for the rest of the window.
func (e *Engine) driverForSlot() (parallel, timed bool) {
	if !e.cfg.Parallel || e.workers <= 1 {
		return false, false
	}
	if e.cfg.PinDriver {
		return true, false
	}
	c := &e.cal
	pos := c.pos
	if c.pos++; c.pos >= driverRecalPeriod {
		c.pos = 0
	}
	switch {
	case pos == 0:
		c.serialNs, c.parallelNs = 0, 0
		return false, true
	case pos < driverProbeSlots:
		return false, true
	case pos < 2*driverProbeSlots:
		return true, true
	case pos == 2*driverProbeSlots:
		c.serialSlotNs = c.serialNs / driverProbeSlots
		c.parallelSlotNs = c.parallelNs / driverProbeSlots
		c.useParallel = c.parallelNs < c.serialNs
		c.decided = true
		c.calibrations++
	}
	return c.useParallel, false
}

// planBatch is the batched analogue of driverForSlot: it decides the driver
// of the next slot and how many consecutive slots (at most want) that
// decision covers without crossing a probe-schedule boundary. Timed probe
// slots are always planned one at a time so their measurements stay
// per-slot, which keeps the calibration state byte-compatible with
// interleaved Step calls. For untimed sub-batches planBatch does NOT
// advance the window position — the caller credits the slots that actually
// ran via calAdvance, so a batch cut short by its stop condition leaves
// the probe schedule aligned with the slots executed.
func (e *Engine) planBatch(want int64) (parallel, timed bool, take int64) {
	if !e.cfg.Parallel || e.workers <= 1 {
		return false, false, want
	}
	if e.cfg.PinDriver {
		return true, false, want
	}
	c := &e.cal
	pos := c.pos
	switch {
	case pos == 0:
		c.serialNs, c.parallelNs = 0, 0
		c.pos++
		return false, true, 1
	case pos < driverProbeSlots:
		c.pos++
		return false, true, 1
	case pos < 2*driverProbeSlots:
		c.pos++
		return true, true, 1
	case pos == 2*driverProbeSlots:
		c.serialSlotNs = c.serialNs / driverProbeSlots
		c.parallelSlotNs = c.parallelNs / driverProbeSlots
		c.useParallel = c.parallelNs < c.serialNs
		c.decided = true
		c.calibrations++
	}
	take = int64(driverRecalPeriod - pos)
	if take > want {
		take = want
	}
	return c.useParallel, false, take
}

// calAdvance credits ran executed untimed slots to the calibration window
// position (probe slots advance inside planBatch).
func (e *Engine) calAdvance(ran int64) {
	if !e.cfg.Parallel || e.workers <= 1 || e.cfg.PinDriver {
		return
	}
	c := &e.cal
	c.pos += uint32(ran)
	if c.pos >= driverRecalPeriod {
		c.pos = 0
	}
}

// observePhaseCost folds one measured phase duration into the per-node
// cost EWMA feeding the chunk-sizing model.
func observePhaseCost(ewma *float64, elapsedNs float64, n int) {
	if n <= 0 {
		return
	}
	perNode := elapsedNs / float64(n)
	if *ewma <= 0 {
		*ewma = perNode
		return
	}
	*ewma += phaseCostEWMA * (perNode - *ewma)
}

// stepSerial is the sequential driver: every phase runs inline on the
// calling goroutine.
func (e *Engine) stepSerial() {
	slot := e.slot
	e.txScratch = e.txScratch[:0]
	for i, n := range e.nodes {
		if n.Tick(slot, &e.frames[i]) {
			e.frames[i].From = i
			e.txScratch = append(e.txScratch, i)
		}
	}
	receptions := e.evaluator.SlotReceptions(e.txScratch)
	for i, rec := range receptions {
		if rec.Sender >= 0 {
			e.nodes[i].Receive(slot, &e.frames[rec.Sender])
			e.stats.Receptions++
		}
	}
	e.finishSlot(slot, receptions)
}

// stepSerialProfiled is stepSerial with the per-phase wall clock folded
// into Config.Profile. The execution is identical to stepSerial — the only
// additions are the clock reads between phases.
//
//sinrlint:allow detrand phase-profiling instrumentation; timings are reported, never consulted by decisions
func (e *Engine) stepSerialProfiled() {
	p := e.prof
	slot := e.slot
	e.txScratch = e.txScratch[:0]
	t0 := time.Now()
	for i, n := range e.nodes {
		if n.Tick(slot, &e.frames[i]) {
			e.frames[i].From = i
			e.txScratch = append(e.txScratch, i)
		}
	}
	t1 := time.Now()
	receptions := e.evaluator.SlotReceptions(e.txScratch)
	t2 := time.Now()
	for i, rec := range receptions {
		if rec.Sender >= 0 {
			e.nodes[i].Receive(slot, &e.frames[rec.Sender])
			e.stats.Receptions++
		}
	}
	p.TickNs += int64(t1.Sub(t0))
	p.EvalNs += int64(t2.Sub(t1))
	p.RecvNs += int64(time.Since(t2))
	p.Slots++
	e.finishSlot(slot, receptions)
}

// stepParallel is the worker-pool driver: the whole slot runs inside one
// fused workpool session, so the helpers are woken at most once and the
// tick, evaluation-chunk and receive phases hand off through spin barriers.
// A parallel evaluator sharing the engine's pool joins the session
// transparently through Pool.Run; serial interludes (transmitter collection,
// evaluator preparation) run on the leader while the helpers wait.
//
//sinrlint:allow detrand chunk-calibration probes; EWMA phase costs size chunks, the slot outcome is bit-identical at any sizing
func (e *Engine) stepParallel() {
	slot := e.slot
	n := len(e.nodes)
	probing := e.cal.probing
	e.pool.Begin(e.workers)

	e.txScratch = e.txScratch[:0]
	e.tickSlot = slot
	var t0 time.Time
	if probing {
		t0 = time.Now()
	}
	e.pool.Run(n, phaseWorkersFor(e.cal.tickNsPerNode, n, e.workers), &e.tickTask)
	if probing {
		observePhaseCost(&e.cal.tickNsPerNode, float64(time.Since(t0)), n)
	}
	for i, sent := range e.sent {
		if sent {
			e.sent[i] = false
			e.frames[i].From = i
			e.txScratch = append(e.txScratch, i)
		}
	}

	receptions := e.evaluator.SlotReceptions(e.txScratch)

	if probing {
		t0 = time.Now()
	}
	e.stats.Receptions += e.receiveParallel(slot, receptions)
	if probing {
		observePhaseCost(&e.cal.recvNsPerNode, float64(time.Since(t0)), n)
	}
	e.pool.End()
	e.finishSlot(slot, receptions)
}

// stepParallelBatch runs up to take untimed parallel slots inside ONE fused
// workpool session: the helpers are woken at Begin, the phase barrier then
// advances through three phases per slot (tick, evaluation chunks, receive),
// and the helpers park again only at End. Everything serial — transmitter
// collection, evaluator preparation, stat counters, observers, the stop
// poll — runs on the leader between the parallel phases, in exact slot
// order, so the execution is bit-identical to stepParallel called take
// times; only the per-slot session wake/park is amortised away. stop is
// polled before every slot after the first (the caller polled before the
// batch); a batch cut short reports the slots that actually ran.
func (e *Engine) stepParallelBatch(take int64, stop func() bool) (ran int64, stopped bool) {
	n := len(e.nodes)
	e.pool.Begin(e.workers)
	for ran < take {
		slot := e.slot
		e.txScratch = e.txScratch[:0]
		e.tickSlot = slot
		e.pool.Run(n, phaseWorkersFor(e.cal.tickNsPerNode, n, e.workers), &e.tickTask)
		for i, sent := range e.sent {
			if sent {
				e.sent[i] = false
				e.frames[i].From = i
				e.txScratch = append(e.txScratch, i)
			}
		}
		receptions := e.evaluator.SlotReceptions(e.txScratch)
		e.stats.Receptions += e.receiveParallel(slot, receptions)
		e.finishSlot(slot, receptions)
		ran++
		if ran < take && stop != nil && stop() {
			stopped = true
			break
		}
	}
	e.pool.End()
	return ran, stopped
}

// stepParallelFaultsBatch is stepParallelBatch with the fault hook wired
// in: per slot it mirrors stepParallelFaults exactly — the hook's
// stochastic sections (SlotStart, PerturbTransmitters, FilterReceptions,
// panic draining) run on the leader between the parallel phases, in the
// same order — inside one shared session. Probe slots never batch, so the
// probing branches of stepParallelFaults are omitted.
func (e *Engine) stepParallelFaultsBatch(take int64, stop func() bool) (ran int64, stopped bool) {
	n := len(e.nodes)
	e.pool.Begin(e.workers)
	for ran < take {
		slot := e.slot
		e.inert = e.faults.SlotStart(slot, n)
		e.txScratch = e.txScratch[:0]
		e.tickSlot = slot
		e.pool.Run(n, phaseWorkersFor(e.cal.tickNsPerNode, n, e.workers), &e.tickTask)
		for i, sent := range e.sent {
			if sent {
				e.sent[i] = false
				e.frames[i].From = i
				e.txScratch = append(e.txScratch, i)
			}
		}
		e.realTx = len(e.txScratch)
		e.txScratch = e.faults.PerturbTransmitters(slot, e.txScratch)
		receptions := e.evaluator.SlotReceptions(e.txScratch)
		e.drainPanics(slot)
		e.faults.FilterReceptions(slot, receptions)
		e.stats.Receptions += e.receiveParallel(slot, receptions)
		e.drainPanics(slot)
		e.finishSlot(slot, receptions)
		ran++
		if ran < take && stop != nil && stop() {
			stopped = true
			break
		}
	}
	e.pool.End()
	return ran, stopped
}

// finishSlot applies the per-slot bookkeeping shared by both drivers. Under
// a fault hook only the real (pre-jammer) transmitters count as
// transmissions; observers still see the full perturbed transmit set.
func (e *Engine) finishSlot(slot int64, receptions []sinr.Reception) {
	tx := len(e.txScratch)
	if e.faults != nil {
		tx = e.realTx
	}
	e.stats.Transmissions += int64(tx)
	e.stats.Slots++
	for _, o := range e.observers {
		o.OnSlot(slot, e.txScratch, receptions)
	}
	e.slot++
}

// resolveWorkers derives the effective worker count from the configuration
// once; Step never consults GOMAXPROCS.
func (e *Engine) resolveWorkers() int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(e.nodes) {
		w = len(e.nodes)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// tickChunk is the parallel tick phase's loop body: nodes [lo, hi) record
// their transmission decision in the sent flags.
//
//sinrlint:hotpath
func (e *Engine) tickChunk(lo, hi, _ int) {
	slot := e.tickSlot
	for i := lo; i < hi; i++ {
		e.sent[i] = e.nodes[i].Tick(slot, &e.frames[i])
	}
}

// recvChunk is the parallel receive phase's loop body: receivers [lo, hi)
// take their deliveries, counting them into the worker's private subtotal.
//
//sinrlint:hotpath
func (e *Engine) recvChunk(lo, hi, worker int) {
	slot, rec := e.rxSlot, e.rxRec
	count := int64(0)
	for i := lo; i < hi; i++ {
		if s := rec[i].Sender; s >= 0 {
			e.nodes[i].Receive(slot, &e.frames[s])
			count++
		}
	}
	e.rxCounts[worker] = count
}

// receiveParallel delivers decoded frames on the worker pool and returns the
// number of successful decodes. Each chunk counts its own deliveries into a
// private subtotal, so the receptions slice is scanned exactly once and the
// sum is deterministic (integer addition over disjoint chunks).
func (e *Engine) receiveParallel(slot int64, receptions []sinr.Reception) int64 {
	for i := range e.rxCounts {
		e.rxCounts[i] = 0
	}
	e.rxSlot, e.rxRec = slot, receptions
	e.pool.Run(len(e.nodes), phaseWorkersFor(e.cal.recvNsPerNode, len(e.nodes), e.workers), &e.recvTask)
	e.rxRec = nil
	total := int64(0)
	for _, c := range e.rxCounts {
		total += c
	}
	return total
}

// Run simulates slots until stop returns true or maxSlots slots have been
// simulated, whichever comes first. It returns the number of slots
// simulated by this call and whether the stop condition was reached. stop
// is evaluated before each slot (so a condition that already holds
// simulates nothing) and may be nil to run exactly maxSlots slots.
//
// Run executes in micro-batches of Config.Batch slots (see RunBatch): on
// the parallel driver each micro-batch shares one fused workpool session.
// The execution — including exactly when stop is polled — is identical to
// calling Step in a loop at any batch size.
func (e *Engine) Run(maxSlots int64, stop func() bool) (int64, bool) {
	start := e.slot
	batch := int64(e.batch)
	for e.slot-start < maxSlots {
		want := maxSlots - (e.slot - start)
		if want > batch {
			want = batch
		}
		if _, stopped := e.runBatch(want, stop); stopped {
			return e.slot - start, true
		}
	}
	return e.slot - start, stop != nil && stop()
}

// RunBatch simulates up to b slots as one micro-batch: on the parallel
// driver the batch runs inside a single fused workpool session (helpers
// woken once, the phase barrier advancing through 3·b phases), with the
// adaptive probe consulted once per sub-batch instead of per slot.
// Observers, fault hooks and stat counters fire per slot in exact slot
// order, so the execution is bit-identical to b calls of Step; only wall
// clock differs. It returns the number of slots simulated (b, unless
// b <= 0). Calls between RunBatch/Run invocations — ApplyEpoch, Reset —
// always see a flushed batch.
func (e *Engine) RunBatch(b int) int64 {
	if b <= 0 {
		return 0
	}
	ran, _ := e.runBatch(int64(b), nil)
	return ran
}

// endBatch closes the batch re-entry guard (deferred by runBatch so the
// guard clears even when a node or observer panics out of the batch).
func (e *Engine) endBatch() { e.inBatch = false }

// runBatch executes up to want slots in probe-schedule-aligned sub-batches:
// timed calibration probes run one slot at a time with exactly Step's
// timing, untimed stretches run as fused multi-slot sessions (parallel
// driver) or plain loops (sequential driver). stop is polled once before
// every slot, matching the slot-at-a-time Run loop poll for poll.
func (e *Engine) runBatch(want int64, stop func() bool) (int64, bool) {
	if e.inBatch {
		panic("sim: Run/RunBatch called from inside a running batch")
	}
	e.inBatch = true
	defer e.endBatch()
	var done int64
	for done < want {
		if stop != nil && stop() {
			return done, true
		}
		parallel, timed, take := e.planBatch(want - done)
		switch {
		case timed:
			e.cal.probing = parallel
			start := time.Now() //sinrlint:allow detrand driver-probe timing; feeds only the serial/parallel choice between bit-identical drivers
			e.stepOnce(parallel)
			elapsed := float64(time.Since(start)) //sinrlint:allow detrand driver-probe timing
			e.cal.probing = false
			if parallel {
				e.cal.parallelNs += elapsed
			} else {
				e.cal.serialNs += elapsed
			}
			done++
		case parallel:
			var ran int64
			var stopped bool
			if e.faults != nil {
				ran, stopped = e.stepParallelFaultsBatch(take, stop)
			} else {
				ran, stopped = e.stepParallelBatch(take, stop)
			}
			e.calAdvance(ran)
			done += ran
			if stopped {
				return done, true
			}
		default:
			var ran int64
			for ran < take {
				e.stepOnce(false)
				ran++
				if ran < take && stop != nil && stop() {
					e.calAdvance(ran)
					return done + ran, true
				}
			}
			e.calAdvance(ran)
			done += ran
		}
	}
	return done, false
}
