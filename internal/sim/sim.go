// Package sim provides the synchronous, slotted simulation engine that
// drives protocol automata over the SINR channel.
//
// Time proceeds in discrete slots. In every slot the engine
//
//  1. asks every node automaton whether it transmits a frame (Tick),
//  2. evaluates the SINR reception predicate at every listening node
//     through the configured sinr.ChannelEvaluator (the naive reference
//     scan by default, the fast arena/grid engine via Config.Evaluator), and
//  3. delivers the decoded frame, if any, to each receiver (Receive).
//
// Node automata never see positions, the set of transmitters, or other
// nodes' state: all coordination happens through transmitted frames, as in
// the paper's model. The engine supports both a sequential driver and a
// goroutine-per-worker parallel driver; both produce identical executions
// for well-behaved (share-nothing) nodes.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// Frame is one physical-layer frame occupying one slot on the channel.
// Protocols define their own Kind values and payload types.
type Frame struct {
	// From is the sender's node id. The engine fills it in on transmission,
	// so protocols do not need to set it.
	From int
	// Kind distinguishes protocol frame types (e.g. "data", "label", "ack").
	Kind string
	// Payload carries protocol-specific data. Frames are passed by pointer
	// but must be treated as immutable once handed to the engine.
	Payload interface{}
}

// Node is a per-node protocol automaton.
//
// Implementations must confine their state to the single node: the engine
// may invoke different nodes' methods concurrently (never the same node's),
// so sharing mutable state between Node instances is a data race.
type Node interface {
	// Init is called exactly once before the first slot with the node's id
	// and a private random source.
	Init(id int, src *rng.Source)
	// Tick is called once per slot. Returning a non-nil frame transmits it
	// during this slot; returning nil listens.
	Tick(slot int64) *Frame
	// Receive is called after Tick in the same slot if the node decoded a
	// frame. A node that transmitted in this slot never receives
	// (half-duplex).
	Receive(slot int64, f *Frame)
}

// Observer is notified after every simulated slot. Observers are used by
// experiments and the spec checker to collect traces without perturbing the
// protocols.
type Observer interface {
	// OnSlot is called once per slot with the transmitting node ids and the
	// per-node reception outcome (indexed by node id, Sender == -1 when
	// nothing was decoded). Both slices are only valid for the duration of
	// the call: fast evaluators reuse the receptions slice as scratch for
	// the next slot, and the engine reuses the transmitter slice. Observers
	// that retain either must copy.
	OnSlot(slot int64, transmitters []int, receptions []sinr.Reception)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(slot int64, transmitters []int, receptions []sinr.Reception)

// OnSlot implements Observer.
func (f ObserverFunc) OnSlot(slot int64, transmitters []int, receptions []sinr.Reception) {
	f(slot, transmitters, receptions)
}

// Config controls engine construction.
type Config struct {
	// Seed seeds the per-node random sources. Identical seeds and nodes
	// reproduce identical executions.
	Seed uint64
	// Parallel selects the goroutine-per-worker driver. The execution is
	// identical to the sequential driver; only wall-clock time differs.
	Parallel bool
	// Workers bounds the number of worker goroutines used by the parallel
	// driver and by a parallel channel evaluator. Zero means GOMAXPROCS.
	Workers int
	// Evaluator selects the SINR slot evaluator. Nil means the channel
	// itself (the naive reference path); pass sinr.NewFastChannel(channel)
	// to select the arena-backed parallel engine. The evaluator must be
	// built over the same deployment as the channel. If it implements
	// sinr.ParallelEvaluator, the engine wires its worker count into it.
	//
	// Fast evaluators reuse their Reception slice across slots, so observers
	// registered on an engine with a non-nil Evaluator must copy the slice
	// if they retain it beyond the OnSlot call.
	Evaluator sinr.ChannelEvaluator
}

// Engine drives a set of node automata over an SINR channel.
type Engine struct {
	channel   *sinr.Channel
	evaluator sinr.ChannelEvaluator
	nodes     []Node
	observers []Observer
	cfg       Config

	slot      int64
	stats     Stats
	frames    []*Frame // scratch: per-node frame transmitted this slot
	txScratch []int
	rxCounts  []int64 // scratch: per-chunk reception subtotals (parallel driver)
}

// Stats accumulates aggregate counters over an execution.
type Stats struct {
	// Slots is the number of slots simulated so far.
	Slots int64
	// Transmissions counts frames put on the channel.
	Transmissions int64
	// Receptions counts successful decodes.
	Receptions int64
}

// NewEngine returns an engine over the given channel and nodes. The number
// of nodes must match the channel's deployment size.
func NewEngine(channel *sinr.Channel, nodes []Node, cfg Config) (*Engine, error) {
	if channel == nil {
		return nil, fmt.Errorf("sim: nil channel")
	}
	if len(nodes) != channel.NumNodes() {
		return nil, fmt.Errorf("sim: %d nodes for a %d-node deployment", len(nodes), channel.NumNodes())
	}
	evaluator := cfg.Evaluator
	if evaluator == nil {
		evaluator = channel
	}
	if evaluator.NumNodes() != channel.NumNodes() {
		return nil, fmt.Errorf("sim: evaluator over %d nodes for a %d-node deployment",
			evaluator.NumNodes(), channel.NumNodes())
	}
	if wrapped, ok := evaluator.(interface{ Channel() *sinr.Channel }); ok && wrapped.Channel() != channel {
		return nil, fmt.Errorf("sim: evaluator wraps a different channel than the engine's")
	}
	e := &Engine{
		channel:   channel,
		evaluator: evaluator,
		nodes:     nodes,
		cfg:       cfg,
		frames:    make([]*Frame, len(nodes)),
	}
	if pe, ok := evaluator.(sinr.ParallelEvaluator); ok {
		pe.SetWorkers(e.workerCount())
	}
	master := rng.New(cfg.Seed)
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("sim: node %d is nil", i)
		}
		n.Init(i, master.SplitLabeled(uint64(i)))
	}
	return e, nil
}

// Reset rewinds the engine to slot zero over a fresh set of node automata,
// reusing the engine's channel, evaluator and scratch storage (frame and
// transmitter slices) instead of reallocating them. The node count must
// match the deployment. Observers are dropped; callers re-register the ones
// the new execution needs.
//
// Reset re-seeds the per-node random sources exactly as NewEngine does, so
// an engine that is Reset with the same nodes and seed replays the identical
// execution a fresh engine would produce — this is what lets the experiment
// scheduler run many trials on one engine without repaying its fixed costs.
// Mutable per-execution state inside the evaluator (scratch arenas, lazy
// power-column caches) is keyed only to the immutable deployment, so it
// carries over safely.
func (e *Engine) Reset(nodes []Node, seed uint64) error {
	if len(nodes) != len(e.nodes) {
		return fmt.Errorf("sim: Reset with %d nodes on a %d-node engine", len(nodes), len(e.nodes))
	}
	for i, n := range nodes {
		if n == nil {
			return fmt.Errorf("sim: node %d is nil", i)
		}
	}
	e.nodes = nodes
	e.observers = e.observers[:0]
	e.slot = 0
	e.stats = Stats{}
	e.txScratch = e.txScratch[:0]
	for i := range e.frames {
		e.frames[i] = nil
	}
	e.cfg.Seed = seed
	master := rng.New(seed)
	for i, n := range nodes {
		n.Init(i, master.SplitLabeled(uint64(i)))
	}
	return nil
}

// AddObserver registers an observer invoked after every slot, in
// registration order.
func (e *Engine) AddObserver(o Observer) {
	e.observers = append(e.observers, o)
}

// Slot returns the number of the next slot to be simulated (equivalently,
// the number of slots already simulated).
func (e *Engine) Slot() int64 { return e.slot }

// Stats returns the aggregate counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Channel returns the engine's SINR channel.
func (e *Engine) Channel() *sinr.Channel { return e.channel }

// Evaluator returns the slot evaluator the engine runs on: the channel
// itself unless Config.Evaluator selected another path.
func (e *Engine) Evaluator() sinr.ChannelEvaluator { return e.evaluator }

// Node returns the automaton with the given id. It is intended for tests
// and for layering higher-level protocols on top of MAC automata.
func (e *Engine) Node(id int) Node { return e.nodes[id] }

// Step simulates exactly one slot.
func (e *Engine) Step() {
	slot := e.slot

	// Phase 1: collect transmission decisions.
	if e.cfg.Parallel {
		e.tickParallel(slot)
	} else {
		for i, n := range e.nodes {
			e.frames[i] = n.Tick(slot)
		}
	}
	e.txScratch = e.txScratch[:0]
	for i, f := range e.frames {
		if f != nil {
			f.From = i
			e.txScratch = append(e.txScratch, i)
		}
	}

	// Phase 2: channel evaluation.
	receptions := e.evaluator.SlotReceptions(e.txScratch)

	// Phase 3: deliveries.
	if e.cfg.Parallel {
		e.stats.Receptions += e.receiveParallel(slot, receptions)
	} else {
		for i, rec := range receptions {
			if rec.Sender >= 0 {
				e.nodes[i].Receive(slot, e.frames[rec.Sender])
				e.stats.Receptions++
			}
		}
	}

	e.stats.Transmissions += int64(len(e.txScratch))
	e.stats.Slots++
	for _, o := range e.observers {
		o.OnSlot(slot, e.txScratch, receptions)
	}
	e.slot++
}

func (e *Engine) workerCount() int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(e.nodes) {
		w = len(e.nodes)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (e *Engine) tickParallel(slot int64) {
	workers := e.workerCount()
	var wg sync.WaitGroup
	chunk := (len(e.nodes) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(e.nodes) {
			hi = len(e.nodes)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e.frames[i] = e.nodes[i].Tick(slot)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// receiveParallel delivers decoded frames on the worker pool and returns the
// number of successful decodes. Each chunk counts its own deliveries into a
// private subtotal, so the receptions slice is scanned exactly once and the
// sum is deterministic (integer addition over disjoint chunks).
func (e *Engine) receiveParallel(slot int64, receptions []sinr.Reception) int64 {
	workers := e.workerCount()
	var wg sync.WaitGroup
	chunk := (len(e.nodes) + workers - 1) / workers
	if cap(e.rxCounts) < workers {
		e.rxCounts = make([]int64, workers)
	}
	subtotals := e.rxCounts[:workers]
	for i := range subtotals {
		subtotals[i] = 0
	}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(e.nodes) {
			hi = len(e.nodes)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, w int) {
			defer wg.Done()
			count := int64(0)
			for i := lo; i < hi; i++ {
				if s := receptions[i].Sender; s >= 0 {
					e.nodes[i].Receive(slot, e.frames[s])
					count++
				}
			}
			subtotals[w] = count
		}(lo, hi, w)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range subtotals {
		total += c
	}
	return total
}

// Run simulates slots until stop returns true or maxSlots slots have been
// simulated, whichever comes first. It returns the number of slots
// simulated by this call and whether the stop condition was reached. stop
// is evaluated before each slot (so a condition that already holds
// simulates nothing) and may be nil to run exactly maxSlots slots.
func (e *Engine) Run(maxSlots int64, stop func() bool) (int64, bool) {
	start := e.slot
	for e.slot-start < maxSlots {
		if stop != nil && stop() {
			return e.slot - start, true
		}
		e.Step()
	}
	return e.slot - start, stop != nil && stop()
}
