package sim

// Tests for batched multi-slot execution (Run/RunBatch): bit-identity to
// the slot-at-a-time Step loop across batch sizes, drivers, fault plans and
// churn epochs; per-slot observer/hook ordering; stop polls inside a
// micro-batch; and the mid-batch flush guards.

import (
	"fmt"
	"testing"

	"sinrmac/internal/geom"
	"sinrmac/internal/sinr"
)

// crashJamHook is a minimal deterministic crash+jam FaultHook, hand-rolled
// because internal/fault imports this package. Node 0 crash-stops at
// crashSlot (inert, receptions scrubbed), and the highest-id node jams
// every third slot (injected transmitter, its decodes scrubbed).
type crashJamHook struct {
	crashSlot int64
	n         int     // deployment size, tracked per slot (follows churn)
	inert     []bool  // reused SlotStart bitmap
	slots     []int64 // SlotStart call order, for the ordering property
}

func (h *crashJamHook) SlotStart(slot int64, n int) []bool {
	h.n = n
	h.slots = append(h.slots, slot)
	if slot < h.crashSlot {
		return nil
	}
	if cap(h.inert) < n {
		h.inert = make([]bool, n)
	}
	h.inert = h.inert[:n]
	for i := range h.inert {
		h.inert[i] = false
	}
	h.inert[0] = true
	return h.inert
}

func (h *crashJamHook) PerturbTransmitters(slot int64, tx []int) []int {
	if slot%3 != 0 {
		return tx
	}
	jam := h.n - 1
	for _, id := range tx {
		if id == jam {
			return tx
		}
	}
	return append(tx, jam)
}

func (h *crashJamHook) FilterReceptions(slot int64, recs []sinr.Reception) {
	if slot >= h.crashSlot && recs[0].Sender >= 0 {
		recs[0].Sender = -1
	}
	if slot%3 == 0 {
		jam := h.n - 1
		for i := range recs {
			if recs[i].Sender == jam {
				recs[i].Sender = -1
			}
		}
	}
}

func (h *crashJamHook) DeliverFrame(slot int64, node int, f *Frame) *Frame { return f }

func (h *crashJamHook) NodePanicked(slot int64, node int, phase string, value interface{}, stack []byte) {
}

func (h *crashJamHook) EpochApplied(delta *sinr.EpochDelta) {}

func (h *crashJamHook) Reset() { h.slots = h.slots[:0]; h.n = 0 }

// batchTraceRow is one slot as an observer saw it.
type batchTraceRow struct {
	slot    int64
	engSlot int64 // Engine.Slot() at callback time
	tx      []int
	senders []int
}

// batchChurnSchedule builds the three-epoch delta schedule used by the
// bit-identity suite over an n-node lattice: a move epoch, a swap-remove
// plus add epoch, and a pure shrink.
func batchChurnSchedule(n int) []*sinr.EpochDelta {
	pos := latticePositions(n)
	schedule := make([]*sinr.EpochDelta, 0, 3)
	p1 := append([]geom.Point(nil), pos...)
	p1[3] = geom.Point{X: p1[3].X + 0.7, Y: 0.5}
	p1[7] = geom.Point{X: p1[7].X - 0.6, Y: -0.4}
	schedule = append(schedule, &sinr.EpochDelta{OldN: n, NewN: n, Dirty: []int{3, 7}, Positions: p1})
	p2 := append([]geom.Point(nil), p1...)
	p2[5] = p2[n-1]
	p2 = p2[:n-1]
	p2 = append(p2, geom.Point{X: -2, Y: 2})
	schedule = append(schedule, &sinr.EpochDelta{
		OldN: n, NewN: n, Dirty: []int{5, n - 1},
		Relabels: []sinr.Relabel{{From: n - 1, To: 5}},
		Added:    []int{n - 1}, Removed: 1, Positions: p2,
	})
	p3 := append([]geom.Point(nil), p2...)
	p3 = p3[:n-1]
	schedule = append(schedule, &sinr.EpochDelta{OldN: n, NewN: n - 1, Removed: 1, Positions: p3})
	return schedule
}

// batchTraceRun executes the fixed three-leg churn scenario (40 slots per
// leg, an epoch applied between legs) and returns the full per-slot trace.
// batch < 0 drives the engine slot-at-a-time via Step — the reference
// execution; otherwise the legs run through Run with Config.Batch = batch.
func batchTraceRun(t *testing.T, n int, cfg Config, fast, faults bool, batch int) ([]batchTraceRow, Stats) {
	t.Helper()
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), latticePositions(n))
	if err != nil {
		t.Fatal(err)
	}
	if fast {
		cfg.Evaluator = sinr.NewFastChannel(ch)
	}
	if faults {
		cfg.Faults = &crashJamHook{crashSlot: 25}
	}
	if batch >= 0 {
		cfg.Batch = batch
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.2}
	}
	eng, err := NewEngine(ch, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trace []batchTraceRow
	eng.AddObserver(ObserverFunc(func(slot int64, tx []int, recs []sinr.Reception) {
		row := batchTraceRow{slot: slot, engSlot: eng.Slot(), tx: append([]int(nil), tx...)}
		row.senders = make([]int, len(recs))
		for j, rec := range recs {
			row.senders[j] = rec.Sender
		}
		trace = append(trace, row)
	}))
	leg := func(slots int64) {
		if batch < 0 {
			for i := int64(0); i < slots; i++ {
				eng.Step()
			}
			return
		}
		if ran, _ := eng.Run(slots, nil); ran != slots {
			t.Fatalf("Run ran %d slots, want %d", ran, slots)
		}
	}
	leg(40)
	for _, delta := range batchChurnSchedule(n) {
		if err := eng.ApplyEpoch(delta, func(id int) Node { return &randomNode{p: 0.2} }); err != nil {
			t.Fatal(err)
		}
		leg(40)
	}
	return trace, eng.Stats()
}

// TestRunBatchBitIdentity pins the batching contract: Run at batch sizes
// {1, 7, 64} produces executions bit-identical to the slot-at-a-time Step
// loop, across the sequential / pinned-fused / adaptive drivers, both
// evaluator families, with and without a crash+jam fault plan, and with
// mid-run ApplyEpoch flushes between Run legs.
func TestRunBatchBitIdentity(t *testing.T) {
	const n = 24
	drivers := []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Seed: engineSeed, Workers: 1}},
		{"fused4", Config{Seed: engineSeed, Parallel: true, PinDriver: true, Workers: 4}},
		{"adaptive4", Config{Seed: engineSeed, Parallel: true, Workers: 4}},
	}
	for _, fast := range []bool{false, true} {
		for _, faults := range []bool{false, true} {
			for _, drv := range drivers {
				name := fmt.Sprintf("fast=%v/faults=%v/%s", fast, faults, drv.name)
				t.Run(name, func(t *testing.T) {
					refTrace, refStats := batchTraceRun(t, n, drv.cfg, fast, faults, -1)
					for _, batch := range []int{1, 7, 64} {
						trace, stats := batchTraceRun(t, n, drv.cfg, fast, faults, batch)
						if stats != refStats {
							t.Fatalf("batch=%d: stats diverged: %+v vs %+v", batch, stats, refStats)
						}
						if len(trace) != len(refTrace) {
							t.Fatalf("batch=%d: %d slots traced, want %d", batch, len(trace), len(refTrace))
						}
						for i := range trace {
							got, want := trace[i], refTrace[i]
							if got.slot != want.slot || got.engSlot != want.engSlot {
								t.Fatalf("batch=%d slot %d: observed slot=%d engSlot=%d, want slot=%d engSlot=%d",
									batch, i, got.slot, got.engSlot, want.slot, want.engSlot)
							}
							if len(got.tx) != len(want.tx) {
								t.Fatalf("batch=%d slot %d: %d transmitters, want %d", batch, i, len(got.tx), len(want.tx))
							}
							for j := range got.tx {
								if got.tx[j] != want.tx[j] {
									t.Fatalf("batch=%d slot %d: tx[%d]=%d, want %d", batch, i, j, got.tx[j], want.tx[j])
								}
							}
							for j := range got.senders {
								if got.senders[j] != want.senders[j] {
									t.Fatalf("batch=%d slot %d node %d: decoded %d, want %d",
										batch, i, j, got.senders[j], want.senders[j])
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestBatchObserverOrdering is the observer-semantics property test: every
// observer and the fault hook see each slot exactly once, in slot order,
// observers fire in registration order within a slot, and Engine.Slot() is
// consistent (== the slot being finished) at callback time — across batch
// sizes {1, 7, 64} and both drivers, under a crash+jam fault plan.
func TestBatchObserverOrdering(t *testing.T) {
	const n, slots = 32, 100
	drivers := []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Seed: engineSeed, Workers: 1}},
		{"fused4", Config{Seed: engineSeed, Parallel: true, PinDriver: true, Workers: 4}},
	}
	for _, drv := range drivers {
		for _, batch := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/batch=%d", drv.name, batch), func(t *testing.T) {
				ch, err := sinr.NewChannel(sinr.DefaultParams(10), latticePositions(n))
				if err != nil {
					t.Fatal(err)
				}
				hook := &crashJamHook{crashSlot: 20}
				cfg := drv.cfg
				cfg.Batch = batch
				cfg.Faults = hook
				nodes := make([]Node, n)
				for i := range nodes {
					nodes[i] = &randomNode{p: 0.2}
				}
				eng, err := NewEngine(ch, nodes, cfg)
				if err != nil {
					t.Fatal(err)
				}
				// firings records (observer id, slot) in callback order; the
				// Slot() consistency check runs inside the callbacks.
				type firing struct {
					obs  int
					slot int64
				}
				var firings []firing
				for obs := 0; obs < 2; obs++ {
					id := obs
					eng.AddObserver(ObserverFunc(func(slot int64, tx []int, recs []sinr.Reception) {
						if got := eng.Slot(); got != slot {
							t.Errorf("observer %d at slot %d: Engine.Slot() = %d", id, slot, got)
						}
						firings = append(firings, firing{id, slot})
					}))
				}
				if ran, _ := eng.Run(slots, nil); ran != slots {
					t.Fatalf("ran %d slots, want %d", ran, slots)
				}
				if len(firings) != 2*slots {
					t.Fatalf("%d observer firings, want %d", len(firings), 2*slots)
				}
				for i, f := range firings {
					wantObs, wantSlot := i%2, int64(i/2)
					if f.obs != wantObs || f.slot != wantSlot {
						t.Fatalf("firing %d = observer %d slot %d, want observer %d slot %d",
							i, f.obs, f.slot, wantObs, wantSlot)
					}
				}
				if len(hook.slots) != slots {
					t.Fatalf("hook saw %d slots, want %d", len(hook.slots), slots)
				}
				for i, s := range hook.slots {
					if s != int64(i) {
						t.Fatalf("hook SlotStart %d fired for slot %d", i, s)
					}
				}
			})
		}
	}
}

// TestRunBatchStopsWithinBatch pins the graceful-shutdown property behind
// the -batch flags: the stop condition is polled before every slot even
// inside an open micro-batch, so Run halts within the batch the condition
// fires in — not at its boundary.
func TestRunBatchStopsWithinBatch(t *testing.T) {
	for _, drv := range []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Seed: 1, Batch: 64}},
		{"fused", Config{Seed: 1, Batch: 64, Parallel: true, PinDriver: true, Workers: 2}},
	} {
		t.Run(drv.name, func(t *testing.T) {
			ch := twoNodeChannel(t, 5)
			sender := &beaconNode{period: 1, offset: 0}
			listener := &beaconNode{}
			eng, err := NewEngine(ch, []Node{sender, listener}, drv.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ran, stopped := eng.Run(100, func() bool { return len(listener.received) >= 3 })
			if ran != 3 || !stopped {
				t.Fatalf("Run = (%d, %v), want (3, true): stop must take effect mid-batch", ran, stopped)
			}
		})
	}
}

// TestBatchFlushGuards pins the flush contract: state mutations and engine
// re-entry from an observer inside an open batch are rejected (error for
// ApplyEpoch/Reset, panic for Step/Run), while the same calls between
// Run/RunBatch invocations — the natural flush points — succeed.
func TestBatchFlushGuards(t *testing.T) {
	const n = 8
	ch, err := sinr.NewChannel(sinr.DefaultParams(10), latticePositions(n))
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &randomNode{p: 0.2}
	}
	eng, err := NewEngine(ch, nodes, Config{Seed: 1, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	var applyErr, resetErr error
	var stepPanic, runPanic interface{}
	probed := false
	eng.AddObserver(ObserverFunc(func(slot int64, tx []int, recs []sinr.Reception) {
		if slot != 2 || probed {
			return
		}
		probed = true
		applyErr = eng.ApplyEpoch(&sinr.EpochDelta{}, nil)
		resetErr = eng.Reset(make([]Node, n), 1)
		func() {
			defer func() { stepPanic = recover() }()
			eng.Step()
		}()
		func() {
			defer func() { runPanic = recover() }()
			eng.Run(1, nil)
		}()
	}))
	if got := eng.RunBatch(8); got != 8 {
		t.Fatalf("RunBatch ran %d slots, want 8", got)
	}
	if !probed {
		t.Fatal("observer never probed the guards")
	}
	if applyErr == nil {
		t.Error("ApplyEpoch inside a batch succeeded, want error")
	}
	if resetErr == nil {
		t.Error("Reset inside a batch succeeded, want error")
	}
	if stepPanic == nil {
		t.Error("Step inside a batch did not panic")
	}
	if runPanic == nil {
		t.Error("Run inside a batch did not panic")
	}
	// Between batches the engine is flushed: Reset succeeds and replays.
	fresh := make([]Node, n)
	for i := range fresh {
		fresh[i] = &randomNode{p: 0.2}
	}
	if err := eng.Reset(fresh, 1); err != nil {
		t.Fatalf("Reset between batches failed: %v", err)
	}
	if got := eng.RunBatch(4); got != 4 {
		t.Fatalf("RunBatch after Reset ran %d slots, want 4", got)
	}
}

// TestRunBatchAllocFree pins the steady-state allocation contract for the
// batched path on both drivers: after warm-up, a 64-slot micro-batch
// allocates nothing.
func TestRunBatchAllocFree(t *testing.T) {
	for _, drv := range []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Seed: engineSeed, Workers: 1, Batch: 64}},
		{"fused4", Config{Seed: engineSeed, Parallel: true, PinDriver: true, Workers: 4, Batch: 64}},
	} {
		t.Run(drv.name, func(t *testing.T) {
			_, eng := buildScenario(t, 64, 7, true, drv.cfg)
			eng.RunBatch(256) // warm up scratch growth
			allocs := testing.AllocsPerRun(20, func() { eng.RunBatch(64) })
			if allocs != 0 {
				t.Fatalf("RunBatch allocated %.1f times per 64-slot batch, want 0", allocs)
			}
		})
	}
}
