package sim

import (
	"testing"
	"time"

	"sinrmac/internal/geom"
	"sinrmac/internal/rng"
	"sinrmac/internal/sinr"
)

// TestEngineStepBothDrivers is the engine-step smoke the CI race job runs:
// a few slots under the sequential driver, the pinned fused parallel driver
// and the adaptive crossover must produce identical executions (stats and
// per-node counters), with the fast evaluator sharing the engine's pool.
func TestEngineStepBothDrivers(t *testing.T) {
	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"serial", Config{Seed: engineSeed}},
		{"parallel-pinned", Config{Seed: engineSeed, Parallel: true, Workers: 4, PinDriver: true}},
		{"parallel-adaptive", Config{Seed: engineSeed, Parallel: true, Workers: 4}},
		{"parallel-gomaxprocs", Config{Seed: engineSeed, Parallel: true}},
	}
	var refNodes []*randomNode
	var refStats Stats
	for i, v := range variants {
		nodes, eng := buildScenario(t, 80, 7, true, v.cfg)
		// Run past at least one full calibration window so the adaptive
		// variant exercises probe slots, the decision and regular slots.
		eng.Run(3*driverProbeSlots, nil)
		if i == 0 {
			refNodes, refStats = nodes, eng.Stats()
			continue
		}
		if eng.Stats() != refStats {
			t.Fatalf("%s: stats %+v diverged from serial %+v", v.name, eng.Stats(), refStats)
		}
		for j := range nodes {
			if nodes[j].sent != refNodes[j].sent || nodes[j].received != refNodes[j].received {
				t.Fatalf("%s: node %d sent=%d recv=%d, serial says sent=%d recv=%d",
					v.name, j, nodes[j].sent, nodes[j].received, refNodes[j].sent, refNodes[j].received)
			}
		}
	}
}

// TestDriverCrossoverCalibrates drives the adaptive crossover through its
// probe window and checks the decision machinery: both drivers get timed,
// a decision is recorded, and the driver reported by DriverStats is the
// measured-cheaper one.
func TestDriverCrossoverCalibrates(t *testing.T) {
	_, eng := buildScenario(t, 120, 11, true, Config{Seed: engineSeed, Parallel: true, Workers: 2})
	eng.Run(2*driverProbeSlots+2, nil)
	st := eng.DriverStats()
	if st.Calibrations != 1 {
		t.Fatalf("calibrations = %d after the first window, want 1", st.Calibrations)
	}
	if st.SerialSlotNs <= 0 || st.ParallelSlotNs <= 0 {
		t.Fatalf("probe means not recorded: serial=%v parallel=%v", st.SerialSlotNs, st.ParallelSlotNs)
	}
	if want := st.ParallelSlotNs < st.SerialSlotNs; st.Parallel != want {
		t.Fatalf("driver choice %v contradicts measurements (serial=%v parallel=%v)",
			st.Parallel, st.SerialSlotNs, st.ParallelSlotNs)
	}
	if st.TickNsPerNode <= 0 || st.RecvNsPerNode <= 0 {
		t.Fatalf("phase costs not measured: tick=%v recv=%v", st.TickNsPerNode, st.RecvNsPerNode)
	}
	if st.TickWorkers < 1 || st.TickWorkers > 2 || st.RecvWorkers < 1 || st.RecvWorkers > 2 {
		t.Fatalf("phase workers out of range: tick=%d recv=%d", st.TickWorkers, st.RecvWorkers)
	}
}

// TestDriverStatsPinnedAndSerial pins down DriverStats on the
// non-adaptive configurations: a pinned-parallel engine always reports the
// parallel driver and never calibrates; a sequential engine reports
// neither.
func TestDriverStatsPinnedAndSerial(t *testing.T) {
	_, pinned := buildScenario(t, 60, 3, true, Config{Seed: engineSeed, Parallel: true, Workers: 4, PinDriver: true})
	pinned.Run(40, nil)
	if st := pinned.DriverStats(); !st.Parallel || st.Calibrations != 0 {
		t.Fatalf("pinned engine stats = %+v, want Parallel with zero calibrations", st)
	}
	_, serial := buildScenario(t, 60, 3, true, Config{Seed: engineSeed})
	serial.Run(40, nil)
	if st := serial.DriverStats(); st.Parallel || st.Calibrations != 0 {
		t.Fatalf("sequential engine stats = %+v, want no parallel driver", st)
	}
}

// TestResetClearsCalibration: a Reset engine re-measures from scratch, so a
// replay is bit-reproducible including its probe schedule.
func TestResetClearsCalibration(t *testing.T) {
	nodes, eng := buildScenario(t, 60, 3, true, Config{Seed: engineSeed, Parallel: true, Workers: 2})
	eng.Run(3*driverProbeSlots, nil)
	if st := eng.DriverStats(); st.Calibrations != 1 {
		t.Fatalf("calibrations = %d before Reset, want 1", st.Calibrations)
	}
	ifaces := make([]Node, len(nodes))
	for i := range nodes {
		fresh := &randomNode{p: 0.2}
		nodes[i] = fresh
		ifaces[i] = fresh
	}
	if err := eng.Reset(ifaces, engineSeed); err != nil {
		t.Fatal(err)
	}
	if st := eng.DriverStats(); st.Calibrations != 0 || st.SerialSlotNs != 0 {
		t.Fatalf("DriverStats after Reset = %+v, want zeroed calibration", st)
	}
}

// TestPhaseWorkersModel checks the chunk-sizing model's invariants as pure
// properties over randomized measured costs: the worker count stays in
// [1, max], and whenever the model splits at all (1 < w), every predicted
// chunk cost lands in the documented band [minPhaseChunkNs, 2·minPhaseChunkNs)
// — except when capped at max workers, where only the lower bound applies.
func TestPhaseWorkersModel(t *testing.T) {
	src := rng.New(0xc0de)
	for i := 0; i < 5000; i++ {
		nsPerNode := src.Float64() * 1000
		n := 1 + src.Intn(20000)
		max := 1 + src.Intn(16)
		w := phaseWorkersFor(nsPerNode, n, max)
		if w < 1 || w > max {
			t.Fatalf("phaseWorkersFor(%v, %d, %d) = %d out of [1, %d]", nsPerNode, n, max, w, max)
		}
		if w <= 1 {
			continue
		}
		chunk := (n + w - 1) / w
		perChunk := nsPerNode * float64(chunk)
		if perChunk < minPhaseChunkNs {
			t.Fatalf("nsPerNode=%v n=%d max=%d: w=%d predicts %.0fns per chunk, below the %v floor",
				nsPerNode, n, max, w, perChunk, minPhaseChunkNs)
		}
		if w < max {
			// Uncapped: w = floor(total/floor), so total < (w+1)·floor and
			// the mean chunk cost stays below 2× the floor; the ceil-chunk
			// at most doubles that for tiny n, so bound the mean instead.
			if mean := nsPerNode * float64(n) / float64(w); mean >= 2*minPhaseChunkNs {
				t.Fatalf("nsPerNode=%v n=%d max=%d: w=%d mean chunk cost %.0fns ≥ 2×floor",
					nsPerNode, n, max, w, mean)
			}
		}
	}
	// Boundary cases.
	if w := phaseWorkersFor(0, 1000, 8); w != 8 {
		t.Fatalf("unmeasured phase uses %d workers, want all 8", w)
	}
	if w := phaseWorkersFor(100, 1000, 1); w != 1 {
		t.Fatalf("max=1 yields %d workers", w)
	}
}

// TestDriverCalibrationWithinFactor is the measured half of the
// chunk-sizing property: on randomized deployments the per-slot cost the
// calibrator recorded must stay within a documented factor (16×, generous
// because CI machines are noisy and slots are microseconds) of a cost
// re-measured directly around Step. The comparison uses the median of
// several fresh windows so one descheduling hiccup cannot fail the test.
func TestDriverCalibrationWithinFactor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	const factor = 16.0
	src := rng.New(0xbea7)
	for c := 0; c < 3; c++ {
		n := 150 + int(src.Intn(300))
		_, eng := buildScenario(t, n, 13+uint64(c), true, Config{Seed: engineSeed, Parallel: true, Workers: 2})
		eng.Run(2*driverProbeSlots+2, nil) // through the probe window
		st := eng.DriverStats()
		recorded := st.SerialSlotNs
		if st.Parallel {
			recorded = st.ParallelSlotNs
		}
		if recorded <= 0 {
			t.Fatalf("n=%d: no recorded slot cost", n)
		}
		// Re-measure: medians of three 8-slot windows under the driver the
		// engine settled on.
		var windows []float64
		for w := 0; w < 3; w++ {
			start := time.Now()
			eng.Run(8, nil)
			windows = append(windows, float64(time.Since(start))/8)
		}
		med := median(windows)
		if med > recorded*factor || recorded > med*factor {
			t.Errorf("n=%d: recorded %.0fns/slot vs re-measured %.0fns/slot exceeds factor %v",
				n, recorded, med, factor)
		}
	}
}

func median(xs []float64) float64 {
	m := append([]float64(nil), xs...)
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			if m[j] < m[i] {
				m[i], m[j] = m[j], m[i]
			}
		}
	}
	return m[len(m)/2]
}

// BenchmarkEngineStepDrivers compares the slot drivers on one deployment:
// the numbers feed nothing automatically (cmd/macbench owns the gate) but
// make `go test -bench` comparisons convenient.
func BenchmarkEngineStepDrivers(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Seed: engineSeed}},
		{"fused-pinned", Config{Seed: engineSeed, Parallel: true, PinDriver: true}},
		{"adaptive", Config{Seed: engineSeed, Parallel: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			src := rng.New(5)
			pos := make([]geom.Point, 1000)
			for i := range pos {
				pos[i] = geom.Point{X: src.Float64() * 260, Y: src.Float64() * 260}
			}
			ch, err := sinr.NewChannel(sinr.DefaultParams(12), pos)
			if err != nil {
				b.Fatal(err)
			}
			fast := sinr.NewFastChannel(ch)
			defer fast.Close()
			nodes := make([]Node, len(pos))
			for i := range nodes {
				nodes[i] = &randomNode{p: 0.05}
			}
			cfg := v.cfg
			cfg.Evaluator = fast
			eng, err := NewEngine(ch, nodes, cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng.Run(64, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}
