// Package consensus implements network-wide binary consensus on top of the
// abstract MAC layer, reproducing the shape of Corollary 5.5 of the paper:
// consensus in O(D_{G_{1-ε}} · f_ack) time using only the acknowledgment
// guarantee of the MAC layer.
//
// The paper obtains its consensus result by plugging the f_ack bound of
// Theorem 5.1 into the wPAXOS algorithm of Newport [44], whose running time
// depends only on f_ack (not f_prog). This package substitutes a simpler
// absMAC-based algorithm with the same structure and the same complexity:
// leader-value flooding. Every node repeatedly performs acknowledged local
// broadcasts of the highest node identifier it has heard of together with
// that node's initial value; after R rounds of acknowledged broadcasts
// (where R is an upper bound on the diameter of G_{1-ε}, knowledge the
// paper also grants to [44] via "knowledge of the network size"), the node
// decides the value associated with the highest identifier. Agreement
// follows because after i rounds every node within i hops of the maximum-id
// node knows its value; validity holds because only initial values are ever
// flooded; termination is by round counting. The substitution is recorded
// in DESIGN.md.
package consensus

import (
	"fmt"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
)

// Value is a binary consensus input/output.
type Value uint8

// The two possible consensus values.
const (
	// Zero is the consensus value 0.
	Zero Value = 0
	// One is the consensus value 1.
	One Value = 1
)

// Payload is the application payload flooded by the consensus layer.
type Payload struct {
	// Leader is the highest node id the sender has heard of.
	Leader int
	// Value is the initial value of that node.
	Value Value
	// Round is the sender's current round number (for observability).
	Round int
}

// Config holds the consensus parameters.
type Config struct {
	// Rounds is the number of acknowledged broadcast rounds every node
	// performs before deciding. It must be at least the diameter of
	// G_{1-ε} for agreement to hold with the stated probability.
	Rounds int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("consensus: Rounds = %d must be positive", c.Rounds)
	}
	return nil
}

// Node is the per-node consensus layer. It implements core.Layer.
type Node struct {
	cfg     Config
	initial Value

	node int
	mac  core.MAC

	leader      int
	leaderValue Value
	round       int
	inFlight    bool
	decided     bool
	decision    Value
	decidedSlot int64
}

var _ core.Layer = (*Node)(nil)

// New returns a consensus layer with the given initial value.
func New(cfg Config, initial Value) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if initial != Zero && initial != One {
		return nil, fmt.Errorf("consensus: initial value %d is not binary", initial)
	}
	return &Node{cfg: cfg, initial: initial, leader: -1}, nil
}

// Attach implements core.Layer.
func (n *Node) Attach(node int, mac core.MAC, src *rng.Source) {
	n.node = node
	n.mac = mac
	n.leader = node
	n.leaderValue = n.initial
}

// msgID builds a unique message id from the node id and round number.
func (n *Node) msgID() core.MessageID {
	return core.MessageID(uint64(n.node+1)<<32 | uint64(n.round+1))
}

// OnSlot implements core.Layer: while undecided and idle, broadcast the
// current (leader, value) belief; once the round budget is exhausted,
// decide.
func (n *Node) OnSlot(slot int64) {
	if n.decided || n.mac == nil {
		return
	}
	if n.round >= n.cfg.Rounds {
		n.decided = true
		n.decision = n.leaderValue
		n.decidedSlot = slot
		return
	}
	if n.inFlight || n.mac.Busy() {
		return
	}
	n.inFlight = true
	n.mac.Bcast(slot, core.Message{
		ID:      n.msgID(),
		Origin:  n.node,
		Payload: Payload{Leader: n.leader, Value: n.leaderValue, Round: n.round},
	})
}

// OnRcv implements core.Layer: adopt the highest leader id seen so far.
func (n *Node) OnRcv(slot int64, m core.Message) {
	p, ok := m.Payload.(Payload)
	if !ok {
		return
	}
	if p.Leader > n.leader {
		n.leader = p.Leader
		n.leaderValue = p.Value
	}
}

// OnAck implements core.Layer: an acknowledged broadcast completes the
// node's current round.
func (n *Node) OnAck(slot int64, m core.Message) {
	if !n.inFlight {
		return
	}
	n.inFlight = false
	n.round++
}

// Decided reports whether the node has decided and, if so, on which value
// and at which slot.
func (n *Node) Decided() (bool, Value, int64) {
	return n.decided, n.decision, n.decidedSlot
}

// Round returns the node's current round number.
func (n *Node) Round() int { return n.round }

// Leader returns the node's current leader belief.
func (n *Node) Leader() int { return n.leader }

// CheckAgreement verifies the three consensus properties over a set of
// finished nodes with the given initial values: termination (all decided),
// agreement (all decisions equal) and validity (the decision was someone's
// initial value). It returns a descriptive error when a property fails.
func CheckAgreement(nodes []*Node, initials []Value) error {
	if len(nodes) == 0 {
		return nil
	}
	var first Value
	for i, n := range nodes {
		ok, v, _ := n.Decided()
		if !ok {
			return fmt.Errorf("consensus: node %d has not decided (termination violated)", i)
		}
		if i == 0 {
			first = v
			continue
		}
		if v != first {
			return fmt.Errorf("consensus: node %d decided %d but node 0 decided %d (agreement violated)", i, v, first)
		}
	}
	for _, init := range initials {
		if init == first {
			return nil
		}
	}
	return fmt.Errorf("consensus: decision %d is not any node's initial value (validity violated)", first)
}

// DecisionSlot returns the largest decision slot over all nodes and whether
// every node has decided.
func DecisionSlot(nodes []*Node) (int64, bool) {
	var last int64
	for _, n := range nodes {
		ok, _, slot := n.Decided()
		if !ok {
			return 0, false
		}
		if slot > last {
			last = slot
		}
	}
	return last, true
}

// FaultReport is the fault-mode counterpart of CheckAgreement: under crash
// and Byzantine faults the consensus properties are only owed to the
// correct (non-faulty) nodes, and the interesting output is how badly they
// degrade rather than a single pass/fail. QuorumIntact records the quorum
// assumption the PoDC-style analysis rests on: a correct majority.
type FaultReport struct {
	// Total, Crashed, Byzantine and Correct partition the nodes (a node
	// both crashed and Byzantine counts once, as faulty).
	Total     int
	Crashed   int
	Byzantine int
	Correct   int
	// Decided and Undecided partition the correct nodes by termination.
	Decided   int
	Undecided int
	// AgreementBreaches counts decided correct nodes whose decision
	// differs from the first decided correct node's.
	AgreementBreaches int
	// ValidityBreaches counts decided correct nodes whose decision is not
	// any correct node's initial value — the signature of a Byzantine
	// forgery winning the flood.
	ValidityBreaches int
	// QuorumIntact reports whether correct nodes outnumber faulty ones
	// (Correct > Total/2). When false, breaches above are expected rather
	// than anomalous.
	QuorumIntact bool
}

// CheckFaulty audits the consensus properties over a possibly-faulty
// execution. crashed and byzantine flag the faulty nodes (either may be
// nil); properties are checked among the correct nodes only, so crashed
// nodes that never decide are counted in the report but are not violations.
func CheckFaulty(nodes []*Node, initials []Value, crashed, byzantine []bool) FaultReport {
	rep := FaultReport{Total: len(nodes)}
	faulty := func(i int) bool {
		c := crashed != nil && crashed[i]
		b := byzantine != nil && byzantine[i]
		return c || b
	}
	var reference Value
	haveRef := false
	for i, n := range nodes {
		if crashed != nil && crashed[i] {
			rep.Crashed++
		}
		if byzantine != nil && byzantine[i] {
			rep.Byzantine++
		}
		if faulty(i) {
			continue
		}
		rep.Correct++
		ok, v, _ := n.Decided()
		if !ok {
			rep.Undecided++
			continue
		}
		rep.Decided++
		if !haveRef {
			reference, haveRef = v, true
		} else if v != reference {
			rep.AgreementBreaches++
		}
		valid := false
		for j := range nodes {
			if !faulty(j) && j < len(initials) && initials[j] == v {
				valid = true
				break
			}
		}
		if !valid {
			rep.ValidityBreaches++
		}
	}
	rep.QuorumIntact = rep.Correct > rep.Total/2
	return rep
}
