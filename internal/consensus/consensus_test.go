package consensus

import (
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

func TestConfigAndConstructor(t *testing.T) {
	if _, err := New(Config{Rounds: 0}, Zero); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := New(Config{Rounds: 3}, Value(7)); err == nil {
		t.Fatal("non-binary initial value accepted")
	}
	if _, err := New(Config{Rounds: 3}, One); err != nil {
		t.Fatal(err)
	}
}

// ackImmediatelyMAC is a fake MAC that acknowledges every broadcast on the
// next OnSlot call and delivers nothing.
type ackImmediatelyMAC struct {
	layer   core.Layer
	pending *core.Message
}

func (f *ackImmediatelyMAC) Bcast(slot int64, m core.Message) { cp := m; f.pending = &cp }
func (f *ackImmediatelyMAC) Abort(int64, core.MessageID)      { f.pending = nil }
func (f *ackImmediatelyMAC) SetLayer(l core.Layer)            { f.layer = l }
func (f *ackImmediatelyMAC) Busy() bool                       { return f.pending != nil }

func (f *ackImmediatelyMAC) step(slot int64) {
	if f.pending != nil {
		m := *f.pending
		f.pending = nil
		f.layer.OnAck(slot, m)
	}
	f.layer.OnSlot(slot)
}

func TestSingleNodeDecidesOwnValue(t *testing.T) {
	n, err := New(Config{Rounds: 3}, One)
	if err != nil {
		t.Fatal(err)
	}
	m := &ackImmediatelyMAC{}
	m.SetLayer(n)
	n.Attach(5, m, rng.New(1))
	for slot := int64(0); slot < 20; slot++ {
		m.step(slot)
	}
	ok, v, _ := n.Decided()
	if !ok || v != One {
		t.Fatalf("Decided = %v/%d", ok, v)
	}
	if n.Leader() != 5 {
		t.Fatalf("Leader = %d", n.Leader())
	}
	if err := CheckAgreement([]*Node{n}, []Value{One}); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptHigherLeader(t *testing.T) {
	n, err := New(Config{Rounds: 5}, Zero)
	if err != nil {
		t.Fatal(err)
	}
	m := &ackImmediatelyMAC{}
	m.SetLayer(n)
	n.Attach(2, m, rng.New(1))
	n.OnRcv(1, core.Message{ID: 99, Origin: 7, Payload: Payload{Leader: 7, Value: One, Round: 0}})
	if n.Leader() != 7 {
		t.Fatalf("Leader = %d after hearing higher id", n.Leader())
	}
	// Lower leaders and malformed payloads are ignored.
	n.OnRcv(2, core.Message{ID: 100, Origin: 1, Payload: Payload{Leader: 1, Value: Zero}})
	n.OnRcv(3, core.Message{ID: 101, Origin: 1, Payload: "garbage"})
	if n.Leader() != 7 {
		t.Fatalf("Leader overwritten: %d", n.Leader())
	}
	for slot := int64(0); slot < 30; slot++ {
		m.step(slot)
	}
	ok, v, _ := n.Decided()
	if !ok || v != One {
		t.Fatalf("Decided = %v/%d, want adopted value 1", ok, v)
	}
}

func TestCheckAgreementDetectsViolations(t *testing.T) {
	mkDecided := func(v Value) *Node {
		n, err := New(Config{Rounds: 1}, v)
		if err != nil {
			t.Fatal(err)
		}
		m := &ackImmediatelyMAC{}
		m.SetLayer(n)
		n.Attach(0, m, rng.New(1))
		for slot := int64(0); slot < 10; slot++ {
			m.step(slot)
		}
		return n
	}
	undecided, err := New(Config{Rounds: 5}, Zero)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAgreement([]*Node{mkDecided(Zero), undecided}, []Value{Zero, Zero}); err == nil {
		t.Fatal("termination violation not detected")
	}
	if err := CheckAgreement([]*Node{mkDecided(Zero), mkDecided(One)}, []Value{Zero, One}); err == nil {
		t.Fatal("agreement violation not detected")
	}
	if err := CheckAgreement([]*Node{mkDecided(One)}, []Value{Zero}); err == nil {
		t.Fatal("validity violation not detected")
	}
	if err := CheckAgreement(nil, nil); err != nil {
		t.Fatalf("empty node set rejected: %v", err)
	}
}

func TestDecisionSlot(t *testing.T) {
	n, err := New(Config{Rounds: 2}, Zero)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DecisionSlot([]*Node{n}); ok {
		t.Fatal("DecisionSlot complete before decision")
	}
}

// runConsensus wires consensus layers over acknowledgment MACs on the given
// deployment and runs until all nodes decide or the deadline passes.
func runConsensus(t *testing.T, d *topology.Deployment, initials []Value, rounds int, seed uint64) []*Node {
	t.Helper()
	rec := core.NewRecorder()
	cfg := hmbcast.DefaultConfig(d.Lambda(), 0.05)
	cfg.StepFactor = 1
	cfg.HaltFactor = 4

	layers := make([]*Node, d.NumNodes())
	nodes := make([]sim.Node, d.NumNodes())
	for i := range nodes {
		l, err := New(Config{Rounds: rounds}, initials[i])
		if err != nil {
			t.Fatal(err)
		}
		layers[i] = l
		n := hmbcast.New(cfg, rec)
		n.SetLayer(l)
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	deadline := int64(rounds+2) * cfg.MaxSlots()
	eng.Run(deadline, func() bool {
		_, done := DecisionSlot(layers)
		return done
	})
	return layers
}

func TestConsensusOnLineNetwork(t *testing.T) {
	params := sinr.DefaultParams(10)
	d, err := topology.Line(6, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	diam := d.StrongGraph().Diameter()
	initials := make([]Value, d.NumNodes())
	// Mixed initial values; the highest-id node (id 5) starts with 1.
	for i := range initials {
		initials[i] = Value(uint8(i % 2))
	}
	layers := runConsensus(t, d, initials, diam+2, 31)
	if err := CheckAgreement(layers, initials); err != nil {
		t.Fatal(err)
	}
	// The decided value is the initial value of the maximum-id node.
	_, v, _ := layers[0].Decided()
	if v != initials[d.NumNodes()-1] {
		t.Fatalf("decided %d, want the max-id node's value %d", v, initials[d.NumNodes()-1])
	}
}

func TestConsensusOnClusterAllZero(t *testing.T) {
	d, err := topology.Clusters(1, 8, sinr.DefaultParams(20), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	initials := make([]Value, d.NumNodes())
	layers := runConsensus(t, d, initials, 3, 37)
	if err := CheckAgreement(layers, initials); err != nil {
		t.Fatal(err)
	}
	_, v, _ := layers[0].Decided()
	if v != Zero {
		t.Fatalf("all-zero input decided %d (validity violated)", v)
	}
}
