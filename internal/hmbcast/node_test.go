package hmbcast

import (
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// recordingLayer is a core.Layer that records the callbacks it receives and
// optionally issues one broadcast at a given slot.
type recordingLayer struct {
	core.NopLayer

	node      int
	mac       core.MAC
	bcastAt   int64
	bcastMsg  core.Message
	issued    bool
	acks      []core.Message
	rcvs      []core.Message
	ackSlots  []int64
	attachOK  bool
	slotCalls int
}

func (l *recordingLayer) Attach(node int, mac core.MAC, src *rng.Source) {
	l.node = node
	l.mac = mac
	l.attachOK = mac != nil && src != nil
}

func (l *recordingLayer) OnSlot(slot int64) {
	l.slotCalls++
	if !l.issued && l.bcastMsg.ID != 0 && slot >= l.bcastAt {
		l.mac.Bcast(slot, l.bcastMsg)
		l.issued = true
	}
}

func (l *recordingLayer) OnRcv(slot int64, m core.Message) { l.rcvs = append(l.rcvs, m) }

func (l *recordingLayer) OnAck(slot int64, m core.Message) {
	l.acks = append(l.acks, m)
	l.ackSlots = append(l.ackSlots, slot)
}

// buildCluster builds a deployment where every node is in strong range of
// every other (a clique in G_{1-ε}), with the given number of nodes.
func buildCluster(t testing.TB, n int, seed uint64) *topology.Deployment {
	t.Helper()
	d, err := topology.Clusters(1, n, sinr.DefaultParams(30), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNodeSingleBroadcastReachesAllNeighbors(t *testing.T) {
	d := buildCluster(t, 8, 1)
	rec := core.NewRecorder()
	cfg := DefaultConfig(d.Lambda(), 0.1)

	nodes := make([]sim.Node, d.NumNodes())
	layers := make([]*recordingLayer, d.NumNodes())
	for i := range nodes {
		n := New(cfg, rec)
		layers[i] = &recordingLayer{}
		if i == 0 {
			layers[i].bcastMsg = core.Message{ID: 42, Origin: 0, Payload: "hello"}
		}
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(cfg.MaxSlots()+10, func() bool { return len(layers[0].acks) > 0 })

	if len(layers[0].acks) != 1 || layers[0].acks[0].ID != 42 {
		t.Fatalf("broadcaster acks = %+v", layers[0].acks)
	}
	// Every other node received the message exactly once via OnRcv.
	for i := 1; i < len(layers); i++ {
		if len(layers[i].rcvs) != 1 || layers[i].rcvs[0].ID != 42 {
			t.Fatalf("node %d rcvs = %+v", i, layers[i].rcvs)
		}
	}
	// The spec checker agrees: one acked broadcast, no violations.
	rep := core.CheckAcks(rec.Events(), d.StrongGraph())
	if rep.Acked != 1 || rep.Violations != 0 {
		t.Fatalf("ack report = %+v", rep)
	}
	if rep.MaxLatency <= 0 {
		t.Fatal("ack latency not positive")
	}
	if !layers[0].attachOK {
		t.Fatal("layer Attach not called with MAC and source")
	}
}

func TestNodeConcurrentBroadcastersAllAck(t *testing.T) {
	d := buildCluster(t, 10, 3)
	rec := core.NewRecorder()
	cfg := DefaultConfig(d.Lambda(), 0.1)

	nodes := make([]sim.Node, d.NumNodes())
	layers := make([]*recordingLayer, d.NumNodes())
	for i := range nodes {
		n := New(cfg, rec)
		layers[i] = &recordingLayer{}
		// Half the nodes broadcast, staggered by a few slots.
		if i%2 == 0 {
			layers[i].bcastAt = int64(i)
			layers[i].bcastMsg = core.Message{ID: core.MessageID(100 + i), Origin: i}
		}
		n.SetLayer(layers[i])
		nodes[i] = n
	}
	ch, err := d.Channel()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	allAcked := func() bool {
		for i, l := range layers {
			if i%2 == 0 && len(l.acks) == 0 {
				return false
			}
		}
		return true
	}
	eng.Run(4*cfg.MaxSlots(), allAcked)
	if !allAcked() {
		t.Fatal("not all broadcasters acknowledged")
	}
	rep := core.CheckAcks(rec.Events(), d.StrongGraph())
	if rep.Acked != 5 {
		t.Fatalf("acked = %d, want 5", rep.Acked)
	}
	// With ε_ack = 0.1 and 5 broadcasts in a clique, allow at most one
	// delivery violation.
	if rep.Violations > 1 {
		t.Fatalf("too many nice-execution violations: %+v", rep)
	}
}

func TestNodeBusyAndSecondBcastIgnored(t *testing.T) {
	rec := core.NewRecorder()
	n := New(DefaultConfig(8, 0.1), rec)
	n.Init(0, rng.New(1))
	if n.Busy() {
		t.Fatal("fresh node busy")
	}
	n.Bcast(0, core.Message{ID: 1, Origin: 0})
	if !n.Busy() {
		t.Fatal("node not busy after Bcast")
	}
	n.Bcast(1, core.Message{ID: 2, Origin: 0})
	// Only the first bcast is recorded.
	if got := len(rec.EventsOfKind(core.EventBcast)); got != 1 {
		t.Fatalf("bcast events = %d, want 1", got)
	}
	if n.ID() != 0 {
		t.Fatalf("ID = %d", n.ID())
	}
}

func TestNodeAbort(t *testing.T) {
	rec := core.NewRecorder()
	n := New(DefaultConfig(8, 0.1), rec)
	n.Init(3, rng.New(2))
	n.Bcast(0, core.Message{ID: 7, Origin: 3})
	// Aborting a different message id is a no-op.
	n.Abort(1, 99)
	if !n.Busy() {
		t.Fatal("abort of unknown message cleared the broadcast")
	}
	n.Abort(2, 7)
	if n.Busy() {
		t.Fatal("node still busy after abort")
	}
	if got := len(rec.EventsOfKind(core.EventAbort)); got != 1 {
		t.Fatalf("abort events = %d", got)
	}
	// No ack may ever fire for the aborted message.
	var fr sim.Frame
	for slot := int64(3); slot < 500; slot++ {
		n.Tick(slot, &fr)
	}
	if got := len(rec.EventsOfKind(core.EventAck)); got != 0 {
		t.Fatalf("ack events after abort = %d", got)
	}
}

func TestNodeRcvDeduplicated(t *testing.T) {
	rec := core.NewRecorder()
	n := New(DefaultConfig(8, 0.1), rec)
	layer := &recordingLayer{}
	n.SetLayer(layer)
	n.Init(1, rng.New(3))
	m := core.Message{ID: 5, Origin: 0}
	f := &sim.Frame{From: 0, Kind: FrameKind, Msg: m}
	n.Receive(10, f)
	n.Receive(11, f)
	n.Receive(12, f)
	if len(layer.rcvs) != 1 {
		t.Fatalf("OnRcv called %d times, want 1", len(layer.rcvs))
	}
	if got := len(rec.EventsOfKind(core.EventRcv)); got != 1 {
		t.Fatalf("rcv events = %d, want 1", got)
	}
	// A node never delivers its own message.
	own := core.Message{ID: 6, Origin: 1}
	n.Receive(13, &sim.Frame{From: 1, Kind: FrameKind, Msg: own})
	if len(layer.rcvs) != 1 {
		t.Fatal("node delivered its own message")
	}
}
