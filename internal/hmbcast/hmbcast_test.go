package hmbcast

import (
	"testing"

	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(16, 0.1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Lambda: 0.5, EpsAck: 0.1},
		{Lambda: 16, EpsAck: 0},
		{Lambda: 16, EpsAck: 1},
		{Lambda: 16, EpsAck: 0.1, PMax: 0.9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := DefaultConfig(10, 0.1)
	if got := cfg.ContentionBound(); got != 400 {
		t.Fatalf("ContentionBound = %v, want 400", got)
	}
	if cfg.StepLen() <= 0 || cfg.HaltBudget() <= 0 || cfg.FallbackThreshold() <= 0 {
		t.Fatal("derived quantities must be positive")
	}
	if cfg.MaxSlots() <= int64(cfg.StepLen()) {
		t.Fatal("MaxSlots suspiciously small")
	}
	// Tighter ε makes everything larger.
	tight := DefaultConfig(10, 0.001)
	if tight.HaltBudget() <= cfg.HaltBudget() || tight.StepLen() < cfg.StepLen() {
		t.Fatal("budgets not monotone in 1/ε")
	}
}

func TestAutomatonConstructorErrors(t *testing.T) {
	if _, err := NewAutomaton(Config{Lambda: 0, EpsAck: 0.1}, rng.New(1), nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewAutomaton(DefaultConfig(8, 0.1), nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// tick drives one automaton Tick with a throwaway pooled frame, returning
// whether the automaton transmitted.
func tick(a *Automaton) bool {
	var f sim.Frame
	return a.Tick(&f)
}

func TestAutomatonIdleUntilStart(t *testing.T) {
	aut, err := NewAutomaton(DefaultConfig(8, 0.1), rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if aut.Active() || aut.Done() {
		t.Fatal("fresh automaton active")
	}
	for i := 0; i < 100; i++ {
		if tick(aut) {
			t.Fatal("idle automaton transmitted")
		}
	}
}

func TestAutomatonHaltsWithinBudget(t *testing.T) {
	cfg := DefaultConfig(8, 0.1)
	aut, err := NewAutomaton(cfg, rng.New(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	if !aut.Active() {
		t.Fatal("automaton not active after Start")
	}
	transmitted := 0
	var slots int64
	for ; slots < cfg.MaxSlots() && !aut.Done(); slots++ {
		if tick(aut) {
			transmitted++
		}
	}
	if !aut.Done() {
		t.Fatalf("automaton did not halt within MaxSlots = %d", cfg.MaxSlots())
	}
	if transmitted == 0 {
		t.Fatal("automaton halted without ever transmitting")
	}
	// Once done it stops transmitting.
	for i := 0; i < 50; i++ {
		if tick(aut) {
			t.Fatal("halted automaton transmitted")
		}
	}
}

func TestAutomatonProbabilityRampsUp(t *testing.T) {
	cfg := DefaultConfig(32, 0.1)
	aut, err := NewAutomaton(cfg, rng.New(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	p0 := aut.Probability()
	for i := 0; i < cfg.StepLen()*4; i++ {
		tick(aut)
	}
	if aut.Probability() <= p0 {
		t.Fatalf("probability did not ramp up: %v -> %v", p0, aut.Probability())
	}
	// The probability never exceeds PMax.
	for i := 0; i < cfg.StepLen()*40 && !aut.Done(); i++ {
		tick(aut)
		if aut.Probability() > cfg.withDefaults().PMax+1e-12 {
			t.Fatalf("probability %v exceeded PMax", aut.Probability())
		}
	}
}

func TestAutomatonFallbackOnContention(t *testing.T) {
	cfg := DefaultConfig(8, 0.1)
	aut, err := NewAutomaton(cfg, rng.New(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	// Ramp the probability up first.
	for i := 0; i < cfg.StepLen()*12; i++ {
		tick(aut)
	}
	before := aut.Probability()
	// Simulate a busy channel: deliver more messages than the threshold.
	other := core.Message{ID: 99, Origin: 5}
	for i := 0; i <= cfg.FallbackThreshold(); i++ {
		aut.Receive(&sim.Frame{Kind: FrameKind, Msg: other})
	}
	if aut.Probability() >= before {
		t.Fatalf("fall-back did not reduce probability: %v -> %v", before, aut.Probability())
	}
}

func TestAutomatonIgnoresForeignFrames(t *testing.T) {
	calls := 0
	aut, err := NewAutomaton(DefaultConfig(8, 0.1), rng.New(5), func(core.Message) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	aut.Receive(nil)
	aut.Receive(&sim.Frame{Kind: sim.RegisterFrameKind("ap.data"), Msg: core.Message{ID: 1}})
	if calls != 0 {
		t.Fatalf("onData called %d times for non-data frames", calls)
	}
	aut.Receive(&sim.Frame{Kind: FrameKind, Msg: core.Message{ID: 1, Origin: 3}})
	if calls != 1 {
		t.Fatalf("onData calls = %d, want 1", calls)
	}
}

func TestAutomatonAbort(t *testing.T) {
	aut, err := NewAutomaton(DefaultConfig(8, 0.1), rng.New(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	aut.Start(core.Message{ID: 1, Origin: 0})
	aut.Abort()
	if aut.Active() || aut.Done() {
		t.Fatal("aborted automaton still active")
	}
	for i := 0; i < 100; i++ {
		if tick(aut) {
			t.Fatal("aborted automaton transmitted")
		}
	}
}
