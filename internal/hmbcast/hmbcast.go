// Package hmbcast implements the acknowledgment half of the paper's absMAC:
// the local-broadcast algorithm of Halldórsson and Mitra [29] (Algorithm
// B.1 in the paper's appendix), restated with local parameters as in
// Theorem 5.1.
//
// A node with an ongoing broadcast repeatedly transmits its bcast-message
// with an adaptive probability: the probability starts low (relative to the
// contention bound Ñ = 4Λ², the only global quantity the node knows),
// doubles every few slots, and falls back multiplicatively whenever the
// node overhears many other broadcasts — evidence that the local contention
// is high and the current probability is already "right". The node halts,
// and the MAC layer issues the acknowledgment, once its accumulated
// transmission probability exceeds a logarithmic budget, at which point all
// G_{1-ε}-neighbours have received the message with probability at least
// 1-ε_ack (Theorem B.3).
package hmbcast

import (
	"fmt"
	"math"

	"sinrmac/internal/core"
	"sinrmac/internal/macnode"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
)

// New returns a standalone acknowledgment-only MAC node (core.MAC +
// sim.Node) running this algorithm in every slot. It provides the f_ack
// guarantee of Theorem 5.1 but no progress bound; the combined MAC of
// Algorithm 11.1 (package mac) interleaves this automaton with the
// approximate-progress automaton. recorder may be nil.
func New(cfg Config, recorder *core.Recorder) *macnode.Node {
	return macnode.New(func(src *rng.Source, onData func(core.Message)) (macnode.Automaton, error) {
		return NewAutomaton(cfg, src, onData)
	}, recorder)
}

// FrameKind is the frame kind used for data transmissions of this
// algorithm, registered once at package initialisation.
var FrameKind = sim.RegisterFrameKind("hm.data")

// Config holds the algorithm parameters. The structural constants default
// to values that preserve the paper's algorithm shape at simulation scale;
// the asymptotics are unchanged.
type Config struct {
	// Lambda is the known polynomial upper bound on Λ = R_{1-ε}/dmin. The
	// contention bound Ñ = 4Λ² is derived from it (Theorem 5.1).
	Lambda float64
	// EpsAck is the acknowledgment error probability ε_ack.
	EpsAck float64
	// StepFactor is δ: the number of slots spent at each probability level
	// is StepFactor·log₂(Ñ/ε_ack).
	StepFactor float64
	// HaltFactor is γ': the node halts (and acks) once its summed
	// transmission probability exceeds HaltFactor·log₂(Ñ/ε_ack).
	HaltFactor float64
	// FallbackFactor controls the fall-back trigger: the node falls back
	// after receiving more than FallbackFactor·log₂(2Ñ/ε_ack) messages at
	// the current probability level.
	FallbackFactor float64
	// PMax caps the per-slot transmission probability (1/16 in the paper).
	PMax float64
}

// DefaultConfig returns a configuration for the given Λ bound and ε_ack
// with the default structural constants.
func DefaultConfig(lambda, epsAck float64) Config {
	return Config{Lambda: lambda, EpsAck: epsAck}
}

// withDefaults fills zero fields with the default constants.
func (c Config) withDefaults() Config {
	if c.StepFactor <= 0 {
		c.StepFactor = 2
	}
	if c.HaltFactor <= 0 {
		c.HaltFactor = 8
	}
	if c.FallbackFactor <= 0 {
		c.FallbackFactor = 2
	}
	if c.PMax <= 0 {
		c.PMax = 1.0 / 16
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lambda < 1 {
		return fmt.Errorf("hmbcast: Lambda = %v must be at least 1", c.Lambda)
	}
	if c.EpsAck <= 0 || c.EpsAck >= 1 {
		return fmt.Errorf("hmbcast: EpsAck = %v must lie in (0, 1)", c.EpsAck)
	}
	c = c.withDefaults()
	if c.PMax > 0.5 {
		return fmt.Errorf("hmbcast: PMax = %v must not exceed 0.5", c.PMax)
	}
	return nil
}

// ContentionBound returns Ñ = 4Λ², the only contention information the
// algorithm is given.
func (c Config) ContentionBound() float64 {
	return sinr.MaxContentionBound(c.Lambda)
}

// logTerm returns log₂(Ñ/ε_ack) clamped below at 1.
func (c Config) logTerm() float64 {
	v := math.Log2(c.ContentionBound() / c.EpsAck)
	if v < 1 {
		return 1
	}
	return v
}

// StepLen returns the number of slots spent at each probability level.
func (c Config) StepLen() int {
	c = c.withDefaults()
	return int(math.Ceil(c.StepFactor * c.logTerm()))
}

// HaltBudget returns the accumulated-probability budget after which the
// node halts and acknowledges.
func (c Config) HaltBudget() float64 {
	c = c.withDefaults()
	return c.HaltFactor * c.logTerm()
}

// FallbackThreshold returns the number of overheard messages at one
// probability level that triggers a fall-back.
func (c Config) FallbackThreshold() int {
	c = c.withDefaults()
	v := c.FallbackFactor * math.Log2(2*c.ContentionBound()/c.EpsAck)
	if v < 1 {
		v = 1
	}
	return int(math.Ceil(v))
}

// MaxSlots returns a hard upper bound on the number of protocol slots
// before the halt condition fires: the probability never drops below
// 1/(128·Ñ), so the budget is exhausted after at most 128·Ñ·HaltBudget
// slots.
func (c Config) MaxSlots() int64 {
	return int64(math.Ceil(128 * c.ContentionBound() * c.HaltBudget()))
}

// Automaton is the per-node algorithm state machine. It is ticked once per
// protocol slot (which may be every engine slot for the standalone MAC, or
// every other slot inside the combined MAC of Algorithm 11.1).
type Automaton struct {
	cfg    Config
	src    *rng.Source
	onData func(m core.Message)

	active bool
	done   bool
	msg    core.Message

	p          float64
	totalProb  float64
	rcvCount   int
	slotInStep int
	stepLen    int
}

// NewAutomaton returns an automaton with the given configuration. onData is
// invoked for every received data frame (whether or not the automaton has
// an ongoing broadcast); it may be nil.
func NewAutomaton(cfg Config, src *rng.Source, onData func(core.Message)) (*Automaton, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("hmbcast: nil random source")
	}
	return &Automaton{
		cfg:     cfg.withDefaults(),
		src:     src,
		onData:  onData,
		stepLen: cfg.StepLen(),
	}, nil
}

// Start begins the local broadcast of m, resetting the algorithm state.
func (a *Automaton) Start(m core.Message) {
	a.active = true
	a.done = false
	a.msg = m
	a.totalProb = 0
	a.rcvCount = 0
	a.slotInStep = 0
	// Line 2 followed by the first execution of line 4 of Algorithm B.1.
	nTilde := a.cfg.ContentionBound()
	a.p = math.Max(1/(128*nTilde), (1/(4*nTilde))/32)
}

// Abort cancels the ongoing broadcast.
func (a *Automaton) Abort() {
	a.active = false
	a.done = false
}

// Active reports whether the automaton has an ongoing broadcast that has
// not yet halted.
func (a *Automaton) Active() bool { return a.active && !a.done }

// Done reports whether the halt condition has been reached (the broadcast
// is complete and can be acknowledged).
func (a *Automaton) Done() bool { return a.active && a.done }

// Probability returns the current per-slot transmission probability. It is
// exported for tests and instrumentation.
func (a *Automaton) Probability() float64 { return a.p }

// Tick advances the automaton by one protocol slot; a transmission fills
// the pooled frame f and returns true.
func (a *Automaton) Tick(f *sim.Frame) bool {
	if !a.Active() {
		return false
	}
	// Line 7: double the probability at the start of every step.
	if a.slotInStep == 0 {
		a.p = math.Min(a.cfg.PMax, 2*a.p)
	}
	send := a.src.Bernoulli(a.p)
	a.totalProb += a.p
	a.slotInStep++
	if a.slotInStep >= a.stepLen {
		a.slotInStep = 0
	}
	// Line 14: halt once the probability budget is exhausted.
	if a.totalProb > a.cfg.HaltBudget() {
		a.done = true
	}
	if !send {
		return false
	}
	f.Kind = FrameKind
	f.Msg = a.msg
	return true
}

// Receive processes a frame decoded in one of this automaton's slots.
func (a *Automaton) Receive(f *sim.Frame) {
	if f == nil || f.Kind != FrameKind {
		return
	}
	m := f.Msg
	if a.onData != nil {
		a.onData(m)
	}
	if !a.Active() {
		return
	}
	// Lines 17-21: count overheard messages; fall back when the channel is
	// evidently busy at the current probability level.
	a.rcvCount++
	if a.rcvCount > a.cfg.FallbackThreshold() {
		nTilde := a.cfg.ContentionBound()
		a.p = math.Max(1/(128*nTilde), a.p/32)
		a.rcvCount = 0
		a.slotInStep = 0
	}
}
