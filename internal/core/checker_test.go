package core

import (
	"sync"
	"testing"

	"sinrmac/internal/graphs"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(n int) *graphs.Graph {
	g := graphs.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func msg(id MessageID, origin int) Message {
	return Message{ID: id, Origin: origin, Payload: nil}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(Event{Kind: EventRcv, Node: 1, Msg: msg(1, 0), Slot: 5})
	r.Record(Event{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 2})
	evs := r.Events()
	if len(evs) != 2 || r.Len() != 2 {
		t.Fatalf("Len/Events mismatch: %d/%d", r.Len(), len(evs))
	}
	if evs[0].Slot != 2 || evs[1].Slot != 5 {
		t.Fatalf("events not sorted by slot: %+v", evs)
	}
	if got := r.EventsOfKind(EventBcast); len(got) != 1 || got[0].Kind != EventBcast {
		t.Fatalf("EventsOfKind = %+v", got)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestRecorderEventsIsCopy(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 1})
	evs := r.Events()
	evs[0].Slot = 99
	if r.Events()[0].Slot != 1 {
		t.Fatal("Events exposed internal storage")
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const goroutines, perG = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record(Event{Kind: EventRcv, Node: g, Msg: msg(MessageID(i), g), Slot: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != goroutines*perG {
		t.Fatalf("lost events: %d", r.Len())
	}
}

func TestCheckAcksHappyPath(t *testing.T) {
	g := pathGraph(3) // neighbours of 1 are 0 and 2
	events := []Event{
		{Kind: EventBcast, Node: 1, Msg: msg(1, 1), Slot: 0},
		{Kind: EventRcv, Node: 0, Msg: msg(1, 1), Slot: 3},
		{Kind: EventRcv, Node: 2, Msg: msg(1, 1), Slot: 4},
		{Kind: EventAck, Node: 1, Msg: msg(1, 1), Slot: 6},
	}
	rep := CheckAcks(events, g)
	if rep.Acked != 1 || rep.Unacked != 0 || rep.Aborted != 0 || rep.Violations != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MaxLatency != 6 || rep.MeanLatency != 6 {
		t.Fatalf("latency = %d/%v", rep.MaxLatency, rep.MeanLatency)
	}
	if len(rep.Records) != 1 || len(rep.Records[0].MissedNeighbors) != 0 {
		t.Fatalf("records = %+v", rep.Records)
	}
}

func TestCheckAcksDetectsMissedNeighbor(t *testing.T) {
	g := pathGraph(3)
	events := []Event{
		{Kind: EventBcast, Node: 1, Msg: msg(1, 1), Slot: 0},
		{Kind: EventRcv, Node: 0, Msg: msg(1, 1), Slot: 3},
		// node 2 never receives, but the ack fires anyway.
		{Kind: EventAck, Node: 1, Msg: msg(1, 1), Slot: 6},
	}
	rep := CheckAcks(events, g)
	if rep.Violations != 1 {
		t.Fatalf("violations = %d, want 1", rep.Violations)
	}
	if got := rep.Records[0].MissedNeighbors; len(got) != 1 || got[0] != 2 {
		t.Fatalf("missed neighbours = %v", got)
	}
}

func TestCheckAcksLateRcvCountsAsMissed(t *testing.T) {
	g := pathGraph(2)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventAck, Node: 0, Msg: msg(1, 0), Slot: 5},
		{Kind: EventRcv, Node: 1, Msg: msg(1, 0), Slot: 9}, // after the ack
	}
	rep := CheckAcks(events, g)
	if rep.Violations != 1 {
		t.Fatalf("late rcv not flagged: %+v", rep)
	}
}

func TestCheckAcksUnackedAndAborted(t *testing.T) {
	g := pathGraph(4)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventBcast, Node: 2, Msg: msg(2, 2), Slot: 0},
		{Kind: EventAbort, Node: 2, Msg: msg(2, 2), Slot: 7},
	}
	rep := CheckAcks(events, g)
	if rep.Unacked != 1 || rep.Aborted != 1 || rep.Acked != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCheckAcksMultipleMessagesMeanLatency(t *testing.T) {
	g := pathGraph(2)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventRcv, Node: 1, Msg: msg(1, 0), Slot: 1},
		{Kind: EventAck, Node: 0, Msg: msg(1, 0), Slot: 2},
		{Kind: EventBcast, Node: 1, Msg: msg(2, 1), Slot: 10},
		{Kind: EventRcv, Node: 0, Msg: msg(2, 1), Slot: 14},
		{Kind: EventAck, Node: 1, Msg: msg(2, 1), Slot: 16},
	}
	rep := CheckAcks(events, g)
	if rep.Acked != 2 || rep.Violations != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MaxLatency != 6 || rep.MeanLatency != 4 {
		t.Fatalf("latencies = %d/%v", rep.MaxLatency, rep.MeanLatency)
	}
}

func TestMeasureProgressSatisfied(t *testing.T) {
	g := pathGraph(3)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventRcv, Node: 1, Msg: msg(1, 0), Slot: 4},
		{Kind: EventAck, Node: 0, Msg: msg(1, 0), Slot: 10},
	}
	rep := MeasureProgress(events, g, g, 100)
	// Node 1 is the only trigger-graph neighbour of node 0.
	if len(rep.Samples) != 1 {
		t.Fatalf("samples = %+v", rep.Samples)
	}
	s := rep.Samples[0]
	if !s.Satisfied || s.Receiver != 1 || s.Latency != 4 || s.RcvSlot != 4 {
		t.Fatalf("sample = %+v", s)
	}
	if rep.SatisfactionRate() != 1 {
		t.Fatalf("satisfaction rate = %v", rep.SatisfactionRate())
	}
}

func TestMeasureProgressAnyNeighborMessageCounts(t *testing.T) {
	// Node 1 has neighbours 0 and 2. Node 0 broadcasts m1 but node 1 only
	// ever receives m2 from node 2: progress is still satisfied because the
	// paper's progress property accepts any message from a G-neighbour.
	g := pathGraph(3)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventBcast, Node: 2, Msg: msg(2, 2), Slot: 0},
		{Kind: EventRcv, Node: 1, Msg: msg(2, 2), Slot: 3},
		{Kind: EventAck, Node: 0, Msg: msg(1, 0), Slot: 20},
		{Kind: EventAck, Node: 2, Msg: msg(2, 2), Slot: 20},
	}
	rep := MeasureProgress(events, g, g, 100)
	for _, s := range rep.Samples {
		if s.Receiver == 1 && !s.Satisfied {
			t.Fatalf("progress at node 1 not satisfied by neighbour message: %+v", s)
		}
	}
}

func TestMeasureProgressNonNeighborMessageIgnored(t *testing.T) {
	// The reliable graph g has no edge (1,3): a rcv of node 3's message at
	// node 1 must not count as progress.
	g := graphs.New(4)
	g.AddEdge(0, 1)
	trigger := g.Clone()
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventRcv, Node: 1, Msg: msg(7, 3), Slot: 2}, // from non-neighbour 3
		{Kind: EventAck, Node: 0, Msg: msg(1, 0), Slot: 9},
	}
	rep := MeasureProgress(events, g, trigger, 100)
	if len(rep.Samples) != 1 {
		t.Fatalf("samples = %+v", rep.Samples)
	}
	s := rep.Samples[0]
	if s.Satisfied {
		t.Fatalf("non-neighbour reception counted as progress: %+v", s)
	}
	if s.Latency != 9 { // censored at the ack slot
		t.Fatalf("censored latency = %d, want 9", s.Latency)
	}
	if rep.SatisfactionRate() != 0 {
		t.Fatalf("satisfaction rate = %v", rep.SatisfactionRate())
	}
}

func TestMeasureProgressDifferentTriggerGraph(t *testing.T) {
	// g is a path 0-1-2; trigger graph only contains the edge 0-1. Only the
	// (0 broadcasts, 1 listens) pair opens a window.
	g := pathGraph(3)
	trigger := graphs.New(3)
	trigger.AddEdge(0, 1)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 0},
		{Kind: EventBcast, Node: 2, Msg: msg(2, 2), Slot: 0},
		{Kind: EventRcv, Node: 1, Msg: msg(1, 0), Slot: 5},
		{Kind: EventAck, Node: 0, Msg: msg(1, 0), Slot: 8},
		{Kind: EventAck, Node: 2, Msg: msg(2, 2), Slot: 8},
	}
	rep := MeasureProgress(events, g, trigger, 100)
	// Triggers: msg1 opens a window at node 1; msg2 opens none (node 2 has
	// no trigger-graph neighbours).
	if len(rep.Samples) != 1 {
		t.Fatalf("samples = %+v", rep.Samples)
	}
	if rep.Samples[0].Receiver != 1 || !rep.Samples[0].Satisfied {
		t.Fatalf("sample = %+v", rep.Samples[0])
	}
}

func TestMeasureProgressHorizonCensoring(t *testing.T) {
	g := pathGraph(2)
	events := []Event{
		{Kind: EventBcast, Node: 0, Msg: msg(1, 0), Slot: 10},
		// no rcv, no ack
	}
	rep := MeasureProgress(events, g, g, 50)
	if len(rep.Samples) != 1 {
		t.Fatalf("samples = %+v", rep.Samples)
	}
	s := rep.Samples[0]
	if s.Satisfied || s.EndSlot != 50 || s.Latency != 40 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestMeasureProgressEmptyTrace(t *testing.T) {
	g := pathGraph(3)
	rep := MeasureProgress(nil, g, g, 100)
	if len(rep.Samples) != 0 || rep.SatisfactionRate() != 1 {
		t.Fatalf("empty trace report = %+v", rep)
	}
	ackRep := CheckAcks(nil, g)
	if len(ackRep.Records) != 0 || ackRep.MeanLatency != 0 {
		t.Fatalf("empty trace ack report = %+v", ackRep)
	}
}
