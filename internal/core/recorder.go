package core

import (
	"sort"
	"sync"
)

// Recorder collects absMAC interface events emitted by MAC implementations
// during a simulation. It is safe for concurrent use so that the parallel
// simulation driver can record from multiple node goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends one event to the trace.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the trace sorted by slot (stable within a slot:
// insertion order). The copy can be analysed while the simulation
// continues.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// EventsOfKind returns the recorded events of the given kind, sorted by
// slot.
func (r *Recorder) EventsOfKind(kind EventKind) []Event {
	all := r.Events()
	var out []Event
	for _, ev := range all {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}
