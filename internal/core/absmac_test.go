package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventKindString(t *testing.T) {
	tests := []struct {
		kind EventKind
		want string
	}{
		{EventBcast, "bcast"},
		{EventRcv, "rcv"},
		{EventAck, "ack"},
		{EventAbort, "abort"},
		{EventKind(99), "EventKind(99)"},
	}
	for _, tc := range tests {
		if got := tc.kind.String(); got != tc.want {
			t.Fatalf("String(%d) = %q, want %q", int(tc.kind), got, tc.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{EpsAck: 0, EpsProg: 0.1, EpsApprog: 0.1},
		{EpsAck: 0.1, EpsProg: 1, EpsApprog: 0.1},
		{EpsAck: 0.1, EpsProg: 0.1, EpsApprog: -0.3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d validated", i)
		}
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0},
		{2, 1},
		{4, 2},
		{16, 3},
		{65536, 4},
		{1e30, 5},
	}
	for _, tc := range tests {
		if got := LogStar(tc.x); got != tc.want {
			t.Fatalf("LogStar(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestTheoreticalFackScaling(t *testing.T) {
	// f_ack must grow linearly in Δ for fixed Λ and ε.
	base := TheoreticalFack(10, 64, 0.1)
	doubled := TheoreticalFack(20, 64, 0.1)
	if doubled <= base {
		t.Fatal("f_ack bound not increasing in degree")
	}
	ratio := (doubled - TheoreticalFack(0, 64, 0.1)) / (base - TheoreticalFack(0, 64, 0.1))
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("degree term not linear: ratio = %v", ratio)
	}
	// Smaller ε makes the bound larger.
	if TheoreticalFack(10, 64, 0.01) <= TheoreticalFack(10, 64, 0.1) {
		t.Fatal("f_ack bound not decreasing in ε")
	}
}

func TestTheoreticalFapprogIndependentOfDegree(t *testing.T) {
	// The approximate-progress bound depends only on Λ, α and ε: it must be
	// polylogarithmic, i.e. far below the f_ack bound for large degree.
	lambda := 64.0
	fapprog := TheoreticalFapprog(lambda, 3, 0.1)
	fackDense := TheoreticalFack(1000, lambda, 0.1)
	if fapprog >= fackDense {
		t.Fatalf("f_approg bound %v not below dense f_ack bound %v", fapprog, fackDense)
	}
	// Monotone in Λ.
	if TheoreticalFapprog(128, 3, 0.1) <= TheoreticalFapprog(8, 3, 0.1) {
		t.Fatal("f_approg bound not increasing in Λ")
	}
	// Monotone in 1/ε.
	if TheoreticalFapprog(64, 3, 0.01) <= TheoreticalFapprog(64, 3, 0.2) {
		t.Fatal("f_approg bound not increasing in 1/ε")
	}
}

func TestTheoreticalFprogLowerBound(t *testing.T) {
	if got := TheoreticalFprogLowerBound(17); got != 17 {
		t.Fatalf("lower bound = %v, want 17", got)
	}
}

func TestTheoreticalGlobalBoundsMonotone(t *testing.T) {
	if TheoreticalSMB(20, 100, 32, 3, 0.1) <= TheoreticalSMB(10, 100, 32, 3, 0.1) {
		t.Fatal("SMB bound not increasing in diameter")
	}
	if TheoreticalMMB(10, 8, 100, 8, 32, 3, 0.1) <= TheoreticalMMB(10, 8, 100, 2, 32, 3, 0.1) {
		t.Fatal("MMB bound not increasing in k")
	}
	if TheoreticalCons(10, 16, 100, 32, 0.1) <= TheoreticalCons(10, 4, 100, 32, 0.1) {
		t.Fatal("CONS bound not increasing in degree")
	}
	if TheoreticalCons(20, 8, 100, 32, 0.1) <= TheoreticalCons(5, 8, 100, 32, 0.1) {
		t.Fatal("CONS bound not increasing in diameter")
	}
}

// Property: all theoretical bounds are positive and finite over sensible
// parameter ranges.
func TestQuickBoundsFinite(t *testing.T) {
	f := func(degRaw, diamRaw uint8, lambdaRaw, epsRaw uint16) bool {
		deg := int(degRaw%200) + 1
		diam := int(diamRaw%50) + 1
		lambda := 2 + float64(lambdaRaw%1000)
		eps := 0.001 + float64(epsRaw%998)/1000
		vals := []float64{
			TheoreticalFack(deg, lambda, eps),
			TheoreticalFapprog(lambda, 3, eps),
			TheoreticalSMB(diam, 100, lambda, 3, eps),
			TheoreticalMMB(diam, deg, 100, 4, lambda, 3, eps),
			TheoreticalCons(diam, deg, 100, lambda, eps),
		}
		for _, v := range vals {
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogStarQuickSmall(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := LogStar(math.Abs(x))
		return v >= 0 && v <= 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
