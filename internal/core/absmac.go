// Package core defines the paper's primary contribution as a reusable Go
// abstraction: the probabilistic abstract MAC layer (absMAC) for the SINR
// model, extended with the approximate-progress specification of
// Definition 7.1.
//
// The package contains three things:
//
//   - the event vocabulary and interfaces through which higher-level
//     protocols (global broadcast, consensus) use a MAC implementation:
//     bcast/ack/rcv/abort (Section 4.4);
//   - the timing/error-probability parameters (f_ack, f_prog, f_approg and
//     ε_ack, ε_prog, ε_approg) together with the closed-form bounds proven
//     in Theorems 5.1 and 9.1, used both to parameterise implementations
//     and to compare measured behaviour against theory;
//   - a trace recorder and specification checker that verify an execution
//     against the absMAC guarantees with respect to the strong graph
//     G := G_{1-ε} and the approximation graph G̃ := G_{1-2ε}, and measure
//     the empirical acknowledgment/progress/approximate-progress latencies
//     that the experiment harness reports.
package core

import (
	"fmt"
	"math"

	"sinrmac/internal/rng"
)

// MessageID identifies one bcast-message. Higher layers must use unique ids
// (the paper assumes w.l.o.g. that all local broadcast messages are unique).
type MessageID uint64

// Message is a local-broadcast message handed to the MAC layer.
type Message struct {
	// ID uniquely identifies the message.
	ID MessageID
	// Origin is the node at which the bcast event occurred.
	Origin int
	// Payload is the opaque application payload. The MAC layer treats
	// messages as black boxes that cannot be combined (Section 4.5).
	Payload interface{}
}

// EventKind enumerates the absMAC interface events.
type EventKind int

// The absMAC event kinds of Section 4.4.
const (
	// EventBcast marks a bcast(m)_i input from the environment to node i.
	EventBcast EventKind = iota + 1
	// EventRcv marks a rcv(m)_j output: node j received message m.
	EventRcv
	// EventAck marks an ack(m)_i output: node i's broadcast of m completed.
	EventAck
	// EventAbort marks an abort(m)_i input: node i aborted broadcasting m.
	EventAbort
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventBcast:
		return "bcast"
	case EventRcv:
		return "rcv"
	case EventAck:
		return "ack"
	case EventAbort:
		return "abort"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timestamped absMAC interface event.
type Event struct {
	// Kind is the event type.
	Kind EventKind
	// Node is the node at which the event occurred.
	Node int
	// Msg is the message the event refers to.
	Msg Message
	// Slot is the simulation slot at which the event occurred.
	Slot int64
}

// MAC is the downward-facing interface of one node's abstract MAC layer.
// Implementations are also sim.Node automata; higher layers call Bcast and
// Abort and receive OnRcv/OnAck callbacks on the Layer they registered.
type MAC interface {
	// Bcast starts the acknowledged local broadcast of m. The enhanced
	// absMAC allows at most one outstanding broadcast per node; callers
	// must wait for the ack (or abort) before broadcasting again.
	Bcast(slot int64, m Message)
	// Abort cancels an in-progress broadcast. No ack will be delivered.
	Abort(slot int64, id MessageID)
	// SetLayer registers the upward event consumer. It must be called
	// before the simulation starts.
	SetLayer(l Layer)
	// Busy reports whether the node has an ongoing broadcast.
	Busy() bool
}

// Layer is a higher-level protocol instance running on top of the MAC at
// one node (e.g. the global broadcast protocols of Section 12 or the
// consensus protocol of Section 5.1). Layers are driven by the MAC: the MAC
// attaches itself at initialisation, ticks the layer once per slot (the
// enhanced absMAC gives nodes access to time), and forwards rcv and ack
// events as they occur.
//
// Layer implementations must confine their state to one node, like
// sim.Node implementations.
type Layer interface {
	// Attach is called once before the simulation starts with the node id,
	// the node's MAC endpoint and a private random source.
	Attach(node int, mac MAC, src *rng.Source)
	// OnSlot is called once per simulation slot before the MAC's own work
	// for the slot. Layers typically use it to issue Bcast calls.
	OnSlot(slot int64)
	// OnRcv is invoked when the MAC layer delivers a received message.
	OnRcv(slot int64, m Message)
	// OnAck is invoked when a previously bcast message completes its
	// acknowledged local broadcast.
	OnAck(slot int64, m Message)
}

// NopLayer is a Layer that ignores every callback. It is embedded by layers
// that only need a subset of the callbacks and used directly when a MAC is
// driven manually (e.g. by tests).
type NopLayer struct{}

// Attach implements Layer.
func (NopLayer) Attach(int, MAC, *rng.Source) {}

// OnSlot implements Layer.
func (NopLayer) OnSlot(int64) {}

// OnRcv implements Layer.
func (NopLayer) OnRcv(int64, Message) {}

// OnAck implements Layer.
func (NopLayer) OnAck(int64, Message) {}

// Params collects the probabilistic absMAC parameters: the error
// probabilities requested by the user of the layer (Section 4.4, "The
// Probabilistic Abstract MAC Layer").
type Params struct {
	// EpsAck bounds the probability that an acknowledgment is not
	// delivered within f_ack.
	EpsAck float64
	// EpsProg bounds the probability that progress is not made within
	// f_prog.
	EpsProg float64
	// EpsApprog bounds the probability that approximate progress (w.r.t.
	// G̃ = G_{1-2ε}) is not made within f_approg.
	EpsApprog float64
}

// DefaultParams returns the error probabilities used by the examples:
// ε_ack = ε_prog = ε_approg = 0.1.
func DefaultParams() Params {
	return Params{EpsAck: 0.1, EpsProg: 0.1, EpsApprog: 0.1}
}

// Validate checks that all probabilities lie in (0, 1).
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("core: %s = %v must lie in (0, 1)", name, v)
		}
		return nil
	}
	if err := check("EpsAck", p.EpsAck); err != nil {
		return err
	}
	if err := check("EpsProg", p.EpsProg); err != nil {
		return err
	}
	return check("EpsApprog", p.EpsApprog)
}

// Bounds holds the absMAC delay bounds for one execution, in slots.
type Bounds struct {
	// Fack bounds the acknowledgment delay.
	Fack float64
	// Fprog bounds the progress delay (w.r.t. G).
	Fprog float64
	// Fapprog bounds the approximate-progress delay (w.r.t. G̃).
	Fapprog float64
}

// LogStar returns the iterated logarithm log*(x): the number of times log₂
// must be applied before the value drops to at most 1. LogStar(x) = 0 for
// x <= 1.
func LogStar(x float64) float64 {
	n := 0.0
	for x > 1 {
		x = math.Log2(x)
		n++
		if n > 64 { // defensive: log* of any representable float is tiny
			break
		}
	}
	return n
}

// log2c returns log₂(x) clamped below at 1, matching the convention that
// logarithmic factors in the bounds never vanish.
func log2c(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// TheoreticalFack returns the Theorem 5.1 acknowledgment bound
//
//	O(Δ_{G_{1-ε}} · log(Λ/ε_ack) + log(Λ)·log(Λ/ε_ack))
//
// with unit constants. It is used to size timeouts and to report the
// predicted scaling next to measured values.
func TheoreticalFack(maxDegree int, lambda, epsAck float64) float64 {
	l := log2c(lambda / epsAck)
	return float64(maxDegree)*l + log2c(lambda)*l
}

// TheoreticalFapprog returns the Theorem 9.1 approximate-progress bound
//
//	O((log^α(Λ) + log*(1/ε_approg)) · log(Λ) · log(1/ε_approg))
//
// with unit constants.
func TheoreticalFapprog(lambda, alpha, epsApprog float64) float64 {
	invEps := 1 / epsApprog
	return (math.Pow(log2c(lambda), alpha) + LogStar(invEps)) * log2c(lambda) * log2c(invEps)
}

// TheoreticalFprogLowerBound returns the Theorem 6.1 lower bound on the
// progress delay of any absMAC implementation in the SINR model:
// f_prog >= Δ_{G_{1-ε}}.
func TheoreticalFprogLowerBound(maxDegree int) float64 {
	return float64(maxDegree)
}

// TheoreticalSMB returns the Theorem 12.7 global single-message broadcast
// bound O((D_{G_{1-2ε}} + log(n/ε_SMB)) · log^{α+1}(Λ)) with unit constants.
func TheoreticalSMB(diamApprox int, n int, lambda, alpha, epsSMB float64) float64 {
	return (float64(diamApprox) + log2c(float64(n)/epsSMB)) * math.Pow(log2c(lambda), alpha+1)
}

// TheoreticalMMB returns the Theorem 12.7 global multi-message broadcast
// bound with unit constants:
//
//	O(D_{G_{1-2ε}}·log^{α+1}(Λ) + k·(Δ_{G_{1-ε}} + polylog(nkΛ/ε))·log(nk/ε)).
func TheoreticalMMB(diamApprox, maxDegree, n, k int, lambda, alpha, epsMMB float64) float64 {
	nk := float64(n * k)
	polylog := math.Pow(log2c(nk*lambda/epsMMB), 2)
	return float64(diamApprox)*math.Pow(log2c(lambda), alpha+1) +
		float64(k)*(float64(maxDegree)+polylog)*log2c(nk/epsMMB)
}

// TheoreticalCons returns the Corollary 5.5 consensus bound
//
//	O(D_{G_{1-ε}}·(Δ_{G_{1-ε}} + log Λ)·log(nΛ/ε_CONS))
//
// with unit constants.
func TheoreticalCons(diamStrong, maxDegree, n int, lambda, epsCons float64) float64 {
	return float64(diamStrong) * (float64(maxDegree) + log2c(lambda)) * log2c(float64(n)*lambda/epsCons)
}
