package core

import (
	"sort"

	"sinrmac/internal/graphs"
)

// AckRecord describes the fate of one bcast in a trace.
type AckRecord struct {
	// Msg is the broadcast message.
	Msg Message
	// BcastSlot is the slot of the bcast event.
	BcastSlot int64
	// AckSlot is the slot of the ack event, or -1 when no ack was recorded.
	AckSlot int64
	// Aborted reports whether an abort event was recorded for the message.
	Aborted bool
	// Latency is AckSlot - BcastSlot for acknowledged broadcasts, 0
	// otherwise.
	Latency int64
	// MissedNeighbors lists the G-neighbours of the origin that had no rcv
	// event for the message before the ack (only populated for
	// acknowledged broadcasts). An acknowledged broadcast with missed
	// neighbours violates the "nice execution" property of Definition 12.2
	// and counts towards AckReport.Violations.
	MissedNeighbors []int
}

// AckReport summarises acknowledgment behaviour over a whole trace.
type AckReport struct {
	// Records holds one entry per bcast event, in bcast order.
	Records []AckRecord
	// Acked counts acknowledged broadcasts.
	Acked int
	// Unacked counts broadcasts that were neither acknowledged nor aborted.
	Unacked int
	// Aborted counts aborted broadcasts.
	Aborted int
	// Violations counts acknowledged broadcasts for which some G-neighbour
	// never received the message before the ack.
	Violations int
	// MaxLatency and MeanLatency summarise acknowledgment latencies over
	// the acknowledged broadcasts (0 when none).
	MaxLatency  int64
	MeanLatency float64
}

// CheckAcks verifies the acknowledgment part of the absMAC specification
// against a trace: every acknowledged broadcast should have delivered a rcv
// to every G-neighbour of its origin before the ack fired, and it measures
// the empirical acknowledgment latency f_ack.
func CheckAcks(events []Event, g *graphs.Graph) AckReport {
	type msgState struct {
		rec      AckRecord
		rcvSlots map[int]int64 // receiver -> first rcv slot
	}
	states := make(map[MessageID]*msgState)
	var order []MessageID
	for _, ev := range events {
		switch ev.Kind {
		case EventBcast:
			if _, ok := states[ev.Msg.ID]; !ok {
				states[ev.Msg.ID] = &msgState{
					rec:      AckRecord{Msg: ev.Msg, BcastSlot: ev.Slot, AckSlot: -1},
					rcvSlots: make(map[int]int64),
				}
				order = append(order, ev.Msg.ID)
			}
		case EventRcv:
			if st, ok := states[ev.Msg.ID]; ok {
				if _, seen := st.rcvSlots[ev.Node]; !seen {
					st.rcvSlots[ev.Node] = ev.Slot
				}
			}
		case EventAck:
			if st, ok := states[ev.Msg.ID]; ok && st.rec.AckSlot < 0 {
				st.rec.AckSlot = ev.Slot
				st.rec.Latency = ev.Slot - st.rec.BcastSlot
			}
		case EventAbort:
			if st, ok := states[ev.Msg.ID]; ok {
				st.rec.Aborted = true
			}
		}
	}

	var report AckReport
	var latencySum int64
	for _, id := range order {
		st := states[id]
		rec := st.rec
		switch {
		case rec.AckSlot >= 0:
			report.Acked++
			latencySum += rec.Latency
			if rec.Latency > report.MaxLatency {
				report.MaxLatency = rec.Latency
			}
			for _, nbr := range g.Neighbors(rec.Msg.Origin) {
				slot, got := st.rcvSlots[nbr]
				if !got || slot > rec.AckSlot {
					rec.MissedNeighbors = append(rec.MissedNeighbors, nbr)
				}
			}
			if len(rec.MissedNeighbors) > 0 {
				report.Violations++
			}
		case rec.Aborted:
			report.Aborted++
		default:
			report.Unacked++
		}
		report.Records = append(report.Records, rec)
	}
	if report.Acked > 0 {
		report.MeanLatency = float64(latencySum) / float64(report.Acked)
	}
	return report
}

// ProgressSample measures one (receiver, triggering broadcast) pair: the
// time from the start of a neighbour's broadcast until the receiver
// received *some* message originating at one of its G-neighbours.
type ProgressSample struct {
	// Receiver is the listening node j.
	Receiver int
	// Trigger is the broadcasting neighbour i (in the trigger graph).
	Trigger int
	// TriggerMsg is the message i was broadcasting.
	TriggerMsg MessageID
	// StartSlot is the slot of the triggering bcast event.
	StartSlot int64
	// EndSlot is the end of the observation window: the trigger's ack or
	// abort slot, or the horizon when the broadcast never completed.
	EndSlot int64
	// RcvSlot is the slot of the first qualifying rcv at the receiver at or
	// after StartSlot, or -1 when none occurred within the window.
	RcvSlot int64
	// Latency is RcvSlot-StartSlot when satisfied, EndSlot-StartSlot
	// otherwise (a censored measurement).
	Latency int64
	// Satisfied reports whether a qualifying rcv occurred within the window.
	Satisfied bool
}

// ProgressReport summarises progress measurements over a trace.
type ProgressReport struct {
	// Samples holds one entry per (receiver, triggering broadcast) pair.
	Samples []ProgressSample
	// Satisfied and Unsatisfied count samples with and without a
	// qualifying reception inside the observation window.
	Satisfied   int
	Unsatisfied int
	// MaxLatency and MeanLatency summarise latencies over all samples
	// (censored samples contribute their window length).
	MaxLatency  int64
	MeanLatency float64
}

// SatisfactionRate returns the fraction of samples whose window contained a
// qualifying reception (1 when there are no samples).
func (r ProgressReport) SatisfactionRate() float64 {
	total := r.Satisfied + r.Unsatisfied
	if total == 0 {
		return 1
	}
	return float64(r.Satisfied) / float64(total)
}

// MeasureProgress measures the (approximate) progress latency of a trace.
//
// g is the reliable-communication graph G := G_{1-ε}: a reception counts
// only if the received message originates at a G-neighbour of the receiver
// (the paper's rcv semantics). trigger selects which broadcasting
// neighbours open an observation window at a receiver: passing G measures
// the classic progress bound f_prog, passing G̃ := G_{1-2ε} measures the
// approximate-progress bound f_approg of Definition 7.1. horizon caps the
// observation window of broadcasts that never completed.
func MeasureProgress(events []Event, g, trigger *graphs.Graph, horizon int64) ProgressReport {
	// Index per-message lifecycle and per-receiver qualifying receptions.
	type life struct {
		origin int
		start  int64
		end    int64
	}
	lives := make(map[MessageID]*life)
	var msgOrder []MessageID
	rcvByNode := make(map[int][]Event)
	for _, ev := range events {
		switch ev.Kind {
		case EventBcast:
			if _, ok := lives[ev.Msg.ID]; !ok {
				lives[ev.Msg.ID] = &life{origin: ev.Msg.Origin, start: ev.Slot, end: horizon}
				msgOrder = append(msgOrder, ev.Msg.ID)
			}
		case EventAck, EventAbort:
			if l, ok := lives[ev.Msg.ID]; ok && l.end == horizon {
				l.end = ev.Slot
			}
		case EventRcv:
			rcvByNode[ev.Node] = append(rcvByNode[ev.Node], ev)
		}
	}
	for _, evs := range rcvByNode {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Slot < evs[j].Slot })
	}

	var report ProgressReport
	var latencySum int64
	for _, id := range msgOrder {
		l := lives[id]
		for _, j := range trigger.Neighbors(l.origin) {
			sample := ProgressSample{
				Receiver:   j,
				Trigger:    l.origin,
				TriggerMsg: id,
				StartSlot:  l.start,
				EndSlot:    l.end,
				RcvSlot:    -1,
			}
			for _, rcv := range rcvByNode[j] {
				if rcv.Slot < l.start {
					continue
				}
				if rcv.Slot > l.end {
					break
				}
				// Qualifying receptions originate at a G-neighbour of j.
				if g.HasEdge(j, rcv.Msg.Origin) {
					sample.RcvSlot = rcv.Slot
					break
				}
			}
			if sample.RcvSlot >= 0 {
				sample.Satisfied = true
				sample.Latency = sample.RcvSlot - sample.StartSlot
				report.Satisfied++
			} else {
				sample.Latency = sample.EndSlot - sample.StartSlot
				report.Unsatisfied++
			}
			if sample.Latency > report.MaxLatency {
				report.MaxLatency = sample.Latency
			}
			latencySum += sample.Latency
			report.Samples = append(report.Samples, sample)
		}
	}
	if len(report.Samples) > 0 {
		report.MeanLatency = float64(latencySum) / float64(len(report.Samples))
	}
	return report
}

// DeadlineReport is the fault-mode violation accounting layered on top of
// CheckAcks and MeasureProgress: under fault injection the absolute spec
// properties may legitimately fail (a crashed neighbour never receives, a
// jammed slot delays an ack), so instead of a boolean verdict the checker
// counts deadline misses — broadcasts not acknowledged within AckDeadline
// and progress windows not satisfied within ProgressDeadline.
type DeadlineReport struct {
	// AckDeadline and ProgressDeadline are the slot budgets checked.
	AckDeadline      int64
	ProgressDeadline int64
	// Bcasts counts broadcasts observed; Aborted the ones the MAC aborted
	// (excluded from deadline accounting — an abort is an explicit signal,
	// not a silent miss).
	Bcasts  int
	Aborted int
	// LateAcks counts broadcasts acknowledged after AckDeadline and
	// NeverAcked the ones with no ack whose deadline expired before the
	// horizon (still-in-flight broadcasts near the end of the trace are
	// censored, not counted as misses); AckMisses is their sum.
	LateAcks   int
	NeverAcked int
	AckMisses  int
	// NiceViolations counts acknowledged broadcasts missing a G-neighbour
	// delivery (AckReport.Violations): under crash faults these are the
	// expected signature of acks racing a neighbour's death.
	NiceViolations int
	// ProgressWindows counts progress observation windows and
	// ProgressMisses the ones unsatisfied or satisfied past
	// ProgressDeadline.
	ProgressWindows int
	ProgressMisses  int
}

// CheckDeadlines runs the acknowledgment and progress checkers over a trace
// and folds their measurements into deadline-miss counts. g is the reliable
// communication graph (also used as the progress trigger graph); horizon
// caps unfinished observation windows as in MeasureProgress.
func CheckDeadlines(events []Event, g *graphs.Graph, ackDeadline, progressDeadline, horizon int64) DeadlineReport {
	rep := DeadlineReport{AckDeadline: ackDeadline, ProgressDeadline: progressDeadline}
	acks := CheckAcks(events, g)
	rep.Bcasts = len(acks.Records)
	rep.NiceViolations = acks.Violations
	for _, r := range acks.Records {
		switch {
		case r.Aborted && r.AckSlot < 0:
			rep.Aborted++
		case r.AckSlot < 0:
			if r.BcastSlot+ackDeadline <= horizon {
				rep.NeverAcked++
			}
		case r.Latency > ackDeadline:
			rep.LateAcks++
		}
	}
	rep.AckMisses = rep.LateAcks + rep.NeverAcked
	prog := MeasureProgress(events, g, g, horizon)
	rep.ProgressWindows = len(prog.Samples)
	for _, s := range prog.Samples {
		switch {
		case !s.Satisfied:
			if s.StartSlot+progressDeadline <= horizon {
				rep.ProgressMisses++
			}
		case s.Latency > progressDeadline:
			rep.ProgressMisses++
		}
	}
	return rep
}
