// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Table 2, Figure 1, Theorem 8.1) from the simulator
// and prints them as plain-text tables.
//
// Usage:
//
//	experiments [-exp name|all] [-quick] [-seed N] [-trials N] [-workers N] [-o file]
//
// Experiment names: ack, proglb, approg, decay, smb, mmb, cons.
//
// Trials fan out across -workers concurrent workers (0 = GOMAXPROCS). The
// tables are bit-identical at every worker count: all randomness is derived
// from (seed, experiment, point, trial) labels, never from execution order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sinrmac/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expName = flag.String("exp", "all", "experiment to run ("+strings.Join(exp.Names(), ", ")+" or all)")
		quick   = flag.Bool("quick", false, "shrink all sweeps so the suite finishes in seconds")
		seed    = flag.Uint64("seed", 1, "random seed for deployments and simulations")
		trials  = flag.Int("trials", 0, "repetitions per data point (0 = per-experiment default)")
		workers = flag.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS, 1 = sequential; tables are identical at any count)")
		outPath = flag.String("o", "", "also write the tables to this file")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers}

	var tables []exp.Table
	if *expName == "all" {
		all, err := exp.RunAll(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		tables = all
	} else {
		runner, ok := exp.Registry()[*expName]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (valid: %s)\n", *expName, strings.Join(exp.Names(), ", "))
			return 2
		}
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		tables = []exp.Table{table}
	}

	var out strings.Builder
	for i, t := range tables {
		if i > 0 {
			out.WriteString("\n")
		}
		out.WriteString(t.Format())
	}
	fmt.Print(out.String())

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(out.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *outPath, err)
			return 1
		}
	}
	return 0
}
