// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Table 2, Figure 1, Theorem 8.1) from the simulator
// and prints them as plain-text tables.
//
// Usage:
//
//	experiments [-exp name|all] [-quick] [-seed N] [-trials N] [-workers N] [-o file]
//
// Experiment names: ack, proglb, approg, decay, smb, mmb, cons.
//
// Trials fan out across -workers concurrent workers (0 = GOMAXPROCS). The
// tables are bit-identical at every worker count: all randomness is derived
// from (seed, experiment, point, trial) labels, never from execution order.
//
// A first SIGINT stops the sweep gracefully: experiments completed before
// the signal are still printed (and flushed to -o), the interrupted one is
// dropped, and the process exits with status 130. A second SIGINT kills the
// process immediately via the default handler.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"

	"sinrmac/internal/exp"
)

func main() {
	os.Exit(run())
}

// exitInterrupted is the conventional exit status for SIGINT terminations.
const exitInterrupted = 130

func run() int {
	var (
		expName = flag.String("exp", "all", "experiment to run ("+strings.Join(exp.Names(), ", ")+" or all)")
		quick   = flag.Bool("quick", false, "shrink all sweeps so the suite finishes in seconds")
		seed    = flag.Uint64("seed", 1, "random seed for deployments and simulations")
		trials  = flag.Int("trials", 0, "repetitions per data point (0 = per-experiment default)")
		workers = flag.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS, 1 = sequential; tables are identical at any count)")
		batch   = flag.Int("batch", 0, "engine micro-batch size in slots (0 = auto; tables are identical at any value)")
		outPath = flag.String("o", "", "also write the tables to this file")
	)
	flag.Parse()

	// First SIGINT: set the interrupt flag the trial scheduler polls and
	// restore the default handler, so completed tables are flushed below
	// while a second SIGINT still kills a stuck run the usual way.
	var interrupted atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
		interrupted.Store(true)
		signal.Stop(sigs)
	}()

	cfg := exp.Config{
		Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers,
		Batch: *batch, Interrupt: interrupted.Load,
	}

	status := 0
	var tables []exp.Table
	if *expName == "all" {
		all, err := exp.RunAll(cfg)
		if err != nil {
			if !errors.Is(err, exp.ErrInterrupted) {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "experiments: interrupted; flushing %d completed table(s)\n", len(all))
			status = exitInterrupted
		}
		tables = all
	} else {
		runner, ok := exp.Registry()[*expName]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (valid: %s)\n", *expName, strings.Join(exp.Names(), ", "))
			return 2
		}
		table, err := runner(cfg)
		if err != nil {
			if !errors.Is(err, exp.ErrInterrupted) {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Fprintln(os.Stderr, "experiments: interrupted before the experiment completed")
			return exitInterrupted
		}
		tables = []exp.Table{table}
	}

	var out strings.Builder
	for i, t := range tables {
		if i > 0 {
			out.WriteString("\n")
		}
		out.WriteString(t.Format())
	}
	fmt.Print(out.String())

	if *outPath != "" && len(tables) > 0 {
		if err := writeFileAtomic(*outPath, []byte(out.String())); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *outPath, err)
			return 1
		}
	}
	return status
}

// writeFileAtomic writes via a temp file and rename, so an interrupt racing
// the flush can never leave a half-written table file behind.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
