package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, report benchReport) string {
	t.Helper()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseReport() benchReport {
	return benchReport{
		Cases:       []benchCase{{Name: "matrix", SpeedupVsNaive: 20}},
		SparseCases: []sparseCase{{Name: "sparse_grid", SpeedupVsDense: 10}},
		BoundsCases: []boundsCase{{Name: "bounds_quarter", SpeedupVsDense: 6}},
		ChurnCases:  []churnCase{{Name: "churn_matrix", SpeedupVsRebuild: 40}},
		StepCases:   []stepCase{{Name: "engine_step", AllocsPerOp: 0}},
	}
}

func TestCompareReportsPasses(t *testing.T) {
	path := writeBaseline(t, baseReport())
	if err := compareReports(path, baseReport()); err != nil {
		t.Fatalf("identical reports failed the gate: %v", err)
	}
	// Fresh-only cases stay allowed: adding a benchmark must not break the
	// first run against an old baseline.
	fresh := baseReport()
	fresh.ChurnCases = append(fresh.ChurnCases, churnCase{Name: "churn_grid", SpeedupVsRebuild: 3})
	if err := compareReports(path, fresh); err != nil {
		t.Fatalf("fresh-only case failed the gate: %v", err)
	}
}

// TestCompareReportsMissingBaselineCase pins the gate fix: deleting or
// renaming a benchmark no longer dodges the regression gate — a baseline
// case with no fresh counterpart is reported as a failure, for every case
// family.
func TestCompareReportsMissingBaselineCase(t *testing.T) {
	path := writeBaseline(t, baseReport())
	drop := []struct {
		name   string
		mutate func(r *benchReport)
	}{
		{"matrix", func(r *benchReport) { r.Cases = nil }},
		{"sparse_grid", func(r *benchReport) { r.SparseCases = nil }},
		{"bounds_quarter", func(r *benchReport) { r.BoundsCases = nil }},
		{"churn_matrix", func(r *benchReport) { r.ChurnCases = nil }},
		{"engine_step", func(r *benchReport) { r.StepCases = nil }},
	}
	for _, tc := range drop {
		fresh := baseReport()
		tc.mutate(&fresh)
		err := compareReports(path, fresh)
		if err == nil {
			t.Fatalf("dropping %q passed the gate", tc.name)
		}
		if !strings.Contains(err.Error(), tc.name) || !strings.Contains(err.Error(), "not in the fresh report") {
			t.Fatalf("dropping %q: error does not name the missing case: %v", tc.name, err)
		}
	}
	// Renames surface as missing too.
	fresh := baseReport()
	fresh.ChurnCases[0].Name = "churn_matrix_v2"
	if err := compareReports(path, fresh); err == nil || !strings.Contains(err.Error(), "churn_matrix") {
		t.Fatalf("renaming a case passed the gate: %v", err)
	}
}

// TestCheckStepCrossover pins the within-run crossover gate: at n ≥ 5000
// the adaptive parallel driver may not lose to the sequential driver beyond
// the tolerance, while pinned cases and small deployments are exempt.
func TestCheckStepCrossover(t *testing.T) {
	mk := func(parNs float64, pinned bool, n int) []stepCase {
		return []stepCase{
			{Name: "engine_step_5k", Nodes: n, NsPerOp: 1000},
			{Name: "engine_step_parallel_5k", Nodes: n, Parallel: true, Pinned: pinned, NsPerOp: parNs},
		}
	}
	if err := checkStepCrossover(mk(1100, false, 5000)); err != nil {
		t.Fatalf("adaptive within tolerance failed the gate: %v", err)
	}
	if err := checkStepCrossover(mk(1300, false, 5000)); err == nil {
		t.Fatal("adaptive 1.3x slower than sequential passed the gate")
	} else if !strings.Contains(err.Error(), "engine_step_parallel_5k") {
		t.Fatalf("gate error does not name the losing case: %v", err)
	}
	if err := checkStepCrossover(mk(5000, true, 5000)); err != nil {
		t.Fatalf("pinned case is not exempt from the gate: %v", err)
	}
	if err := checkStepCrossover(mk(5000, false, 2000)); err != nil {
		t.Fatalf("small deployment is not exempt from the gate: %v", err)
	}
	// No sequential reference at the size: nothing to compare against.
	if err := checkStepCrossover([]stepCase{
		{Name: "engine_step_parallel_5k", Nodes: 5000, Parallel: true, NsPerOp: 9999},
	}); err != nil {
		t.Fatalf("missing sequential reference failed the gate: %v", err)
	}
}

// TestGateCasesKernelFamily: kernel cases carry their speedup into the
// -compare gate like every other family.
func TestGateCasesKernelFamily(t *testing.T) {
	path := writeBaseline(t, benchReport{
		KernelCases: []kernelCase{{Name: "kernel_pathloss_a3", SpeedupVsPow: 4}},
	})
	fresh := benchReport{
		KernelCases: []kernelCase{{Name: "kernel_pathloss_a3", SpeedupVsPow: 1.5}},
	}
	if err := compareReports(path, fresh); err == nil || !strings.Contains(err.Error(), "fast-vs-pow") {
		t.Fatalf("kernel speedup collapse passed the gate: %v", err)
	}
	fresh.KernelCases[0].SpeedupVsPow = 3
	if err := compareReports(path, fresh); err != nil {
		t.Fatalf("kernel speedup within tolerance failed the gate: %v", err)
	}
}

func TestCompareReportsRegressions(t *testing.T) {
	path := writeBaseline(t, baseReport())
	fresh := baseReport()
	fresh.ChurnCases[0].SpeedupVsRebuild = 5 // 8x shrink > 2x tolerance
	if err := compareReports(path, fresh); err == nil || !strings.Contains(err.Error(), "apply-vs-rebuild") {
		t.Fatalf("churn speedup collapse passed the gate: %v", err)
	}
	fresh = baseReport()
	fresh.ChurnCases[0].ApplyAllocsPerOp = 3
	if err := compareReports(path, fresh); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("churn alloc regression passed the gate: %v", err)
	}
}
