// Command macbench runs the ablation sweeps that DESIGN.md calls out for
// the Algorithm 9.1 parameters: it measures the approximate-progress
// latency of a fixed dense-cluster workload while varying one structural
// constant at a time (the transmission probability p, the data divisor
// scale QScale, and the discovery block scale TFactor).
//
// The output justifies the defaults used by the experiment harness and
// shows how the epoch structure trades discovery reliability against data
// throughput.
//
// With -json the command instead benchmarks the slot pipeline via
// testing.Benchmark and writes the measurements to BENCH_macbench.json (or
// the -out path), so the performance trajectory stays machine-readable
// across PRs:
//
//   - the SINR slot hot path, naive reference vs fast evaluator, in the
//     matrix and grid regimes (ns/op, allocs/op, speedup vs naive);
//   - the sparse sender-centric path vs the dense scan on the
//     sinr.SparseBenchWorkload (|tx| = √n) in both regimes;
//   - the hierarchical-bounds tier vs the dense scan on the
//     sinr.DenseBenchWorkload at k = n/4 and k = n, with the measured
//     exact-fallback (refine) rate per case;
//   - the sharded regime at scale (n = 100k, and n = 10⁶ with -large): the
//     certified sharded pipeline vs the per-pair dense scan, plus the
//     measured heap footprint of channel + evaluator (rss_bytes,
//     bytes_per_node), which must stay within
//     sinr.ShardBytesPerNodeBudget;
//   - churn epochs on the sinr.ChurnBenchWorkload: incrementally applying
//     a mobility epoch (1% of nodes moved) to a live evaluator vs
//     rebuilding it from scratch, in both cache regimes (the apply path is
//     expected to stay allocation-free);
//   - a steady-state sim.Engine.Step over pooled frames (ns/op and
//     allocs/op, the latter expected to be zero): the sequential driver and
//     the adaptive serial/parallel crossover at n = 2000 and n = 5000, plus
//     the fused session driver pinned on so its machinery is measured even
//     where the crossover would decline it, and the same serial workload
//     with a zero-fault injector installed (engine_step_faults), which pins
//     the fault layer's dispatch cost to healthy simulations;
//   - the batched executor (engine_run_batch): the identical pinned
//     fused-parallel workload driven slot-at-a-time via Engine.Step (one
//     workpool session per slot) against Engine.RunBatch's 64-slot
//     micro-batches (one session per batch), at n = 2000 and n = 5000,
//     with a per-phase breakdown of the sequential step (tick / evaluate /
//     receive ns per slot) measured in a separate profiled pass so the
//     headline numbers stay clean;
//   - the blocked (SIMD-friendly) kernel restructurings against the scalar
//     loops they replaced, on the production entry points: the matrix
//     totals gather (4 receivers per pass, breaking the loop-carried FP
//     add chain) and the power-column fill;
//   - the pow-free path-loss kernel (sinr.Params.ReceivedPower with its
//     integer-α multiplication fast paths plus the Sqrt distance) against
//     the pre-rewrite math.Pow+math.Hypot arithmetic, per fast-pathed
//     exponent.
//
// Several gates run on the fresh measurements themselves, independent of
// any baseline: at n ≥ 5000 the adaptive engine-step driver must not be
// slower than the sequential driver beyond stepCrossoverTolerance (the
// crossover exists precisely to make "Parallel: true" safe to enable), each
// integer-α path-loss kernel must beat the math.Pow reference, the
// degenerate all-transmit slot (bounds_full) must not be slower under the
// adaptive dispatch than under the pinned dense scan beyond
// boundsFullMinSpeedup (both sides short-circuit on the half-duplex
// early-out, so a real gap means a tier is paying setup cost before
// declining), the zero-fault injector may not slow the serial engine step
// beyond faultHookMaxOverhead, the batched executor must not lose to the
// slot-at-a-time Step loop (batchRunMinSpeedup) and must stay
// allocation-free in steady state, the blocked matrix gather must beat its
// scalar predecessor by at least blockedGatherMinSpeedup, and the sharded
// evaluator's measured bytes/node must stay within
// sinr.ShardBytesPerNodeBudget.
//
// With -compare FILE the fresh measurements are additionally checked
// against a previously committed report on machine-invariant quantities:
// the run fails if any matching case's speedup ratio (fast over naive,
// sparse over dense, bounds over dense) shrank by more than the tolerance
// (2×) or an optimised path started allocating. CI runs this against the
// committed BENCH_macbench.json as a gross-regression smoke test, appends
// the per-case baseline-vs-current table to the job summary via -summary,
// and uploads the fresh JSON as an artifact.
//
// -cpuprofile and -memprofile capture pprof profiles of either mode, so a
// hot-path regression flagged by the gate can be diagnosed from the same
// binary that measured it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"sinrmac/internal/approgress"
	"sinrmac/internal/core"
	"sinrmac/internal/fault"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/stats"
	"sinrmac/internal/topology"
)

// listener records the first rcv slot at its node.
type listener struct {
	core.NopLayer
	rcvSlot int64
}

func (l *listener) OnRcv(slot int64, m core.Message) {
	if l.rcvSlot < 0 {
		l.rcvSlot = slot
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes      = flag.Int("n", 24, "cluster size (the listener plus n-1 broadcasters)")
		trials     = flag.Int("trials", 3, "trials per configuration")
		seed       = flag.Uint64("seed", 1, "random seed")
		jsonMode   = flag.Bool("json", false, "benchmark the slot pipeline and write a JSON report instead of the ablation sweeps")
		large      = flag.Bool("large", false, "include the n=1e6 sharded smoke case in -json mode (minutes of extra runtime; keep it out of the committed baseline so gated runs stay fast)")
		outPath    = flag.String("out", benchFile, "path the -json report is written to")
		compare    = flag.String("compare", "", "baseline report to check the fresh -json measurements against (fails on gross regressions)")
		summary    = flag.String("summary", "", "append a markdown baseline-vs-current table of the -json measurements to this file (CI writes it to the job summary)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (hot-path regressions can then be diagnosed from the same binary the CI gate runs)")
		memProfile = flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			}
		}()
	}

	if *jsonMode {
		return runJSONBench(*seed, *outPath, *compare, *summary, *large)
	}

	fmt.Printf("ablation workload: one cluster of %d nodes, %d broadcasters, listener = node 0\n\n", *nodes, *nodes-1)

	base := func(lambda float64) approgress.Config {
		cfg := approgress.DefaultConfig(lambda, 0.1, 3)
		cfg.QScale = 0.5
		cfg.TFactor = 4
		cfg.MISRounds = 4
		cfg.DataFactor = 2
		return cfg
	}

	type variant struct {
		name   string
		mutate func(*approgress.Config)
	}
	groups := []struct {
		title    string
		variants []variant
	}{
		{"transmission probability p", []variant{
			{"p=0.05", func(c *approgress.Config) { c.P = 0.05 }},
			{"p=0.10 (default)", func(c *approgress.Config) { c.P = 0.10 }},
			{"p=0.25", func(c *approgress.Config) { c.P = 0.25 }},
		}},
		{"data divisor scale QScale", []variant{
			{"QScale=0.25", func(c *approgress.Config) { c.QScale = 0.25 }},
			{"QScale=0.5 (default)", func(c *approgress.Config) { c.QScale = 0.5 }},
			{"QScale=1.0 (paper formula)", func(c *approgress.Config) { c.QScale = 1.0 }},
		}},
		{"discovery block scale TFactor", []variant{
			{"TFactor=2", func(c *approgress.Config) { c.TFactor = 2 }},
			{"TFactor=4 (default)", func(c *approgress.Config) { c.TFactor = 4 }},
			{"TFactor=8", func(c *approgress.Config) { c.TFactor = 8 }},
		}},
	}

	for _, g := range groups {
		fmt.Printf("== %s\n", g.title)
		fmt.Printf("%-28s  %10s  %10s  %10s\n", "variant", "epoch_len", "median", "max")
		for _, v := range g.variants {
			latencies, epochLen, err := measure(*nodes, *trials, *seed, base, v.mutate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
				return 1
			}
			fmt.Printf("%-28s  %10d  %10.0f  %10.0f\n", v.name, epochLen, stats.Median(latencies), stats.Max(latencies))
		}
		fmt.Println()
	}
	return 0
}

// benchCase is one measured slot-path configuration in BENCH_macbench.json.
type benchCase struct {
	// Name identifies the regime: "matrix" (n below the power-matrix
	// threshold) or "grid" (spatial-grid far-field path).
	Name string `json:"name"`
	// Nodes and Transmitters describe the workload.
	Nodes        int `json:"nodes"`
	Transmitters int `json:"transmitters"`
	// Naive and Fast are the per-slot cost of the reference and fast
	// evaluators.
	NaiveNsPerOp     float64 `json:"naive_ns_per_op"`
	NaiveAllocsPerOp int64   `json:"naive_allocs_per_op"`
	FastNsPerOp      float64 `json:"fast_ns_per_op"`
	FastAllocsPerOp  int64   `json:"fast_allocs_per_op"`
	// SpeedupVsNaive is NaiveNsPerOp / FastNsPerOp.
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
}

// sparseCase is one sparse-vs-dense slot-path measurement: the same
// workload (|tx| = √n) evaluated with the sender-centric sparse path
// disabled and enabled.
type sparseCase struct {
	// Name identifies the regime: "sparse_matrix" or "sparse_grid".
	Name string `json:"name"`
	// Nodes and Transmitters describe the workload (sinr.SparseBenchWorkload).
	Nodes        int `json:"nodes"`
	Transmitters int `json:"transmitters"`
	// Dense and Sparse are the per-slot cost of the full receiver scan and
	// the sender-centric candidate enumeration.
	DenseNsPerOp      float64 `json:"dense_ns_per_op"`
	DenseAllocsPerOp  int64   `json:"dense_allocs_per_op"`
	SparseNsPerOp     float64 `json:"sparse_ns_per_op"`
	SparseAllocsPerOp int64   `json:"sparse_allocs_per_op"`
	// SpeedupVsDense is DenseNsPerOp / SparseNsPerOp.
	SpeedupVsDense float64 `json:"speedup_vs_dense"`
}

// boundsCase is one bounds-vs-dense slot-path measurement: the same dense
// workload (sinr.DenseBenchWorkload) evaluated with the hierarchical-bounds
// tier disabled and with the default adaptive dispatch, plus the measured
// exact-fallback fraction of the bounds run.
type boundsCase struct {
	// Name identifies the transmitter density: "bounds_quarter" (k = n/4)
	// or "bounds_full" (k = n, everyone transmits — no listeners, so the
	// adaptive dispatch correctly declines the tier and the entry mostly
	// documents that the degenerate slot stays cheap).
	Name string `json:"name"`
	// Nodes and Transmitters describe the workload.
	Nodes        int `json:"nodes"`
	Transmitters int `json:"transmitters"`
	// Dense and Bounds are the per-slot cost of the pre-bounds dense scan
	// and the adaptive evaluator (bounds tier enabled).
	DenseNsPerOp      float64 `json:"dense_ns_per_op"`
	DenseAllocsPerOp  int64   `json:"dense_allocs_per_op"`
	BoundsNsPerOp     float64 `json:"bounds_ns_per_op"`
	BoundsAllocsPerOp int64   `json:"bounds_allocs_per_op"`
	// SpeedupVsDense is DenseNsPerOp / BoundsNsPerOp.
	SpeedupVsDense float64 `json:"speedup_vs_dense"`
	// RefineRate is the fraction of bounds-evaluated receivers that fell
	// back to the exact evaluator (sinr.BoundsStats.RefineRate over the
	// measured slots).
	RefineRate float64 `json:"refine_rate"`
}

// shardCase is one sharded-regime measurement at scale: the same dense
// workload evaluated by the per-pair grid regime (dense scan pinned, shards
// disabled) and by the sharded evaluator, plus the sharded evaluator's
// measured heap footprint (channel + evaluator + workload, GC-settled
// HeapAlloc delta). The large case skips the dense side — a 10⁶-node
// per-pair scan takes minutes per op — and documents footprint and absolute
// slot cost only.
type shardCase struct {
	// Name identifies the scale: "shard_n100k" or "shard_n1m" (-large only).
	Name string `json:"name"`
	// Nodes, Transmitters and Shards describe the workload and partition.
	Nodes        int `json:"nodes"`
	Transmitters int `json:"transmitters"`
	Shards       int `json:"shards"`
	// Dense is the per-pair grid regime's dense scan (absent for the large
	// case); Shard the sharded evaluator with adaptive certificate dispatch.
	DenseNsPerOp     float64 `json:"dense_ns_per_op,omitempty"`
	DenseAllocsPerOp int64   `json:"dense_allocs_per_op,omitempty"`
	ShardNsPerOp     float64 `json:"shard_ns_per_op"`
	ShardAllocsPerOp int64   `json:"shard_allocs_per_op"`
	// SpeedupVsDense is DenseNsPerOp / ShardNsPerOp (0 when no dense side).
	SpeedupVsDense float64 `json:"speedup_vs_dense,omitempty"`
	// RefineRate is the certified pipeline's exact-fallback fraction.
	RefineRate float64 `json:"refine_rate"`
	// RSSBytes is the settled heap growth of building the channel plus the
	// sharded evaluator and running one slot; BytesPerNode divides by n and
	// is gated within-run against sinr.ShardBytesPerNodeBudget.
	RSSBytes     uint64  `json:"rss_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`
}

// churnCase is one churn-epoch measurement: the cost of incrementally
// applying a mobility epoch to a live fast evaluator
// (sinr.FastChannel.ApplyEpoch) against rebuilding the evaluator from
// scratch over the post-epoch deployment, on sinr.ChurnBenchWorkload.
type churnCase struct {
	// Name identifies the regime: "churn_matrix" (power matrix patched in
	// place) or "churn_grid" (grid buckets patched, column cache dropped).
	Name string `json:"name"`
	// Nodes is the deployment size; Changed how many nodes move per epoch.
	Nodes   int `json:"nodes"`
	Changed int `json:"changed_per_epoch"`
	// Rebuild and Apply are the per-epoch cost of a from-scratch evaluator
	// rebuild and of the incremental apply path.
	RebuildNsPerOp     float64 `json:"rebuild_ns_per_op"`
	RebuildAllocsPerOp int64   `json:"rebuild_allocs_per_op"`
	ApplyNsPerOp       float64 `json:"apply_ns_per_op"`
	ApplyAllocsPerOp   int64   `json:"apply_allocs_per_op"`
	// SpeedupVsRebuild is RebuildNsPerOp / ApplyNsPerOp.
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`
}

// stepCase is one steady-state Engine.Step measurement over the pooled
// frame pipeline.
type stepCase struct {
	Name string `json:"name"`
	// Nodes is the deployment size; TxPerSlot the mean transmitter count.
	Nodes     int     `json:"nodes"`
	TxPerSlot float64 `json:"tx_per_slot"`
	// Parallel reports whether the worker-pool driver was enabled; Pinned
	// whether the fused parallel driver was forced past the measured
	// crossover (sim.Config.PinDriver).
	Parallel    bool    `json:"parallel"`
	Pinned      bool    `json:"pinned,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// TickNsPerSlot, EvalNsPerSlot and RecvNsPerSlot split the sequential
	// driver's slot into its three phases (node ticks, SINR evaluation,
	// frame deliveries + observers). They come from a separate profiled
	// pass (sim.Config.Profile) over the same workload, so the time.Now
	// instrumentation never pollutes NsPerOp, and they are set only on the
	// hook-free sequential cases — the profiled driver is sequential-only.
	TickNsPerSlot float64 `json:"tick_ns_per_slot,omitempty"`
	EvalNsPerSlot float64 `json:"eval_ns_per_slot,omitempty"`
	RecvNsPerSlot float64 `json:"recv_ns_per_slot,omitempty"`
}

// batchCase is one batched-executor measurement: the identical pinned
// fused-parallel engine workload driven slot-at-a-time via Engine.Step —
// one workpool session (helper wake + park) per slot — and via
// Engine.RunBatch, which keeps one session open across the whole
// micro-batch. The two executions are bit-identical (pinned by the
// differential suite in internal/sim), so the ratio isolates the
// per-slot session overhead the batch amortises.
type batchCase struct {
	Name string `json:"name"`
	// Nodes is the deployment size; TxPerSlot the mean transmitter count;
	// Batch the micro-batch size the Run side executes per op.
	Nodes     int     `json:"nodes"`
	TxPerSlot float64 `json:"tx_per_slot"`
	Batch     int     `json:"batch"`
	// StepNsPerSlot is the slot-at-a-time cost (one Engine.Step op);
	// BatchNsPerSlot the RunBatch cost divided by the batch size.
	StepNsPerSlot     float64 `json:"step_ns_per_slot"`
	StepAllocsPerSlot int64   `json:"step_allocs_per_slot"`
	BatchNsPerSlot    float64 `json:"batch_ns_per_slot"`
	// BatchAllocsPerOp counts allocations per whole RunBatch op (not per
	// slot); the within-run gate pins it to zero.
	BatchAllocsPerOp int64 `json:"batch_allocs_per_op"`
	// SpeedupVsStep is StepNsPerSlot / BatchNsPerSlot.
	SpeedupVsStep float64 `json:"speedup_vs_step"`
}

// blockedCase is one blocked-kernel measurement: a production hot loop
// restructured into 4-wide receiver blocks against the scalar loop it
// replaced, over the identical inputs. The two are bit-identical in result
// (pinned by the kernel tests in internal/sinr), so the ratio is pure
// instruction-scheduling gain.
type blockedCase struct {
	Name string `json:"name"`
	// Nodes is the workload size; Transmitters the gather's |tx| (absent
	// for the column fill, which has no transmitter set).
	Nodes        int `json:"nodes"`
	Transmitters int `json:"transmitters,omitempty"`
	// Scalar and Blocked are the per-op cost of the replaced scalar loop
	// and the shipped blocked kernel.
	ScalarNsPerOp  float64 `json:"scalar_ns_per_op"`
	BlockedNsPerOp float64 `json:"blocked_ns_per_op"`
	// SpeedupVsScalar is ScalarNsPerOp / BlockedNsPerOp.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// kernelCase is one path-loss kernel measurement: the pow-free arithmetic
// (integer-α multiplication plus Sqrt distance) against the pre-rewrite
// math.Pow + math.Hypot composition over the same point pairs. The two are
// bit-identical in result (pinned by the differential tests in
// internal/sinr), so the ratio is pure arithmetic cost.
type kernelCase struct {
	Name  string  `json:"name"`
	Alpha float64 `json:"alpha"`
	// Pairs is how many receiver pairs each op evaluates.
	Pairs int `json:"pairs"`
	// Pow and Fast are the per-op cost of the math.Pow+Hypot reference and
	// the shipped ReceivedPower(Dist) composition.
	PowNsPerOp  float64 `json:"pow_ns_per_op"`
	FastNsPerOp float64 `json:"fast_ns_per_op"`
	// SpeedupVsPow is PowNsPerOp / FastNsPerOp.
	SpeedupVsPow float64 `json:"speedup_vs_pow"`
}

// benchReport is the top-level BENCH_macbench.json document.
type benchReport struct {
	GoMaxProcs   int           `json:"gomaxprocs"`
	Seed         uint64        `json:"seed"`
	Cases        []benchCase   `json:"cases"`
	SparseCases  []sparseCase  `json:"sparse_cases"`
	BoundsCases  []boundsCase  `json:"bounds_cases"`
	ShardCases   []shardCase   `json:"shard_cases,omitempty"`
	ChurnCases   []churnCase   `json:"churn_cases"`
	StepCases    []stepCase    `json:"step_cases"`
	BatchCases   []batchCase   `json:"batch_cases,omitempty"`
	BlockedCases []blockedCase `json:"blocked_cases,omitempty"`
	KernelCases  []kernelCase  `json:"kernel_cases,omitempty"`
}

// benchFile is where runJSONBench writes its report by default.
const benchFile = "BENCH_macbench.json"

// compareTolerance is the gross-regression threshold of -compare: a fresh
// speedup ratio (fast over naive, sparse over dense) may be at most this
// many times smaller than the committed baseline's. The gate compares
// ratios measured within one run rather than absolute ns/op, so it is
// invariant to how fast the machine running it is; the tolerance is
// generous on purpose — the check has to survive workload-shape variance
// across hosts and only catch order-of-magnitude breakage.
const compareTolerance = 2.0

// stepCrossoverMinNodes and stepCrossoverTolerance define the within-run
// engine-step crossover gate: at deployments of at least this size, the
// adaptive (Parallel, unpinned) driver must not be slower than the
// sequential driver by more than the tolerance. The adaptive driver times
// both drivers and picks the cheaper one, so — modulo its 16-slot probe
// overhead per 8192-slot window and benchmark noise — it can only lose by a
// sliver; a larger loss means the crossover machinery itself broke. Pinned
// cases are exempt: they exist to measure the fused session driver even
// where the crossover would correctly decline it.
const (
	stepCrossoverMinNodes  = 5000
	stepCrossoverTolerance = 1.2
)

// boundsFullMinSpeedup is the within-run gate on the degenerate all-transmit
// case: with every node transmitting, half-duplex leaves no listener and
// both the pinned dense scan and the adaptive dispatch short-circuit on the
// same O(k) early-out, so the adaptive side may not be meaningfully slower.
// A ratio below this bound means a tier is paying per-slot setup cost before
// declining the degenerate slot. Because the two sides are near-identical
// ~10 µs loops whose single measurements swing tens of percent with host
// frequency state, the gate judges the ratio of per-side minima over up to
// boundsFullRounds interleaved measurement rounds (stopping early once it
// passes): a genuine setup cost is persistent and survives the minimum.
const (
	boundsFullMinSpeedup = 0.95
	boundsFullRounds     = 5
)

// faultHookMaxOverhead is the within-run gate on the fault-injection hook:
// the serial engine-step workload with a zero-fault injector installed
// (engine_step_faults) may cost at most this factor over the identical
// workload with no hook. A zero-rate plan consumes no randomness and scrubs
// nothing, so the measured gap is pure dispatch overhead — the price every
// non-faulty simulation pays for the layer existing. Like bounds_full, the
// two sides are near-identical loops, so the gate judges the ratio of
// per-side minima over up to faultHookRounds interleaved rounds.
const (
	faultHookMaxOverhead = 1.05
	faultHookRounds      = 5
)

// batchRunMinSpeedup is the within-run gate on the batched executor: per
// slot, Engine.RunBatch on the pinned fused-parallel workload may never be
// slower than the slot-at-a-time Engine.Step loop — batching only removes
// per-slot session overhead (helper wake + park), it adds no per-slot work.
// The absolute win depends on how expensive a wake is on the host (it is
// largest on few-core runners where helpers contend with the leader), so
// the gate only pins the sign; the measured speedup is reported, not
// gated, beyond that. Both sides are re-measured in interleaved rounds and
// judged on per-side minima, like bounds_full. The batch side must also
// stay allocation-free across a whole micro-batch.
const (
	batchRunMinSpeedup = 1.0
	batchRunRounds     = 5
)

// blockedGatherMinSpeedup is the within-run gate on the blocked matrix
// totals gather: processing 4 receivers per transmitter pass breaks the
// loop-carried floating-point add chain (one ~4-cycle add latency per
// element scalar, four independent chains blocked), a microarchitectural
// win that exists on any out-of-order host, so the gate demands a real
// margin. The column fill's scalar loop already had independent
// iterations, so its blocked form is gated only to not regress
// (blockedFillMinSpeedup). Judged on per-side minima over interleaved
// rounds, as above.
const (
	blockedGatherMinSpeedup = 1.15
	blockedFillMinSpeedup   = 0.95
	blockedKernelRounds     = 5
)

// benchSlot measures one evaluator configuration over a fixed transmitter
// set, warming the evaluator first so caches behave as in a running
// simulation.
func benchSlot(ev sinr.ChannelEvaluator, tx []int) testing.BenchmarkResult {
	ev.SlotReceptions(tx)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.SlotReceptions(tx)
		}
	})
}

// runJSONBench measures the slot pipeline via testing.Benchmark, writes the
// report to outPath, appends a markdown table to summaryPath when set, and
// — when comparePath is set — checks the fresh numbers against the
// committed baseline.
func runJSONBench(seed uint64, outPath, comparePath, summaryPath string, largeMode bool) int {
	report := benchReport{GoMaxProcs: runtime.GOMAXPROCS(0), Seed: seed}

	// Naive-vs-fast on the dense canonical workload, both cache regimes:
	// below sinr.DefaultMatrixThreshold the fast path serves slots from the
	// precomputed power matrix; above it, from the spatial grid with the
	// lazy column cache.
	for _, reg := range []struct {
		name string
		n    int
	}{
		{"matrix", 1000},
		{"grid", 4000},
	} {
		ch, tx, err := sinr.BenchWorkload(reg.n, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		naive := benchSlot(ch, tx)
		fast := sinr.NewFastChannel(ch)
		fastRes := benchSlot(fast, tx)
		fast.Close()
		c := benchCase{
			Name:             reg.name,
			Nodes:            reg.n,
			Transmitters:     len(tx),
			NaiveNsPerOp:     float64(naive.NsPerOp()),
			NaiveAllocsPerOp: naive.AllocsPerOp(),
			FastNsPerOp:      float64(fastRes.NsPerOp()),
			FastAllocsPerOp:  fastRes.AllocsPerOp(),
		}
		if c.FastNsPerOp > 0 {
			c.SpeedupVsNaive = c.NaiveNsPerOp / c.FastNsPerOp
		}
		report.Cases = append(report.Cases, c)
		fmt.Printf("%-13s n=%-5d k=%-4d naive %12.0f ns/op (%d allocs)  fast %10.0f ns/op (%d allocs)  speedup %.1fx\n",
			reg.name, c.Nodes, c.Transmitters, c.NaiveNsPerOp, c.NaiveAllocsPerOp, c.FastNsPerOp, c.FastAllocsPerOp, c.SpeedupVsNaive)
	}

	// Sparse-vs-dense on the sparse workload (|tx| = √n at n = 5000), both
	// regimes. The matrix regime raises the threshold so the 5000-node
	// deployment still uses the cached power matrix, isolating the receiver
	// enumeration as the only difference.
	const sparseN = 5000
	for _, reg := range []struct {
		name      string
		threshold int
	}{
		{"sparse_matrix", sparseN},
		{"sparse_grid", -1},
	} {
		ch, tx, err := sinr.SparseBenchWorkload(sparseN, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		dense := sinr.NewFastChannel(ch, sinr.FastOptions{MatrixThreshold: reg.threshold, SparseFactor: -1})
		denseRes := benchSlot(dense, tx)
		dense.Close()
		sparse := sinr.NewFastChannel(ch, sinr.FastOptions{MatrixThreshold: reg.threshold})
		sparseRes := benchSlot(sparse, tx)
		sparse.Close()
		c := sparseCase{
			Name:              reg.name,
			Nodes:             sparseN,
			Transmitters:      len(tx),
			DenseNsPerOp:      float64(denseRes.NsPerOp()),
			DenseAllocsPerOp:  denseRes.AllocsPerOp(),
			SparseNsPerOp:     float64(sparseRes.NsPerOp()),
			SparseAllocsPerOp: sparseRes.AllocsPerOp(),
		}
		if c.SparseNsPerOp > 0 {
			c.SpeedupVsDense = c.DenseNsPerOp / c.SparseNsPerOp
		}
		report.SparseCases = append(report.SparseCases, c)
		fmt.Printf("%-13s n=%-5d k=%-4d dense %12.0f ns/op (%d allocs)  sparse %9.0f ns/op (%d allocs)  speedup %.1fx\n",
			reg.name, c.Nodes, c.Transmitters, c.DenseNsPerOp, c.DenseAllocsPerOp, c.SparseNsPerOp, c.SparseAllocsPerOp, c.SpeedupVsDense)
	}

	// Bounds-vs-dense on the dense workload (k = n/4 and k = n at n = 5000,
	// grid regime): the hierarchical-bounds tier against the pre-bounds
	// dense scan, with the sparse path pinned off on both sides so the tier
	// is the only difference. The bounds side keeps the default adaptive
	// dispatch — the number reported is what simulations actually get — and
	// its refine rate (exact-fallback fraction) rides along.
	const boundsN = 5000
	for _, reg := range []struct {
		name string
		k    int
	}{
		{"bounds_quarter", boundsN / 4},
		{"bounds_full", boundsN},
	} {
		runtime.GC() // settle the previous family's garbage before timing
		ch, tx, err := sinr.DenseBenchWorkload(boundsN, reg.k, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		measure := func() boundsCase {
			dense := sinr.NewFastChannel(ch, sinr.FastOptions{SparseFactor: -1, BoundsFactor: -1})
			denseRes := benchSlot(dense, tx)
			dense.Close()
			bounds := sinr.NewFastChannel(ch, sinr.FastOptions{SparseFactor: -1})
			boundsRes := benchSlot(bounds, tx)
			st := bounds.BoundsStats()
			bounds.Close()
			c := boundsCase{
				Name:              reg.name,
				Nodes:             boundsN,
				Transmitters:      len(tx),
				DenseNsPerOp:      float64(denseRes.NsPerOp()),
				DenseAllocsPerOp:  denseRes.AllocsPerOp(),
				BoundsNsPerOp:     float64(boundsRes.NsPerOp()),
				BoundsAllocsPerOp: boundsRes.AllocsPerOp(),
				RefineRate:        st.RefineRate(),
			}
			if c.BoundsNsPerOp > 0 {
				c.SpeedupVsDense = c.DenseNsPerOp / c.BoundsNsPerOp
			}
			return c
		}
		c := measure()
		if reg.name == "bounds_full" {
			// Both sides of the all-transmit slot run the identical O(k)
			// early-out, so the true ratio is 1 — but at ~10 µs/op a single
			// measurement swings tens of percent with host frequency state.
			// Gate on the ratio of per-side minima over a few interleaved
			// rounds: a real per-slot setup cost is persistent and survives
			// the minimum, noise does not.
			for round := 1; round < boundsFullRounds && c.SpeedupVsDense < boundsFullMinSpeedup; round++ {
				m := measure()
				if m.DenseNsPerOp < c.DenseNsPerOp {
					c.DenseNsPerOp = m.DenseNsPerOp
					c.DenseAllocsPerOp = m.DenseAllocsPerOp
				}
				if m.BoundsNsPerOp < c.BoundsNsPerOp {
					c.BoundsNsPerOp = m.BoundsNsPerOp
					c.BoundsAllocsPerOp = m.BoundsAllocsPerOp
					c.RefineRate = m.RefineRate
				}
				if c.BoundsNsPerOp > 0 {
					c.SpeedupVsDense = c.DenseNsPerOp / c.BoundsNsPerOp
				}
			}
			if c.SpeedupVsDense < boundsFullMinSpeedup {
				fmt.Fprintf(os.Stderr, "macbench: bounds_full gate failed: adaptive dispatch %.0f ns/op vs pinned dense %.0f ns/op (%.2fx < %.2fx) — the degenerate all-transmit slot is paying tier setup cost\n",
					c.BoundsNsPerOp, c.DenseNsPerOp, c.SpeedupVsDense, boundsFullMinSpeedup)
				return 1
			}
		}
		report.BoundsCases = append(report.BoundsCases, c)
		fmt.Printf("%-14s n=%-5d k=%-4d dense %12.0f ns/op (%d allocs)  bounds %9.0f ns/op (%d allocs)  speedup %.1fx  refine %.3f\n",
			reg.name, c.Nodes, c.Transmitters, c.DenseNsPerOp, c.DenseAllocsPerOp, c.BoundsNsPerOp, c.BoundsAllocsPerOp, c.SpeedupVsDense, c.RefineRate)
	}

	// The sharded regime at scale: n = 100k (and n = 10⁶ with -large)
	// against the per-pair dense scan where that scan is still affordable,
	// with the settled heap footprint of channel + evaluator measured and
	// gated against the documented per-node budget.
	shardScales := []struct {
		name      string
		n, k      int
		shards    int // 0 = automatic (n is above the threshold at both scales)
		withDense bool
	}{
		{"shard_n100k", 100_000, 100_000 / 32, 8, true},
	}
	if largeMode {
		shardScales = append(shardScales, struct {
			name      string
			n, k      int
			shards    int
			withDense bool
		}{"shard_n1m", 1_000_000, 1_000_000 / 32, 0, false})
	}
	for _, sc := range shardScales {
		c, err := measureShardCase(sc.name, sc.n, sc.k, sc.shards, seed, sc.withDense)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		if c.BytesPerNode > sinr.ShardBytesPerNodeBudget {
			fmt.Fprintf(os.Stderr, "macbench: %s memory gate failed: %.1f heap bytes/node exceeds the documented budget %d\n",
				c.Name, c.BytesPerNode, sinr.ShardBytesPerNodeBudget)
			return 1
		}
		report.ShardCases = append(report.ShardCases, c)
		fmt.Printf("%-14s n=%-7d k=%-6d S=%-3d dense %12.0f ns/op  shard %12.0f ns/op (%d allocs)  speedup %.1fx  refine %.3f  %.1f B/node\n",
			c.Name, c.Nodes, c.Transmitters, c.Shards, c.DenseNsPerOp, c.ShardNsPerOp, c.ShardAllocsPerOp, c.SpeedupVsDense, c.RefineRate, c.BytesPerNode)
	}

	// Churn epochs: incremental apply vs from-scratch rebuild at n = 5000
	// with 1% of the nodes moving per epoch, in both cache regimes. The
	// matrix regime raises the threshold so the power matrix — the O(n²)
	// state the incremental path exists to avoid rebuilding — is in play at
	// this size; the apply loop cycles a fixed away/back delta pair, so its
	// steady state is allocation-free.
	const churnN = 5000
	for _, reg := range []struct {
		name      string
		threshold int
	}{
		{"churn_matrix", churnN},
		{"churn_grid", -1},
	} {
		ch, deltas, err := sinr.ChurnBenchWorkload(churnN, churnN/100, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		opts := sinr.FastOptions{MatrixThreshold: reg.threshold}
		rebuildRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := sinr.NewFastChannel(ch, opts)
				f.Close()
			}
		})
		f := sinr.NewFastChannel(ch, opts)
		for _, d := range deltas { // warm buckets, arenas and capacities
			if err := f.ApplyEpoch(d); err != nil {
				fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
				return 1
			}
		}
		var applyErr error
		applyRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f.ApplyEpoch(deltas[i%2]); err != nil {
					applyErr = err
					b.FailNow()
				}
			}
		})
		f.Close()
		if applyErr != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", applyErr)
			return 1
		}
		c := churnCase{
			Name:               reg.name,
			Nodes:              churnN,
			Changed:            churnN / 100,
			RebuildNsPerOp:     float64(rebuildRes.NsPerOp()),
			RebuildAllocsPerOp: rebuildRes.AllocsPerOp(),
			ApplyNsPerOp:       float64(applyRes.NsPerOp()),
			ApplyAllocsPerOp:   applyRes.AllocsPerOp(),
		}
		if c.ApplyNsPerOp > 0 {
			c.SpeedupVsRebuild = c.RebuildNsPerOp / c.ApplyNsPerOp
		}
		report.ChurnCases = append(report.ChurnCases, c)
		fmt.Printf("%-14s n=%-5d c=%-4d rebuild %11.0f ns/op (%d allocs)  apply %10.0f ns/op (%d allocs)  speedup %.1fx\n",
			reg.name, c.Nodes, c.Changed, c.RebuildNsPerOp, c.RebuildAllocsPerOp, c.ApplyNsPerOp, c.ApplyAllocsPerOp, c.SpeedupVsRebuild)
	}

	// Steady-state Engine.Step over pooled frames: the whole pipeline —
	// tick, sparse evaluation, deliveries — with its allocation count,
	// which must stay at zero. The serial/adaptive pairs at n = 2000 and
	// n = 5000 measure what a simulation actually gets from Parallel: true
	// (the crossover settles on whichever driver measured cheaper); the
	// pinned case forces the fused session driver so its cost is tracked
	// even on hosts where the crossover declines it.
	for _, sc := range []struct {
		name    string
		n       int
		workers int // 0 = GOMAXPROCS
		par     bool
		pin     bool
	}{
		{"engine_step", 2000, 1, false, false},
		{"engine_step_parallel", 2000, 0, true, false},
		{"engine_step_5k", 5000, 1, false, false},
		{"engine_step_parallel_5k", 5000, 0, true, false},
		{"engine_step_fused4", 2000, 4, true, true},
	} {
		c, err := benchEngineStep(sc.name, seed, sc.n, sim.Config{
			Seed: seed, Parallel: sc.par, Workers: sc.workers, PinDriver: sc.pin,
		}, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		report.StepCases = append(report.StepCases, c)
		fmt.Printf("%-23s n=%-5d k=%-6.1f %12.0f ns/op (%d allocs)\n",
			c.Name, c.Nodes, c.TxPerSlot, c.NsPerOp, c.AllocsPerOp)
	}
	if err := checkStepCrossover(report.StepCases); err != nil {
		fmt.Fprintf(os.Stderr, "macbench: engine-step crossover gate failed:\n%v\n", err)
		return 1
	}

	// The fault-injection hook's cost to a healthy simulation: the serial
	// n = 2000 workload with a zero-fault injector wired into the engine,
	// gated within-run against an interleaved hook-free run of the same
	// workload (faultHookMaxOverhead over per-side minima).
	fc, err := benchEngineStepFaults(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
		return 1
	}
	report.StepCases = append(report.StepCases, fc)
	fmt.Printf("%-23s n=%-5d k=%-6.1f %12.0f ns/op (%d allocs)\n",
		fc.Name, fc.Nodes, fc.TxPerSlot, fc.NsPerOp, fc.AllocsPerOp)

	// Per-phase breakdown of the sequential step at both deployment sizes,
	// attached to the hook-free sequential cases above. Measured in a
	// separate profiled pass (see benchEnginePhases) so the timed numbers
	// stay instrumentation-free.
	for _, n := range []int{2000, 5000} {
		prof, err := benchEnginePhases(seed, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		if prof.Slots == 0 {
			fmt.Fprintf(os.Stderr, "macbench: phase profile at n=%d recorded no slots\n", n)
			return 1
		}
		slots := float64(prof.Slots)
		tick, eval, recv := float64(prof.TickNs)/slots, float64(prof.EvalNs)/slots, float64(prof.RecvNs)/slots
		for i := range report.StepCases {
			c := &report.StepCases[i]
			if c.Parallel || c.Nodes != n || c.Name == "engine_step_faults" {
				continue
			}
			c.TickNsPerSlot, c.EvalNsPerSlot, c.RecvNsPerSlot = tick, eval, recv
		}
		fmt.Printf("%-23s n=%-5d tick %6.0f ns/slot  eval %8.0f ns/slot  recv %6.0f ns/slot\n",
			"engine_phases", n, tick, eval, recv)
	}

	// The batched executor vs the slot-at-a-time Step loop on the pinned
	// fused-parallel workload, gated within-run (batchRunMinSpeedup, zero
	// steady-state allocations per micro-batch).
	for _, sc := range []struct {
		name string
		n    int
	}{
		{"engine_run_batch", 2000},
		{"engine_run_batch_5k", 5000},
	} {
		c, err := benchEngineRunBatch(sc.name, seed, sc.n, int(sim.DefaultBatchSlots))
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		report.BatchCases = append(report.BatchCases, c)
		fmt.Printf("%-23s n=%-5d b=%-4d step %9.0f ns/slot  batch %9.0f ns/slot (%d allocs/batch)  speedup %.2fx\n",
			c.Name, c.Nodes, c.Batch, c.StepNsPerSlot, c.BatchNsPerSlot, c.BatchAllocsPerOp, c.SpeedupVsStep)
	}

	// The blocked kernel restructurings vs their scalar predecessors,
	// gated within-run (blockedGatherMinSpeedup / blockedFillMinSpeedup).
	for _, bench := range []func(uint64) (blockedCase, error){benchBlockedGather, benchBlockedFill} {
		c, err := bench(seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		report.BlockedCases = append(report.BlockedCases, c)
		fmt.Printf("%-23s n=%-5d k=%-4d scalar %9.0f ns/op  blocked %9.0f ns/op  speedup %.2fx\n",
			c.Name, c.Nodes, c.Transmitters, c.ScalarNsPerOp, c.BlockedNsPerOp, c.SpeedupVsScalar)
	}

	// Pow-free path-loss kernel vs the pre-rewrite math.Pow + math.Hypot
	// arithmetic, per fast-pathed exponent. The α = 2 entry is only
	// reachable through Params directly (channel validation requires
	// α > 2) but pins the cheapest fast path.
	for _, alpha := range []float64{2, 3, 4} {
		c := benchKernelPathLoss(alpha, seed)
		report.KernelCases = append(report.KernelCases, c)
		fmt.Printf("%-23s α=%-3.0f pairs=%-5d pow %6.0f ns/op  fast %6.0f ns/op  speedup %.1fx\n",
			c.Name, c.Alpha, c.Pairs, c.PowNsPerOp, c.FastNsPerOp, c.SpeedupVsPow)
		if c.SpeedupVsPow < 1 {
			fmt.Fprintf(os.Stderr, "macbench: %s: pow-free kernel is slower than math.Pow (%.2fx)\n",
				c.Name, c.SpeedupVsPow)
			return 1
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "macbench: writing %s: %v\n", outPath, err)
		return 1
	}
	fmt.Printf("wrote %s\n", outPath)

	if summaryPath != "" {
		if err := writeSummary(summaryPath, comparePath, report); err != nil {
			fmt.Fprintf(os.Stderr, "macbench: writing summary %s: %v\n", summaryPath, err)
			return 1
		}
	}
	if comparePath != "" {
		if err := compareReports(comparePath, report); err != nil {
			fmt.Fprintf(os.Stderr, "macbench: regression check against %s failed:\n%v\n", comparePath, err)
			return 1
		}
		fmt.Printf("no gross regressions vs %s (tolerance %.1fx)\n", comparePath, compareTolerance)
	}
	return 0
}

// writeSummary appends a markdown per-case table of the fresh measurements
// — and, when a baseline report is readable, the baseline speedup ratios
// and the current/baseline ratio the -compare gate judges — to path. CI
// points it at $GITHUB_STEP_SUMMARY so every run shows the full table, not
// just the gate's pass/fail.
func writeSummary(path, baselinePath string, fresh benchReport) error {
	baseline := make(map[string]float64)
	if baselinePath != "" {
		if data, err := os.ReadFile(baselinePath); err == nil {
			var base benchReport
			if err := json.Unmarshal(data, &base); err == nil {
				for _, c := range base.Cases {
					baseline[c.Name] = c.SpeedupVsNaive
				}
				for _, c := range base.SparseCases {
					baseline[c.Name] = c.SpeedupVsDense
				}
				for _, c := range base.BoundsCases {
					baseline[c.Name] = c.SpeedupVsDense
				}
				for _, c := range base.ShardCases {
					baseline[c.Name] = c.SpeedupVsDense
				}
				for _, c := range base.ChurnCases {
					baseline[c.Name] = c.SpeedupVsRebuild
				}
				for _, c := range base.BatchCases {
					baseline[c.Name] = c.SpeedupVsStep
				}
				for _, c := range base.BlockedCases {
					baseline[c.Name] = c.SpeedupVsScalar
				}
				for _, c := range base.KernelCases {
					baseline[c.Name] = c.SpeedupVsPow
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### macbench slot-pipeline benchmarks (GOMAXPROCS=%d)\n\n", fresh.GoMaxProcs)
	b.WriteString("| case | n | k | optimised ns/op | allocs/op | speedup | baseline speedup | current/baseline |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	ratioCell := func(name string, speedup float64) string {
		base, ok := baseline[name]
		if !ok || base <= 0 {
			return "— | —"
		}
		return fmt.Sprintf("%.1fx | %.2f", base, speedup/base)
	}
	for _, c := range fresh.Cases {
		fmt.Fprintf(&b, "| %s (fast vs naive) | %d | %d | %.0f | %d | %.1fx | %s |\n",
			c.Name, c.Nodes, c.Transmitters, c.FastNsPerOp, c.FastAllocsPerOp, c.SpeedupVsNaive, ratioCell(c.Name, c.SpeedupVsNaive))
	}
	for _, c := range fresh.SparseCases {
		fmt.Fprintf(&b, "| %s (sparse vs dense) | %d | %d | %.0f | %d | %.1fx | %s |\n",
			c.Name, c.Nodes, c.Transmitters, c.SparseNsPerOp, c.SparseAllocsPerOp, c.SpeedupVsDense, ratioCell(c.Name, c.SpeedupVsDense))
	}
	for _, c := range fresh.BoundsCases {
		fmt.Fprintf(&b, "| %s (bounds vs dense, refine %.3f) | %d | %d | %.0f | %d | %.1fx | %s |\n",
			c.Name, c.RefineRate, c.Nodes, c.Transmitters, c.BoundsNsPerOp, c.BoundsAllocsPerOp, c.SpeedupVsDense, ratioCell(c.Name, c.SpeedupVsDense))
	}
	for _, c := range fresh.ShardCases {
		ratio := "— | —"
		if c.SpeedupVsDense > 0 {
			ratio = ratioCell(c.Name, c.SpeedupVsDense)
		}
		fmt.Fprintf(&b, "| %s (S=%d, refine %.3f, %.1f B/node) | %d | %d | %.0f | %d | %.1fx | %s |\n",
			c.Name, c.Shards, c.RefineRate, c.BytesPerNode, c.Nodes, c.Transmitters, c.ShardNsPerOp, c.ShardAllocsPerOp, c.SpeedupVsDense, ratio)
	}
	for _, c := range fresh.ChurnCases {
		fmt.Fprintf(&b, "| %s (apply vs rebuild) | %d | %d | %.0f | %d | %.1fx | %s |\n",
			c.Name, c.Nodes, c.Changed, c.ApplyNsPerOp, c.ApplyAllocsPerOp, c.SpeedupVsRebuild, ratioCell(c.Name, c.SpeedupVsRebuild))
	}
	for _, c := range fresh.StepCases {
		label := c.Name
		if c.TickNsPerSlot > 0 || c.EvalNsPerSlot > 0 || c.RecvNsPerSlot > 0 {
			label = fmt.Sprintf("%s (tick %.0f / eval %.0f / recv %.0f ns)",
				c.Name, c.TickNsPerSlot, c.EvalNsPerSlot, c.RecvNsPerSlot)
		}
		fmt.Fprintf(&b, "| %s | %d | %.1f | %.0f | %d | — | — | — |\n",
			label, c.Nodes, c.TxPerSlot, c.NsPerOp, c.AllocsPerOp)
	}
	for _, c := range fresh.BatchCases {
		fmt.Fprintf(&b, "| %s (Run b=%d vs Step, per slot) | %d | %.1f | %.0f | %d | %.2fx | %s |\n",
			c.Name, c.Batch, c.Nodes, c.TxPerSlot, c.BatchNsPerSlot, c.BatchAllocsPerOp, c.SpeedupVsStep, ratioCell(c.Name, c.SpeedupVsStep))
	}
	for _, c := range fresh.BlockedCases {
		fmt.Fprintf(&b, "| %s (blocked vs scalar) | %d | %d | %.0f | 0 | %.2fx | %s |\n",
			c.Name, c.Nodes, c.Transmitters, c.BlockedNsPerOp, c.SpeedupVsScalar, ratioCell(c.Name, c.SpeedupVsScalar))
	}
	for _, c := range fresh.KernelCases {
		fmt.Fprintf(&b, "| %s (fast vs pow) | — | %d | %.0f | 0 | %.1fx | %s |\n",
			c.Name, c.Pairs, c.FastNsPerOp, c.SpeedupVsPow, ratioCell(c.Name, c.SpeedupVsPow))
	}
	fmt.Fprintf(&b, "\nRegression gate: speedup ratios may shrink at most %.1fx vs the committed baseline; optimised paths may not allocate more than it.\n", compareTolerance)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(b.String())
	return err
}

// stepBenchNode is the minimal sim.Node used by the Engine.Step benchmark:
// it transmits a data frame with a fixed probability each slot.
type stepBenchNode struct {
	src  *rng.Source
	p    float64
	kind sim.FrameKind
}

func (n *stepBenchNode) Init(id int, src *rng.Source) { n.src = src }

func (n *stepBenchNode) Tick(slot int64, f *sim.Frame) bool {
	if !n.src.Bernoulli(n.p) {
		return false
	}
	f.Kind = n.kind
	f.Msg = core.Message{ID: 1, Origin: 0}
	return true
}

func (n *stepBenchNode) Receive(slot int64, f *sim.Frame) {}

// benchEngineStep measures a steady-state Engine.Step on an n-node sparse
// workload (≈√n transmitters per slot) over the fast evaluator, under the
// driver configuration in cfg. The warm-up runs past the adaptive
// crossover's first probe window so the measured steady state is the driver
// the engine settled on, not the probe schedule. With faultHook set, a
// zero-fault injector is installed the way a fault experiment would install
// it (WrapNodes plus Config.Faults), measuring the hook dispatch cost.
func benchEngineStep(name string, seed uint64, n int, cfg sim.Config, faultHook bool) (stepCase, error) {
	ch, _, err := sinr.SparseBenchWorkload(n, seed)
	if err != nil {
		return stepCase{}, err
	}
	kind := sim.RegisterFrameKind("macbench.step")
	txPerSlot := math.Sqrt(float64(n))
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &stepBenchNode{p: txPerSlot / float64(n), kind: kind}
	}
	if faultHook {
		inj, err := fault.NewInjector(fault.Plan{Seed: seed}, n)
		if err != nil {
			return stepCase{}, err
		}
		nodes = inj.WrapNodes(nodes)
		cfg.Faults = inj
	}
	fast := sinr.NewFastChannel(ch)
	defer fast.Close()
	cfg.Evaluator = fast
	eng, err := sim.NewEngine(ch, nodes, cfg)
	if err != nil {
		return stepCase{}, err
	}
	eng.Run(64, nil) // warm pool and buffers; complete the probe window
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
	})
	return stepCase{
		Name:        name,
		Nodes:       n,
		TxPerSlot:   txPerSlot,
		Parallel:    cfg.Parallel,
		Pinned:      cfg.PinDriver,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// benchEngineStepFaults measures engine_step_faults — the serial n = 2000
// engine-step workload with a zero-fault injector installed — and enforces
// the faultHookMaxOverhead gate against an interleaved hook-free run of the
// identical workload. Both sides are re-measured in rounds and judged on
// per-side minima, so a transient frequency dip cannot fail the gate while
// a persistent per-slot dispatch cost still does.
func benchEngineStepFaults(seed uint64) (stepCase, error) {
	const n = 2000
	cfg := sim.Config{Seed: seed, Workers: 1}
	plain, err := benchEngineStep("engine_step", seed, n, cfg, false)
	if err != nil {
		return stepCase{}, err
	}
	faults, err := benchEngineStep("engine_step_faults", seed, n, cfg, true)
	if err != nil {
		return stepCase{}, err
	}
	for round := 1; round < faultHookRounds && faults.NsPerOp > plain.NsPerOp*faultHookMaxOverhead; round++ {
		p, err := benchEngineStep("engine_step", seed, n, cfg, false)
		if err != nil {
			return stepCase{}, err
		}
		f, err := benchEngineStep("engine_step_faults", seed, n, cfg, true)
		if err != nil {
			return stepCase{}, err
		}
		if p.NsPerOp < plain.NsPerOp {
			plain = p
		}
		if f.NsPerOp < faults.NsPerOp {
			faults = f
		}
	}
	if faults.NsPerOp > plain.NsPerOp*faultHookMaxOverhead {
		return stepCase{}, fmt.Errorf(
			"engine_step_faults gate failed: zero-fault hook %.0f ns/op vs hook-free %.0f ns/op exceeds %.2fx — the fault layer is taxing healthy simulations",
			faults.NsPerOp, plain.NsPerOp, faultHookMaxOverhead)
	}
	return faults, nil
}

// benchEnginePhases measures the sequential driver's per-phase split on
// the benchEngineStep workload: a fresh engine with sim.Config.Profile
// installed runs phaseProfileSlots slots after warm-up, and the accumulated
// tick / evaluate / receive wall clock is divided back to ns per slot. A
// separate engine is used on purpose — the profiled driver brackets every
// phase with time.Now, and that instrumentation must not leak into the
// headline NsPerOp of the timed cases.
func benchEnginePhases(seed uint64, n int) (sim.PhaseStats, error) {
	const phaseProfileSlots = 2048
	ch, _, err := sinr.SparseBenchWorkload(n, seed)
	if err != nil {
		return sim.PhaseStats{}, err
	}
	kind := sim.RegisterFrameKind("macbench.step")
	txPerSlot := math.Sqrt(float64(n))
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &stepBenchNode{p: txPerSlot / float64(n), kind: kind}
	}
	fast := sinr.NewFastChannel(ch)
	defer fast.Close()
	var prof sim.PhaseStats
	eng, err := sim.NewEngine(ch, nodes, sim.Config{
		Seed: seed, Workers: 1, Evaluator: fast, Profile: &prof,
	})
	if err != nil {
		return sim.PhaseStats{}, err
	}
	eng.Run(64, nil) // warm pool, buffers and caches
	prof = sim.PhaseStats{}
	eng.Run(phaseProfileSlots, nil)
	return prof, nil
}

// benchEngineRunBatch measures the batched executor against the
// slot-at-a-time Step loop on the benchEngineStep workload with the fused
// parallel driver pinned on: the Step side pays one workpool session
// (helper wake + park) per slot, the RunBatch side one per batch-slot
// micro-batch. Each side gets its own engine so both are measured in
// steady state; the executions are bit-identical regardless (the
// differential suite in internal/sim pins that), so node-state divergence
// between the two engines cannot skew the comparison. The
// batchRunMinSpeedup gate and the zero-alloc check are enforced here, on
// per-side minima over up to batchRunRounds interleaved rounds.
func benchEngineRunBatch(name string, seed uint64, n, batch int) (batchCase, error) {
	buildEngine := func(batchSize int) (*sim.Engine, func(), error) {
		ch, _, err := sinr.SparseBenchWorkload(n, seed)
		if err != nil {
			return nil, nil, err
		}
		kind := sim.RegisterFrameKind("macbench.step")
		txPerSlot := math.Sqrt(float64(n))
		nodes := make([]sim.Node, n)
		for i := range nodes {
			nodes[i] = &stepBenchNode{p: txPerSlot / float64(n), kind: kind}
		}
		fast := sinr.NewFastChannel(ch)
		eng, err := sim.NewEngine(ch, nodes, sim.Config{
			Seed: seed, Parallel: true, Workers: 4, PinDriver: true,
			Batch: batchSize, Evaluator: fast,
		})
		if err != nil {
			fast.Close()
			return nil, nil, err
		}
		return eng, fast.Close, nil
	}
	// measure times one round of both sides: the per-slot Step loop and the
	// batched Run, freshly built so every round starts from the same state.
	measure := func() (step, batched testing.BenchmarkResult, err error) {
		engS, closeS, err := buildEngine(1)
		if err != nil {
			return step, batched, err
		}
		engS.Run(64, nil)
		step = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engS.Step()
			}
		})
		closeS()
		engB, closeB, err := buildEngine(batch)
		if err != nil {
			return step, batched, err
		}
		engB.Run(int64(2*batch), nil)
		batched = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engB.RunBatch(batch)
			}
		})
		closeB()
		return step, batched, nil
	}
	step, batched, err := measure()
	if err != nil {
		return batchCase{}, err
	}
	stepNs, batchNs := float64(step.NsPerOp()), float64(batched.NsPerOp())
	stepAllocs, batchAllocs := step.AllocsPerOp(), batched.AllocsPerOp()
	perSlot := func() float64 { return batchNs / float64(batch) }
	for round := 1; round < batchRunRounds && stepNs < perSlot()*batchRunMinSpeedup; round++ {
		s, b, err := measure()
		if err != nil {
			return batchCase{}, err
		}
		if float64(s.NsPerOp()) < stepNs {
			stepNs, stepAllocs = float64(s.NsPerOp()), s.AllocsPerOp()
		}
		if float64(b.NsPerOp()) < batchNs {
			batchNs, batchAllocs = float64(b.NsPerOp()), b.AllocsPerOp()
		}
	}
	c := batchCase{
		Name:              name,
		Nodes:             n,
		TxPerSlot:         math.Sqrt(float64(n)),
		Batch:             batch,
		StepNsPerSlot:     stepNs,
		StepAllocsPerSlot: stepAllocs,
		BatchNsPerSlot:    perSlot(),
		BatchAllocsPerOp:  batchAllocs,
	}
	if c.BatchNsPerSlot > 0 {
		c.SpeedupVsStep = c.StepNsPerSlot / c.BatchNsPerSlot
	}
	if c.BatchAllocsPerOp != 0 {
		return batchCase{}, fmt.Errorf(
			"%s gate failed: RunBatch(%d) allocates %d objects per batch in steady state, want 0",
			name, batch, c.BatchAllocsPerOp)
	}
	if c.SpeedupVsStep < batchRunMinSpeedup {
		return batchCase{}, fmt.Errorf(
			"%s gate failed: batched executor %.0f ns/slot vs Step loop %.0f ns/slot (%.2fx < %.2fx) — batching is adding per-slot cost instead of amortising session overhead",
			name, c.BatchNsPerSlot, c.StepNsPerSlot, c.SpeedupVsStep, batchRunMinSpeedup)
	}
	return c, nil
}

// benchBlockedKernel measures one blocked-vs-scalar kernel pair through the
// exported bench entry points, enforcing minSpeedup on per-side minima over
// up to blockedKernelRounds interleaved rounds.
func benchBlockedKernel(c blockedCase, minSpeedup float64, run func(blocked bool) testing.BenchmarkResult) (blockedCase, error) {
	scalar := float64(run(false).NsPerOp())
	blocked := float64(run(true).NsPerOp())
	for round := 1; round < blockedKernelRounds && scalar < blocked*minSpeedup; round++ {
		if s := float64(run(false).NsPerOp()); s < scalar {
			scalar = s
		}
		if b := float64(run(true).NsPerOp()); b < blocked {
			blocked = b
		}
	}
	c.ScalarNsPerOp = scalar
	c.BlockedNsPerOp = blocked
	if c.BlockedNsPerOp > 0 {
		c.SpeedupVsScalar = c.ScalarNsPerOp / c.BlockedNsPerOp
	}
	if c.SpeedupVsScalar < minSpeedup {
		return blockedCase{}, fmt.Errorf(
			"%s gate failed: blocked kernel %.0f ns/op vs scalar %.0f ns/op (%.2fx < %.2fx)",
			c.Name, c.BlockedNsPerOp, c.ScalarNsPerOp, c.SpeedupVsScalar, minSpeedup)
	}
	return c, nil
}

// benchBlockedGather measures the blocked matrix totals gather
// (matrixTotals4, 4 receivers per transmitter pass) against the scalar
// per-receiver sum it replaced. The workload is kernel_pathloss-style:
// small enough that the power matrix is cache-resident (n = 512, 2 MB) and
// dense enough that rows are scanned contiguously (every node transmits,
// the bounds_full slot shape), so the ratio isolates the restructuring —
// scalar pays one loop-carried FP add latency per element, blocked runs
// four independent chains. On workloads that stream the matrix from DRAM
// both sides are bandwidth-bound and the ratio compresses toward 1; that
// regime is already covered by the slot-path cases above.
func benchBlockedGather(seed uint64) (blockedCase, error) {
	const n = 512
	ch, _, err := sinr.BenchWorkload(n, seed)
	if err != nil {
		return blockedCase{}, err
	}
	f := sinr.NewFastChannel(ch, sinr.FastOptions{MatrixThreshold: n, SparseFactor: -1})
	defer f.Close()
	tx := make([]int, n)
	rs := make([]int, n)
	for i := range tx {
		tx[i] = i
		rs[i] = i
	}
	f.SlotReceptions(tx[:1]) // warm: materialise the power matrix
	out := make([]float64, n)
	c := blockedCase{Name: "blocked_gather_totals", Nodes: n, Transmitters: len(tx)}
	return benchBlockedKernel(c, blockedGatherMinSpeedup, func(blocked bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.BenchGatherTotals(out, rs, tx, blocked)
			}
		})
	})
}

// benchBlockedFill measures the blocked power-column fill (fillColumn's
// 4-wide distance/path-loss lanes with the exponent dispatch hoisted)
// against the scalar pairPower loop it replaced, on a grid-regime workload
// where column fills are the cache-miss path.
func benchBlockedFill(seed uint64) (blockedCase, error) {
	const n = 4000
	ch, _, err := sinr.BenchWorkload(n, seed)
	if err != nil {
		return blockedCase{}, err
	}
	f := sinr.NewFastChannel(ch)
	defer f.Close()
	dst := make([]float64, n)
	c := blockedCase{Name: "blocked_fill_column", Nodes: n}
	return benchBlockedKernel(c, blockedFillMinSpeedup, func(blocked bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.BenchFillColumn(dst, i%16, blocked)
			}
		})
	})
}

// kernelSink defeats dead-code elimination of the benchmark loops below.
var kernelSink float64

// benchKernelPathLoss measures the path-loss arithmetic over a fixed set of
// random point pairs: the pre-rewrite composition (math.Hypot distance,
// math.Pow loss) against the shipped one (Sqrt distance, integer-α
// multiplication in Params.ReceivedPower). Both sides run the identical
// loop shape over identical pairs, so the ratio isolates the arithmetic.
func benchKernelPathLoss(alpha float64, seed uint64) kernelCase {
	const pairs = 4096
	params := sinr.Params{Alpha: alpha, Beta: 1.5, Noise: 1e-9, Power: 1, Epsilon: 0.1}
	src := rng.New(seed)
	ax := make([]float64, pairs)
	ay := make([]float64, pairs)
	bx := make([]float64, pairs)
	by := make([]float64, pairs)
	for i := 0; i < pairs; i++ {
		ax[i] = src.Float64() * 200
		ay[i] = src.Float64() * 200
		bx[i] = src.Float64() * 200
		by[i] = src.Float64() * 200
	}
	powRes := testing.Benchmark(func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < pairs; j++ {
				d := math.Hypot(ax[j]-bx[j], ay[j]-by[j])
				if d < 1 {
					d = 1
				}
				s += params.Power / math.Pow(d, params.Alpha)
			}
		}
		kernelSink = s
	})
	fastRes := testing.Benchmark(func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < pairs; j++ {
				dx := ax[j] - bx[j]
				dy := ay[j] - by[j]
				s += params.ReceivedPower(math.Sqrt(dx*dx + dy*dy))
			}
		}
		kernelSink = s
	})
	c := kernelCase{
		Name:        fmt.Sprintf("kernel_pathloss_a%.0f", alpha),
		Alpha:       alpha,
		Pairs:       pairs,
		PowNsPerOp:  float64(powRes.NsPerOp()),
		FastNsPerOp: float64(fastRes.NsPerOp()),
	}
	if c.FastNsPerOp > 0 {
		c.SpeedupVsPow = c.PowNsPerOp / c.FastNsPerOp
	}
	return c
}

// measureShardCase measures the sharded evaluator on an n-node dense
// workload with k transmitters per slot, together with the settled heap
// footprint of channel + evaluator + one evaluated slot. The footprint is a
// GC-settled runtime.MemStats HeapAlloc delta around the whole build — it is
// what a simulation at this scale actually holds live, and it is the number
// the sinr.ShardBytesPerNodeBudget gate judges. When withDense is set the
// same slot is also timed over the per-pair dense scan (sharding and bounds
// pinned off) so the case carries a within-run speedup ratio; at the -large
// scale the dense scan is minutes per op and is skipped.
func measureShardCase(name string, n, k, shards int, seed uint64, withDense bool) (shardCase, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ch, tx, err := sinr.DenseBenchWorkload(n, k, seed)
	if err != nil {
		return shardCase{}, err
	}
	shard := sinr.NewFastChannel(ch, sinr.FastOptions{Shards: shards, SparseFactor: -1})
	shardCount := shard.Shards()
	if shardCount == 0 {
		shard.Close()
		return shardCase{}, fmt.Errorf("%s: sharded configuration fell back to a per-pair regime", name)
	}
	shard.SlotReceptions(tx) // warm: builds the shard index and scratch
	runtime.GC()
	runtime.ReadMemStats(&after)
	var heap uint64
	if after.HeapAlloc > before.HeapAlloc {
		heap = after.HeapAlloc - before.HeapAlloc
	}
	shard.ResetBoundsStats()
	shardRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			shard.SlotReceptions(tx)
		}
	})
	st := shard.BoundsStats()
	shard.Close()
	c := shardCase{
		Name:             name,
		Nodes:            n,
		Transmitters:     len(tx),
		Shards:           shardCount,
		ShardNsPerOp:     float64(shardRes.NsPerOp()),
		ShardAllocsPerOp: shardRes.AllocsPerOp(),
		RefineRate:       st.RefineRate(),
		RSSBytes:         heap,
		BytesPerNode:     float64(heap) / float64(n),
	}
	if withDense {
		dense := sinr.NewFastChannel(ch, sinr.FastOptions{
			MatrixThreshold: -1, SparseFactor: -1, BoundsFactor: -1, Shards: -1,
		})
		denseRes := benchSlot(dense, tx)
		dense.Close()
		c.DenseNsPerOp = float64(denseRes.NsPerOp())
		c.DenseAllocsPerOp = denseRes.AllocsPerOp()
		if c.ShardNsPerOp > 0 {
			c.SpeedupVsDense = c.DenseNsPerOp / c.ShardNsPerOp
		}
	}
	return c, nil
}

// checkStepCrossover enforces the engine-step crossover gate on the fresh
// measurements: for every deployment size of at least stepCrossoverMinNodes
// that has both a sequential case and an adaptive (unpinned parallel) case,
// the adaptive driver must not exceed the sequential cost by more than
// stepCrossoverTolerance. This is the user-facing contract of the adaptive
// driver — enabling Parallel never costs more than a sliver, on any host.
func checkStepCrossover(cases []stepCase) error {
	serialByN := make(map[int]stepCase)
	for _, c := range cases {
		if !c.Parallel {
			serialByN[c.Nodes] = c
		}
	}
	var problems []string
	for _, c := range cases {
		if !c.Parallel || c.Pinned || c.Nodes < stepCrossoverMinNodes {
			continue
		}
		ref, ok := serialByN[c.Nodes]
		if !ok || ref.NsPerOp <= 0 {
			continue
		}
		if c.NsPerOp > ref.NsPerOp*stepCrossoverTolerance {
			problems = append(problems, fmt.Sprintf(
				"  %s: adaptive driver %.0f ns/op vs sequential %s %.0f ns/op exceeds %.1fx",
				c.Name, c.NsPerOp, ref.Name, ref.NsPerOp, stepCrossoverTolerance))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s", strings.Join(problems, "\n"))
	}
	return nil
}

// compareReports checks the fresh measurements against a committed
// baseline using only machine-invariant quantities: the fast-over-naive,
// sparse-over-dense, bounds-over-dense and apply-over-rebuild speedup
// ratios (each measured within one run on one machine) must not shrink
// beyond compareTolerance, and no optimised path or steady-state step may
// allocate more than the baseline did.
//
// Every baseline case must reappear in the fresh report: a benchmark that
// is deleted or renamed without refreshing the committed baseline would
// otherwise silently slip past the regression gate, so a missing
// counterpart is itself a gate failure. Fresh-only cases remain allowed —
// adding a benchmark must not break the first run against an old baseline.
func compareReports(baselinePath string, fresh benchReport) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	var problems []string
	freshByKey := make(map[string]gateCase)
	for _, f := range gateCases(fresh) {
		freshByKey[f.family+"/"+f.name] = f
	}
	for _, b := range gateCases(base) {
		f, ok := freshByKey[b.family+"/"+b.name]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"  %s case %q exists in the baseline but not in the fresh report: deleted or renamed benchmarks must refresh the committed baseline",
				b.family, b.name))
			continue
		}
		if b.speedupLabel != "" && b.speedup > 0 && f.speedup < b.speedup/compareTolerance {
			problems = append(problems, fmt.Sprintf(
				"  %s/%s: speedup %.1fx vs baseline %.1fx (shrank by more than %.1fx)",
				f.name, f.speedupLabel, f.speedup, b.speedup, compareTolerance))
		}
		if f.allocs > b.allocs {
			name := f.name
			if f.allocsLabel != "" {
				name += "/" + f.allocsLabel
			}
			problems = append(problems, fmt.Sprintf(
				"  %s: %d allocs/op vs baseline %d", name, f.allocs, b.allocs))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s", strings.Join(problems, "\n"))
	}
	return nil
}

// gateCase is one benchmark case flattened to the machine-invariant
// quantities the -compare gate judges, so every case family goes through
// one comparison loop.
type gateCase struct {
	family string
	name   string
	// speedupLabel names the checked ratio; empty means the family carries
	// no speedup ratio (only the alloc check applies).
	speedupLabel string
	speedup      float64
	allocsLabel  string
	allocs       int64
}

// gateCases flattens a report into the gate's comparison entries.
func gateCases(r benchReport) []gateCase {
	var out []gateCase
	for _, c := range r.Cases {
		out = append(out, gateCase{"slot-path", c.Name, "fast-vs-naive", c.SpeedupVsNaive, "fast", c.FastAllocsPerOp})
	}
	for _, c := range r.SparseCases {
		out = append(out, gateCase{"sparse", c.Name, "sparse-vs-dense", c.SpeedupVsDense, "sparse", c.SparseAllocsPerOp})
	}
	for _, c := range r.BoundsCases {
		out = append(out, gateCase{"bounds", c.Name, "bounds-vs-dense", c.SpeedupVsDense, "bounds", c.BoundsAllocsPerOp})
	}
	for _, c := range r.ShardCases {
		// Dense-less cases (the -large smoke) carry speedup 0, which the
		// gate's speedup check already skips; the alloc check still applies.
		out = append(out, gateCase{"shard", c.Name, "shard-vs-dense", c.SpeedupVsDense, "shard", c.ShardAllocsPerOp})
	}
	for _, c := range r.ChurnCases {
		out = append(out, gateCase{"churn", c.Name, "apply-vs-rebuild", c.SpeedupVsRebuild, "apply", c.ApplyAllocsPerOp})
	}
	for _, c := range r.StepCases {
		out = append(out, gateCase{"step", c.Name, "", 0, "", c.AllocsPerOp})
	}
	for _, c := range r.BatchCases {
		out = append(out, gateCase{"batch", c.Name, "batch-vs-step", c.SpeedupVsStep, "batch", c.BatchAllocsPerOp})
	}
	for _, c := range r.BlockedCases {
		out = append(out, gateCase{"blocked", c.Name, "blocked-vs-scalar", c.SpeedupVsScalar, "", 0})
	}
	for _, c := range r.KernelCases {
		out = append(out, gateCase{"kernel", c.Name, "fast-vs-pow", c.SpeedupVsPow, "", 0})
	}
	return out
}

func measure(n, trials int, seed uint64, base func(float64) approgress.Config, mutate func(*approgress.Config)) ([]float64, int64, error) {
	var latencies []float64
	var epochLen int64
	for trial := 0; trial < trials; trial++ {
		s := seed + uint64(trial)*7919
		d, err := topology.Clusters(1, n, sinr.DefaultParams(30), rng.New(s))
		if err != nil {
			return nil, 0, err
		}
		cfg := base(d.Lambda())
		mutate(&cfg)
		epochLen = cfg.EpochLen()

		probe := &listener{rcvSlot: -1}
		simNodes := make([]sim.Node, d.NumNodes())
		apNodes := make([]*approgress.Node, d.NumNodes())
		for i := range simNodes {
			node := approgress.NewNode(cfg, 0, nil)
			if i == 0 {
				node.SetLayer(probe)
			}
			apNodes[i] = node
			simNodes[i] = node
		}
		ch, err := d.Channel()
		if err != nil {
			return nil, 0, err
		}
		// The ablation sweeps run many trials over dense clusters; select
		// the fast SINR evaluator explicitly (identical executions to the
		// naive reference, differentially tested in internal/sinr).
		eng, err := sim.NewEngine(ch, simNodes, sim.Config{Seed: s, Evaluator: sinr.NewFastChannel(ch)})
		if err != nil {
			return nil, 0, err
		}
		for i := 1; i < d.NumNodes(); i++ {
			apNodes[i].Bcast(0, core.Message{ID: core.MessageID(1000 + i), Origin: i})
		}
		deadline := 4 * cfg.EpochLen()
		eng.Run(deadline, func() bool { return probe.rcvSlot >= 0 })
		first := probe.rcvSlot
		if first < 0 {
			first = deadline
		}
		latencies = append(latencies, float64(first))
	}
	return latencies, epochLen, nil
}
