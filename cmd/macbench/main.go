// Command macbench runs the ablation sweeps that DESIGN.md calls out for
// the Algorithm 9.1 parameters: it measures the approximate-progress
// latency of a fixed dense-cluster workload while varying one structural
// constant at a time (the transmission probability p, the data divisor
// scale QScale, and the discovery block scale TFactor).
//
// The output justifies the defaults used by the experiment harness and
// shows how the epoch structure trades discovery reliability against data
// throughput.
//
// With -json the command instead benchmarks the SINR slot hot path (naive
// reference vs fast evaluator, matrix and grid regimes) via
// testing.Benchmark and writes the measurements — ns/op, allocs/op and the
// speedup over the naive path — to BENCH_macbench.json, so the performance
// trajectory stays machine-readable across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sinrmac/internal/approgress"
	"sinrmac/internal/core"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/stats"
	"sinrmac/internal/topology"
)

// listener records the first rcv slot at its node.
type listener struct {
	core.NopLayer
	rcvSlot int64
}

func (l *listener) OnRcv(slot int64, m core.Message) {
	if l.rcvSlot < 0 {
		l.rcvSlot = slot
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes    = flag.Int("n", 24, "cluster size (the listener plus n-1 broadcasters)")
		trials   = flag.Int("trials", 3, "trials per configuration")
		seed     = flag.Uint64("seed", 1, "random seed")
		jsonMode = flag.Bool("json", false, "benchmark the SINR slot path and write BENCH_macbench.json instead of the ablation sweeps")
	)
	flag.Parse()

	if *jsonMode {
		return runJSONBench(*seed)
	}

	fmt.Printf("ablation workload: one cluster of %d nodes, %d broadcasters, listener = node 0\n\n", *nodes, *nodes-1)

	base := func(lambda float64) approgress.Config {
		cfg := approgress.DefaultConfig(lambda, 0.1, 3)
		cfg.QScale = 0.5
		cfg.TFactor = 4
		cfg.MISRounds = 4
		cfg.DataFactor = 2
		return cfg
	}

	type variant struct {
		name   string
		mutate func(*approgress.Config)
	}
	groups := []struct {
		title    string
		variants []variant
	}{
		{"transmission probability p", []variant{
			{"p=0.05", func(c *approgress.Config) { c.P = 0.05 }},
			{"p=0.10 (default)", func(c *approgress.Config) { c.P = 0.10 }},
			{"p=0.25", func(c *approgress.Config) { c.P = 0.25 }},
		}},
		{"data divisor scale QScale", []variant{
			{"QScale=0.25", func(c *approgress.Config) { c.QScale = 0.25 }},
			{"QScale=0.5 (default)", func(c *approgress.Config) { c.QScale = 0.5 }},
			{"QScale=1.0 (paper formula)", func(c *approgress.Config) { c.QScale = 1.0 }},
		}},
		{"discovery block scale TFactor", []variant{
			{"TFactor=2", func(c *approgress.Config) { c.TFactor = 2 }},
			{"TFactor=4 (default)", func(c *approgress.Config) { c.TFactor = 4 }},
			{"TFactor=8", func(c *approgress.Config) { c.TFactor = 8 }},
		}},
	}

	for _, g := range groups {
		fmt.Printf("== %s\n", g.title)
		fmt.Printf("%-28s  %10s  %10s  %10s\n", "variant", "epoch_len", "median", "max")
		for _, v := range g.variants {
			latencies, epochLen, err := measure(*nodes, *trials, *seed, base, v.mutate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
				return 1
			}
			fmt.Printf("%-28s  %10d  %10.0f  %10.0f\n", v.name, epochLen, stats.Median(latencies), stats.Max(latencies))
		}
		fmt.Println()
	}
	return 0
}

// benchCase is one measured slot-path configuration in BENCH_macbench.json.
type benchCase struct {
	// Name identifies the regime: "matrix" (n below the power-matrix
	// threshold) or "grid" (spatial-grid far-field path).
	Name string `json:"name"`
	// Nodes and Transmitters describe the workload.
	Nodes        int `json:"nodes"`
	Transmitters int `json:"transmitters"`
	// Naive and Fast are the per-slot cost of the reference and fast
	// evaluators.
	NaiveNsPerOp     float64 `json:"naive_ns_per_op"`
	NaiveAllocsPerOp int64   `json:"naive_allocs_per_op"`
	FastNsPerOp      float64 `json:"fast_ns_per_op"`
	FastAllocsPerOp  int64   `json:"fast_allocs_per_op"`
	// SpeedupVsNaive is NaiveNsPerOp / FastNsPerOp.
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
}

// benchReport is the top-level BENCH_macbench.json document.
type benchReport struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	Seed       uint64      `json:"seed"`
	Cases      []benchCase `json:"cases"`
}

// benchFile is where runJSONBench writes its report.
const benchFile = "BENCH_macbench.json"

// runJSONBench measures the naive and fast slot evaluators in both cache
// regimes via testing.Benchmark and writes the report to BENCH_macbench.json.
func runJSONBench(seed uint64) int {
	regimes := []struct {
		name string
		n    int
	}{
		// Below sinr.DefaultMatrixThreshold the fast path serves slots from
		// the precomputed power matrix; above it, from the spatial grid with
		// the lazy column cache.
		{"matrix", 1000},
		{"grid", 4000},
	}
	report := benchReport{GoMaxProcs: runtime.GOMAXPROCS(0), Seed: seed}
	for _, reg := range regimes {
		ch, tx, err := sinr.BenchWorkload(reg.n, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
			return 1
		}
		naive := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ch.SlotReceptions(tx)
			}
		})
		fast := sinr.NewFastChannel(ch)
		fast.SlotReceptions(tx) // warm the power cache like a running simulation
		fastRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fast.SlotReceptions(tx)
			}
		})
		c := benchCase{
			Name:             reg.name,
			Nodes:            reg.n,
			Transmitters:     len(tx),
			NaiveNsPerOp:     float64(naive.NsPerOp()),
			NaiveAllocsPerOp: naive.AllocsPerOp(),
			FastNsPerOp:      float64(fastRes.NsPerOp()),
			FastAllocsPerOp:  fastRes.AllocsPerOp(),
		}
		if c.FastNsPerOp > 0 {
			c.SpeedupVsNaive = c.NaiveNsPerOp / c.FastNsPerOp
		}
		report.Cases = append(report.Cases, c)
		fmt.Printf("%-7s n=%-5d k=%-4d naive %12.0f ns/op (%d allocs)  fast %10.0f ns/op (%d allocs)  speedup %.1fx\n",
			reg.name, c.Nodes, c.Transmitters, c.NaiveNsPerOp, c.NaiveAllocsPerOp, c.FastNsPerOp, c.FastAllocsPerOp, c.SpeedupVsNaive)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "macbench: writing %s: %v\n", benchFile, err)
		return 1
	}
	fmt.Printf("wrote %s\n", benchFile)
	return 0
}

func measure(n, trials int, seed uint64, base func(float64) approgress.Config, mutate func(*approgress.Config)) ([]float64, int64, error) {
	var latencies []float64
	var epochLen int64
	for trial := 0; trial < trials; trial++ {
		s := seed + uint64(trial)*7919
		d, err := topology.Clusters(1, n, sinr.DefaultParams(30), rng.New(s))
		if err != nil {
			return nil, 0, err
		}
		cfg := base(d.Lambda())
		mutate(&cfg)
		epochLen = cfg.EpochLen()

		probe := &listener{rcvSlot: -1}
		simNodes := make([]sim.Node, d.NumNodes())
		apNodes := make([]*approgress.Node, d.NumNodes())
		for i := range simNodes {
			node := approgress.NewNode(cfg, 0, nil)
			if i == 0 {
				node.SetLayer(probe)
			}
			apNodes[i] = node
			simNodes[i] = node
		}
		ch, err := d.Channel()
		if err != nil {
			return nil, 0, err
		}
		// The ablation sweeps run many trials over dense clusters; select
		// the fast SINR evaluator explicitly (identical executions to the
		// naive reference, differentially tested in internal/sinr).
		eng, err := sim.NewEngine(ch, simNodes, sim.Config{Seed: s, Evaluator: sinr.NewFastChannel(ch)})
		if err != nil {
			return nil, 0, err
		}
		for i := 1; i < d.NumNodes(); i++ {
			apNodes[i].Bcast(0, core.Message{ID: core.MessageID(1000 + i), Origin: i})
		}
		deadline := 4 * cfg.EpochLen()
		eng.Run(deadline, func() bool { return probe.rcvSlot >= 0 })
		first := probe.rcvSlot
		if first < 0 {
			first = deadline
		}
		latencies = append(latencies, float64(first))
	}
	return latencies, epochLen, nil
}
